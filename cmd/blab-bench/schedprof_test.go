package main

import "testing"

// Benchmarks for the scheduler scenarios behind BENCH_sched.json, so
// dispatch-path changes can be profiled in-process:
//
//	go test -run='^$' -bench=BenchmarkSched -benchtime=2000x \
//	    -cpuprofile=sched.prof ./cmd/blab-bench/

func BenchmarkSchedHealthy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := runSchedScenario("healthy", 100, 10, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedFlaky(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := runSchedScenario("flaky-30pct", 100, 10, 3); err != nil {
			b.Fatal(err)
		}
	}
}
