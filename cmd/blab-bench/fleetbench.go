package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"batterylab/internal/accessserver"
	"batterylab/internal/accessserver/store"
	"batterylab/internal/api"
	"batterylab/internal/metrics"
	"batterylab/internal/remote"
	"batterylab/internal/samples"
	"batterylab/internal/simclock"
)

// fleetBenchReport is the JSON baseline committed as BENCH_fleet.json:
// the whole access server under fleet-scale load — N simulated vantage
// points, campaign churn (submits, concurrency caps, cancels) and M
// HTTP streaming clients following build feeds — on the virtual clock
// with a real WAL attached, plus a two-server federation phase where
// half the builds route to a peer's vantage points over the relay.
//
// The report splits cleanly in two. Deterministic holds fields that
// depend only on the scenario (virtual-clock scheduling is
// deterministic: equal deadlines break ties by registration order), so
// two runs with the same config produce byte-identical Deterministic
// sections — the fleet-bench regression test asserts exactly that.
// Timing holds the wall-clock throughput numbers, which vary run to
// run and are reported for trending only.
type fleetBenchReport struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	GoVersion string `json:"go_version"`

	Nodes     int `json:"nodes"`
	Clients   int `json:"clients"`
	Builds    int `json:"builds"`
	Campaigns int `json:"campaigns"`

	Deterministic fleetDeterministic `json:"deterministic"`
	ReadFlood     fleetReadFlood     `json:"read_flood"`
	Federation    fleetFederation    `json:"federation"`
	Timing        fleetTiming        `json:"timing"`
}

// fleetFederation is the two-server phase: a home server and a
// federated peer share one virtual clock, builds submitted to the home
// server alternate between home-local vantage points and ones it only
// knows through the peer's census, and every routed build streams its
// feed back through the relay. Wall-clock interleaving between the
// relay's HTTP goroutines and the clock driver varies run to run, so
// the section reports only schedule-invariant counts — no wait
// quantiles and no simulated-time field.
type fleetFederation struct {
	NodesPerServer int `json:"nodes_per_server"`
	Builds         int `json:"builds"`

	Submitted int64 `json:"submitted"`
	Succeeded int64 `json:"succeeded"`
	Failed    int64 `json:"failed"`
	// Routed counts builds the home scheduler dispatched to the peer
	// (blab_cluster_builds_routed_total) — exactly half the submissions
	// by construction.
	Routed     int64 `json:"routed"`
	PeerLosses int64 `json:"peer_losses"`

	// Home-server feed totals. Routed builds post their events and
	// samples on the peer, and the relay republishes every record into
	// the home feed — so these count local and relayed traffic alike.
	EventsPosted   int64 `json:"events_posted"`
	EventsDropped  int64 `json:"events_dropped"`
	SamplesPosted  int64 `json:"samples_posted"`
	SamplesDropped int64 `json:"samples_dropped"`

	// PeersOnline is the home server's final census: the peer must
	// still be online (heartbeats rode the same virtual clock).
	PeersOnline int64 `json:"peers_online"`
}

// fleetReadFlood is the read-flood phase: the identical churn scenario
// rerun with a status-poll flood hammering the snapshot-served routes
// while the clock is driven. Because the hot reads never acquire the
// scheduler lock, the flood cannot perturb the virtual-clock schedule:
// every field here is deterministic, and the submit-wait quantiles must
// not regress from the churn-only phase (the -fleet-bench-check gate
// enforces both).
type fleetReadFlood struct {
	// Polls counts completed status polls (fixed by construction:
	// builds x pollsPerBuild).
	Polls int64 `json:"polls"`
	// MonotonicViolations counts polls that observed a build's state
	// move backwards. Snapshots publish in transition order, so this
	// must be zero.
	MonotonicViolations int64 `json:"monotonic_violations"`
	// Submit-wait quantiles under the flood; no regression allowed
	// against the churn-only Deterministic quantiles.
	SubmitP50MS float64 `json:"submit_p50_ms"`
	SubmitP99MS float64 `json:"submit_p99_ms"`
}

// fleetDeterministic is the replayable part of the outcome.
type fleetDeterministic struct {
	Submitted  int64 `json:"submitted"`
	Dispatched int64 `json:"dispatched"`
	Succeeded  int64 `json:"succeeded"`
	Failed     int64 `json:"failed"`
	Aborted    int64 `json:"aborted"`

	// Submit→running wait quantiles on the virtual clock, exact (from
	// the sorted per-build queue times, not a streaming estimate).
	SubmitP50MS float64 `json:"submit_p50_ms"`
	SubmitP99MS float64 `json:"submit_p99_ms"`

	EventsPosted   int64 `json:"events_posted"`
	EventsDropped  int64 `json:"events_dropped"`
	SamplesPosted  int64 `json:"samples_posted"`
	SamplesDropped int64 `json:"samples_dropped"`
	// FeedDropRate is dropped/(posted+dropped) across both streams.
	FeedDropRate float64 `json:"feed_drop_rate"`

	// EventsStreamed counts events delivered to the M HTTP streaming
	// clients (replay-plus-follow over the real handler stack).
	EventsStreamed int64 `json:"events_streamed"`

	WALAppends  int64 `json:"wal_appends"`
	SimulatedMS int64 `json:"simulated_ms"`
}

// fleetTiming is the wall-clock part, excluded from the determinism
// check.
type fleetTiming struct {
	WallNS           int64   `json:"wall_ns"`
	BuildsPerSec     float64 `json:"builds_per_sec"`
	WALAppendsPerSec float64 `json:"wal_appends_per_sec"`
}

// fleetBackend compiles every spec into a run that emits phase events
// and live samples on the virtual clock. Everything is derived from
// the build ID, so reruns replay identically: duration 4–8 s, ~one
// sample per second, and build 1 additionally floods its event feed
// past the buffer cap so the drop accounting shows up in the report.
type fleetBackend struct{ clock simclock.Clock }

const fleetFloodEvents = 4296 // feedEventCap (4096) + 200 guaranteed drops

func (fb fleetBackend) Compile(spec api.ExperimentSpec) (accessserver.Constraints, accessserver.RunFunc, error) {
	cons := accessserver.Constraints{
		Node:     spec.Node,
		Device:   spec.Device,
		Fallback: spec.Constraints.AllowFallback,
	}
	run := func(ctx *accessserver.BuildContext, done func(error)) {
		id := ctx.Build.ID
		feed := ctx.Build.Feed()
		node := ctx.Node.Name()
		ctx.OnCancel(func() { done(errors.New("canceled by user")) })

		feed.PostEvent(api.BuildEvent{
			Build: id, Node: node, Phase: "workload",
			AtNS: fb.clock.Now().UnixNano(),
		})
		if id == 1 {
			// Deterministic overflow: a chatty pipeline that outruns the
			// bounded buffer, so drop-rate handling is always exercised.
			for i := 0; i < fleetFloodEvents; i++ {
				feed.PostEvent(api.BuildEvent{
					Build: id, Node: node, Phase: "chatter",
					AtNS: fb.clock.Now().UnixNano(),
				})
			}
		}
		dur := time.Duration(4+id%5) * time.Second
		for i := 1; i <= int(dur/time.Second); i++ {
			at := time.Duration(i) * time.Second
			fb.clock.AfterFunc(at, func() {
				feed.PostSample(api.SamplePoint{
					AtNS:      fb.clock.Now().UnixNano(),
					CurrentMA: float64(100 + id%50),
				})
			})
		}
		fb.clock.AfterFunc(dur, func() {
			feed.PostEvent(api.BuildEvent{
				Build: id, Node: node, Phase: "teardown",
				AtNS: fb.clock.Now().UnixNano(),
			})
			done(nil)
		})
	}
	return cons, run, nil
}

func (fleetBackend) WorkloadNames() []string { return []string{"fleet"} }

// fleetPhase is one scenario pass's harvest.
type fleetPhase struct {
	det       fleetDeterministic
	campaigns int
	wallNS    int64

	polls    int64
	monoViol int64
	floodP50 float64
	floodP99 float64
}

// fleetPollsPerBuild is the read-flood depth: every build's status is
// polled this many times while the scenario churns. At the default 200
// builds that is a thousand polls riding on top of the streaming
// clients.
const fleetPollsPerBuild = 5

// fleetFederationScale derives the two-server phase's size from the
// main scenario's knobs: a quarter of the fleet on each server, a
// tenth of the builds (rounded even so exactly half route to the
// peer).
func fleetFederationScale(nodeCount, buildCount int) (perServer, builds int) {
	perServer = nodeCount / 4
	if perServer < 2 {
		perServer = 2
	}
	builds = buildCount / 10
	if builds < 8 {
		builds = 8
	}
	if builds%2 == 1 {
		builds++
	}
	return perServer, builds
}

// runFleetBench drives the scenario three times — churn only, churn
// with the read flood, then the two-server federation phase — and
// writes the JSON report.
func runFleetBench(w io.Writer, nodeCount, clientCount, buildCount int) error {
	churn, err := runFleetPhase(nodeCount, clientCount, buildCount, false)
	if err != nil {
		return err
	}
	flood, err := runFleetPhase(nodeCount, clientCount, buildCount, true)
	if err != nil {
		return err
	}
	fedNodes, fedBuilds := fleetFederationScale(nodeCount, buildCount)
	fed, err := runFleetFederation(fedNodes, fedBuilds)
	if err != nil {
		return err
	}

	rep := fleetBenchReport{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		GoVersion: runtime.Version(),
		Nodes:     nodeCount,
		Clients:   clientCount,
		Builds:    buildCount,
		Campaigns: churn.campaigns,

		Deterministic: churn.det,
		ReadFlood: fleetReadFlood{
			Polls:               flood.polls,
			MonotonicViolations: flood.monoViol,
			SubmitP50MS:         flood.floodP50,
			SubmitP99MS:         flood.floodP99,
		},
		Federation: fed,
		Timing: fleetTiming{
			WallNS:           churn.wallNS,
			BuildsPerSec:     float64(buildCount) / (float64(churn.wallNS) / 1e9),
			WALAppendsPerSec: float64(churn.det.WALAppends) / (float64(churn.wallNS) / 1e9),
		},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// runFleetPhase drives one pass of the fleet scenario. With flood set,
// status pollers hammer the snapshot routes concurrently with the
// streaming clients and the clock drive.
func runFleetPhase(nodeCount, clientCount, buildCount int, flood bool) (fleetPhase, error) {
	var phase fleetPhase
	clk := simclock.NewVirtual()
	srv := accessserver.New(clk, accessserver.Config{
		Executors:      nodeCount,
		HeartbeatEvery: 5 * time.Second,
		RetryBackoff:   5 * time.Second,
		MaxRetries:     3,
		PendingTimeout: 30 * time.Minute,
	})
	srv.SetSpecBackend(fleetBackend{clock: clk})

	admin, err := srv.Users.Add("bench", accessserver.RoleAdmin)
	if err != nil {
		return phase, err
	}
	nodeNames := make([]string, nodeCount)
	for i := range nodeNames {
		nodeNames[i] = fmt.Sprintf("node%02d", i)
		if err := srv.RegisterNode(rawBenchNode{name: nodeNames[i]}); err != nil {
			return phase, err
		}
	}

	// Real durability underneath the load: every lifecycle transition
	// appends to an actual WAL in a scratch directory.
	dir, err := os.MkdirTemp("", "blab-fleet-bench-*")
	if err != nil {
		return phase, err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir)
	if err != nil {
		return phase, err
	}
	if _, err := srv.AttachStore(st); err != nil {
		return phase, err
	}

	start := time.Now()
	t0 := clk.Now()

	// Submission wave: 60% of the builds arrive as campaigns with a
	// concurrency cap (queue-pressure churn), the rest as singles.
	spec := func(i int) api.ExperimentSpec {
		n := nodeNames[i%nodeCount]
		return api.ExperimentSpec{
			Node: n, Device: "dev-" + n,
			Workload:    api.WorkloadSpec{Name: "fleet"},
			Constraints: api.ConstraintsSpec{AllowFallback: true},
		}
	}
	var all []*accessserver.Build
	campaignBuilds := buildCount * 6 / 10
	campaignSize := 10
	campaigns := 0
	for submitted := 0; submitted < campaignBuilds; submitted += campaignSize {
		size := campaignSize
		if rest := campaignBuilds - submitted; rest < size {
			size = rest
		}
		specs := make([]api.ExperimentSpec, size)
		for j := range specs {
			specs[j] = spec(submitted + j)
		}
		_, builds, err := srv.SubmitCampaign(admin, api.CampaignSpec{
			Experiments:   specs,
			MaxConcurrent: 3,
		})
		if err != nil {
			return phase, err
		}
		all = append(all, builds...)
		campaigns++
	}
	for i := len(all); i < buildCount; i++ {
		b, err := srv.SubmitSpec(admin, spec(i))
		if err != nil {
			return phase, err
		}
		all = append(all, b)
	}

	// Churn: a deterministic slice of the queued tail is canceled before
	// the clock moves (covering the queued-abort path), and one more
	// tranche is canceled mid-run at t+3s (covering running cancels).
	for _, b := range all {
		if b.ID > nodeCount && b.ID%9 == 0 && b.State() == accessserver.StateQueued {
			if err := srv.Abort(admin, b.ID); err != nil {
				return phase, err
			}
		}
	}
	late := make([]int, 0, 8)
	for _, b := range all {
		if b.ID%17 == 0 {
			late = append(late, b.ID)
		}
	}
	clk.AfterFunc(3*time.Second, func() {
		for _, id := range late {
			srv.Abort(admin, id) // conflict on already-finished: fine
		}
	})

	// M streaming clients over the real HTTP stack, following the event
	// feeds round-robin (replay from 0, follow to close).
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var streamed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clientCount; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(all); i += clientCount {
				n, err := streamEventCount(ts.URL, admin.Token, all[i].ID)
				if err != nil {
					continue // terminal states can close streams mid-read
				}
				streamed.Add(n)
			}
		}(c)
	}

	// The read flood: pollers sweep every build's status a fixed number
	// of times while the clock is driven. Status reads come off the
	// snapshot plane without the scheduler lock, so the flood must not
	// move a single deterministic outcome — the check gate compares this
	// phase's submit-wait quantiles against the churn-only phase's.
	var polls, monoViol atomic.Int64
	if flood {
		for c := 0; c < clientCount; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := c; i < len(all); i += clientCount {
					last := -1
					for k := 0; k < fleetPollsPerBuild; k++ {
						state, ok := pollBuildState(ts.URL, admin.Token, all[i].ID)
						if !ok {
							continue
						}
						polls.Add(1)
						r := fleetStateRank(state)
						if r >= 0 && r < last {
							monoViol.Add(1)
						}
						if r >= 0 {
							last = r
						}
					}
				}
			}(c)
		}
	}

	// Drive the virtual clock until every build settles.
	terminal := func(b *accessserver.Build) bool {
		switch b.State() {
		case accessserver.StateSuccess, accessserver.StateFailure, accessserver.StateAborted:
			return true
		}
		return false
	}
	for {
		settled := true
		for _, b := range all {
			if !terminal(b) {
				settled = false
				break
			}
		}
		if settled {
			break
		}
		next, ok := clk.NextDeadline()
		if !ok {
			return phase, fmt.Errorf("fleet-bench: stalled with %d builds queued", srv.QueueLength())
		}
		clk.RunUntil(next)
	}
	wg.Wait()
	wallNS := time.Since(start).Nanoseconds()

	// Harvest the deterministic outcome from the metrics registry — the
	// same snapshot /api/v1/metrics serves.
	snap := srv.MetricsSnapshot()
	get := func(name string, labels ...string) int64 {
		m, _ := snap.Get(name, metrics.L(labels...)...)
		return int64(m.Value)
	}

	det := fleetDeterministic{
		Submitted:      get("blab_builds_submitted_total"),
		Dispatched:     get("blab_builds_dispatched_total"),
		Succeeded:      get("blab_builds_finished_total", "result", "success"),
		Failed:         get("blab_builds_finished_total", "result", "failure"),
		Aborted:        get("blab_builds_finished_total", "result", "aborted"),
		EventsPosted:   get("blab_feed_events_posted_total"),
		EventsDropped:  get("blab_feed_events_dropped_total"),
		SamplesPosted:  get("blab_feed_samples_posted_total"),
		SamplesDropped: get("blab_feed_samples_dropped_total"),
		EventsStreamed: streamed.Load(),
		WALAppends:     get("blab_wal_appends_total"),
		SimulatedMS:    clk.Now().Sub(t0).Milliseconds(),
	}
	posted := det.EventsPosted + det.SamplesPosted
	dropped := det.EventsDropped + det.SamplesDropped
	if posted+dropped > 0 {
		det.FeedDropRate = float64(dropped) / float64(posted+dropped)
	}

	// Exact submit→running quantiles from the dispatched builds' queue
	// times (virtual-clock durations, so deterministic).
	var waits []float64
	for _, b := range all {
		if qt := b.QueueTime(); qt > 0 || b.Attempts() > 0 {
			waits = append(waits, float64(qt.Milliseconds()))
		}
	}
	if len(waits) > 0 {
		sort.Float64s(waits)
		det.SubmitP50MS = samples.QuantileSorted(waits, 0.50)
		det.SubmitP99MS = samples.QuantileSorted(waits, 0.99)
	}

	if det.Succeeded+det.Failed+det.Aborted != int64(buildCount) {
		return phase, fmt.Errorf("fleet-bench: %d builds submitted but %d finished",
			buildCount, det.Succeeded+det.Failed+det.Aborted)
	}
	phase = fleetPhase{
		det:       det,
		campaigns: campaigns,
		wallNS:    wallNS,
		polls:     polls.Load(),
		monoViol:  monoViol.Load(),
		floodP50:  det.SubmitP50MS,
		floodP99:  det.SubmitP99MS,
	}
	return phase, nil
}

// fedFleetBackend compiles pinned specs whose runtime derives from the
// node NAME, not the build ID: a build routed to the peer is assigned
// a fresh ID over there, and the arrival order of concurrent relays is
// racy, so ID-derived durations would make the sample totals drift run
// to run.
type fedFleetBackend struct{ clock simclock.Clock }

// fedNodeWeight spreads run durations (4–8 s) and current draws across
// the fleet deterministically by name.
func fedNodeWeight(node string) int {
	sum := 0
	for i := 0; i < len(node); i++ {
		sum += int(node[i])
	}
	return sum % 5
}

func (fb fedFleetBackend) Compile(spec api.ExperimentSpec) (accessserver.Constraints, accessserver.RunFunc, error) {
	cons := accessserver.Constraints{Node: spec.Node, Device: spec.Device}
	run := func(ctx *accessserver.BuildContext, done func(error)) {
		id := ctx.Build.ID
		feed := ctx.Build.Feed()
		node := ctx.Node.Name()
		ctx.OnCancel(func() { done(errors.New("canceled by user")) })

		feed.PostEvent(api.BuildEvent{
			Build: id, Node: node, Phase: "workload",
			AtNS: fb.clock.Now().UnixNano(),
		})
		w := fedNodeWeight(node)
		dur := time.Duration(4+w) * time.Second
		for i := 1; i <= int(dur/time.Second); i++ {
			at := time.Duration(i) * time.Second
			fb.clock.AfterFunc(at, func() {
				feed.PostSample(api.SamplePoint{
					AtNS:      fb.clock.Now().UnixNano(),
					CurrentMA: float64(100 + 10*w),
				})
			})
		}
		fb.clock.AfterFunc(dur, func() {
			feed.PostEvent(api.BuildEvent{
				Build: id, Node: node, Phase: "teardown",
				AtNS: fb.clock.Now().UnixNano(),
			})
			done(nil)
		})
	}
	return cons, run, nil
}

func (fedFleetBackend) WorkloadNames() []string { return []string{"fleet"} }

const fleetFederationToken = "fleet-bench-fed"

// runFleetFederation drives the two-server phase: home and peer access
// servers on one virtual clock, joined over real HTTP with the cluster
// token, with every second build pinned to a vantage point only the
// peer's census advertises. The phase is self-validating — every build
// must succeed and exactly half must route — and returns the
// deterministic counts for the report.
func runFleetFederation(perServer, buildCount int) (fleetFederation, error) {
	out := fleetFederation{NodesPerServer: perServer, Builds: buildCount}
	clk := simclock.NewVirtual()
	cfg := accessserver.Config{
		Executors:      perServer,
		HeartbeatEvery: 5 * time.Second,
		RetryBackoff:   5 * time.Second,
		MaxRetries:     3,
		PendingTimeout: 30 * time.Minute,
	}
	home := accessserver.New(clk, cfg)
	peer := accessserver.New(clk, cfg)
	home.SetSpecBackend(fedFleetBackend{clock: clk})
	peer.SetSpecBackend(fedFleetBackend{clock: clk})

	admin, err := home.Users.Add("bench", accessserver.RoleAdmin)
	if err != nil {
		return out, err
	}
	homeNodes := make([]string, perServer)
	peerNodes := make([]string, perServer)
	for i := 0; i < perServer; i++ {
		homeNodes[i] = fmt.Sprintf("fed-a-%02d", i)
		peerNodes[i] = fmt.Sprintf("fed-b-%02d", i)
		if err := home.RegisterNode(rawBenchNode{name: homeNodes[i]}); err != nil {
			return out, err
		}
		if err := peer.RegisterNode(rawBenchNode{name: peerNodes[i]}); err != nil {
			return out, err
		}
	}

	tsHome := httptest.NewServer(home.Handler())
	defer tsHome.Close()
	tsPeer := httptest.NewServer(peer.Handler())
	defer tsPeer.Close()
	home.ConfigureCluster("fleet-home", tsHome.URL, fleetFederationToken)
	peer.ConfigureCluster("fleet-peer", tsPeer.URL, fleetFederationToken)
	relay := func(ctx context.Context, peerURL, token string, spec api.ExperimentSpec, sink accessserver.PeerSink) (*api.BuildStatus, error) {
		return remote.Relay(ctx, peerURL, token, spec, sink)
	}
	home.SetPeerRelay(relay)
	peer.SetPeerRelay(relay)
	defer home.StopCluster()
	defer peer.StopCluster()

	// Clock driver: step while either server has work, with real sleeps
	// between steps so the relay's HTTP goroutines get to run. (The
	// churn phases step the clock inline instead — they have no real
	// concurrency between builds and the driver.)
	stop := make(chan struct{})
	var driveWG sync.WaitGroup
	driveWG.Add(1)
	go func() {
		defer driveWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if home.Running()+home.QueueLength()+peer.Running()+peer.QueueLength() == 0 {
				time.Sleep(time.Millisecond)
				continue
			}
			if !clk.Step() {
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	defer func() { close(stop); driveWG.Wait() }()

	// Mesh join: the home server's synchronous first announce teaches
	// the peer about fleet-home, and the peer's first beat answers with
	// its census — placement knows the remote fleet before any submit.
	home.StartCluster(tsPeer.URL)
	peer.StartCluster()

	all := make([]*accessserver.Build, 0, buildCount)
	for i := 0; i < buildCount; i++ {
		n := homeNodes[(i/2)%perServer]
		if i%2 == 1 {
			n = peerNodes[(i/2)%perServer]
		}
		b, err := home.SubmitSpec(admin, api.ExperimentSpec{
			Node: n, Device: "dev-" + n,
			Workload: api.WorkloadSpec{Name: "fleet"},
		})
		if err != nil {
			return out, err
		}
		all = append(all, b)
	}

	terminal := func(b *accessserver.Build) bool {
		switch b.State() {
		case accessserver.StateSuccess, accessserver.StateFailure, accessserver.StateAborted:
			return true
		}
		return false
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		settled := 0
		for _, b := range all {
			if terminal(b) {
				settled++
			}
		}
		if settled == len(all) {
			break
		}
		if time.Now().After(deadline) {
			return out, fmt.Errorf("fleet-bench federation: stalled with %d/%d builds unsettled",
				len(all)-settled, len(all))
		}
		time.Sleep(time.Millisecond)
	}

	snap := home.MetricsSnapshot()
	get := func(name string, labels ...string) int64 {
		m, _ := snap.Get(name, metrics.L(labels...)...)
		return int64(m.Value)
	}
	out.Submitted = get("blab_builds_submitted_total")
	out.Succeeded = get("blab_builds_finished_total", "result", "success")
	out.Failed = get("blab_builds_finished_total", "result", "failure")
	out.Routed = get("blab_cluster_builds_routed_total")
	out.PeerLosses = get("blab_cluster_peer_losses_total")
	out.EventsPosted = get("blab_feed_events_posted_total")
	out.EventsDropped = get("blab_feed_events_dropped_total")
	out.SamplesPosted = get("blab_feed_samples_posted_total")
	out.SamplesDropped = get("blab_feed_samples_dropped_total")
	out.PeersOnline = get("blab_cluster_peers", "state", "online")

	if out.Succeeded != int64(buildCount) {
		return out, fmt.Errorf("fleet-bench federation: %d/%d builds succeeded (failed=%d)",
			out.Succeeded, buildCount, out.Failed)
	}
	if out.Routed != int64(buildCount/2) {
		return out, fmt.Errorf("fleet-bench federation: %d builds routed to the peer, want exactly %d",
			out.Routed, buildCount/2)
	}
	return out, nil
}

// pollBuildState reads one build's snapshot-served wire status.
func pollBuildState(baseURL, token string, build int) (string, bool) {
	req, err := http.NewRequest(http.MethodGet,
		fmt.Sprintf("%s/api/v1/builds/%d", baseURL, build), nil)
	if err != nil {
		return "", false
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", false
	}
	var st api.BuildStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", false
	}
	return st.State, true
}

// fleetStateRank orders wire states along the build lifecycle for the
// monotonic-read check (-1: unrecognized, skipped).
func fleetStateRank(state string) int {
	switch state {
	case "queued":
		return 0
	case "running":
		return 1
	case "success", "failure", "aborted":
		return 2
	case "expired":
		return 3
	}
	return -1
}

// fleetBenchCheck reruns the fleet scenario at the baseline's scale and
// fails if any deterministic field drifted — including the read-flood
// and federation sections — or if the read-flood phase's p99 submit wait regressed
// against the churn-only phase (the data plane leaking back into the
// control plane).
func fleetBenchCheck(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want fleetBenchReport
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("fleet-bench-check: parsing %s: %w", path, err)
	}
	churn, err := runFleetPhase(want.Nodes, want.Clients, want.Builds, false)
	if err != nil {
		return err
	}
	flood, err := runFleetPhase(want.Nodes, want.Clients, want.Builds, true)
	if err != nil {
		return err
	}
	var fed fleetFederation
	if want.Federation.Builds > 0 {
		fed, err = runFleetFederation(want.Federation.NodesPerServer, want.Federation.Builds)
		if err != nil {
			return err
		}
	}
	var drifts []string
	diffI := func(field string, wantV, gotV int64) {
		if wantV != gotV {
			drifts = append(drifts, fmt.Sprintf("%s drifted %d -> %d", field, wantV, gotV))
		}
	}
	diffF := func(field string, wantV, gotV float64) {
		if wantV != gotV {
			drifts = append(drifts, fmt.Sprintf("%s drifted %g -> %g", field, wantV, gotV))
		}
	}
	w, g := want.Deterministic, churn.det
	diffI("submitted", w.Submitted, g.Submitted)
	diffI("dispatched", w.Dispatched, g.Dispatched)
	diffI("succeeded", w.Succeeded, g.Succeeded)
	diffI("failed", w.Failed, g.Failed)
	diffI("aborted", w.Aborted, g.Aborted)
	diffF("submit_p50_ms", w.SubmitP50MS, g.SubmitP50MS)
	diffF("submit_p99_ms", w.SubmitP99MS, g.SubmitP99MS)
	diffI("events_posted", w.EventsPosted, g.EventsPosted)
	diffI("events_dropped", w.EventsDropped, g.EventsDropped)
	diffI("samples_posted", w.SamplesPosted, g.SamplesPosted)
	diffI("samples_dropped", w.SamplesDropped, g.SamplesDropped)
	diffI("events_streamed", w.EventsStreamed, g.EventsStreamed)
	diffI("wal_appends", w.WALAppends, g.WALAppends)
	diffI("simulated_ms", w.SimulatedMS, g.SimulatedMS)
	diffI("read_flood.polls", want.ReadFlood.Polls, flood.polls)
	diffI("read_flood.monotonic_violations", want.ReadFlood.MonotonicViolations, flood.monoViol)
	diffF("read_flood.submit_p50_ms", want.ReadFlood.SubmitP50MS, flood.floodP50)
	diffF("read_flood.submit_p99_ms", want.ReadFlood.SubmitP99MS, flood.floodP99)
	if want.Federation.Builds > 0 {
		fw := want.Federation
		diffI("federation.submitted", fw.Submitted, fed.Submitted)
		diffI("federation.succeeded", fw.Succeeded, fed.Succeeded)
		diffI("federation.failed", fw.Failed, fed.Failed)
		diffI("federation.routed", fw.Routed, fed.Routed)
		diffI("federation.peer_losses", fw.PeerLosses, fed.PeerLosses)
		diffI("federation.events_posted", fw.EventsPosted, fed.EventsPosted)
		diffI("federation.events_dropped", fw.EventsDropped, fed.EventsDropped)
		diffI("federation.samples_posted", fw.SamplesPosted, fed.SamplesPosted)
		diffI("federation.samples_dropped", fw.SamplesDropped, fed.SamplesDropped)
		diffI("federation.peers_online", fw.PeersOnline, fed.PeersOnline)
	}
	if flood.monoViol != 0 {
		drifts = append(drifts, fmt.Sprintf("read flood observed %d monotonic-read violations, want 0", flood.monoViol))
	}
	if flood.floodP99 > churn.det.SubmitP99MS {
		drifts = append(drifts, fmt.Sprintf(
			"read-flood p99 submit wait %.0fms regressed past churn-only %.0fms",
			flood.floodP99, churn.det.SubmitP99MS))
	}
	if len(drifts) > 0 {
		for _, d := range drifts {
			fmt.Fprintln(os.Stderr, d)
		}
		return fmt.Errorf("%d deterministic field(s) drifted from %s", len(drifts), path)
	}
	return nil
}

// streamEventCount follows one build's NDJSON event stream to its end
// and reports how many events it replayed.
func streamEventCount(baseURL, token string, build int) (int64, error) {
	req, err := http.NewRequest(http.MethodGet,
		fmt.Sprintf("%s/api/v1/builds/%d/events", baseURL, build), nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("stream %d: status %d", build, resp.StatusCode)
	}
	var n int64
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		if len(sc.Bytes()) > 0 {
			n++
		}
	}
	return n, sc.Err()
}

// fleetBenchTo writes the report to path ("" or "-" = stdout).
func fleetBenchTo(path string, nodes, clients, builds int) error {
	if path == "" || path == "-" {
		return runFleetBench(os.Stdout, nodes, clients, builds)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := runFleetBench(f, nodes, clients, builds); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
