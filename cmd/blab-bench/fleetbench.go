package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"batterylab/internal/accessserver"
	"batterylab/internal/accessserver/store"
	"batterylab/internal/api"
	"batterylab/internal/metrics"
	"batterylab/internal/samples"
	"batterylab/internal/simclock"
)

// fleetBenchReport is the JSON baseline committed as BENCH_fleet.json:
// the whole access server under fleet-scale load — N simulated vantage
// points, campaign churn (submits, concurrency caps, cancels) and M
// HTTP streaming clients following build feeds — on the virtual clock
// with a real WAL attached.
//
// The report splits cleanly in two. Deterministic holds fields that
// depend only on the scenario (virtual-clock scheduling is
// deterministic: equal deadlines break ties by registration order), so
// two runs with the same config produce byte-identical Deterministic
// sections — the fleet-bench regression test asserts exactly that.
// Timing holds the wall-clock throughput numbers, which vary run to
// run and are reported for trending only.
type fleetBenchReport struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	GoVersion string `json:"go_version"`

	Nodes     int `json:"nodes"`
	Clients   int `json:"clients"`
	Builds    int `json:"builds"`
	Campaigns int `json:"campaigns"`

	Deterministic fleetDeterministic `json:"deterministic"`
	Timing        fleetTiming        `json:"timing"`
}

// fleetDeterministic is the replayable part of the outcome.
type fleetDeterministic struct {
	Submitted  int64 `json:"submitted"`
	Dispatched int64 `json:"dispatched"`
	Succeeded  int64 `json:"succeeded"`
	Failed     int64 `json:"failed"`
	Aborted    int64 `json:"aborted"`

	// Submit→running wait quantiles on the virtual clock, exact (from
	// the sorted per-build queue times, not a streaming estimate).
	SubmitP50MS float64 `json:"submit_p50_ms"`
	SubmitP99MS float64 `json:"submit_p99_ms"`

	EventsPosted   int64 `json:"events_posted"`
	EventsDropped  int64 `json:"events_dropped"`
	SamplesPosted  int64 `json:"samples_posted"`
	SamplesDropped int64 `json:"samples_dropped"`
	// FeedDropRate is dropped/(posted+dropped) across both streams.
	FeedDropRate float64 `json:"feed_drop_rate"`

	// EventsStreamed counts events delivered to the M HTTP streaming
	// clients (replay-plus-follow over the real handler stack).
	EventsStreamed int64 `json:"events_streamed"`

	WALAppends  int64 `json:"wal_appends"`
	SimulatedMS int64 `json:"simulated_ms"`
}

// fleetTiming is the wall-clock part, excluded from the determinism
// check.
type fleetTiming struct {
	WallNS           int64   `json:"wall_ns"`
	BuildsPerSec     float64 `json:"builds_per_sec"`
	WALAppendsPerSec float64 `json:"wal_appends_per_sec"`
}

// fleetBackend compiles every spec into a run that emits phase events
// and live samples on the virtual clock. Everything is derived from
// the build ID, so reruns replay identically: duration 4–8 s, ~one
// sample per second, and build 1 additionally floods its event feed
// past the buffer cap so the drop accounting shows up in the report.
type fleetBackend struct{ clock simclock.Clock }

const fleetFloodEvents = 4296 // feedEventCap (4096) + 200 guaranteed drops

func (fb fleetBackend) Compile(spec api.ExperimentSpec) (accessserver.Constraints, accessserver.RunFunc, error) {
	cons := accessserver.Constraints{
		Node:     spec.Node,
		Device:   spec.Device,
		Fallback: spec.Constraints.AllowFallback,
	}
	run := func(ctx *accessserver.BuildContext, done func(error)) {
		id := ctx.Build.ID
		feed := ctx.Build.Feed()
		node := ctx.Node.Name()
		ctx.OnCancel(func() { done(errors.New("canceled by user")) })

		feed.PostEvent(api.BuildEvent{
			Build: id, Node: node, Phase: "workload",
			AtNS: fb.clock.Now().UnixNano(),
		})
		if id == 1 {
			// Deterministic overflow: a chatty pipeline that outruns the
			// bounded buffer, so drop-rate handling is always exercised.
			for i := 0; i < fleetFloodEvents; i++ {
				feed.PostEvent(api.BuildEvent{
					Build: id, Node: node, Phase: "chatter",
					AtNS: fb.clock.Now().UnixNano(),
				})
			}
		}
		dur := time.Duration(4+id%5) * time.Second
		for i := 1; i <= int(dur/time.Second); i++ {
			at := time.Duration(i) * time.Second
			fb.clock.AfterFunc(at, func() {
				feed.PostSample(api.SamplePoint{
					AtNS:      fb.clock.Now().UnixNano(),
					CurrentMA: float64(100 + id%50),
				})
			})
		}
		fb.clock.AfterFunc(dur, func() {
			feed.PostEvent(api.BuildEvent{
				Build: id, Node: node, Phase: "teardown",
				AtNS: fb.clock.Now().UnixNano(),
			})
			done(nil)
		})
	}
	return cons, run, nil
}

func (fleetBackend) WorkloadNames() []string { return []string{"fleet"} }

// runFleetBench drives the scenario and writes the JSON report.
func runFleetBench(w io.Writer, nodeCount, clientCount, buildCount int) error {
	clk := simclock.NewVirtual()
	srv := accessserver.New(clk, accessserver.Config{
		Executors:      nodeCount,
		HeartbeatEvery: 5 * time.Second,
		RetryBackoff:   5 * time.Second,
		MaxRetries:     3,
		PendingTimeout: 30 * time.Minute,
	})
	srv.SetSpecBackend(fleetBackend{clock: clk})

	admin, err := srv.Users.Add("bench", accessserver.RoleAdmin)
	if err != nil {
		return err
	}
	nodeNames := make([]string, nodeCount)
	for i := range nodeNames {
		nodeNames[i] = fmt.Sprintf("node%02d", i)
		if err := srv.RegisterNode(rawBenchNode{name: nodeNames[i]}); err != nil {
			return err
		}
	}

	// Real durability underneath the load: every lifecycle transition
	// appends to an actual WAL in a scratch directory.
	dir, err := os.MkdirTemp("", "blab-fleet-bench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir)
	if err != nil {
		return err
	}
	if _, err := srv.AttachStore(st); err != nil {
		return err
	}

	start := time.Now()
	t0 := clk.Now()

	// Submission wave: 60% of the builds arrive as campaigns with a
	// concurrency cap (queue-pressure churn), the rest as singles.
	spec := func(i int) api.ExperimentSpec {
		n := nodeNames[i%nodeCount]
		return api.ExperimentSpec{
			Node: n, Device: "dev-" + n,
			Workload:    api.WorkloadSpec{Name: "fleet"},
			Constraints: api.ConstraintsSpec{AllowFallback: true},
		}
	}
	var all []*accessserver.Build
	campaignBuilds := buildCount * 6 / 10
	campaignSize := 10
	campaigns := 0
	for submitted := 0; submitted < campaignBuilds; submitted += campaignSize {
		size := campaignSize
		if rest := campaignBuilds - submitted; rest < size {
			size = rest
		}
		specs := make([]api.ExperimentSpec, size)
		for j := range specs {
			specs[j] = spec(submitted + j)
		}
		_, builds, err := srv.SubmitCampaign(admin, api.CampaignSpec{
			Experiments:   specs,
			MaxConcurrent: 3,
		})
		if err != nil {
			return err
		}
		all = append(all, builds...)
		campaigns++
	}
	for i := len(all); i < buildCount; i++ {
		b, err := srv.SubmitSpec(admin, spec(i))
		if err != nil {
			return err
		}
		all = append(all, b)
	}

	// Churn: a deterministic slice of the queued tail is canceled before
	// the clock moves (covering the queued-abort path), and one more
	// tranche is canceled mid-run at t+3s (covering running cancels).
	for _, b := range all {
		if b.ID > nodeCount && b.ID%9 == 0 && b.State() == accessserver.StateQueued {
			if err := srv.Abort(admin, b.ID); err != nil {
				return err
			}
		}
	}
	late := make([]int, 0, 8)
	for _, b := range all {
		if b.ID%17 == 0 {
			late = append(late, b.ID)
		}
	}
	clk.AfterFunc(3*time.Second, func() {
		for _, id := range late {
			srv.Abort(admin, id) // conflict on already-finished: fine
		}
	})

	// M streaming clients over the real HTTP stack, following the event
	// feeds round-robin (replay from 0, follow to close).
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var streamed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clientCount; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(all); i += clientCount {
				n, err := streamEventCount(ts.URL, admin.Token, all[i].ID)
				if err != nil {
					continue // terminal states can close streams mid-read
				}
				streamed.Add(n)
			}
		}(c)
	}

	// Drive the virtual clock until every build settles.
	terminal := func(b *accessserver.Build) bool {
		switch b.State() {
		case accessserver.StateSuccess, accessserver.StateFailure, accessserver.StateAborted:
			return true
		}
		return false
	}
	for {
		settled := true
		for _, b := range all {
			if !terminal(b) {
				settled = false
				break
			}
		}
		if settled {
			break
		}
		next, ok := clk.NextDeadline()
		if !ok {
			return fmt.Errorf("fleet-bench: stalled with %d builds queued", srv.QueueLength())
		}
		clk.RunUntil(next)
	}
	wg.Wait()
	wallNS := time.Since(start).Nanoseconds()

	// Harvest the deterministic outcome from the metrics registry — the
	// same snapshot /api/v1/metrics serves.
	snap := srv.MetricsSnapshot()
	get := func(name string, labels ...string) int64 {
		m, _ := snap.Get(name, metrics.L(labels...)...)
		return int64(m.Value)
	}

	det := fleetDeterministic{
		Submitted:      get("blab_builds_submitted_total"),
		Dispatched:     get("blab_builds_dispatched_total"),
		Succeeded:      get("blab_builds_finished_total", "result", "success"),
		Failed:         get("blab_builds_finished_total", "result", "failure"),
		Aborted:        get("blab_builds_finished_total", "result", "aborted"),
		EventsPosted:   get("blab_feed_events_posted_total"),
		EventsDropped:  get("blab_feed_events_dropped_total"),
		SamplesPosted:  get("blab_feed_samples_posted_total"),
		SamplesDropped: get("blab_feed_samples_dropped_total"),
		EventsStreamed: streamed.Load(),
		WALAppends:     get("blab_wal_appends_total"),
		SimulatedMS:    clk.Now().Sub(t0).Milliseconds(),
	}
	posted := det.EventsPosted + det.SamplesPosted
	dropped := det.EventsDropped + det.SamplesDropped
	if posted+dropped > 0 {
		det.FeedDropRate = float64(dropped) / float64(posted+dropped)
	}

	// Exact submit→running quantiles from the dispatched builds' queue
	// times (virtual-clock durations, so deterministic).
	var waits []float64
	for _, b := range all {
		if qt := b.QueueTime(); qt > 0 || b.Attempts() > 0 {
			waits = append(waits, float64(qt.Milliseconds()))
		}
	}
	if len(waits) > 0 {
		sort.Float64s(waits)
		det.SubmitP50MS = samples.QuantileSorted(waits, 0.50)
		det.SubmitP99MS = samples.QuantileSorted(waits, 0.99)
	}

	rep := fleetBenchReport{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		GoVersion: runtime.Version(),
		Nodes:     nodeCount,
		Clients:   clientCount,
		Builds:    buildCount,
		Campaigns: campaigns,

		Deterministic: det,
		Timing: fleetTiming{
			WallNS:           wallNS,
			BuildsPerSec:     float64(buildCount) / (float64(wallNS) / 1e9),
			WALAppendsPerSec: float64(det.WALAppends) / (float64(wallNS) / 1e9),
		},
	}
	if det.Succeeded+det.Failed+det.Aborted != int64(buildCount) {
		return fmt.Errorf("fleet-bench: %d builds submitted but %d finished",
			buildCount, det.Succeeded+det.Failed+det.Aborted)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// streamEventCount follows one build's NDJSON event stream to its end
// and reports how many events it replayed.
func streamEventCount(baseURL, token string, build int) (int64, error) {
	req, err := http.NewRequest(http.MethodGet,
		fmt.Sprintf("%s/api/v1/builds/%d/events", baseURL, build), nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("stream %d: status %d", build, resp.StatusCode)
	}
	var n int64
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		if len(sc.Bytes()) > 0 {
			n++
		}
	}
	return n, sc.Err()
}

// fleetBenchTo writes the report to path ("" or "-" = stdout).
func fleetBenchTo(path string, nodes, clients, builds int) error {
	if path == "" || path == "-" {
		return runFleetBench(os.Stdout, nodes, clients, builds)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := runFleetBench(f, nodes, clients, builds); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
