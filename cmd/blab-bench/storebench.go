package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"batterylab/internal/accessserver/store"
	"batterylab/internal/api"
)

// storeBenchReport is the JSON baseline committed as BENCH_store.json:
// throughput of the access server's durability layer — WAL appends of
// a realistic build-lifecycle record mix, a full replay of the
// resulting log, and one snapshot compaction.
type storeBenchReport struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	GoVersion string `json:"go_version"`

	Records int `json:"records"`

	AppendWallNS  int64   `json:"append_wall_ns"`
	AppendsPerSec float64 `json:"appends_per_sec"`
	// Batch figures: the same record mix written through AppendBatch
	// (one frame assembly + one syscall per build lifecycle) — the
	// group-commit path SubmitCampaign and recovery use.
	BatchAppendWallNS  int64   `json:"batch_append_wall_ns"`
	BatchAppendsPerSec float64 `json:"batch_appends_per_sec"`
	WALBytes           int64   `json:"wal_bytes"`
	BytesPerRecord     float64 `json:"bytes_per_record"`
	ReplayWallNS       int64   `json:"replay_wall_ns"`
	ReplaysPerSec      float64 `json:"replays_per_sec"` // records re-read per second
	CompactWallNS      int64   `json:"compact_wall_ns"`
	SnapshotBytes      int64   `json:"snapshot_bytes"`
	PostCompactRecs    int     `json:"post_compact_records"`
}

// buildStoreReport appends n build lifecycles (queued → started →
// finished) to a fresh WAL — once record-at-a-time, once batched —
// replays the log, and runs one snapshot compaction.
func buildStoreReport(n int) (storeBenchReport, error) {
	var rep storeBenchReport
	dir, err := os.MkdirTemp("", "blab-store-bench")
	if err != nil {
		return rep, err
	}
	defer os.RemoveAll(dir)

	st, err := store.Open(dir)
	if err != nil {
		return rep, err
	}
	spec := &api.ExperimentSpec{
		Node: "node1", Device: "R58M12ABCDE",
		Workload: api.WorkloadSpec{Name: "browser", Params: api.Params{"browser": "Brave", "pages": 3}},
	}
	lifecycle := func(i int) []store.Record {
		return []store.Record{
			{T: store.TBuildQueued, Build: &store.BuildRec{
				ID: i, Job: "spec:browser@node1", Owner: "bob",
				Spec: spec, State: "queued", QueuedAtNS: int64(i),
			}},
			{T: store.TBuildStarted, BuildID: i, NodeName: "node1", Attempt: 1, AtNS: int64(i) + 1},
			{T: store.TBuildFinished, BuildID: i, State: "success", AtNS: int64(i) + 2,
				Summary: &api.RunSummary{Samples: 300000, MeanMA: 142.5, EnergyMAH: 3.2}},
		}
	}
	records := 0
	start := time.Now()
	for i := 1; i <= n; i++ {
		for _, r := range lifecycle(i) {
			if err := st.Append(r); err != nil {
				return rep, err
			}
			records++
		}
	}
	appendWall := time.Since(start)
	if err := st.Sync(); err != nil {
		return rep, err
	}
	info, err := os.Stat(dir + "/wal.log")
	if err != nil {
		return rep, err
	}
	walBytes := info.Size()
	st.Close()

	// The batched path: one AppendBatch per lifecycle on a fresh log.
	batchDir, err := os.MkdirTemp("", "blab-store-bench-batch")
	if err != nil {
		return rep, err
	}
	defer os.RemoveAll(batchDir)
	bst, err := store.Open(batchDir)
	if err != nil {
		return rep, err
	}
	start = time.Now()
	for i := 1; i <= n; i++ {
		if err := bst.AppendBatch(lifecycle(i)); err != nil {
			return rep, err
		}
	}
	batchWall := time.Since(start)
	if err := bst.Sync(); err != nil {
		return rep, err
	}
	bst.Close()

	start = time.Now()
	st2, err := store.Open(dir)
	if err != nil {
		return rep, err
	}
	_, replayed := st2.Load()
	replayWall := time.Since(start)
	if len(replayed) != records {
		return rep, fmt.Errorf("replay read %d records, wrote %d", len(replayed), records)
	}

	// One compaction: everything folds into a snapshot of n terminal
	// builds.
	snap := &store.Snapshot{NextBuild: n + 1, NextCampaign: 1}
	for i := 1; i <= n; i++ {
		snap.Builds = append(snap.Builds, store.BuildRec{
			ID: i, Job: "spec:browser@node1", Owner: "bob", State: "success",
			Summary: &api.RunSummary{Samples: 300000, MeanMA: 142.5, EnergyMAH: 3.2},
		})
	}
	start = time.Now()
	if err := st2.Compact(snap); err != nil {
		return rep, err
	}
	compactWall := time.Since(start)
	snapInfo, err := os.Stat(dir + "/snapshot.bin")
	if err != nil {
		return rep, err
	}
	st2.Close()

	rep = storeBenchReport{
		GOOS:               runtime.GOOS,
		GOARCH:             runtime.GOARCH,
		GoVersion:          runtime.Version(),
		Records:            records,
		AppendWallNS:       appendWall.Nanoseconds(),
		AppendsPerSec:      float64(records) / appendWall.Seconds(),
		BatchAppendWallNS:  batchWall.Nanoseconds(),
		BatchAppendsPerSec: float64(records) / batchWall.Seconds(),
		WALBytes:           walBytes,
		BytesPerRecord:     float64(walBytes) / float64(records),
		ReplayWallNS:       replayWall.Nanoseconds(),
		ReplaysPerSec:      float64(records) / replayWall.Seconds(),
		CompactWallNS:      compactWall.Nanoseconds(),
		SnapshotBytes:      snapInfo.Size(),
		PostCompactRecs:    st2.Appended(),
	}
	return rep, nil
}

// storeBenchTo runs the store benchmark and writes the JSON report to
// path ("" or "-" = stdout).
func storeBenchTo(path string, n int) error {
	rep, err := buildStoreReport(n)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if path != "" && path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// storeBenchCheck reruns the store benchmark and compares the
// deterministic fields — record count, WAL size, bytes per record and
// the post-compaction residue — against the committed baseline. The
// record codec is fully deterministic (sorted params, fixed enum
// tables), so any size drift means the on-disk format changed without
// a re-baseline. Timing fields are machine-dependent and ignored.
func storeBenchCheck(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want storeBenchReport
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("store-bench-check: parsing %s: %w", path, err)
	}
	got, err := buildStoreReport(want.Records / 3)
	if err != nil {
		return err
	}
	var drifts []string
	diff := func(field string, wantV, gotV int64) {
		if wantV != gotV {
			drifts = append(drifts, fmt.Sprintf("%s drifted %d -> %d", field, wantV, gotV))
		}
	}
	diff("records", int64(want.Records), int64(got.Records))
	diff("wal_bytes", want.WALBytes, got.WALBytes)
	// bytes_per_record is a quotient of the two gated integers; compare
	// rounded to dodge float formatting noise in the baseline file.
	diff("bytes_per_record", int64(want.BytesPerRecord*1000+0.5), int64(got.BytesPerRecord*1000+0.5))
	diff("post_compact_records", int64(want.PostCompactRecs), int64(got.PostCompactRecs))
	if len(drifts) > 0 {
		for _, d := range drifts {
			fmt.Fprintln(os.Stderr, d)
		}
		return fmt.Errorf("%d deterministic field(s) drifted from %s", len(drifts), path)
	}
	return nil
}
