package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"batterylab/internal/accessserver/store"
	"batterylab/internal/api"
)

// storeBenchReport is the JSON baseline committed as BENCH_store.json:
// throughput of the access server's durability layer — WAL appends of
// a realistic build-lifecycle record mix, a full replay of the
// resulting log, and one snapshot compaction.
type storeBenchReport struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	GoVersion string `json:"go_version"`

	Records int `json:"records"`

	AppendWallNS    int64   `json:"append_wall_ns"`
	AppendsPerSec   float64 `json:"appends_per_sec"`
	WALBytes        int64   `json:"wal_bytes"`
	BytesPerRecord  float64 `json:"bytes_per_record"`
	ReplayWallNS    int64   `json:"replay_wall_ns"`
	ReplaysPerSec   float64 `json:"replays_per_sec"` // records re-read per second
	CompactWallNS   int64   `json:"compact_wall_ns"`
	SnapshotBytes   int64   `json:"snapshot_bytes"`
	PostCompactRecs int     `json:"post_compact_records"`
}

// storeBenchTo appends n build lifecycles (queued → started →
// finished) to a fresh WAL, replays it, compacts it, and writes the
// JSON report to path ("" or "-" = stdout).
func storeBenchTo(path string, n int) error {
	dir, err := os.MkdirTemp("", "blab-store-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	st, err := store.Open(dir)
	if err != nil {
		return err
	}
	spec := &api.ExperimentSpec{
		Node: "node1", Device: "R58M12ABCDE",
		Workload: api.WorkloadSpec{Name: "browser", Params: api.Params{"browser": "Brave", "pages": 3}},
	}
	records := 0
	start := time.Now()
	for i := 1; i <= n; i++ {
		recs := []store.Record{
			{T: store.TBuildQueued, Build: &store.BuildRec{
				ID: i, Job: "spec:browser@node1", Owner: "bob",
				Spec: spec, State: "queued", QueuedAtNS: int64(i),
			}},
			{T: store.TBuildStarted, BuildID: i, NodeName: "node1", Attempt: 1, AtNS: int64(i) + 1},
			{T: store.TBuildFinished, BuildID: i, State: "success", AtNS: int64(i) + 2,
				Summary: &api.RunSummary{Samples: 300000, MeanMA: 142.5, EnergyMAH: 3.2}},
		}
		for _, r := range recs {
			if err := st.Append(r); err != nil {
				return err
			}
			records++
		}
	}
	appendWall := time.Since(start)
	if err := st.Sync(); err != nil {
		return err
	}
	info, err := os.Stat(dir + "/wal.log")
	if err != nil {
		return err
	}
	walBytes := info.Size()
	st.Close()

	start = time.Now()
	st2, err := store.Open(dir)
	if err != nil {
		return err
	}
	_, replayed := st2.Load()
	replayWall := time.Since(start)
	if len(replayed) != records {
		return fmt.Errorf("replay read %d records, wrote %d", len(replayed), records)
	}

	// One compaction: everything folds into a snapshot of n terminal
	// builds.
	snap := &store.Snapshot{NextBuild: n + 1, NextCampaign: 1}
	for i := 1; i <= n; i++ {
		snap.Builds = append(snap.Builds, store.BuildRec{
			ID: i, Job: "spec:browser@node1", Owner: "bob", State: "success",
			Summary: &api.RunSummary{Samples: 300000, MeanMA: 142.5, EnergyMAH: 3.2},
		})
	}
	start = time.Now()
	if err := st2.Compact(snap); err != nil {
		return err
	}
	compactWall := time.Since(start)
	snapInfo, err := os.Stat(dir + "/snapshot.bin")
	if err != nil {
		return err
	}
	st2.Close()

	rep := storeBenchReport{
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		GoVersion:       runtime.Version(),
		Records:         records,
		AppendWallNS:    appendWall.Nanoseconds(),
		AppendsPerSec:   float64(records) / appendWall.Seconds(),
		WALBytes:        walBytes,
		BytesPerRecord:  float64(walBytes) / float64(records),
		ReplayWallNS:    replayWall.Nanoseconds(),
		ReplaysPerSec:   float64(records) / replayWall.Seconds(),
		CompactWallNS:   compactWall.Nanoseconds(),
		SnapshotBytes:   snapInfo.Size(),
		PostCompactRecs: st2.Appended(),
	}

	var w io.Writer = os.Stdout
	if path != "" && path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
