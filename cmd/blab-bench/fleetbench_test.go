package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestFleetBenchDeterministic runs the fleet harness twice and requires
// the Deterministic report sections to match exactly: the virtual clock
// plus ID-derived workloads must make the scenario replayable, with all
// wall-clock variance confined to the Timing section.
func TestFleetBenchDeterministic(t *testing.T) {
	run := func() fleetBenchReport {
		var buf bytes.Buffer
		if err := runFleetBench(&buf, 6, 3, 50); err != nil {
			t.Fatalf("runFleetBench: %v", err)
		}
		var rep fleetBenchReport
		if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
			t.Fatalf("decode report: %v", err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Deterministic != b.Deterministic {
		t.Errorf("deterministic sections differ:\nrun 1: %+v\nrun 2: %+v",
			a.Deterministic, b.Deterministic)
	}
	if a.ReadFlood != b.ReadFlood {
		t.Errorf("read-flood sections differ:\nrun 1: %+v\nrun 2: %+v",
			a.ReadFlood, b.ReadFlood)
	}
	if a.Federation != b.Federation {
		t.Errorf("federation sections differ:\nrun 1: %+v\nrun 2: %+v",
			a.Federation, b.Federation)
	}

	// The federation phase routes half its builds across the peer relay
	// and everything must land: all succeed, nothing lost, and the
	// routed builds' relayed samples show up in the home feed totals.
	fed := a.Federation
	if fed.Succeeded != int64(fed.Builds) {
		t.Errorf("federation: %d/%d builds succeeded", fed.Succeeded, fed.Builds)
	}
	if fed.Routed != int64(fed.Builds/2) {
		t.Errorf("federation: routed = %d, want %d", fed.Routed, fed.Builds/2)
	}
	if fed.PeerLosses != 0 {
		t.Errorf("federation: %d peer losses with a healthy peer", fed.PeerLosses)
	}
	if fed.SamplesPosted == 0 || fed.EventsPosted == 0 {
		t.Errorf("federation: home feed saw %d events / %d samples; relay not exercised",
			fed.EventsPosted, fed.SamplesPosted)
	}
	if fed.PeersOnline != 1 {
		t.Errorf("federation: home census sees %d online peers, want 1", fed.PeersOnline)
	}

	// The read flood rides on the snapshot plane: fixed poll count, no
	// monotonic-read violations, and — the acceptance gate — no p99
	// submit-wait regression against the churn-only phase.
	if want := int64(50 * fleetPollsPerBuild); a.ReadFlood.Polls != want {
		t.Errorf("read-flood polls = %d, want %d", a.ReadFlood.Polls, want)
	}
	if a.ReadFlood.MonotonicViolations != 0 {
		t.Errorf("read flood observed %d monotonic violations", a.ReadFlood.MonotonicViolations)
	}
	if a.ReadFlood.SubmitP99MS > a.Deterministic.SubmitP99MS {
		t.Errorf("read-flood p99 submit wait %.0fms > churn-only %.0fms",
			a.ReadFlood.SubmitP99MS, a.Deterministic.SubmitP99MS)
	}

	det := a.Deterministic
	if det.Submitted != 50 {
		t.Errorf("submitted = %d, want 50", det.Submitted)
	}
	if got := det.Succeeded + det.Failed + det.Aborted; got != det.Submitted {
		t.Errorf("finished %d of %d submitted", got, det.Submitted)
	}
	if det.Aborted == 0 {
		t.Error("churn produced no aborts; cancel path not exercised")
	}
	if det.EventsDropped == 0 {
		t.Error("flood produced no feed drops; backpressure path not exercised")
	}
	if det.EventsStreamed == 0 {
		t.Error("streaming clients saw no events")
	}
	if det.WALAppends == 0 {
		t.Error("no WAL appends recorded; store not exercised")
	}
	if det.SubmitP99MS < det.SubmitP50MS {
		t.Errorf("p99 %v < p50 %v", det.SubmitP99MS, det.SubmitP50MS)
	}
}
