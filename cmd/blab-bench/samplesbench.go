package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"batterylab/internal/stats"
	"batterylab/internal/trace"
)

// samplesBenchReport is the JSON baseline committed as
// BENCH_samples.json: microbenchmarks of the streaming sample pipeline
// at capture scale, plus the headline streaming-vs-batch speedups.
type samplesBenchReport struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	GoVersion string `json:"go_version"`
	Samples   int    `json:"samples"`
	RateHz    int    `json:"rate_hz"`

	// Nanoseconds per operation over the whole series.
	AppendStreamingNs   int64 `json:"append_streaming_ns"`
	SummarizeStreamNs   int64 `json:"summarize_streaming_ns"`
	SummarizeBatchNs    int64 `json:"summarize_batch_ns"`
	QuantileStreamingNs int64 `json:"quantile_streaming_ns"`
	QuantileSortedNs    int64 `json:"quantile_sorted_ns"`
	EncodeV2Ns          int64 `json:"encode_v2_ns"`
	DecodeV2Ns          int64 `json:"decode_v2_ns"`
	EncodeCSVNs         int64 `json:"encode_csv_ns"`

	V2BytesPerSample  float64 `json:"v2_bytes_per_sample"`
	CSVBytesPerSample float64 `json:"csv_bytes_per_sample"`

	// SummarizeSpeedup is the acceptance headline: batch re-scan cost /
	// streaming snapshot cost at teardown, 1M samples.
	SummarizeSpeedup float64 `json:"summarize_speedup"`
}

// timeIt reports the best of three runs, the usual microbenchmark
// discipline against scheduler noise.
func timeIt(f func()) int64 {
	best := int64(math.MaxInt64)
	for i := 0; i < 3; i++ {
		start := time.Now()
		f()
		if d := time.Since(start).Nanoseconds(); d < best {
			best = d
		}
	}
	return best
}

// runSamplesBench measures the streaming pipeline on a synthetic
// 1M-sample 5 kHz trace (the acceptance-criteria scale) and writes the
// JSON report.
func runSamplesBench(w io.Writer, n, rateHz int) error {
	rep := samplesBenchReport{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		GoVersion: runtime.Version(),
		Samples:   n,
		RateHz:    rateHz,
	}
	t0 := time.Date(2019, 11, 13, 9, 0, 0, 0, time.UTC)
	period := time.Second / time.Duration(rateHz)
	value := func(i int) float64 {
		// A quantized workload-shaped current, like the Monsoon's output.
		return math.Floor((160+40*math.Sin(float64(i)/5000))*10) / 10
	}

	var s *trace.Series
	rep.AppendStreamingNs = timeIt(func() {
		s = trace.NewSeries("current", "mA")
		for i := 0; i < n; i++ {
			s.MustAppend(t0.Add(time.Duration(i)*period), value(i))
		}
	})

	// Teardown summarize: streaming snapshot vs the batch re-scan the
	// pre-pipeline code paid (Values copy + passes + sort for median).
	var snap stats.Summary
	rep.SummarizeStreamNs = timeIt(func() { snap = s.Summary() })
	var batch stats.Summary
	rep.SummarizeBatchNs = timeIt(func() { batch = stats.Summarize(s.Values()) })
	if snap.N != batch.N {
		return fmt.Errorf("samples-bench: summary mismatch: %d vs %d", snap.N, batch.N)
	}
	rep.SummarizeSpeedup = float64(rep.SummarizeBatchNs) / float64(max64(rep.SummarizeStreamNs, 1))

	rep.QuantileStreamingNs = timeIt(func() { _ = s.Live().P95 })
	rep.QuantileSortedNs = timeIt(func() { _ = stats.NewSorted(s.Values()).Quantile(0.95) })

	var bin bytes.Buffer
	rep.EncodeV2Ns = timeIt(func() {
		bin.Reset()
		if err := s.WriteBinary(&bin); err != nil {
			panic(err)
		}
	})
	rep.DecodeV2Ns = timeIt(func() {
		if _, err := trace.ReadBinary(bytes.NewReader(bin.Bytes())); err != nil {
			panic(err)
		}
	})
	rep.V2BytesPerSample = float64(bin.Len()) / float64(n)

	var csvBuf bytes.Buffer
	rep.EncodeCSVNs = timeIt(func() {
		csvBuf.Reset()
		if err := s.WriteCSV(&csvBuf); err != nil {
			panic(err)
		}
	})
	rep.CSVBytesPerSample = float64(csvBuf.Len()) / float64(n)

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// samplesBenchTo writes the report to path ("" or "-" = stdout).
func samplesBenchTo(path string, n, rateHz int) error {
	if path == "" || path == "-" {
		return runSamplesBench(os.Stdout, n, rateHz)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := runSamplesBench(f, n, rateHz); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
