package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"batterylab/internal/accessserver"
	"batterylab/internal/api"
	"batterylab/internal/simclock"
)

// schedBenchReport is the JSON baseline committed as BENCH_sched.json:
// dispatch throughput of the fault-tolerant scheduler at fleet scale —
// 100 queued builds across 10 vantage points, once with a healthy
// fleet and once with 30% of the nodes killed mid-run (their builds
// fail over to survivors).
type schedBenchReport struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	GoVersion string `json:"go_version"`

	Builds int `json:"builds"`
	Nodes  int `json:"nodes"`

	Scenarios []schedScenario `json:"scenarios"`
}

// schedScenario is one fleet condition's outcome.
type schedScenario struct {
	Name string `json:"name"`
	// WallNS is the real time the whole simulated run took; the
	// headline DispatchPerSec is Builds/WallNS.
	WallNS         int64   `json:"wall_ns"`
	DispatchPerSec float64 `json:"dispatch_per_sec"`
	// SimulatedMS is the virtual-clock makespan of the run.
	SimulatedMS int64 `json:"simulated_ms"`
	Succeeded   int   `json:"succeeded"`
	Failed      int   `json:"failed"`
	// Failovers counts lease-break requeues across all builds.
	Failovers int `json:"failovers"`
}

// benchNode is an instant in-process vantage point: pings succeed
// unless killed, and it hosts one synthetic device.
type benchNode struct {
	name string
	flk  *accessserver.FlakyNode
}

type rawBenchNode struct{ name string }

func (n rawBenchNode) Name() string { return n.name }
func (n rawBenchNode) Exec(cmd string, args ...string) (string, error) {
	switch cmd {
	case "ping":
		return "pong", nil
	case "list_devices":
		return "dev-" + n.name, nil
	case "status":
		return "status: cpu=5.0%", nil
	}
	return "", nil
}
func (n rawBenchNode) Ping() error { return nil }

// benchBackend compiles every spec into a 10-second simulated run.
type benchBackend struct{ clock simclock.Clock }

func (b benchBackend) Compile(spec api.ExperimentSpec) (accessserver.Constraints, accessserver.RunFunc, error) {
	cons := accessserver.Constraints{
		Node:     spec.Node,
		Device:   spec.Device,
		Fallback: spec.Constraints.AllowFallback,
	}
	return cons, func(ctx *accessserver.BuildContext, done func(error)) {
		b.clock.AfterFunc(10*time.Second, func() {
			// A run on a dead vantage point never reports back — the
			// hang the lease watchdog exists to break. Live nodes
			// complete normally.
			if _, err := ctx.Node.Exec("ping"); err != nil {
				return
			}
			done(nil)
		})
	}, nil
}

func (benchBackend) WorkloadNames() []string { return []string{"bench"} }

// runSchedScenario queues builds across nodes and drives the virtual
// clock to completion, optionally killing flakyCount nodes 30 s in.
func runSchedScenario(name string, builds, nodeCount, flakyCount int) (schedScenario, error) {
	clk := simclock.NewVirtual()
	srv := accessserver.New(clk, accessserver.Config{
		Executors:      nodeCount,
		HeartbeatEvery: 5 * time.Second,
		RetryBackoff:   5 * time.Second,
		MaxRetries:     3,
		PendingTimeout: 10 * time.Minute,
	})
	srv.SetSpecBackend(benchBackend{clock: clk})
	admin, err := srv.Users.Add("bench", accessserver.RoleAdmin)
	if err != nil {
		return schedScenario{}, err
	}
	nodes := make([]benchNode, nodeCount)
	for i := range nodes {
		nm := fmt.Sprintf("node%02d", i)
		flk := accessserver.NewFlakyNode(rawBenchNode{name: nm})
		if err := srv.RegisterNode(flk); err != nil {
			return schedScenario{}, err
		}
		nodes[i] = benchNode{name: nm, flk: flk}
	}

	start := time.Now()
	t0 := clk.Now()
	all := make([]*accessserver.Build, 0, builds)
	for i := 0; i < builds; i++ {
		n := nodes[i%nodeCount]
		b, err := srv.SubmitSpec(admin, api.ExperimentSpec{
			Node: n.name, Device: "dev-" + n.name,
			Workload:    api.WorkloadSpec{Name: "bench"},
			Constraints: api.ConstraintsSpec{AllowFallback: true},
		})
		if err != nil {
			return schedScenario{}, err
		}
		all = append(all, b)
	}
	if flakyCount > 0 {
		clk.AfterFunc(30*time.Second, func() {
			for i := 0; i < flakyCount; i++ {
				nodes[i].flk.Kill()
			}
		})
	}

	terminal := func(b *accessserver.Build) bool {
		switch b.State() {
		case accessserver.StateSuccess, accessserver.StateFailure, accessserver.StateAborted:
			return true
		}
		return false
	}
	allDone := func() bool {
		for _, b := range all {
			if !terminal(b) {
				return false
			}
		}
		return true
	}
	for !allDone() {
		next, ok := clk.NextDeadline()
		if !ok {
			return schedScenario{}, fmt.Errorf("sched-bench %s: stalled with %d builds unfinished", name, srv.QueueLength())
		}
		clk.RunUntil(next)
	}

	sc := schedScenario{
		Name:        name,
		WallNS:      time.Since(start).Nanoseconds(),
		SimulatedMS: clk.Now().Sub(t0).Milliseconds(),
	}
	for _, b := range all {
		if b.State() == accessserver.StateSuccess {
			sc.Succeeded++
		} else {
			sc.Failed++
		}
		sc.Failovers += b.Retries()
	}
	sc.DispatchPerSec = float64(builds) / (float64(sc.WallNS) / 1e9)
	return sc, nil
}

// runSchedBench measures both fleet conditions and writes the JSON
// report.
func runSchedBench(w io.Writer, builds, nodes int) error {
	rep := schedBenchReport{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		GoVersion: runtime.Version(),
		Builds:    builds,
		Nodes:     nodes,
	}
	healthy, err := runSchedScenario("healthy", builds, nodes, 0)
	if err != nil {
		return err
	}
	flaky, err := runSchedScenario("flaky-30pct", builds, nodes, nodes*3/10)
	if err != nil {
		return err
	}
	rep.Scenarios = []schedScenario{healthy, flaky}
	if flaky.Succeeded != builds {
		return fmt.Errorf("sched-bench: only %d/%d builds survived the flaky fleet", flaky.Succeeded, builds)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// schedBenchTo writes the report to path ("" or "-" = stdout).
func schedBenchTo(path string, builds, nodes int) error {
	if path == "" || path == "-" {
		return runSchedBench(os.Stdout, builds, nodes)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := runSchedBench(f, builds, nodes); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
