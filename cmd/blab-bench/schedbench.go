package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"batterylab/internal/accessserver"
	"batterylab/internal/api"
	"batterylab/internal/simclock"
)

// schedBenchReport is the JSON baseline committed as BENCH_sched.json:
// dispatch throughput of the fault-tolerant scheduler at fleet scale —
// 100 queued builds across 10 vantage points, once with a healthy
// fleet and once with 30% of the nodes killed mid-run (their builds
// fail over to survivors) — plus two scheduling-policy scenarios: a
// skewed-tenant run (one owner submits 70% of the work under a
// fair-share run cap) and a heterogeneous fleet (fallback placement
// must land builds on the requested device model).
type schedBenchReport struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	GoVersion string `json:"go_version"`

	Builds int `json:"builds"`
	Nodes  int `json:"nodes"`

	Scenarios []schedScenario `json:"scenarios"`
}

// schedScenario is one fleet condition's outcome.
type schedScenario struct {
	Name string `json:"name"`
	// WallNS is the real time the whole simulated run took; the
	// headline DispatchPerSec is Builds/WallNS.
	WallNS         int64   `json:"wall_ns"`
	DispatchPerSec float64 `json:"dispatch_per_sec"`
	// SimulatedMS is the virtual-clock makespan of the run.
	SimulatedMS int64 `json:"simulated_ms"`
	Succeeded   int   `json:"succeeded"`
	Failed      int   `json:"failed"`
	// Failovers counts lease-break requeues across all builds.
	Failovers int `json:"failovers"`
	// MaxWaitMS is each owner's worst submit→dispatch wait in simulated
	// time (skewed-tenant only): fairness means no small tenant's wait
	// diverges toward the hog's.
	MaxWaitMS map[string]int64 `json:"max_wait_ms,omitempty"`
	// ModelMatched counts builds the scorer placed on a node hosting
	// the requested device model (hetero-fleet only).
	ModelMatched int `json:"model_matched,omitempty"`
}

// benchNode is an instant in-process vantage point: pings succeed
// unless killed, and it hosts one synthetic device.
type benchNode struct {
	name string
	flk  *accessserver.FlakyNode
}

type rawBenchNode struct{ name string }

func (n rawBenchNode) Name() string { return n.name }
func (n rawBenchNode) Exec(cmd string, args ...string) (string, error) {
	switch cmd {
	case "ping":
		return "pong", nil
	case "list_devices":
		return "dev-" + n.name, nil
	case "status":
		return "status: cpu=5.0%", nil
	}
	return "", nil
}
func (n rawBenchNode) Ping() error { return nil }

// devBenchNode hosts a configurable device serial, so scenarios can
// build fleets with distinct device models for the placer to match.
type devBenchNode struct{ name, device string }

func (n devBenchNode) Name() string { return n.name }
func (n devBenchNode) Exec(cmd string, args ...string) (string, error) {
	switch cmd {
	case "ping":
		return "pong", nil
	case "list_devices":
		return n.device, nil
	case "status":
		return "status: cpu=5.0%", nil
	}
	return "", nil
}
func (n devBenchNode) Ping() error { return nil }

// benchBackend compiles every spec into a 10-second simulated run.
type benchBackend struct{ clock simclock.Clock }

func (b benchBackend) Compile(spec api.ExperimentSpec) (accessserver.Constraints, accessserver.RunFunc, error) {
	cons := accessserver.Constraints{
		Node:     spec.Node,
		Device:   spec.Device,
		Fallback: spec.Constraints.AllowFallback,
	}
	return cons, func(ctx *accessserver.BuildContext, done func(error)) {
		b.clock.AfterFunc(10*time.Second, func() {
			// A run on a dead vantage point never reports back — the
			// hang the lease watchdog exists to break. Live nodes
			// complete normally.
			if _, err := ctx.Node.Exec("ping"); err != nil {
				return
			}
			done(nil)
		})
	}, nil
}

func (benchBackend) WorkloadNames() []string { return []string{"bench"} }

// runSchedScenario queues builds across nodes and drives the virtual
// clock to completion, optionally killing flakyCount nodes 30 s in.
func runSchedScenario(name string, builds, nodeCount, flakyCount int) (schedScenario, error) {
	clk := simclock.NewVirtual()
	srv := accessserver.New(clk, accessserver.Config{
		Executors:      nodeCount,
		HeartbeatEvery: 5 * time.Second,
		RetryBackoff:   5 * time.Second,
		MaxRetries:     3,
		PendingTimeout: 10 * time.Minute,
	})
	srv.SetSpecBackend(benchBackend{clock: clk})
	admin, err := srv.Users.Add("bench", accessserver.RoleAdmin)
	if err != nil {
		return schedScenario{}, err
	}
	nodes := make([]benchNode, nodeCount)
	for i := range nodes {
		nm := fmt.Sprintf("node%02d", i)
		flk := accessserver.NewFlakyNode(rawBenchNode{name: nm})
		if err := srv.RegisterNode(flk); err != nil {
			return schedScenario{}, err
		}
		nodes[i] = benchNode{name: nm, flk: flk}
	}

	start := time.Now()
	t0 := clk.Now()
	all := make([]*accessserver.Build, 0, builds)
	for i := 0; i < builds; i++ {
		n := nodes[i%nodeCount]
		b, err := srv.SubmitSpec(admin, api.ExperimentSpec{
			Node: n.name, Device: "dev-" + n.name,
			Workload:    api.WorkloadSpec{Name: "bench"},
			Constraints: api.ConstraintsSpec{AllowFallback: true},
		})
		if err != nil {
			return schedScenario{}, err
		}
		all = append(all, b)
	}
	if flakyCount > 0 {
		clk.AfterFunc(30*time.Second, func() {
			for i := 0; i < flakyCount; i++ {
				nodes[i].flk.Kill()
			}
		})
	}

	if err := driveSched(clk, srv, name, all); err != nil {
		return schedScenario{}, err
	}
	return tallySched(name, start, t0, clk, all), nil
}

// runSkewedTenant measures admission fairness: one hog owner submits
// 70% of the work, three small tenants 10% each, all under the
// fair-share run cap. Starvation would show as a small tenant's worst
// wait tracking the hog's; fairness keeps it an order of magnitude
// lower (the hog queues behind its own cap, the small tenants only
// behind free executors).
func runSkewedTenant(name string, builds, nodeCount int) (schedScenario, error) {
	clk := simclock.NewVirtual()
	srv := accessserver.New(clk, accessserver.Config{
		Executors:      nodeCount,
		HeartbeatEvery: 5 * time.Second,
		RetryBackoff:   5 * time.Second,
		MaxRetries:     3,
		PendingTimeout: time.Hour,
		OwnerRunCap:    3,
	})
	srv.SetSpecBackend(benchBackend{clock: clk})
	owners := []string{"hog", "u1", "u2", "u3"}
	users := map[string]*accessserver.User{}
	for _, o := range owners {
		u, err := srv.Users.Add(o, accessserver.RoleExperimenter)
		if err != nil {
			return schedScenario{}, err
		}
		users[o] = u
	}
	nodes := make([]string, nodeCount)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("node%02d", i)
		flk := accessserver.NewFlakyNode(rawBenchNode{name: nodes[i]})
		if err := srv.RegisterNode(flk); err != nil {
			return schedScenario{}, err
		}
	}

	// The hog floods the queue first; the small tenants submit behind
	// its backlog — the shape fair-share exists for.
	perSmall := builds / 10
	plan := make([]string, 0, builds)
	for i := 0; i < builds-3*perSmall; i++ {
		plan = append(plan, "hog")
	}
	for _, o := range owners[1:] {
		for i := 0; i < perSmall; i++ {
			plan = append(plan, o)
		}
	}
	start := time.Now()
	t0 := clk.Now()
	all := make([]*accessserver.Build, 0, builds)
	ownerOf := make(map[*accessserver.Build]string, builds)
	for i, o := range plan {
		n := nodes[i%nodeCount]
		b, err := srv.SubmitSpec(users[o], api.ExperimentSpec{
			Node: n, Device: "dev-" + n,
			Workload:    api.WorkloadSpec{Name: "bench"},
			Constraints: api.ConstraintsSpec{AllowFallback: true},
		})
		if err != nil {
			return schedScenario{}, err
		}
		all = append(all, b)
		ownerOf[b] = o
	}
	if err := driveSched(clk, srv, name, all); err != nil {
		return schedScenario{}, err
	}

	sc := tallySched(name, start, t0, clk, all)
	sc.MaxWaitMS = map[string]int64{}
	for _, b := range all {
		o := ownerOf[b]
		if ms := b.QueueTime().Milliseconds(); ms > sc.MaxWaitMS[o] {
			sc.MaxWaitMS[o] = ms
		}
	}
	for _, o := range owners[1:] {
		if sc.MaxWaitMS[o]*2 > sc.MaxWaitMS["hog"] {
			return schedScenario{}, fmt.Errorf(
				"sched-bench %s: tenant %s starved — worst wait %dms vs hog's %dms",
				name, o, sc.MaxWaitMS[o], sc.MaxWaitMS["hog"])
		}
	}
	return sc, nil
}

// runHeteroFleet measures scoring placement on a mixed fleet: half the
// nodes host pixel4-model devices, half motog5, and every build pins a
// node that does not exist, asking for one model or the other with
// fallback enabled. The scorer's model-match term must land every
// build on a node hosting the requested model.
func runHeteroFleet(name string, builds, nodeCount int) (schedScenario, error) {
	clk := simclock.NewVirtual()
	srv := accessserver.New(clk, accessserver.Config{
		Executors:      nodeCount,
		HeartbeatEvery: 5 * time.Second,
		RetryBackoff:   5 * time.Second,
		MaxRetries:     3,
		PendingTimeout: time.Hour,
	})
	srv.SetSpecBackend(benchBackend{clock: clk})
	admin, err := srv.Users.Add("bench", accessserver.RoleAdmin)
	if err != nil {
		return schedScenario{}, err
	}
	models := []string{"pixel4", "motog5"}
	nodeModel := map[string]string{}
	for i := 0; i < nodeCount; i++ {
		model := models[i%len(models)]
		nm := fmt.Sprintf("%s-host%02d", model, i/len(models))
		dev := fmt.Sprintf("%s-%02d", model, i/len(models))
		flk := accessserver.NewFlakyNode(devBenchNode{name: nm, device: dev})
		if err := srv.RegisterNode(flk); err != nil {
			return schedScenario{}, err
		}
		nodeModel[nm] = model
	}

	start := time.Now()
	t0 := clk.Now()
	all := make([]*accessserver.Build, 0, builds)
	wantModel := make(map[*accessserver.Build]string, builds)
	for i := 0; i < builds; i++ {
		model := models[i%len(models)]
		b, err := srv.SubmitSpec(admin, api.ExperimentSpec{
			// The pinned node is long gone; only fallback placement —
			// and so the scorer — can run this build.
			Node: "retired-node", Device: model + "-want",
			Workload:    api.WorkloadSpec{Name: "bench"},
			Constraints: api.ConstraintsSpec{AllowFallback: true},
		})
		if err != nil {
			return schedScenario{}, err
		}
		all = append(all, b)
		wantModel[b] = model
	}
	if err := driveSched(clk, srv, name, all); err != nil {
		return schedScenario{}, err
	}

	sc := tallySched(name, start, t0, clk, all)
	for _, b := range all {
		if nodeModel[b.NodeName()] == wantModel[b] {
			sc.ModelMatched++
		}
	}
	if sc.ModelMatched != builds {
		return schedScenario{}, fmt.Errorf(
			"sched-bench %s: only %d/%d builds placed on the requested device model",
			name, sc.ModelMatched, builds)
	}
	return sc, nil
}

// driveSched runs the virtual clock until every build is terminal.
func driveSched(clk *simclock.Virtual, srv *accessserver.Server, name string, all []*accessserver.Build) error {
	terminal := func(b *accessserver.Build) bool {
		switch b.State() {
		case accessserver.StateSuccess, accessserver.StateFailure, accessserver.StateAborted:
			return true
		}
		return false
	}
	allDone := func() bool {
		for _, b := range all {
			if !terminal(b) {
				return false
			}
		}
		return true
	}
	for !allDone() {
		next, ok := clk.NextDeadline()
		if !ok {
			return fmt.Errorf("sched-bench %s: stalled with %d builds unfinished", name, srv.QueueLength())
		}
		clk.RunUntil(next)
	}
	return nil
}

// tallySched folds build outcomes into a scenario record.
func tallySched(name string, start time.Time, t0 time.Time, clk *simclock.Virtual, all []*accessserver.Build) schedScenario {
	sc := schedScenario{
		Name:        name,
		WallNS:      time.Since(start).Nanoseconds(),
		SimulatedMS: clk.Now().Sub(t0).Milliseconds(),
	}
	for _, b := range all {
		if b.State() == accessserver.StateSuccess {
			sc.Succeeded++
		} else {
			sc.Failed++
		}
		sc.Failovers += b.Retries()
	}
	sc.DispatchPerSec = float64(len(all)) / (float64(sc.WallNS) / 1e9)
	return sc
}

// buildSchedReport runs every scenario at the given scale.
func buildSchedReport(builds, nodes int) (schedBenchReport, error) {
	rep := schedBenchReport{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		GoVersion: runtime.Version(),
		Builds:    builds,
		Nodes:     nodes,
	}
	healthy, err := runSchedScenario("healthy", builds, nodes, 0)
	if err != nil {
		return rep, err
	}
	flaky, err := runSchedScenario("flaky-30pct", builds, nodes, nodes*3/10)
	if err != nil {
		return rep, err
	}
	if flaky.Succeeded != builds {
		return rep, fmt.Errorf("sched-bench: only %d/%d builds survived the flaky fleet", flaky.Succeeded, builds)
	}
	skewed, err := runSkewedTenant("skewed-tenant", builds, nodes)
	if err != nil {
		return rep, err
	}
	hetero, err := runHeteroFleet("hetero-fleet", builds/5, nodes)
	if err != nil {
		return rep, err
	}
	rep.Scenarios = []schedScenario{healthy, flaky, skewed, hetero}
	return rep, nil
}

// runSchedBench measures every fleet condition and writes the JSON
// report.
func runSchedBench(w io.Writer, builds, nodes int) error {
	rep, err := buildSchedReport(builds, nodes)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// schedBenchCheck reruns the scheduler scenarios and compares the
// deterministic outcome fields — succeeded, failed, failovers, and
// model-matched placements — against the committed baseline. Timing
// fields are machine-dependent and ignored. A non-nil error means the
// scheduler's behavior drifted from the recorded baseline.
func schedBenchCheck(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want schedBenchReport
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("sched-bench-check: parsing %s: %w", path, err)
	}
	got, err := buildSchedReport(want.Builds, want.Nodes)
	if err != nil {
		return err
	}
	byName := map[string]schedScenario{}
	for _, sc := range got.Scenarios {
		byName[sc.Name] = sc
	}
	var drifts []string
	for _, w := range want.Scenarios {
		g, ok := byName[w.Name]
		if !ok {
			drifts = append(drifts, fmt.Sprintf("scenario %s: missing from rerun", w.Name))
			continue
		}
		diff := func(field string, wantV, gotV int) {
			if wantV != gotV {
				drifts = append(drifts, fmt.Sprintf("scenario %s: %s drifted %d -> %d", w.Name, field, wantV, gotV))
			}
		}
		diff("succeeded", w.Succeeded, g.Succeeded)
		diff("failed", w.Failed, g.Failed)
		diff("failovers", w.Failovers, g.Failovers)
		diff("model_matched", w.ModelMatched, g.ModelMatched)
	}
	if len(drifts) > 0 {
		for _, d := range drifts {
			fmt.Fprintln(os.Stderr, d)
		}
		return fmt.Errorf("%d deterministic field(s) drifted from %s", len(drifts), path)
	}
	return nil
}

// schedBenchTo writes the report to path ("" or "-" = stdout).
func schedBenchTo(path string, builds, nodes int) error {
	if path == "" || path == "-" {
		return runSchedBench(os.Stdout, builds, nodes)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := runSchedBench(f, builds, nodes); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
