// Command blab-bench regenerates the paper's tables and figures from the
// simulation and prints them as text tables — the data behind
// EXPERIMENTS.md. Each experiment runs at the paper's scale by default
// (5 repetitions, 10 pages, 5-minute accuracy test).
//
// Usage:
//
//	blab-bench -all
//	blab-bench -fig 2      # one figure (2, 3, 4, 5, 6)
//	blab-bench -table 2    # Table 2
//	blab-bench -sys        # §4.2 system performance
//	blab-bench -ablations  # design-choice ablations
//	blab-bench -samples-bench -samples-bench-out BENCH_samples.json
//	                       # streaming sample-pipeline microbenchmarks
//	blab-bench -sched-bench -sched-bench-out BENCH_sched.json
//	                       # scheduler dispatch throughput + placement/fairness scenarios
//	blab-bench -sched-bench-check BENCH_sched.json
//	                       # fail if deterministic scheduler outcomes drift from the baseline
//	blab-bench -store-bench -store-bench-out BENCH_store.json
//	                       # WAL append/replay/compaction microbenchmark
//	blab-bench -store-bench-check BENCH_store.json
//	                       # fail if the deterministic WAL-size fields drift from the baseline
//	blab-bench -fleet-bench -fleet-bench-out BENCH_fleet.json
//	                       # fleet-scale load: nodes × streaming clients × campaign churn,
//	                       # a read-flood phase against the snapshot-served routes, and a
//	                       # two-server federation phase routing builds over the peer relay
//	blab-bench -fleet-bench-check BENCH_fleet.json
//	                       # fail if deterministic fleet outcomes (incl. read flood and
//	                       # federation) drift
//
// Scale knobs: -reps, -pages, -scrolls, -rate, -video-seconds, -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"batterylab/internal/experiments"
)

func main() {
	var (
		all       = flag.Bool("all", false, "run every experiment")
		fig       = flag.Int("fig", 0, "figure number to reproduce (2-6)")
		tab       = flag.Int("table", 0, "table number to reproduce (2)")
		sys       = flag.Bool("sys", false, "system performance (§4.2)")
		ablations = flag.Bool("ablations", false, "design-choice ablations")
		campaign  = flag.Bool("campaign", false, "concurrent campaign sweep across vantage points")
		nodes     = flag.Int("nodes", 2, "vantage points for -campaign")
		perNode   = flag.Int("per-node", 3, "runs per vantage point for -campaign")

		samplesBench    = flag.Bool("samples-bench", false, "micro-benchmark the streaming sample pipeline")
		samplesBenchOut = flag.String("samples-bench-out", "", "write the samples benchmark JSON here (default stdout)")
		samplesBenchN   = flag.Int("samples-bench-n", 1_000_000, "series length for -samples-bench")

		schedBench      = flag.Bool("sched-bench", false, "benchmark scheduler dispatch throughput, healthy vs 30% flaky fleet")
		schedBenchOut   = flag.String("sched-bench-out", "", "write the scheduler benchmark JSON here (default stdout)")
		schedBenchN     = flag.Int("sched-bench-builds", 100, "queued builds for -sched-bench")
		schedBenchNodes = flag.Int("sched-bench-nodes", 10, "vantage points for -sched-bench")
		schedBenchCk    = flag.String("sched-bench-check", "", "rerun the scheduler scenarios and fail if deterministic outcomes drift from this baseline JSON")

		storeBench    = flag.Bool("store-bench", false, "micro-benchmark the WAL append/replay/compaction path")
		storeBenchOut = flag.String("store-bench-out", "", "write the store benchmark JSON here (default stdout)")
		storeBenchN   = flag.Int("store-bench-builds", 10_000, "build lifecycles to log for -store-bench")
		storeBenchCk  = flag.String("store-bench-check", "", "rerun the store benchmark and fail if deterministic WAL-size fields drift from this baseline JSON")

		fleetBench        = flag.Bool("fleet-bench", false, "fleet-scale load harness: nodes × streaming clients × campaign churn on the virtual clock")
		fleetBenchOut     = flag.String("fleet-bench-out", "", "write the fleet benchmark JSON here (default stdout)")
		fleetBenchNodes   = flag.Int("fleet-bench-nodes", 16, "simulated vantage points for -fleet-bench")
		fleetBenchClients = flag.Int("fleet-bench-clients", 8, "concurrent event-stream clients for -fleet-bench")
		fleetBenchN       = flag.Int("fleet-bench-builds", 200, "builds (singles + campaigns) for -fleet-bench")
		fleetBenchCk      = flag.String("fleet-bench-check", "", "rerun the fleet scenario and fail if deterministic outcomes (including the read-flood section) drift from this baseline JSON")

		seed    = flag.Uint64("seed", 2019, "simulation seed")
		reps    = flag.Int("reps", 5, "repetitions per configuration")
		pages   = flag.Int("pages", 10, "pages per browser run")
		scrolls = flag.Int("scrolls", 8, "scrolls per page")
		rate    = flag.Int("rate", 250, "monitor sample rate (Hz) for sweeps")
		videoS  = flag.Int("video-seconds", 300, "accuracy test duration")
	)
	flag.Parse()

	opts := experiments.Options{
		Seed:          *seed,
		Repetitions:   *reps,
		Pages:         *pages,
		Scrolls:       *scrolls,
		SampleRate:    *rate,
		VideoDuration: time.Duration(*videoS) * time.Second,
	}

	ran := false
	run := func(name string, f func() (string, error)) {
		ran = true
		start := time.Now()
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("(%s regenerated in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *all || *fig == 2 {
		run("figure 2", func() (string, error) {
			o := opts
			o.SampleRate = 5000 // the Monsoon's full rate
			rows, err := experiments.Fig2Accuracy(o)
			if err != nil {
				return "", err
			}
			gap, err := experiments.SummarizeFig2(rows)
			if err != nil {
				return "", err
			}
			return experiments.FormatFig2(rows) + fmt.Sprintf(
				"direct/relay KS=%.3f  mirror lift=%.1f mA\n",
				gap.DirectRelayKS, gap.MirrorLiftMA), nil
		})
	}
	if *all || *fig == 3 {
		run("figure 3", func() (string, error) {
			rows, err := experiments.Fig3BrowserEnergy(opts)
			if err != nil {
				return "", err
			}
			f := experiments.SummarizeFig3(rows)
			return experiments.FormatFig3(rows) + fmt.Sprintf(
				"order: %v  mirror-extra spread=%.2f mAh\n", f.Order, f.ExtraSpreadMAH), nil
		})
	}
	if *all || *fig == 4 {
		run("figure 4", func() (string, error) {
			rows, err := experiments.Fig4DeviceCPU(opts)
			if err != nil {
				return "", err
			}
			return experiments.FormatFig4(rows), nil
		})
	}
	if *all || *fig == 5 {
		run("figure 5", func() (string, error) {
			rows, err := experiments.Fig5ControllerCPU(opts)
			if err != nil {
				return "", err
			}
			return experiments.FormatFig5(rows), nil
		})
	}
	if *all || *tab == 2 {
		run("table 2", func() (string, error) {
			rows, err := experiments.Table2Rows(opts)
			if err != nil {
				return "", err
			}
			return experiments.FormatTable2(rows), nil
		})
	}
	if *all || *fig == 6 {
		run("figure 6", func() (string, error) {
			rows, err := experiments.Fig6VPNEnergy(opts)
			if err != nil {
				return "", err
			}
			f := experiments.SummarizeFig6(rows)
			return experiments.FormatFig6(rows) + fmt.Sprintf(
				"Chrome@Japan dip: %+.1f%%\n", f.ChromeJapanDipPct), nil
		})
	}
	if *all || *sys {
		run("system performance", func() (string, error) {
			rep, err := experiments.SysPerf(opts)
			if err != nil {
				return "", err
			}
			return experiments.FormatSysPerf(rep), nil
		})
	}
	if *all || *ablations {
		run("ablation: relay overhead", func() (string, error) {
			o := opts
			o.VideoDuration = time.Minute
			o.SampleRate = 1000
			rep, err := experiments.AblationRelayOverhead(o)
			if err != nil {
				return "", err
			}
			return experiments.FormatRelayOverhead(rep), nil
		})
		run("ablation: bitrate", func() (string, error) {
			rows, err := experiments.AblationBitrate(opts, nil)
			if err != nil {
				return "", err
			}
			return experiments.FormatBitrate(rows), nil
		})
		run("ablation: sample rate", func() (string, error) {
			rows, err := experiments.AblationSampleRate(opts, nil)
			if err != nil {
				return "", err
			}
			return experiments.FormatSampleRate(rows), nil
		})
		run("ablation: automation", func() (string, error) {
			rows, err := experiments.AblationAutomation(opts)
			if err != nil {
				return "", err
			}
			return experiments.FormatAutomation(rows), nil
		})
		run("ablation: scheduler", func() (string, error) {
			rows, err := experiments.AblationScheduler(opts)
			if err != nil {
				return "", err
			}
			return experiments.FormatScheduler(rows), nil
		})
	}

	if *all || *campaign {
		run("campaign sweep", func() (string, error) {
			rep, err := experiments.CampaignSweep(opts, *nodes, *perNode)
			if err != nil {
				return "", err
			}
			return experiments.FormatCampaign(rep), nil
		})
	}

	if *samplesBench {
		ran = true
		if err := samplesBenchTo(*samplesBenchOut, *samplesBenchN, 5000); err != nil {
			fmt.Fprintf(os.Stderr, "samples-bench: %v\n", err)
			os.Exit(1)
		}
		if *samplesBenchOut != "" && *samplesBenchOut != "-" {
			fmt.Printf("(samples benchmark written to %s)\n", *samplesBenchOut)
		}
	}

	if *schedBench {
		ran = true
		if err := schedBenchTo(*schedBenchOut, *schedBenchN, *schedBenchNodes); err != nil {
			fmt.Fprintf(os.Stderr, "sched-bench: %v\n", err)
			os.Exit(1)
		}
		if *schedBenchOut != "" && *schedBenchOut != "-" {
			fmt.Printf("(scheduler benchmark written to %s)\n", *schedBenchOut)
		}
	}

	if *schedBenchCk != "" {
		ran = true
		if err := schedBenchCheck(*schedBenchCk); err != nil {
			fmt.Fprintf(os.Stderr, "sched-bench-check: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("(scheduler outcomes match %s)\n", *schedBenchCk)
	}

	if *storeBench {
		ran = true
		if err := storeBenchTo(*storeBenchOut, *storeBenchN); err != nil {
			fmt.Fprintf(os.Stderr, "store-bench: %v\n", err)
			os.Exit(1)
		}
		if *storeBenchOut != "" && *storeBenchOut != "-" {
			fmt.Printf("(store benchmark written to %s)\n", *storeBenchOut)
		}
	}

	if *storeBenchCk != "" {
		ran = true
		if err := storeBenchCheck(*storeBenchCk); err != nil {
			fmt.Fprintf(os.Stderr, "store-bench-check: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("(store WAL format matches %s)\n", *storeBenchCk)
	}

	if *fleetBench {
		ran = true
		if err := fleetBenchTo(*fleetBenchOut, *fleetBenchNodes, *fleetBenchClients, *fleetBenchN); err != nil {
			fmt.Fprintf(os.Stderr, "fleet-bench: %v\n", err)
			os.Exit(1)
		}
		if *fleetBenchOut != "" && *fleetBenchOut != "-" {
			fmt.Printf("(fleet benchmark written to %s)\n", *fleetBenchOut)
		}
	}

	if *fleetBenchCk != "" {
		ran = true
		if err := fleetBenchCheck(*fleetBenchCk); err != nil {
			fmt.Fprintf(os.Stderr, "fleet-bench-check: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("(fleet outcomes match %s)\n", *fleetBenchCk)
	}

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
