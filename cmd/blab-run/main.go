// Command blab-run submits one battery measurement and prints the
// results — the quickest way to ask the paper's §4.2 question for a
// single browser. By default it assembles an in-process simulated
// deployment; with -server it submits the same declarative spec to a
// remote access server's v1 API and streams the run back, printing
// identical output — the backend is location-transparent.
//
//	blab-run -browser Brave
//	blab-run -browser Chrome -mirror -vpn Bunkyo -pages 5 -out trace.csv
//	blab-run -browser Brave -out trace.bin   # compact binary trace (v2)
//	blab-run -video            # the §4.1 playback workload instead
//	blab-run -server http://127.0.0.1:9090 -token $TOKEN -browser Brave -pages 2
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"batterylab"
)

func main() {
	var (
		browserName = flag.String("browser", "Brave", "study browser (Brave, Chrome, Edge, Firefox)")
		videoMode   = flag.Bool("video", false, "run the mp4 playback workload instead of browsing")
		mirror      = flag.Bool("mirror", false, "activate device mirroring during the run")
		vpnLoc      = flag.String("vpn", "", "VPN exit location (e.g. Bunkyo); empty = direct")
		pages       = flag.Int("pages", 10, "pages to visit")
		scrolls     = flag.Int("scrolls", 8, "scrolls per page")
		rate        = flag.Int("rate", 1000, "monitor sample rate (Hz)")
		seed        = flag.Uint64("seed", 2019, "simulation seed (local backend only)")
		out         = flag.String("out", "", "write the current trace here (.csv = text, anything else = binary v2)")
		progress    = flag.Bool("progress", false, "print session phase transitions")
		server      = flag.String("server", "", "access server base URL; empty = in-process simulation")
		token       = flag.String("token", "", "API token for -server")
		nodeName    = flag.String("node", "", "target vantage point (default: the backend's first)")
		deviceSer   = flag.String("device", "", "target device serial (default: the node's first)")
	)
	flag.Parse()

	// Ctrl-C cancels the session: the VPN, mirroring pipeline and monitor
	// are torn down in order before exit — locally or on the server.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var backend batterylab.Backend
	if *server != "" {
		var err error
		backend, err = batterylab.RemoteBackend(*server, *token)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		clock := batterylab.VirtualClock()
		dep, err := batterylab.NewDeployment(clock, batterylab.DeploymentConfig{
			Seed:      *seed,
			VideoPath: "/sdcard/blab.mp4",
		})
		if err != nil {
			log.Fatal(err)
		}
		backend = batterylab.LocalBackend(dep.Platform)
	}

	// Resolve the target vantage point and device against the backend —
	// the same discovery call locally and remotely.
	node, device := *nodeName, *deviceSer
	if node == "" || device == "" {
		nodes, err := backend.Nodes(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if node == "" {
			if len(nodes) == 0 {
				log.Fatal("no vantage points available")
			}
			node = nodes[0].Name
		}
		if device == "" {
			found := false
			for _, n := range nodes {
				if n.Name != node {
					continue
				}
				found = true
				if len(n.Devices) > 0 {
					device = n.Devices[0]
				}
			}
			switch {
			case !found:
				names := make([]string, 0, len(nodes))
				for _, n := range nodes {
					names = append(names, n.Name)
				}
				log.Fatalf("unknown vantage point %q (have %s)", node, strings.Join(names, ", "))
			case device == "":
				log.Fatalf("vantage point %s has no devices", node)
			}
		}
	}

	// The declarative v1 spec: a named registry workload plus params,
	// instead of an in-process closure.
	spec := batterylab.ExperimentSpecV1{
		Node:        node,
		Device:      device,
		Monitor:     batterylab.MonitorSpec{SampleRateHz: *rate},
		Mirroring:   *mirror,
		VPNLocation: *vpnLoc,
	}
	label := *browserName
	if *videoMode {
		label = "video playback"
		spec.Workload = batterylab.WorkloadSpec{Name: "video"}
	} else {
		spec.Workload = batterylab.WorkloadSpec{
			Name: "browser",
			Params: batterylab.Params{
				"browser": *browserName,
				"pages":   min(*pages, 10),
				"scrolls": *scrolls,
			},
		}
	}

	var obs []batterylab.Observer
	if *progress {
		samplesSeen := 0
		obs = append(obs, batterylab.ObserverFuncs{
			Phase: func(e batterylab.PhaseChange) {
				if e.Step != "" {
					fmt.Printf("  [%s] step %s\n", e.At.Format("15:04:05"), e.Step)
					return
				}
				fmt.Printf("  [%s] %s\n", e.At.Format("15:04:05"), e.Phase)
			},
			Sample: func(s batterylab.Sample) {
				// The streaming summary rides along on every live sample;
				// print one line every 30 samples.
				if samplesSeen++; samplesSeen%30 == 0 && s.Live.N > 0 {
					fmt.Printf("  [%s] live: n=%d mean=%.1f mA p95=%.1f mA %.2f mAh\n",
						s.At.Format("15:04:05"), s.Live.N, s.Live.Mean,
						s.Live.P95, s.Live.IntegralSeconds/3600)
				}
			},
		})
	}

	start := time.Now()
	sess, err := backend.StartExperimentSpec(ctx, spec, obs...)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}

	cdf, err := res.Current.CDF()
	if err != nil {
		log.Fatal(err)
	}
	where := "in-process simulation"
	if *server != "" {
		where = *server
	}
	fmt.Printf("backend     : %s\n", where)
	fmt.Printf("workload    : %s (mirroring=%v, vpn=%q) on %s/%s\n", label, *mirror, *vpnLoc, node, device)
	fmt.Printf("measured    : %s of device time in %s of wall time\n",
		res.Duration.Round(time.Second), time.Since(start).Round(time.Millisecond))
	fmt.Printf("samples     : %d at %d Hz\n", res.Current.Len(), *rate)
	fmt.Printf("current     : p50=%.1f mA  p90=%.1f mA  mean=%.1f mA\n",
		cdf.Median(), cdf.Quantile(0.9), res.Current.Summary().Mean)
	fmt.Printf("discharge   : %.2f mAh\n", res.EnergyMAH)
	fmt.Printf("device CPU  : p50=%.1f %%\n", res.DeviceCPU.Summary().Median)
	fmt.Printf("ctl CPU     : p50=%.1f %%\n", res.ControllerCPU.Summary().Median)
	if *mirror {
		fmt.Printf("stream      : %.1f MB uploaded\n", float64(res.MirrorUploadBytes)/1e6)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if strings.EqualFold(filepath.Ext(*out), ".csv") {
			err = res.Current.WriteCSV(f)
		} else {
			err = res.Current.WriteBinary(f)
		}
		if err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace       : %s\n", *out)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
