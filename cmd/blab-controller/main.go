// Command blab-controller runs a vantage point daemon on the real clock:
// a controller with one simulated test device, exposing the secure
// command channel the access server manages it through (§3.4's port
// 2222), the Meross-style power socket API, and the mirroring GUI
// backend (§3.4's port 8080).
//
// On start it prints the controller's host key fingerprint and waits for
// the access server's public key (hex, via -authorize) to be granted
// command access.
//
// Usage:
//
//	blab-controller -name node1 -ssh 127.0.0.1:2222 -http 127.0.0.1:8080 \
//	    -authorize <hex-ed25519-pubkey> [-allow-cidr 10.0.0.0/8]
package main

import (
	"crypto/ed25519"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"

	"batterylab/internal/controller"
	"batterylab/internal/device"
	"batterylab/internal/simclock"
	"batterylab/internal/sshx"
)

func main() {
	var (
		name      = flag.String("name", "node1", "vantage point identifier")
		sshAddr   = flag.String("ssh", "127.0.0.1:2222", "secure command channel listen address")
		httpAddr  = flag.String("http", "127.0.0.1:8080", "GUI backend + socket API listen address")
		authorize = flag.String("authorize", "", "hex ed25519 public key of the access server")
		allowCIDR = flag.String("allow-cidr", "", "restrict command channel to this CIDR")
		seed      = flag.Uint64("seed", 1, "simulation seed for the device models")
	)
	flag.Parse()

	clock := simclock.Real()
	ctl, err := controller.New(clock, controller.Config{Name: *name, Seed: *seed})
	if err != nil {
		log.Fatalf("assembling vantage point: %v", err)
	}
	dev, err := device.New(clock, device.Config{Seed: *seed})
	if err != nil {
		log.Fatalf("building device: %v", err)
	}
	if err := ctl.AttachDevice(dev); err != nil {
		log.Fatalf("attaching device: %v", err)
	}

	hostKey, err := sshx.GenerateKeypair()
	if err != nil {
		log.Fatalf("generating host key: %v", err)
	}
	srv := ctl.NewSSHServer(hostKey)
	if *authorize != "" {
		raw, err := hex.DecodeString(*authorize)
		if err != nil || len(raw) != ed25519.PublicKeySize {
			log.Fatalf("-authorize: want %d hex bytes of ed25519 public key", ed25519.PublicKeySize)
		}
		srv.AuthorizeKey(ed25519.PublicKey(raw))
	} else {
		log.Printf("warning: no -authorize key; the command channel will reject everyone")
	}
	if *allowCIDR != "" {
		if err := srv.AllowCIDR(*allowCIDR); err != nil {
			log.Fatalf("-allow-cidr: %v", err)
		}
	}
	boundSSH, err := srv.Listen(*sshAddr)
	if err != nil {
		log.Fatalf("command channel: %v", err)
	}
	defer srv.Close()

	sess, err := ctl.MirrorSession(dev.Serial())
	if err != nil {
		log.Fatalf("mirror session: %v", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/gui/", http.StripPrefix("/gui", sess.GUIHandler()))
	mux.Handle("/socket/", http.StripPrefix("/socket", ctl.Socket().Handler()))
	httpSrv := &http.Server{Addr: *httpAddr, Handler: mux}
	go func() {
		if err := httpSrv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("http: %v", err)
		}
	}()

	fmt.Printf("vantage point %s up\n", *name)
	fmt.Printf("  command channel : %s (host key %s)\n", boundSSH, sshx.Fingerprint(hostKey.Pub))
	fmt.Printf("  GUI backend     : http://%s/gui/api/session\n", *httpAddr)
	fmt.Printf("  power socket    : http://%s/socket/status\n", *httpAddr)
	fmt.Printf("  test devices    : %v\n", ctl.ListDevices())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	httpSrv.Close()
	fmt.Println("shutting down")
}
