// Command blab-access runs the BatteryLab access server daemon: the
// multi-user web console (HTTPS-terminated upstream in deployment) plus
// secure channels to remote vantage points.
//
// On start it creates an admin user, prints their API token and the
// server's client public key (which each controller must -authorize),
// then connects to every vantage point listed via -node.
//
// Usage:
//
//	blab-access -http 127.0.0.1:9090 -node node1=127.0.0.1:2222
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"

	"batterylab/internal/accessserver"
	"batterylab/internal/simclock"
	"batterylab/internal/sshx"
)

type nodeList []string

func (n *nodeList) String() string     { return strings.Join(*n, ",") }
func (n *nodeList) Set(v string) error { *n = append(*n, v); return nil }

func main() {
	var (
		httpAddr = flag.String("http", "127.0.0.1:9090", "web console listen address")
		nodes    nodeList
	)
	flag.Var(&nodes, "node", "vantage point as name=addr (repeatable)")
	flag.Parse()

	clock := simclock.Real()
	srv := accessserver.New(clock, accessserver.Config{})

	admin, err := srv.Users.Add("admin", accessserver.RoleAdmin)
	if err != nil {
		log.Fatal(err)
	}
	clientKey, err := sshx.GenerateKeypair()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("access server up\n")
	fmt.Printf("  admin token      : %s\n", admin.Token)
	fmt.Printf("  client public key: %x\n", []byte(clientKey.Pub))

	for _, spec := range nodes {
		name, addr, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("-node %q: want name=addr", spec)
		}
		cl := sshx.NewClient(clientKey)
		if err := cl.Dial(addr, nil); err != nil { // trust on first use
			log.Fatalf("connecting to %s at %s: %v", name, addr, err)
		}
		srv.Nodes.Approve(name)
		if err := srv.Nodes.Register(accessserver.NewRemoteNode(name, cl)); err != nil {
			log.Fatal(err)
		}
		out, err := cl.Exec("ping")
		if err != nil {
			log.Fatalf("ping %s: %v", name, err)
		}
		fmt.Printf("  vantage point    : %s at %s (%s, host key %s)\n",
			name, addr, out, sshx.Fingerprint(cl.HostKey()))
	}

	httpSrv := &http.Server{Addr: *httpAddr, Handler: srv.Handler()}
	go func() {
		if err := httpSrv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("http: %v", err)
		}
	}()
	fmt.Printf("  web console      : http://%s/api/nodes\n", *httpAddr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	httpSrv.Close()
	fmt.Println("shutting down")
}
