// Command blab-access runs the BatteryLab access server daemon: the
// multi-user web console and v1 remote-execution API (HTTPS-terminated
// upstream in deployment) plus secure channels to remote vantage
// points.
//
// On start it creates an admin and an experimenter user, prints their
// API tokens and the server's client public key (which each controller
// must -authorize), hosts -sim simulated vantage points in-process (so
// `blab-run -server` measurements work end to end on the real clock),
// and connects to every vantage point listed via -node.
//
// Usage:
//
//	blab-access -http 127.0.0.1:9090 -sim 2
//	blab-access -http 127.0.0.1:9090 -node node1=127.0.0.1:2222
//	blab-access -sim 3 -flaky node2=30s/2m
//
// Every hosted and connected vantage point is health-monitored:
// heartbeat probes drive the online/suspect/offline lifecycle, and
// builds leased to a node that stops beating fail over automatically.
// The -flaky flag injects failures into hosted nodes for testing that
// machinery: `-flaky name=killAfter[/reviveAfter]` kills the named
// simulated node after killAfter (and optionally revives it
// reviveAfter after that).
//
// Then, from another terminal:
//
//	blab-run -server http://127.0.0.1:9090 -token $TOKEN -browser Brave -pages 1 -scrolls 1
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"batterylab"
	"batterylab/internal/accessserver"
	"batterylab/internal/sshx"
)

type nodeList []string

func (n *nodeList) String() string     { return strings.Join(*n, ",") }
func (n *nodeList) Set(v string) error { *n = append(*n, v); return nil }

// flakySpec is one parsed -flaky directive.
type flakySpec struct {
	node   string
	kill   time.Duration
	revive time.Duration // 0 = stays dead
}

// parseFlaky parses "name=killAfter[/reviveAfter]".
func parseFlaky(v string) (flakySpec, error) {
	name, spec, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return flakySpec{}, fmt.Errorf("-flaky %q: want name=killAfter[/reviveAfter]", v)
	}
	killStr, reviveStr, hasRevive := strings.Cut(spec, "/")
	kill, err := time.ParseDuration(killStr)
	if err != nil {
		return flakySpec{}, fmt.Errorf("-flaky %q: %v", v, err)
	}
	out := flakySpec{node: name, kill: kill}
	if hasRevive {
		revive, err := time.ParseDuration(reviveStr)
		if err != nil {
			return flakySpec{}, fmt.Errorf("-flaky %q: %v", v, err)
		}
		out.revive = revive
	}
	return out, nil
}

func main() {
	var (
		httpAddr = flag.String("http", "127.0.0.1:9090", "web console listen address")
		sim      = flag.Int("sim", 1, "simulated vantage points to host in-process")
		seed     = flag.Uint64("seed", 2019, "simulation seed for hosted vantage points")
		nodes    nodeList
		flaky    nodeList
	)
	flag.Var(&nodes, "node", "vantage point as name=addr (repeatable)")
	flag.Var(&flaky, "flaky", "failure injection for a hosted node as name=killAfter[/reviveAfter] (repeatable)")
	flag.Parse()

	flakySpecs := make(map[string]flakySpec)
	for _, v := range flaky {
		fs, err := parseFlaky(v)
		if err != nil {
			log.Fatal(err)
		}
		flakySpecs[fs.node] = fs
	}

	// The daemon runs on the real clock: hosted experiments take their
	// actual scripted duration, like the physical testbed would.
	clock := batterylab.RealClock()
	plat, err := batterylab.NewPlatform(clock, *seed)
	if err != nil {
		log.Fatal(err)
	}
	srv := plat.Access

	admin, err := srv.Users.Add("admin", accessserver.RoleAdmin)
	if err != nil {
		log.Fatal(err)
	}
	exp, err := srv.Users.Add("experimenter", accessserver.RoleExperimenter)
	if err != nil {
		log.Fatal(err)
	}
	clientKey, err := sshx.GenerateKeypair()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("access server up\n")
	fmt.Printf("  admin token        : %s\n", admin.Token)
	fmt.Printf("  experimenter token : %s\n", exp.Token)
	fmt.Printf("  client public key  : %x\n", []byte(clientKey.Pub))

	// Hosted simulated vantage points: a controller + device + monitor
	// each, joined through the §3.4 workflow, ready for v1 spec
	// submissions against the builtin workload registry.
	for i := 1; i <= *sim; i++ {
		name := fmt.Sprintf("node%d", i)
		_, dev, fqdn, err := batterylab.NewVantagePoint(clock, plat, batterylab.VantagePointConfig{
			Name:      name,
			Seed:      *seed + uint64(i),
			Addr:      fmt.Sprintf("198.51.100.%d:2222", i),
			VideoPath: "/sdcard/blab.mp4",
		})
		if err != nil {
			log.Fatal(err)
		}
		if fs, ok := flakySpecs[name]; ok {
			// Re-register behind the failure injector, then schedule the
			// kill (and optional revival) on the daemon clock.
			inner, err := srv.Nodes.Get(name)
			if err != nil {
				log.Fatal(err)
			}
			flk := accessserver.NewFlakyNode(inner)
			srv.Nodes.Remove(name)
			if err := srv.Nodes.Register(flk); err != nil {
				log.Fatal(err)
			}
			clock.AfterFunc(fs.kill, func() {
				flk.Kill()
				fmt.Printf("  failure injection  : killed %s\n", name)
			})
			if fs.revive > 0 {
				clock.AfterFunc(fs.kill+fs.revive, func() {
					flk.Revive()
					fmt.Printf("  failure injection  : revived %s\n", name)
				})
			}
			fmt.Printf("  failure injection  : %s dies in %s%s\n", name, fs.kill,
				map[bool]string{true: fmt.Sprintf(", back %s later", fs.revive), false: " (for good)"}[fs.revive > 0])
		}
		if err := srv.MonitorNode(name); err != nil {
			log.Fatal(err)
		}
		delete(flakySpecs, name)
		fmt.Printf("  vantage point      : %s hosting %s (simulated, health-monitored)\n", fqdn, dev.Serial())
	}
	for name := range flakySpecs {
		log.Fatalf("-flaky %s: no hosted vantage point by that name (have node1..node%d)", name, *sim)
	}

	// Remote vantage points over the sshx channel (status/maintenance
	// surface; measurements need a hosted controller).
	for _, spec := range nodes {
		name, addr, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("-node %q: want name=addr", spec)
		}
		cl := sshx.NewClient(clientKey)
		if err := cl.Dial(addr, nil); err != nil { // trust on first use
			log.Fatalf("connecting to %s at %s: %v", name, addr, err)
		}
		srv.Nodes.Approve(name)
		if err := srv.RegisterNode(accessserver.NewRemoteNode(name, cl)); err != nil {
			log.Fatal(err)
		}
		out, err := cl.Exec("ping")
		if err != nil {
			log.Fatalf("ping %s: %v", name, err)
		}
		fmt.Printf("  vantage point      : %s at %s (%s, host key %s)\n",
			name, addr, out, sshx.Fingerprint(cl.HostKey()))
	}

	httpSrv := &http.Server{Addr: *httpAddr, Handler: srv.Handler()}
	go func() {
		if err := httpSrv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("http: %v", err)
		}
	}()
	fmt.Printf("  web console        : http://%s/api/nodes\n", *httpAddr)
	fmt.Printf("  remote API         : http://%s/api/v1/nodes\n", *httpAddr)
	fmt.Printf("  try                : curl -H 'Authorization: Bearer %s' http://%s/api/v1/workloads\n",
		exp.Token, *httpAddr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	httpSrv.Close()
	fmt.Println("shutting down")
}
