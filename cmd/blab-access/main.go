// Command blab-access runs the BatteryLab access server daemon: the
// multi-user web console and v1 remote-execution API (HTTPS-terminated
// upstream in deployment) plus secure channels to remote vantage
// points.
//
// On start it creates an admin and an experimenter user, prints their
// API tokens and the server's client public key (which each controller
// must -authorize), hosts -sim simulated vantage points in-process (so
// `blab-run -server` measurements work end to end on the real clock),
// and connects to every vantage point listed via -node.
//
// Usage:
//
//	blab-access -http 127.0.0.1:9090 -sim 2
//	blab-access -http 127.0.0.1:9090 -node node1=127.0.0.1:2222
//	blab-access -sim 3 -flaky node2=30s/2m
//	blab-access -sim 2 -data /var/lib/batterylab   # durable: survives restarts
//	blab-access -sim 2 -data ./state -credits      # + §5 credit economy
//	blab-access -http :9091 -feedgw http://control:9090   # feed gateway
//	blab-access -http :9092 -sim 1 -cluster-name lab-eu \
//	    -cluster-token s3cret -peer http://control:9090   # federate
//
// With -cluster-token (plus -peer seeds) the server federates: it
// announces itself and its node census to the listed peers on every
// heartbeat, adopts the peers it learns back, and routes builds whose
// vantage point lives on a peer across the cluster — events, samples
// and summaries stream home, so clients see one server however many
// testbeds stand behind it. GET /api/v1/cluster shows the membership.
//
// With -feedgw the daemon runs in feed-gateway mode instead: no local
// scheduler, no nodes, no state — just a stateless relay that serves
// the v1 streaming routes (build events and live samples) by
// subscribing to the given upstream access server with each client's
// own bearer token. Deploy gateways next to dashboard fleets to absorb
// streaming subscribers away from the control plane; the gateway
// reconnects severed upstream streams from its accumulated resume
// cursor, so clients see one uninterrupted stream.
//
// With -data the server keeps a write-ahead log plus periodic
// snapshots under the directory and replays them at startup: users
// (tokens intact), jobs, node lifecycle state, builds, campaigns and
// the credit ledger all survive a crash or restart, and builds that
// were mid-run fail over and complete. With -credits submissions are
// gated on the §5 ledger (402 insufficient_credits over the API) and
// finished runs debit their measured device time.
//
// Every hosted and connected vantage point is health-monitored:
// heartbeat probes drive the online/suspect/offline lifecycle, and
// builds leased to a node that stops beating fail over automatically.
// The -flaky flag injects failures into hosted nodes for testing that
// machinery: `-flaky name=killAfter[/reviveAfter]` kills the named
// simulated node after killAfter (and optionally revives it
// reviveAfter after that).
//
// Then, from another terminal:
//
//	blab-run -server http://127.0.0.1:9090 -token $TOKEN -browser Brave -pages 1 -scrolls 1
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"batterylab"
	"batterylab/internal/accessserver"
	"batterylab/internal/accessserver/feedgw"
	"batterylab/internal/accessserver/store"
	"batterylab/internal/api"
	"batterylab/internal/remote"
	"batterylab/internal/sshx"
)

type nodeList []string

func (n *nodeList) String() string     { return strings.Join(*n, ",") }
func (n *nodeList) Set(v string) error { *n = append(*n, v); return nil }

// flakySpec is one parsed -flaky directive.
type flakySpec struct {
	node   string
	kill   time.Duration
	revive time.Duration // 0 = stays dead
}

// parseFlaky parses "name=killAfter[/reviveAfter]".
func parseFlaky(v string) (flakySpec, error) {
	name, spec, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return flakySpec{}, fmt.Errorf("-flaky %q: want name=killAfter[/reviveAfter]", v)
	}
	killStr, reviveStr, hasRevive := strings.Cut(spec, "/")
	kill, err := time.ParseDuration(killStr)
	if err != nil {
		return flakySpec{}, fmt.Errorf("-flaky %q: %v", v, err)
	}
	out := flakySpec{node: name, kill: kill}
	if hasRevive {
		revive, err := time.ParseDuration(reviveStr)
		if err != nil {
			return flakySpec{}, fmt.Errorf("-flaky %q: %v", v, err)
		}
		out.revive = revive
	}
	return out, nil
}

func main() {
	var (
		httpAddr = flag.String("http", "127.0.0.1:9090", "web console listen address")
		sim      = flag.Int("sim", 1, "simulated vantage points to host in-process")
		seed     = flag.Uint64("seed", 2019, "simulation seed for hosted vantage points")
		dataDir  = flag.String("data", "", "state directory for WAL+snapshot crash recovery (empty = in-memory only)")
		credits  = flag.Bool("credits", false, "enforce the §5 credit economy (admins exempt; experimenter gets a starter grant)")
		logJSON  = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
		statsInt = flag.Duration("stats-every", time.Minute, "period between stats digests in the structured log (0 disables)")
		gwURL    = flag.String("feedgw", "", "run as a feed gateway relaying the v1 streaming routes from this upstream access server URL (no local scheduler)")
		clName   = flag.String("cluster-name", "", "this server's cluster-unique name for federation (default \"batterylab\")")
		clToken  = flag.String("cluster-token", "", "shared federation secret; empty disables federation")
		advURL   = flag.String("advertise", "", "base URL peers reach this server at (default http://<-http addr>)")
		nodes    nodeList
		flaky    nodeList
		owners   nodeList
		peers    nodeList
	)
	flag.Var(&nodes, "node", "vantage point as name=addr (repeatable)")
	flag.Var(&flaky, "flaky", "failure injection for a hosted node as name=killAfter[/reviveAfter] (repeatable)")
	flag.Var(&owners, "owner", "hosting member as node=user; the owner earns §5 contribution credits for the node's online time (repeatable)")
	flag.Var(&peers, "peer", "upstream access server base URL to announce to and federate with (repeatable; needs -cluster-token)")
	flag.Parse()

	if *gwURL != "" {
		runFeedGateway(*httpAddr, *gwURL)
		return
	}

	flakySpecs := make(map[string]flakySpec)
	for _, v := range flaky {
		fs, err := parseFlaky(v)
		if err != nil {
			log.Fatal(err)
		}
		flakySpecs[fs.node] = fs
	}

	// The daemon runs on the real clock: hosted experiments take their
	// actual scripted duration, like the physical testbed would.
	clock := batterylab.RealClock()
	plat, err := batterylab.NewPlatform(clock, *seed)
	if err != nil {
		log.Fatal(err)
	}
	srv := plat.Access

	// Structured logging to stderr (stdout keeps the human-facing boot
	// banner): one line per HTTP request, WAL failures, periodic stats.
	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	srv.SetLogger(slog.New(handler))
	if *statsInt > 0 {
		stop := srv.StartStatsFlush(*statsInt)
		defer stop()
	}

	clientKey, err := sshx.GenerateKeypair()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("access server up\n")
	fmt.Printf("  client public key  : %x\n", []byte(clientKey.Pub))

	// Hosted simulated vantage points: a controller + device + monitor
	// each, joined through the §3.4 workflow, ready for v1 spec
	// submissions against the builtin workload registry.
	for i := 1; i <= *sim; i++ {
		name := fmt.Sprintf("node%d", i)
		_, dev, fqdn, err := batterylab.NewVantagePoint(clock, plat, batterylab.VantagePointConfig{
			Name:      name,
			Seed:      *seed + uint64(i),
			Addr:      fmt.Sprintf("198.51.100.%d:2222", i),
			VideoPath: "/sdcard/blab.mp4",
		})
		if err != nil {
			log.Fatal(err)
		}
		if fs, ok := flakySpecs[name]; ok {
			// Re-register behind the failure injector, then schedule the
			// kill (and optional revival) on the daemon clock.
			inner, err := srv.Nodes.Get(name)
			if err != nil {
				log.Fatal(err)
			}
			flk := accessserver.NewFlakyNode(inner)
			srv.Nodes.Remove(name)
			if err := srv.Nodes.Register(flk); err != nil {
				log.Fatal(err)
			}
			clock.AfterFunc(fs.kill, func() {
				flk.Kill()
				fmt.Printf("  failure injection  : killed %s\n", name)
			})
			if fs.revive > 0 {
				clock.AfterFunc(fs.kill+fs.revive, func() {
					flk.Revive()
					fmt.Printf("  failure injection  : revived %s\n", name)
				})
			}
			fmt.Printf("  failure injection  : %s dies in %s%s\n", name, fs.kill,
				map[bool]string{true: fmt.Sprintf(", back %s later", fs.revive), false: " (for good)"}[fs.revive > 0])
		}
		if err := srv.MonitorNode(name); err != nil {
			log.Fatal(err)
		}
		delete(flakySpecs, name)
		fmt.Printf("  vantage point      : %s hosting %s (simulated, health-monitored)\n", fqdn, dev.Serial())
	}
	for name := range flakySpecs {
		log.Fatalf("-flaky %s: no hosted vantage point by that name (have node1..node%d)", name, *sim)
	}

	// Remote vantage points over the sshx channel (status/maintenance
	// surface; measurements need a hosted controller).
	for _, spec := range nodes {
		name, addr, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("-node %q: want name=addr", spec)
		}
		cl := sshx.NewClient(clientKey)
		if err := cl.Dial(addr, nil); err != nil { // trust on first use
			log.Fatalf("connecting to %s at %s: %v", name, addr, err)
		}
		srv.Nodes.Approve(name)
		if err := srv.RegisterNode(accessserver.NewRemoteNode(name, cl)); err != nil {
			log.Fatal(err)
		}
		out, err := cl.Exec("ping")
		if err != nil {
			log.Fatalf("ping %s: %v", name, err)
		}
		fmt.Printf("  vantage point      : %s at %s (%s, host key %s)\n",
			name, addr, out, sshx.Fingerprint(cl.HostKey()))
	}

	// Federation identity before the store attach, so replayed peer
	// membership lands in a registry that already knows who it is.
	if *clToken != "" {
		adv := *advURL
		if adv == "" {
			adv = "http://" + *httpAddr
		}
		srv.ConfigureCluster(*clName, adv, *clToken)
	} else if len(peers) > 0 {
		log.Fatal("-peer needs -cluster-token (the shared federation secret)")
	}

	// Durable state: replay snapshot+WAL from the data directory — after
	// the nodes above are registered, so interrupted spec builds can
	// recompile and dispatch — then log every mutation from here on. A
	// restart picks up users (tokens intact), jobs, node lifecycle,
	// builds, campaigns and the credit ledger where the last process
	// left them.
	if *dataDir != "" {
		srv.ExpectDurable() // /readyz answers 503 until the store attaches
		st, err := store.Open(*dataDir)
		if err != nil {
			log.Fatal(err)
		}
		stats, err := srv.AttachStore(st)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  durable state      : %s (recovered %d users, %d jobs, %d builds; %d requeued, %d resumed via failover)\n",
			*dataDir, stats.Users, stats.Jobs, stats.Builds, stats.Requeued, stats.Resumed)
	}

	// Bootstrap users after the store attach: on a restart the persisted
	// users (and tokens) are already back, so only a first boot creates
	// them.
	ensureUser := func(name string, role accessserver.Role) *accessserver.User {
		if u, err := srv.Users.Lookup(name); err == nil {
			return u
		}
		u, err := srv.Users.Add(name, role)
		if err != nil {
			log.Fatal(err)
		}
		return u
	}
	admin := ensureUser("admin", accessserver.RoleAdmin)
	exp := ensureUser("experimenter", accessserver.RoleExperimenter)
	fmt.Printf("  admin token        : %s\n", admin.Token)
	fmt.Printf("  experimenter token : %s\n", exp.Token)

	// Node ownership (after the store attach, so assignments are
	// logged; idempotent across restarts).
	for _, spec := range owners {
		node, user, ok := strings.Cut(spec, "=")
		if !ok || node == "" || user == "" {
			log.Fatalf("-owner %q: want node=user", spec)
		}
		if _, err := srv.Nodes.Get(node); err != nil {
			log.Fatalf("-owner %s: %v", spec, err)
		}
		// Same check as the v1 route: credits must not accrue to a
		// nonexistent member (a typo would earn into the void).
		if _, err := srv.Users.Lookup(user); err != nil {
			log.Fatalf("-owner %s: %v", spec, err)
		}
		srv.SetNodeOwner(node, user)
		fmt.Printf("  node owner         : %s hosts %s (earns %.1f credits/h online)\n",
			user, node, accessserver.ContributionRate)
	}

	if *credits {
		srv.SetCreditEnforcement(true)
		// First boot only: any prior ledger movement (even one that
		// drained the balance to zero) means no fresh grant — otherwise
		// a broke experimenter could refill by bouncing the server.
		if len(srv.Ledger.History(exp.Name)) == 0 {
			srv.Ledger.Grant(exp.Name, 60, "starter grant")
		}
		fmt.Printf("  credit economy     : enforced (experimenter balance %.1f; contribute node time to earn %.1f/h)\n",
			srv.Ledger.Balance(exp.Name), accessserver.ContributionRate)
	}

	httpSrv := &http.Server{Addr: *httpAddr, Handler: srv.Handler()}
	go func() {
		if err := httpSrv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("http: %v", err)
		}
	}()
	fmt.Printf("  web console        : http://%s/api/nodes\n", *httpAddr)
	fmt.Printf("  remote API         : http://%s/api/v1/nodes\n", *httpAddr)
	fmt.Printf("  metrics            : http://%s/api/v1/metrics (healthz/readyz unauthenticated)\n", *httpAddr)

	// Federation: install the cross-server relay (internal/remote speaks
	// the v1 protocol the scheduler's routed builds travel over) and
	// start announcing. Started after the listener is up so the first
	// announce advertises a reachable URL.
	if *clToken != "" {
		srv.SetPeerRelay(func(ctx context.Context, peerURL, token string, spec api.ExperimentSpec, sink accessserver.PeerSink) (*api.BuildStatus, error) {
			return remote.Relay(ctx, peerURL, token, spec, sink)
		})
		srv.StartCluster(peers...)
		fmt.Printf("  federation         : %s announcing as %q to %d seed peer(s); cluster view at /api/v1/cluster\n",
			srv.Cluster().URL(), srv.Cluster().Self(), len(peers))
	}
	fmt.Printf("  try                : curl -H 'Authorization: Bearer %s' http://%s/api/v1/workloads\n",
		exp.Token, *httpAddr)

	// SIGTERM (the orchestrator's stop signal) and SIGINT (^C) take the
	// same graceful path: close the listener, write a parting snapshot.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	httpSrv.Close()
	if *dataDir != "" {
		// A parting snapshot keeps the next replay minimal; skipping it
		// would only mean replaying more WAL.
		if err := srv.CompactStore(); err != nil {
			log.Printf("final snapshot: %v", err)
		}
	}
	fmt.Println("shutting down")
}

// runFeedGateway serves the -feedgw mode: the stateless streaming relay
// of internal/accessserver/feedgw on addr, until SIGTERM/SIGINT.
func runFeedGateway(addr, upstream string) {
	gw := feedgw.New(upstream)
	httpSrv := &http.Server{Addr: addr, Handler: gw.Handler()}
	go func() {
		if err := httpSrv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("http: %v", err)
		}
	}()
	fmt.Printf("feed gateway up\n")
	fmt.Printf("  upstream           : %s\n", upstream)
	fmt.Printf("  events             : http://%s/api/v1/builds/{id}/events\n", addr)
	fmt.Printf("  samples            : http://%s/api/v1/builds/{id}/samples\n", addr)
	fmt.Printf("  metrics            : http://%s/api/v1/metrics (healthz unauthenticated)\n", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	httpSrv.Close()
	fmt.Println("shutting down")
}
