// Command blab-access runs the BatteryLab access server daemon: the
// multi-user web console and v1 remote-execution API (HTTPS-terminated
// upstream in deployment) plus secure channels to remote vantage
// points.
//
// On start it creates an admin and an experimenter user, prints their
// API tokens and the server's client public key (which each controller
// must -authorize), hosts -sim simulated vantage points in-process (so
// `blab-run -server` measurements work end to end on the real clock),
// and connects to every vantage point listed via -node.
//
// Usage:
//
//	blab-access -http 127.0.0.1:9090 -sim 2
//	blab-access -http 127.0.0.1:9090 -node node1=127.0.0.1:2222
//
// Then, from another terminal:
//
//	blab-run -server http://127.0.0.1:9090 -token $TOKEN -browser Brave -pages 1 -scrolls 1
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"

	"batterylab"
	"batterylab/internal/accessserver"
	"batterylab/internal/sshx"
)

type nodeList []string

func (n *nodeList) String() string     { return strings.Join(*n, ",") }
func (n *nodeList) Set(v string) error { *n = append(*n, v); return nil }

func main() {
	var (
		httpAddr = flag.String("http", "127.0.0.1:9090", "web console listen address")
		sim      = flag.Int("sim", 1, "simulated vantage points to host in-process")
		seed     = flag.Uint64("seed", 2019, "simulation seed for hosted vantage points")
		nodes    nodeList
	)
	flag.Var(&nodes, "node", "vantage point as name=addr (repeatable)")
	flag.Parse()

	// The daemon runs on the real clock: hosted experiments take their
	// actual scripted duration, like the physical testbed would.
	clock := batterylab.RealClock()
	plat, err := batterylab.NewPlatform(clock, *seed)
	if err != nil {
		log.Fatal(err)
	}
	srv := plat.Access

	admin, err := srv.Users.Add("admin", accessserver.RoleAdmin)
	if err != nil {
		log.Fatal(err)
	}
	exp, err := srv.Users.Add("experimenter", accessserver.RoleExperimenter)
	if err != nil {
		log.Fatal(err)
	}
	clientKey, err := sshx.GenerateKeypair()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("access server up\n")
	fmt.Printf("  admin token        : %s\n", admin.Token)
	fmt.Printf("  experimenter token : %s\n", exp.Token)
	fmt.Printf("  client public key  : %x\n", []byte(clientKey.Pub))

	// Hosted simulated vantage points: a controller + device + monitor
	// each, joined through the §3.4 workflow, ready for v1 spec
	// submissions against the builtin workload registry.
	for i := 1; i <= *sim; i++ {
		_, dev, fqdn, err := batterylab.NewVantagePoint(clock, plat, batterylab.VantagePointConfig{
			Name:      fmt.Sprintf("node%d", i),
			Seed:      *seed + uint64(i),
			Addr:      fmt.Sprintf("198.51.100.%d:2222", i),
			VideoPath: "/sdcard/blab.mp4",
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  vantage point      : %s hosting %s (simulated)\n", fqdn, dev.Serial())
	}

	// Remote vantage points over the sshx channel (status/maintenance
	// surface; measurements need a hosted controller).
	for _, spec := range nodes {
		name, addr, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("-node %q: want name=addr", spec)
		}
		cl := sshx.NewClient(clientKey)
		if err := cl.Dial(addr, nil); err != nil { // trust on first use
			log.Fatalf("connecting to %s at %s: %v", name, addr, err)
		}
		srv.Nodes.Approve(name)
		if err := srv.Nodes.Register(accessserver.NewRemoteNode(name, cl)); err != nil {
			log.Fatal(err)
		}
		out, err := cl.Exec("ping")
		if err != nil {
			log.Fatalf("ping %s: %v", name, err)
		}
		fmt.Printf("  vantage point      : %s at %s (%s, host key %s)\n",
			name, addr, out, sshx.Fingerprint(cl.HostKey()))
	}

	httpSrv := &http.Server{Addr: *httpAddr, Handler: srv.Handler()}
	go func() {
		if err := httpSrv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("http: %v", err)
		}
	}()
	fmt.Printf("  web console        : http://%s/api/nodes\n", *httpAddr)
	fmt.Printf("  remote API         : http://%s/api/v1/nodes\n", *httpAddr)
	fmt.Printf("  try                : curl -H 'Authorization: Bearer %s' http://%s/api/v1/workloads\n",
		exp.Token, *httpAddr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	httpSrv.Close()
	fmt.Println("shutting down")
}
