package powersocket

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestSetAndListeners(t *testing.T) {
	s := New("meross-1")
	var events []bool
	s.OnChange(func(on bool) { events = append(events, on) })
	s.Set(true)
	s.Set(true) // no change
	s.Set(false)
	if len(events) != 2 || events[0] != true || events[1] != false {
		t.Fatalf("events = %v", events)
	}
	if s.Toggles() != 2 {
		t.Fatalf("toggles = %d", s.Toggles())
	}
}

func TestHTTPStatus(t *testing.T) {
	s := New("meross-1")
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := NewClient(srv.URL, nil)
	name, on, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if name != "meross-1" || on {
		t.Fatalf("status = %q, %v", name, on)
	}
}

func TestHTTPControl(t *testing.T) {
	s := New("m")
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := NewClient(srv.URL, nil)
	if err := c.Set(true); err != nil {
		t.Fatal(err)
	}
	if !s.On() {
		t.Fatal("socket not on after client Set")
	}
	_, on, _ := c.Status()
	if !on {
		t.Fatal("client does not observe on state")
	}
	if err := c.Set(false); err != nil {
		t.Fatal(err)
	}
	if s.On() {
		t.Fatal("socket still on")
	}
}

func TestHTTPBadRequests(t *testing.T) {
	s := New("m")
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/control", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing 'on' field: status %d", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/control", "application/json", strings.NewReader("notjson"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json: status %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/control")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET control: status %d", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/status", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status: status %d", resp.StatusCode)
	}
}

func TestMonsoonIntegrationWiring(t *testing.T) {
	// The socket's OnChange drives an external consumer exactly once per
	// transition, regardless of transport (direct or HTTP).
	s := New("m")
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	var mains bool
	s.OnChange(func(on bool) { mains = on })
	c := NewClient(srv.URL, nil)
	c.Set(true)
	if !mains {
		t.Fatal("listener did not fire over HTTP transport")
	}
}
