// Package powersocket models the Meross-style WiFi power socket that lets
// the BatteryLab controller switch the Monsoon's mains supply on and off
// remotely (§3.2). The real socket is driven through a small HTTP/JSON
// API (the MerossIot library); this model exposes the same surface via
// net/http so the controller exercises a genuine network round trip.
package powersocket

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
)

// Socket is one switchable outlet. It is safe for concurrent use.
type Socket struct {
	name string

	mu        sync.Mutex
	on        bool
	toggles   int
	listeners []func(bool)
}

// New returns a socket that starts off.
func New(name string) *Socket {
	return &Socket{name: name}
}

// Name reports the socket's identifier.
func (s *Socket) Name() string { return s.name }

// Set switches the outlet, notifying listeners on changes.
func (s *Socket) Set(on bool) {
	s.mu.Lock()
	changed := s.on != on
	s.on = on
	if changed {
		s.toggles++
	}
	listeners := append([]func(bool){}, s.listeners...)
	s.mu.Unlock()
	if changed {
		for _, f := range listeners {
			f(on)
		}
	}
}

// On reports the outlet state.
func (s *Socket) On() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.on
}

// Toggles reports how many state changes occurred (relay wear metric).
func (s *Socket) Toggles() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.toggles
}

// OnChange registers a listener invoked on every state change — how the
// Monsoon's SetMains is wired to the socket.
func (s *Socket) OnChange(f func(bool)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.listeners = append(s.listeners, f)
}

// Handler returns the socket's HTTP control surface:
//
//	GET  /status          -> {"name":..., "on":bool}
//	POST /control {"on":bool}
//
// mirroring the local-LAN API the MerossIot library speaks.
func (s *Socket) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, map[string]any{"name": s.name, "on": s.On()})
	})
	mux.HandleFunc("/control", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var req struct {
			On *bool `json:"on"`
		}
		if err := json.Unmarshal(body, &req); err != nil || req.On == nil {
			http.Error(w, "want body {\"on\": bool}", http.StatusBadRequest)
			return
		}
		s.Set(*req.On)
		writeJSON(w, map[string]any{"name": s.name, "on": s.On()})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// Client drives a socket over its HTTP API, the controller's side of the
// conversation.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the socket served at baseURL.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// Status fetches the socket state.
func (c *Client) Status() (name string, on bool, err error) {
	resp, err := c.hc.Get(c.base + "/status")
	if err != nil {
		return "", false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", false, fmt.Errorf("powersocket: status %s", resp.Status)
	}
	var out struct {
		Name string `json:"name"`
		On   bool   `json:"on"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", false, err
	}
	return out.Name, out.On, nil
}

// Set switches the socket.
func (c *Client) Set(on bool) error {
	body := fmt.Sprintf(`{"on":%v}`, on)
	resp, err := c.hc.Post(c.base+"/control", "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("powersocket: control %s", resp.Status)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
