// Binary trace format. Campaign results round-trip to disk without the
// text overhead of CSV (~26 bytes per sample): a small header followed
// by the sample columns.
//
// Layout (all varints are unsigned LEB128 as in encoding/binary):
//
//	magic   "BLTRC" (5 bytes)
//	version 1 byte (1 or 2)
//	name    uvarint length + bytes
//	unit    uvarint length + bytes
//	epoch   zigzag varint unix seconds + uvarint nanoseconds
//	        (the first sample's wall-clock timestamp; 0/0 when empty)
//	count   uvarint sample count
//
// Version 1 payload — fixed-width records, the straightforward dump:
//
//	count × (zigzag varint timestamp-offset nanos, 8-byte LE float bits)
//
// Version 2 payload — chunked and delta-encoded, matching the columnar
// chunks of internal/samples (samples.ChunkLen per chunk):
//
//	per chunk: uvarint chunk length n, then n × zigzag varint timestamp
//	delta-of-delta (a constant sampling period encodes as zero, one
//	byte per sample), then n × uvarint (value bits XOR previous value
//	bits; repeated values collapse to one byte). Timestamp and value
//	predictors run across chunk boundaries.
//
// Both versions decode with ReadBinary; WriteBinary emits version 2.
// The CSV text format (WriteCSV/ReadCSV) remains readable and written
// wherever it was before.

package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"batterylab/internal/samples"
)

// Binary format versions.
const (
	BinaryV1 = 1 // plain records
	BinaryV2 = 2 // chunked, delta/XOR encoded
)

var binMagic = [5]byte{'B', 'L', 'T', 'R', 'C'}

// WriteBinary encodes the series in the current binary format (v2).
func (s *Series) WriteBinary(w io.Writer) error {
	return EncodeBinary(w, s, BinaryV2)
}

// EncodeBinary encodes the series at an explicit format version —
// version 1 for compatibility fixtures, version 2 (the default) for
// everything else.
func EncodeBinary(w io.Writer, s *Series, version int) error {
	if version != BinaryV1 && version != BinaryV2 {
		return fmt.Errorf("trace: unknown binary version %d", version)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(version)); err != nil {
		return err
	}
	writeString(bw, s.name)
	writeString(bw, s.unit)
	var sec int64
	var nsec uint64
	if s.hasEpoch && s.Len() > 0 {
		sec = s.epoch.Unix()
		nsec = uint64(s.epoch.Nanosecond())
	}
	writeVarint(bw, sec)
	writeUvarint(bw, nsec)
	writeUvarint(bw, uint64(s.Len()))

	switch version {
	case BinaryV1:
		var scratch [8]byte
		var werr error
		s.data.Iter(func(off int64, v float64) bool {
			writeVarint(bw, off)
			binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
			if _, err := bw.Write(scratch[:]); err != nil {
				werr = err
				return false
			}
			return true
		})
		if werr != nil {
			return werr
		}
	case BinaryV2:
		n := s.Len()
		prevT, prevDelta := int64(0), int64(0)
		prevBits := uint64(0)
		for start := 0; start < n; start += samples.ChunkLen {
			end := start + samples.ChunkLen
			if end > n {
				end = n
			}
			writeUvarint(bw, uint64(end-start))
			chunk := s.data.Slice(start, end)
			chunk.Iter(func(off int64, _ float64) bool {
				delta := off - prevT
				writeVarint(bw, delta-prevDelta)
				prevT, prevDelta = off, delta
				return true
			})
			chunk.Iter(func(_ int64, v float64) bool {
				bits := math.Float64bits(v)
				writeUvarint(bw, bits^prevBits)
				prevBits = bits
				return true
			})
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a series written by WriteBinary or EncodeBinary,
// accepting both format versions.
func ReadBinary(r io.Reader) (*Series, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != binMagic {
		return nil, fmt.Errorf("trace: bad magic %q (not a binary trace)", magic[:])
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if version != BinaryV1 && version != BinaryV2 {
		return nil, fmt.Errorf("trace: unsupported binary version %d", version)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	unit, err := readString(br)
	if err != nil {
		return nil, err
	}
	sec, err := binary.ReadVarint(br)
	if err != nil {
		return nil, err
	}
	nsec, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	epoch := time.Unix(sec, int64(nsec)).UTC()
	s := NewSeries(name, unit)

	switch version {
	case BinaryV1:
		var scratch [8]byte
		for i := uint64(0); i < count; i++ {
			off, err := binary.ReadVarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: sample %d: %w", i, err)
			}
			if _, err := io.ReadFull(br, scratch[:]); err != nil {
				return nil, fmt.Errorf("trace: sample %d: %w", i, err)
			}
			v := math.Float64frombits(binary.LittleEndian.Uint64(scratch[:]))
			if err := s.Append(epoch.Add(time.Duration(off)), v); err != nil {
				return nil, err
			}
		}
	case BinaryV2:
		prevT, prevDelta := int64(0), int64(0)
		prevBits := uint64(0)
		offs := make([]int64, 0, samples.ChunkLen)
		for read := uint64(0); read < count; {
			n, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: chunk header: %w", err)
			}
			if n == 0 || n > samples.ChunkLen || read+n > count {
				return nil, fmt.Errorf("trace: bad chunk length %d (%d of %d samples read)", n, read, count)
			}
			offs = offs[:0]
			for i := uint64(0); i < n; i++ {
				dod, err := binary.ReadVarint(br)
				if err != nil {
					return nil, fmt.Errorf("trace: timestamp %d: %w", read+i, err)
				}
				prevDelta += dod
				prevT += prevDelta
				offs = append(offs, prevT)
			}
			for i := uint64(0); i < n; i++ {
				x, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, fmt.Errorf("trace: value %d: %w", read+i, err)
				}
				prevBits ^= x
				if err := s.Append(epoch.Add(time.Duration(offs[i])), math.Float64frombits(prevBits)); err != nil {
					return nil, err
				}
			}
			read += n
		}
	}
	if uint64(s.Len()) != count {
		return nil, fmt.Errorf("trace: decoded %d of %d samples", s.Len(), count)
	}
	return s, nil
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("trace: unreasonable string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeUvarint(w *bufio.Writer, x uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], x)
	w.Write(buf[:n])
}

func writeVarint(w *bufio.Writer, x int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], x)
	w.Write(buf[:n])
}
