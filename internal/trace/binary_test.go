package trace

import (
	"bytes"
	"flag"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the binary trace golden fixtures")

// goldenSeries is the fixed trace behind the testdata fixtures: a short
// 5 kHz capture with a quantized-current shape like the Monsoon's.
func goldenSeries() *Series {
	s := NewSeries("current", "mA")
	r := rand.New(rand.NewSource(2019))
	for i := 0; i < 2*4096+37; i++ {
		v := 160 + math.Floor(r.Float64()*400)/10 // 0.1 mA quantization
		s.MustAppend(t0.Add(time.Duration(i)*200*time.Microsecond), v)
	}
	return s
}

func assertBitIdentical(t *testing.T, got, want *Series) {
	t.Helper()
	if got.Name() != want.Name() || got.Unit() != want.Unit() {
		t.Fatalf("metadata = %q/%q, want %q/%q", got.Name(), got.Unit(), want.Name(), want.Unit())
	}
	if got.Len() != want.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		g, w := got.At(i), want.At(i)
		if !g.T.Equal(w.T) {
			t.Fatalf("sample %d time = %v, want %v", i, g.T, w.T)
		}
		if math.Float64bits(g.V) != math.Float64bits(w.V) {
			t.Fatalf("sample %d value bits differ: %v vs %v", i, g.V, w.V)
		}
	}
}

func TestBinaryRoundTripV2(t *testing.T) {
	s := goldenSeries()
	var buf bytes.Buffer
	if err := s.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, got, s)
	// The streaming summary is rebuilt on decode.
	if got.Summary() != s.Summary() {
		t.Fatalf("summary %+v != %+v", got.Summary(), s.Summary())
	}
	if got.EnergyMAH() != s.EnergyMAH() {
		t.Fatal("energy differs after round trip")
	}
}

func TestBinaryRoundTripV1(t *testing.T) {
	s := goldenSeries()
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, s, BinaryV1); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, got, s)
}

func TestBinaryRoundTripEdgeCases(t *testing.T) {
	cases := []*Series{
		NewSeries("empty", "u"),
		mk(7),
		mk(0, 0, 0, 0), // constant: v2 value column collapses to XOR zeros
		mk(1.5, -2.25, math.Inf(1), math.SmallestNonzeroFloat64),
	}
	burst := NewSeries("burst", "u")
	burst.MustAppend(t0, 1)
	burst.MustAppend(t0, 2) // equal timestamps (burst sampling)
	burst.MustAppend(t0.Add(time.Hour), 3)
	cases = append(cases, burst)
	for _, want := range cases {
		for _, version := range []int{BinaryV1, BinaryV2} {
			var buf bytes.Buffer
			if err := EncodeBinary(&buf, want, version); err != nil {
				t.Fatalf("%s v%d: %v", want.Name(), version, err)
			}
			got, err := ReadBinary(&buf)
			if err != nil {
				t.Fatalf("%s v%d: %v", want.Name(), version, err)
			}
			assertBitIdentical(t, got, want)
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("elapsed_s,current_mA\n0,1\n"))); err == nil {
		t.Fatal("CSV accepted as binary")
	}
	if _, err := ReadBinary(bytes.NewReader([]byte("BLTRC\x09"))); err == nil {
		t.Fatal("unknown version accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated payload.
	var buf bytes.Buffer
	if err := goldenSeries().WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestBinaryV2SmallerThanCSVAndV1(t *testing.T) {
	s := goldenSeries()
	var v1, v2, csv bytes.Buffer
	if err := EncodeBinary(&v1, s, BinaryV1); err != nil {
		t.Fatal(err)
	}
	if err := EncodeBinary(&v2, s, BinaryV2); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if v2.Len() >= v1.Len() || v2.Len() >= csv.Len() {
		t.Fatalf("v2 = %d bytes, v1 = %d, csv = %d: v2 should be smallest", v2.Len(), v1.Len(), csv.Len())
	}
	// Constant-rate timestamps collapse to ~1 byte/sample; quantized
	// values XOR to mantissa-only varints. ~9 bytes/sample against v1's
	// fixed 13 and CSV's ~26.
	if perSample := float64(v2.Len()) / float64(s.Len()); perSample > 10 {
		t.Fatalf("v2 %.1f bytes/sample on a quantized 5 kHz trace, want < 10", perSample)
	}
}

// TestGoldenFixtures pins the on-disk encoding: the checked-in v1 and
// v2 fixtures must keep decoding bit-identically to goldenSeries, and
// today's encoder must keep producing exactly the v2 fixture's bytes.
// Regenerate (after a deliberate format change, with a version bump)
// with: go test ./internal/trace -run Golden -update-golden
func TestGoldenFixtures(t *testing.T) {
	want := goldenSeries()
	v1Path := filepath.Join("testdata", "golden_v1.bltrace")
	v2Path := filepath.Join("testdata", "golden_v2.bltrace")
	if *updateGolden {
		for _, f := range []struct {
			path    string
			version int
		}{{v1Path, BinaryV1}, {v2Path, BinaryV2}} {
			var buf bytes.Buffer
			if err := EncodeBinary(&buf, want, f.version); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(f.path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, path := range []string{v1Path, v2Path} {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update-golden to create)", path, err)
		}
		got, err := ReadBinary(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		assertBitIdentical(t, got, want)
	}
	// Encoder stability: v2 output is byte-for-byte the fixture.
	rawV2, err := os.ReadFile(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := want.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), rawV2) {
		t.Fatal("v2 encoder output drifted from the golden fixture")
	}
}
