package trace

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"batterylab/internal/stats"
)

var t0 = time.Date(2019, 11, 13, 9, 0, 0, 0, time.UTC)

func mk(vals ...float64) *Series {
	s := NewSeries("current", "mA")
	for i, v := range vals {
		s.MustAppend(t0.Add(time.Duration(i)*time.Second), v)
	}
	return s
}

func TestAppendOrdering(t *testing.T) {
	s := NewSeries("x", "u")
	if err := s.Append(t0.Add(time.Second), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(t0, 2); err == nil {
		t.Fatal("out-of-order append accepted")
	}
	// Equal timestamps are allowed (burst sampling).
	if err := s.Append(t0.Add(time.Second), 3); err != nil {
		t.Fatal(err)
	}
}

func TestIntegralConstant(t *testing.T) {
	s := mk(100, 100, 100, 100, 100) // 4 s at 100 mA
	if got := s.IntegralSeconds(); got != 400 {
		t.Fatalf("integral = %v, want 400", got)
	}
}

func TestIntegralTrapezoid(t *testing.T) {
	s := mk(0, 100) // ramp over 1 s
	if got := s.IntegralSeconds(); got != 50 {
		t.Fatalf("integral = %v, want 50", got)
	}
}

func TestEnergyMAH(t *testing.T) {
	// 3600 s at 200 mA = 200 mAh.
	s := NewSeries("current", "mA")
	s.MustAppend(t0, 200)
	s.MustAppend(t0.Add(time.Hour), 200)
	if got := s.EnergyMAH(); math.Abs(got-200) > 1e-9 {
		t.Fatalf("energy = %v mAh, want 200", got)
	}
}

func TestDurationAndMeanDt(t *testing.T) {
	s := mk(1, 2, 3)
	if s.Duration() != 2*time.Second {
		t.Fatalf("duration = %v", s.Duration())
	}
	if s.MeanDt() != time.Second {
		t.Fatalf("meanDt = %v", s.MeanDt())
	}
}

func TestDecimate(t *testing.T) {
	s := mk(0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	d := s.Decimate(3)
	want := []float64{0, 3, 6, 9}
	if d.Len() != len(want) {
		t.Fatalf("decimated len = %d", d.Len())
	}
	for i, w := range want {
		if d.At(i).V != w {
			t.Fatalf("decimated[%d] = %v, want %v", i, d.At(i).V, w)
		}
	}
}

func TestDecimateKBelowOne(t *testing.T) {
	s := mk(1, 2, 3)
	if d := s.Decimate(0); d.Len() != 3 {
		t.Fatalf("Decimate(0) len = %d", d.Len())
	}
}

func TestWindow(t *testing.T) {
	s := mk(0, 1, 2, 3, 4)
	w := s.Window(t0.Add(time.Second), t0.Add(3*time.Second))
	if w.Len() != 2 || w.At(0).V != 1 || w.At(1).V != 2 {
		t.Fatalf("window wrong: len=%d", w.Len())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := mk(10.5, 20.25, 30.125)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "current", "mA", t0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("round trip len = %d, want %d", got.Len(), s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		if got.At(i).V != s.At(i).V {
			t.Fatalf("sample %d = %v, want %v", i, got.At(i).V, s.At(i).V)
		}
		if !got.At(i).T.Equal(s.At(i).T) {
			t.Fatalf("timestamp %d = %v, want %v", i, got.At(i).T, s.At(i).T)
		}
	}
}

func TestCSVEmptySeries(t *testing.T) {
	s := NewSeries("current", "mA")
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "current", "mA", t0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("expected empty, got %d", got.Len())
	}
}

func TestSummaryAndCDF(t *testing.T) {
	s := mk(1, 2, 3, 4)
	sum := s.Summary()
	if sum.N != 4 || sum.Mean != 2.5 {
		t.Fatalf("summary = %+v", sum)
	}
	cdf, err := s.CDF()
	if err != nil {
		t.Fatal(err)
	}
	if cdf.Median() != 2.5 {
		t.Fatalf("median = %v", cdf.Median())
	}
}

func TestIntegralNonNegativeProperty(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		s := NewSeries("x", "u")
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.MustAppend(t0.Add(time.Duration(i)*time.Millisecond), math.Abs(v))
		}
		return s.IntegralSeconds() >= 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValuesCopy(t *testing.T) {
	s := mk(1, 2)
	vs := s.Values()
	vs[0] = 99
	if s.At(0).V != 1 {
		t.Fatal("Values() returned aliasing slice")
	}
}

// TestStreamingSummaryMatchesBatch pins the tentpole contract: the O(1)
// streaming Summary agrees with the batch stats.Summarize re-scan —
// mean/std exact to 1e-9 relative, min/max exact — on random inputs and
// the adversarial shapes of the capture path (empty, single sample,
// constant series, zero-floored ADC values).
func TestStreamingSummaryMatchesBatch(t *testing.T) {
	relClose := func(a, b float64) bool {
		if a == b {
			return true
		}
		scale := math.Max(math.Abs(a), math.Abs(b))
		return math.Abs(a-b) <= 1e-9*math.Max(scale, 1)
	}
	check := func(name string, vals []float64) {
		t.Helper()
		s := NewSeries("x", "u")
		for i, v := range vals {
			s.MustAppend(t0.Add(time.Duration(i)*200*time.Microsecond), v)
		}
		got := s.Summary()
		want := stats.Summarize(vals)
		if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
			t.Fatalf("%s: streaming %+v vs batch %+v", name, got, want)
		}
		if !relClose(got.Mean, want.Mean) || !relClose(got.Std, want.Std) {
			t.Fatalf("%s: moments drifted: streaming %+v vs batch %+v", name, got, want)
		}
		// Batch oracles for the other streaming aggregates.
		if want.N > 0 {
			var integral float64
			for i := 1; i < s.Len(); i++ {
				dt := s.At(i).T.Sub(s.At(i - 1).T).Seconds()
				integral += dt * (s.At(i).V + s.At(i-1).V) / 2
			}
			if s.IntegralSeconds() != integral {
				t.Fatalf("%s: integral %v, batch %v", name, s.IntegralSeconds(), integral)
			}
		}
	}
	check("empty", nil)
	check("single", []float64{42})
	check("constant", []float64{7, 7, 7, 7, 7, 7})
	rng := rand.New(rand.NewSource(13))
	long := make([]float64, 20000)
	for i := range long {
		long[i] = 160 + rng.NormFloat64()*1.2
	}
	check("gaussian", long)
	floored := make([]float64, 5000)
	for i := range floored {
		if x := rng.NormFloat64() * 1.2; x > 0 {
			floored[i] = x
		}
	}
	check("zero-floor", floored)
}

// TestStreamingMedianWithinP2Bounds pins the documented accuracy of the
// streaming Summary's Median against the exact CDF median.
func TestStreamingMedianWithinP2Bounds(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := NewSeries("current", "mA")
	for i := 0; i < 10000; i++ {
		s.MustAppend(t0.Add(time.Duration(i)*200*time.Microsecond), rng.Float64()*500)
	}
	cdf, err := s.CDF()
	if err != nil {
		t.Fatal(err)
	}
	exact := cdf.Median()
	bound := 0.05 * (cdf.Max() - cdf.Min())
	if got := s.Summary().Median; math.Abs(got-exact) > bound {
		t.Fatalf("streaming median %v vs exact %v (bound %v)", got, exact, bound)
	}
	// Small series are exact (P² holds the first 5 samples verbatim).
	small := mk(9, 1, 5)
	if small.Summary().Median != 5 {
		t.Fatalf("small-series median = %v, want exact 5", small.Summary().Median)
	}
}

func TestLiveSummaryMidCapture(t *testing.T) {
	s := NewSeries("current", "mA")
	if s.Live().N != 0 {
		t.Fatal("empty live summary")
	}
	for i := 0; i < 100; i++ {
		s.MustAppend(t0.Add(time.Duration(i)*time.Second), 100)
	}
	mid := s.Live()
	if mid.N != 100 || mid.Mean != 100 || mid.P95 != 100 {
		t.Fatalf("live mid-capture: %+v", mid)
	}
	// Capture continues after the read; aggregates keep flowing.
	for i := 100; i < 200; i++ {
		s.MustAppend(t0.Add(time.Duration(i)*time.Second), 200)
	}
	end := s.Live()
	if end.N != 200 || end.Max != 200 || end.Mean <= mid.Mean {
		t.Fatalf("live after more capture: %+v", end)
	}
	if end.IntegralSeconds <= mid.IntegralSeconds {
		t.Fatal("integral did not advance")
	}
}

func TestIterMatchesAt(t *testing.T) {
	s := mk(5, 6, 7, 8)
	i := 0
	s.Iter(func(smp Sample) bool {
		if !smp.T.Equal(s.At(i).T) || smp.V != s.At(i).V {
			t.Fatalf("Iter[%d] = %+v, want %+v", i, smp, s.At(i))
		}
		i++
		return i < 3 // early stop
	})
	if i != 3 {
		t.Fatalf("Iter visited %d", i)
	}
}
