package trace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2019, 11, 13, 9, 0, 0, 0, time.UTC)

func mk(vals ...float64) *Series {
	s := NewSeries("current", "mA")
	for i, v := range vals {
		s.MustAppend(t0.Add(time.Duration(i)*time.Second), v)
	}
	return s
}

func TestAppendOrdering(t *testing.T) {
	s := NewSeries("x", "u")
	if err := s.Append(t0.Add(time.Second), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(t0, 2); err == nil {
		t.Fatal("out-of-order append accepted")
	}
	// Equal timestamps are allowed (burst sampling).
	if err := s.Append(t0.Add(time.Second), 3); err != nil {
		t.Fatal(err)
	}
}

func TestIntegralConstant(t *testing.T) {
	s := mk(100, 100, 100, 100, 100) // 4 s at 100 mA
	if got := s.IntegralSeconds(); got != 400 {
		t.Fatalf("integral = %v, want 400", got)
	}
}

func TestIntegralTrapezoid(t *testing.T) {
	s := mk(0, 100) // ramp over 1 s
	if got := s.IntegralSeconds(); got != 50 {
		t.Fatalf("integral = %v, want 50", got)
	}
}

func TestEnergyMAH(t *testing.T) {
	// 3600 s at 200 mA = 200 mAh.
	s := NewSeries("current", "mA")
	s.MustAppend(t0, 200)
	s.MustAppend(t0.Add(time.Hour), 200)
	if got := s.EnergyMAH(); math.Abs(got-200) > 1e-9 {
		t.Fatalf("energy = %v mAh, want 200", got)
	}
}

func TestDurationAndMeanDt(t *testing.T) {
	s := mk(1, 2, 3)
	if s.Duration() != 2*time.Second {
		t.Fatalf("duration = %v", s.Duration())
	}
	if s.MeanDt() != time.Second {
		t.Fatalf("meanDt = %v", s.MeanDt())
	}
}

func TestDecimate(t *testing.T) {
	s := mk(0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	d := s.Decimate(3)
	want := []float64{0, 3, 6, 9}
	if d.Len() != len(want) {
		t.Fatalf("decimated len = %d", d.Len())
	}
	for i, w := range want {
		if d.At(i).V != w {
			t.Fatalf("decimated[%d] = %v, want %v", i, d.At(i).V, w)
		}
	}
}

func TestDecimateKBelowOne(t *testing.T) {
	s := mk(1, 2, 3)
	if d := s.Decimate(0); d.Len() != 3 {
		t.Fatalf("Decimate(0) len = %d", d.Len())
	}
}

func TestWindow(t *testing.T) {
	s := mk(0, 1, 2, 3, 4)
	w := s.Window(t0.Add(time.Second), t0.Add(3*time.Second))
	if w.Len() != 2 || w.At(0).V != 1 || w.At(1).V != 2 {
		t.Fatalf("window wrong: len=%d", w.Len())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := mk(10.5, 20.25, 30.125)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "current", "mA", t0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("round trip len = %d, want %d", got.Len(), s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		if got.At(i).V != s.At(i).V {
			t.Fatalf("sample %d = %v, want %v", i, got.At(i).V, s.At(i).V)
		}
		if !got.At(i).T.Equal(s.At(i).T) {
			t.Fatalf("timestamp %d = %v, want %v", i, got.At(i).T, s.At(i).T)
		}
	}
}

func TestCSVEmptySeries(t *testing.T) {
	s := NewSeries("current", "mA")
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "current", "mA", t0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("expected empty, got %d", got.Len())
	}
}

func TestSummaryAndCDF(t *testing.T) {
	s := mk(1, 2, 3, 4)
	sum := s.Summary()
	if sum.N != 4 || sum.Mean != 2.5 {
		t.Fatalf("summary = %+v", sum)
	}
	cdf, err := s.CDF()
	if err != nil {
		t.Fatal(err)
	}
	if cdf.Median() != 2.5 {
		t.Fatalf("median = %v", cdf.Median())
	}
}

func TestIntegralNonNegativeProperty(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		s := NewSeries("x", "u")
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.MustAppend(t0.Add(time.Duration(i)*time.Millisecond), math.Abs(v))
		}
		return s.IntegralSeconds() >= 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValuesCopy(t *testing.T) {
	s := mk(1, 2)
	vs := s.Values()
	vs[0] = 99
	if s.At(0).V != 1 {
		t.Fatal("Values() returned aliasing slice")
	}
}
