// Package trace holds timestamped measurement series: the current traces
// produced by the power monitor, CPU utilization traces from device and
// controller, and network byte counters. A Series is what an experiment
// stores in its job workspace and what the evaluation harness reduces to
// CDFs and energy figures.
//
// Since the streaming sample pipeline landed, a Series is backed by the
// chunked columnar store of internal/samples (appends never copy prior
// samples) and maintains a streaming summary online: Summary, Live,
// IntegralSeconds and EnergyMAH are O(1) snapshots of aggregates
// computed while capturing, not teardown re-scans of the full trace.
// Series persist to disk as CSV (WriteCSV/ReadCSV, the v1 text format)
// or the binary trace format of binary.go.
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"batterylab/internal/samples"
	"batterylab/internal/stats"
)

// Sample is one timestamped measurement.
type Sample struct {
	T time.Time
	V float64
}

// Series is an append-only time series of samples with a name and a unit
// (for example "current" / "mA"). Samples live in fixed-size columnar
// chunks (timestamps as nanosecond offsets from the first sample), and
// every append also feeds a streaming aggregator, so summaries are ready
// the moment capture stops. The zero value is not usable; construct with
// NewSeries. A Series is not safe for concurrent use; the capture models
// that share one (the Monsoon) serialize access with their own locks.
type Series struct {
	name string
	unit string

	epoch    time.Time // first sample's timestamp
	hasEpoch bool
	lastOff  int64 // last sample's offset from epoch, nanoseconds

	data *samples.Series
	agg  *samples.StreamSummary
}

// NewSeries returns an empty series.
func NewSeries(name, unit string) *Series {
	return &Series{
		name: name,
		unit: unit,
		data: samples.NewSeries(),
		agg:  samples.NewStreamSummary(),
	}
}

// Name reports the series name.
func (s *Series) Name() string { return s.name }

// Unit reports the measurement unit.
func (s *Series) Unit() string { return s.unit }

// Append adds a sample. Timestamps must be non-decreasing; out-of-order
// appends return an error so recorder bugs surface immediately.
func (s *Series) Append(t time.Time, v float64) error {
	if !s.hasEpoch {
		s.epoch = t
		s.hasEpoch = true
	}
	off := t.Sub(s.epoch).Nanoseconds()
	if s.data.Len() > 0 && off < s.lastOff {
		return fmt.Errorf("trace: out-of-order sample at %v (last %v)", t, s.epoch.Add(time.Duration(s.lastOff)))
	}
	s.data.Append(off, v)
	s.agg.Add(off, v)
	s.lastOff = off
	return nil
}

// MustAppend is Append for recorders that already guarantee ordering.
func (s *Series) MustAppend(t time.Time, v float64) {
	if err := s.Append(t, v); err != nil {
		panic(err)
	}
}

// Len reports the number of samples.
func (s *Series) Len() int { return s.data.Len() }

// At returns the i-th sample.
func (s *Series) At(i int) Sample {
	off, v := s.data.At(i)
	return Sample{T: s.epoch.Add(time.Duration(off)), V: v}
}

// Iter walks the samples in order until fn returns false, without the
// per-index chunk arithmetic of At.
func (s *Series) Iter(fn func(Sample) bool) {
	s.data.Iter(func(off int64, v float64) bool {
		return fn(Sample{T: s.epoch.Add(time.Duration(off)), V: v})
	})
}

// Samples exposes the underlying chunked sample store (timestamps are
// nanosecond offsets from the first sample). Read-only: appending to it
// directly would bypass the ordering check and the streaming summary.
func (s *Series) Samples() *samples.Series { return s.data }

// Values returns a copy of the sample values.
func (s *Series) Values() []float64 { return s.data.Values() }

// Duration reports the time spanned by the series.
func (s *Series) Duration() time.Duration {
	if s.data.Len() < 2 {
		return 0
	}
	return time.Duration(s.lastOff)
}

// Summary reduces the series to summary statistics from the aggregates
// maintained during capture. Mean, Std, Min and Max are exact. For
// series up to one chunk (4096 samples — CPU traces, thinned sweeps)
// the Median is exact too, from one bounded sort; beyond that it is the
// P² streaming estimate (see the internal/samples package comment for
// its error bounds) and Summary is O(1). For an exact median on a large
// series, use CDF or stats.SummarizeSeries.
func (s *Series) Summary() stats.Summary {
	if s.data.Len() <= samples.ChunkLen {
		return stats.SummarizeSeries(s.data)
	}
	return stats.FromLive(s.agg.Snapshot())
}

// Live reports the streaming summary of the capture so far: running
// mean/std/min/max, P50/P95 estimates and the time integral. O(1), safe
// to read between appends, and what session observers receive alongside
// raw samples.
func (s *Series) Live() samples.LiveSummary { return s.agg.Snapshot() }

// CDF builds the empirical CDF of the series values.
func (s *Series) CDF() (*stats.CDF, error) { return stats.NewCDFSeries(s.data) }

// IntegralSeconds reports the series' integral over time using the
// trapezoid rule, yielding unit·seconds (for a mA series:
// milliamp-seconds). Computed online during capture; reading it is O(1).
func (s *Series) IntegralSeconds() float64 {
	return s.agg.Snapshot().IntegralSeconds
}

// EnergyMAH interprets the series as a current trace in mA and returns
// the charge drawn in milliamp-hours — the unit of Fig. 3 and Fig. 6.
func (s *Series) EnergyMAH() float64 {
	return s.IntegralSeconds() / 3600
}

// MeanDt reports the average sampling interval.
func (s *Series) MeanDt() time.Duration {
	if s.data.Len() < 2 {
		return 0
	}
	return s.Duration() / time.Duration(s.data.Len()-1)
}

// Decimate returns a new series keeping every k-th sample, used to thin a
// 5 kHz monitor trace before plotting. k < 1 is treated as 1.
func (s *Series) Decimate(k int) *Series {
	if k < 1 {
		k = 1
	}
	out := NewSeries(s.name, s.unit)
	for i := 0; i < s.data.Len(); i += k {
		smp := s.At(i)
		out.MustAppend(smp.T, smp.V)
	}
	return out
}

// Window returns the sub-series with timestamps in [from, to).
func (s *Series) Window(from, to time.Time) *Series {
	out := NewSeries(s.name, s.unit)
	s.Iter(func(smp Sample) bool {
		if !smp.T.Before(from) && smp.T.Before(to) {
			out.MustAppend(smp.T, smp.V)
		}
		return true
	})
	return out
}

// WriteCSV emits "elapsed_seconds,value" rows with a header, the format
// the access server stores in job workspaces (mirroring the Monsoon
// Python library's CSV export).
func (s *Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"elapsed_s", s.name + "_" + s.unit}); err != nil {
		return err
	}
	var werr error
	s.data.Iter(func(off int64, v float64) bool {
		rec := []string{
			strconv.FormatFloat(time.Duration(off).Seconds(), 'f', 6, 64),
			strconv.FormatFloat(v, 'f', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a series previously written by WriteCSV. The base time
// for reconstructed timestamps is t0.
func ReadCSV(r io.Reader, name, unit string, t0 time.Time) (*Series, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, errors.New("trace: empty CSV")
	}
	s := NewSeries(name, unit)
	for _, row := range rows[1:] {
		if len(row) != 2 {
			return nil, fmt.Errorf("trace: bad row %v", row)
		}
		secs, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, err
		}
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, err
		}
		if err := s.Append(t0.Add(time.Duration(secs*float64(time.Second))), v); err != nil {
			return nil, err
		}
	}
	return s, nil
}
