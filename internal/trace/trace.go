// Package trace holds timestamped measurement series: the current traces
// produced by the power monitor, CPU utilization traces from device and
// controller, and network byte counters. A Series is what an experiment
// stores in its job workspace and what the evaluation harness reduces to
// CDFs and energy figures.
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"batterylab/internal/stats"
)

// Sample is one timestamped measurement.
type Sample struct {
	T time.Time
	V float64
}

// Series is an append-only time series of samples with a name and a unit
// (for example "current" / "mA"). The zero value is not usable; construct
// with NewSeries.
type Series struct {
	name    string
	unit    string
	samples []Sample
}

// NewSeries returns an empty series.
func NewSeries(name, unit string) *Series {
	return &Series{name: name, unit: unit}
}

// Name reports the series name.
func (s *Series) Name() string { return s.name }

// Unit reports the measurement unit.
func (s *Series) Unit() string { return s.unit }

// Append adds a sample. Timestamps must be non-decreasing; out-of-order
// appends return an error so recorder bugs surface immediately.
func (s *Series) Append(t time.Time, v float64) error {
	if n := len(s.samples); n > 0 && t.Before(s.samples[n-1].T) {
		return fmt.Errorf("trace: out-of-order sample at %v (last %v)", t, s.samples[n-1].T)
	}
	s.samples = append(s.samples, Sample{T: t, V: v})
	return nil
}

// MustAppend is Append for recorders that already guarantee ordering.
func (s *Series) MustAppend(t time.Time, v float64) {
	if err := s.Append(t, v); err != nil {
		panic(err)
	}
}

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.samples) }

// At returns the i-th sample.
func (s *Series) At(i int) Sample { return s.samples[i] }

// Values returns a copy of the sample values.
func (s *Series) Values() []float64 {
	vs := make([]float64, len(s.samples))
	for i, smp := range s.samples {
		vs[i] = smp.V
	}
	return vs
}

// Duration reports the time spanned by the series.
func (s *Series) Duration() time.Duration {
	if len(s.samples) < 2 {
		return 0
	}
	return s.samples[len(s.samples)-1].T.Sub(s.samples[0].T)
}

// Summary reduces the series values to summary statistics.
func (s *Series) Summary() stats.Summary { return stats.Summarize(s.Values()) }

// CDF builds the empirical CDF of the series values.
func (s *Series) CDF() (*stats.CDF, error) { return stats.NewCDF(s.Values()) }

// IntegralSeconds integrates the series over time using the trapezoid
// rule, yielding unit·seconds (for a mA series: milliamp-seconds).
func (s *Series) IntegralSeconds() float64 {
	var total float64
	for i := 1; i < len(s.samples); i++ {
		dt := s.samples[i].T.Sub(s.samples[i-1].T).Seconds()
		total += dt * (s.samples[i].V + s.samples[i-1].V) / 2
	}
	return total
}

// EnergyMAH interprets the series as a current trace in mA and returns
// the charge drawn in milliamp-hours — the unit of Fig. 3 and Fig. 6.
func (s *Series) EnergyMAH() float64 {
	return s.IntegralSeconds() / 3600
}

// MeanDt reports the average sampling interval.
func (s *Series) MeanDt() time.Duration {
	if len(s.samples) < 2 {
		return 0
	}
	return s.Duration() / time.Duration(len(s.samples)-1)
}

// Decimate returns a new series keeping every k-th sample, used to thin a
// 5 kHz monitor trace before plotting. k < 1 is treated as 1.
func (s *Series) Decimate(k int) *Series {
	if k < 1 {
		k = 1
	}
	out := NewSeries(s.name, s.unit)
	for i := 0; i < len(s.samples); i += k {
		out.samples = append(out.samples, s.samples[i])
	}
	return out
}

// Window returns the sub-series with timestamps in [from, to).
func (s *Series) Window(from, to time.Time) *Series {
	out := NewSeries(s.name, s.unit)
	for _, smp := range s.samples {
		if !smp.T.Before(from) && smp.T.Before(to) {
			out.samples = append(out.samples, smp)
		}
	}
	return out
}

// WriteCSV emits "elapsed_seconds,value" rows with a header, the format
// the access server stores in job workspaces (mirroring the Monsoon
// Python library's CSV export).
func (s *Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"elapsed_s", s.name + "_" + s.unit}); err != nil {
		return err
	}
	var t0 time.Time
	if len(s.samples) > 0 {
		t0 = s.samples[0].T
	}
	for _, smp := range s.samples {
		rec := []string{
			strconv.FormatFloat(smp.T.Sub(t0).Seconds(), 'f', 6, 64),
			strconv.FormatFloat(smp.V, 'f', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a series previously written by WriteCSV. The base time
// for reconstructed timestamps is t0.
func ReadCSV(r io.Reader, name, unit string, t0 time.Time) (*Series, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, errors.New("trace: empty CSV")
	}
	s := NewSeries(name, unit)
	for _, row := range rows[1:] {
		if len(row) != 2 {
			return nil, fmt.Errorf("trace: bad row %v", row)
		}
		secs, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, err
		}
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, err
		}
		if err := s.Append(t0.Add(time.Duration(secs*float64(time.Second))), v); err != nil {
			return nil, err
		}
	}
	return s, nil
}
