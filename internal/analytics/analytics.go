// Package analytics is the server-side trace query engine: batch
// windowed aggregates (mean/min/max/P² quantiles/trapezoid energy per
// time bucket, plus whole-trace rollups) computed over stored binary
// traces in one streaming pass, so dashboards fetch kilobytes of
// summaries instead of re-downloading whole artifacts.
//
// The engine reuses the capture path's streaming aggregators
// (internal/samples): a query costs one aggregator update per sample
// and O(buckets) memory, never a second copy of the trace. The rollup
// row accumulates exactly the terms the capture-time summary did, in
// the same order, so its energy integral is bit-identical to the
// RunSummary produced when the build finished.
//
// Results are plain api.AnalyticsResult values; the HTTP layer owns
// caching (see Cache) and RBAC.
package analytics

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"batterylab/internal/api"
	"batterylab/internal/samples"
	"batterylab/internal/trace"
)

// ErrBadQuery marks a query the engine rejects before touching the
// trace (unknown field, non-positive window, too many buckets). The
// HTTP layer maps it to a 400.
var ErrBadQuery = errors.New("analytics: bad query")

// MaxBuckets bounds one query's bucket count: a window that slices the
// trace finer than this is a client error (the response would dwarf
// the artifact the query exists to avoid downloading).
const MaxBuckets = 20_000

// allFields is the canonical sorted field set.
var allFields = []string{
	api.AnalyticsFieldEnergy,
	api.AnalyticsFieldMean,
	api.AnalyticsFieldMinMax,
	api.AnalyticsFieldQuantiles,
}

// NormalizeFields validates and canonicalizes a field selection: empty
// means every field, duplicates collapse, order is sorted. The result
// is stable for equal selections — cache keys depend on that.
func NormalizeFields(fields []string) ([]string, error) {
	if len(fields) == 0 {
		return append([]string(nil), allFields...), nil
	}
	set := map[string]bool{}
	for _, f := range fields {
		ok := false
		for _, known := range allFields {
			if f == known {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("%w: unknown field %q (have %v)", ErrBadQuery, f, allFields)
		}
		set[f] = true
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out, nil
}

// Compute runs one query over a decoded trace in a single streaming
// pass. The query's Fields must already be normalized (NormalizeFields)
// and WindowNS non-negative; Artifact is echoed, not interpreted.
func Compute(tr *trace.Series, q api.AnalyticsQuery) (*api.AnalyticsResult, error) {
	if q.WindowNS < 0 {
		return nil, fmt.Errorf("%w: negative window", ErrBadQuery)
	}
	fields, err := NormalizeFields(q.Fields)
	if err != nil {
		return nil, err
	}
	durationNS := tr.Duration().Nanoseconds()
	if q.WindowNS > 0 {
		if n := durationNS/q.WindowNS + 1; n > MaxBuckets {
			return nil, fmt.Errorf("%w: window %dns over a %dns trace makes %d buckets (max %d)",
				ErrBadQuery, q.WindowNS, durationNS, n, MaxBuckets)
		}
	}

	res := &api.AnalyticsResult{
		Artifact:   q.Artifact,
		DurationNS: durationNS,
		WindowNS:   q.WindowNS,
		Fields:     fields,
	}
	if tr.Len() > 0 {
		res.EpochNS = tr.At(0).T.UnixNano()
	}

	// One pass: the whole-trace rollup aggregators and, when bucketing
	// was asked for, a Windowed splitting the same stream. Timestamps
	// are nanosecond offsets from the trace epoch — the trace's native
	// storage, no time conversion per sample.
	var mom samples.Welford
	p50, p95 := samples.NewP2Quantile(0.5), samples.NewP2Quantile(0.95)
	var integ samples.Trapezoid
	var wd *samples.Windowed
	if q.WindowNS > 0 {
		wd = samples.NewWindowed(0, q.WindowNS, 0.5, 0.95)
	}
	tr.Samples().Iter(func(tNanos int64, v float64) bool {
		mom.Observe(v)
		p50.Observe(v)
		p95.Observe(v)
		integ.Add(tNanos, v)
		if wd != nil {
			wd.Add(tNanos, v)
		}
		return true
	})

	has := func(f string) bool {
		for _, g := range fields {
			if g == f {
				return true
			}
		}
		return false
	}
	fill := func(b *api.AnalyticsBucket, n int64, mean, min, max, q50, q95, integralSeconds float64) {
		b.Samples = n
		if n == 0 {
			return // no valid samples: aggregate fields stay absent
		}
		if has(api.AnalyticsFieldMean) {
			b.MeanMA = ptr(mean)
		}
		if has(api.AnalyticsFieldMinMax) {
			b.MinMA, b.MaxMA = ptr(min), ptr(max)
		}
		if has(api.AnalyticsFieldQuantiles) {
			b.P50MA, b.P95MA = ptr(q50), ptr(q95)
		}
		if has(api.AnalyticsFieldEnergy) {
			b.EnergyMAH = ptr(integralSeconds / 3600)
		}
	}

	res.Total = api.AnalyticsBucket{StartNS: 0, EndNS: durationNS, NaNs: mom.NaNs()}
	fill(&res.Total, mom.N(), mom.Mean(), mom.Min(), mom.Max(), p50.Value(), p95.Value(), integ.IntegralSeconds())

	if wd != nil {
		for _, b := range wd.Buckets() {
			out := api.AnalyticsBucket{StartNS: b.StartNS, EndNS: b.StartNS + q.WindowNS, NaNs: b.NaNs}
			fill(&out, b.N, b.Mean, b.Min, b.Max, b.Quantiles[0], b.Quantiles[1], b.IntegralSeconds)
			res.Buckets = append(res.Buckets, out)
		}
	}
	return res, nil
}

func ptr(v float64) *float64 {
	if math.IsNaN(v) {
		return nil // JSON has no NaN; absent beats lying with a zero
	}
	return &v
}
