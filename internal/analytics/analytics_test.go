package analytics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"batterylab/internal/api"
	"batterylab/internal/samples"
	"batterylab/internal/stats"
	"batterylab/internal/trace"
)

// makeTrace builds a deterministic ~n-sample power trace with
// stationary noise (the regime the documented P² bounds cover).
func makeTrace(seed int64, n int) *trace.Series {
	rng := rand.New(rand.NewSource(seed))
	tr := trace.NewSeries("current", "mA")
	t0 := time.Unix(1_700_000_000, 0)
	var off int64
	for i := 0; i < n; i++ {
		off += int64(1_000_000 + rng.Intn(2_000_000)) // 1-3 ms cadence
		tr.MustAppend(t0.Add(time.Duration(off)), 130+rng.NormFloat64()*20)
	}
	return tr
}

// TestComputeAgainstBatch is the satellite property test: windowed
// aggregates must agree with a batch recomputation from the decoded
// trace — mean and energy to 1e-9 relative, quantiles within the
// documented P² envelope — and the rollup energy must be bit-identical
// to the capture-time integral.
func TestComputeAgainstBatch(t *testing.T) {
	tr := makeTrace(7, 40_000)
	const windowNS = int64(2_500_000_000)
	res, err := Compute(tr, api.AnalyticsQuery{WindowNS: windowNS})
	if err != nil {
		t.Fatal(err)
	}

	if got := *res.Total.EnergyMAH; got != tr.EnergyMAH() {
		t.Errorf("rollup energy %v not bit-identical to capture-time %v", got, tr.EnergyMAH())
	}
	if res.Total.Samples != int64(tr.Len()) {
		t.Errorf("rollup samples %d, trace has %d", res.Total.Samples, tr.Len())
	}
	sum := stats.SummarizeSeries(tr.Samples())
	if rel(*res.Total.MeanMA, sum.Mean) > 1e-9 {
		t.Errorf("rollup mean %v vs batch %v", *res.Total.MeanMA, sum.Mean)
	}
	if *res.Total.MinMA != sum.Min || *res.Total.MaxMA != sum.Max {
		t.Errorf("rollup extremes [%v,%v] vs batch [%v,%v]", *res.Total.MinMA, *res.Total.MaxMA, sum.Min, sum.Max)
	}

	// Batch recomputation per bucket, straight off the decoded series.
	type sample struct {
		t int64
		v float64
	}
	byBucket := map[int64][]sample{}
	tr.Samples().Iter(func(tNanos int64, v float64) bool {
		byBucket[tNanos/windowNS] = append(byBucket[tNanos/windowNS], sample{tNanos, v})
		return true
	})
	if len(res.Buckets) != len(byBucket) {
		t.Fatalf("%d buckets computed, batch grouping has %d", len(res.Buckets), len(byBucket))
	}
	for _, b := range res.Buckets {
		k := b.StartNS / windowNS
		group := byBucket[k]
		if int64(len(group)) != b.Samples {
			t.Fatalf("bucket %d: %d samples, batch %d", k, b.Samples, len(group))
		}
		if b.EndNS != b.StartNS+windowNS {
			t.Fatalf("bucket %d: end %d, want %d", k, b.EndNS, b.StartNS+windowNS)
		}
		var vsum, integ float64
		minV, maxV := math.Inf(1), math.Inf(-1)
		vals := make([]float64, 0, len(group))
		for i, s := range group {
			vsum += s.v
			minV, maxV = math.Min(minV, s.v), math.Max(maxV, s.v)
			vals = append(vals, s.v)
			if i > 0 {
				integ += float64(s.t-group[i-1].t) / 1e9 * (s.v + group[i-1].v) / 2
			}
		}
		if rel(*b.MeanMA, vsum/float64(len(group))) > 1e-9 {
			t.Errorf("bucket %d mean %v vs batch %v", k, *b.MeanMA, vsum/float64(len(group)))
		}
		if *b.MinMA != minV || *b.MaxMA != maxV {
			t.Errorf("bucket %d extremes [%v,%v] vs [%v,%v]", k, *b.MinMA, *b.MaxMA, minV, maxV)
		}
		if rel(*b.EnergyMAH, integ/3600) > 1e-9 {
			t.Errorf("bucket %d energy %v vs batch %v", k, *b.EnergyMAH, integ/3600)
		}
		sort.Float64s(vals)
		for _, qc := range []struct {
			p   float64
			got float64
		}{{0.5, *b.P50MA}, {0.95, *b.P95MA}} {
			exact := samples.QuantileSorted(vals, qc.p)
			bound := 0.05 * (maxV - minV) // documented for n ≥ 1000
			if int64(len(group)) < 1000 {
				bound = 0.25 * (maxV - minV) // ragged final bucket
			}
			if len(group) <= 5 {
				if qc.got != exact {
					t.Errorf("bucket %d p%v small-n %v != %v", k, qc.p, qc.got, exact)
				}
			} else if math.Abs(qc.got-exact) > bound+1e-12 {
				t.Errorf("bucket %d p%v %v vs exact %v exceeds P² bound", k, qc.p, qc.got, exact)
			}
		}
	}
}

func rel(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

// TestComputeFieldSelection pins that fields= restricts what is
// computed and the echo is canonical (sorted, deduplicated).
func TestComputeFieldSelection(t *testing.T) {
	tr := makeTrace(11, 500)
	res, err := Compute(tr, api.AnalyticsQuery{Fields: []string{"energy", "mean", "energy"}})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"energy", "mean"}; fmt.Sprint(res.Fields) != fmt.Sprint(want) {
		t.Fatalf("fields echo %v, want %v", res.Fields, want)
	}
	if res.Total.MeanMA == nil || res.Total.EnergyMAH == nil {
		t.Fatal("requested fields missing")
	}
	if res.Total.MinMA != nil || res.Total.P50MA != nil {
		t.Fatal("unrequested fields present")
	}
	if res.Buckets != nil {
		t.Fatal("buckets present without a window")
	}

	if _, err := Compute(tr, api.AnalyticsQuery{Fields: []string{"bogus"}}); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Compute(tr, api.AnalyticsQuery{WindowNS: -1}); err == nil {
		t.Fatal("negative window accepted")
	}
	if _, err := Compute(tr, api.AnalyticsQuery{WindowNS: 1}); err == nil {
		t.Fatal("1ns window over a multi-second trace must exceed MaxBuckets")
	}
}

// TestComputeEmptyAndNaN pins degenerate traces: no samples, and
// buckets whose samples are all invalid.
func TestComputeEmptyAndNaN(t *testing.T) {
	empty := trace.NewSeries("current", "mA")
	res, err := Compute(empty, api.AnalyticsQuery{WindowNS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Samples != 0 || res.Total.MeanMA != nil || len(res.Buckets) != 0 {
		t.Fatalf("empty trace result %+v", res)
	}
	// A JSON round trip must succeed (no NaN can leak into the wire
	// shape).
	if _, err := json.Marshal(res); err != nil {
		t.Fatal(err)
	}

	tr := trace.NewSeries("current", "mA")
	t0 := time.Unix(0, 0)
	tr.MustAppend(t0, math.NaN())
	tr.MustAppend(t0.Add(time.Millisecond), math.NaN())
	tr.MustAppend(t0.Add(2*time.Second), 5)
	res, err = Compute(tr, api.AnalyticsQuery{WindowNS: int64(time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.NaNs != 2 || res.Total.Samples != 1 {
		t.Fatalf("NaN accounting: %+v", res.Total)
	}
	if len(res.Buckets) != 2 {
		t.Fatalf("got %d buckets, want 2 (NaN-only bucket present, gap absent)", len(res.Buckets))
	}
	if b := res.Buckets[0]; b.Samples != 0 || b.NaNs != 2 || b.MeanMA != nil {
		t.Fatalf("NaN-only bucket %+v", b)
	}
	if _, err := json.Marshal(res); err != nil {
		t.Fatal(err)
	}
}

// TestCacheLRU pins the byte-bounded LRU: exact body round trip,
// promotion on Get, eviction from the cold tail, oversized bodies
// bypassed.
func TestCacheLRU(t *testing.T) {
	c := NewCache(100)
	c.Put("a", bytes.Repeat([]byte("a"), 40))
	c.Put("b", bytes.Repeat([]byte("b"), 40))
	if got, ok := c.Get("a"); !ok || len(got) != 40 || got[0] != 'a' {
		t.Fatalf("get a: %q %v", got, ok)
	}
	// "b" is now the LRU tail; inserting 40 more bytes evicts it.
	c.Put("c", bytes.Repeat([]byte("c"), 40))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite promotion")
	}
	if c.SizeBytes() != 80 || c.Len() != 2 {
		t.Fatalf("size %d len %d", c.SizeBytes(), c.Len())
	}
	// Oversized body: ignored, cache untouched.
	c.Put("huge", bytes.Repeat([]byte("x"), 101))
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized body cached")
	}
	// Replacing a key adjusts accounting.
	c.Put("a", bytes.Repeat([]byte("A"), 10))
	if c.SizeBytes() != 50 {
		t.Fatalf("size after replace %d", c.SizeBytes())
	}
	// Disabled cache.
	d := NewCache(0)
	d.Put("k", []byte("v"))
	if _, ok := d.Get("k"); ok {
		t.Fatal("disabled cache stored an entry")
	}
}

// TestComputeDeterministic pins that two identical queries marshal to
// identical bytes — the property that makes body-level caching safe.
func TestComputeDeterministic(t *testing.T) {
	tr := makeTrace(3, 10_000)
	q := api.AnalyticsQuery{WindowNS: int64(time.Second)}
	a, err := Compute(tr, q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compute(tr, q)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Fatal("identical queries produced different bytes")
	}
}
