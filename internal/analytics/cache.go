package analytics

import (
	"container/list"
	"sync"
)

// Cache is a byte-bounded LRU of marshaled query results. The HTTP
// layer stores the exact response body, so a cache hit is
// bit-identical to the cold query it memoized — no re-marshal, no
// float drift. Keys carry everything that could change the answer
// (build, feed epoch, finish time, artifact, resolved query), which is
// how invalidation works: a build that finishes or a feed that starts
// a new epoch changes the key, and the orphaned entry ages out the LRU
// tail. Safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	max   int64
	size  int64
	ll    *list.List // front = most recent
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

// NewCache returns a cache bounded to maxBytes of stored bodies.
// maxBytes <= 0 disables caching (every Get misses, Put is a no-op).
func NewCache(maxBytes int64) *Cache {
	return &Cache{max: maxBytes, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the cached body for key, promoting it to most recent.
// Callers must not mutate the returned slice.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores body under key, evicting least-recently-used entries
// until the byte bound holds. A body larger than the whole bound is
// not cached.
func (c *Cache) Put(key string, body []byte) {
	if int64(len(body)) > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.size += int64(len(body)) - int64(len(ent.body))
		ent.body = body
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
		c.size += int64(len(body))
	}
	for c.size > c.max {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		ent := tail.Value.(*cacheEntry)
		c.ll.Remove(tail)
		delete(c.items, ent.key)
		c.size -= int64(len(ent.body))
	}
}

// Len reports the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// SizeBytes reports the stored body bytes.
func (c *Cache) SizeBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}
