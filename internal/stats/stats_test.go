package stats

import (
	"math"
	"testing"
	"testing/quick"

	"batterylab/internal/samples"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	if !almostEqual(s.Std, math.Sqrt(2.5), 1e-12) {
		t.Fatalf("std = %v, want sqrt(2.5)", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatalf("empty summary N = %d", s.N)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.Median != 7 {
		t.Fatalf("single summary: %+v", s)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if q := Quantile(xs, 0.5); q != 5 {
		t.Fatalf("Quantile(0.5) = %v, want 5", q)
	}
	if q := Quantile(xs, 0.25); q != 2.5 {
		t.Fatalf("Quantile(0.25) = %v, want 2.5", q)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated input")
	}
}

func TestQuantileBounds(t *testing.T) {
	xs := []float64{5, 1, 9}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 9 {
		t.Fatal("extreme quantiles wrong")
	}
}

func TestCDFAt(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); got != tc.want {
			t.Fatalf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	if _, err := NewCDF(nil); err == nil {
		t.Fatal("NewCDF(nil) succeeded")
	}
}

func TestCDFQuantileMonotonic(t *testing.T) {
	c, _ := NewCDF([]float64{5, 3, 8, 1, 9, 2, 7})
	if err := quick.Check(func(a, b float64) bool {
		pa, pb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		return c.Quantile(pa) <= c.Quantile(pb)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFAtMonotonicProperty(t *testing.T) {
	c, _ := NewCDF([]float64{1, 4, 4, 6, 10})
	if err := quick.Check(func(a, b float64) bool {
		if a > b {
			a, b = b, a
		}
		return c.At(a) <= c.At(b)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFPoints(t *testing.T) {
	c, _ := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].X != 1 || pts[len(pts)-1].X != 10 {
		t.Fatalf("endpoints wrong: %+v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].F < pts[i-1].F || pts[i].X < pts[i-1].X {
			t.Fatalf("points not monotonic: %+v", pts)
		}
	}
	if pts[len(pts)-1].F != 1 {
		t.Fatalf("final F = %v, want 1", pts[len(pts)-1].F)
	}
}

func TestKSDistanceIdentical(t *testing.T) {
	a, _ := NewCDF([]float64{1, 2, 3})
	b, _ := NewCDF([]float64{1, 2, 3})
	if d := KSDistance(a, b); d != 0 {
		t.Fatalf("KS of identical = %v", d)
	}
}

func TestKSDistanceDisjoint(t *testing.T) {
	a, _ := NewCDF([]float64{1, 2, 3})
	b, _ := NewCDF([]float64{10, 20, 30})
	if d := KSDistance(a, b); d != 1 {
		t.Fatalf("KS of disjoint = %v, want 1", d)
	}
}

func TestKSDistanceSymmetric(t *testing.T) {
	a, _ := NewCDF([]float64{1, 5, 9, 12})
	b, _ := NewCDF([]float64{2, 4, 8, 20, 30})
	if KSDistance(a, b) != KSDistance(b, a) {
		t.Fatal("KS not symmetric")
	}
}

func TestMeanStd(t *testing.T) {
	if m := Mean([]float64{2, 4}); m != 3 {
		t.Fatalf("Mean = %v", m)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) not NaN")
	}
	if s := Std([]float64{1, 1, 1}); s != 0 {
		t.Fatalf("Std of constant = %v", s)
	}
}

func TestSummarizeSkipsNaN(t *testing.T) {
	// NaNs are invalid measurements: excluded from N and every
	// statistic, consistently with the streaming aggregators.
	got := Summarize([]float64{math.NaN(), 1, 2, 3})
	want := Summarize([]float64{1, 2, 3})
	if got != want {
		t.Fatalf("with NaN %+v, without %+v", got, want)
	}
	if got.N != 3 || got.Median != 2 {
		t.Fatalf("summary = %+v", got)
	}
	if (Summarize([]float64{math.NaN()}) != Summary{}) {
		t.Fatal("all-NaN input not zero Summary")
	}
	// SummarizeSeries shares the contract.
	s := samples.NewSeries()
	for i, x := range []float64{math.NaN(), 1, 2, 3} {
		s.Append(int64(i), x)
	}
	if SummarizeSeries(s) != want {
		t.Fatalf("SummarizeSeries with NaN = %+v, want %+v", SummarizeSeries(s), want)
	}
}

func TestSortedMatchesQuantile(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7, 2, 8}
	s := NewSorted(xs)
	for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
		if got, want := s.Quantile(p), Quantile(xs, p); got != want {
			t.Fatalf("Sorted.Quantile(%v) = %v, want %v", p, got, want)
		}
	}
	if s.Median() != Quantile(xs, 0.5) {
		t.Fatal("Median disagrees")
	}
	if s.N() != len(xs) {
		t.Fatalf("N = %d", s.N())
	}
}

func TestSortedEmpty(t *testing.T) {
	s := NewSorted(nil)
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("empty Sorted quantile not NaN")
	}
}

func TestSortedDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	NewSorted(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("NewSorted mutated input")
	}
}

func TestQuantilesOneSort(t *testing.T) {
	xs := []float64{5, 3, 8, 1, 9, 2, 7}
	qs := Quantiles(xs, 0.25, 0.5, 0.75)
	for i, p := range []float64{0.25, 0.5, 0.75} {
		if qs[i] != Quantile(xs, p) {
			t.Fatalf("Quantiles[%d] = %v, want %v", i, qs[i], Quantile(xs, p))
		}
	}
}

func TestSummarizeSeriesMatchesBatch(t *testing.T) {
	s := samples.NewSeries()
	xs := []float64{4, 8, 15, 16, 23, 42}
	for i, x := range xs {
		s.Append(int64(i)*1e6, x)
	}
	got, want := SummarizeSeries(s), Summarize(xs)
	if got != want {
		t.Fatalf("SummarizeSeries = %+v, want %+v", got, want)
	}
	if (SummarizeSeries(samples.NewSeries()) != Summary{}) {
		t.Fatal("empty series summary not zero")
	}
}

func TestNewCDFSeries(t *testing.T) {
	s := samples.NewSeries()
	for i, x := range []float64{3, 1, 2, 4} {
		s.Append(int64(i), x)
	}
	c, err := NewCDFSeries(s)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := NewCDF([]float64{3, 1, 2, 4})
	if c.Median() != ref.Median() || c.Min() != ref.Min() || c.Max() != ref.Max() {
		t.Fatal("series CDF disagrees with slice CDF")
	}
	if _, err := NewCDFSeries(samples.NewSeries()); err == nil {
		t.Fatal("empty series CDF succeeded")
	}
}

func TestFromLiveAgreesWithSummarize(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	ss := samples.NewStreamSummary()
	for i, x := range xs {
		ss.Add(int64(i)*1e9, x)
	}
	got, want := FromLive(ss.Snapshot()), Summarize(xs)
	if got.N != want.N || !almostEqual(got.Mean, want.Mean, 1e-9) ||
		!almostEqual(got.Std, want.Std, 1e-9) || got.Min != want.Min ||
		got.Max != want.Max || got.Median != want.Median {
		t.Fatalf("FromLive = %+v, want %+v", got, want)
	}
	if (FromLive(samples.LiveSummary{}) != Summary{}) {
		t.Fatal("empty live summary not zero")
	}
}

func TestMedianQuantileAgreement(t *testing.T) {
	c, _ := NewCDF([]float64{9, 1, 5})
	if c.Median() != 5 {
		t.Fatalf("median = %v", c.Median())
	}
	if c.Min() != 1 || c.Max() != 9 {
		t.Fatal("min/max wrong")
	}
}
