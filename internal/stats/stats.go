// Package stats provides the summary statistics and empirical CDFs used
// throughout BatteryLab's evaluation: per-run energy summaries (Fig. 3,
// Fig. 6), current and CPU distribution CDFs (Fig. 2, 4, 5), and
// distribution comparisons used by the accuracy analysis.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Summary holds moment statistics over a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary. It returns a zero Summary for an empty
// input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f std=%.2f min=%.2f p50=%.2f max=%.2f",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.Max)
}

// Quantile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p)
}

func quantileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF. The input is copied.
func NewCDF(xs []float64) (*CDF, error) {
	if len(xs) == 0 {
		return nil, errors.New("stats: empty sample")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}, nil
}

// N reports the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// At reports the fraction of samples <= x.
func (c *CDF) At(x float64) float64 {
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the p-quantile of the sample.
func (c *CDF) Quantile(p float64) float64 { return quantileSorted(c.sorted, p) }

// Median is shorthand for Quantile(0.5).
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Min and Max report the extreme samples.
func (c *CDF) Min() float64 { return c.sorted[0] }

// Max reports the largest sample.
func (c *CDF) Max() float64 { return c.sorted[len(c.sorted)-1] }

// Points returns up to n evenly spaced (x, F(x)) pairs for plotting a CDF
// series like the paper's figures.
func (c *CDF) Points(n int) []Point {
	if n < 2 {
		n = 2
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / (n - 1)
		pts = append(pts, Point{
			X: c.sorted[idx],
			F: float64(idx+1) / float64(len(c.sorted)),
		})
	}
	return pts
}

// Point is one (value, cumulative fraction) sample of a CDF curve.
type Point struct {
	X float64
	F float64
}

// KSDistance computes the Kolmogorov–Smirnov statistic between two
// empirical CDFs: the supremum of |F1(x) - F2(x)| over the pooled sample
// points. It is the metric used to assert "negligible difference" between
// the direct and relay wirings in the accuracy evaluation.
func KSDistance(a, b *CDF) float64 {
	var max float64
	for _, xs := range [][]float64{a.sorted, b.sorted} {
		for _, x := range xs {
			d := math.Abs(a.At(x) - b.At(x))
			if d > max {
				max = d
			}
		}
	}
	return max
}

// Mean returns the arithmetic mean of xs, or NaN when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the sample standard deviation of xs (0 for n < 2).
func Std(xs []float64) float64 {
	return Summarize(xs).Std
}
