// Package stats provides the summary statistics and empirical CDFs used
// throughout BatteryLab's evaluation: per-run energy summaries (Fig. 3,
// Fig. 6), current and CPU distribution CDFs (Fig. 2, 4, 5), and
// distribution comparisons used by the accuracy analysis.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"batterylab/internal/samples"
)

// Summary holds moment statistics over a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary. It returns a zero Summary for an empty
// input. The moments are computed with the streaming Welford aggregator
// from internal/samples (one pass instead of two); the median is exact,
// from a single sorted copy. NaN values are invalid measurements and
// are skipped entirely — excluded from N and every statistic — matching
// the streaming aggregators' contract.
func Summarize(xs []float64) Summary {
	var w samples.Welford
	vs := make([]float64, 0, len(xs))
	for _, x := range xs {
		w.Observe(x)
		if !math.IsNaN(x) {
			vs = append(vs, x)
		}
	}
	return summarizeValid(&w, vs)
}

// SummarizeSeries is Summarize over a chunked sample series, without
// materializing a flat value slice for the moments (the exact median
// still sorts one copy of the values).
func SummarizeSeries(s *samples.Series) Summary {
	var w samples.Welford
	vs := make([]float64, 0, s.Len())
	s.Iter(func(_ int64, v float64) bool {
		w.Observe(v)
		if !math.IsNaN(v) {
			vs = append(vs, v)
		}
		return true
	})
	return summarizeValid(&w, vs)
}

// summarizeValid assembles a Summary from the one-pass moments and the
// NaN-filtered values (sorted here, once, for the exact median).
func summarizeValid(w *samples.Welford, vs []float64) Summary {
	if len(vs) == 0 {
		return Summary{}
	}
	sort.Float64s(vs)
	return Summary{
		N:      len(vs),
		Mean:   w.Mean(),
		Std:    w.Std(),
		Min:    w.Min(),
		Max:    w.Max(),
		Median: quantileSorted(vs, 0.5),
	}
}

// FromLive converts a streaming samples.LiveSummary into a Summary. The
// Median is the P² streaming estimate — exact for N ≤ 5, approximate
// beyond (see the internal/samples package comment for bounds).
func FromLive(ls samples.LiveSummary) Summary {
	if ls.N == 0 {
		return Summary{}
	}
	return Summary{
		N:      ls.N,
		Mean:   ls.Mean,
		Std:    ls.Std,
		Min:    ls.Min,
		Max:    ls.Max,
		Median: ls.P50,
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f std=%.2f min=%.2f p50=%.2f max=%.2f",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.Max)
}

// Quantile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p)
}

// quantileSorted delegates to the one shared interpolation convention
// in internal/samples, keeping batch and streaming small-n quantiles
// bit-identical.
func quantileSorted(sorted []float64, p float64) float64 {
	return samples.QuantileSorted(sorted, p)
}

// Sorted is a sample sorted once, for reading many exact quantiles
// without re-sorting per call — the Fig. 4/5 CDF tables read five
// quantiles of the same distribution, and stats.Quantile would pay an
// O(n log n) sort for each.
type Sorted struct {
	xs []float64
}

// NewSorted copies and sorts the sample once. An empty input is allowed;
// its quantiles are NaN.
func NewSorted(xs []float64) Sorted {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Sorted{xs: sorted}
}

// N reports the sample size.
func (s Sorted) N() int { return len(s.xs) }

// Quantile returns the exact p-quantile in O(1).
func (s Sorted) Quantile(p float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	return quantileSorted(s.xs, p)
}

// Median is shorthand for Quantile(0.5).
func (s Sorted) Median() float64 { return s.Quantile(0.5) }

// Quantiles computes several quantiles of xs with a single sort — use
// this instead of repeated Quantile calls on the same slice.
func Quantiles(xs []float64, ps ...float64) []float64 {
	s := NewSorted(xs)
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = s.Quantile(p)
	}
	return out
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF. The input is copied.
func NewCDF(xs []float64) (*CDF, error) {
	if len(xs) == 0 {
		return nil, errors.New("stats: empty sample")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}, nil
}

// NewCDFSeries builds an empirical CDF from a chunked sample series,
// filling the sorted buffer straight from the chunks (one copy instead
// of Values()+copy).
func NewCDFSeries(s *samples.Series) (*CDF, error) {
	if s.Len() == 0 {
		return nil, errors.New("stats: empty sample")
	}
	sorted := make([]float64, 0, s.Len())
	s.Iter(func(_ int64, v float64) bool {
		sorted = append(sorted, v)
		return true
	})
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}, nil
}

// N reports the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// At reports the fraction of samples <= x.
func (c *CDF) At(x float64) float64 {
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the p-quantile of the sample.
func (c *CDF) Quantile(p float64) float64 { return quantileSorted(c.sorted, p) }

// Median is shorthand for Quantile(0.5).
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Min and Max report the extreme samples.
func (c *CDF) Min() float64 { return c.sorted[0] }

// Max reports the largest sample.
func (c *CDF) Max() float64 { return c.sorted[len(c.sorted)-1] }

// Points returns up to n evenly spaced (x, F(x)) pairs for plotting a CDF
// series like the paper's figures.
func (c *CDF) Points(n int) []Point {
	if n < 2 {
		n = 2
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / (n - 1)
		pts = append(pts, Point{
			X: c.sorted[idx],
			F: float64(idx+1) / float64(len(c.sorted)),
		})
	}
	return pts
}

// Point is one (value, cumulative fraction) sample of a CDF curve.
type Point struct {
	X float64
	F float64
}

// KSDistance computes the Kolmogorov–Smirnov statistic between two
// empirical CDFs: the supremum of |F1(x) - F2(x)| over the pooled sample
// points. It is the metric used to assert "negligible difference" between
// the direct and relay wirings in the accuracy evaluation.
func KSDistance(a, b *CDF) float64 {
	var max float64
	for _, xs := range [][]float64{a.sorted, b.sorted} {
		for _, x := range xs {
			d := math.Abs(a.At(x) - b.At(x))
			if d > max {
				max = d
			}
		}
	}
	return max
}

// Mean returns the arithmetic mean of xs, or NaN when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the sample standard deviation of xs (0 for n < 2).
func Std(xs []float64) float64 {
	return Summarize(xs).Std
}
