// Package wifi models the vantage point controller's WiFi access point.
// The Raspberry Pi exposes an AP (in NAT or Bridge mode) that test
// devices join; automation then reaches devices without the USB current
// that corrupts power measurements, and all device traffic flows through
// the controller — which is what lets a VPN tunnel at the controller
// change the network location every device sees (§4.3).
package wifi

import (
	"fmt"
	"sync"
	"time"

	"batterylab/internal/device"
	"batterylab/internal/netem"
)

// Mode is the AP's forwarding mode.
type Mode int

// AP modes (§3.2: "WiFi access point (configured in NAT or Bridge mode)").
const (
	ModeNAT Mode = iota
	ModeBridge
)

func (m Mode) String() string {
	if m == ModeBridge {
		return "bridge"
	}
	return "nat"
}

// PathProvider yields the controller's current upstream path — typically
// vpn.Client.Path, so tunnel changes are picked up per transfer.
type PathProvider func() (*netem.Path, error)

// AP is the controller-hosted access point.
type AP struct {
	ssid  string
	mode  Mode
	local netem.Link

	mu      sync.Mutex
	uplink  PathProvider
	clients map[string]*device.Device
}

// NewAP creates an access point. The local hop defaults to a 2.4 GHz
// 802.11n cell: 45 Mbps each way, 2 ms RTT.
func NewAP(ssid string, mode Mode) *AP {
	return &AP{
		ssid: ssid,
		mode: mode,
		local: netem.Link{
			Name: "wifi/" + ssid, DownMbps: 45, UpMbps: 45, RTT: 2 * time.Millisecond,
		},
		clients: make(map[string]*device.Device),
	}
}

// SSID reports the network name.
func (ap *AP) SSID() string { return ap.ssid }

// Mode reports the forwarding mode.
func (ap *AP) Mode() Mode { return ap.mode }

// SetUplink installs the upstream path provider.
func (ap *AP) SetUplink(p PathProvider) {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	ap.uplink = p
}

// Connect associates a device with the AP. The device's WiFi radio must
// be at least idle (not off).
func (ap *AP) Connect(d *device.Device) error {
	if d.WiFi().State() == device.RadioOff {
		return fmt.Errorf("wifi: device %s radio is off", d.Serial())
	}
	ap.mu.Lock()
	defer ap.mu.Unlock()
	if _, dup := ap.clients[d.Serial()]; dup {
		return fmt.Errorf("wifi: device %s already associated", d.Serial())
	}
	ap.clients[d.Serial()] = d
	return nil
}

// Disconnect dissociates a device.
func (ap *AP) Disconnect(serial string) {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	delete(ap.clients, serial)
}

// Connected reports whether the serial is associated.
func (ap *AP) Connected(serial string) bool {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	_, ok := ap.clients[serial]
	return ok
}

// Clients lists associated serials.
func (ap *AP) Clients() []string {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	out := make([]string, 0, len(ap.clients))
	for s := range ap.clients {
		out = append(out, s)
	}
	return out
}

// Path composes the device-to-origin path: the local WiFi hop plus the
// controller's upstream.
func (ap *AP) Path() (*netem.Path, error) {
	ap.mu.Lock()
	uplink := ap.uplink
	ap.mu.Unlock()
	local, err := netem.NewPath(ap.local)
	if err != nil {
		return nil, err
	}
	if uplink == nil {
		return local, nil
	}
	up, err := uplink()
	if err != nil {
		return nil, err
	}
	return local.AppendPath(up)
}

// Download moves n bytes from the network to the device through the AP,
// accounting the transfer on the device's WiFi radio and reporting how
// long it takes. The device must be associated.
func (ap *AP) Download(d *device.Device, n int64) (time.Duration, error) {
	return ap.transfer(d, n, true)
}

// Upload moves n bytes from the device to the network.
func (ap *AP) Upload(d *device.Device, n int64) (time.Duration, error) {
	return ap.transfer(d, n, false)
}

func (ap *AP) transfer(d *device.Device, n int64, download bool) (time.Duration, error) {
	if !ap.Connected(d.Serial()) {
		return 0, fmt.Errorf("wifi: device %s not associated with %s", d.Serial(), ap.ssid)
	}
	p, err := ap.Path()
	if err != nil {
		return 0, err
	}
	dur := p.TransferTime(n, download)
	if n > 0 && dur > 0 {
		rate := float64(n*8) / 1e6 / dur.Seconds()
		d.WiFi().Transfer(n, rate, !download)
	}
	return dur, nil
}

// RTT reports the current device-to-origin round-trip time.
func (ap *AP) RTT() (time.Duration, error) {
	p, err := ap.Path()
	if err != nil {
		return 0, err
	}
	return p.RTT(), nil
}
