package wifi

import (
	"testing"
	"time"

	"batterylab/internal/device"
	"batterylab/internal/netem"
	"batterylab/internal/simclock"
)

func newAPWithDevice(t *testing.T) (*AP, *device.Device, *simclock.Virtual) {
	t.Helper()
	clk := simclock.NewVirtual()
	d, err := device.New(clk, device.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ap := NewAP("batterylab", ModeNAT)
	if err := ap.Connect(d); err != nil {
		t.Fatal(err)
	}
	return ap, d, clk
}

func TestConnectRequiresRadio(t *testing.T) {
	clk := simclock.NewVirtual()
	d, _ := device.New(clk, device.Config{Seed: 1})
	d.WiFi().SetState(device.RadioOff)
	ap := NewAP("x", ModeBridge)
	if err := ap.Connect(d); err == nil {
		t.Fatal("connect with radio off accepted")
	}
}

func TestDuplicateConnect(t *testing.T) {
	ap, d, _ := newAPWithDevice(t)
	if err := ap.Connect(d); err == nil {
		t.Fatal("duplicate association accepted")
	}
}

func TestDisconnect(t *testing.T) {
	ap, d, _ := newAPWithDevice(t)
	ap.Disconnect(d.Serial())
	if ap.Connected(d.Serial()) {
		t.Fatal("still connected")
	}
	if _, err := ap.Download(d, 1000); err == nil {
		t.Fatal("transfer after disconnect accepted")
	}
}

func TestPathWithoutUplink(t *testing.T) {
	ap, _, _ := newAPWithDevice(t)
	p, err := ap.Path()
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops() != 1 {
		t.Fatalf("hops = %d, want 1 (local only)", p.Hops())
	}
	if p.DownMbps() != 45 {
		t.Fatalf("local down = %v", p.DownMbps())
	}
}

func TestPathComposesUplink(t *testing.T) {
	ap, _, _ := newAPWithDevice(t)
	up, _ := netem.NewPath(netem.Link{Name: "isp", DownMbps: 8, UpMbps: 4, RTT: 200 * time.Millisecond})
	ap.SetUplink(func() (*netem.Path, error) { return up, nil })
	p, err := ap.Path()
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops() != 2 || p.DownMbps() != 8 {
		t.Fatalf("composed path: hops=%d down=%v", p.Hops(), p.DownMbps())
	}
	rtt, err := ap.RTT()
	if err != nil {
		t.Fatal(err)
	}
	if rtt != 202*time.Millisecond {
		t.Fatalf("rtt = %v", rtt)
	}
}

func TestDownloadAccountsRadio(t *testing.T) {
	ap, d, _ := newAPWithDevice(t)
	dur, err := ap.Download(d, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if dur <= 0 {
		t.Fatal("zero transfer time")
	}
	_, rx := d.WiFi().Counters()
	if rx != 1_000_000 {
		t.Fatalf("rx = %d", rx)
	}
	if d.WiFi().State() != device.RadioActive {
		t.Fatal("radio not active during transfer")
	}
}

func TestUploadDirection(t *testing.T) {
	ap, d, _ := newAPWithDevice(t)
	if _, err := ap.Upload(d, 500_000); err != nil {
		t.Fatal(err)
	}
	tx, _ := d.WiFi().Counters()
	if tx != 500_000 {
		t.Fatalf("tx = %d", tx)
	}
}

func TestUplinkBottleneckSlowsTransfer(t *testing.T) {
	ap, d, _ := newAPWithDevice(t)
	fast, err := ap.Download(d, 4_000_000)
	if err != nil {
		t.Fatal(err)
	}
	slow1, _ := netem.NewPath(netem.Link{Name: "vpn", DownMbps: 6, UpMbps: 6, RTT: 220 * time.Millisecond})
	ap.SetUplink(func() (*netem.Path, error) { return slow1, nil })
	slow, err := ap.Download(d, 4_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if slow <= fast {
		t.Fatalf("tunneled transfer should be slower: %v vs %v", slow, fast)
	}
}

func TestClientsListing(t *testing.T) {
	ap, d, _ := newAPWithDevice(t)
	cs := ap.Clients()
	if len(cs) != 1 || cs[0] != d.Serial() {
		t.Fatalf("clients = %v", cs)
	}
}

func TestModeString(t *testing.T) {
	if ModeNAT.String() != "nat" || ModeBridge.String() != "bridge" {
		t.Fatal("mode strings")
	}
}
