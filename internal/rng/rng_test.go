package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("%d/100 identical draws across different seeds", same)
	}
}

func TestForkStable(t *testing.T) {
	a := New(7).Fork("cpu")
	b := New(7).Fork("cpu")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("forked streams with same label diverged")
		}
	}
}

func TestForkIndependentLabels(t *testing.T) {
	parent := New(7)
	a := parent.Fork("cpu")
	b := parent.Fork("net")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("%d/100 identical draws across labels", same)
	}
}

func TestForkDoesNotConsumeParent(t *testing.T) {
	a := New(9)
	first := a.Float64()
	b := New(9)
	b.Fork("x")
	if got := b.Float64(); got != first {
		t.Fatalf("Fork consumed parent state: %v != %v", got, first)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(1)
	if err := quick.Check(func(seed uint64) bool {
		x := r.Uniform(5, 10)
		return x >= 5 && x < 10
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(3)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.Normal(10, 2)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("mean = %v, want ~10", mean)
	}
	if math.Abs(std-2) > 0.05 {
		t.Fatalf("std = %v, want ~2", std)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	r := New(4)
	for i := 0; i < 10000; i++ {
		x := r.TruncNormal(0.5, 1.0, 0, 1)
		if x < 0 || x > 1 {
			t.Fatalf("TruncNormal out of bounds: %v", x)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		if x := r.LogNormal(0, 1); x <= 0 {
			t.Fatalf("LogNormal non-positive: %v", x)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(6)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(3)
	}
	if mean := sum / n; math.Abs(mean-3) > 0.1 {
		t.Fatalf("Exp mean = %v, want ~3", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(8)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) hit rate %v", frac)
	}
}

func TestJitterBounds(t *testing.T) {
	r := New(10)
	for i := 0; i < 1000; i++ {
		x := r.Jitter(100, 0.1)
		if x < 90 || x >= 110 {
			t.Fatalf("Jitter out of bounds: %v", x)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestIntNRange(t *testing.T) {
	r := New(12)
	for i := 0; i < 1000; i++ {
		if v := r.IntN(7); v < 0 || v >= 7 {
			t.Fatalf("IntN(7) = %d", v)
		}
	}
}
