// Package rng provides seedable, forkable random streams for the
// simulation. Every stochastic component (CPU noise, network jitter,
// measurement noise) draws from its own forked stream so that adding a new
// consumer never perturbs the draws seen by existing ones, keeping
// experiment traces reproducible.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
)

// RNG is a deterministic random stream.
type RNG struct {
	seed uint64
	src  *rand.Rand
}

// New returns a stream seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{seed: seed, src: rand.New(rand.NewPCG(splitmix(seed), splitmix(seed^0x9e3779b97f4a7c15)))}
}

// Fork derives an independent stream labelled by name. Forking is stable:
// the same parent seed and label always yield the same child stream.
func (r *RNG) Fork(label string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(label))
	return New(splitmix(r.seed ^ h.Sum64()))
}

// At derives the stream for a (label, epoch) pair. Unlike Fork-then-draw,
// At is stateless: any component can ask for the noise of any epoch in any
// order and always observe the same values. This is how piecewise-constant
// noise processes (CPU utilization, supply ripple) stay consistent no
// matter how often or when they are sampled.
func (r *RNG) At(label string, epoch int64) *RNG {
	h := fnv.New64a()
	h.Write([]byte(label))
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(epoch >> (8 * i))
	}
	h.Write(buf[:])
	return New(splitmix(r.seed ^ h.Sum64()))
}

// splitmix is the SplitMix64 finalizer, used to decorrelate nearby seeds.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Seed reports the seed this stream was created with.
func (r *RNG) Seed() uint64 { return r.seed }

// Float64 returns a uniform draw in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// IntN returns a uniform draw in [0, n). It panics if n <= 0.
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Uniform returns a uniform draw in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// Normal returns a Gaussian draw with the given mean and standard
// deviation.
func (r *RNG) Normal(mean, std float64) float64 {
	return mean + std*r.src.NormFloat64()
}

// TruncNormal returns a Gaussian draw clamped to [lo, hi]. It redraws up
// to 8 times before clamping, which keeps the distribution shape near the
// bounds reasonable without risking unbounded loops.
func (r *RNG) TruncNormal(mean, std, lo, hi float64) float64 {
	for i := 0; i < 8; i++ {
		x := r.Normal(mean, std)
		if x >= lo && x <= hi {
			return x
		}
	}
	return math.Min(hi, math.Max(lo, r.Normal(mean, std)))
}

// LogNormal returns exp(N(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exp returns an exponential draw with the given mean (not rate).
func (r *RNG) Exp(mean float64) float64 {
	return r.src.ExpFloat64() * mean
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.src.Float64() < p }

// Jitter returns x scaled by a uniform factor in [1-frac, 1+frac].
func (r *RNG) Jitter(x, frac float64) float64 {
	return x * r.Uniform(1-frac, 1+frac)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }
