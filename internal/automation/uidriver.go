package automation

import (
	"fmt"
	"time"

	"batterylab/internal/device"
)

// UITestDriver models instrumented UI testing (Espresso/XCTest): the app
// is rebuilt with the test script baked in, so no communication channel
// with the controller is needed during the run — the best case for
// measurement purity. The cost: it only works for apps whose source is
// available (§3.3), expressed here as a registry of instrumentable
// packages.
type UITestDriver struct {
	dev      *device.Device
	testAPKs map[string]bool
}

// NewUITestDriver binds to a device with the given set of packages for
// which a test APK could be built.
func NewUITestDriver(dev *device.Device, instrumentablePkgs []string) *UITestDriver {
	m := make(map[string]bool, len(instrumentablePkgs))
	for _, p := range instrumentablePkgs {
		m[p] = true
	}
	return &UITestDriver{dev: dev, testAPKs: m}
}

// Kind implements Driver.
func (d *UITestDriver) Kind() Kind { return KindUITest }

// Serial implements Driver.
func (d *UITestDriver) Serial() string { return d.dev.Serial() }

// Capabilities implements Driver.
func (d *UITestDriver) Capabilities() Capabilities {
	return Capabilities{
		SupportsMirroring: false,
		MeasurementSafe:   true,
		CellularSafe:      true,
		RequiresAppSource: true,
	}
}

// onDeviceLatency is the cost of an instrumented action (no network hop,
// just the test runner's dispatch).
const onDeviceLatency = 2 * time.Millisecond

func (d *UITestDriver) guard(pkg string) error {
	if !d.testAPKs[pkg] {
		return fmt.Errorf("automation: uitest: no test APK for %s (app source unavailable)", pkg)
	}
	return nil
}

// LaunchApp implements Driver; the instrumented APK must exist.
func (d *UITestDriver) LaunchApp(pkg string) (time.Duration, error) {
	if err := d.guard(pkg); err != nil {
		return 0, err
	}
	return onDeviceLatency, d.dev.LaunchApp(pkg)
}

// StopApp implements Driver.
func (d *UITestDriver) StopApp(pkg string) (time.Duration, error) {
	if err := d.guard(pkg); err != nil {
		return 0, err
	}
	return onDeviceLatency, d.dev.StopApp(pkg)
}

// ClearApp implements Driver.
func (d *UITestDriver) ClearApp(pkg string) (time.Duration, error) {
	if err := d.guard(pkg); err != nil {
		return 0, err
	}
	return onDeviceLatency, d.dev.ClearAppData(pkg)
}

// Tap implements Driver.
func (d *UITestDriver) Tap(x, y int) (time.Duration, error) {
	return onDeviceLatency, d.dev.Input(device.InputEvent{Kind: device.InputTap, X: x, Y: y})
}

// Key implements Driver.
func (d *UITestDriver) Key(key string) (time.Duration, error) {
	return onDeviceLatency, d.dev.Input(device.InputEvent{Kind: device.InputKey, Key: key})
}

// TypeText implements Driver.
func (d *UITestDriver) TypeText(text string) (time.Duration, error) {
	return onDeviceLatency, d.dev.Input(device.InputEvent{Kind: device.InputText, Text: text})
}

// Scroll implements Driver.
func (d *UITestDriver) Scroll(down bool) (time.Duration, error) {
	return onDeviceLatency, d.dev.Input(device.InputEvent{Kind: device.InputScroll, ScrollDown: down})
}
