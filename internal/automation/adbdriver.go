package automation

import (
	"fmt"
	"time"

	"batterylab/internal/adb"
)

// ADBDriver automates a device through the controller's ADB server. Its
// capabilities depend on the transport the server currently uses for the
// device: USB is reliable but not measurement-safe, WiFi is measurement-
// safe but occupies the WiFi path, Bluetooth is both but needs root.
type ADBDriver struct {
	srv    *adb.Server
	serial string
}

// NewADBDriver binds the driver to serial on srv.
func NewADBDriver(srv *adb.Server, serial string) *ADBDriver {
	return &ADBDriver{srv: srv, serial: serial}
}

// Kind implements Driver.
func (d *ADBDriver) Kind() Kind { return KindADB }

// Serial implements Driver.
func (d *ADBDriver) Serial() string { return d.serial }

// Capabilities implements Driver, reflecting the live transport.
func (d *ADBDriver) Capabilities() Capabilities {
	t, err := d.srv.Transport(d.serial)
	if err != nil {
		return Capabilities{}
	}
	return Capabilities{
		SupportsMirroring: true,
		MeasurementSafe:   t != adb.TransportUSB,
		CellularSafe:      t == adb.TransportBluetooth,
		RequiresRoot:      t == adb.TransportBluetooth,
	}
}

func (d *ADBDriver) exec(cmd string) (time.Duration, error) {
	lat, err := d.srv.CommandLatency(d.serial)
	if err != nil {
		return 0, err
	}
	if _, err := d.srv.Shell(d.serial, cmd); err != nil {
		return 0, err
	}
	return lat, nil
}

// LaunchApp implements Driver (am start).
func (d *ADBDriver) LaunchApp(pkg string) (time.Duration, error) {
	return d.exec("am start -n " + pkg + "/.Main")
}

// StopApp implements Driver (am force-stop).
func (d *ADBDriver) StopApp(pkg string) (time.Duration, error) {
	return d.exec("am force-stop " + pkg)
}

// ClearApp implements Driver (pm clear).
func (d *ADBDriver) ClearApp(pkg string) (time.Duration, error) {
	return d.exec("pm clear " + pkg)
}

// Tap implements Driver (input tap).
func (d *ADBDriver) Tap(x, y int) (time.Duration, error) {
	return d.exec(fmt.Sprintf("input tap %d %d", x, y))
}

// Key implements Driver (input keyevent).
func (d *ADBDriver) Key(key string) (time.Duration, error) {
	return d.exec("input keyevent " + key)
}

// TypeText implements Driver (input text).
func (d *ADBDriver) TypeText(text string) (time.Duration, error) {
	return d.exec("input text " + text)
}

// Scroll implements Driver (input swipe).
func (d *ADBDriver) Scroll(down bool) (time.Duration, error) {
	if down {
		return d.exec("input swipe 360 900 360 300 200")
	}
	return d.exec("input swipe 360 300 360 900 200")
}
