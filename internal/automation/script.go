// Package automation implements BatteryLab's three test-automation
// strategies (§3.3) behind one Driver interface — ADB (over USB, WiFi or
// Bluetooth), instrumented UI tests, and the Bluetooth HID keyboard —
// plus the Script/Executor machinery that runs experiment scripts on
// either the real clock (daemons) or the virtual clock (experiments and
// tests).
package automation

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"batterylab/internal/simclock"
)

// Step is one scripted action: a function to perform and the simulated
// time the script occupies before the next step (action latency plus any
// scripted dwell).
type Step struct {
	Name string
	Do   func() error
	Wait time.Duration
}

// Script is an ordered list of steps, built incrementally.
type Script struct {
	name  string
	steps []Step
}

// NewScript returns an empty named script.
func NewScript(name string) *Script {
	return &Script{name: name}
}

// Name reports the script name.
func (s *Script) Name() string { return s.name }

// Len reports the number of steps.
func (s *Script) Len() int { return len(s.steps) }

// Add appends a step with an action and a wait.
func (s *Script) Add(name string, wait time.Duration, do func() error) *Script {
	s.steps = append(s.steps, Step{Name: name, Do: do, Wait: wait})
	return s
}

// Sleep appends a pure wait (the "wait 6 seconds emulating a typical
// page load time" idiom).
func (s *Script) Sleep(d time.Duration) *Script {
	return s.Add("sleep", d, nil)
}

// Steps returns a copy of the script's steps, in order. Callers that
// need to observe or wrap step execution (the session API's workload
// step events) rebuild a script from these.
func (s *Script) Steps() []Step {
	return append([]Step{}, s.steps...)
}

// TotalWait reports the script's scripted duration.
func (s *Script) TotalWait() time.Duration {
	var total time.Duration
	for _, st := range s.steps {
		total += st.Wait
	}
	return total
}

// Executor runs scripts on a clock. Steps execute in order; each step's
// action runs at its scheduled instant and the next step follows after
// the step's wait. A step error aborts the script.
type Executor struct {
	clock simclock.Clock
}

// NewExecutor returns an executor on the given clock.
func NewExecutor(clock simclock.Clock) *Executor {
	return &Executor{clock: clock}
}

// ErrAborted reports a script cancelled via the returned Run handle.
var ErrAborted = errors.New("automation: script aborted")

// Run starts the script and returns immediately with a handle. done is
// invoked exactly once with the script's outcome (nil on success). On a
// virtual clock the caller must advance time for steps to fire.
func (e *Executor) Run(s *Script, done func(error)) *Run {
	r := &Run{clock: e.clock}
	if done == nil {
		done = func(error) {}
	}
	r.finish = done
	r.advance(s, 0)
	return r
}

// Run is a handle to an in-flight script. Steps fire on the clock's
// dispatch context; Abort may be called from any goroutine (a session
// cancelling a workload on the real clock).
type Run struct {
	clock  simclock.Clock
	finish func(error)

	mu      sync.Mutex
	aborted bool
	done    bool
	timer   simclock.Timer
}

func (r *Run) advance(s *Script, idx int) {
	if idx >= len(s.steps) {
		r.complete(nil)
		return
	}
	step := s.steps[idx]
	r.mu.Lock()
	aborted := r.aborted
	r.mu.Unlock()
	if aborted {
		r.complete(ErrAborted)
		return
	}
	if step.Do != nil {
		if err := step.Do(); err != nil {
			r.complete(fmt.Errorf("automation: step %q: %w", step.Name, err))
			return
		}
	}
	t := r.clock.AfterFunc(step.Wait, func() {
		r.advance(s, idx+1)
	})
	r.mu.Lock()
	r.timer = t
	r.mu.Unlock()
}

func (r *Run) complete(err error) {
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		return
	}
	r.done = true
	r.mu.Unlock()
	r.finish(err)
}

// Abort cancels the remaining steps; the done callback receives
// ErrAborted at the next step boundary (or immediately if idle).
func (r *Run) Abort() {
	r.mu.Lock()
	r.aborted = true
	t := r.timer
	r.mu.Unlock()
	if t != nil && t.Stop() {
		r.complete(ErrAborted)
	}
}

// RunBlocking runs the script to completion on a real clock and returns
// its outcome. It must not be used with a Virtual clock (which would need
// an external driver to advance).
func (e *Executor) RunBlocking(s *Script) error {
	ch := make(chan error, 1)
	e.Run(s, func(err error) { ch <- err })
	return <-ch
}
