package automation

import (
	"time"

	"batterylab/internal/bluetooth"
)

// BTKeyboardDriver automates a device through the controller's emulated
// Bluetooth HID keyboard. It is the most portable channel — Android and
// iOS, no root, cellular-safe, measurement-safe — but it cannot tap
// arbitrary coordinates, cannot support mirroring (which needs ADB), and
// apps must be keyboard-navigable (§3.3).
type BTKeyboardDriver struct {
	kb     *bluetooth.HIDKeyboard
	serial string
}

// NewBTKeyboardDriver binds a paired keyboard to serial.
func NewBTKeyboardDriver(kb *bluetooth.HIDKeyboard, serial string) *BTKeyboardDriver {
	return &BTKeyboardDriver{kb: kb, serial: serial}
}

// Kind implements Driver.
func (d *BTKeyboardDriver) Kind() Kind { return KindBTKeyboard }

// Serial implements Driver.
func (d *BTKeyboardDriver) Serial() string { return d.serial }

// Capabilities implements Driver.
func (d *BTKeyboardDriver) Capabilities() Capabilities {
	return Capabilities{
		SupportsMirroring: false,
		MeasurementSafe:   true,
		CellularSafe:      true,
	}
}

// LaunchApp navigates the launcher by keyboard: search key, app name,
// enter. The latency reflects the whole key sequence.
func (d *BTKeyboardDriver) LaunchApp(pkg string) (time.Duration, error) {
	var total time.Duration
	lat, err := d.kb.SendKey(d.serial, "KEYCODE_SEARCH")
	if err != nil {
		return 0, err
	}
	total += lat
	lat, err = d.kb.TypeText(d.serial, appLabel(pkg))
	if err != nil {
		return 0, err
	}
	total += lat
	lat, err = d.kb.SendKey(d.serial, "KEYCODE_ENTER")
	if err != nil {
		return 0, err
	}
	return total + lat, nil
}

// appLabel derives the launcher search string from a package name: the
// last dot-component ("com.brave.browser" -> "browser").
func appLabel(pkg string) string {
	last := pkg
	for i := len(pkg) - 1; i >= 0; i-- {
		if pkg[i] == '.' {
			last = pkg[i+1:]
			break
		}
	}
	return last
}

// StopApp is not reachable from a keyboard alone; BatteryLab performs
// stop/cleanup over ADB-USB before and after the measurement window.
func (d *BTKeyboardDriver) StopApp(string) (time.Duration, error) {
	return 0, &ErrUnsupportedAction{Driver: KindBTKeyboard, Action: "force-stop an app"}
}

// ClearApp is likewise an out-of-measurement ADB task.
func (d *BTKeyboardDriver) ClearApp(string) (time.Duration, error) {
	return 0, &ErrUnsupportedAction{Driver: KindBTKeyboard, Action: "clear app data"}
}

// Tap has no HID equivalent.
func (d *BTKeyboardDriver) Tap(int, int) (time.Duration, error) {
	return 0, &ErrUnsupportedAction{Driver: KindBTKeyboard, Action: "tap coordinates"}
}

// Key implements Driver.
func (d *BTKeyboardDriver) Key(key string) (time.Duration, error) {
	return d.kb.SendKey(d.serial, key)
}

// TypeText implements Driver.
func (d *BTKeyboardDriver) TypeText(text string) (time.Duration, error) {
	return d.kb.TypeText(d.serial, text)
}

// Scroll implements Driver via the arrow keys.
func (d *BTKeyboardDriver) Scroll(down bool) (time.Duration, error) {
	key := "KEYCODE_DPAD_UP"
	if down {
		key = "KEYCODE_DPAD_DOWN"
	}
	return d.kb.SendKey(d.serial, key)
}
