package automation

import (
	"errors"
	"testing"
	"time"

	"batterylab/internal/adb"
	"batterylab/internal/bluetooth"
	"batterylab/internal/device"
	"batterylab/internal/simclock"
	"batterylab/internal/usb"
	"batterylab/internal/wifi"
)

func TestScriptBuilderAndTotal(t *testing.T) {
	s := NewScript("demo").
		Add("a", time.Second, func() error { return nil }).
		Sleep(5*time.Second).
		Add("b", 2*time.Second, nil)
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.TotalWait() != 8*time.Second {
		t.Fatalf("total = %v", s.TotalWait())
	}
}

func TestExecutorRunsStepsInOrder(t *testing.T) {
	clk := simclock.NewVirtual()
	var order []string
	var stamps []time.Time
	s := NewScript("demo").
		Add("a", time.Second, func() error {
			order = append(order, "a")
			stamps = append(stamps, clk.Now())
			return nil
		}).
		Add("b", 2*time.Second, func() error {
			order = append(order, "b")
			stamps = append(stamps, clk.Now())
			return nil
		})
	var doneErr error
	var finished bool
	NewExecutor(clk).Run(s, func(err error) { doneErr = err; finished = true })
	clk.Advance(10 * time.Second)
	if !finished || doneErr != nil {
		t.Fatalf("finished=%v err=%v", finished, doneErr)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
	// Step a runs immediately; step b runs after a's 1 s wait.
	if got := stamps[1].Sub(stamps[0]); got != time.Second {
		t.Fatalf("b fired %v after a, want 1s", got)
	}
}

func TestExecutorStepErrorAborts(t *testing.T) {
	clk := simclock.NewVirtual()
	ran := false
	s := NewScript("fail").
		Add("bad", time.Second, func() error { return errors.New("boom") }).
		Add("never", time.Second, func() error { ran = true; return nil })
	var doneErr error
	NewExecutor(clk).Run(s, func(err error) { doneErr = err })
	clk.Advance(5 * time.Second)
	if doneErr == nil || ran {
		t.Fatalf("err=%v ran=%v", doneErr, ran)
	}
}

func TestExecutorAbort(t *testing.T) {
	clk := simclock.NewVirtual()
	ran := false
	s := NewScript("abort").
		Sleep(time.Second).
		Add("never", 0, func() error { ran = true; return nil })
	var doneErr error
	run := NewExecutor(clk).Run(s, func(err error) { doneErr = err })
	run.Abort()
	clk.Advance(5 * time.Second)
	if !errors.Is(doneErr, ErrAborted) || ran {
		t.Fatalf("err=%v ran=%v", doneErr, ran)
	}
}

func TestEmptyScriptCompletesImmediately(t *testing.T) {
	clk := simclock.NewVirtual()
	done := false
	NewExecutor(clk).Run(NewScript("empty"), func(err error) { done = err == nil })
	if !done {
		t.Fatal("empty script did not complete synchronously")
	}
}

// rig builds a full automation stack: device on USB hub + AP + ADB server
// + BT keyboard.
type rig struct {
	clk *simclock.Virtual
	dev *device.Device
	hub *usb.Hub
	ap  *wifi.AP
	srv *adb.Server
	kb  *bluetooth.HIDKeyboard
	app *scriptApp
}

func newRig(t *testing.T, rooted bool) *rig {
	t.Helper()
	clk := simclock.NewVirtual()
	dev, err := device.New(clk, device.Config{Seed: 1, Rooted: rooted})
	if err != nil {
		t.Fatal(err)
	}
	hub := usb.NewHub(4)
	hub.Attach(0, dev)
	ap := wifi.NewAP("blab", wifi.ModeNAT)
	ap.Connect(dev)
	srv := adb.NewServer(hub, ap)
	srv.Register(dev)
	kb := bluetooth.NewHIDKeyboard(clk)
	kb.Pair(dev)
	app := &scriptApp{pkg: "com.example.browser"}
	dev.Install(app)
	return &rig{clk: clk, dev: dev, hub: hub, ap: ap, srv: srv, kb: kb, app: app}
}

type scriptApp struct {
	pkg     string
	events  []device.InputEvent
	started int
	stopped int
	cleared int
}

func (a *scriptApp) PackageName() string            { return a.pkg }
func (a *scriptApp) Launch(*device.Device) error    { a.started++; return nil }
func (a *scriptApp) Stop(*device.Device) error      { a.stopped++; return nil }
func (a *scriptApp) ClearData(*device.Device) error { a.cleared++; return nil }
func (a *scriptApp) HandleInput(_ *device.Device, ev device.InputEvent) error {
	a.events = append(a.events, ev)
	return nil
}

func TestADBDriverActions(t *testing.T) {
	r := newRig(t, false)
	d := NewADBDriver(r.srv, r.dev.Serial())
	if d.Kind() != KindADB || d.Serial() != r.dev.Serial() {
		t.Fatal("identity")
	}
	if lat, err := d.LaunchApp(r.app.pkg); err != nil || lat != adb.TransportUSB.Latency() {
		t.Fatalf("launch: %v %v", lat, err)
	}
	if _, err := d.Scroll(true); err != nil {
		t.Fatal(err)
	}
	if _, err := d.TypeText("news.com"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Key("KEYCODE_ENTER"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Tap(10, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ClearApp(r.app.pkg); err != nil {
		t.Fatal(err)
	}
	if _, err := d.StopApp(r.app.pkg); err != nil {
		t.Fatal(err)
	}
	if r.app.started != 1 || r.app.stopped != 1 || r.app.cleared != 1 {
		t.Fatalf("app lifecycle: %+v", r.app)
	}
	if len(r.app.events) != 4 {
		t.Fatalf("events = %d", len(r.app.events))
	}
}

func TestADBDriverCapabilitiesByTransport(t *testing.T) {
	r := newRig(t, true)
	d := NewADBDriver(r.srv, r.dev.Serial())
	caps := d.Capabilities()
	if caps.MeasurementSafe || !caps.SupportsMirroring {
		t.Fatalf("USB caps = %+v", caps)
	}
	r.srv.EnableTCPIP(r.dev.Serial())
	r.srv.SetTransport(r.dev.Serial(), adb.TransportWiFi)
	caps = d.Capabilities()
	if !caps.MeasurementSafe || caps.CellularSafe {
		t.Fatalf("WiFi caps = %+v", caps)
	}
	r.srv.SetTransport(r.dev.Serial(), adb.TransportBluetooth)
	caps = d.Capabilities()
	if !caps.MeasurementSafe || !caps.CellularSafe || !caps.RequiresRoot {
		t.Fatalf("BT caps = %+v", caps)
	}
}

func TestBTDriverActionsAndLimits(t *testing.T) {
	r := newRig(t, false)
	d := NewBTKeyboardDriver(r.kb, r.dev.Serial())
	caps := d.Capabilities()
	if caps.SupportsMirroring || !caps.MeasurementSafe || !caps.CellularSafe {
		t.Fatalf("caps = %+v", caps)
	}
	if _, err := d.Tap(1, 2); err == nil {
		t.Fatal("BT tap accepted")
	}
	var unsup *ErrUnsupportedAction
	_, err := d.StopApp("x")
	if !errors.As(err, &unsup) {
		t.Fatalf("StopApp err = %v", err)
	}
	lat, err := d.LaunchApp("com.example.browser")
	if err != nil {
		t.Fatal(err)
	}
	// search + 7 chars "browser" + enter = 9 keystrokes.
	if lat != 9*bluetooth.KeyLatency {
		t.Fatalf("launch latency = %v", lat)
	}
	if r.dev.Foreground() == "" {
		// Keyboard launch goes through the device launcher: the HID key
		// events reached the device but foregrounding happens app-side.
		// The launcher flow delivers events; the test asserts delivery.
		if r.kb.Keystrokes(r.dev.Serial()) != 9 {
			t.Fatalf("keystrokes = %d", r.kb.Keystrokes(r.dev.Serial()))
		}
	}
	if _, err := d.Scroll(true); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Key("KEYCODE_TAB"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.TypeText("x"); err != nil {
		t.Fatal(err)
	}
}

func TestUITestDriverRequiresSource(t *testing.T) {
	r := newRig(t, false)
	d := NewUITestDriver(r.dev, []string{"com.example.browser"})
	if !d.Capabilities().RequiresAppSource {
		t.Fatal("caps")
	}
	if _, err := d.LaunchApp("com.example.browser"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.LaunchApp("com.closed.app"); err == nil {
		t.Fatal("launch without test APK accepted")
	}
	if _, err := d.Scroll(true); err != nil {
		t.Fatal(err)
	}
	if _, err := d.StopApp("com.example.browser"); err != nil {
		t.Fatal(err)
	}
}

func TestScriptedBrowserFlowOverADB(t *testing.T) {
	// End-to-end: a page-visit script driven through ADB over WiFi while
	// USB is cut — the paper's measurement configuration.
	r := newRig(t, false)
	r.srv.EnableTCPIP(r.dev.Serial())
	if err := r.srv.SetTransport(r.dev.Serial(), adb.TransportWiFi); err != nil {
		t.Fatal(err)
	}
	r.hub.SetPower(0, false)

	drv := NewADBDriver(r.srv, r.dev.Serial())
	s := NewScript("visit")
	s.Add("launch", time.Second, func() error { _, err := drv.LaunchApp(r.app.pkg); return err })
	s.Add("type-url", 6*time.Second, func() error { _, err := drv.TypeText("bbc.com"); return err })
	for i := 0; i < 4; i++ {
		down := i%2 == 0
		s.Add("scroll", 2*time.Second, func() error { _, err := drv.Scroll(down); return err })
	}
	var doneErr error
	done := false
	NewExecutor(r.clk).Run(s, func(err error) { doneErr = err; done = true })
	r.clk.Advance(s.TotalWait() + time.Second)
	if !done || doneErr != nil {
		t.Fatalf("done=%v err=%v", done, doneErr)
	}
	if len(r.app.events) != 5 { // 1 text + 4 scrolls
		t.Fatalf("events = %d", len(r.app.events))
	}
}
