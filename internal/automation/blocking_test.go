package automation

import (
	"errors"
	"testing"
	"time"

	"batterylab/internal/simclock"
)

func TestRunBlockingOnRealClock(t *testing.T) {
	var order []string
	s := NewScript("real").
		Add("a", time.Millisecond, func() error { order = append(order, "a"); return nil }).
		Add("b", time.Millisecond, func() error { order = append(order, "b"); return nil })
	if err := NewExecutor(simclock.Real()).RunBlocking(s); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
}

func TestRunBlockingError(t *testing.T) {
	s := NewScript("fail").
		Add("boom", 0, func() error { return errors.New("nope") })
	err := NewExecutor(simclock.Real()).RunBlocking(s)
	if err == nil {
		t.Fatal("error swallowed")
	}
}

func TestAbortAfterCompletionIsNoop(t *testing.T) {
	clk := simclock.NewVirtual()
	done := 0
	run := NewExecutor(clk).Run(NewScript("quick"), func(error) { done++ })
	run.Abort() // already complete: done must not fire twice
	if done != 1 {
		t.Fatalf("done fired %d times", done)
	}
}

func TestScriptSleepOnly(t *testing.T) {
	clk := simclock.NewVirtual()
	finished := false
	s := NewScript("nap").Sleep(3 * time.Second)
	NewExecutor(clk).Run(s, func(err error) { finished = err == nil })
	clk.Advance(2 * time.Second)
	if finished {
		t.Fatal("finished early")
	}
	clk.Advance(2 * time.Second)
	if !finished {
		t.Fatal("never finished")
	}
}

func TestUnsupportedActionError(t *testing.T) {
	e := &ErrUnsupportedAction{Driver: KindBTKeyboard, Action: "tap"}
	if e.Error() != "automation: bt-keyboard cannot tap" {
		t.Fatalf("msg = %q", e.Error())
	}
	if KindADB.String() != "adb" || KindUITest.String() != "uitest" {
		t.Fatal("kind strings")
	}
}
