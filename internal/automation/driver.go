package automation

import (
	"time"
)

// Kind identifies the automation strategy.
type Kind int

// The three strategies of §3.3.
const (
	KindADB Kind = iota
	KindUITest
	KindBTKeyboard
)

func (k Kind) String() string {
	switch k {
	case KindADB:
		return "adb"
	case KindUITest:
		return "uitest"
	default:
		return "bt-keyboard"
	}
}

// Capabilities describes what a driver configuration can and cannot do —
// the trade-off table of §3.3.
type Capabilities struct {
	// SupportsMirroring: device mirroring requires ADB (scrcpy runs atop
	// it), so the BT keyboard cannot drive a mirrored session.
	SupportsMirroring bool
	// MeasurementSafe: the channel does not perturb the power monitor
	// (USB does, via the micro-controller activation current).
	MeasurementSafe bool
	// CellularSafe: the workload can use the mobile network (ADB-over-
	// WiFi occupies the WiFi path, so it is not cellular-safe).
	CellularSafe bool
	// RequiresRoot: ADB-over-Bluetooth needs a rooted device.
	RequiresRoot bool
	// RequiresAppSource: UI testing rebuilds the app with test
	// instrumentation, so it only works for apps whose source is
	// available.
	RequiresAppSource bool
}

// Driver is one automation channel bound to one device. Every action
// returns the channel latency the script should account before the next
// action; unsupported actions return ErrUnsupported.
type Driver interface {
	Kind() Kind
	Serial() string
	Capabilities() Capabilities

	LaunchApp(pkg string) (time.Duration, error)
	StopApp(pkg string) (time.Duration, error)
	ClearApp(pkg string) (time.Duration, error)
	Tap(x, y int) (time.Duration, error)
	Key(key string) (time.Duration, error)
	TypeText(text string) (time.Duration, error)
	Scroll(down bool) (time.Duration, error)
}

// ErrUnsupported reports an action outside a driver's capability set.
type ErrUnsupportedAction struct {
	Driver Kind
	Action string
}

func (e *ErrUnsupportedAction) Error() string {
	return "automation: " + e.Driver.String() + " cannot " + e.Action
}
