package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteJSON serializes a snapshot as indented JSON.
func WriteJSON(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus serializes a snapshot in the Prometheus text
// exposition format (version 0.0.4). Histograms are exposed as the
// summary type: the P² engine yields streaming quantile estimates, not
// cumulative buckets, and summary is the format's native shape for
// pre-computed quantiles.
func WritePrometheus(w io.Writer, s Snapshot) error {
	for _, f := range s.Families {
		promType := "untyped"
		switch f.Kind {
		case KindCounter:
			promType = "counter"
		case KindGauge:
			promType = "gauge"
		case KindHistogram:
			promType = "summary"
		}
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, promType); err != nil {
			return err
		}
		for _, m := range f.Metrics {
			if f.Kind == KindHistogram && m.Hist != nil {
				if err := writePromSummary(w, f.Name, m); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				f.Name, promLabels(m.Labels), promFloat(m.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromSummary(w io.Writer, name string, m Metric) error {
	h := m.Hist
	for _, q := range [...]struct {
		p string
		v float64
	}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}} {
		ls := append(append([]Label(nil), m.Labels...), Label{Name: "quantile", Value: q.p})
		if _, err := fmt.Fprintf(w, "%s%s %s\n", name, promLabels(ls), promFloat(q.v)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabels(m.Labels), promFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(m.Labels), h.Count)
	return err
}

func promLabels(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
