// Package metrics is the platform's in-process instrumentation layer:
// lock-cheap counters and gauges (single atomics on the hot path),
// bounded-memory histograms built on the streaming P²/Welford
// aggregators from internal/samples, and a Registry that snapshots
// everything at once and serializes to JSON or Prometheus text format.
//
// Consistency model: individual counters and gauges are atomically
// read, but two independent atomics cannot be read as one transaction.
// Subsystems whose metrics must reconcile with each other (the
// scheduler's submitted == queued + running + finished invariant)
// register a collector instead: Snapshot runs every collector inline,
// and a collector that takes its subsystem's own lock emits a group of
// values that are mutually consistent within one snapshot.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"batterylab/internal/samples"
)

// Counter is a monotonically increasing int64. The zero value is ready
// to use, but counters are normally created through a Registry so they
// appear in snapshots.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; negative deltas corrupt rates).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous int64 value that can move both ways.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value reports the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatCounter is a monotonically increasing float64 total (credit
// amounts, byte fractions). Add is a CAS loop on the bit pattern.
type FloatCounter struct{ bits atomic.Uint64 }

// Add adds v to the total.
func (f *FloatCounter) Add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value reports the current total.
func (f *FloatCounter) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram summarizes a stream of observations in O(1) memory: exact
// count/mean/min/max via Welford plus P² streaming estimates of the
// median and tail. Observe costs one short mutex hold — cheap enough
// for request paths, and bounded regardless of how many values arrive.
type Histogram struct {
	mu  sync.Mutex
	mom samples.Welford
	p50 *samples.P2Quantile
	p90 *samples.P2Quantile
	p99 *samples.P2Quantile
	sum float64
}

// NewHistogram returns an empty histogram tracking p50/p90/p99.
func NewHistogram() *Histogram {
	return &Histogram{
		p50: samples.NewP2Quantile(0.5),
		p90: samples.NewP2Quantile(0.9),
		p99: samples.NewP2Quantile(0.99),
	}
}

// Observe folds one value in.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.mom.Observe(v)
	h.p50.Observe(v)
	h.p90.Observe(v)
	h.p99.Observe(v)
	h.sum += v
	h.mu.Unlock()
}

// HistogramValue is one histogram's state at snapshot time. Quantiles
// are P² estimates (exact for count ≤ 5); all fields are 0 when empty
// so the snapshot always marshals to valid JSON (no NaN).
type HistogramValue struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Std   float64 `json:"std"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Value reports the current summary.
func (h *Histogram) Value() HistogramValue {
	h.mu.Lock()
	defer h.mu.Unlock()
	hv := HistogramValue{Count: h.mom.N(), Sum: h.sum}
	if hv.Count == 0 {
		return hv
	}
	hv.Mean = h.mom.Mean()
	hv.Std = h.mom.Std()
	hv.Min = h.mom.Min()
	hv.Max = h.mom.Max()
	hv.P50 = h.p50.Value()
	hv.P90 = h.p90.Value()
	hv.P99 = h.p99.Value()
	return hv
}

// Kind classifies a metric family for exposition.
type Kind string

// Metric family kinds. Histograms are exposed to Prometheus as the
// summary type (streaming quantiles, not buckets).
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Label is one name=value pair on a metric instance.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// L is shorthand for building a label list in call sites.
func L(pairs ...string) []Label {
	if len(pairs)%2 != 0 {
		panic("metrics: odd label pair list")
	}
	ls := make([]Label, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		ls = append(ls, Label{Name: pairs[i], Value: pairs[i+1]})
	}
	return ls
}

// labelKey builds a canonical map key from a sorted label list.
func labelKey(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	return b.String()
}

func sortLabels(ls []Label) []Label {
	out := append([]Label(nil), ls...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// validMetricName reports whether s matches the Prometheus metric name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*. Label values are escaped at
// exposition time, but names are written verbatim, so an illegal name
// would silently corrupt the scrape output — it is rejected at
// registration instead, mirroring the kind-mismatch panics.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName reports whether s matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func checkNames(name string, ls []Label) {
	if !validMetricName(name) {
		panic("metrics: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range ls {
		if !validLabelName(l.Name) {
			panic("metrics: invalid label name " + strconv.Quote(l.Name) + " on " + name)
		}
	}
}

// Collector emits a group of metric values at snapshot time. A
// collector that locks its subsystem's mutex while emitting guarantees
// the emitted group is internally consistent — the registry never sees
// a torn view of values that mutate together under that lock.
type Collector func(e *Emitter)

// Registry holds metric families and collectors and produces atomic
// snapshots of all of them.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	order      []string
	collectors []Collector
}

type family struct {
	name, help string
	kind       Kind
	insts      map[string]*instance
	order      []string
}

type instance struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	fctr   *FloatCounter
	hist   *Histogram
	fn     func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind Kind) *family {
	f, ok := r.families[name]
	if !ok {
		if !validMetricName(name) {
			panic("metrics: invalid metric name " + strconv.Quote(name))
		}
		f = &family{name: name, help: help, kind: kind, insts: make(map[string]*instance)}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	return f
}

func (f *family) inst(labels []Label) (*instance, bool) {
	labels = sortLabels(labels)
	key := labelKey(labels)
	in, ok := f.insts[key]
	if !ok {
		for _, l := range labels {
			if !validLabelName(l.Name) {
				panic("metrics: invalid label name " + strconv.Quote(l.Name) + " on " + f.name)
			}
		}
		in = &instance{labels: labels}
		f.insts[key] = in
		f.order = append(f.order, key)
	}
	return in, ok
}

// Counter returns (registering if needed) the counter with the given
// name and labels. Repeated calls with the same identity return the
// same counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	in, ok := r.family(name, help, KindCounter).inst(labels)
	if !ok {
		in.ctr = &Counter{}
	}
	if in.ctr == nil {
		panic("metrics: " + name + " is not an int counter")
	}
	return in.ctr
}

// FloatCounter returns (registering if needed) a float-valued counter.
func (r *Registry) FloatCounter(name, help string, labels ...Label) *FloatCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	in, ok := r.family(name, help, KindCounter).inst(labels)
	if !ok {
		in.fctr = &FloatCounter{}
	}
	if in.fctr == nil {
		panic("metrics: " + name + " is not a float counter")
	}
	return in.fctr
}

// Gauge returns (registering if needed) the gauge with the given name
// and labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	in, ok := r.family(name, help, KindGauge).inst(labels)
	if !ok {
		in.gauge = &Gauge{}
	}
	if in.gauge == nil {
		panic("metrics: " + name + " is not a gauge")
	}
	return in.gauge
}

// GaugeFunc registers a gauge whose value is computed at snapshot time.
// Unlike Counter/Gauge/Histogram, re-registration is not idempotent
// (two functions cannot be proven identical), so any existing instance
// with the same identity — a plain gauge or an earlier function — is a
// misregistration and panics.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	in, ok := r.family(name, help, KindGauge).inst(labels)
	if ok {
		panic("metrics: " + name + " already registered; GaugeFunc identity must be unique")
	}
	in.fn = fn
}

// Histogram returns (registering if needed) the histogram with the
// given name and labels.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	in, ok := r.family(name, help, KindHistogram).inst(labels)
	if !ok {
		in.hist = NewHistogram()
	}
	if in.hist == nil {
		panic("metrics: " + name + " is not a histogram")
	}
	return in.hist
}

// Collect registers a collector run at every Snapshot.
func (r *Registry) Collect(fn Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// Metric is one labeled instance inside a snapshot family.
type Metric struct {
	Labels []Label         `json:"labels,omitempty"`
	Value  float64         `json:"value"`
	Hist   *HistogramValue `json:"histogram,omitempty"`
}

// Family is one named metric family inside a snapshot.
type Family struct {
	Name    string   `json:"name"`
	Help    string   `json:"help,omitempty"`
	Kind    Kind     `json:"kind"`
	Metrics []Metric `json:"metrics"`
}

// Snapshot is a point-in-time view of every registered metric, sorted
// by family name for stable output.
type Snapshot struct {
	Families []Family `json:"families"`
}

// Get returns the first metric in the named family, if present.
// Convenience for tests and report generators.
func (s Snapshot) Get(name string, labels ...Label) (Metric, bool) {
	want := labelKey(sortLabels(labels))
	for _, f := range s.Families {
		if f.Name != name {
			continue
		}
		for _, m := range f.Metrics {
			if labelKey(m.Labels) == want {
				return m, true
			}
		}
	}
	return Metric{}, false
}

// Emitter receives values from collectors during Snapshot.
type Emitter struct {
	out map[string]*Family
	ord *[]string
}

func (e *Emitter) fam(name, help string, kind Kind) *Family {
	f, ok := e.out[name]
	if !ok {
		f = &Family{Name: name, Help: help, Kind: kind}
		e.out[name] = f
		*e.ord = append(*e.ord, name)
	}
	return f
}

// Counter emits one counter value.
func (e *Emitter) Counter(name, help string, v float64, labels ...Label) {
	checkNames(name, labels)
	f := e.fam(name, help, KindCounter)
	f.Metrics = append(f.Metrics, Metric{Labels: sortLabels(labels), Value: v})
}

// Gauge emits one gauge value.
func (e *Emitter) Gauge(name, help string, v float64, labels ...Label) {
	checkNames(name, labels)
	f := e.fam(name, help, KindGauge)
	f.Metrics = append(f.Metrics, Metric{Labels: sortLabels(labels), Value: v})
}

// Histogram emits one histogram summary.
func (e *Emitter) Histogram(name, help string, hv HistogramValue, labels ...Label) {
	checkNames(name, labels)
	f := e.fam(name, help, KindHistogram)
	f.Metrics = append(f.Metrics, Metric{Labels: sortLabels(labels), Hist: &hv})
}

// Snapshot captures every registered metric and runs every collector.
// Values registered directly are read atomically; values emitted by
// one collector are mutually consistent under that collector's lock.
func (r *Registry) Snapshot() Snapshot {
	// Family and instance lists mutate under r.mu on every lazy
	// registration (the HTTP middleware registers (route,code) counters
	// mid-flight), so copy them out under the lock; the value reads,
	// gauge functions, and collectors then run unlocked. An instance's
	// ctr/gauge/fn fields are set inside the same critical section that
	// links it into the family, so any instance visible in the copy is
	// fully built.
	type famView struct {
		name, help string
		kind       Kind
		insts      []*instance
	}
	r.mu.Lock()
	fams := make([]famView, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		fv := famView{name: f.name, help: f.help, kind: f.kind,
			insts: make([]*instance, 0, len(f.order))}
		for _, key := range f.order {
			fv.insts = append(fv.insts, f.insts[key])
		}
		fams = append(fams, fv)
	}
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()

	out := make(map[string]*Family, len(fams))
	var ord []string
	e := &Emitter{out: out, ord: &ord}
	for _, f := range fams {
		of := e.fam(f.name, f.help, f.kind)
		for _, in := range f.insts {
			m := Metric{Labels: in.labels}
			switch {
			case in.ctr != nil:
				m.Value = float64(in.ctr.Value())
			case in.fctr != nil:
				m.Value = in.fctr.Value()
			case in.gauge != nil:
				m.Value = float64(in.gauge.Value())
			case in.fn != nil:
				m.Value = in.fn()
			case in.hist != nil:
				hv := in.hist.Value()
				m.Hist = &hv
			}
			of.Metrics = append(of.Metrics, m)
		}
	}
	for _, c := range collectors {
		c(e)
	}

	snap := Snapshot{Families: make([]Family, 0, len(ord))}
	sort.Strings(ord)
	for _, name := range ord {
		snap.Families = append(snap.Families, *out[name])
	}
	return snap
}
