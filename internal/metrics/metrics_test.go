package metrics

import (
	"encoding/json"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs submitted")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("jobs_total", "jobs submitted"); again != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := r.Gauge("queue_depth", "builds waiting")
	g.Set(7)
	g.Dec()
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}

	f := r.FloatCounter("credits_total", "credits moved")
	f.Add(1.5)
	f.Add(2.25)
	if got := f.Value(); got != 3.75 {
		t.Fatalf("float counter = %v, want 3.75", got)
	}
}

func TestLabeledInstances(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("http_requests_total", "", L("route", "/a", "code", "200")...)
	b := r.Counter("http_requests_total", "", L("route", "/b", "code", "200")...)
	if a == b {
		t.Fatal("distinct labels shared one counter")
	}
	// Label order must not matter.
	a2 := r.Counter("http_requests_total", "", L("code", "200", "route", "/a")...)
	if a2 != a {
		t.Fatal("label order changed instance identity")
	}
	a.Add(3)
	b.Inc()
	snap := r.Snapshot()
	m, ok := snap.Get("http_requests_total", L("route", "/a", "code", "200")...)
	if !ok || m.Value != 3 {
		t.Fatalf("Get(/a) = %v, %v; want value 3", m, ok)
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	hv := h.Value()
	if hv.Count != 100 {
		t.Fatalf("count = %d, want 100", hv.Count)
	}
	if hv.Sum != 5050 {
		t.Fatalf("sum = %v, want 5050", hv.Sum)
	}
	if hv.Min != 1 || hv.Max != 100 {
		t.Fatalf("min/max = %v/%v, want 1/100", hv.Min, hv.Max)
	}
	if math.Abs(hv.Mean-50.5) > 1e-9 {
		t.Fatalf("mean = %v, want 50.5", hv.Mean)
	}
	if hv.P50 < 40 || hv.P50 > 61 {
		t.Fatalf("p50 = %v, far from 50", hv.P50)
	}
	if hv.P99 < 90 || hv.P99 > 100 {
		t.Fatalf("p99 = %v, far from 99", hv.P99)
	}
}

func TestEmptyHistogramMarshalsCleanly(t *testing.T) {
	r := NewRegistry()
	r.Histogram("latency_seconds", "request latency")
	var sb strings.Builder
	if err := WriteJSON(&sb, r.Snapshot()); err != nil {
		t.Fatalf("WriteJSON on empty histogram: %v", err)
	}
	if strings.Contains(sb.String(), "NaN") {
		t.Fatal("empty histogram leaked NaN into JSON")
	}
}

func TestCollectorConsistency(t *testing.T) {
	// A collector that emits two values under one lock must never be
	// observed torn, even with a writer hammering the pair.
	r := NewRegistry()
	var mu sync.Mutex
	var a, b int64 // invariant: a == b, maintained under mu
	r.Collect(func(e *Emitter) {
		mu.Lock()
		defer mu.Unlock()
		e.Counter("pair_a", "", float64(a))
		e.Counter("pair_b", "", float64(b))
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			a++
			b++
			mu.Unlock()
		}
	}()
	for i := 0; i < 200; i++ {
		snap := r.Snapshot()
		ma, _ := snap.Get("pair_a")
		mb, _ := snap.Get("pair_b")
		if ma.Value != mb.Value {
			t.Fatalf("torn snapshot: pair_a=%v pair_b=%v", ma.Value, mb.Value)
		}
	}
	close(stop)
	wg.Wait()
}

func TestSnapshotSortedAndJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta_total", "")
	r.Gauge("alpha_depth", "")
	r.Histogram("mid_seconds", "")
	snap := r.Snapshot()
	names := make([]string, len(snap.Families))
	for i, f := range snap.Families {
		names[i] = f.Name
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("families not sorted: %v", names)
	}

	var sb strings.Builder
	if err := WriteJSON(&sb, snap); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(back.Families) != len(snap.Families) {
		t.Fatalf("round trip lost families: %d != %d", len(back.Families), len(snap.Families))
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "total requests", L("route", "/x", "code", "200")...).Add(3)
	r.Gauge("depth", "queue depth").Set(2)
	h := r.Histogram("lat_seconds", "latency")
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	var sb strings.Builder
	if err := WritePrometheus(&sb, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE reqs_total counter",
		`reqs_total{code="200",route="/x"} 3`,
		"# TYPE depth gauge",
		"depth 2",
		"# TYPE lat_seconds summary",
		`lat_seconds{quantile="0.5"} 0.5`,
		"lat_seconds_sum 5",
		"lat_seconds_count 10",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", Label{Name: "path", Value: "a\"b\\c\nd"}).Inc()
	var sb strings.Builder
	if err := WritePrometheus(&sb, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `path="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped:\n%s", sb.String())
	}
}

// TestSnapshotRacesWithLazyRegistration hammers Snapshot while other
// goroutines lazily register fresh labeled instances and whole new
// families — the shape of the HTTP middleware, which materializes a
// (route,code) counter on first sight of each status. Run under -race
// this guards the family/instance copy in Snapshot.
func TestSnapshotRacesWithLazyRegistration(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("race_requests_total", "",
					L("route", "/r", "code", strconv.Itoa(200+i%400))...).Inc()
				if i%50 == 0 {
					r.Gauge("race_family_"+strconv.Itoa(w)+"_"+strconv.Itoa(i), "").Set(1)
				}
			}
		}(w)
	}
	for i := 0; i < 500; i++ {
		snap := r.Snapshot()
		for _, f := range snap.Families {
			if f.Name == "" {
				t.Fatal("snapshot produced unnamed family")
			}
		}
	}
	close(stop)
	wg.Wait()
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

func TestInvalidNamesPanicAtRegistration(t *testing.T) {
	r := NewRegistry()
	mustPanic(t, "metric name with space", func() { r.Counter("bad name", "") })
	mustPanic(t, "metric name with digit prefix", func() { r.Gauge("9lives", "") })
	mustPanic(t, "empty metric name", func() { r.Histogram("", "") })
	mustPanic(t, "label name with dash", func() {
		r.Counter("ok_total", "", Label{Name: "bad-label", Value: "v"})
	})
	// Legal names — including colons and leading underscores — register.
	r.Counter("ns:sub_total", "").Inc()
	r.Gauge("_private", "").Set(1)

	// Collector-emitted names are held to the same rule at snapshot.
	r.Collect(func(e *Emitter) { e.Gauge("also bad", "", 1) })
	mustPanic(t, "collector with bad name", func() { r.Snapshot() })
}

func TestGaugeFuncMisregistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("fn_depth", "", func() float64 { return 42 })
	snap := r.Snapshot()
	if m, ok := snap.Get("fn_depth"); !ok || m.Value != 42 {
		t.Fatalf("fn_depth = %v %v, want 42", m.Value, ok)
	}
	mustPanic(t, "GaugeFunc over existing fn", func() {
		r.GaugeFunc("fn_depth", "", func() float64 { return 1 })
	})

	r.Gauge("plain_depth", "").Set(7)
	mustPanic(t, "GaugeFunc over existing gauge", func() {
		r.GaugeFunc("plain_depth", "", func() float64 { return 1 })
	})
}

func TestConcurrentObserveAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "")
	h := r.Histogram("ops_seconds", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 17))
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			snap := r.Snapshot()
			m, _ := snap.Get("ops_total")
			if m.Value != 8000 {
				t.Fatalf("ops_total = %v, want 8000", m.Value)
			}
			hm, _ := snap.Get("ops_seconds")
			if hm.Hist == nil || hm.Hist.Count != 8000 {
				t.Fatalf("histogram count = %+v, want 8000", hm.Hist)
			}
			return
		default:
			r.Snapshot()
		}
	}
}
