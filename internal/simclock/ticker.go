package simclock

import (
	"sync"
	"time"
)

// Ticker invokes a callback at a fixed period on any Clock. It is the
// building block for periodic sampling (Monsoon ADC, CPU monitors, frame
// pacing). Unlike time.Ticker it never drops ticks on a Virtual clock:
// each tick reschedules exactly one period after the previous deadline.
type Ticker struct {
	clock  Clock
	period time.Duration
	fn     func(now time.Time)

	mu      sync.Mutex
	timer   Timer
	stopped bool
}

// NewTicker starts a ticker that calls fn every period, with the first
// call one period from now. fn receives the tick's nominal deadline.
func NewTicker(clock Clock, period time.Duration, fn func(now time.Time)) *Ticker {
	if period <= 0 {
		panic("simclock: non-positive ticker period")
	}
	t := &Ticker{clock: clock, period: period, fn: fn}
	t.schedule(clock.Now().Add(period))
	return t
}

func (t *Ticker) schedule(deadline time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return
	}
	d := deadline.Sub(t.clock.Now())
	t.timer = t.clock.AfterFunc(d, func() {
		t.fire(deadline)
	})
}

func (t *Ticker) fire(deadline time.Time) {
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		return
	}
	fn := t.fn
	t.mu.Unlock()
	fn(deadline)
	t.schedule(deadline.Add(t.period))
}

// Stop cancels future ticks. It does not interrupt a tick in flight.
func (t *Ticker) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stopped = true
	if t.timer != nil {
		t.timer.Stop()
	}
}
