package simclock

import (
	"container/heap"
	"sync"
	"time"
)

// Virtual is a discrete-event simulated clock. Time only moves when
// Advance or Run is called; pending AfterFunc callbacks fire in timestamp
// order on the advancing goroutine, and each callback observes Now() equal
// to its own deadline — the discipline of a classic event-driven simulator.
//
// The zero value is not usable; construct with NewVirtual.
type Virtual struct {
	mu    sync.Mutex
	now   time.Time
	heap  timerHeap
	seq   uint64 // tiebreak so equal deadlines fire FIFO
	holds int    // suspended Step drivers (see Hold)
}

// Epoch is the default start time for virtual clocks: an arbitrary fixed
// instant so traces are reproducible byte-for-byte.
var Epoch = time.Date(2019, time.November, 13, 9, 0, 0, 0, time.UTC)

// NewVirtual returns a Virtual clock starting at Epoch.
func NewVirtual() *Virtual { return NewVirtualAt(Epoch) }

// NewVirtualAt returns a Virtual clock starting at the given instant.
func NewVirtualAt(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now reports the current simulated time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// AfterFunc schedules f at Now()+d. Non-positive d schedules it for the
// current instant; it still only runs during a subsequent Advance/Run.
func (v *Virtual) AfterFunc(d time.Duration, f func()) Timer {
	v.mu.Lock()
	defer v.mu.Unlock()
	if d < 0 {
		d = 0
	}
	ev := &event{when: v.now.Add(d), seq: v.seq, fn: f, owner: v}
	v.seq++
	heap.Push(&v.heap, ev)
	return ev
}

// Sleep advances the clock by d from the calling goroutine's perspective.
// On a Virtual clock, Sleep is only meaningful from the driving goroutine;
// it is equivalent to Advance(d).
func (v *Virtual) Sleep(d time.Duration) { v.Advance(d) }

// Advance moves simulated time forward by d, firing every timer whose
// deadline falls within the window, in order.
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		panic("simclock: negative Advance")
	}
	v.RunUntil(v.Now().Add(d))
}

// RunUntil moves simulated time forward to t, firing due timers in order.
// If t is not after the current time, RunUntil is a no-op.
func (v *Virtual) RunUntil(t time.Time) {
	for {
		v.mu.Lock()
		if len(v.heap) == 0 || v.heap[0].when.After(t) {
			if t.After(v.now) {
				v.now = t
			}
			v.mu.Unlock()
			return
		}
		ev := heap.Pop(&v.heap).(*event)
		if ev.when.After(v.now) {
			v.now = ev.when
		}
		fn := ev.fn
		ev.fired = true
		v.mu.Unlock()
		fn()
	}
}

// Hold suspends Step drivers until the returned release runs. It lets
// a goroutine that is synchronously scheduling a batch of timers (an
// access server dispatching builds) keep a concurrent deadline-stepping
// driver from jumping the clock to an unrelated far-future deadline in
// the window before the batch's near-term timers exist. Holds nest;
// release is idempotent. Hold gates only Step — RunUntil/Advance
// callers own their timeline and are unaffected.
func (v *Virtual) Hold() (release func()) {
	v.mu.Lock()
	v.holds++
	v.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			v.mu.Lock()
			v.holds--
			v.mu.Unlock()
		})
	}
}

// Step fires the earliest pending timer, advancing the clock to its
// deadline — one discrete-event iteration. It reports false (firing
// nothing) when the clock is held or no timers are pending. Step is
// the building block for drivers that serve real-time consumers from a
// virtual timeline (batterylab.DriveBuilds).
func (v *Virtual) Step() bool {
	v.mu.Lock()
	if v.holds > 0 || len(v.heap) == 0 {
		v.mu.Unlock()
		return false
	}
	ev := heap.Pop(&v.heap).(*event)
	if ev.when.After(v.now) {
		v.now = ev.when
	}
	fn := ev.fn
	ev.fired = true
	v.mu.Unlock()
	fn()
	return true
}

// NextDeadline reports the earliest pending timer's deadline. A second
// return of false means no timers are queued. Stopped timers still count
// until their deadline passes (they sit in the queue as no-ops), so a
// driver advancing deadline-by-deadline may fire nothing on some steps.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.heap) == 0 {
		return time.Time{}, false
	}
	return v.heap[0].when, true
}

// RunAll fires every pending timer, advancing time to each deadline. It
// stops when the queue is empty. Callbacks that schedule new timers keep
// the run going, so a self-rescheduling ticker would never terminate;
// prefer RunUntil for periodic work.
func (v *Virtual) RunAll() {
	for {
		v.mu.Lock()
		if len(v.heap) == 0 {
			v.mu.Unlock()
			return
		}
		deadline := v.heap[0].when
		v.mu.Unlock()
		v.RunUntil(deadline)
	}
}

// PendingTimers reports how many timers are queued.
func (v *Virtual) PendingTimers() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.heap)
}

type event struct {
	when  time.Time
	seq   uint64
	fn    func()
	index int
	fired bool
	owner *Virtual
}

// Stop implements Timer. It is safe to call after firing. A stopped event
// stays in the heap with a no-op callback; it is discarded when its
// deadline is reached.
func (e *event) Stop() bool {
	e.owner.mu.Lock()
	defer e.owner.mu.Unlock()
	if e.fired {
		return false
	}
	e.fn = func() {}
	e.fired = true
	return true
}

type timerHeap []*event

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].when.Equal(h[j].when) {
		return h[i].seq < h[j].seq
	}
	return h[i].when.Before(h[j].when)
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
