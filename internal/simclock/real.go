package simclock

import "time"

// Real returns the wall-clock Clock backed by package time.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }
func (realClock) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool { return rt.t.Stop() }
