package simclock

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestVirtualNowStartsAtEpoch(t *testing.T) {
	v := NewVirtual()
	if !v.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", v.Now(), Epoch)
	}
}

func TestVirtualAdvanceMovesTime(t *testing.T) {
	v := NewVirtual()
	v.Advance(3 * time.Second)
	if got := v.Now().Sub(Epoch); got != 3*time.Second {
		t.Fatalf("advanced %v, want 3s", got)
	}
}

func TestVirtualAfterFuncFiresAtDeadline(t *testing.T) {
	v := NewVirtual()
	var fired time.Time
	v.AfterFunc(2*time.Second, func() { fired = v.Now() })
	v.Advance(time.Second)
	if !fired.IsZero() {
		t.Fatal("timer fired early")
	}
	v.Advance(time.Second)
	if want := Epoch.Add(2 * time.Second); !fired.Equal(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
}

func TestVirtualTimersFireInOrder(t *testing.T) {
	v := NewVirtual()
	var order []int
	v.AfterFunc(3*time.Second, func() { order = append(order, 3) })
	v.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	v.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	v.Advance(5 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
}

func TestVirtualEqualDeadlinesFIFO(t *testing.T) {
	v := NewVirtual()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		v.AfterFunc(time.Second, func() { order = append(order, i) })
	}
	v.Advance(time.Second)
	for i, got := range order {
		if got != i {
			t.Fatalf("order[%d] = %d, want %d (got %v)", i, got, i, order)
		}
	}
}

func TestVirtualStopPreventsFiring(t *testing.T) {
	v := NewVirtual()
	fired := false
	tm := v.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer")
	}
	v.Advance(2 * time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true")
	}
}

func TestVirtualCallbackSeesOwnDeadline(t *testing.T) {
	v := NewVirtual()
	var seen time.Time
	v.AfterFunc(90*time.Millisecond, func() { seen = v.Now() })
	v.Advance(time.Second)
	if want := Epoch.Add(90 * time.Millisecond); !seen.Equal(want) {
		t.Fatalf("callback saw %v, want %v", seen, want)
	}
}

func TestVirtualNestedScheduling(t *testing.T) {
	v := NewVirtual()
	count := 0
	var step func()
	step = func() {
		count++
		if count < 5 {
			v.AfterFunc(time.Second, step)
		}
	}
	v.AfterFunc(time.Second, step)
	v.Advance(10 * time.Second)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if want := Epoch.Add(10 * time.Second); !v.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", v.Now(), want)
	}
}

func TestVirtualRunAll(t *testing.T) {
	v := NewVirtual()
	n := 0
	v.AfterFunc(time.Minute, func() { n++ })
	v.AfterFunc(time.Hour, func() { n++ })
	v.RunAll()
	if n != 2 {
		t.Fatalf("fired %d timers, want 2", n)
	}
	if want := Epoch.Add(time.Hour); !v.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", v.Now(), want)
	}
}

func TestTickerPeriodicFiring(t *testing.T) {
	v := NewVirtual()
	var ticks []time.Time
	tk := NewTicker(v, 100*time.Millisecond, func(now time.Time) {
		ticks = append(ticks, now)
	})
	defer tk.Stop()
	v.Advance(time.Second)
	if len(ticks) != 10 {
		t.Fatalf("got %d ticks, want 10", len(ticks))
	}
	for i, tick := range ticks {
		want := Epoch.Add(time.Duration(i+1) * 100 * time.Millisecond)
		if !tick.Equal(want) {
			t.Fatalf("tick %d at %v, want %v", i, tick, want)
		}
	}
}

func TestTickerStop(t *testing.T) {
	v := NewVirtual()
	n := 0
	tk := NewTicker(v, time.Second, func(time.Time) { n++ })
	v.Advance(3 * time.Second)
	tk.Stop()
	v.Advance(3 * time.Second)
	if n != 3 {
		t.Fatalf("ticks after stop: got %d total, want 3", n)
	}
}

func TestTickerNoDrift(t *testing.T) {
	v := NewVirtual()
	var last time.Time
	NewTicker(v, 7*time.Millisecond, func(now time.Time) { last = now })
	v.Advance(7 * 1000 * time.Millisecond)
	want := Epoch.Add(7 * 1000 * time.Millisecond)
	if !last.Equal(want) {
		t.Fatalf("last tick %v, want %v (drift)", last, want)
	}
}

func TestRealClockBasics(t *testing.T) {
	c := Real()
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatalf("Real Now() = %v way before time.Now()", now)
	}
	var fired atomic.Bool
	c.AfterFunc(time.Millisecond, func() { fired.Store(true) })
	deadline := time.Now().Add(2 * time.Second)
	for !fired.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !fired.Load() {
		t.Fatal("real AfterFunc never fired")
	}
}

func TestVirtualRunUntilPast(t *testing.T) {
	v := NewVirtual()
	now := v.Now()
	v.RunUntil(now.Add(-time.Hour)) // no-op
	if !v.Now().Equal(now) {
		t.Fatal("RunUntil moved time backwards")
	}
}
