// Package simclock provides real and virtual clocks behind one interface.
//
// Every time-dependent component in BatteryLab takes a simclock.Clock so
// that experiments run deterministically (and thousands of times faster
// than wall time) under a Virtual clock, while the daemons in cmd/ run the
// same code on the Real clock.
package simclock

import "time"

// Clock abstracts the passage of time. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now reports the current time on this clock.
	Now() time.Time
	// AfterFunc schedules f to run when d has elapsed and returns a
	// Timer that can cancel it. f runs on the clock's dispatch context:
	// for the Real clock that is a new goroutine, for a Virtual clock it
	// is the goroutine calling Advance/Run.
	AfterFunc(d time.Duration, f func()) Timer
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
}

// Timer is a handle to a pending AfterFunc.
type Timer interface {
	// Stop cancels the timer if it has not fired yet. It reports whether
	// the call prevented the function from running.
	Stop() bool
}
