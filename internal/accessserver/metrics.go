package accessserver

import (
	"context"
	"log/slog"
	"strings"
	"sync/atomic"
	"time"

	"batterylab/internal/accessserver/cluster"
	"batterylab/internal/metrics"
	"batterylab/internal/simclock"
)

// Observability: the server's metrics registry and the scheduler
// collector that makes its counters reconcile.
//
// Two disciplines coexist here. Hot-path counters that stand alone
// (feed drops, heartbeats, credit movements) are registry atomics —
// one uncontended atomic add per event. Scheduler lifecycle counters
// are plain int64 fields mutated ONLY under s.mu, exactly where the
// state they describe mutates, and emitted by a single collector that
// takes s.mu at snapshot time: every snapshot therefore satisfies
//
//	builds_submitted_total == queue depth + running
//	                          + Σ builds_finished_total{result=…}
//
// with no torn intermediate states, which is what makes the metrics
// trustworthy for reconciliation, not just for trending.

// serverMetrics bundles the server's instrumentation.
type serverMetrics struct {
	reg *metrics.Registry

	// Scheduler lifecycle counters — guarded by s.mu (not atomics; see
	// the file comment). queued includes builds sitting in a failover
	// backoff window, which are state-queued but not in s.queue.
	submitted        int64
	dispatched       int64
	queued           int64
	running          int64
	succeeded        int64
	failed           int64
	aborted          int64
	leaseBreaks      int64
	failoverRequeues int64
	agedOut          int64
	campaigns        int64
	shedOwnerCap     int64
	shedWatermark    int64
	// Federation lifecycle counters, same s.mu discipline: clusterRouted
	// counts claims placed on a peer's vantage point, clusterPeerLost
	// counts routed builds reclaimed from a lost peer.
	clusterRouted   int64
	clusterPeerLost int64

	// dispatchLatency observes submit→running wait in seconds, on the
	// server clock (virtual-clock deterministic).
	dispatchLatency *metrics.Histogram

	// Feed counters, shared across every build's feed (producer-side
	// atomics; see feedCounters).
	feeds feedCounters

	// Streaming subscriber gauges (HTTP handler side). feedSubscribers
	// is the combined gauge (events + samples) the stats digest and
	// capacity dashboards key on; the per-stream gauges break it down.
	feedSubscribers   *metrics.Gauge
	eventSubscribers  *metrics.Gauge
	sampleSubscribers *metrics.Gauge

	heartbeats *metrics.Counter

	// Federation announce loop (its own goroutine-free tick; registry
	// atomics, not s.mu).
	clusterAnnounces      *metrics.Counter
	clusterAnnounceErrors *metrics.Counter

	// HTTP middleware.
	httpInFlight *metrics.Gauge
	reqSeq       atomic.Uint64

	// Durability. appendErrors is guarded by storeMu like the latch it
	// counts; the latency histograms are self-locking.
	appendErrors    int64
	fsyncLatency    *metrics.Histogram
	snapshotLatency *metrics.Histogram

	// Credits.
	creditDenials  *metrics.Counter
	runsCharged    *metrics.Counter
	creditsDebited *metrics.FloatCounter

	// Analytics route: end-to-end query latency (cache hits included)
	// and result-cache effectiveness.
	analyticsLatency *metrics.Histogram
	analyticsHits    *metrics.Counter
	analyticsMisses  *metrics.Counter
}

// feedCounters is the server-wide view of the bounded feed buffers:
// every build's feed shares these, so fleet-level drop rates come from
// one place instead of a scan over all builds. It implements
// feedhub.Stats, wiring the hub's per-feed ticks into the registry;
// the methods touch only lock-free registry atomics, honoring the
// hub's no-locks-held rule for stats sinks.
type feedCounters struct {
	eventsPosted   *metrics.Counter
	samplesPosted  *metrics.Counter
	eventsDropped  *metrics.Counter
	samplesDropped *metrics.Counter
}

func (c *feedCounters) EventPosted()   { c.eventsPosted.Inc() }
func (c *feedCounters) EventDropped()  { c.eventsDropped.Inc() }
func (c *feedCounters) SamplePosted()  { c.samplesPosted.Inc() }
func (c *feedCounters) SampleDropped() { c.samplesDropped.Inc() }

// newServerMetrics builds the registry and registers the collectors.
// Called once from New, after the scheduler maps exist.
func newServerMetrics(s *Server) *serverMetrics {
	reg := metrics.NewRegistry()
	m := &serverMetrics{
		reg:             reg,
		dispatchLatency: reg.Histogram("blab_dispatch_latency_seconds", "submit-to-running wait per dispatched build"),
		feeds: feedCounters{
			eventsPosted:   reg.Counter("blab_feed_events_posted_total", "phase events accepted into build feeds"),
			samplesPosted:  reg.Counter("blab_feed_samples_posted_total", "live samples accepted into build feeds"),
			eventsDropped:  reg.Counter("blab_feed_events_dropped_total", "phase events shed by full or closed feed buffers"),
			samplesDropped: reg.Counter("blab_feed_samples_dropped_total", "live samples shed by full or closed feed buffers"),
		},
		feedSubscribers:   reg.Gauge("blab_feed_subscribers", "open streaming connections (events + samples)"),
		eventSubscribers:  reg.Gauge("blab_feed_event_subscribers", "open event-stream connections"),
		sampleSubscribers: reg.Gauge("blab_feed_sample_subscribers", "open sample-stream connections"),
		heartbeats:        reg.Counter("blab_node_heartbeats_total", "liveness beats recorded"),
		clusterAnnounces:  reg.Counter("blab_cluster_announces_total", "peer announces delivered"),
		clusterAnnounceErrors: reg.Counter("blab_cluster_announce_errors_total",
			"peer announces that failed (unreachable peer, bad token)"),
		httpInFlight:     reg.Gauge("blab_http_in_flight", "HTTP requests currently being served"),
		fsyncLatency:     reg.Histogram("blab_wal_fsync_seconds", "WAL group-commit fsync latency (wall time)"),
		snapshotLatency:  reg.Histogram("blab_store_snapshot_seconds", "snapshot compaction duration (wall time)"),
		creditDenials:    reg.Counter("blab_credit_denials_total", "submissions rejected by the credit gate"),
		runsCharged:      reg.Counter("blab_credit_runs_charged_total", "finished runs debited for device time"),
		creditsDebited:   reg.FloatCounter("blab_credits_debited_total", "credits debited for consumed device time"),
		analyticsLatency: reg.Histogram("blab_analytics_query_seconds", "analytics query latency, cache hits included (wall time)"),
		analyticsHits:    reg.Counter("blab_analytics_cache_hits_total", "analytics queries answered from the result cache"),
		analyticsMisses:  reg.Counter("blab_analytics_cache_misses_total", "analytics queries that computed a fresh result"),
	}
	reg.Collect(s.collectScheduler)
	reg.Collect(s.collectStore)
	return m
}

// pendingCategory folds the scheduler's free-text skip reasons into a
// bounded label set, so the pending-reason gauge cannot explode
// cardinality with node names and percentages.
func pendingCategory(reason string) string {
	switch {
	case reason == "":
		return "next_in_line"
	// "waiting for a free executor" must fold before the generic
	// "waiting for " lock_wait prefix below.
	case reason == "waiting for a free executor":
		return "executor_wait"
	case strings.Contains(reason, "campaign concurrency"):
		return "campaign_cap"
	case strings.Contains(reason, "fair-share cap"):
		return "owner_cap"
	case strings.Contains(reason, "probing controller CPU"):
		return "cpu_probe"
	case strings.Contains(reason, "controller CPU"):
		return "cpu_gate"
	case strings.HasPrefix(reason, "waiting for node ") && strings.Contains(reason, "to register"),
		strings.Contains(reason, "was removed"),
		strings.Contains(reason, "node ") && strings.Contains(reason, " is "):
		return "node_unavailable"
	case strings.HasPrefix(reason, "waiting for "):
		return "lock_wait"
	case strings.Contains(reason, "; retry "):
		return "retry_backoff"
	default:
		return "other"
	}
}

// pendingCategories is the full label set, emitted every snapshot
// (zeros included) so scrapes see stable series.
var pendingCategories = []string{
	"next_in_line", "executor_wait", "campaign_cap", "owner_cap",
	"cpu_probe", "cpu_gate",
	"node_unavailable", "lock_wait", "retry_backoff", "other",
}

// collectScheduler emits the scheduler's lifecycle counters and derived
// gauges under s.mu — the one lock all of them mutate under — so each
// snapshot is internally consistent.
func (s *Server) collectScheduler(e *metrics.Emitter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.m

	e.Counter("blab_builds_submitted_total", "builds accepted into the queue", float64(m.submitted))
	e.Counter("blab_builds_dispatched_total", "queue-to-executor dispatches", float64(m.dispatched))
	e.Counter("blab_builds_finished_total", "terminal build transitions by result",
		float64(m.succeeded), metrics.Label{Name: "result", Value: "success"})
	e.Counter("blab_builds_finished_total", "terminal build transitions by result",
		float64(m.failed), metrics.Label{Name: "result", Value: "failure"})
	e.Counter("blab_builds_finished_total", "terminal build transitions by result",
		float64(m.aborted), metrics.Label{Name: "result", Value: "aborted"})
	e.Counter("blab_scheduler_lease_breaks_total", "running builds reclaimed from lost nodes", float64(m.leaseBreaks))
	e.Counter("blab_scheduler_failover_requeues_total", "lease breaks that requeued within the retry budget", float64(m.failoverRequeues))
	e.Counter("blab_scheduler_aged_out_total", "queued builds failed by the pending timeout", float64(m.agedOut))
	e.Counter("blab_campaigns_submitted_total", "campaigns accepted", float64(m.campaigns))
	e.Counter("blab_admission_shed_total", "submissions shed by admission control",
		float64(m.shedOwnerCap), metrics.Label{Name: "reason", Value: ShedOwnerCap})
	e.Counter("blab_admission_shed_total", "submissions shed by admission control",
		float64(m.shedWatermark), metrics.Label{Name: "reason", Value: ShedQueueWatermark})

	e.Gauge("blab_queue_depth", "builds in state queued (including failover backoff)", float64(m.queued))
	e.Gauge("blab_queue_dispatchable", "builds in the dispatch scan queue", float64(len(s.queue)))
	e.Gauge("blab_builds_running", "builds holding an executor", float64(m.running))
	e.Gauge("blab_executors", "configured executor cap", float64(s.cfg.Executors))
	e.Gauge("blab_builds_tracked", "build records held in memory (retention window)", float64(len(s.builds)))
	e.Gauge("blab_jobs", "stored pipelines", float64(len(s.jobs)))

	// Pending-reason breakdown of the dispatch queue.
	pending := map[string]int{}
	for _, b := range s.queue {
		pending[pendingCategory(b.PendingReason())]++
	}
	for _, cat := range pendingCategories {
		e.Gauge("blab_queue_pending", "queued builds by wait reason",
			float64(pending[cat]), metrics.Label{Name: "reason", Value: cat})
	}

	// Node health census.
	now := s.clock.Now()
	health := map[Health]int{}
	monitored := 0
	for _, rec := range s.nodeRecs {
		health[s.healthLocked(rec, now)]++
		if rec.monitored {
			monitored++
		}
	}
	for _, h := range []Health{HealthOnline, HealthSuspect, HealthOffline, HealthDraining} {
		e.Gauge("blab_nodes", "tracked vantage points by health state",
			float64(health[h]), metrics.Label{Name: "state", Value: h.String()})
	}
	e.Gauge("blab_nodes_monitored", "vantage points with heartbeat tracking armed", float64(monitored))

	// Federation census. Peer state derives from the registry's lock-free
	// snapshot (a leaf read — the cluster registry never takes s.mu).
	e.Counter("blab_cluster_builds_routed_total", "builds dispatched to a federated peer's vantage point", float64(m.clusterRouted))
	e.Counter("blab_cluster_peer_losses_total", "routed builds reclaimed from a lost peer", float64(m.clusterPeerLost))
	peerStates := map[cluster.State]int{}
	for _, p := range s.cluster.Peers() {
		if st, _, ok := s.cluster.PeerState(p.Name, now); ok {
			peerStates[st]++
		}
	}
	for _, st := range []cluster.State{cluster.StateOnline, cluster.StateSuspect, cluster.StateOffline} {
		e.Gauge("blab_cluster_peers", "federated peers by heartbeat state",
			float64(peerStates[st]), metrics.Label{Name: "state", Value: st.String()})
	}

	// Lock-domain telemetry: total scheduler-lock acquisitions. Paired
	// with blab_feed_subscribers it answers "are status polls and
	// streaming reads staying off the dispatch lock" in production the
	// same way the lock-isolation test asserts it in CI.
	e.Counter("blab_sched_lock_acquisitions_total", "scheduler mutex acquisitions", float64(s.mu.acquisitions.Load()))
}

// collectStore emits durability metrics under storeMu, consistent with
// the latch state.
func (s *Server) collectStore(e *metrics.Emitter) {
	s.storeMu.Lock()
	attached := s.store != nil
	failed := s.storeFailed
	appendErrors := s.m.appendErrors
	var appends, appendBytes, snapBytes, gen float64
	if attached {
		appends = float64(s.store.TotalAppends())
		appendBytes = float64(s.store.TotalAppendBytes())
		snapBytes = float64(s.store.LastSnapshotBytes())
		gen = float64(s.store.Generation())
	}
	s.storeMu.Unlock()

	e.Gauge("blab_store_attached", "1 when a durable store is attached", b2f(attached))
	e.Gauge("blab_store_durable", "1 while WAL appends are accepted (0 after the failure latch)", b2f(attached && !failed))
	e.Counter("blab_wal_appends_total", "records appended to the WAL", appends)
	e.Counter("blab_wal_append_bytes_total", "payload bytes appended to the WAL", appendBytes)
	e.Counter("blab_wal_append_errors_total", "WAL append or fsync failures (each latches durability off)", float64(appendErrors))
	e.Gauge("blab_store_snapshot_bytes", "size of the last written snapshot", snapBytes)
	e.Gauge("blab_wal_generation", "WAL generation (bumps per compaction)", gen)
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// MetricsSnapshot captures the registry — every registered metric plus
// the scheduler and store collectors' consistent views.
func (s *Server) MetricsSnapshot() metrics.Snapshot { return s.m.reg.Snapshot() }

// MetricsRegistry exposes the registry for embedding layers that want
// to add their own series to the same endpoint.
func (s *Server) MetricsRegistry() *metrics.Registry { return s.m.reg }

// SetLogger installs the structured logger the HTTP middleware and
// stats flusher write to. Safe to call at any time; the default
// discards.
func (s *Server) SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(slog.DiscardHandler)
	}
	s.logger.Store(l)
}

// slogger returns the active structured logger (never nil).
func (s *Server) slogger() *slog.Logger {
	if l := s.logger.Load(); l != nil {
		return l
	}
	return slog.New(slog.DiscardHandler)
}

// StartStatsFlush arms a periodic digest of the key fleet metrics to
// the structured log, on the server clock. It is opt-in (the daemon
// arms it; tests and libraries that want no timers do not), and the
// returned stop function disarms it.
func (s *Server) StartStatsFlush(period time.Duration) (stop func()) {
	t := simclock.NewTicker(s.clock, period, func(time.Time) { s.FlushStats() })
	return t.Stop
}

// FlushStats logs a one-line digest of the fleet's health: scheduler
// throughput and latency, feed pressure, WAL volume.
func (s *Server) FlushStats() {
	snap := s.m.reg.Snapshot()
	get := func(name string, labels ...metrics.Label) float64 {
		mv, _ := snap.Get(name, labels...)
		return mv.Value
	}
	var p50, p99 float64
	if mv, ok := snap.Get("blab_dispatch_latency_seconds"); ok && mv.Hist != nil {
		p50, p99 = mv.Hist.P50, mv.Hist.P99
	}
	var bytesPerRecord float64
	if appends := get("blab_wal_appends_total"); appends > 0 {
		bytesPerRecord = get("blab_wal_append_bytes_total") / appends
	}
	var analyticsHitRate float64
	hits := get("blab_analytics_cache_hits_total")
	if total := hits + get("blab_analytics_cache_misses_total"); total > 0 {
		analyticsHitRate = hits / total
	}
	s.slogger().LogAttrs(context.Background(), slog.LevelInfo, "stats",
		slog.Int64("submitted", int64(get("blab_builds_submitted_total"))),
		slog.Int64("dispatched", int64(get("blab_builds_dispatched_total"))),
		slog.Int64("queued", int64(get("blab_queue_depth"))),
		slog.Int64("running", int64(get("blab_builds_running"))),
		slog.Int64("succeeded", int64(get("blab_builds_finished_total", metrics.Label{Name: "result", Value: "success"}))),
		slog.Int64("failed", int64(get("blab_builds_finished_total", metrics.Label{Name: "result", Value: "failure"}))),
		slog.Float64("dispatch_p50_s", p50),
		slog.Float64("dispatch_p99_s", p99),
		slog.Int64("feed_subscribers", int64(get("blab_feed_subscribers"))),
		slog.Int64("event_subscribers", int64(get("blab_feed_event_subscribers"))),
		slog.Int64("sample_subscribers", int64(get("blab_feed_sample_subscribers"))),
		slog.Int64("feed_events_dropped", int64(get("blab_feed_events_dropped_total"))),
		slog.Int64("feed_samples_dropped", int64(get("blab_feed_samples_dropped_total"))),
		slog.Int64("wal_appends", int64(get("blab_wal_appends_total"))),
		slog.Float64("wal_bytes_per_record", bytesPerRecord),
		slog.Float64("analytics_hit_rate", analyticsHitRate),
		slog.Int64("heartbeats", int64(get("blab_node_heartbeats_total"))),
	)
}
