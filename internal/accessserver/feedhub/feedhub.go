// Package feedhub is the access server's feed plane: per-build event/
// sample streams and the registry that resolves streaming subscriptions
// without touching scheduler state.
//
// The hub exists to split the server into two lock domains. The
// scheduler lock (s.mu) orders dispatch, failover and settlement; the
// hub's lock orders only feed lifecycle (create/close/evict) and is a
// strict leaf: the hub never calls back into the scheduler and never
// acquires any other lock, so every hub method — including Close — is
// legal to call while holding scheduler or per-build locks. That kills
// the old "close the feed after releasing s.mu" contract the scheduler
// used to carry (and occasionally violate) when feeds hung off the
// build struct.
//
// Streaming HTTP handlers resolve a build id to its feed through
// Resolve alone, so thousands of dashboard subscribers never contend
// with dispatch.
package feedhub

import (
	"sync"

	"batterylab/internal/api"
)

// Feed buffer bounds. Like the capture pipeline's observer queue, the
// feed is bounded and never blocks a producer: when a buffer fills,
// new records are dropped and counted rather than queued without
// limit, so a stalled HTTP consumer can never exert backpressure on
// the capture loop. At the default 1 s live-sample cadence the sample
// buffer holds over four hours of backlog.
const (
	EventCap  = 4096
	SampleCap = 16384
)

// Stats receives posted/dropped ticks from every feed in a hub, so the
// embedding server can aggregate them into its metrics registry. All
// methods must be safe for concurrent use; implementations must not
// acquire locks that can be held while posting to a feed.
type Stats interface {
	EventPosted()
	EventDropped()
	SamplePosted()
	SampleDropped()
}

// Feed is a build's streaming log: the phase events and live power
// samples its run emitted, buffered for replay-plus-follow consumers.
// Producers (the measurement session's observer) append without ever
// blocking; consumers (the NDJSON/binary streaming handlers) read
// snapshots by cursor and wait on a change channel for more. The feed
// closes when the build finishes.
type Feed struct {
	mu      sync.Mutex
	changed chan struct{}
	events  []api.BuildEvent
	samples []api.SamplePoint
	closed  bool

	droppedEvents  int64
	droppedSamples int64

	// stats aggregates posted/dropped totals across all feeds for the
	// metrics registry. Nil in feeds built outside a hub.
	stats Stats
}

// NewFeed returns an open, unregistered feed. st may be nil. Most
// callers want Hub.Create instead; this exists for tests and for
// embedders that manage their own registry.
func NewFeed(st Stats) *Feed {
	return &Feed{changed: make(chan struct{}), stats: st}
}

// notifyLocked wakes every waiting consumer. Callers hold f.mu.
func (f *Feed) notifyLocked() {
	close(f.changed)
	f.changed = make(chan struct{})
}

// PostEvent appends a phase event, assigning its sequence number. Full
// buffer or closed feed: the event is dropped and counted. Never
// blocks.
func (f *Feed) PostEvent(e api.BuildEvent) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || len(f.events) >= EventCap {
		f.droppedEvents++
		if f.stats != nil {
			f.stats.EventDropped()
		}
		return
	}
	e.Seq = len(f.events)
	f.events = append(f.events, e)
	if f.stats != nil {
		f.stats.EventPosted()
	}
	f.notifyLocked()
}

// PostSample appends a live sample under the same non-blocking,
// drop-when-full contract as PostEvent.
func (f *Feed) PostSample(p api.SamplePoint) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || len(f.samples) >= SampleCap {
		f.droppedSamples++
		if f.stats != nil {
			f.stats.SampleDropped()
		}
		return
	}
	f.samples = append(f.samples, p)
	if f.stats != nil {
		f.stats.SamplePosted()
	}
	f.notifyLocked()
}

// Close marks the feed complete and wakes consumers so they can drain
// and exit. Idempotent, and — the hub's whole point — legal under any
// caller-held lock: the feed lock is a leaf.
func (f *Feed) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	f.notifyLocked()
}

// Closed reports whether the feed has closed.
func (f *Feed) Closed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

// EventsSince returns the events at cursor n and beyond, whether the
// feed has closed, and a channel that signals the next change. A
// consumer loops: drain the snapshot, exit when closed and caught up,
// otherwise wait on the channel (or its own context).
func (f *Feed) EventsSince(n int) (evs []api.BuildEvent, closed bool, changed <-chan struct{}) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n < len(f.events) {
		evs = append(evs, f.events[n:]...)
	}
	return evs, f.closed, f.changed
}

// SamplesSince is EventsSince for the sample stream.
func (f *Feed) SamplesSince(n int) (pts []api.SamplePoint, closed bool, changed <-chan struct{}) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n < len(f.samples) {
		pts = append(pts, f.samples[n:]...)
	}
	return pts, f.closed, f.changed
}

// Dropped reports how many events and samples the bounded buffers shed.
func (f *Feed) Dropped() (events, samples int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.droppedEvents, f.droppedSamples
}

// Status classifies a build id for the streaming routes.
type Status int

const (
	// StatusUnknown: the id was never issued (404).
	StatusUnknown Status = iota
	// StatusLive: a feed is registered — open, or closed and still
	// replayable until retention evicts it.
	StatusLive
	// StatusExpired: the id was issued but retention evicted its feed;
	// only a tombstone remains.
	StatusExpired
)

// Hub is the epoch-aware feed registry. One hub serves one access
// server; the scheduler drives lifecycle through Create/Close/Remove
// and the streaming handlers resolve subscriptions through Resolve.
//
// Lock rule: h.mu (and each feed's lock) is a leaf. Hub methods may be
// called while holding any scheduler lock; hub methods never call out.
type Hub struct {
	stats Stats

	mu    sync.Mutex
	feeds map[int]*entry
	// high is the highest build id ever registered (or declared via
	// SetHighWater after recovery): ids at or below it that are no
	// longer registered have expired rather than never existed.
	high int

	// tomb is a permanently closed feed returned for evicted ids, so a
	// late producer posts into a drop-everything sink instead of nil.
	tomb *Feed
}

type entry struct {
	feed  *Feed
	epoch int
}

// New returns an empty hub. st may be nil.
func New(st Stats) *Hub {
	tomb := NewFeed(nil)
	tomb.Close()
	return &Hub{stats: st, feeds: make(map[int]*entry), tomb: tomb}
}

// Create registers a fresh feed for build id at the given epoch
// (epochs count feed restarts across server recoveries; streaming
// clients use them to invalidate stale resume cursors). Re-creating an
// id replaces its entry.
func (h *Hub) Create(id, epoch int) *Feed {
	f := NewFeed(h.stats)
	h.mu.Lock()
	defer h.mu.Unlock()
	h.feeds[id] = &entry{feed: f, epoch: epoch}
	if id > h.high {
		h.high = id
	}
	return f
}

// Close closes build id's feed, waking subscribers to drain and exit.
// The feed stays registered (replayable) until Remove. Unknown ids are
// a no-op. Safe under any scheduler lock.
func (h *Hub) Close(id int) {
	h.mu.Lock()
	e := h.feeds[id]
	h.mu.Unlock()
	if e != nil {
		e.feed.Close()
	}
}

// Remove evicts build id's feed (retention expiry). The feed is closed
// first so stragglers drain; subsequent Resolve calls report expiry.
func (h *Hub) Remove(id int) {
	h.mu.Lock()
	e := h.feeds[id]
	delete(h.feeds, id)
	h.mu.Unlock()
	if e != nil {
		e.feed.Close()
	}
}

// Feed returns build id's feed, or a permanently closed sink when the
// id is unknown or evicted — producers can always post without a nil
// check, and posts to evicted builds are counted as drops by the sink
// (locally, not in Stats).
func (h *Hub) Feed(id int) *Feed {
	h.mu.Lock()
	defer h.mu.Unlock()
	if e, ok := h.feeds[id]; ok {
		return e.feed
	}
	return h.tomb
}

// Epoch reports build id's feed epoch (0 when unknown).
func (h *Hub) Epoch(id int) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	if e, ok := h.feeds[id]; ok {
		return e.epoch
	}
	return 0
}

// Resolve maps a build id to its feed for a streaming subscription:
// the feed and epoch when live, or a status explaining its absence.
// This is the data plane's only lookup — it never touches scheduler
// state.
func (h *Hub) Resolve(id int) (f *Feed, epoch int, st Status) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if e, ok := h.feeds[id]; ok {
		return e.feed, e.epoch, StatusLive
	}
	if id >= 1 && id <= h.high {
		return nil, 0, StatusExpired
	}
	return nil, 0, StatusUnknown
}

// SetHighWater raises the id high-water mark. Recovery calls it with
// the highest id ever issued so ids whose records expired before the
// restart (no feed to re-create) still resolve as expired, not
// unknown.
func (h *Hub) SetHighWater(id int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if id > h.high {
		h.high = id
	}
}

// Len reports how many feeds are registered.
func (h *Hub) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.feeds)
}
