package feedhub

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"batterylab/internal/api"
)

type countStats struct {
	eventsPosted, eventsDropped   atomic.Int64
	samplesPosted, samplesDropped atomic.Int64
}

func (c *countStats) EventPosted()   { c.eventsPosted.Add(1) }
func (c *countStats) EventDropped()  { c.eventsDropped.Add(1) }
func (c *countStats) SamplePosted()  { c.samplesPosted.Add(1) }
func (c *countStats) SampleDropped() { c.samplesDropped.Add(1) }

func TestHubLifecycle(t *testing.T) {
	h := New(nil)

	// Unknown id: tombstone feed, unknown status, epoch 0.
	if _, _, st := h.Resolve(1); st != StatusUnknown {
		t.Fatalf("resolve before create = %v, want unknown", st)
	}
	if f := h.Feed(1); f == nil || !f.Closed() {
		t.Fatal("unknown id must yield the closed tombstone, not nil")
	}

	f := h.Create(1, 3)
	if got, epoch, st := h.Resolve(1); st != StatusLive || got != f || epoch != 3 {
		t.Fatalf("resolve live = (%p, %d, %v), want (%p, 3, live)", got, epoch, st, f)
	}
	if h.Epoch(1) != 3 || h.Len() != 1 {
		t.Fatalf("epoch=%d len=%d", h.Epoch(1), h.Len())
	}

	// Close keeps the feed registered and replayable.
	f.PostEvent(api.BuildEvent{Phase: "run"})
	h.Close(1)
	if _, _, st := h.Resolve(1); st != StatusLive {
		t.Fatalf("resolve after close = %v, want live (replayable)", st)
	}
	evs, closed, _ := f.EventsSince(0)
	if len(evs) != 1 || !closed {
		t.Fatalf("replay after close: %d events, closed=%v", len(evs), closed)
	}

	// Remove evicts; the id now reads expired, not unknown, and the
	// tombstone absorbs late producers.
	h.Remove(1)
	if _, _, st := h.Resolve(1); st != StatusExpired {
		t.Fatalf("resolve after remove = %v, want expired", st)
	}
	h.Feed(1).PostEvent(api.BuildEvent{Phase: "late"}) // must not panic
	if h.Len() != 0 {
		t.Fatalf("len after remove = %d", h.Len())
	}

	// Ids above the high-water mark are still unknown.
	if _, _, st := h.Resolve(2); st != StatusUnknown {
		t.Fatalf("resolve high id = %v, want unknown", st)
	}
	h.SetHighWater(10)
	if _, _, st := h.Resolve(7); st != StatusExpired {
		t.Fatalf("resolve under raised high water = %v, want expired", st)
	}
}

func TestFeedCursorSemantics(t *testing.T) {
	st := &countStats{}
	f := NewFeed(st)
	for i := 0; i < 3; i++ {
		f.PostEvent(api.BuildEvent{Phase: "run"})
	}
	evs, closed, _ := f.EventsSince(1)
	if len(evs) != 2 || closed {
		t.Fatalf("EventsSince(1): %d events, closed=%v", len(evs), closed)
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("seqs = %d,%d", evs[0].Seq, evs[1].Seq)
	}
	// Negative cursors clamp, past-the-end cursors return nothing.
	if evs, _, _ := f.EventsSince(-5); len(evs) != 3 {
		t.Fatalf("EventsSince(-5): %d events", len(evs))
	}
	if evs, _, _ := f.EventsSince(99); len(evs) != 0 {
		t.Fatalf("EventsSince(99): %d events", len(evs))
	}

	// The changed channel fires on append and on close.
	_, _, changed := f.EventsSince(3)
	f.PostEvent(api.BuildEvent{Phase: "teardown"})
	select {
	case <-changed:
	case <-time.After(time.Second):
		t.Fatal("changed channel did not fire on append")
	}
	_, _, changed = f.EventsSince(4)
	f.Close()
	select {
	case <-changed:
	case <-time.After(time.Second):
		t.Fatal("changed channel did not fire on close")
	}
	if st.eventsPosted.Load() != 4 {
		t.Fatalf("stats posted = %d", st.eventsPosted.Load())
	}
}

func TestFeedDropAccounting(t *testing.T) {
	st := &countStats{}
	f := NewFeed(st)
	for i := 0; i < EventCap+5; i++ {
		f.PostEvent(api.BuildEvent{Phase: "run"})
	}
	de, _ := f.Dropped()
	if de != 5 || st.eventsDropped.Load() != 5 {
		t.Fatalf("dropped events = %d (stats %d), want 5", de, st.eventsDropped.Load())
	}
	evs, _, _ := f.EventsSince(0)
	if len(evs) != EventCap {
		t.Fatalf("buffered events = %d, want %d", len(evs), EventCap)
	}

	// A closed feed drops everything.
	f2 := NewFeed(st)
	f2.Close()
	f2.PostSample(api.SamplePoint{})
	if _, ds := f2.Dropped(); ds != 1 {
		t.Fatalf("dropped samples on closed feed = %d", ds)
	}
}

// TestHubConcurrentChurn hammers create/close/remove/resolve from many
// goroutines; run under -race it proves every hub and feed method is
// safe to call from any lock context.
func TestHubConcurrentChurn(t *testing.T) {
	h := New(&countStats{})
	const n = 32
	var wg sync.WaitGroup
	for id := 1; id <= n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			f := h.Create(id, 0)
			for i := 0; i < 50; i++ {
				f.PostEvent(api.BuildEvent{Phase: "run"})
			}
			h.Close(id)
			if id%2 == 0 {
				h.Remove(id)
			}
		}(id)
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cursor := 0
			for {
				f, _, st := h.Resolve(id)
				if st == StatusExpired {
					return
				}
				if st == StatusUnknown {
					continue // creator hasn't run yet
				}
				evs, closed, changed := f.EventsSince(cursor)
				cursor += len(evs)
				if closed {
					if more, _, _ := f.EventsSince(cursor); len(more) == 0 {
						return
					}
					continue
				}
				select {
				case <-changed:
				case <-time.After(10 * time.Millisecond):
				}
			}
		}(id)
	}
	wg.Wait()
	for id := 1; id <= n; id++ {
		want := StatusLive
		if id%2 == 0 {
			want = StatusExpired
		}
		if _, _, st := h.Resolve(id); st != want {
			t.Fatalf("id %d: status %v, want %v", id, st, want)
		}
	}
}
