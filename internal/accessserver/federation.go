package accessserver

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"batterylab/internal/accessserver/cluster"
	"batterylab/internal/accessserver/store"
	"batterylab/internal/api"
	"batterylab/internal/simclock"
)

// Federation: several access servers pool their testbeds into one
// cluster. Each server keeps full authority over its own nodes, users
// and builds; what federation adds is
//
//   - membership: peers announce themselves over POST /api/v1/cluster/
//     peers (authenticated by a shared cluster token) and re-announce on
//     every heartbeat, carrying their current node census. Membership
//     persists in the WAL; liveness and the census are ephemeral.
//   - routing: the scheduler treats peer-advertised vantage points as
//     placement candidates. A build that places on one is relayed to the
//     peer as a plain v1 spec submission, and its events, samples and
//     summary stream back into the local feed — the client sees one
//     server, one build, wherever it ran.
//   - a single-cluster view: GET /api/v1/cluster renders every peer and
//     its census from a lock-free snapshot.
//
// The relay transport is injected (SetPeerRelay) rather than imported:
// internal/remote already speaks the v1 protocol but sits above this
// package in the import graph, so the daemon (or a test) wires the two
// together.

// PeerSink receives the event and sample records a relayed build emits
// on its executing server, rewritten into the home build's feed, plus
// the terminal artifacts (traces, CPU CSVs) copied into the home
// build's workspace once the remote run succeeds — artifact and
// analytics reads work on the home server wherever the build ran.
type PeerSink interface {
	Event(e api.BuildEvent)
	Sample(p api.SamplePoint)
	Artifact(name string, data []byte)
}

// PeerRelay submits spec to the peer at peerURL (authenticating with
// the cluster token), streams the remote build's events and samples
// into sink until the build settles, and returns its terminal status.
// A non-nil error means the relay itself broke — submission rejected,
// connection lost, context canceled — not that the experiment failed;
// experiment failure comes back as a terminal status with State
// "failure". Implementations must honor ctx promptly: the scheduler
// cancels it on abort and failover.
type PeerRelay func(ctx context.Context, peerURL, token string, spec api.ExperimentSpec, sink PeerSink) (*api.BuildStatus, error)

// SetPeerRelay installs the cross-server submit path. Until a relay is
// installed the scheduler never places builds on peer-advertised
// nodes.
func (s *Server) SetPeerRelay(r PeerRelay) {
	s.mu.Lock()
	s.peerRelay = r
	s.mu.Unlock()
}

// Cluster exposes the federation membership registry (read-only use:
// views, candidates, state probes).
func (s *Server) Cluster() *cluster.Registry { return s.cluster }

// ConfigureCluster sets the server's federation identity after
// construction — for daemons whose cluster flags arrive later than the
// platform facade builds the server. Empty arguments keep the
// constructed values. Boot-time only: call before StartCluster and
// before the server takes traffic.
func (s *Server) ConfigureCluster(name, advertiseURL, token string) {
	s.cluster.Configure(name, advertiseURL, token)
}

// StartCluster arms the federation announce loop: every
// PeerHeartbeatEvery the server sweeps peer liveness, announces itself
// (with its node census) to every seed and every known peer, and adopts
// peers it learns from announce responses. seeds are upstream base URLs
// from the -peer flag; a server with none still announces to peers that
// joined it first, which is what makes one-directional join recipes
// work. No-op unless a cluster token is configured.
func (s *Server) StartCluster(seeds ...string) {
	if s.cluster.Token() == "" {
		return
	}
	s.mu.Lock()
	s.peerSeeds = append(s.peerSeeds, seeds...)
	if s.peerTicker == nil {
		s.peerTicker = simclock.NewTicker(s.clock, s.cfg.PeerHeartbeatEvery,
			func(time.Time) { s.announceTick() })
	}
	s.mu.Unlock()
	s.announceTick()
}

// StopCluster disarms the announce loop (membership and routed builds
// are untouched; peers age into suspect/offline on their own clocks).
func (s *Server) StopCluster() {
	s.mu.Lock()
	t := s.peerTicker
	s.peerTicker = nil
	s.mu.Unlock()
	if t != nil {
		t.Stop()
	}
}

// announceTick is one beat of the federation loop: sweep peer liveness
// (reclaiming builds routed to peers that left the online state), then
// announce to every known URL and adopt newly learned peers.
func (s *Server) announceTick() {
	now := s.clock.Now()
	for _, name := range s.cluster.Sweep(now) {
		s.reclaimPeer(name)
	}
	s.mu.Lock()
	targets := append([]string(nil), s.peerSeeds...)
	s.mu.Unlock()
	for _, p := range s.cluster.Peers() {
		if p.URL != "" {
			targets = append(targets, p.URL)
		}
	}
	ann := api.PeerAnnounce{
		Name:  s.cluster.Self(),
		URL:   s.cluster.URL(),
		Nodes: s.peerCensus(now),
	}
	seen := map[string]bool{}
	for _, url := range targets {
		if url == "" || url == s.cluster.URL() || seen[url] {
			continue
		}
		seen[url] = true
		view, err := s.announceTo(url, ann)
		if err != nil {
			s.m.clusterAnnounceErrors.Inc()
			continue
		}
		s.m.clusterAnnounces.Inc()
		// Mesh learning: the responder and any peer it knows that we do
		// not join our membership (offline until they announce to us).
		s.adoptPeer(view.Self, view.URL)
		for _, p := range view.Peers {
			s.adoptPeer(p.Name, p.URL)
		}
	}
	// Fresh peer census (or a reclaim above) may unblock queued builds.
	s.dispatch()
}

// announceTo delivers one announce over plain HTTP and decodes the
// responder's cluster view. The timeout is wall-clock on purpose: peer
// servers are real network endpoints even in virtual-clock tests.
func (s *Server) announceTo(baseURL string, ann api.PeerAnnounce) (api.ClusterView, error) {
	var view api.ClusterView
	body, err := json.Marshal(ann)
	if err != nil {
		return view, err
	}
	req, err := http.NewRequest(http.MethodPost,
		strings.TrimSuffix(baseURL, "/")+"/api/v1/cluster/peers", bytes.NewReader(body))
	if err != nil {
		return view, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer "+s.cluster.Token())
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		return view, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return view, fmt.Errorf("announce to %s: HTTP %d", baseURL, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return view, err
	}
	return view, nil
}

// adoptPeer records a peer learned from an announce response:
// membership only (the peer is offline until its own announce arrives),
// persisted so it survives restarts.
func (s *Server) adoptPeer(name, url string) {
	if name == "" || url == "" || name == s.cluster.Self() {
		return
	}
	if _, ok := s.cluster.Peer(name); ok {
		return
	}
	s.cluster.Restore(name, url)
	s.mu.Lock()
	s.logStore(store.Record{T: store.TPeerJoined, Peer: &store.PeerRec{Name: name, URL: url}})
	s.mu.Unlock()
}

// peerCensus renders this server's node census for an announce, from
// the read plane's published snapshot — the announce loop never takes
// the scheduler mutex to describe the fleet.
func (s *Server) peerCensus(now time.Time) []api.PeerNode {
	var out []api.PeerNode
	for _, e := range s.reads.nodeList() {
		if e.Removed {
			continue
		}
		out = append(out, api.PeerNode{
			Name:    e.Name,
			Health:  s.censusHealth(e, e.registered, now).String(),
			Devices: append([]string(nil), e.Devices...),
			Running: e.Running,
		})
	}
	return out
}

// handlerCluster mounts the federation routes (called from handlerV1):
//
//	POST   /api/v1/cluster/peers        peer announce/heartbeat (cluster token)
//	GET    /api/v1/cluster              cluster view (cluster token or user token)
//	DELETE /api/v1/cluster/peers/{name} evict a peer's membership (cluster
//	                                    token or node-admin user)
func (s *Server) handlerCluster(mux *http.ServeMux) {
	mux.HandleFunc("POST /api/v1/cluster/peers", func(w http.ResponseWriter, r *http.Request) {
		if !s.cluster.Authorize(bearerToken(r)) {
			writeAPIError(w, apiError(codeUnauthorized, "missing or invalid cluster token"))
			return
		}
		var ann api.PeerAnnounce
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBodyBytes)).Decode(&ann); err != nil {
			writeAPIError(w, apiError(codeBadRequest, "decoding peer announce: "+err.Error()))
			return
		}
		if ann.Name == "" {
			writeAPIError(w, apiError(codeBadRequest, "peer announce needs a name"))
			return
		}
		if ann.Name == s.cluster.Self() {
			writeAPIError(w, apiError(codeConflict,
				"peer announces as "+ann.Name+", this server's own cluster name"))
			return
		}
		now := s.clock.Now()
		if s.cluster.Announce(ann, now) {
			// First contact (or a moved URL): persist membership so the
			// peer set survives a restart.
			s.mu.Lock()
			s.logStore(store.Record{T: store.TPeerJoined, Peer: &store.PeerRec{Name: ann.Name, URL: ann.URL}})
			s.mu.Unlock()
		}
		writeJSON(w, http.StatusOK, s.cluster.View(now))
		// The announce carried a fresh census: queued builds may now
		// place remotely.
		s.dispatch()
	})
	mux.HandleFunc("GET /api/v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		// Cluster-token callers (peers) and console users may both read
		// the view. Snapshot-served either way: the registry's COW view
		// plus per-peer state derivation — never the scheduler mutex.
		if !s.cluster.Authorize(bearerToken(r)) && s.auth(w, r, PermViewConsole) == nil {
			return
		}
		writeJSON(w, http.StatusOK, s.cluster.View(s.clock.Now()))
	})
	mux.HandleFunc("DELETE /api/v1/cluster/peers/{name}", func(w http.ResponseWriter, r *http.Request) {
		if !s.cluster.Authorize(bearerToken(r)) && s.auth(w, r, PermManageNodes) == nil {
			return
		}
		name := r.PathValue("name")
		if !s.cluster.Remove(name) {
			writeAPIError(w, apiError(codeNotFound, "no peer "+name))
			return
		}
		s.reclaimPeer(name)
		s.mu.Lock()
		s.logStore(store.Record{T: store.TPeerLeft, Name: name})
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{"removed": true})
	})
}

// bearerToken extracts the Authorization bearer token ("" if absent).
func bearerToken(r *http.Request) string {
	const prefix = "Bearer "
	if tok := r.Header.Get("Authorization"); strings.HasPrefix(tok, prefix) {
		return tok[len(prefix):]
	}
	return ""
}

// relayRun synthesizes the RunFunc for a build claimed onto a peer's
// vantage point: submit the wire spec to the peer, stream its feed back
// into the local one, and settle the build from the remote terminal
// status. Relay breakage short of a terminal status goes through the
// peer-loss failover path, exactly like a lost local node. Callers hold
// s.mu (drainLocked's claim section).
func (s *Server) relayRun(b *Build, pl placement) RunFunc {
	relay := s.peerRelay
	peer, peerURL := pl.peer, pl.peerURL
	nodeName, device := pl.nodeName, pl.device
	token := s.cluster.Token()
	return func(ctx *BuildContext, done func(error)) {
		attempt := ctx.attempt
		spec := *b.wireSpec
		spec.Node = nodeName
		spec.Device = device
		// Pin the relayed run: failover decisions stay with the home
		// server (one failover domain per build, not two). The CPU gate
		// travels — the peer owns that node's telemetry.
		spec.Constraints.AllowFallback = false
		spec.HomeServer = s.cluster.Self()
		cctx, cancel := context.WithCancel(context.Background())
		ctx.OnCancel(cancel)
		sink := &relaySink{b: b, attempt: attempt, node: nodeName}
		go func() {
			defer cancel()
			st, err := relay(cctx, peerURL, token, spec, sink)
			switch {
			case err == nil && st != nil:
				if st.Summary != nil {
					b.SetSummary(*st.Summary)
				}
				if st.State == StateSuccess.String() {
					done(nil)
					return
				}
				msg := st.Error
				if msg == "" {
					msg = st.State
				}
				done(fmt.Errorf("peer %s: remote build %d %s: %s", peer, st.ID, st.State, msg))
			case cctx.Err() != nil:
				// Locally canceled (abort or failover reclaimed the
				// attempt); settle — finish discards stale attempts.
				done(fmt.Errorf("relay to peer %s canceled: %w", peer, context.Cause(cctx)))
			case isPermanentRelayErr(err):
				// The peer answered and said no (bad spec, unknown node,
				// forbidden): retrying elsewhere cannot help.
				done(fmt.Errorf("peer %s rejected build: %w", peer, err))
			default:
				// Transport breakage or a transient refusal: treat like a
				// lost node and let the failover budget decide.
				reason := fmt.Sprintf("peer %q relay failed: %v", peer, err)
				if err == nil {
					reason = fmt.Sprintf("peer %q relay returned no status", peer)
				}
				s.peerLost(b, attempt, peer, reason)
			}
		}()
	}
}

// isPermanentRelayErr reports whether a relay error is the peer's
// considered rejection (4xx) rather than unavailability: retrying or
// failing over cannot change the answer.
func isPermanentRelayErr(err error) bool {
	var ae *api.Error
	if errors.As(err, &ae) {
		st := ae.HTTPStatus()
		return st >= 400 && st < 500 && st != http.StatusTooManyRequests
	}
	return false
}

// relaySink feeds a routed build's remote events and samples into its
// home feed, rewritten to the local build id and dropped once the
// attempt is stale (a failed-over relay must not pollute the retry's
// feed).
type relaySink struct {
	b       *Build
	attempt int
	node    string
}

func (rs *relaySink) live() bool {
	rs.b.mu.Lock()
	defer rs.b.mu.Unlock()
	return rs.b.attempt == rs.attempt && rs.b.state == StateRunning
}

// Event implements PeerSink.
func (rs *relaySink) Event(e api.BuildEvent) {
	if !rs.live() {
		return
	}
	e.Build = rs.b.ID
	e.Seq = 0 // the home feed assigns its own cursor
	if e.Node == "" {
		e.Node = rs.node
	}
	rs.b.Feed().PostEvent(e)
}

// Sample implements PeerSink.
func (rs *relaySink) Sample(p api.SamplePoint) {
	if !rs.live() {
		return
	}
	rs.b.Feed().PostSample(p)
}

// Artifact implements PeerSink: a terminal artifact fetched from the
// executing peer lands in the home build's workspace, byte for byte.
func (rs *relaySink) Artifact(name string, data []byte) {
	if !rs.live() {
		return
	}
	rs.b.Workspace().Save(name, data)
}

// peerLost fails over one routed build after its relay broke. The
// (attempt, peer) pair gates staleness: a late relay error from a
// reclaimed attempt is a no-op.
func (s *Server) peerLost(b *Build, attempt int, peer, reason string) {
	s.mu.Lock()
	b.mu.Lock()
	stale := b.state != StateRunning || b.attempt != attempt || b.routedVia != peer
	b.mu.Unlock()
	if stale {
		s.mu.Unlock()
		return
	}
	s.m.clusterPeerLost++
	cancel := s.failoverLocked(b, reason)
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	s.dispatch()
}

// checkPeerLease is the routed build's lease watchdog — checkLease with
// the peer's heartbeat in place of the node's. While the peer keeps
// announcing, the lease re-arms off its latest beat; once it has been
// silent a full offline window, the build fails over.
func (s *Server) checkPeerLease(b *Build, attempt int, peer string) {
	s.mu.Lock()
	b.mu.Lock()
	if b.state != StateRunning || b.attempt != attempt || b.routedVia != peer {
		b.mu.Unlock()
		s.mu.Unlock()
		return
	}
	b.mu.Unlock()
	now := s.clock.Now()
	if p, ok := s.cluster.Peer(peer); ok &&
		!p.LastBeat.IsZero() && now.Sub(p.LastBeat) < s.cfg.OfflineAfter {
		next := p.LastBeat.Add(s.cfg.OfflineAfter).Sub(now)
		if next < s.cfg.PeerHeartbeatEvery {
			next = s.cfg.PeerHeartbeatEvery
		}
		b.mu.Lock()
		b.leaseTimer = s.clock.AfterFunc(next, func() { s.checkPeerLease(b, attempt, peer) })
		b.mu.Unlock()
		s.mu.Unlock()
		return
	}
	s.m.clusterPeerLost++
	cancel := s.failoverLocked(b, fmt.Sprintf("peer %q lost (no announce within %s)", peer, s.cfg.OfflineAfter))
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	s.dispatch()
}

// reclaimPeer fails over every running build routed via the named peer
// (the sweep found it left the online state, or an admin evicted it).
// Builds reclaim in id order so virtual-clock runs stay deterministic.
func (s *Server) reclaimPeer(peer string) {
	s.mu.Lock()
	var lost []*Build
	for _, b := range s.builds {
		b.mu.Lock()
		routed := b.state == StateRunning && b.routedVia == peer
		b.mu.Unlock()
		if routed {
			lost = append(lost, b)
		}
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i].ID < lost[j].ID })
	var cancels []func()
	for _, b := range lost {
		s.m.clusterPeerLost++
		if c := s.failoverLocked(b, fmt.Sprintf("peer %q left the cluster's online set", peer)); c != nil {
			cancels = append(cancels, c)
		}
	}
	s.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	if len(lost) > 0 {
		s.dispatch()
	}
}

// compileForPeer is the cross-server fallback behind SubmitSpec and
// SubmitCampaign: when the local backend cannot compile a spec because
// its node (or device) is unknown here, a peer advertising that vantage
// point takes the build instead. The compiled "pipeline" is a poison
// local body — if a local node of the same name ever materializes and
// wins placement, the build fails typed rather than running the wrong
// hardware — and the real execution path is drainLocked's relayRun.
func (s *Server) compileForPeer(spec api.ExperimentSpec, compileErr error) (Constraints, RunFunc, error) {
	if !errors.Is(compileErr, ErrNotFound) {
		return Constraints{}, nil, compileErr
	}
	s.mu.Lock()
	relay := s.peerRelay
	s.mu.Unlock()
	if relay == nil || s.cluster.Token() == "" {
		return Constraints{}, nil, compileErr
	}
	if err := spec.Validate(); err != nil {
		return Constraints{}, nil, compileErr
	}
	now := s.clock.Now()
	known := false
	for _, p := range s.cluster.Peers() {
		advertises := false
		for _, n := range p.Nodes {
			// An empty census device list is "not enumerated", not "no
			// devices" — the peer's scheduler arbitrates unknown serials.
			if n.Name == spec.Node && (spec.Device == "" || len(n.Devices) == 0 || containsString(n.Devices, spec.Device)) {
				advertises = true
				break
			}
		}
		if !advertises {
			continue
		}
		known = true
		if st, _, _ := s.cluster.PeerState(p.Name, now); st == cluster.StateOnline {
			cons := Constraints{
				Node:          spec.Node,
				Device:        spec.Device,
				RequireLowCPU: spec.Constraints.RequireLowCPU,
				Fallback:      spec.Constraints.AllowFallback,
			}
			return cons, peerOnlyRun(spec.Node), nil
		}
	}
	if known {
		return Constraints{}, nil, peerUnavailablef(s.cfg.PeerHeartbeatEvery,
			"%s: node %q lives on a peer that is not online right now", ErrPeerUnavailable.Error(), spec.Node)
	}
	return Constraints{}, nil, compileErr
}

// peerOnlyRun is the poison local pipeline of a peer-routed spec: it
// only runs if a local node steals the placement from the peer (a name
// collision), and then fails typed instead of measuring the wrong
// hardware.
func peerOnlyRun(node string) RunFunc {
	return func(ctx *BuildContext, done func(error)) {
		done(fmt.Errorf("%w: build targets peer-owned node %q and cannot run locally", ErrPeerUnavailable, node))
	}
}
