package accessserver

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"batterylab/internal/api"
	"batterylab/internal/simclock"
)

// RunFunc is a job's pipeline body. It receives the build context and a
// completion callback; maintenance jobs call done synchronously, while
// experiment jobs typically hand a workload script to an automation
// executor and call done from its completion callback. done must be
// called exactly once.
type RunFunc func(ctx *BuildContext, done func(error))

// Constraints gate when a build may dispatch (§3.1: "based on
// experimenter constraints, e.g. target device ... and BatteryLab
// constraints, e.g. one job at a time per device").
type Constraints struct {
	// Node is the target vantage point (required).
	Node string
	// Device is the target device serial; if set, the build holds the
	// node/device lock for its duration.
	Device string
	// RequireLowCPU defers dispatch until the controller's CPU is below
	// 50 % (the optional condition of §4.2).
	RequireLowCPU bool
	// Fallback lets the scheduler substitute another online monitored
	// node (and one of its devices) when the preferred node is
	// unavailable — the failover policy behind campaign completion on
	// surviving vantage points.
	Fallback bool
}

// Job is a stored pipeline. New jobs and every revision require
// administrator approval before they can run.
type Job struct {
	Name  string
	Owner string

	mu          sync.Mutex
	constraints Constraints
	run         RunFunc
	approved    bool
	revision    int
}

// Approved reports whether the current revision may run.
func (j *Job) Approved() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.approved
}

// Runnable reports whether the job has a pipeline body. A job recovered
// from the store keeps its metadata and approval but not its body — a
// Go closure does not survive a restart — and needs EditJob to
// reinstall it before builds can run.
func (j *Job) Runnable() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.run != nil
}

// Revision reports the current revision number.
func (j *Job) Revision() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.revision
}

// Constraints reports the job's dispatch constraints.
func (j *Job) Constraints() Constraints {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.constraints
}

// BuildState tracks a build through its life.
type BuildState int

// Build states.
const (
	StateQueued BuildState = iota
	StateRunning
	StateSuccess
	StateFailure
	StateAborted
)

func (s BuildState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateSuccess:
		return "success"
	case StateFailure:
		return "failure"
	default:
		return "aborted"
	}
}

// Build is one execution of a job or of a directly submitted v1 spec.
type Build struct {
	ID  int
	Job string
	// Owner is the submitting user; cancellation is restricted to the
	// owner and admins.
	Owner string

	// campaign groups builds submitted together via SubmitCampaign
	// (0 = standalone).
	campaign int
	// cons/run are set for spec builds, which carry their own pipeline
	// instead of referencing the job store.
	cons Constraints
	run  RunFunc
	// wireSpec is the declarative spec a spec build was compiled from,
	// retained so crash recovery can recompile the pipeline through the
	// SpecBackend (closures do not survive a restart).
	wireSpec *api.ExperimentSpec
	// recovered marks a build reconstructed from the store after a
	// restart (the wire status carries it to clients); feedEpoch counts
	// how many times the feed started over (once per recovery), so
	// streaming clients can invalidate stale resume cursors.
	recovered bool
	feedEpoch int
	// feed is the build's event/sample stream, owned and registered by
	// the server's feed hub (lifecycle — close, eviction — runs through
	// the hub, never through this handle). Set once at construction,
	// immutable after.
	feed *Feed

	mu         sync.Mutex
	state      BuildState
	queuedAt   time.Time
	startedAt  time.Time
	finishedAt time.Time
	log        strings.Builder
	workspace  *Workspace
	err        error
	summary    *api.RunSummary
	canceler   func()
	cancelWant bool

	// Fault-tolerance state. attempt is the dispatch token: each
	// dispatch increments it, and completions carrying an older token
	// (a pipeline the scheduler already reclaimed from a lost node) are
	// stale. retries counts failover requeues against the retry budget.
	attempt        int
	retries        int
	nodeName       string  // node of the current/last attempt
	routedVia      string  // peer executing the current/last attempt ("" = local)
	pendingReason  string  // why a queued build is not running yet
	placementScore float64 // placer score of the current/last placement
	// schedReason shadows pendingReason for the dispatch pass, guarded
	// by s.mu rather than b.mu: the drain labels every skipped build
	// every pass, and the shadow lets it skip the per-build lock when
	// the reason has not changed (the overwhelmingly common case on a
	// deep queue). Every writer of pendingReason that holds s.mu must
	// keep the two in sync.
	schedReason string
	heldLocks   []string
	leaseTimer  simclock.Timer
	retryTimer  simclock.Timer
	agingTimer  simclock.Timer
}

// State reports the build state.
func (b *Build) State() BuildState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Attempts reports how many times the build has been dispatched (0
// while it has never left the queue).
func (b *Build) Attempts() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attempt
}

// Retries reports how many failover requeues the build has consumed.
func (b *Build) Retries() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.retries
}

// Recovered reports whether this build's state was reconstructed from
// the server's WAL+snapshot store after a restart.
func (b *Build) Recovered() bool { return b.recovered }

// FeedEpoch reports how many times the build's feed started over (once
// per server recovery).
func (b *Build) FeedEpoch() int { return b.feedEpoch }

// NodeName reports the vantage point of the current (or last) attempt —
// after a fallback placement this differs from the spec's node.
func (b *Build) NodeName() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.nodeName
}

// RoutedVia reports the federation peer executing the current (or
// last) attempt, "" for a local placement. After a peer-loss failover
// onto a local node it resets to "".
func (b *Build) RoutedVia() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.routedVia
}

// PendingReason reports why a queued build is not running yet ("" when
// running, finished, or simply next in line).
func (b *Build) PendingReason() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pendingReason
}

// PlacementScore reports the placer's score for the build's
// current/last placement (0 for builds that never dispatched).
func (b *Build) PlacementScore() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.placementScore
}

// setPendingReason records the scheduler's skip reason for this scan.
func (b *Build) setPendingReason(reason string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.pendingReason = reason
}

// stopTimersLocked cancels the build's lease, retry and aging timers on
// a terminal transition. Callers hold b.mu.
func (b *Build) stopTimersLocked() {
	for _, t := range []simclock.Timer{b.leaseTimer, b.retryTimer, b.agingTimer} {
		if t != nil {
			t.Stop()
		}
	}
	b.leaseTimer, b.retryTimer, b.agingTimer = nil, nil, nil
}

// Err reports the failure cause for failed builds.
func (b *Build) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// Log returns the console log so far.
func (b *Build) Log() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.log.String()
}

// Workspace returns the build's artifact store.
func (b *Build) Workspace() *Workspace { return b.workspace }

// Feed returns the build's event/sample stream.
func (b *Build) Feed() *Feed { return b.feed }

// CampaignID reports the campaign the build belongs to (0 = none).
func (b *Build) CampaignID() int { return b.campaign }

// SetSummary records the run's wire-level digest; the v1 status
// endpoint serves it once set.
func (b *Build) SetSummary(s api.RunSummary) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.summary = &s
}

// Summary returns the recorded digest (nil until the run finishes).
func (b *Build) Summary() *api.RunSummary {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.summary == nil {
		return nil
	}
	cp := *b.summary
	return &cp
}

// OnCancel registers the pipeline's cancel hook. If an abort request
// arrived before the hook was registered (the submit/abort race), the
// hook runs immediately. Pipelines should prefer BuildContext.OnCancel,
// which additionally rejects registrations from attempts the scheduler
// has already reclaimed.
func (b *Build) OnCancel(fn func()) {
	b.mu.Lock()
	b.canceler = fn
	want := b.cancelWant
	b.mu.Unlock()
	if want && fn != nil {
		fn()
	}
}

// onCancelForAttempt is OnCancel with a staleness gate: a hook from a
// failed-over attempt (its pipeline finally came back after the
// scheduler reclaimed the build) must not displace the live attempt's
// hook — Abort would then cancel a dead session while the real run
// kept measuring. The stale hook is invoked instead of stored: it is
// the only handle to the orphaned session (failover found no hook to
// detach), and left alone that session would run its full workload on
// a device the retry may have re-locked.
func (b *Build) onCancelForAttempt(attempt int, fn func()) {
	b.mu.Lock()
	if b.attempt != attempt || b.state != StateRunning {
		b.mu.Unlock()
		if fn != nil {
			fn() // tear the orphaned attempt down
		}
		return
	}
	b.canceler = fn
	want := b.cancelWant
	b.mu.Unlock()
	if want && fn != nil {
		fn()
	}
}

// CancelRequested reports whether an explicit cancel was requested
// (Abort, or a pending cancel armed before the pipeline registered its
// hook).
func (b *Build) CancelRequested() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cancelWant
}

// QueueTime reports how long the build waited before dispatch (zero
// while still queued).
func (b *Build) QueueTime() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.startedAt.IsZero() {
		return 0
	}
	return b.startedAt.Sub(b.queuedAt)
}

// Duration reports the run time of a finished build.
func (b *Build) Duration() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.finishedAt.IsZero() || b.startedAt.IsZero() {
		return 0
	}
	return b.finishedAt.Sub(b.startedAt)
}

// BuildContext is what a RunFunc sees. It is per-attempt: after a
// failover, the retried dispatch gets a fresh context, and the old
// one's staleness-gated methods (OnCancel, Stale) turn inert.
type BuildContext struct {
	// Build identifies the running build.
	Build *Build
	// Node is the target vantage point handle.
	Node Node
	// Device is the target device serial ("" if none).
	Device string
	// attempt is the dispatch token this context belongs to.
	attempt int
}

// Logf appends to the build console log.
func (ctx *BuildContext) Logf(format string, args ...any) {
	ctx.Build.mu.Lock()
	defer ctx.Build.mu.Unlock()
	fmt.Fprintf(&ctx.Build.log, format+"\n", args...)
}

// OnCancel registers this attempt's cancel hook; registrations from
// attempts the scheduler has already reclaimed are ignored.
func (ctx *BuildContext) OnCancel(fn func()) {
	ctx.Build.onCancelForAttempt(ctx.attempt, fn)
}

// Stale reports whether the scheduler has reclaimed this attempt (the
// build failed over, finished, or was aborted out from under it). A
// stale attempt's pipeline must not write artifacts or summaries: the
// live attempt owns the workspace.
func (ctx *BuildContext) Stale() bool {
	ctx.Build.mu.Lock()
	defer ctx.Build.mu.Unlock()
	return ctx.Build.attempt != ctx.attempt || ctx.Build.state != StateRunning
}

// Workspace is a build's artifact store: named byte files kept for the
// retention window ("available for several days within the job's
// workspace", §3.1).
type Workspace struct {
	mu    sync.RWMutex
	files map[string][]byte
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{files: make(map[string][]byte)}
}

// Save stores an artifact.
func (w *Workspace) Save(name string, data []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	w.files[name] = cp
}

// Load retrieves an artifact.
func (w *Workspace) Load(name string) ([]byte, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	data, ok := w.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: no artifact %q", ErrNotFound, name)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// List reports artifact names sorted.
func (w *Workspace) List() []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]string, 0, len(w.files))
	for n := range w.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// purge clears all artifacts (retention expiry).
func (w *Workspace) purge() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.files = make(map[string][]byte)
}
