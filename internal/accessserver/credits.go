package accessserver

import (
	"fmt"
	"sync"
	"time"
)

// Ledger implements the credit system the paper anticipates (§5):
// members earn credits by contributing vantage point resources and spend
// them running experiments, so experimenters lacking hardware for the
// initial setup can still buy access.
//
// Accounting units: one credit buys one device-minute of measurement.
type Ledger struct {
	mu       sync.Mutex
	balances map[string]float64
	history  map[string][]LedgerEntry
}

// LedgerEntry records one credit movement.
type LedgerEntry struct {
	Delta  float64
	Reason string
}

// ContributionRate is the credits earned per vantage-point-hour
// contributed to the platform.
const ContributionRate = 4.0

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		balances: make(map[string]float64),
		history:  make(map[string][]LedgerEntry),
	}
}

// Balance reports a member's credits.
func (l *Ledger) Balance(user string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.balances[user]
}

// History returns a member's ledger entries.
func (l *Ledger) History(user string) []LedgerEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]LedgerEntry{}, l.history[user]...)
}

func (l *Ledger) add(user string, delta float64, reason string) {
	l.balances[user] += delta
	l.history[user] = append(l.history[user], LedgerEntry{Delta: delta, Reason: reason})
}

// CreditContribution awards credits for hosting a vantage point for the
// given duration.
func (l *Ledger) CreditContribution(user, node string, dur time.Duration) float64 {
	earned := ContributionRate * dur.Hours()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.add(user, earned, fmt.Sprintf("hosting %s for %s", node, dur.Round(time.Minute)))
	return earned
}

// Grant adds credits administratively (new-member starter grants).
func (l *Ledger) Grant(user string, credits float64, reason string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.add(user, credits, reason)
}

// ChargeExperiment debits the device-minutes an experiment consumed. It
// fails without mutating the balance when the member cannot cover it.
func (l *Ledger) ChargeExperiment(user string, deviceTime time.Duration) error {
	cost := deviceTime.Minutes()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.balances[user] < cost {
		return fmt.Errorf("accessserver: %s has %.1f credits, needs %.1f",
			user, l.balances[user], cost)
	}
	l.add(user, -cost, fmt.Sprintf("experiment (%s of device time)", deviceTime.Round(time.Second)))
	return nil
}

// CanAfford reports whether user can cover deviceTime of measurement.
func (l *Ledger) CanAfford(user string, deviceTime time.Duration) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.balances[user] >= deviceTime.Minutes()
}
