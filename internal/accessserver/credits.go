package accessserver

import (
	"fmt"
	"sync"
	"time"
)

// Ledger implements the credit system the paper anticipates (§5):
// members earn credits by contributing vantage point resources and spend
// them running experiments, so experimenters lacking hardware for the
// initial setup can still buy access.
//
// Accounting units: one credit buys one device-minute of measurement.
type Ledger struct {
	mu       sync.Mutex
	balances map[string]float64
	history  map[string][]LedgerEntry
	// hook observes every movement (the WAL append when a store is
	// attached). Called under l.mu; it must not re-enter the ledger.
	hook func(user string, e LedgerEntry)
}

// LedgerEntry records one credit movement.
type LedgerEntry struct {
	Delta  float64
	Reason string
}

// ContributionRate is the credits earned per vantage-point-hour
// contributed to the platform.
const ContributionRate = 4.0

// maxLedgerHistory bounds one member's retained entry history: the
// balance is tracked separately and stays exact, but on a long-lived
// deployment the audit trail keeps only the most recent movements —
// otherwise heartbeat-driven contribution accrual would grow history,
// snapshots and restart time without bound.
const maxLedgerHistory = 1000

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		balances: make(map[string]float64),
		history:  make(map[string][]LedgerEntry),
	}
}

// Balance reports a member's credits.
func (l *Ledger) Balance(user string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.balances[user]
}

// History returns a member's ledger entries.
func (l *Ledger) History(user string) []LedgerEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]LedgerEntry{}, l.history[user]...)
}

func (l *Ledger) add(user string, delta float64, reason string) {
	l.balances[user] += delta
	e := LedgerEntry{Delta: delta, Reason: reason}
	h := append(l.history[user], e)
	if len(h) > maxLedgerHistory {
		h = h[len(h)-maxLedgerHistory:]
	}
	l.history[user] = h
	if l.hook != nil {
		l.hook(user, e)
	}
}

// setHook installs the movement observer (the persistence layer's WAL
// append). Replayed history installed via restore never reaches it.
func (l *Ledger) setHook(fn func(user string, e LedgerEntry)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.hook = fn
}

// restore reinstates a member's balance and (bounded) entry history
// from replay. The balance is authoritative — the history may be a
// trimmed tail that no longer sums to it.
func (l *Ledger) restore(user string, balance float64, entries []LedgerEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(entries) > maxLedgerHistory {
		entries = entries[len(entries)-maxLedgerHistory:]
	}
	l.balances[user] = balance
	l.history[user] = append([]LedgerEntry(nil), entries...)
}

// hostingEntry is the ledger entry one contribution flush produces —
// shared by the live credit path and WAL replay so both write the
// identical movement.
func hostingEntry(node string, dur time.Duration) LedgerEntry {
	return LedgerEntry{
		Delta:  ContributionRate * dur.Hours(),
		Reason: fmt.Sprintf("hosting %s for %s", node, dur.Round(time.Minute)),
	}
}

// CreditContribution awards credits for hosting a vantage point for the
// given duration.
func (l *Ledger) CreditContribution(user, node string, dur time.Duration) float64 {
	e := hostingEntry(node, dur)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.add(user, e.Delta, e.Reason)
	return e.Delta
}

// creditHostingQuiet applies a contribution movement without invoking
// the WAL hook: the caller has already written (or is replaying) the
// combined TNodeHostingFlush record that carries it.
func (l *Ledger) creditHostingQuiet(user, node string, dur time.Duration) {
	e := hostingEntry(node, dur)
	l.mu.Lock()
	defer l.mu.Unlock()
	hook := l.hook
	l.hook = nil
	l.add(user, e.Delta, e.Reason)
	l.hook = hook
}

// Grant adds credits administratively (new-member starter grants).
func (l *Ledger) Grant(user string, credits float64, reason string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.add(user, credits, reason)
}

// experimentEntry is the ledger movement one run's device time costs —
// shared by every debit path so they cannot drift apart.
func experimentEntry(deviceTime time.Duration) LedgerEntry {
	return LedgerEntry{
		Delta:  -deviceTime.Minutes(),
		Reason: fmt.Sprintf("experiment (%s of device time)", deviceTime.Round(time.Second)),
	}
}

// ChargeExperiment debits the device-minutes an experiment consumed. It
// fails without mutating the balance when the member cannot cover it.
func (l *Ledger) ChargeExperiment(user string, deviceTime time.Duration) error {
	e := experimentEntry(deviceTime)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.balances[user] < -e.Delta {
		return fmt.Errorf("%w: %s has %.1f credits, needs %.1f",
			ErrInsufficientCredits, user, l.balances[user], -e.Delta)
	}
	l.add(user, e.Delta, e.Reason)
	return nil
}

// DebitExperiment debits the device time an experiment actually
// consumed, even into a negative balance — the run already happened, so
// unlike the submission gate there is nothing left to refuse. Returns
// the new balance.
func (l *Ledger) DebitExperiment(user string, deviceTime time.Duration) float64 {
	e := experimentEntry(deviceTime)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.add(user, e.Delta, e.Reason)
	return l.balances[user]
}

// CanAfford reports whether user can cover deviceTime of measurement.
func (l *Ledger) CanAfford(user string, deviceTime time.Duration) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.balances[user] >= deviceTime.Minutes()
}

// creditGate enforces the §5 economy at submission time: the member
// must be able to cover n experiments' worth of SubmitCharge device
// time. Admins operate the platform rather than buy access and are
// exempt, as is everyone while enforcement is off.
func (s *Server) creditGate(user *User, n int) error {
	if !s.creditsOn.Load() || user.Role == RoleAdmin || user.Role == RolePeer {
		// Peer-relayed builds were charged to their real owner on the
		// home server; double-billing the federation would be a toll.
		return nil
	}
	need := time.Duration(n) * s.cfg.SubmitCharge
	if !s.Ledger.CanAfford(user.Name, need) {
		s.m.creditDenials.Inc()
		return fmt.Errorf("%w: %s has %.1f credits; %d experiment(s) need at least %.1f — contribute vantage point time to earn more",
			ErrInsufficientCredits, user.Name, s.Ledger.Balance(user.Name), n, need.Minutes())
	}
	return nil
}

// chargeRun debits the device time a finished build actually consumed
// (the real §5 charge; the submission gate was only an affordability
// check). The balance may go negative — the device time is spent — and
// the next submission gate catches up with the debtor.
func (s *Server) chargeRun(owner string, deviceTime time.Duration) {
	if !s.creditsOn.Load() || deviceTime <= 0 {
		return
	}
	u, err := s.Users.Lookup(owner)
	if err != nil || u.Role == RoleAdmin {
		return
	}
	s.Ledger.DebitExperiment(owner, deviceTime)
	s.m.runsCharged.Inc()
	s.m.creditsDebited.Add(deviceTime.Minutes())
}
