package accessserver

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func httpRig(t *testing.T) (*rig, *httptest.Server) {
	t.Helper()
	r := newRig(t)
	srv := httptest.NewServer(r.srv.Handler())
	t.Cleanup(srv.Close)
	return r, srv
}

func get(t *testing.T, url, token string) *http.Response {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func post(t *testing.T, url, token string) *http.Response {
	t.Helper()
	req, _ := http.NewRequest(http.MethodPost, url, nil)
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPAuthRequired(t *testing.T) {
	_, srv := httpRig(t)
	resp := get(t, srv.URL+"/api/nodes", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	resp = get(t, srv.URL+"/api/nodes", "wrong-token")
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestHTTPRoleGating(t *testing.T) {
	r, srv := httpRig(t)
	// Tester lacks PermViewConsole.
	resp := get(t, srv.URL+"/api/nodes", r.tst.Token)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("tester console access: %d", resp.StatusCode)
	}
}

func TestHTTPNodesAndDevices(t *testing.T) {
	r, srv := httpRig(t)
	resp := get(t, srv.URL+"/api/nodes", r.exp.Token)
	defer resp.Body.Close()
	var nodes []string
	json.NewDecoder(resp.Body).Decode(&nodes)
	if len(nodes) != 1 || nodes[0] != "node1" {
		t.Fatalf("nodes = %v", nodes)
	}
	resp2 := get(t, srv.URL+"/api/nodes/node1/devices", r.exp.Token)
	defer resp2.Body.Close()
	var devs []string
	json.NewDecoder(resp2.Body).Decode(&devs)
	if len(devs) != 1 {
		t.Fatalf("devices = %v", devs)
	}
}

func TestHTTPBuildFlow(t *testing.T) {
	r, srv := httpRig(t)
	r.srv.CreateJob(r.admin, "demo", Constraints{Node: "node1"},
		func(ctx *BuildContext, done func(error)) {
			ctx.Build.Workspace().Save("out.csv", []byte("1,2"))
			ctx.Logf("hello from demo")
			done(nil)
		})

	resp := post(t, srv.URL+"/api/jobs/demo/build", r.exp.Token)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("build trigger: %d", resp.StatusCode)
	}
	var out struct {
		Build int    `json:"build"`
		State string `json:"state"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	if out.Build == 0 {
		t.Fatalf("build id = %d", out.Build)
	}

	resp2 := get(t, srv.URL+"/api/builds/1", r.exp.Token)
	defer resp2.Body.Close()
	var st struct {
		State string `json:"state"`
	}
	json.NewDecoder(resp2.Body).Decode(&st)
	if st.State != "success" {
		t.Fatalf("state = %q", st.State)
	}

	resp3 := get(t, srv.URL+"/api/builds/1/log", r.exp.Token)
	defer resp3.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp3.Body.Read(buf)
	if got := string(buf[:n]); !contains(got, "hello from demo") {
		t.Fatalf("log = %q", got)
	}

	resp4 := get(t, srv.URL+"/api/builds/1/artifacts", r.exp.Token)
	defer resp4.Body.Close()
	var arts []string
	json.NewDecoder(resp4.Body).Decode(&arts)
	if len(arts) != 1 || arts[0] != "out.csv" {
		t.Fatalf("artifacts = %v", arts)
	}
}

func TestHTTPApproveFlow(t *testing.T) {
	r, srv := httpRig(t)
	r.srv.CreateJob(r.exp, "needs", Constraints{Node: "node1"},
		func(ctx *BuildContext, done func(error)) { done(nil) })

	// Experimenter cannot approve over HTTP either.
	resp := post(t, srv.URL+"/api/jobs/needs/approve", r.exp.Token)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("experimenter approve: %d", resp.StatusCode)
	}
	resp = post(t, srv.URL+"/api/jobs/needs/approve", r.admin.Token)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin approve: %d", resp.StatusCode)
	}
	resp = post(t, srv.URL+"/api/jobs/needs/build", r.exp.Token)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("build after approval: %d", resp.StatusCode)
	}
}

func TestHTTPBadBuildID(t *testing.T) {
	r, srv := httpRig(t)
	resp := get(t, srv.URL+"/api/builds/abc", r.exp.Token)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	resp = get(t, srv.URL+"/api/builds/999", r.exp.Token)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(len(s) > 0 && indexOf(s, sub) >= 0))
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
