package accessserver

import (
	"fmt"
	"sort"
	"time"

	"batterylab/internal/accessserver/store"
	"batterylab/internal/simclock"
)

// Node lifecycle & fault tolerance. Vantage points are Raspberry Pis on
// home networks: they crash, hang and drop off SSH, and the paper's
// operational sibling ("Hot or not?") shows such failures are routine
// at fleet scale. The scheduler therefore tracks a health state per
// node, derived from heartbeats on the server clock:
//
//	online    recent heartbeat; dispatchable
//	suspect   one missed-beat window; no new dispatch, leases intact
//	offline   beats stopped; no dispatch, running leases break
//	draining  admin-requested; no new dispatch, running builds finish
//
// Health tracking is armed per node with MonitorNode (or the
// RegisterNode shorthand): a monitored node gets a heartbeat probe
// ticker on the server clock — deterministic under the virtual clock,
// since probes of in-process nodes (Pinger) run synchronously on the
// clock-dispatch goroutine. Nodes registered through the plain
// Nodes.Register path stay unmonitored and are treated as always
// online, the pre-health behavior every single-node test relies on.

// Health is a node's lifecycle state.
type Health int

// Health states.
const (
	HealthOnline Health = iota
	HealthSuspect
	HealthOffline
	HealthDraining
)

func (h Health) String() string {
	switch h {
	case HealthOnline:
		return "online"
	case HealthSuspect:
		return "suspect"
	case HealthOffline:
		return "offline"
	default:
		return "draining"
	}
}

// Pinger is implemented by node handles that can answer a cheap
// liveness probe without a network round trip (LocalNode, FlakyNode).
// The heartbeat ticker probes Pinger nodes synchronously on the clock
// goroutine — the deterministic path — and everything else (sshx
// remotes) asynchronously, one probe in flight per node.
type Pinger interface {
	Ping() error
}

// NodeStatus is the introspection snapshot of one node's lifecycle
// state, served by GET /api/v1/nodes/{name}.
type NodeStatus struct {
	Name          string
	Health        Health
	Monitored     bool
	Draining      bool
	Removed       bool
	LastHeartbeat time.Time
	// Running counts builds currently leased to the node; Queued counts
	// queued builds whose preferred node it is.
	Running int
	Queued  int
	// Devices is the cached device list of a monitored node (captured
	// at MonitorNode time) — status surfaces serve it instead of a live
	// list_devices round trip, which could hang on a sick node.
	Devices []string
	// Reliability telemetry feeding score-based placement: Beats
	// counts recorded heartbeats, Flaps counts returns from a
	// suspect/offline silence, and Failovers counts builds the
	// scheduler reclaimed from the node.
	Beats     int64
	Flaps     int64
	Failovers int64
}

// nodeRec is the server's per-node lifecycle record: heartbeat clock,
// drain/remove flags, the cached device list used for fallback
// placement, and the CPU probe cache that replaced the
// probe-while-holding-s.mu dispatch path. Guarded by s.mu.
type nodeRec struct {
	name      string
	monitored bool
	draining  bool
	removed   bool
	lastBeat  time.Time
	ticker    *simclock.Ticker
	pinging   bool // async liveness probe in flight
	running   int  // builds currently leased to this node
	// owner is the member who hosts this vantage point; while set, the
	// heartbeat stream accrues them §5 contribution credits for the
	// node's online time. owedHosting accumulates attested online time
	// between ledger flushes, so the ledger gets one coalesced entry
	// per contributionFlushEvery of hosting instead of one per beat.
	owner       string
	owedHosting time.Duration

	// Reliability telemetry for score-based placement. beats counts
	// recorded heartbeats; flaps counts beats that ended a
	// suspect/offline silence (the node "came back"); failovers counts
	// builds the scheduler reclaimed from this node via a lease break.
	// lastFlap is when the node last returned from silence — placement
	// treats a node inside one offline window of its last flap as
	// "recently suspect" and ranks it below a steady peer.
	beats     int64
	flaps     int64
	failovers int64
	lastFlap  time.Time

	// devices is the fallback-placement cache, refreshed when the node
	// is (re)monitored — device attach/detach between registrations is
	// rare and a stale entry only costs one failed run.
	devices []string

	// CPU probe cache for RequireLowCPU dispatch: the scheduler never
	// blocks on Exec("status") under s.mu; it reads this cache and
	// launches at most one probe per node to refresh it. cpuProbeAt
	// bounds the in-flight latch: a probe stuck on a half-open
	// connection is written off after OfflineAfter and a fresh one may
	// launch (the late result, if any, just refreshes the cache).
	cpuPct     float64
	cpuAt      time.Time
	cpuOK      bool
	cpuProbing bool
	cpuProbeAt time.Time
}

// recLocked resolves (creating on first sight) a node's lifecycle
// record. Callers hold s.mu.
func (s *Server) recLocked(name string) *nodeRec {
	rec, ok := s.nodeRecs[name]
	if !ok {
		rec = &nodeRec{name: name, lastBeat: s.clock.Now()}
		s.nodeRecs[name] = rec
	}
	return rec
}

// healthLocked computes a node's state at now. Offline outranks
// draining: a node that dies mid-drain must still break its build
// leases — draining only labels the alive states, where its meaning
// (no new dispatch, running builds finish) applies. Callers hold s.mu.
func (s *Server) healthLocked(rec *nodeRec, now time.Time) Health {
	if rec == nil {
		return HealthOnline // unmonitored, never drained: pre-health behavior
	}
	if rec.removed {
		return HealthOffline
	}
	if rec.monitored && now.Sub(rec.lastBeat) >= s.cfg.OfflineAfter {
		return HealthOffline
	}
	if rec.draining {
		return HealthDraining
	}
	if !rec.monitored {
		return HealthOnline
	}
	if now.Sub(rec.lastBeat) < s.cfg.SuspectAfter {
		return HealthOnline
	}
	return HealthSuspect
}

// MonitorNode arms heartbeat-driven health tracking for a registered
// node: an initial beat is recorded, the device list is cached for
// fallback placement, and a probe ticker starts on the server clock.
// Idempotent.
func (s *Server) MonitorNode(name string) error {
	if _, err := s.Nodes.Get(name); err != nil {
		return err
	}
	// Cache the device list outside s.mu: this is the one network round
	// trip of monitoring, paid at arm time, never at dispatch time.
	// Fallback placement depends on this cache, so a node that cannot
	// enumerate its devices is not silently armed with an empty one.
	devices, err := s.Nodes.Devices(name)
	if err != nil {
		return fmt.Errorf("monitoring %q: listing devices: %w", name, err)
	}

	s.mu.Lock()
	rec := s.recLocked(name)
	rec.removed = false
	rec.devices = devices
	rec.lastBeat = s.clock.Now()
	if rec.monitored {
		s.publishNodesLocked()
		s.mu.Unlock()
		return nil
	}
	// A fresh arm ends any previous drain lifecycle: re-registering a
	// serviced node must put it back in rotation, not leave it
	// silently undispatchable behind a stale drain flag.
	rec.draining = false
	rec.monitored = true
	rec.ticker = simclock.NewTicker(s.clock, s.cfg.HeartbeatEvery, func(time.Time) {
		s.probeNode(name)
	})
	s.logStore(store.Record{T: store.TNodeMonitored, Node: &store.NodeRec{
		Name: name, Owner: rec.owner, Monitored: true, Devices: append([]string(nil), devices...),
	}})
	s.publishNodesLocked()
	s.mu.Unlock()
	return nil
}

// SetNodeOwner records which member hosts a vantage point; their ledger
// accrues contribution credits for the node's heartbeat-attested online
// time ("" stops accrual). Hosting time accrued but not yet flushed is
// credited to the outgoing owner first — a transfer must not hand the
// predecessor's earned time to the successor. Programmatic deployment
// configuration, like MonitorNode.
func (s *Server) SetNodeOwner(name, owner string) {
	s.mu.Lock()
	rec := s.recLocked(name)
	if prev := rec.owner; prev != owner {
		s.flushHostingLocked(rec, prev)
	}
	rec.owner = owner
	s.logStore(store.Record{T: store.TNodeOwner, Name: name, Owner: owner})
	s.mu.Unlock()
}

// RegisterNode registers a node and arms health monitoring — the
// deployment path. (Nodes.Register alone keeps the legacy
// always-online semantics.)
func (s *Server) RegisterNode(n Node) error {
	if err := s.Nodes.Register(n); err != nil {
		return err
	}
	if err := s.MonitorNode(n.Name()); err != nil {
		return err
	}
	s.dispatch()
	return nil
}

// probeNode is one heartbeat probe. Pinger nodes answer synchronously
// (deterministic under the virtual clock); others are probed on a
// goroutine with at most one probe in flight, so a hung node can never
// stall the ticker — its beats simply stop and it ages into suspect
// and then offline.
func (s *Server) probeNode(name string) {
	n, err := s.Nodes.Get(name)
	if err != nil {
		return // unregistered: no beat
	}
	if p, ok := n.(Pinger); ok {
		if p.Ping() == nil {
			s.Heartbeat(name)
		}
		return
	}
	s.mu.Lock()
	rec := s.recLocked(name)
	if rec.pinging {
		s.mu.Unlock()
		return
	}
	rec.pinging = true
	s.mu.Unlock()
	go func() {
		_, err := n.Exec("ping")
		s.mu.Lock()
		rec.pinging = false
		s.mu.Unlock()
		if err == nil {
			s.Heartbeat(name)
		}
	}()
}

// contributionFlushEvery is how much attested hosting time accumulates
// before it lands in the ledger as one coalesced contribution entry
// (15 minutes = 1 credit at ContributionRate). Per-beat entries would
// grow the ledger history, the WAL and every snapshot by thousands of
// rows per node-day for no audit value.
const contributionFlushEvery = 15 * time.Minute

// flushHostingLocked credits a node's accrued hosting time to owner
// and zeroes the accrual, writing the single combined WAL record —
// zeroing and credit replay together or not at all, so a crash can
// neither double-pay nor drop one half. Callers hold s.mu (the lock
// order snapshot compaction cuts under).
func (s *Server) flushHostingLocked(rec *nodeRec, owner string) {
	dur := rec.owedHosting
	if owner == "" || dur <= 0 {
		rec.owedHosting = 0
		return
	}
	rec.owedHosting = 0
	s.Ledger.creditHostingQuiet(owner, rec.name, dur)
	s.logStore(store.Record{T: store.TNodeHostingFlush, Name: rec.name, Owner: owner, AtNS: int64(dur)})
}

// Heartbeat records a liveness beat for a node on the server clock.
// A beat that brings the node back online re-kicks the queue so its
// pending builds dispatch immediately; steady-state beats of an
// already-online node change no placement decision and skip the scan.
// For owned nodes each beat also accrues the owner's §5 contribution
// time: the time since the previous beat, attested online time,
// capped at the offline window so a node that vanished for a week does
// not earn the gap when it returns. Accrued time is credited to the
// ledger in contributionFlushEvery lumps.
func (s *Server) Heartbeat(name string) {
	s.m.heartbeats.Inc()
	now := s.clock.Now()
	s.mu.Lock()
	rec := s.recLocked(name)
	wasOnline := s.healthLocked(rec, now) == HealthOnline
	rec.beats++
	// A beat that ends a silence window is a flap: the node was
	// suspect or offline (by missed beats — drain and removal are
	// admin states, not flaps) and came back. Placement holds that
	// against it — sharply while recent, lightly forever via the
	// lifetime count.
	if rec.monitored && now.Sub(rec.lastBeat) >= s.cfg.SuspectAfter {
		rec.flaps++
		rec.lastFlap = now
	}
	if rec.owner != "" && rec.monitored {
		if d := now.Sub(rec.lastBeat); d > 0 {
			if d > s.cfg.OfflineAfter {
				d = s.cfg.OfflineAfter
			}
			rec.owedHosting += d
		}
		if rec.owedHosting >= contributionFlushEvery {
			s.flushHostingLocked(rec, rec.owner)
		}
	}
	rec.lastBeat = now
	pending := len(s.queue)
	s.publishNodesLocked()
	s.mu.Unlock()
	if pending > 0 && !wasOnline {
		s.dispatch()
	}
}

// DrainNode stops new dispatch to a node while letting its running
// builds finish — the maintenance workflow before unplugging a Pi. The
// user needs PermManageNodes.
func (s *Server) DrainNode(user *User, name string) error {
	if !Allowed(user.Role, PermManageNodes) {
		return fmt.Errorf("%w: %s (%s) may not manage nodes", ErrForbidden, user.Name, user.Role)
	}
	if _, err := s.Nodes.Get(name); err != nil {
		return err
	}
	s.mu.Lock()
	s.recLocked(name).draining = true
	s.logStore(store.Record{T: store.TNodeDrain, Name: name, Draining: true})
	s.publishNodesLocked()
	s.mu.Unlock()
	return nil
}

// UndrainNode reopens a drained node for dispatch. The user needs
// PermManageNodes.
func (s *Server) UndrainNode(user *User, name string) error {
	if !Allowed(user.Role, PermManageNodes) {
		return fmt.Errorf("%w: %s (%s) may not manage nodes", ErrForbidden, user.Name, user.Role)
	}
	if _, err := s.Nodes.Get(name); err != nil {
		return err
	}
	s.mu.Lock()
	s.recLocked(name).draining = false
	s.logStore(store.Record{T: store.TNodeDrain, Name: name, Draining: false})
	s.publishNodesLocked()
	s.mu.Unlock()
	s.dispatch()
	return nil
}

// RemoveNode unregisters a node: new dispatch stops immediately,
// running builds finish (their lease is not broken — removal is an
// admin decision, not a failure), and queued builds that were pinned to
// it fail with ErrNodeLost unless fallback placement can move them.
// The user needs PermManageNodes.
func (s *Server) RemoveNode(user *User, name string) error {
	if !Allowed(user.Role, PermManageNodes) {
		return fmt.Errorf("%w: %s (%s) may not manage nodes", ErrForbidden, user.Name, user.Role)
	}
	if err := s.Nodes.Remove(name); err != nil {
		return err
	}
	s.mu.Lock()
	rec := s.recLocked(name)
	rec.removed = true
	rec.monitored = false
	// Removal ends the drain lifecycle: a future registration of this
	// name starts fresh instead of inheriting an undispatchable state.
	rec.draining = false
	if rec.ticker != nil {
		rec.ticker.Stop()
		rec.ticker = nil
	}
	// Final contribution flush: hosting time accrued below the lump
	// threshold still belongs to the owner.
	s.flushHostingLocked(rec, rec.owner)
	s.logStore(store.Record{T: store.TNodeRemoved, Name: name})
	kept := s.queue[:0]
	for _, b := range s.queue {
		cons, _, err := s.pipelineLocked(b)
		if err == nil && cons.Node == name && !cons.Fallback {
			// terminateLocked closes the feed through the hub (a leaf
			// lock, safe under s.mu) — no post-unlock close list.
			s.terminateLocked(b, fmt.Errorf("%w: node %q removed while build %d was queued", ErrNodeLost, name, b.ID))
			continue
		}
		kept = append(kept, b)
	}
	s.queue = kept
	s.publishNodesLocked()
	s.mu.Unlock()
	s.dispatch() // fallback builds re-place onto survivors
	return nil
}

// NodeHealth reports a node's lifecycle snapshot. Unregistered,
// never-seen nodes report offline with a zero LastHeartbeat.
func (s *Server) NodeHealth(name string) NodeStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nodeStatusLocked(name)
}

// HealthOf reports a node's lifecycle state plus, for monitored nodes,
// the cached device list — O(1), no queue scan and no network round
// trip. The fleet listing uses it; NodeHealth serves the full
// snapshot. monitored=false means the caller must list devices live if
// it wants them.
func (s *Server) HealthOf(name string) (health Health, devices []string, monitored bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	registered := false
	if _, err := s.Nodes.Get(name); err == nil {
		registered = true
	}
	rec := s.nodeRecs[name]
	if rec == nil {
		if registered {
			return HealthOnline, nil, false
		}
		return HealthOffline, nil, false
	}
	// A removed node that reappeared through the plain registry path is
	// back: clear the tombstone so it is not reported (and skipped by
	// placement) as removed forever.
	if rec.removed && registered {
		rec.removed = false
	}
	if !registered && !rec.removed {
		return HealthOffline, nil, rec.monitored
	}
	return s.healthLocked(rec, s.clock.Now()), append([]string(nil), rec.devices...), rec.monitored
}

func (s *Server) nodeStatusLocked(name string) NodeStatus {
	queued := 0
	for _, b := range s.queue {
		if cons, _, err := s.pipelineLocked(b); err == nil && cons.Node == name {
			queued++
		}
	}
	st, _ := s.nodeEntryLocked(name, queued)
	return st
}

// nodeEntryLocked builds one node's lifecycle snapshot given its
// precomputed queued-build count, and reports whether the node is
// currently registered. Census publication calls it once per node after
// a single queue scan; nodeStatusLocked wraps it for one-off lookups.
// Callers hold s.mu.
func (s *Server) nodeEntryLocked(name string, queued int) (NodeStatus, bool) {
	now := s.clock.Now()
	st := NodeStatus{Name: name}
	rec := s.nodeRecs[name]
	registered := false
	if _, err := s.Nodes.Get(name); err == nil {
		registered = true
	}
	if rec == nil {
		if registered {
			st.Health = HealthOnline
		} else {
			st.Health = HealthOffline
		}
		return st, registered
	}
	if rec.removed && registered {
		rec.removed = false // node re-registered after removal
	}
	st.Monitored = rec.monitored
	st.Draining = rec.draining
	st.Removed = rec.removed
	st.LastHeartbeat = rec.lastBeat
	st.Running = rec.running
	st.Queued = queued
	st.Devices = append([]string(nil), rec.devices...)
	st.Beats = rec.beats
	st.Flaps = rec.flaps
	st.Failovers = rec.failovers
	if !registered && !rec.removed {
		st.Health = HealthOffline
	} else {
		st.Health = s.healthLocked(rec, now)
	}
	return st, registered
}

// NodeStatuses snapshots every known node (registered or remembered),
// sorted by name.
func (s *Server) NodeStatuses() []NodeStatus {
	names := map[string]bool{}
	for _, n := range s.Nodes.List() {
		names[n] = true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for n := range s.nodeRecs {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	out := make([]NodeStatus, 0, len(sorted))
	for _, n := range sorted {
		out = append(out, s.nodeStatusLocked(n))
	}
	return out
}
