package accessserver

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"batterylab/internal/accessserver/feedhub"
	"batterylab/internal/api"
)

// waitGauge polls fn until it reports want or the deadline passes.
func waitGauge(t *testing.T, want int64, fn func() int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if fn() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("gauge = %d, want %d", fn(), want)
}

// TestFeedPlaneLockFree is the control/data plane split's acceptance
// test: with 100 streaming subscribers attached and a thousand status
// polls in flight, the scheduler mutex is never acquired. Streaming
// resolves through the feed hub, status reads come off the snapshot
// plane, and the instrumented scheduler lock counts every acquisition —
// the delta across the read flood must be exactly zero.
func TestFeedPlaneLockFree(t *testing.T) {
	v := newV1Rig(t)
	target := v.queueBuild(t, v.exp) // live feed, stays queued

	// Attach 100 streaming subscribers (half events, half samples).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		path := fmt.Sprintf("/api/v1/builds/%d/events", target)
		if i%2 == 1 {
			path = fmt.Sprintf("/api/v1/builds/%d/samples", target)
		}
		req, err := http.NewRequestWithContext(ctx, "GET", v.ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+v.admin.Token)
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return // canceled at teardown
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
		}()
	}
	defer wg.Wait()
	defer cancel() // unblock the streams before wg.Wait and ts.Close
	waitGauge(t, 100, v.srv.m.feedSubscribers.Value)

	// The flood: a thousand reads across the hot routes. None may touch
	// s.mu. (Deliberately not GET /api/v1/metrics — the scheduler
	// collector reports queue depth from under the lock by design.)
	before := v.srv.SchedLockAcquisitions()
	paths := []string{
		fmt.Sprintf("/api/v1/builds/%d", target),
		fmt.Sprintf("/api/v1/builds/%d", v.doneBuild),
		"/api/v1/nodes",
		"/api/v1/nodes/node1",
		fmt.Sprintf("/api/v1/campaigns/%d", v.campaign),
	}
	const workers = 8
	var polls atomic.Int64
	var pwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		pwg.Add(1)
		go func(w int) {
			defer pwg.Done()
			for i := 0; i < 1000/workers; i++ {
				resp := v.request(t, "GET", paths[(w+i)%len(paths)], v.admin.Token, "")
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("poll %s: status %d", paths[(w+i)%len(paths)], resp.StatusCode)
					return
				}
				polls.Add(1)
			}
		}(w)
	}
	pwg.Wait()
	if n := polls.Load(); n < 1000 {
		t.Fatalf("completed %d polls, want >= 1000", n)
	}
	if after := v.srv.SchedLockAcquisitions(); after != before {
		t.Fatalf("scheduler lock acquired %d times during read flood, want 0", after-before)
	}
}

// stateRank orders wire states along a build's lifecycle; monotonic
// reads mean no client may ever observe the rank decrease.
func stateRank(t *testing.T, st string) int {
	switch st {
	case StateQueued.String():
		return 0
	case StateRunning.String():
		return 1
	case StateSuccess.String(), StateFailure.String(), StateAborted.String():
		return 2
	case api.StateExpired:
		return 3
	}
	t.Errorf("unknown wire state %q", st)
	return -1
}

// TestMonotonicReadsDuringChurn drives a thousand concurrent status
// polls while the scheduler churns (submits finishing builds, aborts
// queued ones) and asserts every poller sees each build's state move
// forward only. Snapshots are republished inside the scheduler's
// critical sections, so a transition can never be observed out of
// order — the regression this guards against is a publisher moved
// outside the lock.
func TestMonotonicReadsDuringChurn(t *testing.T) {
	v := newV1Rig(t)

	const nBuilds = 10
	ids := make([]int, nBuilds)
	for i := range ids {
		ids[i] = v.queueBuild(t, v.exp)
	}

	start := make(chan struct{})
	var wg sync.WaitGroup

	// 4 pollers per build x 25 polls each = 1000 polls.
	for _, id := range ids {
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				<-start
				last := -1
				for i := 0; i < 25; i++ {
					resp := v.request(t, "GET", fmt.Sprintf("/api/v1/builds/%d", id), v.admin.Token, "")
					var st api.BuildStatus
					err := json.NewDecoder(resp.Body).Decode(&st)
					resp.Body.Close()
					if err != nil {
						t.Errorf("build %d: decode: %v", id, err)
						return
					}
					r := stateRank(t, string(st.State))
					if r < last {
						t.Errorf("build %d: state went backwards (rank %d after %d)", id, r, last)
						return
					}
					last = r
				}
			}(id)
		}
	}

	// Churn: abort the queued builds from two goroutines while two more
	// submit node1 builds that run to completion, exercising the full
	// queued->running->terminal publish chain under contention.
	var churn sync.WaitGroup
	for g := 0; g < 2; g++ {
		churn.Add(1)
		go func(g int) {
			defer churn.Done()
			<-start
			for i := g; i < nBuilds; i += 2 {
				if err := v.srv.Abort(v.admin, ids[i]); err != nil {
					t.Errorf("abort %d: %v", ids[i], err)
				}
			}
		}(g)
		churn.Add(1)
		go func() {
			defer churn.Done()
			<-start
			for i := 0; i < 5; i++ {
				if _, err := v.srv.SubmitSpec(v.exp, v.spec("node1")); err != nil {
					t.Errorf("submit: %v", err)
				}
			}
		}()
	}
	close(start)
	churn.Wait()
	wg.Wait()

	// Settled: every ghost build reads aborted from the snapshot plane.
	for _, id := range ids {
		st, ok := v.srv.reads.buildStatus(id)
		if !ok || st.State != StateAborted.String() {
			t.Fatalf("build %d: snapshot = %+v, %v; want aborted", id, st, ok)
		}
	}
}

// TestFeedCloseChurnRace is the lock-ordering regression test for the
// old "close the feed after releasing s.mu" contract: subscribers
// attach and drain feeds through the hub while builds are concurrently
// aborted, finished and — after the churn — expired by retention. Feed
// close now happens inside the scheduler's critical sections (the hub
// is a leaf lock), so under -race this must be quiet and no subscriber
// may hang on a feed whose close it missed.
func TestFeedCloseChurnRace(t *testing.T) {
	v := newV1Rig(t)
	hub := v.srv.FeedHub()

	const nBuilds = 16
	ids := make([]int, nBuilds)
	for i := range ids {
		ids[i] = v.queueBuild(t, v.exp)
	}

	start := make(chan struct{})
	var subs sync.WaitGroup
	for _, id := range ids {
		for s := 0; s < 2; s++ {
			subs.Add(1)
			go func(id int) {
				defer subs.Done()
				<-start
				cursor := 0
				for {
					f, _, st := hub.Resolve(id)
					if st != feedhub.StatusLive {
						return // evicted while we looped: fine
					}
					evs, closed, changed := f.EventsSince(cursor)
					cursor += len(evs)
					if closed {
						if more, _, _ := f.EventsSince(cursor); len(more) == 0 {
							return
						}
						continue
					}
					select {
					case <-changed:
					case <-time.After(50 * time.Millisecond):
					}
				}
			}(id)
		}
	}

	var churn sync.WaitGroup
	for g := 0; g < 4; g++ {
		churn.Add(1)
		go func(g int) {
			defer churn.Done()
			<-start
			for i := g; i < nBuilds; i += 4 {
				if err := v.srv.Abort(v.admin, ids[i]); err != nil {
					t.Errorf("abort %d: %v", ids[i], err)
				}
			}
			// Finish path: a build that runs to completion closes its
			// feed under s.mu on the settlement path.
			if _, err := v.srv.SubmitSpec(v.exp, v.spec("node1")); err != nil {
				t.Errorf("submit: %v", err)
			}
		}(g)
	}
	close(start)
	churn.Wait()
	subs.Wait()

	for _, id := range ids {
		if !hub.Feed(id).Closed() {
			t.Fatalf("build %d: feed still open after churn", id)
		}
	}

	// Expiry: retention eviction (hub.Remove) races fresh subscribers
	// resolving the same ids.
	var late sync.WaitGroup
	for _, id := range ids {
		late.Add(1)
		go func(id int) {
			defer late.Done()
			for {
				f, _, st := hub.Resolve(id)
				if st == feedhub.StatusExpired {
					return
				}
				if st == feedhub.StatusUnknown {
					t.Errorf("build %d: resolved unknown, want live or expired", id)
					return
				}
				f.EventsSince(0)
				time.Sleep(time.Millisecond)
			}
		}(id)
	}
	v.clk.Advance(v.srv.cfg.Retention + time.Hour)
	late.Wait()

	if _, _, st := hub.Resolve(ids[0]); st != feedhub.StatusExpired {
		t.Fatalf("post-retention resolve = %v, want expired", st)
	}
}

// TestInvalidCursorTyped: garbage ?from= cursors on the streaming
// routes return the typed invalid_cursor envelope at 400, so a
// reconnecting client can distinguish "my cursor is junk, restart at
// zero" from a transport failure.
func TestInvalidCursorTyped(t *testing.T) {
	v := newV1Rig(t)
	for _, tc := range []string{
		fmt.Sprintf("/api/v1/builds/%d/events?from=abc", v.doneBuild),
		fmt.Sprintf("/api/v1/builds/%d/events?from=-1", v.doneBuild),
		fmt.Sprintf("/api/v1/builds/%d/samples?from=abc", v.doneBuild),
		fmt.Sprintf("/api/v1/builds/%d/samples?from=-7", v.doneBuild),
	} {
		resp := v.request(t, "GET", tc, v.admin.Token, "")
		var env api.Envelope
		err := json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: decode: %v", tc, err)
		}
		if resp.StatusCode != 400 {
			t.Errorf("%s: status %d, want 400", tc, resp.StatusCode)
		}
		if env.Error == nil || env.Error.Code != api.CodeInvalidCursor {
			t.Errorf("%s: envelope = %+v, want code %q", tc, env.Error, api.CodeInvalidCursor)
		}
	}

	// A valid cursor on a finished build replays and ends cleanly.
	resp := v.request(t, "GET", fmt.Sprintf("/api/v1/builds/%d/events?from=0", v.doneBuild), v.admin.Token, "")
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("valid cursor: status %d", resp.StatusCode)
	}
}
