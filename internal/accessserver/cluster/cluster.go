// Package cluster is the access server's federation membership layer: a
// registry of peer servers that joined the testbed over the v1 cluster
// routes, each authenticated by a shared cluster token and kept alive by
// heartbeat announces that double as node-census exchange.
//
// The registry follows the same discipline as the health subsystem's
// node lifecycle: a peer's state (online/suspect/offline) is derived
// from the age of its last heartbeat against the same suspect/offline
// thresholds nodes use, never stored — a silent peer ages into suspect
// and then offline without any write. Reads come off an immutable
// copy-on-write snapshot behind an atomic pointer, so GET /api/v1/cluster
// and the scheduler's remote-candidate scan never contend with announce
// processing, and neither ever touches the scheduler mutex.
//
// Membership (name + URL) is durable — the access server persists it as
// WAL records and restores it at startup — while heartbeat liveness and
// the advertised census are ephemeral: a restored peer starts offline
// and returns to service with its first live announce.
package cluster

import (
	"crypto/subtle"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"batterylab/internal/api"
)

// State is a peer's heartbeat-derived lifecycle state, mirroring the
// health subsystem's model for nodes.
type State int

// Peer states.
const (
	StateOnline State = iota
	StateSuspect
	StateOffline
)

func (s State) String() string {
	switch s {
	case StateOnline:
		return "online"
	case StateSuspect:
		return "suspect"
	default:
		return "offline"
	}
}

// Config parameterizes a registry.
type Config struct {
	// Self is this server's cluster-unique name.
	Self string
	// URL is the base URL this server advertises to its peers.
	URL string
	// Token is the shared cluster secret; announces must present it.
	Token string
	// SuspectAfter and OfflineAfter are the heartbeat-age thresholds, the
	// same values the health subsystem applies to nodes.
	SuspectAfter time.Duration
	OfflineAfter time.Duration
}

// Peer is one peer's immutable snapshot. State is not stored here —
// derive it from LastBeat via Registry.state at read time.
type Peer struct {
	Name string
	URL  string
	// LastBeat is the local-clock time of the peer's last announce (zero
	// for a membership restored from the WAL that has not re-announced).
	LastBeat time.Time
	// Nodes is the census the peer advertised on its last announce.
	Nodes []api.PeerNode
}

// Candidate is one remote vantage point eligible for placement: a node
// an online peer advertised in its latest census.
type Candidate struct {
	Peer    string
	PeerURL string
	Node    api.PeerNode
}

// Registry is the peer membership table. Writers serialize on mu;
// readers load the copy-on-write snapshot and never block.
type Registry struct {
	cfg Config

	mu    sync.Mutex
	peers map[string]*Peer
	// reported is each peer's state at the last Sweep, for edge
	// detection (online -> suspect transitions trigger failover).
	reported map[string]State

	view atomic.Pointer[[]Peer]
}

// New returns an empty registry.
func New(cfg Config) *Registry {
	r := &Registry{
		cfg:      cfg,
		peers:    make(map[string]*Peer),
		reported: make(map[string]State),
	}
	empty := []Peer{}
	r.view.Store(&empty)
	return r
}

// Configure sets the registry's identity and shared secret — for
// daemons and tests that build the server first and learn the cluster
// flags after. Empty arguments keep the current value. Boot-time only:
// call before the server takes traffic or the announce loop starts;
// identity is read lock-free everywhere else.
func (r *Registry) Configure(self, url, token string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if self != "" {
		r.cfg.Self = self
	}
	if url != "" {
		r.cfg.URL = url
	}
	if token != "" {
		r.cfg.Token = token
	}
}

// Self reports this server's cluster name.
func (r *Registry) Self() string { return r.cfg.Self }

// URL reports this server's advertised base URL.
func (r *Registry) URL() string { return r.cfg.URL }

// Token reports the shared cluster secret (used as the bearer token on
// outbound peer calls).
func (r *Registry) Token() string { return r.cfg.Token }

// Authorize reports whether tok is the cluster token. Constant-time;
// always false when no token is configured (federation disabled).
func (r *Registry) Authorize(tok string) bool {
	if r.cfg.Token == "" || tok == "" {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(tok), []byte(r.cfg.Token)) == 1
}

// state derives a peer's lifecycle state from its last beat at now.
func (r *Registry) state(p Peer, now time.Time) State {
	if p.LastBeat.IsZero() || now.Sub(p.LastBeat) >= r.cfg.OfflineAfter {
		return StateOffline
	}
	if now.Sub(p.LastBeat) >= r.cfg.SuspectAfter {
		return StateSuspect
	}
	return StateOnline
}

// publishLocked rebuilds the read snapshot. Callers hold r.mu.
func (r *Registry) publishLocked() {
	list := make([]Peer, 0, len(r.peers))
	for _, p := range r.peers {
		list = append(list, *p)
	}
	sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
	r.view.Store(&list)
}

// Announce upserts a peer from a live (token-checked) announce: the
// membership, the heartbeat and the census all refresh. isNew reports
// first contact with this peer name — the caller persists membership
// then.
func (r *Registry) Announce(ann api.PeerAnnounce, now time.Time) (isNew bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.peers[ann.Name]
	if !ok {
		p = &Peer{Name: ann.Name}
		r.peers[ann.Name] = p
		isNew = true
	}
	if p.URL != ann.URL && ann.URL != "" {
		if !isNew {
			isNew = true // URL moved: re-persist membership
		}
		p.URL = ann.URL
	}
	p.LastBeat = now
	p.Nodes = append([]api.PeerNode(nil), ann.Nodes...)
	r.publishLocked()
	return isNew
}

// Restore re-adds a peer from persisted membership (WAL replay). The
// peer starts with no heartbeat — offline — and returns to service on
// its first live announce.
func (r *Registry) Restore(name, url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.peers[name]; !ok {
		r.peers[name] = &Peer{Name: name, URL: url}
	} else {
		r.peers[name].URL = url
	}
	r.publishLocked()
}

// Remove drops a peer's membership entirely.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.peers[name]; !ok {
		return false
	}
	delete(r.peers, name)
	delete(r.reported, name)
	r.publishLocked()
	return true
}

// Peers returns the immutable membership snapshot, sorted by name.
func (r *Registry) Peers() []Peer { return *r.view.Load() }

// Peer returns one peer's immutable snapshot by name.
func (r *Registry) Peer(name string) (Peer, bool) {
	for _, p := range *r.view.Load() {
		if p.Name == name {
			return p, true
		}
	}
	return Peer{}, false
}

// PeerState reports one peer's derived state and URL.
func (r *Registry) PeerState(name string, now time.Time) (State, string, bool) {
	for _, p := range *r.view.Load() {
		if p.Name == name {
			return r.state(p, now), p.URL, true
		}
	}
	return StateOffline, "", false
}

// View renders the wire-form cluster view at now. Lock-free: one atomic
// load plus per-peer state derivation.
func (r *Registry) View(now time.Time) api.ClusterView {
	peers := *r.view.Load()
	out := api.ClusterView{Self: r.cfg.Self, URL: r.cfg.URL}
	for _, p := range peers {
		ps := api.PeerStatus{
			Name:  p.Name,
			URL:   p.URL,
			State: r.state(p, now).String(),
			Nodes: p.Nodes,
		}
		if !p.LastBeat.IsZero() {
			ps.LastHeartbeatNS = p.LastBeat.UnixNano()
		}
		out.Peers = append(out.Peers, ps)
	}
	return out
}

// Candidates lists the remote vantage points eligible for placement at
// now: every online node advertised by every online peer, in (peer,
// node) name order — the deterministic scan order the placer relies on.
func (r *Registry) Candidates(now time.Time) []Candidate {
	peers := *r.view.Load()
	var out []Candidate
	for _, p := range peers {
		if r.state(p, now) != StateOnline {
			continue
		}
		for _, n := range p.Nodes {
			if n.Health != api.HealthOnline {
				continue
			}
			out = append(out, Candidate{Peer: p.Name, PeerURL: p.URL, Node: n})
		}
	}
	return out
}

// Sweep derives every peer's state at now and returns the names of
// peers that left the online state since the previous sweep — the edge
// the scheduler fails routed builds over on. The first sweep observing
// a peer reports no edge (a restored-offline peer never had builds
// routed to it in this process).
func (r *Registry) Sweep(now time.Time) (lost []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, p := range r.peers {
		st := r.state(*p, now)
		prev, seen := r.reported[name]
		r.reported[name] = st
		if seen && prev == StateOnline && st != StateOnline {
			lost = append(lost, name)
		}
	}
	sort.Strings(lost)
	return lost
}
