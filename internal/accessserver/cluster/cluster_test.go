package cluster

import (
	"reflect"
	"testing"
	"time"

	"batterylab/internal/api"
)

func testRegistry() *Registry {
	return New(Config{
		Self:         "lab-a",
		URL:          "http://lab-a.example:9090",
		Token:        "s3cret",
		SuspectAfter: 30 * time.Second,
		OfflineAfter: 60 * time.Second,
	})
}

func announce(name, url string, nodes ...api.PeerNode) api.PeerAnnounce {
	return api.PeerAnnounce{Name: name, URL: url, Nodes: nodes}
}

// TestPeerLifecycle: a peer's state is derived from heartbeat age, never
// stored — online while fresh, suspect past SuspectAfter, offline past
// OfflineAfter, and back to online on the next announce.
func TestPeerLifecycle(t *testing.T) {
	r := testRegistry()
	t0 := time.Date(2019, 11, 13, 9, 0, 0, 0, time.UTC)

	if isNew := r.Announce(announce("lab-eu", "http://eu:9090"), t0); !isNew {
		t.Fatal("first announce not reported as new")
	}
	if isNew := r.Announce(announce("lab-eu", "http://eu:9090"), t0.Add(time.Second)); isNew {
		t.Fatal("re-announce reported as new")
	}
	if isNew := r.Announce(announce("lab-eu", "http://eu2:9090"), t0.Add(2*time.Second)); !isNew {
		t.Fatal("URL move not reported as new (membership must re-persist)")
	}

	base := t0.Add(2 * time.Second)
	for _, tc := range []struct {
		at   time.Time
		want State
	}{
		{base, StateOnline},
		{base.Add(29 * time.Second), StateOnline},
		{base.Add(30 * time.Second), StateSuspect},
		{base.Add(59 * time.Second), StateSuspect},
		{base.Add(60 * time.Second), StateOffline},
	} {
		st, url, ok := r.PeerState("lab-eu", tc.at)
		if !ok || url != "http://eu2:9090" {
			t.Fatalf("PeerState at %v: ok=%v url=%q", tc.at, ok, url)
		}
		if st != tc.want {
			t.Errorf("state at +%v = %v, want %v", tc.at.Sub(base), st, tc.want)
		}
	}

	// A fresh announce revives an offline peer.
	late := base.Add(2 * time.Minute)
	r.Announce(announce("lab-eu", "http://eu2:9090"), late)
	if st, _, _ := r.PeerState("lab-eu", late); st != StateOnline {
		t.Fatalf("state after revival = %v", st)
	}
}

// TestSweepEdges: Sweep reports only the online -> non-online edge, once,
// and a restored (never-online) peer produces no edge.
func TestSweepEdges(t *testing.T) {
	r := testRegistry()
	t0 := time.Date(2019, 11, 13, 9, 0, 0, 0, time.UTC)
	r.Restore("lab-cold", "http://cold:9090") // offline from the start
	r.Announce(announce("lab-eu", "http://eu:9090"), t0)
	r.Announce(announce("lab-us", "http://us:9090"), t0)

	if lost := r.Sweep(t0.Add(time.Second)); len(lost) != 0 {
		t.Fatalf("first sweep lost %v, want none", lost)
	}
	// Both live peers age past suspect together: one sorted edge batch.
	if lost := r.Sweep(t0.Add(31 * time.Second)); !reflect.DeepEqual(lost, []string{"lab-eu", "lab-us"}) {
		t.Fatalf("sweep lost %v, want [lab-eu lab-us]", lost)
	}
	// Still suspect: the edge does not repeat.
	if lost := r.Sweep(t0.Add(32 * time.Second)); len(lost) != 0 {
		t.Fatalf("repeated edge: %v", lost)
	}
	// Revive one, lose it again: a second edge.
	r.Announce(announce("lab-eu", "http://eu:9090"), t0.Add(40*time.Second))
	if lost := r.Sweep(t0.Add(41 * time.Second)); len(lost) != 0 {
		t.Fatalf("sweep after revival lost %v", lost)
	}
	if lost := r.Sweep(t0.Add(2 * time.Hour)); !reflect.DeepEqual(lost, []string{"lab-eu"}) {
		t.Fatalf("second edge %v, want [lab-eu]", lost)
	}
}

// TestCandidatesOrderAndFiltering: only online peers' online nodes are
// placement candidates, in deterministic (peer, node) order.
func TestCandidatesOrderAndFiltering(t *testing.T) {
	r := testRegistry()
	t0 := time.Date(2019, 11, 13, 9, 0, 0, 0, time.UTC)
	r.Announce(announce("lab-us", "http://us:9090",
		api.PeerNode{Name: "nodeZ", Health: "online"},
		api.PeerNode{Name: "nodeY", Health: "suspect"}), t0)
	r.Announce(announce("lab-eu", "http://eu:9090",
		api.PeerNode{Name: "nodeB", Health: "online"},
		api.PeerNode{Name: "nodeA", Health: "online"}), t0)
	r.Announce(announce("lab-gone", "http://gone:9090",
		api.PeerNode{Name: "nodeQ", Health: "online"}), t0.Add(-2*time.Minute))

	var got []string
	for _, c := range r.Candidates(t0.Add(time.Second)) {
		got = append(got, c.Peer+"/"+c.Node.Name)
	}
	// Peers sort by name; within a peer, census order is the peer's own.
	want := []string{"lab-eu/nodeB", "lab-eu/nodeA", "lab-us/nodeZ"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("candidates %v, want %v", got, want)
	}
}

// TestAuthorize: constant-time equality, and always false with no token
// configured (federation disabled).
func TestAuthorize(t *testing.T) {
	r := testRegistry()
	if !r.Authorize("s3cret") {
		t.Fatal("correct token rejected")
	}
	if r.Authorize("wrong") || r.Authorize("") {
		t.Fatal("bad token accepted")
	}
	off := New(Config{Self: "solo"})
	if off.Authorize("") || off.Authorize("s3cret") {
		t.Fatal("tokenless registry must authorize nothing")
	}
}

// TestRestoreAndView: a restored peer is a member (name + URL) but
// offline with no heartbeat until it announces; Remove drops it.
func TestRestoreAndView(t *testing.T) {
	r := testRegistry()
	t0 := time.Date(2019, 11, 13, 9, 0, 0, 0, time.UTC)
	r.Restore("lab-eu", "http://eu:9090")

	view := r.View(t0)
	if view.Self != "lab-a" || len(view.Peers) != 1 {
		t.Fatalf("view = %+v", view)
	}
	p := view.Peers[0]
	if p.Name != "lab-eu" || p.State != "offline" || p.LastHeartbeatNS != 0 {
		t.Fatalf("restored peer = %+v, want offline with no heartbeat", p)
	}

	r.Announce(announce("lab-eu", "http://eu:9090", api.PeerNode{Name: "node1", Health: "online"}), t0)
	view = r.View(t0)
	if view.Peers[0].State != "online" || view.Peers[0].LastHeartbeatNS != t0.UnixNano() {
		t.Fatalf("announced peer = %+v", view.Peers[0])
	}

	if !r.Remove("lab-eu") {
		t.Fatal("Remove failed")
	}
	if r.Remove("lab-eu") {
		t.Fatal("double Remove succeeded")
	}
	if got := len(r.View(t0).Peers); got != 0 {
		t.Fatalf("%d peers after Remove", got)
	}
}
