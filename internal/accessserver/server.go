package accessserver

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"batterylab/internal/simclock"
)

// Config tunes the access server.
type Config struct {
	// Executors bounds concurrently running builds (Jenkins executors).
	Executors int
	// Retention is how long finished builds keep logs and artifacts
	// ("several days", §3.1).
	Retention time.Duration
	// LowCPUThreshold gates RequireLowCPU dispatch.
	LowCPUThreshold float64
}

func (c Config) withDefaults() Config {
	if c.Executors == 0 {
		c.Executors = 2
	}
	if c.Retention == 0 {
		c.Retention = 5 * 24 * time.Hour
	}
	if c.LowCPUThreshold == 0 {
		c.LowCPUThreshold = 50
	}
	return c
}

// Server is the access server: users, nodes, jobs, the build queue and
// its scheduler.
type Server struct {
	cfg   Config
	clock simclock.Clock

	Users *Users
	Nodes *Nodes

	mu      sync.Mutex
	jobs    map[string]*Job
	builds  map[int]*Build
	queue   []*Build
	running int
	nextID  int
	// locks: "node/device" and "node" keys held by running builds.
	locks map[string]int // key -> build ID
	crons []*cronEntry
}

type cronEntry struct {
	name   string
	ticker *simclock.Ticker
	runs   int
}

// New creates an access server.
func New(clock simclock.Clock, cfg Config) *Server {
	return &Server{
		cfg:    cfg.withDefaults(),
		clock:  clock,
		Users:  NewUsers(),
		Nodes:  NewNodes(),
		jobs:   make(map[string]*Job),
		builds: make(map[int]*Build),
		nextID: 1,
		locks:  make(map[string]int),
	}
}

// CreateJob stores a new (unapproved) pipeline. The user needs
// PermCreateJob.
func (s *Server) CreateJob(user *User, name string, cons Constraints, run RunFunc) (*Job, error) {
	if !Allowed(user.Role, PermCreateJob) {
		return nil, fmt.Errorf("accessserver: %s (%s) may not create jobs", user.Name, user.Role)
	}
	if name == "" || run == nil {
		return nil, fmt.Errorf("accessserver: job needs a name and a pipeline body")
	}
	if cons.Node == "" {
		return nil, fmt.Errorf("accessserver: job %q needs a target node", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.jobs[name]; dup {
		return nil, fmt.Errorf("accessserver: job %q exists", name)
	}
	j := &Job{Name: name, Owner: user.Name, constraints: cons, run: run, revision: 1}
	// Admins' own pipelines are implicitly approved.
	j.approved = user.Role == RoleAdmin
	s.jobs[name] = j
	return j, nil
}

// EditJob replaces a job's pipeline; the revision needs fresh approval
// (§3.1: "every pipeline change has to be approved by an
// administrator").
func (s *Server) EditJob(user *User, name string, cons Constraints, run RunFunc) error {
	if !Allowed(user.Role, PermEditJob) {
		return fmt.Errorf("accessserver: %s (%s) may not edit jobs", user.Name, user.Role)
	}
	j, err := s.Job(name)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.constraints = cons
	j.run = run
	j.revision++
	j.approved = user.Role == RoleAdmin
	return nil
}

// ApproveJob marks the current revision runnable (admin only).
func (s *Server) ApproveJob(user *User, name string) error {
	if !Allowed(user.Role, PermApprovePipeline) {
		return fmt.Errorf("accessserver: %s (%s) may not approve pipelines", user.Name, user.Role)
	}
	j, err := s.Job(name)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.approved = true
	return nil
}

// Job resolves a job by name.
func (s *Server) Job(name string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[name]
	if !ok {
		return nil, fmt.Errorf("accessserver: no job %q", name)
	}
	return j, nil
}

// Jobs lists job names sorted.
func (s *Server) Jobs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.jobs))
	for n := range s.jobs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Submit queues a build of the job. The user needs PermRunJob and the
// job's current revision must be approved.
func (s *Server) Submit(user *User, jobName string) (*Build, error) {
	if !Allowed(user.Role, PermRunJob) {
		return nil, fmt.Errorf("accessserver: %s (%s) may not run jobs", user.Name, user.Role)
	}
	j, err := s.Job(jobName)
	if err != nil {
		return nil, err
	}
	if !j.Approved() {
		return nil, fmt.Errorf("accessserver: job %q revision %d awaits admin approval", jobName, j.Revision())
	}
	s.mu.Lock()
	b := &Build{
		ID:        s.nextID,
		Job:       jobName,
		queuedAt:  s.clock.Now(),
		workspace: NewWorkspace(),
	}
	s.nextID++
	s.builds[b.ID] = b
	s.queue = append(s.queue, b)
	s.mu.Unlock()
	s.dispatch()
	return b, nil
}

// Build resolves a build by id.
func (s *Server) Build(id int) (*Build, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.builds[id]
	if !ok {
		return nil, fmt.Errorf("accessserver: no build %d", id)
	}
	return b, nil
}

// QueueLength reports pending builds.
func (s *Server) QueueLength() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Running reports in-flight builds.
func (s *Server) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// dispatch scans the queue and starts every build whose constraints are
// satisfiable right now.
func (s *Server) dispatch() {
	for {
		started := s.dispatchOne()
		if !started {
			return
		}
	}
}

// dispatchOne starts the first dispatchable build, reporting whether it
// started one.
func (s *Server) dispatchOne() bool {
	s.mu.Lock()
	if s.running >= s.cfg.Executors {
		s.mu.Unlock()
		return false
	}
	var (
		b     *Build
		j     *Job
		node  Node
		idx   = -1
		locks []string
	)
	for i, cand := range s.queue {
		job, ok := s.jobs[cand.Job]
		if !ok {
			continue
		}
		cons := job.Constraints()
		n, err := s.Nodes.Get(cons.Node)
		if err != nil {
			continue // node not registered (yet)
		}
		keys := lockKeys(cons)
		if s.locksHeld(keys) {
			continue
		}
		if cons.RequireLowCPU && !s.nodeCPULowLocked(n) {
			continue
		}
		b, j, node, idx, locks = cand, job, n, i, keys
		break
	}
	if b == nil {
		s.mu.Unlock()
		return false
	}
	s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
	for _, k := range locks {
		s.locks[k] = b.ID
	}
	s.running++
	cons := j.Constraints()
	run := j.run
	s.mu.Unlock()

	b.mu.Lock()
	b.state = StateRunning
	b.startedAt = s.clock.Now()
	b.mu.Unlock()

	ctx := &BuildContext{Build: b, Node: node, Device: cons.Device}
	ctx.Logf("build #%d of %s started on %s", b.ID, b.Job, cons.Node)

	var once sync.Once
	done := func(err error) {
		once.Do(func() {
			s.finish(b, locks, err)
		})
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				done(fmt.Errorf("pipeline panic: %v", r))
			}
		}()
		run(ctx, done)
	}()
	return true
}

// lockKeys computes the mutual-exclusion keys for a constraint set.
func lockKeys(cons Constraints) []string {
	if cons.Device != "" {
		return []string{cons.Node + "/" + cons.Device}
	}
	// Jobs without a device still serialize per node.
	return []string{cons.Node}
}

func (s *Server) locksHeld(keys []string) bool {
	for _, k := range keys {
		if _, held := s.locks[k]; held {
			return true
		}
		// A device lock also conflicts with a whole-node lock and vice
		// versa.
		if i := strings.IndexByte(k, '/'); i >= 0 {
			if _, held := s.locks[k[:i]]; held {
				return true
			}
		} else {
			for held := range s.locks {
				if strings.HasPrefix(held, k+"/") {
					return true
				}
			}
		}
	}
	return false
}

// nodeCPULowLocked asks the node for its CPU via status.
func (s *Server) nodeCPULowLocked(n Node) bool {
	out, err := n.Exec("status")
	if err != nil {
		return false
	}
	// status: ... cpu=NN.N% ...
	for _, f := range strings.Fields(out) {
		if strings.HasPrefix(f, "cpu=") {
			v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(f, "cpu="), "%"), 64)
			if err != nil {
				return false
			}
			return v < s.cfg.LowCPUThreshold
		}
	}
	return false
}

// finish completes a build, releases its locks and re-runs dispatch.
func (s *Server) finish(b *Build, locks []string, err error) {
	b.mu.Lock()
	b.finishedAt = s.clock.Now()
	if err != nil {
		b.state = StateFailure
		b.err = err
		fmt.Fprintf(&b.log, "build failed: %v\n", err)
	} else {
		b.state = StateSuccess
		fmt.Fprintf(&b.log, "build succeeded\n")
	}
	b.mu.Unlock()

	s.mu.Lock()
	for _, k := range locks {
		delete(s.locks, k)
	}
	s.running--
	s.mu.Unlock()

	// Retention: purge the workspace and log after the window.
	s.clock.AfterFunc(s.cfg.Retention, func() {
		b.workspace.purge()
		b.mu.Lock()
		b.log.Reset()
		b.mu.Unlock()
	})
	s.dispatch()
}

// Kick re-evaluates the queue (used after node registration and by the
// periodic scheduler tick).
func (s *Server) Kick() { s.dispatch() }

// Cron registers a recurring maintenance task executed directly against
// a node (outside the build queue), every period. It returns a stop
// function. The paper's examples: renewing wildcard certificates,
// ensuring the power meter is off when idle, factory-resetting devices.
func (s *Server) Cron(name string, period time.Duration, task func()) (stop func()) {
	entry := &cronEntry{name: name}
	entry.ticker = simclock.NewTicker(s.clock, period, func(time.Time) {
		entry.runs++
		task()
	})
	s.mu.Lock()
	s.crons = append(s.crons, entry)
	s.mu.Unlock()
	return entry.ticker.Stop
}

// CronRuns reports how many times the named cron fired.
func (s *Server) CronRuns(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.crons {
		if c.name == name {
			return c.runs
		}
	}
	return 0
}
