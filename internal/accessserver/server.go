package accessserver

import (
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"batterylab/internal/accessserver/cluster"
	"batterylab/internal/accessserver/feedhub"
	"batterylab/internal/accessserver/store"
	"batterylab/internal/analytics"
	"batterylab/internal/api"
	"batterylab/internal/simclock"
)

// schedMutex is the scheduler lock with an acquisition counter. The
// counter exists to make the control/data plane split provable: tests
// (and the fleet bench) assert that streaming subscribers and status
// pollers drive the read plane without a single scheduler-lock
// acquisition. The atomic add costs nanoseconds next to the critical
// sections the lock guards.
type schedMutex struct {
	sync.Mutex
	acquisitions atomic.Int64
}

func (m *schedMutex) Lock() {
	m.Mutex.Lock()
	m.acquisitions.Add(1)
}

// Config tunes the access server.
type Config struct {
	// Executors bounds concurrently running builds (Jenkins executors).
	Executors int
	// Retention is how long finished builds keep logs and artifacts
	// ("several days", §3.1). After the window the build record itself
	// is evicted to a tombstone: status reads answer "expired" instead
	// of growing s.builds forever.
	Retention time.Duration
	// LowCPUThreshold gates RequireLowCPU dispatch.
	LowCPUThreshold float64
	// CPUProbeTTL is how long a node's probed CPU reading stays fresh
	// for RequireLowCPU dispatch decisions (default 1s, the controller
	// CPU-sampling cadence). Probes run outside s.mu — a hung node can
	// no longer stall the scheduler.
	CPUProbeTTL time.Duration

	// HeartbeatEvery is the monitored-node probe cadence (default 15s).
	HeartbeatEvery time.Duration
	// SuspectAfter is the silence after which a monitored node turns
	// suspect — no new dispatch (default 2×HeartbeatEvery).
	SuspectAfter time.Duration
	// OfflineAfter is the silence after which a monitored node turns
	// offline and its build leases break (default 4×HeartbeatEvery).
	OfflineAfter time.Duration
	// MaxRetries bounds failover requeues per build after node loss
	// (default 2; negative disables retries).
	MaxRetries int
	// RetryBackoff is the first requeue delay after a failover,
	// doubling per retry (default 15s).
	RetryBackoff time.Duration
	// PendingTimeout ages out queued builds whose target node never
	// appears (or has gone offline): instead of pending forever they
	// fail with a reason (default 30m).
	PendingTimeout time.Duration

	// Placer scores fallback placements (see placement.go). Nil selects
	// the default WeightedPlacer with DefaultScoreWeights.
	Placer Placer
	// OwnerInFlightCap bounds one non-admin owner's builds in
	// non-terminal states (queued + running); submissions past the cap
	// are shed with ErrOverloaded (429, shed_reason=owner_cap).
	// 0 = unlimited.
	OwnerInFlightCap int
	// ShedWatermark is the dispatch-queue depth at which non-admin
	// submissions shed with ErrOverloaded (429,
	// shed_reason=queue_watermark). Credit-aware: while the §5 credit
	// economy is enforced, a submitter whose ledger covered the credit
	// gate may queue up to twice the watermark — paying tenants buy
	// headroom — and only the doubled hard watermark sheds them.
	// 0 = unlimited.
	ShedWatermark int
	// OwnerRunCap is the dispatch-time fair-share bound: at most this
	// many builds of one owner hold executors concurrently, so a hot
	// tenant's backlog cannot starve everyone else's queue wait.
	// Applies to every owner, admins included — it allocates capacity,
	// it does not deny admission. 0 = unlimited.
	OwnerRunCap int

	// EnforceCredits turns on the §5 credit economy: submissions are
	// gated on the submitter's ledger balance and finished runs are
	// charged their actual device time. Admins are exempt (they operate
	// the platform rather than buy access). Off by default; can also be
	// toggled later with SetCreditEnforcement.
	EnforceCredits bool
	// SubmitCharge is the device time one experiment must be able to
	// cover at submission time when credits are enforced (default 1m).
	// The real charge on finish is the measured duration.
	SubmitCharge time.Duration
	// SnapshotEvery is the store compaction cadence when a store is
	// attached: every tick with new WAL records, the server writes a
	// snapshot and truncates the log (default 10m).
	SnapshotEvery time.Duration
	// WALSyncEvery is the group-commit cadence: WAL appends are fsynced
	// on this interval (default 1s), bounding what a power loss can
	// lose. A process crash alone loses nothing — appends reach the
	// kernel immediately.
	WALSyncEvery time.Duration
	// AnalyticsCacheBytes bounds the analytics result cache (marshaled
	// response bodies, LRU). Default 4 MiB; negative disables caching.
	AnalyticsCacheBytes int64

	// Federation (see federation.go). ClusterName is this server's
	// cluster-unique name (default "batterylab"); AdvertiseURL is the
	// base URL peers reach it at; ClusterToken is the shared secret peer
	// announces must present — empty disables federation entirely.
	ClusterName  string
	ClusterToken string
	AdvertiseURL string
	// PeerHeartbeatEvery is the peer announce cadence (default
	// HeartbeatEvery). Peer lifecycle uses the same SuspectAfter /
	// OfflineAfter thresholds as nodes.
	PeerHeartbeatEvery time.Duration
}

func (c Config) withDefaults() Config {
	if c.Executors == 0 {
		c.Executors = 2
	}
	if c.Retention == 0 {
		c.Retention = 5 * 24 * time.Hour
	}
	if c.LowCPUThreshold == 0 {
		c.LowCPUThreshold = 50
	}
	if c.CPUProbeTTL == 0 {
		c.CPUProbeTTL = time.Second
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 15 * time.Second
	}
	if c.SuspectAfter == 0 {
		c.SuspectAfter = 2 * c.HeartbeatEvery
	}
	if c.OfflineAfter == 0 {
		c.OfflineAfter = 4 * c.HeartbeatEvery
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 15 * time.Second
	}
	if c.PendingTimeout == 0 {
		c.PendingTimeout = 30 * time.Minute
	}
	if c.Placer == nil {
		c.Placer = WeightedPlacer{W: DefaultScoreWeights()}
	}
	if c.SubmitCharge == 0 {
		c.SubmitCharge = time.Minute
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 10 * time.Minute
	}
	if c.WALSyncEvery == 0 {
		c.WALSyncEvery = time.Second
	}
	if c.AnalyticsCacheBytes == 0 {
		c.AnalyticsCacheBytes = 4 << 20
	}
	if c.AnalyticsCacheBytes < 0 {
		c.AnalyticsCacheBytes = 0
	}
	if c.ClusterName == "" {
		c.ClusterName = "batterylab"
	}
	if c.PeerHeartbeatEvery == 0 {
		c.PeerHeartbeatEvery = c.HeartbeatEvery
	}
	return c
}

// SpecBackend compiles declarative v1 experiment specs into runnable
// pipelines. The platform layer (internal/core) implements it against
// its workload registry and installs it with SetSpecBackend; the server
// itself stays ignorant of workload semantics.
type SpecBackend interface {
	// Compile turns a wire spec into dispatch constraints and a
	// pipeline body. Errors must wrap the package sentinels (ErrInvalid
	// for bad specs, ErrNotFound for unknown nodes/devices/workloads)
	// so the HTTP layer maps them to proper statuses.
	Compile(spec api.ExperimentSpec) (Constraints, RunFunc, error)
	// WorkloadNames lists the registry's workloads, sorted.
	WorkloadNames() []string
}

// Server is the access server: users, nodes, jobs, the build queue and
// its scheduler.
type Server struct {
	cfg   Config
	clock simclock.Clock

	Users *Users
	Nodes *Nodes
	// Ledger is the §5 credit economy: contribution credits accrue from
	// node-online time, experiments debit device time. Enforcement is
	// gated by Config.EnforceCredits / SetCreditEnforcement.
	Ledger *Ledger

	// hub is the feed plane: per-build event/sample streams behind
	// their own leaf lock, so streaming subscribers resolve and drain
	// feeds without ever touching s.mu, and the scheduler may
	// create/close/evict feeds while holding any of its locks.
	hub *feedhub.Hub
	// reads is the snapshot read plane: copy-on-write build/node/
	// campaign views republished at every transition under s.mu, served
	// by the hot GET routes lock-free (see snapshot.go).
	reads *readPlane

	mu      schedMutex
	jobs    map[string]*Job
	builds  map[int]*Build
	queue   []*Build
	running int
	nextID  int
	// locks: "node/device" and "node" keys held by running builds.
	locks map[string]int // key -> build ID
	crons []*cronEntry
	// nodeRecs is the per-node lifecycle state (see health.go).
	nodeRecs map[string]*nodeRec
	// placer scores fallback placements (see placement.go); swapped at
	// runtime with SetPlacer.
	placer Placer
	// dispatching/redispatch make the dispatch loop non-reentrant:
	// dispatch() calls arriving while a drain loop runs (a pipeline
	// that completed synchronously, a probe result, a heartbeat) set
	// redispatch and return immediately; the active loop rescans. This
	// is what turned the old finish→dispatch recursion — linear stack
	// growth on deep queues of synchronous builds — into iteration.
	dispatching bool
	redispatch  bool
	// ownerActive counts each owner's builds in non-terminal states
	// (the OwnerInFlightCap admission input); ownerRunning counts each
	// owner's builds holding executors (the OwnerRunCap fair-share
	// input). Both maintained under s.mu at the same transitions as
	// the metrics counters.
	ownerActive  map[string]int
	ownerRunning map[string]int

	specs        SpecBackend
	campaigns    map[int]*campaignRec
	nextCampaign int

	// creditsOn gates the ledger checks without a config rebuild.
	creditsOn atomic.Bool

	// Persistence (see persist.go). storeMu is a leaf mutex: it may be
	// taken under s.mu and b.mu but never takes either itself.
	// storeFailed latches after a failed WAL append; appends stay
	// suppressed until a compaction re-establishes a complete snapshot.
	storeMu     sync.Mutex
	store       *store.Store
	storeFailed bool
	snapTicker  *simclock.Ticker
	syncTicker  *simclock.Ticker
	// compactMu serializes whole compaction cycles (ticker vs shutdown)
	// without making either hold the scheduler locks across disk I/O.
	compactMu sync.Mutex

	// analyticsCache memoizes marshaled analytics bodies (see
	// analytics.go); self-locking, bounded by Config.AnalyticsCacheBytes.
	analyticsCache *analytics.Cache

	// cluster is the federation membership registry (its own leaf locks;
	// reads are lock-free COW snapshots — see internal/accessserver/
	// cluster and federation.go). peerRelay is the injected cross-server
	// submit path (s.mu-guarded; the server core cannot import
	// internal/remote, so the daemon or test wires the implementation
	// in). peerSeeds are announce targets configured before the mesh
	// self-assembles; peerTicker drives announce/sweep.
	cluster    *cluster.Registry
	peerRelay  PeerRelay // guarded by s.mu
	peerSeeds  []string  // guarded by s.mu
	peerTicker *simclock.Ticker

	// m is the observability surface (see metrics.go). Its scheduler
	// counters are plain fields mutated under s.mu; everything else is
	// atomic.
	m *serverMetrics
	// logger backs the HTTP middleware and stats flusher; nil means
	// discard. expectDurable marks a deployment that intends to attach
	// a store — /readyz answers 503 until it has (and while durability
	// is latched off).
	logger        atomic.Pointer[slog.Logger]
	expectDurable atomic.Bool
}

// campaignRec tracks one campaign's builds and its concurrency cap.
type campaignRec struct {
	builds        []int
	maxConcurrent int
	running       int
}

type cronEntry struct {
	name   string
	ticker *simclock.Ticker
	runs   int
}

// New creates an access server.
func New(clock simclock.Clock, cfg Config) *Server {
	s := &Server{
		cfg:          cfg.withDefaults(),
		clock:        clock,
		Users:        NewUsers(),
		Nodes:        NewNodes(),
		Ledger:       NewLedger(),
		jobs:         make(map[string]*Job),
		builds:       make(map[int]*Build),
		nextID:       1,
		locks:        make(map[string]int),
		nodeRecs:     make(map[string]*nodeRec),
		campaigns:    make(map[int]*campaignRec),
		nextCampaign: 1,
		ownerActive:  make(map[string]int),
		ownerRunning: make(map[string]int),
	}
	s.placer = s.cfg.Placer
	s.creditsOn.Store(s.cfg.EnforceCredits)
	s.analyticsCache = analytics.NewCache(s.cfg.AnalyticsCacheBytes)
	s.m = newServerMetrics(s)
	s.hub = feedhub.New(&s.m.feeds)
	s.reads = newReadPlane()
	s.cluster = cluster.New(cluster.Config{
		Self:         s.cfg.ClusterName,
		URL:          s.cfg.AdvertiseURL,
		Token:        s.cfg.ClusterToken,
		SuspectAfter: s.cfg.SuspectAfter,
		OfflineAfter: s.cfg.OfflineAfter,
	})
	return s
}

// FeedHub exposes the server's feed plane. Embedders (the fleet bench,
// gateway tests) use it to resolve subscriptions the way the streaming
// routes do; the scheduler drives lifecycle internally.
func (s *Server) FeedHub() *feedhub.Hub { return s.hub }

// SchedLockAcquisitions reports how many times the scheduler lock has
// been acquired since the server started. Read-plane isolation tests
// diff it across a poll/stream flood to prove GETs never touch it.
func (s *Server) SchedLockAcquisitions() int64 { return s.mu.acquisitions.Load() }

// SetCreditEnforcement toggles the §5 credit economy at runtime (the
// daemon's -credits flag; Config.EnforceCredits sets the initial
// state).
func (s *Server) SetCreditEnforcement(on bool) { s.creditsOn.Store(on) }

// SetSpecBackend installs the declarative spec compiler. Without one,
// v1 experiment submission is rejected with ErrInvalid.
func (s *Server) SetSpecBackend(b SpecBackend) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.specs = b
}

// WorkloadNames lists the spec backend's registered workloads (empty
// without a backend).
func (s *Server) WorkloadNames() []string {
	s.mu.Lock()
	backend := s.specs
	s.mu.Unlock()
	if backend == nil {
		return nil
	}
	return backend.WorkloadNames()
}

// CreateJob stores a new (unapproved) pipeline. The user needs
// PermCreateJob.
func (s *Server) CreateJob(user *User, name string, cons Constraints, run RunFunc) (*Job, error) {
	if !Allowed(user.Role, PermCreateJob) {
		return nil, fmt.Errorf("%w: %s (%s) may not create jobs", ErrForbidden, user.Name, user.Role)
	}
	if name == "" || run == nil {
		return nil, fmt.Errorf("%w: job needs a name and a pipeline body", ErrInvalid)
	}
	if cons.Node == "" {
		return nil, fmt.Errorf("%w: job %q needs a target node", ErrInvalid, name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.jobs[name]; dup {
		return nil, fmt.Errorf("%w: job %q exists", ErrConflict, name)
	}
	j := &Job{Name: name, Owner: user.Name, constraints: cons, run: run, revision: 1}
	// Admins' own pipelines are implicitly approved.
	j.approved = user.Role == RoleAdmin
	s.jobs[name] = j
	s.logJob(j)
	return j, nil
}

// EditJob replaces a job's pipeline; the revision needs fresh approval
// (§3.1: "every pipeline change has to be approved by an
// administrator").
func (s *Server) EditJob(user *User, name string, cons Constraints, run RunFunc) error {
	if !Allowed(user.Role, PermEditJob) {
		return fmt.Errorf("%w: %s (%s) may not edit jobs", ErrForbidden, user.Name, user.Role)
	}
	j, err := s.Job(name)
	if err != nil {
		return err
	}
	// s.mu spans the mutation and its WAL append: job writers must use
	// the same lock order as snapshot compaction, or the record could
	// fall between a snapshot read and the log truncation.
	s.mu.Lock()
	j.mu.Lock()
	j.constraints = cons
	j.run = run
	j.revision++
	j.approved = user.Role == RoleAdmin
	j.mu.Unlock()
	s.logJob(j)
	s.mu.Unlock()
	return nil
}

// ApproveJob marks the current revision runnable (admin only).
func (s *Server) ApproveJob(user *User, name string) error {
	if !Allowed(user.Role, PermApprovePipeline) {
		return fmt.Errorf("%w: %s (%s) may not approve pipelines", ErrForbidden, user.Name, user.Role)
	}
	j, err := s.Job(name)
	if err != nil {
		return err
	}
	s.mu.Lock()
	j.mu.Lock()
	j.approved = true
	j.mu.Unlock()
	s.logJob(j)
	s.mu.Unlock()
	return nil
}

// DeleteJob removes a stored pipeline. Queued builds of the job fail
// immediately with a typed error instead of rotting in the queue;
// running builds finish. Owners and admins may delete (with
// PermEditJob).
func (s *Server) DeleteJob(user *User, name string) error {
	if !Allowed(user.Role, PermEditJob) {
		return fmt.Errorf("%w: %s (%s) may not delete jobs", ErrForbidden, user.Name, user.Role)
	}
	j, err := s.Job(name)
	if err != nil {
		return err
	}
	if user.Role != RoleAdmin && j.Owner != user.Name {
		return fmt.Errorf("%w: job %q belongs to %s", ErrForbidden, name, j.Owner)
	}
	s.mu.Lock()
	delete(s.jobs, name)
	s.logStore(store.Record{T: store.TJobDeleted, Name: name})
	kept := s.queue[:0]
	for _, b := range s.queue {
		if b.run == nil && b.Job == name {
			s.terminateLocked(b, fmt.Errorf("%w: job %q deleted while build %d was queued", ErrJobDeleted, name, b.ID))
			continue
		}
		kept = append(kept, b)
	}
	s.queue = kept
	s.publishNodesLocked()
	s.mu.Unlock()
	return nil
}

// Job resolves a job by name.
func (s *Server) Job(name string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[name]
	if !ok {
		return nil, fmt.Errorf("%w: no job %q", ErrNotFound, name)
	}
	return j, nil
}

// Jobs lists job names sorted.
func (s *Server) Jobs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.jobs))
	for n := range s.jobs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Submit queues a build of the job. The user needs PermRunJob and the
// job's current revision must be approved.
func (s *Server) Submit(user *User, jobName string) (*Build, error) {
	if !Allowed(user.Role, PermRunJob) {
		return nil, fmt.Errorf("%w: %s (%s) may not run jobs", ErrForbidden, user.Name, user.Role)
	}
	j, err := s.Job(jobName)
	if err != nil {
		return nil, err
	}
	if !j.Approved() {
		return nil, fmt.Errorf("%w: job %q revision %d awaits admin approval", ErrConflict, jobName, j.Revision())
	}
	if !j.Runnable() {
		return nil, fmt.Errorf("%w: job %q was recovered without its pipeline body; edit it to reinstall one", ErrConflict, jobName)
	}
	if err := s.creditGate(user, 1); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if err := s.admitLocked(user, 1); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	b := s.enqueueLocked(user.Name, jobName, 0, Constraints{}, nil, nil, nil)
	s.mu.Unlock()
	s.dispatch()
	return b, nil
}

// admitLocked is the fairness half of admission control (the credit
// gate ran already): per-owner in-flight caps plus queue-watermark
// load-shedding, both answering typed ErrOverloaded (429) with a
// machine-readable shed reason. Admins are exempt — they operate the
// platform. The watermark is credit-aware: while credits are enforced,
// a submitter who passed the credit gate paid for headroom and only
// the doubled hard watermark sheds them. Callers hold s.mu.
func (s *Server) admitLocked(user *User, n int) error {
	if user.Role == RoleAdmin || user.Role == RolePeer {
		// Admins operate the platform; peer-relayed builds were already
		// admitted (and capped) on their home server.
		return nil
	}
	if cap := s.cfg.OwnerInFlightCap; cap > 0 && s.ownerActive[user.Name]+n > cap {
		s.m.shedOwnerCap++
		return overloadf(ShedOwnerCap,
			"accessserver: overloaded: %s has %d builds in flight (cap %d)",
			user.Name, s.ownerActive[user.Name], cap)
	}
	if wm := s.cfg.ShedWatermark; wm > 0 {
		depth := len(s.queue)
		limit := wm
		if s.creditsOn.Load() {
			limit = 2 * wm
		}
		if depth >= limit {
			s.m.shedWatermark++
			return overloadf(ShedQueueWatermark,
				"accessserver: overloaded: queue depth %d crossed the shed watermark %d",
				depth, limit)
		}
	}
	return nil
}

// ownerSettledLocked records one of owner's builds leaving the
// non-terminal states. Callers hold s.mu.
func (s *Server) ownerSettledLocked(owner string) {
	if s.ownerActive[owner]--; s.ownerActive[owner] <= 0 {
		delete(s.ownerActive, owner)
	}
}

// ownerRunDoneLocked records one of owner's running builds leaving the
// executor (finish or failover reclaim). Callers hold s.mu.
func (s *Server) ownerRunDoneLocked(owner string) {
	if s.ownerRunning[owner]--; s.ownerRunning[owner] <= 0 {
		delete(s.ownerRunning, owner)
	}
}

// enqueueLocked creates a build and appends it to the queue. run is nil
// for job builds (the pipeline is looked up at dispatch time) and set
// for spec builds, which carry their own constraints and body plus the
// wire spec the store needs for crash recovery. Every build gets an
// aging timer: if it is still queued after PendingTimeout and its node
// never appeared (or has gone offline), it fails with a reason instead
// of pending forever. Callers hold s.mu.
//
// walBatch controls durability batching: nil logs the TBuildQueued
// record immediately; non-nil collects it for the caller to flush as
// one group commit (SubmitCampaign batches N builds + the campaign
// record into a single WAL write).
func (s *Server) enqueueLocked(owner, jobName string, campaign int, cons Constraints, run RunFunc, spec *api.ExperimentSpec, walBatch *[]store.Record) *Build {
	b := &Build{
		ID:        s.nextID,
		Job:       jobName,
		Owner:     owner,
		campaign:  campaign,
		cons:      cons,
		run:       run,
		wireSpec:  spec,
		queuedAt:  s.clock.Now(),
		workspace: NewWorkspace(),
		feed:      s.hub.Create(s.nextID, 0),
	}
	s.nextID++
	s.builds[b.ID] = b
	s.queue = append(s.queue, b)
	s.m.submitted++
	s.m.queued++
	s.ownerActive[owner]++
	b.agingTimer = s.clock.AfterFunc(s.cfg.PendingTimeout, func() { s.checkAging(b) })
	rec := store.Record{T: store.TBuildQueued, Build: &store.BuildRec{
		ID: b.ID, Job: b.Job, Owner: b.Owner, Campaign: b.campaign,
		Spec: b.wireSpec, State: StateQueued.String(), QueuedAtNS: b.queuedAt.UnixNano(),
	}}
	if walBatch != nil {
		*walBatch = append(*walBatch, rec)
	} else {
		s.logStore(rec)
	}
	s.publishBuildLocked(b)
	return b
}

// SubmitSpec compiles a declarative v1 experiment spec through the
// installed backend and queues it as a build — no pre-created job, no
// pipeline-approval round: the spec can only name vetted registry
// workloads, so the §3.1 closure-approval gate does not apply. The user
// needs PermRunJob.
func (s *Server) SubmitSpec(user *User, spec api.ExperimentSpec) (*Build, error) {
	if !Allowed(user.Role, PermRunJob) {
		return nil, fmt.Errorf("%w: %s (%s) may not run experiments", ErrForbidden, user.Name, user.Role)
	}
	s.mu.Lock()
	backend := s.specs
	s.mu.Unlock()
	if backend == nil {
		return nil, fmt.Errorf("%w: this server has no spec backend; submit jobs instead", ErrInvalid)
	}
	if err := s.creditGate(user, 1); err != nil {
		return nil, err
	}
	cons, run, err := backend.Compile(spec)
	if err != nil {
		// The node may live on a federation peer: a spec this server
		// cannot compile still queues when a peer advertises its vantage
		// point (the peer compiles it on relay submit).
		cons, run, err = s.compileForPeer(spec, err)
		if err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	if err := s.admitLocked(user, 1); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	b := s.enqueueLocked(user.Name, specJobName(spec), 0, cons, run, &spec, nil)
	s.mu.Unlock()
	s.dispatch()
	return b, nil
}

// SubmitCampaign atomically queues one build per experiment in the
// campaign: every spec is compiled before any is enqueued, so a
// campaign with one bad spec queues nothing. Builds fan out across
// vantage points through the normal scheduler (per-node/device locks,
// executor cap) plus the campaign's own MaxConcurrent bound. It returns
// the campaign id and its builds, index-aligned with the specs.
func (s *Server) SubmitCampaign(user *User, cs api.CampaignSpec) (int, []*Build, error) {
	if !Allowed(user.Role, PermRunJob) {
		return 0, nil, fmt.Errorf("%w: %s (%s) may not run experiments", ErrForbidden, user.Name, user.Role)
	}
	s.mu.Lock()
	backend := s.specs
	s.mu.Unlock()
	if backend == nil {
		return 0, nil, fmt.Errorf("%w: this server has no spec backend; submit jobs instead", ErrInvalid)
	}
	if err := cs.Validate(); err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if len(cs.Experiments) > MaxCampaignExperiments {
		return 0, nil, fmt.Errorf("%w: campaign has %d experiments (max %d)",
			ErrInvalid, len(cs.Experiments), MaxCampaignExperiments)
	}
	if err := s.creditGate(user, len(cs.Experiments)); err != nil {
		return 0, nil, err
	}
	type compiled struct {
		cons Constraints
		run  RunFunc
		name string
	}
	pipelines := make([]compiled, len(cs.Experiments))
	for i, spec := range cs.Experiments {
		cons, run, err := backend.Compile(spec)
		if err != nil {
			cons, run, err = s.compileForPeer(spec, err)
			if err != nil {
				return 0, nil, fmt.Errorf("experiments[%d]: %w", i, err)
			}
		}
		pipelines[i] = compiled{cons, run, specJobName(spec)}
	}
	s.mu.Lock()
	if err := s.admitLocked(user, len(pipelines)); err != nil {
		s.mu.Unlock()
		return 0, nil, err
	}
	id := s.nextCampaign
	s.nextCampaign++
	s.m.campaigns++
	rec := &campaignRec{maxConcurrent: cs.MaxConcurrent}
	s.campaigns[id] = rec
	builds := make([]*Build, len(pipelines))
	// One logical mutation, one WAL write: the member TBuildQueued
	// records and the campaign record group-commit together.
	walBatch := make([]store.Record, 0, len(pipelines)+1)
	for i, p := range pipelines {
		spec := cs.Experiments[i]
		builds[i] = s.enqueueLocked(user.Name, p.name, id, p.cons, p.run, &spec, &walBatch)
		rec.builds = append(rec.builds, builds[i].ID)
	}
	walBatch = append(walBatch, store.Record{T: store.TCampaign, Campaign: &store.CampaignRec{
		ID: id, MaxConcurrent: rec.maxConcurrent, Builds: append([]int(nil), rec.builds...),
	}})
	s.logStoreBatch(walBatch)
	s.reads.publishCampaign(id, rec.builds)
	s.publishNodesLocked()
	s.mu.Unlock()
	s.dispatch()
	return id, builds, nil
}

// MaxCampaignExperiments bounds one campaign submission; larger sweeps
// split into multiple campaigns.
const MaxCampaignExperiments = 1024

// specJobName labels a spec build for status displays.
func specJobName(spec api.ExperimentSpec) string {
	return "spec:" + spec.Workload.Name + "@" + spec.Node
}

// CampaignBuildIDs resolves a campaign's build ids in submission order
// (stable even after individual builds expire — resolve each id with
// Build, which answers ErrExpired for tombstoned members). A campaign
// whose every member aged out is itself evicted and answers
// ErrExpired.
func (s *Server) CampaignBuildIDs(id int) ([]int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.campaigns[id]
	if !ok {
		if id >= 1 && id < s.nextCampaign {
			return nil, fmt.Errorf("%w: campaign %d expired after its %s retention window", ErrExpired, id, s.cfg.Retention)
		}
		return nil, fmt.Errorf("%w: no campaign %d", ErrNotFound, id)
	}
	return append([]int(nil), rec.builds...), nil
}

// Abort cancels a build: a queued build is removed from the queue and
// marked aborted; a running build has its pipeline's cancel hook
// invoked (the measurement session tears down and the build finishes
// canceled). Aborting a finished build is a conflict. The user needs
// PermRunJob and must own the build (admins may cancel anyone's).
func (s *Server) Abort(user *User, id int) error {
	if !Allowed(user.Role, PermRunJob) {
		return fmt.Errorf("%w: %s (%s) may not cancel builds", ErrForbidden, user.Name, user.Role)
	}
	b, err := s.Build(id)
	if err != nil {
		return err
	}
	if user.Role != RoleAdmin && b.Owner != user.Name {
		return fmt.Errorf("%w: build %d belongs to %s", ErrForbidden, id, b.Owner)
	}
	s.mu.Lock()
	queuedAt := -1
	for i, cand := range s.queue {
		if cand == b {
			queuedAt = i
			break
		}
	}
	if queuedAt >= 0 {
		s.queue = append(s.queue[:queuedAt], s.queue[queuedAt+1:]...)
		s.m.queued--
		s.m.aborted++
		s.ownerSettledLocked(b.Owner)
		// Settle the aborted build while still holding s.mu: the WAL
		// append below must be serialized against snapshot compaction
		// (which cuts the log under s.mu), or the abort record could
		// fall between a snapshot that read "queued" and the truncation.
		b.mu.Lock()
		b.state = StateAborted
		b.cancelWant = true
		b.finishedAt = s.clock.Now()
		b.stopTimersLocked()
		fmt.Fprintf(&b.log, "build aborted while queued\n")
		s.logBuildFinishedLocked(b)
		b.mu.Unlock()
		// The hub's lock is a leaf: closing the feed under s.mu is legal
		// and keeps close-before-publish ordering trivially right.
		s.hub.Close(b.ID)
		s.publishBuildLocked(b)
		s.publishNodesLocked()
		s.mu.Unlock()
		s.scheduleRetention(b)
		return nil
	}
	// Still under the s.mu from the queue scan: every state transition
	// (finish, requeue, aging, failover) takes it, so none interleaves
	// between the scan and this switch — a finished build reliably
	// answers conflict instead of gaining a bogus persisted canceled
	// marker.
	b.mu.Lock()
	switch b.state {
	case StateRunning, StateQueued:
		// Running — or dispatch is picking it up right now, or it sits
		// in a failover backoff window: arm the pending-cancel flag so
		// the pipeline's OnCancel (or the retry timer) settles it. The
		// flag is WAL-logged under the compaction lock order, so a
		// server that crashes before the build settles recovers it as
		// aborted instead of rerunning a canceled experiment; the hook
		// itself runs outside the locks (it tears down a session, which
		// may re-enter the server through the build's done callback).
		b.cancelWant = true
		fn := b.canceler
		s.logStore(store.Record{T: store.TBuildCancelWant, BuildID: b.ID})
		b.mu.Unlock()
		s.publishBuildLocked(b) // the served status carries Canceled now
		s.mu.Unlock()
		if fn != nil {
			fn()
		}
		return nil
	default:
		state := b.state
		b.mu.Unlock()
		s.mu.Unlock()
		return fmt.Errorf("%w: build %d already finished (%s)", ErrConflict, id, state)
	}
}

// Build resolves a build by id. Builds past their retention window are
// evicted; asking for one returns ErrExpired (ids are monotonic, so any
// id below the high-water mark that is absent from the table must have
// existed and aged out).
func (s *Server) Build(id int) (*Build, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.builds[id]
	if !ok {
		if id >= 1 && id < s.nextID {
			return nil, fmt.Errorf("%w: build %d expired after its %s retention window", ErrExpired, id, s.cfg.Retention)
		}
		return nil, fmt.Errorf("%w: no build %d", ErrNotFound, id)
	}
	return b, nil
}

// QueueLength reports builds in state queued: the dispatchable queue
// plus failed-over builds sitting out their retry backoff. The backoff
// builds matter for virtual-clock drivers (DriveBuilds): their requeue
// timers only fire if the clock keeps advancing, so a driver that froze
// time whenever the dispatch queue emptied would strand them forever.
func (s *Server) QueueLength() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.m.queued)
}

// Running reports in-flight builds.
func (s *Server) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// pipelineLocked resolves a build's effective constraints and body:
// spec builds carry their own, job builds reference the job store.
// Callers hold s.mu.
func (s *Server) pipelineLocked(b *Build) (Constraints, RunFunc, error) {
	if b.run != nil {
		return b.cons, b.run, nil
	}
	job, ok := s.jobs[b.Job]
	if !ok {
		return Constraints{}, nil, fmt.Errorf("%w: job %q", ErrJobDeleted, b.Job)
	}
	if !job.Runnable() {
		// The job survived a restart but its closure body did not; the
		// build cannot run until someone re-edits the pipeline, and a
		// queued build failing fast beats one pending forever.
		return Constraints{}, nil, fmt.Errorf("%w: job %q has no pipeline body after recovery", ErrJobDeleted, b.Job)
	}
	return job.Constraints(), job.run, nil
}

// dispatch drains the queue in batches: one s.mu acquisition claims
// every build whose constraints are satisfiable right now in a single
// placement pass, then the claimed pipelines start outside the lock.
// On a virtual clock the whole drain runs under a clock hold: pipeline
// setup is synchronous (RunFuncs schedule their session timers before
// returning), and a concurrent Step driver (batterylab.DriveBuilds)
// must not advance the clock to some unrelated far-future deadline
// mid-setup — every build dispatched in one pass starts at the same
// instant it was dispatched at, deterministically.
//
// dispatch is non-reentrant by design: a call arriving while a drain
// loop is active (a pipeline completing synchronously inside
// startPicked, a probe result, a heartbeat on another goroutine) sets
// the redispatch flag and returns; the active loop rescans. The old
// per-build implementation recursed finish→dispatch→start→finish…,
// growing the stack linearly with queue depth for synchronous
// pipelines — this loop is that recursion converted to iteration.
func (s *Server) dispatch() {
	if v, ok := s.clock.(*simclock.Virtual); ok {
		release := v.Hold()
		defer release()
	}
	s.mu.Lock()
	if s.dispatching {
		s.redispatch = true
		s.mu.Unlock()
		return
	}
	s.dispatching = true
	for {
		s.redispatch = false
		picks, probes := s.drainLocked()
		s.mu.Unlock()

		// Launch every collected probe whether or not builds were also
		// picked: drainLocked latched cpuProbing for each, and dropping
		// one here would leave its node skipped ("probing controller
		// CPU") on every future scan with no probe ever in flight.
		progressed := false
		for _, pr := range probes {
			if _, inProcess := pr.node.(Pinger); inProcess {
				// In-process (the same marker the heartbeat prober
				// uses): probe synchronously — cheap, cannot hang, and
				// deterministic under the virtual clock — then rescan
				// with the fresh reading.
				pct, ok := parseCPU(pr.node.Exec("status"))
				s.recordCPU(pr.name, pct, ok)
				progressed = true
				continue
			}
			go func(pr cpuProbe) {
				pct, ok := parseCPU(pr.node.Exec("status"))
				s.recordCPU(pr.name, pct, ok)
				s.dispatch()
			}(pr)
		}
		for _, p := range picks {
			s.startPicked(p)
		}

		s.mu.Lock()
		// Rescan when a synchronous completion (or any concurrent
		// dispatch call) asked for it, or a synchronous probe refreshed
		// a reading the pass skipped on. A pass that merely started
		// builds needs no rescan: it already drained everything
		// claimable, and lock/executor state only changed in ways the
		// pass itself accounted for.
		if !s.redispatch && !progressed {
			break
		}
	}
	s.dispatching = false
	s.mu.Unlock()
}

// cpuProbe is one pending RequireLowCPU probe request, carried out of
// the scheduler lock.
type cpuProbe struct {
	name string
	node Node
}

// pick is one dispatchable build with its resolved placement. node is
// nil for a remote placement (the pipeline is the synthesized relay
// body and the vantage point lives on pl.peer's server).
type pick struct {
	b        *Build
	run      RunFunc
	node     Node
	nodeName string
	device   string
	locks    []string
}

// placement is placeLocked's resolution: where a build may run right
// now. node is nil for remote placements — the build routes to a
// vantage point peer advertised in its census, reachable at peerURL.
type placement struct {
	node     Node
	nodeName string
	device   string
	score    float64
	peer     string // "" = local
	peerURL  string
}

// lockName is the mutual-exclusion namespace of the placement's node:
// remote nodes are keyed per peer, so a peer's "pixel-1" never contends
// with a local node of the same name.
func (pl placement) lockName() string {
	if pl.peer == "" {
		return pl.nodeName
	}
	return pl.peer + "!" + pl.nodeName
}

// Pending-reason priorities. A build skipped for several reasons in
// one pass reports the highest-priority one — stably, instead of
// whichever check happened to run last. Executor saturation outranks
// everything (nothing dispatches regardless of other conditions, and
// it lets the pass stop evaluating the tail of a deep queue); below
// it, the order runs from policy caps down to transient gates.
const (
	prioExecutor = iota
	prioCampaignCap
	prioOwnerCap
	prioNodeUnavailable
	prioLockWait
	prioCPUProbe
	prioCPUGate
	prioNone // dispatchable
)

// drainLocked is the single placement pass: it scans the queue once,
// claiming every build that can start now (locks, counters and leases
// are taken immediately, so later candidates in the same pass see the
// updated state) and recording a stable pending reason for every build
// it skips. It also collects CPU probes to launch; builds of deleted
// jobs fail (and close their feeds through the hub) in place. Node
// probes (CPU gating) never run under s.mu: fresh cache values decide
// immediately; stale ones trigger a probe — in place for in-process
// nodes, on a goroutine for remote ones — and the candidate is skipped
// for this pass, so one hung node cannot delay dispatch (or Submit,
// Abort, status) for everyone else. Callers hold s.mu.
func (s *Server) drainLocked() ([]*pick, []cpuProbe) {
	var picks []*pick
	var probes []cpuProbe
	now := s.clock.Now()
	// skip records a build's pending reason through the s.mu-guarded
	// shadow, taking b.mu only when the reason actually changed — the
	// drain labels every skipped build every pass, and on a deep queue
	// almost all of those labels are repeats. The changed reason is
	// republished so snapshot-served status polls surface it.
	skip := func(b *Build, reason string) {
		if b.schedReason != reason {
			b.schedReason = reason
			b.setPendingReason(reason)
			s.publishBuildLocked(b)
		}
	}
	// The queue is compacted in place: w is the write index, engaged at
	// the first removal (-1 until then). A pass that claims and fails
	// nothing — every pass after saturation — leaves s.queue untouched
	// and allocates nothing.
	w := -1
	for i := 0; i < len(s.queue); i++ {
		cand := s.queue[i]
		if s.running >= s.cfg.Executors {
			// Saturated: nothing below can dispatch, and saturation is
			// the one condition that applies to every remaining build
			// identically — label the whole tail without evaluating
			// (expensive) placement and stop scanning.
			for _, c := range s.queue[i:] {
				skip(c, "waiting for a free executor")
			}
			if w >= 0 {
				w += copy(s.queue[w:], s.queue[i:])
			}
			break
		}
		cons, run, err := s.pipelineLocked(cand)
		if err != nil {
			// Deleted job: fail the build immediately instead of
			// skipping it forever.
			s.terminateLocked(cand, fmt.Errorf("build %d: %w (deleted while queued)", cand.ID, err))
			if w < 0 {
				w = i
			}
			continue
		}

		// Evaluate the skip conditions in priority order; the first
		// failing check is by construction the highest-priority reason,
		// so the recorded pending reason cannot churn between checks
		// evaluated later in the same pass.
		prio, reason := prioNone, ""
		if rec := s.campaigns[cand.campaign]; rec != nil &&
			rec.maxConcurrent > 0 && rec.running >= rec.maxConcurrent {
			prio, reason = prioCampaignCap, "campaign concurrency cap reached"
		}
		if cap := s.cfg.OwnerRunCap; prio == prioNone && cap > 0 && s.ownerRunning[cand.Owner] >= cap {
			prio, reason = prioOwnerCap, fmt.Sprintf("owner %s at the fair-share cap (%d running)", cand.Owner, cap)
		}
		var pl placement
		if prio == prioNone {
			var preason string
			pl, preason = s.placeLocked(cons, cand.wireSpec != nil, now)
			if pl.nodeName == "" {
				prio, reason = prioNodeUnavailable, preason
			}
		}
		var keys []string
		if prio == prioNone {
			keys = lockKeysFor(pl.lockName(), pl.device)
			if s.locksHeld(keys) {
				prio, reason = prioLockWait, fmt.Sprintf("waiting for %s", keys[0])
			}
		}
		// The CPU gate only applies to local placements: a routed build's
		// home peer enforces its own gate when it dispatches the relayed
		// spec.
		if prio == prioNone && cons.RequireLowCPU && pl.peer == "" {
			rec := s.recLocked(pl.nodeName)
			fresh := rec.cpuOK && rec.cpuAt.Add(s.cfg.CPUProbeTTL).After(now)
			switch {
			case !fresh:
				// A probe counts as in flight only within the node-loss
				// window; past it, the probe is presumed stuck on a
				// half-open connection and a new one may launch.
				inFlight := rec.cpuProbing && now.Sub(rec.cpuProbeAt) < s.cfg.OfflineAfter
				if !inFlight {
					rec.cpuProbing = true
					rec.cpuProbeAt = now
					probes = append(probes, cpuProbe{name: pl.nodeName, node: pl.node})
				}
				prio, reason = prioCPUProbe, "probing controller CPU"
			case rec.cpuPct >= s.cfg.LowCPUThreshold:
				prio, reason = prioCPUGate, fmt.Sprintf("controller CPU %.0f%% above the %.0f%% gate", rec.cpuPct, s.cfg.LowCPUThreshold)
			}
		}
		if prio != prioNone {
			skip(cand, reason)
			if w >= 0 {
				s.queue[w] = cand
				w++
			}
			continue
		}

		// Claim: take locks, bump counters, lease. The build leaves the
		// queue by not advancing the write index past it.
		if w < 0 {
			w = i
		}
		for _, k := range keys {
			s.locks[k] = cand.ID
		}
		s.running++
		s.m.queued--
		s.m.running++
		s.m.dispatched++
		s.m.dispatchLatency.Observe(now.Sub(cand.queuedAt).Seconds())
		if rec := s.campaigns[cand.campaign]; rec != nil {
			rec.running++
		}
		if pl.peer == "" {
			// Remote placements skip the per-node bookkeeping: nodeRecs
			// describes nodes attached to this server, and a peer's node
			// must never leak into the local census.
			s.recLocked(pl.nodeName).running++
		} else {
			s.m.clusterRouted++
			run = s.relayRun(cand, pl)
		}
		s.ownerRunning[cand.Owner]++
		cand.schedReason = ""

		cand.mu.Lock()
		cand.state = StateRunning
		cand.startedAt = now
		cand.attempt++
		cand.nodeName = pl.nodeName
		cand.routedVia = pl.peer
		cand.pendingReason = ""
		cand.heldLocks = keys
		cand.placementScore = pl.score
		// The enqueue-time aging timer is done: left armed, it would
		// outlive a failover and fail the requeued build against the
		// original deadline instead of the re-armed one.
		if cand.agingTimer != nil {
			cand.agingTimer.Stop()
			cand.agingTimer = nil
		}
		attempt := cand.attempt
		switch {
		case pl.peer != "":
			// A routed build's lease is the peer's heartbeat: the relay
			// reports most failures itself, and the lease catches the
			// peer falling silent mid-run.
			peer := pl.peer
			cand.leaseTimer = s.clock.AfterFunc(s.cfg.OfflineAfter, func() {
				s.checkPeerLease(cand, attempt, peer)
			})
		case s.nodeRecs[pl.nodeName] != nil && s.nodeRecs[pl.nodeName].monitored:
			cand.leaseTimer = s.clock.AfterFunc(s.cfg.OfflineAfter, func() {
				s.checkLease(cand, attempt)
			})
		}
		cand.mu.Unlock()
		s.logStore(store.Record{T: store.TBuildStarted, BuildID: cand.ID,
			NodeName: pl.nodeName, Attempt: attempt, AtNS: now.UnixNano()})
		s.publishBuildLocked(cand)

		picks = append(picks, &pick{b: cand, run: run, node: pl.node,
			nodeName: pl.nodeName, device: pl.device, locks: keys})
	}
	if w >= 0 {
		// Nil the vacated tail so the backing array does not pin
		// removed builds past their retention window.
		for j := w; j < len(s.queue); j++ {
			s.queue[j] = nil
		}
		s.queue = s.queue[:w]
	}
	s.publishNodesLocked()
	return picks, probes
}

// placeLocked resolves where a build may run right now: its preferred
// node when registered and online, a peer-advertised vantage point of
// the same name when the build is routable (it carries a wire spec the
// relay can resubmit — closures cannot cross the wire), or — for
// fallback-enabled builds — the highest-scoring online candidate, local
// nodes and remote census entries scored by the same placer (remote
// ones carry the ScoreWeights.Remote penalty). An empty nodeName comes
// with the human-readable reason the build keeps waiting. Callers hold
// s.mu.
func (s *Server) placeLocked(cons Constraints, routable bool, now time.Time) (placement, string) {
	rec := s.nodeRecs[cons.Node]
	n, err := s.Nodes.Get(cons.Node)
	// A removed node that reappeared through the plain registry path is
	// back; clear the tombstone so it is placeable again.
	if err == nil && rec != nil && rec.removed {
		rec.removed = false
	}
	var reason string
	switch {
	case err == nil && (rec == nil || !rec.removed):
		h := s.healthLocked(rec, now)
		if h == HealthOnline {
			// Pinned placement: the preferred node is up, so it wins
			// outright — scoring only arbitrates substitutes. The score
			// is still computed for the status surface.
			score := 0.0
			if rec != nil {
				score = s.placer.Score(s.candidateLocked(rec, cons.Device, cons.Device, now))
			}
			return placement{node: n, nodeName: cons.Node, device: cons.Device, score: score}, ""
		}
		reason = fmt.Sprintf("node %q is %s", cons.Node, h)
	case rec != nil && rec.removed:
		reason = fmt.Sprintf("node %q was removed", cons.Node)
	default:
		reason = fmt.Sprintf("waiting for node %q to register", cons.Node)
	}
	var remotes []cluster.Candidate
	if routable && s.peerRelay != nil {
		remotes = s.cluster.Candidates(now)
	}
	// Remote pinned: an online peer advertises a node with exactly the
	// requested name (first peer in name order wins — deterministic).
	// Like the local fast path this needs no Fallback flag: the build
	// still runs on the node it asked for, just via its home server.
	for _, c := range remotes {
		if c.Node.Name != cons.Node {
			continue
		}
		// An empty census device list means "not enumerated" (the peer
		// only caches serials for monitored nodes), not "no devices":
		// the peer's own scheduler is the authority and rejects an
		// unknown serial with a typed 4xx the relay treats as permanent.
		if cons.Device != "" && len(c.Node.Devices) > 0 && !containsString(c.Node.Devices, cons.Device) {
			continue
		}
		pc := remoteCandidate(c, cons.Device, cons.Device)
		return placement{nodeName: c.Node.Name, device: cons.Device,
			score: s.placer.Score(pc), peer: c.Peer, peerURL: c.PeerURL}, ""
	}
	if !cons.Fallback {
		return placement{}, reason
	}
	// Fallback placement: score every eligible (node, device) pair and
	// take the best. Local nodes scan first in sorted order, then remote
	// candidates in (peer, node) order; strict > keeps the first pair on
	// ties, so substitution stays deterministic run to run and local
	// nodes win score ties against remote ones.
	var (
		best  placement
		found bool
	)
	consider := func(pl placement, score float64) {
		if s.locksHeld(lockKeysFor(pl.lockName(), pl.device)) {
			return
		}
		if !found || score > best.score {
			pl.score = score
			best, found = pl, true
		}
	}
	names := make([]string, 0, len(s.nodeRecs))
	for name := range s.nodeRecs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sub := s.nodeRecs[name]
		if name == cons.Node || !sub.monitored || sub.removed {
			continue
		}
		if s.healthLocked(sub, now) != HealthOnline {
			continue
		}
		subNode, err := s.Nodes.Get(name)
		if err != nil {
			continue
		}
		local := func(device string) {
			consider(placement{node: subNode, nodeName: name, device: device},
				s.placer.Score(s.candidateLocked(sub, device, cons.Device, now)))
		}
		if cons.Device == "" {
			local("")
			continue
		}
		for _, d := range sub.devices {
			local(d)
		}
	}
	for _, c := range remotes {
		if c.Node.Name == cons.Node {
			continue // the remote pinned path already rejected it
		}
		if len(c.Node.Devices) == 0 {
			// Unenumerated census: usable only for device-free specs —
			// substituting a pinned device needs a concrete serial to
			// offer, which this peer never advertised.
			if cons.Device == "" {
				consider(placement{nodeName: c.Node.Name, peer: c.Peer, peerURL: c.PeerURL},
					s.placer.Score(remoteCandidate(c, "", "")))
			}
			continue
		}
		for _, d := range c.Node.Devices {
			consider(placement{nodeName: c.Node.Name, device: d, peer: c.Peer, peerURL: c.PeerURL},
				s.placer.Score(remoteCandidate(c, d, cons.Device)))
		}
	}
	if found {
		return best, ""
	}
	return placement{}, reason + "; no fallback node available"
}

// remoteCandidate assembles the scored view of a peer-advertised
// (node, device) pair. Health is online by construction (the registry
// filters candidates), and the reliability fields stay zero — this
// server has no local telemetry for a remote vantage point; the flat
// ScoreWeights.Remote penalty stands in for that uncertainty.
func remoteCandidate(c cluster.Candidate, device, wantDevice string) PlacementCandidate {
	pc := PlacementCandidate{
		Node:    c.Node.Name,
		Device:  device,
		Peer:    c.Peer,
		Health:  HealthOnline,
		Running: c.Node.Running,
	}
	if wantDevice != "" && device != "" {
		pc.ModelMatch = DeviceModel(device) == DeviceModel(wantDevice)
	}
	return pc
}

func containsString(list []string, want string) bool {
	for _, v := range list {
		if v == want {
			return true
		}
	}
	return false
}

// startPicked runs a claimed build's pipeline.
func (s *Server) startPicked(p *pick) {
	b := p.b
	b.mu.Lock()
	attempt := b.attempt
	b.mu.Unlock()

	ctx := &BuildContext{Build: b, Node: p.node, Device: p.device, attempt: attempt}
	if attempt > 1 {
		ctx.Logf("build #%d of %s started on %s (attempt %d)", b.ID, b.Job, p.nodeName, attempt)
	} else {
		ctx.Logf("build #%d of %s started on %s", b.ID, b.Job, p.nodeName)
	}

	var once sync.Once
	done := func(err error) {
		once.Do(func() {
			s.finish(b, attempt, p.locks, err)
		})
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				done(fmt.Errorf("pipeline panic: %v", r))
			}
		}()
		p.run(ctx, done)
	}()
}

// lockKeysFor computes the mutual-exclusion keys for a placement.
func lockKeysFor(node, device string) []string {
	if device != "" {
		return []string{node + "/" + device}
	}
	// Jobs without a device still serialize per node.
	return []string{node}
}

func (s *Server) locksHeld(keys []string) bool {
	for _, k := range keys {
		if _, held := s.locks[k]; held {
			return true
		}
		// A device lock also conflicts with a whole-node lock and vice
		// versa.
		if i := strings.IndexByte(k, '/'); i >= 0 {
			if _, held := s.locks[k[:i]]; held {
				return true
			}
		} else {
			for held := range s.locks {
				if strings.HasPrefix(held, k+"/") {
					return true
				}
			}
		}
	}
	return false
}

// parseCPU extracts the cpu=NN.N% field from a node's status output.
func parseCPU(out string, err error) (float64, bool) {
	if err != nil {
		return 0, false
	}
	for _, f := range strings.Fields(out) {
		if strings.HasPrefix(f, "cpu=") {
			v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(f, "cpu="), "%"), 64)
			if err != nil {
				return 0, false
			}
			return v, true
		}
	}
	return 0, false
}

// recordCPU stores a probe result in the node's cache. A failed probe
// records "not low" so the gate stays closed until the node answers.
func (s *Server) recordCPU(name string, pct float64, ok bool) {
	s.mu.Lock()
	rec := s.recLocked(name)
	rec.cpuProbing = false
	rec.cpuOK = true
	rec.cpuAt = s.clock.Now()
	if ok {
		rec.cpuPct = pct
	} else {
		rec.cpuPct = 100
	}
	s.mu.Unlock()
}

// checkLease is the per-attempt lease watchdog for builds running on
// monitored nodes. If the node has gone offline the build fails over;
// while the node keeps beating, the lease re-arms off the latest beat.
// Removal is not a lease break: admin-removed nodes let running builds
// finish (see RemoveNode).
func (s *Server) checkLease(b *Build, attempt int) {
	s.mu.Lock()
	b.mu.Lock()
	if b.state != StateRunning || b.attempt != attempt {
		b.mu.Unlock()
		s.mu.Unlock()
		return
	}
	nodeName := b.nodeName
	b.mu.Unlock()
	rec := s.nodeRecs[nodeName]
	if rec == nil || !rec.monitored || rec.removed {
		// Dormant, not dead: removal intentionally lets running builds
		// finish and unmonitored nodes hold no lease — but keep the
		// watchdog armed so protection resumes if the node is
		// re-monitored later and then dies.
		b.mu.Lock()
		b.leaseTimer = s.clock.AfterFunc(s.cfg.OfflineAfter, func() { s.checkLease(b, attempt) })
		b.mu.Unlock()
		s.mu.Unlock()
		return
	}
	now := s.clock.Now()
	if s.healthLocked(rec, now) != HealthOffline {
		// Node still beating (or merely suspect): renew the lease to one
		// offline window past its latest beat.
		next := rec.lastBeat.Add(s.cfg.OfflineAfter).Sub(now)
		if next < s.cfg.HeartbeatEvery {
			next = s.cfg.HeartbeatEvery
		}
		b.mu.Lock()
		b.leaseTimer = s.clock.AfterFunc(next, func() { s.checkLease(b, attempt) })
		b.mu.Unlock()
		s.mu.Unlock()
		return
	}
	cancel := s.failoverLocked(b, fmt.Sprintf("node %q offline (last heartbeat %s ago)", nodeName, now.Sub(rec.lastBeat)))
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	s.dispatch()
}

// failoverLocked reclaims a running build from a lost node: locks are
// released, the executor slot is freed, and the build is either
// requeued with exponential backoff (retry budget permitting) or failed
// with ErrNodeLost. It returns the abandoned attempt's cancel hook for
// the caller to invoke outside the lock (tearing down a session that
// might still be alive on a merely-partitioned node). Callers hold
// s.mu.
func (s *Server) failoverLocked(b *Build, reason string) (cancel func()) {
	now := s.clock.Now()
	for _, k := range b.heldLocks {
		delete(s.locks, k)
	}
	b.heldLocks = nil
	s.running--
	s.m.leaseBreaks++
	s.m.running--
	if rec := s.campaigns[b.campaign]; rec != nil {
		rec.running--
	}
	s.ownerRunDoneLocked(b.Owner)
	b.mu.Lock()
	if rec := s.nodeRecs[b.nodeName]; rec != nil {
		if rec.running > 0 {
			rec.running--
		}
		// Reliability telemetry: the node lost a leased build. The
		// placer penalizes it on every future fallback decision.
		rec.failovers++
	}
	if b.leaseTimer != nil {
		b.leaseTimer.Stop()
		b.leaseTimer = nil
	}
	// Abandon the attempt: later done() calls from its pipeline are
	// stale (attempt/state guarded in finish); its cancel hook is
	// detached WITHOUT arming cancelWant (as Abort would), which would
	// taint the retried build with the canceled flag.
	cancel = b.canceler
	b.canceler = nil

	b.feed.PostEvent(api.BuildEvent{
		Build: b.ID,
		Node:  b.nodeName,
		Phase: api.EventFailover,
		AtNS:  now.UnixNano(),
		Error: reason,
	})

	if b.retries >= s.cfg.MaxRetries {
		fmt.Fprintf(&b.log, "build lost: %s; retry budget (%d) spent\n", reason, s.cfg.MaxRetries)
		b.state = StateFailure
		s.m.failed++
		s.ownerSettledLocked(b.Owner)
		if b.routedVia != "" {
			// A routed build lost with its peer is both families at once:
			// ErrPeerLost for callers that care about federation, and
			// ErrNodeLost so the wire's node_lost flag (and every existing
			// failover consumer) keeps working.
			b.err = markedErr(
				fmt.Sprintf("%s: %s after %d retries", ErrNodeLost.Error(), reason, b.retries),
				ErrNodeLost, ErrPeerLost)
		} else {
			b.err = fmt.Errorf("%w: %s after %d retries", ErrNodeLost, reason, b.retries)
		}
		b.finishedAt = now
		b.stopTimersLocked()
		s.logBuildFinishedLocked(b)
		b.mu.Unlock()
		s.hub.Close(b.ID) // leaf lock: legal under s.mu
		s.publishBuildLocked(b)
		s.publishNodesLocked()
		s.scheduleRetention(b)
		return cancel
	}

	b.retries++
	s.m.failoverRequeues++
	s.m.queued++
	backoff := s.cfg.RetryBackoff << (b.retries - 1)
	b.state = StateQueued
	b.pendingReason = fmt.Sprintf("%s; retry %d/%d in %s", reason, b.retries, s.cfg.MaxRetries, backoff)
	b.schedReason = b.pendingReason // s.mu held; keep the dispatch shadow in sync
	attempt := b.attempt
	fmt.Fprintf(&b.log, "build requeued: %s (retry %d/%d in %s)\n", reason, b.retries, s.cfg.MaxRetries, backoff)
	b.retryTimer = s.clock.AfterFunc(backoff, func() { s.requeue(b, attempt) })
	s.logStore(store.Record{T: store.TBuildFailover, BuildID: b.ID,
		Retries: b.retries, Reason: reason, AtNS: now.UnixNano()})
	b.mu.Unlock()
	s.publishBuildLocked(b)
	s.publishNodesLocked()
	return cancel
}

// requeue returns a failed-over build to the queue once its backoff
// elapses. An abort that arrived during the backoff settles the build
// as aborted instead.
func (s *Server) requeue(b *Build, attempt int) {
	s.mu.Lock()
	b.mu.Lock()
	if b.state != StateQueued || b.attempt != attempt {
		b.mu.Unlock()
		s.mu.Unlock()
		return
	}
	b.retryTimer = nil
	if b.cancelWant {
		b.state = StateAborted
		s.m.queued--
		s.m.aborted++
		s.ownerSettledLocked(b.Owner)
		b.finishedAt = s.clock.Now()
		b.stopTimersLocked()
		fmt.Fprintf(&b.log, "build aborted during failover backoff\n")
		s.logBuildFinishedLocked(b)
		b.mu.Unlock()
		s.hub.Close(b.ID)
		s.publishBuildLocked(b)
		s.mu.Unlock()
		s.scheduleRetention(b)
		return
	}
	// Back in the queue: re-arm aging so a node that never returns
	// (with no fallback available) still bounds the wait.
	b.agingTimer = s.clock.AfterFunc(s.cfg.PendingTimeout, func() { s.checkAging(b) })
	b.mu.Unlock()
	s.queue = append(s.queue, b)
	s.publishBuildLocked(b)
	s.publishNodesLocked()
	s.mu.Unlock()
	s.dispatch()
}

// checkAging fails a build that is still queued after PendingTimeout
// with no node to run it: the target never registered, was removed, or
// is offline. Builds waiting on a live-but-busy node are untouched.
func (s *Server) checkAging(b *Build) {
	s.mu.Lock()
	idx := -1
	for i, cand := range s.queue {
		if cand == b {
			idx = i
			break
		}
	}
	if idx < 0 || b.State() != StateQueued {
		s.mu.Unlock()
		return // dispatched, finished, or in a failover backoff window
	}
	rearm := func() {
		b.mu.Lock()
		b.agingTimer = s.clock.AfterFunc(s.cfg.PendingTimeout, func() { s.checkAging(b) })
		b.mu.Unlock()
	}
	cons, _, err := s.pipelineLocked(b)
	if err == nil {
		now := s.clock.Now()
		pl, _ := s.placeLocked(cons, b.wireSpec != nil, now)
		if pl.nodeName != "" {
			// Placeable: the wait is lock/executor pressure, not node
			// loss. Keep watching in case the node dies later.
			rearm()
			s.mu.Unlock()
			return
		}
		// Aging only fires when no viable node is alive: the preferred
		// node, or — for fallback builds — any online monitored
		// substitute. A live-but-busy node means the queue is draining
		// and the build will run; killing it would lose campaign tails
		// whose backlog on the survivor exceeds PendingTimeout.
		rec := s.nodeRecs[cons.Node]
		alive := false
		if _, regErr := s.Nodes.Get(cons.Node); regErr == nil &&
			(rec == nil || !rec.removed) && s.healthLocked(rec, now) != HealthOffline {
			alive = true
		}
		if !alive && cons.Fallback {
			for name, sub := range s.nodeRecs {
				if name == cons.Node || !sub.monitored || sub.removed {
					continue
				}
				if s.healthLocked(sub, now) != HealthOnline {
					continue
				}
				if _, regErr := s.Nodes.Get(name); regErr == nil {
					alive = true
					break
				}
			}
		}
		if !alive && b.wireSpec != nil && s.peerRelay != nil {
			// Federation keeps pinned builds waiting too: a peer that is
			// not offline and advertises the requested node (or, for
			// fallback builds, any online node) may take the build on its
			// next heartbeat.
			for _, p := range s.cluster.Peers() {
				if st, _, ok := s.cluster.PeerState(p.Name, now); !ok || st == cluster.StateOffline {
					continue
				}
				for _, n := range p.Nodes {
					if n.Name == cons.Node || (cons.Fallback && n.Health == api.HealthOnline) {
						alive = true
						break
					}
				}
				if alive {
					break
				}
			}
		}
		if alive {
			rearm()
			s.mu.Unlock()
			return
		}
	}
	s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
	s.m.agedOut++
	reason := b.PendingReason()
	if reason == "" {
		reason = "its node never appeared"
	}
	s.terminateLocked(b, fmt.Errorf("%w: build %d waited %s: %s",
		ErrNodeLost, b.ID, s.cfg.PendingTimeout, reason))
	s.publishNodesLocked()
	s.mu.Unlock()
}

// terminateLocked marks a never-dispatched build failed, closes its
// feed through the hub and republishes its served status. Callers hold
// s.mu (but not b.mu). The old contract — "close the feed after
// releasing s.mu" — is gone: the hub's lock is a leaf, so closing
// under the scheduler lock is safe by construction, and callers no
// longer carry lists of feeds to close on the way out.
func (s *Server) terminateLocked(b *Build, err error) {
	s.m.queued--
	s.m.failed++
	s.ownerSettledLocked(b.Owner)
	b.mu.Lock()
	b.state = StateFailure
	b.err = err
	b.finishedAt = s.clock.Now()
	b.stopTimersLocked()
	fmt.Fprintf(&b.log, "build failed: %v\n", err)
	s.logBuildFinishedLocked(b)
	b.mu.Unlock()
	s.hub.Close(b.ID)
	s.publishBuildLocked(b)
	s.scheduleRetention(b)
}

// finish completes a build, releases its locks and re-runs dispatch.
// Completions from a failed-over attempt (the done() of a pipeline the
// scheduler already reclaimed) are stale and ignored. A build whose
// pipeline errored after an explicit cancel request finishes as
// aborted, not failed — the distinction the v1 Canceled flag carries to
// remote clients.
func (s *Server) finish(b *Build, attempt int, locks []string, err error) {
	s.mu.Lock()
	b.mu.Lock()
	if b.state != StateRunning || b.attempt != attempt {
		fmt.Fprintf(&b.log, "ignoring stale completion from attempt %d\n", attempt)
		b.mu.Unlock()
		s.mu.Unlock()
		return
	}
	b.finishedAt = s.clock.Now()
	switch {
	case err != nil && b.cancelWant:
		b.state = StateAborted
		s.m.aborted++
		b.err = err
		fmt.Fprintf(&b.log, "build canceled: %v\n", err)
	case err != nil:
		b.state = StateFailure
		s.m.failed++
		b.err = err
		fmt.Fprintf(&b.log, "build failed: %v\n", err)
	default:
		b.state = StateSuccess
		s.m.succeeded++
		fmt.Fprintf(&b.log, "build succeeded\n")
	}
	s.m.running--
	b.stopTimersLocked()
	s.logBuildFinishedLocked(b)
	nodeName := b.nodeName
	deviceTime := b.finishedAt.Sub(b.startedAt)
	b.mu.Unlock()

	for _, k := range locks {
		delete(s.locks, k)
	}
	s.running--
	if rec := s.campaigns[b.campaign]; rec != nil {
		rec.running--
	}
	if rec := s.nodeRecs[nodeName]; rec != nil && rec.running > 0 {
		rec.running--
	}
	s.ownerRunDoneLocked(b.Owner)
	s.ownerSettledLocked(b.Owner)
	// Close the feed and republish served state while still inside the
	// scheduler's critical section: the hub and read plane are leaf
	// locks, and publishing here keeps snapshot order identical to
	// transition order (monotonic reads for status pollers).
	s.hub.Close(b.ID)
	s.publishBuildLocked(b)
	s.publishNodesLocked()
	s.mu.Unlock()

	s.chargeRun(b.Owner, deviceTime)
	s.scheduleRetention(b)
	s.dispatch()
}

// scheduleRetention purges a finished build's workspace and log after
// the retention window and evicts the record itself to a tombstone:
// s.builds stops growing without bound, and Build(id) answers
// ErrExpired for ids that aged out. A campaign whose last member
// expires is evicted with it, closing the same growth leak one level
// up.
func (s *Server) scheduleRetention(b *Build) {
	s.clock.AfterFunc(s.cfg.Retention, func() {
		b.workspace.purge()
		b.mu.Lock()
		b.log.Reset()
		b.mu.Unlock()
		s.mu.Lock()
		delete(s.builds, b.ID)
		s.hub.Remove(b.ID)
		s.reads.removeBuild(b.ID)
		s.logStore(store.Record{T: store.TBuildExpired, BuildID: b.ID})
		if rec := s.campaigns[b.campaign]; rec != nil {
			live := false
			for _, bid := range rec.builds {
				if _, ok := s.builds[bid]; ok {
					live = true
					break
				}
			}
			if !live {
				delete(s.campaigns, b.campaign)
				s.reads.removeCampaign(b.campaign)
				s.logStore(store.Record{T: store.TCampaignExpired, CampaignID: b.campaign})
			}
		}
		s.mu.Unlock()
	})
}

// Kick re-evaluates the queue (used after node registration and by the
// periodic scheduler tick).
func (s *Server) Kick() { s.dispatch() }

// Cron registers a recurring maintenance task executed directly against
// a node (outside the build queue), every period. It returns a stop
// function. The paper's examples: renewing wildcard certificates,
// ensuring the power meter is off when idle, factory-resetting devices.
func (s *Server) Cron(name string, period time.Duration, task func()) (stop func()) {
	entry := &cronEntry{name: name}
	entry.ticker = simclock.NewTicker(s.clock, period, func(time.Time) {
		entry.runs++
		task()
	})
	s.mu.Lock()
	s.crons = append(s.crons, entry)
	s.mu.Unlock()
	return entry.ticker.Stop
}

// CronRuns reports how many times the named cron fired.
func (s *Server) CronRuns(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.crons {
		if c.name == name {
			return c.runs
		}
	}
	return 0
}
