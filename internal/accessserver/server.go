package accessserver

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"batterylab/internal/api"
	"batterylab/internal/simclock"
)

// Config tunes the access server.
type Config struct {
	// Executors bounds concurrently running builds (Jenkins executors).
	Executors int
	// Retention is how long finished builds keep logs and artifacts
	// ("several days", §3.1).
	Retention time.Duration
	// LowCPUThreshold gates RequireLowCPU dispatch.
	LowCPUThreshold float64
}

func (c Config) withDefaults() Config {
	if c.Executors == 0 {
		c.Executors = 2
	}
	if c.Retention == 0 {
		c.Retention = 5 * 24 * time.Hour
	}
	if c.LowCPUThreshold == 0 {
		c.LowCPUThreshold = 50
	}
	return c
}

// SpecBackend compiles declarative v1 experiment specs into runnable
// pipelines. The platform layer (internal/core) implements it against
// its workload registry and installs it with SetSpecBackend; the server
// itself stays ignorant of workload semantics.
type SpecBackend interface {
	// Compile turns a wire spec into dispatch constraints and a
	// pipeline body. Errors must wrap the package sentinels (ErrInvalid
	// for bad specs, ErrNotFound for unknown nodes/devices/workloads)
	// so the HTTP layer maps them to proper statuses.
	Compile(spec api.ExperimentSpec) (Constraints, RunFunc, error)
	// WorkloadNames lists the registry's workloads, sorted.
	WorkloadNames() []string
}

// Server is the access server: users, nodes, jobs, the build queue and
// its scheduler.
type Server struct {
	cfg   Config
	clock simclock.Clock

	Users *Users
	Nodes *Nodes

	mu      sync.Mutex
	jobs    map[string]*Job
	builds  map[int]*Build
	queue   []*Build
	running int
	nextID  int
	// locks: "node/device" and "node" keys held by running builds.
	locks map[string]int // key -> build ID
	crons []*cronEntry

	specs        SpecBackend
	campaigns    map[int]*campaignRec
	nextCampaign int
}

// campaignRec tracks one campaign's builds and its concurrency cap.
type campaignRec struct {
	builds        []int
	maxConcurrent int
	running       int
}

type cronEntry struct {
	name   string
	ticker *simclock.Ticker
	runs   int
}

// New creates an access server.
func New(clock simclock.Clock, cfg Config) *Server {
	return &Server{
		cfg:          cfg.withDefaults(),
		clock:        clock,
		Users:        NewUsers(),
		Nodes:        NewNodes(),
		jobs:         make(map[string]*Job),
		builds:       make(map[int]*Build),
		nextID:       1,
		locks:        make(map[string]int),
		campaigns:    make(map[int]*campaignRec),
		nextCampaign: 1,
	}
}

// SetSpecBackend installs the declarative spec compiler. Without one,
// v1 experiment submission is rejected with ErrInvalid.
func (s *Server) SetSpecBackend(b SpecBackend) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.specs = b
}

// WorkloadNames lists the spec backend's registered workloads (empty
// without a backend).
func (s *Server) WorkloadNames() []string {
	s.mu.Lock()
	backend := s.specs
	s.mu.Unlock()
	if backend == nil {
		return nil
	}
	return backend.WorkloadNames()
}

// CreateJob stores a new (unapproved) pipeline. The user needs
// PermCreateJob.
func (s *Server) CreateJob(user *User, name string, cons Constraints, run RunFunc) (*Job, error) {
	if !Allowed(user.Role, PermCreateJob) {
		return nil, fmt.Errorf("%w: %s (%s) may not create jobs", ErrForbidden, user.Name, user.Role)
	}
	if name == "" || run == nil {
		return nil, fmt.Errorf("%w: job needs a name and a pipeline body", ErrInvalid)
	}
	if cons.Node == "" {
		return nil, fmt.Errorf("%w: job %q needs a target node", ErrInvalid, name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.jobs[name]; dup {
		return nil, fmt.Errorf("%w: job %q exists", ErrConflict, name)
	}
	j := &Job{Name: name, Owner: user.Name, constraints: cons, run: run, revision: 1}
	// Admins' own pipelines are implicitly approved.
	j.approved = user.Role == RoleAdmin
	s.jobs[name] = j
	return j, nil
}

// EditJob replaces a job's pipeline; the revision needs fresh approval
// (§3.1: "every pipeline change has to be approved by an
// administrator").
func (s *Server) EditJob(user *User, name string, cons Constraints, run RunFunc) error {
	if !Allowed(user.Role, PermEditJob) {
		return fmt.Errorf("%w: %s (%s) may not edit jobs", ErrForbidden, user.Name, user.Role)
	}
	j, err := s.Job(name)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.constraints = cons
	j.run = run
	j.revision++
	j.approved = user.Role == RoleAdmin
	return nil
}

// ApproveJob marks the current revision runnable (admin only).
func (s *Server) ApproveJob(user *User, name string) error {
	if !Allowed(user.Role, PermApprovePipeline) {
		return fmt.Errorf("%w: %s (%s) may not approve pipelines", ErrForbidden, user.Name, user.Role)
	}
	j, err := s.Job(name)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.approved = true
	return nil
}

// Job resolves a job by name.
func (s *Server) Job(name string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[name]
	if !ok {
		return nil, fmt.Errorf("%w: no job %q", ErrNotFound, name)
	}
	return j, nil
}

// Jobs lists job names sorted.
func (s *Server) Jobs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.jobs))
	for n := range s.jobs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Submit queues a build of the job. The user needs PermRunJob and the
// job's current revision must be approved.
func (s *Server) Submit(user *User, jobName string) (*Build, error) {
	if !Allowed(user.Role, PermRunJob) {
		return nil, fmt.Errorf("%w: %s (%s) may not run jobs", ErrForbidden, user.Name, user.Role)
	}
	j, err := s.Job(jobName)
	if err != nil {
		return nil, err
	}
	if !j.Approved() {
		return nil, fmt.Errorf("%w: job %q revision %d awaits admin approval", ErrConflict, jobName, j.Revision())
	}
	s.mu.Lock()
	b := s.enqueueLocked(user.Name, jobName, 0, Constraints{}, nil)
	s.mu.Unlock()
	s.dispatch()
	return b, nil
}

// enqueueLocked creates a build and appends it to the queue. run is nil
// for job builds (the pipeline is looked up at dispatch time) and set
// for spec builds, which carry their own constraints and body. Callers
// hold s.mu.
func (s *Server) enqueueLocked(owner, jobName string, campaign int, cons Constraints, run RunFunc) *Build {
	b := &Build{
		ID:        s.nextID,
		Job:       jobName,
		Owner:     owner,
		campaign:  campaign,
		cons:      cons,
		run:       run,
		queuedAt:  s.clock.Now(),
		workspace: NewWorkspace(),
		feed:      newFeed(),
	}
	s.nextID++
	s.builds[b.ID] = b
	s.queue = append(s.queue, b)
	return b
}

// SubmitSpec compiles a declarative v1 experiment spec through the
// installed backend and queues it as a build — no pre-created job, no
// pipeline-approval round: the spec can only name vetted registry
// workloads, so the §3.1 closure-approval gate does not apply. The user
// needs PermRunJob.
func (s *Server) SubmitSpec(user *User, spec api.ExperimentSpec) (*Build, error) {
	if !Allowed(user.Role, PermRunJob) {
		return nil, fmt.Errorf("%w: %s (%s) may not run experiments", ErrForbidden, user.Name, user.Role)
	}
	s.mu.Lock()
	backend := s.specs
	s.mu.Unlock()
	if backend == nil {
		return nil, fmt.Errorf("%w: this server has no spec backend; submit jobs instead", ErrInvalid)
	}
	cons, run, err := backend.Compile(spec)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	b := s.enqueueLocked(user.Name, specJobName(spec), 0, cons, run)
	s.mu.Unlock()
	s.dispatch()
	return b, nil
}

// SubmitCampaign atomically queues one build per experiment in the
// campaign: every spec is compiled before any is enqueued, so a
// campaign with one bad spec queues nothing. Builds fan out across
// vantage points through the normal scheduler (per-node/device locks,
// executor cap) plus the campaign's own MaxConcurrent bound. It returns
// the campaign id and its builds, index-aligned with the specs.
func (s *Server) SubmitCampaign(user *User, cs api.CampaignSpec) (int, []*Build, error) {
	if !Allowed(user.Role, PermRunJob) {
		return 0, nil, fmt.Errorf("%w: %s (%s) may not run experiments", ErrForbidden, user.Name, user.Role)
	}
	s.mu.Lock()
	backend := s.specs
	s.mu.Unlock()
	if backend == nil {
		return 0, nil, fmt.Errorf("%w: this server has no spec backend; submit jobs instead", ErrInvalid)
	}
	if err := cs.Validate(); err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if len(cs.Experiments) > MaxCampaignExperiments {
		return 0, nil, fmt.Errorf("%w: campaign has %d experiments (max %d)",
			ErrInvalid, len(cs.Experiments), MaxCampaignExperiments)
	}
	type compiled struct {
		cons Constraints
		run  RunFunc
		name string
	}
	pipelines := make([]compiled, len(cs.Experiments))
	for i, spec := range cs.Experiments {
		cons, run, err := backend.Compile(spec)
		if err != nil {
			return 0, nil, fmt.Errorf("experiments[%d]: %w", i, err)
		}
		pipelines[i] = compiled{cons, run, specJobName(spec)}
	}
	s.mu.Lock()
	id := s.nextCampaign
	s.nextCampaign++
	rec := &campaignRec{maxConcurrent: cs.MaxConcurrent}
	s.campaigns[id] = rec
	builds := make([]*Build, len(pipelines))
	for i, p := range pipelines {
		builds[i] = s.enqueueLocked(user.Name, p.name, id, p.cons, p.run)
		rec.builds = append(rec.builds, builds[i].ID)
	}
	s.mu.Unlock()
	s.dispatch()
	return id, builds, nil
}

// MaxCampaignExperiments bounds one campaign submission; larger sweeps
// split into multiple campaigns.
const MaxCampaignExperiments = 1024

// specJobName labels a spec build for status displays.
func specJobName(spec api.ExperimentSpec) string {
	return "spec:" + spec.Workload.Name + "@" + spec.Node
}

// CampaignBuilds resolves a campaign's builds in submission order.
func (s *Server) CampaignBuilds(id int) ([]*Build, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.campaigns[id]
	if !ok {
		return nil, fmt.Errorf("%w: no campaign %d", ErrNotFound, id)
	}
	out := make([]*Build, len(rec.builds))
	for i, bid := range rec.builds {
		out[i] = s.builds[bid]
	}
	return out, nil
}

// Abort cancels a build: a queued build is removed from the queue and
// marked aborted; a running build has its pipeline's cancel hook
// invoked (the measurement session tears down and the build finishes
// with its cancellation error). Aborting a finished build is a
// conflict. The user needs PermRunJob and must own the build (admins
// may cancel anyone's).
func (s *Server) Abort(user *User, id int) error {
	if !Allowed(user.Role, PermRunJob) {
		return fmt.Errorf("%w: %s (%s) may not cancel builds", ErrForbidden, user.Name, user.Role)
	}
	b, err := s.Build(id)
	if err != nil {
		return err
	}
	if user.Role != RoleAdmin && b.Owner != user.Name {
		return fmt.Errorf("%w: build %d belongs to %s", ErrForbidden, id, b.Owner)
	}
	s.mu.Lock()
	queuedAt := -1
	for i, cand := range s.queue {
		if cand == b {
			queuedAt = i
			break
		}
	}
	if queuedAt >= 0 {
		s.queue = append(s.queue[:queuedAt], s.queue[queuedAt+1:]...)
	}
	s.mu.Unlock()

	if queuedAt >= 0 {
		b.mu.Lock()
		b.state = StateAborted
		b.cancelWant = true
		b.finishedAt = s.clock.Now()
		fmt.Fprintf(&b.log, "build aborted while queued\n")
		b.mu.Unlock()
		b.feed.close()
		return nil
	}
	switch b.State() {
	case StateRunning:
		b.requestCancel()
		return nil
	case StateQueued:
		// Dispatch is picking it up right now; arm the pending-cancel
		// flag so the pipeline's OnCancel fires as soon as registered.
		b.requestCancel()
		return nil
	default:
		return fmt.Errorf("%w: build %d already finished (%s)", ErrConflict, id, b.State())
	}
}

// Build resolves a build by id.
func (s *Server) Build(id int) (*Build, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.builds[id]
	if !ok {
		return nil, fmt.Errorf("%w: no build %d", ErrNotFound, id)
	}
	return b, nil
}

// QueueLength reports pending builds.
func (s *Server) QueueLength() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Running reports in-flight builds.
func (s *Server) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// dispatch scans the queue and starts every build whose constraints are
// satisfiable right now. On a virtual clock the whole scan runs under a
// clock hold: pipeline setup is synchronous (RunFuncs schedule their
// session timers before returning), and a concurrent Step driver
// (batterylab.DriveBuilds) must not advance the clock to some unrelated
// far-future deadline mid-setup — every build dispatched in one scan
// starts at the same instant it was dispatched at, deterministically.
func (s *Server) dispatch() {
	if v, ok := s.clock.(*simclock.Virtual); ok {
		release := v.Hold()
		defer release()
	}
	for {
		started := s.dispatchOne()
		if !started {
			return
		}
	}
}

// dispatchOne starts the first dispatchable build, reporting whether it
// started one.
func (s *Server) dispatchOne() bool {
	s.mu.Lock()
	if s.running >= s.cfg.Executors {
		s.mu.Unlock()
		return false
	}
	var (
		b     *Build
		run   RunFunc
		cons  Constraints
		node  Node
		idx   = -1
		locks []string
	)
	for i, cand := range s.queue {
		candCons, candRun := cand.cons, cand.run
		if candRun == nil {
			// Job build: the pipeline lives in the job store.
			job, ok := s.jobs[cand.Job]
			if !ok {
				continue
			}
			candCons, candRun = job.Constraints(), job.run
		}
		n, err := s.Nodes.Get(candCons.Node)
		if err != nil {
			continue // node not registered (yet)
		}
		if rec := s.campaigns[cand.campaign]; rec != nil &&
			rec.maxConcurrent > 0 && rec.running >= rec.maxConcurrent {
			continue
		}
		keys := lockKeys(candCons)
		if s.locksHeld(keys) {
			continue
		}
		if candCons.RequireLowCPU && !s.nodeCPULowLocked(n) {
			continue
		}
		b, run, cons, node, idx, locks = cand, candRun, candCons, n, i, keys
		break
	}
	if b == nil {
		s.mu.Unlock()
		return false
	}
	s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
	for _, k := range locks {
		s.locks[k] = b.ID
	}
	s.running++
	if rec := s.campaigns[b.campaign]; rec != nil {
		rec.running++
	}
	s.mu.Unlock()

	b.mu.Lock()
	b.state = StateRunning
	b.startedAt = s.clock.Now()
	b.mu.Unlock()

	ctx := &BuildContext{Build: b, Node: node, Device: cons.Device}
	ctx.Logf("build #%d of %s started on %s", b.ID, b.Job, cons.Node)

	var once sync.Once
	done := func(err error) {
		once.Do(func() {
			s.finish(b, locks, err)
		})
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				done(fmt.Errorf("pipeline panic: %v", r))
			}
		}()
		run(ctx, done)
	}()
	return true
}

// lockKeys computes the mutual-exclusion keys for a constraint set.
func lockKeys(cons Constraints) []string {
	if cons.Device != "" {
		return []string{cons.Node + "/" + cons.Device}
	}
	// Jobs without a device still serialize per node.
	return []string{cons.Node}
}

func (s *Server) locksHeld(keys []string) bool {
	for _, k := range keys {
		if _, held := s.locks[k]; held {
			return true
		}
		// A device lock also conflicts with a whole-node lock and vice
		// versa.
		if i := strings.IndexByte(k, '/'); i >= 0 {
			if _, held := s.locks[k[:i]]; held {
				return true
			}
		} else {
			for held := range s.locks {
				if strings.HasPrefix(held, k+"/") {
					return true
				}
			}
		}
	}
	return false
}

// nodeCPULowLocked asks the node for its CPU via status.
func (s *Server) nodeCPULowLocked(n Node) bool {
	out, err := n.Exec("status")
	if err != nil {
		return false
	}
	// status: ... cpu=NN.N% ...
	for _, f := range strings.Fields(out) {
		if strings.HasPrefix(f, "cpu=") {
			v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(f, "cpu="), "%"), 64)
			if err != nil {
				return false
			}
			return v < s.cfg.LowCPUThreshold
		}
	}
	return false
}

// finish completes a build, releases its locks and re-runs dispatch.
func (s *Server) finish(b *Build, locks []string, err error) {
	b.mu.Lock()
	b.finishedAt = s.clock.Now()
	if err != nil {
		b.state = StateFailure
		b.err = err
		fmt.Fprintf(&b.log, "build failed: %v\n", err)
	} else {
		b.state = StateSuccess
		fmt.Fprintf(&b.log, "build succeeded\n")
	}
	b.mu.Unlock()

	b.feed.close()

	s.mu.Lock()
	for _, k := range locks {
		delete(s.locks, k)
	}
	s.running--
	if rec := s.campaigns[b.campaign]; rec != nil {
		rec.running--
	}
	s.mu.Unlock()

	// Retention: purge the workspace and log after the window.
	s.clock.AfterFunc(s.cfg.Retention, func() {
		b.workspace.purge()
		b.mu.Lock()
		b.log.Reset()
		b.mu.Unlock()
	})
	s.dispatch()
}

// Kick re-evaluates the queue (used after node registration and by the
// periodic scheduler tick).
func (s *Server) Kick() { s.dispatch() }

// Cron registers a recurring maintenance task executed directly against
// a node (outside the build queue), every period. It returns a stop
// function. The paper's examples: renewing wildcard certificates,
// ensuring the power meter is off when idle, factory-resetting devices.
func (s *Server) Cron(name string, period time.Duration, task func()) (stop func()) {
	entry := &cronEntry{name: name}
	entry.ticker = simclock.NewTicker(s.clock, period, func(time.Time) {
		entry.runs++
		task()
	})
	s.mu.Lock()
	s.crons = append(s.crons, entry)
	s.mu.Unlock()
	return entry.ticker.Stop
}

// CronRuns reports how many times the named cron fired.
func (s *Server) CronRuns(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.crons {
		if c.name == name {
			return c.runs
		}
	}
	return 0
}
