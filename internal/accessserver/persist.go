package accessserver

import (
	"context"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"sort"
	"time"

	"batterylab/internal/accessserver/store"
	"batterylab/internal/api"
	"batterylab/internal/simclock"
)

// Persistence glue: the server's state mutations append to an optional
// write-ahead log (internal/accessserver/store), and AttachStore
// replays snapshot+WAL to reconstruct the in-memory maps after a
// restart. The policy decisions live here; the store package only
// frames records durably.
//
// Recovery semantics, in one place:
//
//   - Users come back with their original tokens; ledger balances and
//     histories replay exactly.
//   - Jobs come back with metadata, constraints, revision and approval
//     but WITHOUT their pipeline body (a Go closure does not survive a
//     process): Submit answers ErrConflict until EditJob reinstalls
//     one. Spec builds are unaffected — their declarative wire spec is
//     in the log and recompiles through the SpecBackend.
//   - Node lifecycle state (drain flags, removal tombstones, owner,
//     cached devices) survives; the live Node handles do not, so the
//     hosting process re-registers its nodes at startup, before
//     AttachStore.
//   - Builds that were queued at the crash re-enqueue in ID order.
//   - Builds that were running at the crash go through the same
//     reclaim/requeue path a broken node lease takes: a failover event
//     on the feed, a retry if the budget allows, a typed ErrNodeLost
//     failure otherwise — so an interrupted campaign completes after
//     restart.
//   - Finished builds come back with byte-identical wire status
//     (modulo the explicit `recovered` marker); their feed replay and
//     workspace artifacts are gone, which is the same contract as a
//     retention expiry, only earlier.
//
// Call order matters: install the SpecBackend and register the nodes
// first, then AttachStore, then create any bootstrap users (restore
// replaces same-named users created earlier, which is what a daemon
// that unconditionally creates "admin" on boot wants).

// RecoveryStats summarizes what AttachStore reconstructed.
type RecoveryStats struct {
	Users    int
	Jobs     int
	Nodes    int
	Builds   int // total build records recovered
	Requeued int // queued at crash, back in the queue
	Resumed  int // running at crash, routed through failover requeue
	Failed   int // running at crash, retry budget spent (or recompile failed)
	Ledger   int // ledger entries replayed
}

// logStore appends one record to the attached store (no-op without
// one). storeMu is a leaf mutex: callers may hold s.mu and/or b.mu.
//
// A failed append (full disk, I/O error) latches storeFailed: further
// appends are suppressed — a WAL with a silent gap replays later
// records onto earlier state, which is worse than no WAL — and the
// operator gets one loud log line. The next successful compaction
// writes a complete snapshot and lifts the latch.
func (s *Server) logStore(rec store.Record) {
	s.storeMu.Lock()
	if s.store != nil && !s.storeFailed {
		if err := s.store.Append(rec); err != nil {
			s.storeFailed = true
			s.m.appendErrors++
			log.Printf("accessserver: WAL append failed, durability suspended until a snapshot succeeds: %v", err)
			s.slogger().LogAttrs(context.Background(), slog.LevelError, "wal append failed, durability suspended",
				slog.String("error", err.Error()))
		}
	}
	s.storeMu.Unlock()
}

// logStoreBatch appends a group of records in one WAL write (one frame
// assembly, one syscall), with the same latch semantics as logStore.
// The batch is all-or-nothing in the common case — a partial write is
// a torn tail the next replay truncates — so callers use it for record
// groups that describe one logical mutation (a campaign and its
// builds).
func (s *Server) logStoreBatch(recs []store.Record) {
	if len(recs) == 0 {
		return
	}
	s.storeMu.Lock()
	if s.store != nil && !s.storeFailed {
		if err := s.store.AppendBatch(recs); err != nil {
			s.storeFailed = true
			s.m.appendErrors++
			log.Printf("accessserver: WAL batch append failed, durability suspended until a snapshot succeeds: %v", err)
			s.slogger().LogAttrs(context.Background(), slog.LevelError, "wal batch append failed, durability suspended",
				slog.String("error", err.Error()))
		}
	}
	s.storeMu.Unlock()
}

// logJob records a job's current metadata (creation, edits and
// approvals all upsert the same record).
func (s *Server) logJob(j *Job) {
	j.mu.Lock()
	rec := store.JobRec{
		Name:          j.Name,
		Owner:         j.Owner,
		Node:          j.constraints.Node,
		Device:        j.constraints.Device,
		RequireLowCPU: j.constraints.RequireLowCPU,
		Fallback:      j.constraints.Fallback,
		Approved:      j.approved,
		Revision:      j.revision,
	}
	j.mu.Unlock()
	s.logStore(store.Record{T: store.TJobPut, Job: &rec})
}

// logBuildFinishedLocked records a build's terminal transition.
// Callers hold b.mu (and s.mu — the compaction ordering rule).
func (s *Server) logBuildFinishedLocked(b *Build) {
	s.logStore(finishedRecord(b))
}

// replayState folds snapshot+WAL into the latest value of every
// record.
type replayState struct {
	users        map[string]store.UserRec
	jobs         map[string]store.JobRec
	nodes        map[string]store.NodeRec
	builds       map[int]store.BuildRec
	campaigns    map[int]store.CampaignRec
	ledger       map[string][]store.LedgerRec
	balances     map[string]float64
	peers        map[string]store.PeerRec
	nextBuild    int
	nextCampaign int
}

func newReplayState(snap *store.Snapshot) *replayState {
	rs := &replayState{
		users:        map[string]store.UserRec{},
		jobs:         map[string]store.JobRec{},
		nodes:        map[string]store.NodeRec{},
		builds:       map[int]store.BuildRec{},
		campaigns:    map[int]store.CampaignRec{},
		ledger:       map[string][]store.LedgerRec{},
		balances:     map[string]float64{},
		peers:        map[string]store.PeerRec{},
		nextBuild:    1,
		nextCampaign: 1,
	}
	if snap == nil {
		return rs
	}
	for _, u := range snap.Users {
		rs.users[u.Name] = u
	}
	for _, p := range snap.Peers {
		rs.peers[p.Name] = p
	}
	for _, j := range snap.Jobs {
		rs.jobs[j.Name] = j
	}
	for _, n := range snap.Nodes {
		rs.nodes[n.Name] = n
	}
	for _, b := range snap.Builds {
		rs.builds[b.ID] = b
	}
	for _, c := range snap.Campaigns {
		rs.campaigns[c.ID] = c
	}
	for user, entries := range snap.Ledger {
		rs.ledger[user] = append([]store.LedgerRec(nil), entries...)
		// Fallback for snapshots predating the Balances field: the sum
		// of the (then-unbounded) history is the balance.
		total := 0.0
		for _, e := range entries {
			total += e.Delta
		}
		rs.balances[user] = total
	}
	for user, bal := range snap.Balances {
		rs.balances[user] = bal
	}
	if snap.NextBuild > rs.nextBuild {
		rs.nextBuild = snap.NextBuild
	}
	if snap.NextCampaign > rs.nextCampaign {
		rs.nextCampaign = snap.NextCampaign
	}
	return rs
}

// apply folds one WAL record in.
func (rs *replayState) apply(rec store.Record) {
	switch rec.T {
	case store.TUserAdded:
		if rec.User != nil {
			rs.users[rec.User.Name] = *rec.User
		}
	case store.TUserRemoved:
		delete(rs.users, rec.Name)
	case store.TJobPut:
		if rec.Job != nil {
			rs.jobs[rec.Job.Name] = *rec.Job
		}
	case store.TJobDeleted:
		delete(rs.jobs, rec.Name)
	case store.TNodeMonitored:
		if rec.Node != nil {
			n := rs.nodes[rec.Node.Name]
			owner := rec.Node.Owner
			if owner == "" {
				owner = n.Owner // an owner set before (re-)monitoring sticks
			}
			nn := *rec.Node
			nn.Owner = owner
			// The monitor record carries no accrual state; keep what the
			// snapshot (or a prior record) established.
			nn.OwedHostingNS = n.OwedHostingNS
			rs.nodes[nn.Name] = nn
		}
	case store.TNodeOwner:
		n := rs.nodes[rec.Name]
		n.Name = rec.Name
		// Mirror the live path: only a genuine transfer resets accrual
		// (its flush landed as the preceding TNodeHostingFlush record);
		// a same-owner re-set — a daemon's -owner flag on every boot —
		// keeps the sub-threshold remainder.
		if n.Owner != rec.Owner {
			n.OwedHostingNS = 0
		}
		n.Owner = rec.Owner
		rs.nodes[rec.Name] = n
	case store.TNodeDrain:
		n := rs.nodes[rec.Name]
		n.Name = rec.Name
		n.Draining = rec.Draining
		rs.nodes[rec.Name] = n
	case store.TNodeRemoved:
		n := rs.nodes[rec.Name]
		n.Name = rec.Name
		n.Removed = true
		n.Monitored = false
		n.Draining = false
		n.OwedHostingNS = 0 // flushed at removal
		rs.nodes[rec.Name] = n
	case store.TNodeHostingFlush:
		// The combined record: zero the node's accrual AND apply the
		// owner's contribution credit — together or not at all.
		n := rs.nodes[rec.Name]
		n.Name = rec.Name
		n.OwedHostingNS = 0
		rs.nodes[rec.Name] = n
		e := hostingEntry(rec.Name, time.Duration(rec.AtNS))
		rs.ledger[rec.Owner] = append(rs.ledger[rec.Owner], store.LedgerRec{
			User: rec.Owner, Delta: e.Delta, Reason: e.Reason,
		})
		rs.balances[rec.Owner] += e.Delta
	case store.TBuildQueued:
		if rec.Build != nil {
			rs.builds[rec.Build.ID] = *rec.Build
			if rec.Build.ID >= rs.nextBuild {
				rs.nextBuild = rec.Build.ID + 1
			}
		}
	case store.TBuildStarted:
		b := rs.builds[rec.BuildID]
		if b.ID == 0 {
			return
		}
		b.State = StateRunning.String()
		b.Node = rec.NodeName
		b.Attempts = rec.Attempt
		b.StartedAtNS = rec.AtNS
		rs.builds[b.ID] = b
	case store.TBuildCancelWant:
		b := rs.builds[rec.BuildID]
		if b.ID == 0 {
			return
		}
		b.Canceled = true
		rs.builds[b.ID] = b
	case store.TBuildFailover:
		b := rs.builds[rec.BuildID]
		if b.ID == 0 {
			return
		}
		b.State = StateQueued.String()
		b.Retries = rec.Retries
		rs.builds[b.ID] = b
	case store.TBuildFinished:
		b := rs.builds[rec.BuildID]
		if b.ID == 0 {
			return
		}
		b.State = rec.State
		b.Err = rec.Err
		b.Canceled = rec.Canceled
		b.NodeLost = rec.NodeLost
		if rec.NodeName != "" {
			b.Node = rec.NodeName
		}
		if rec.Attempt > 0 {
			b.Attempts = rec.Attempt
		}
		if rec.Retries > 0 {
			b.Retries = rec.Retries
		}
		b.Summary = rec.Summary
		b.FinishedAtNS = rec.AtNS
		rs.builds[b.ID] = b
	case store.TBuildExpired:
		delete(rs.builds, rec.BuildID)
	case store.TCampaign:
		if rec.Campaign != nil {
			rs.campaigns[rec.Campaign.ID] = *rec.Campaign
			if rec.Campaign.ID >= rs.nextCampaign {
				rs.nextCampaign = rec.Campaign.ID + 1
			}
		}
	case store.TCampaignExpired:
		delete(rs.campaigns, rec.CampaignID)
	case store.TLedger:
		if rec.Entry != nil {
			rs.ledger[rec.Entry.User] = append(rs.ledger[rec.Entry.User], *rec.Entry)
			rs.balances[rec.Entry.User] += rec.Entry.Delta
		}
	case store.TPeerJoined:
		if rec.Peer != nil {
			rs.peers[rec.Peer.Name] = *rec.Peer
		}
	case store.TPeerLeft:
		delete(rs.peers, rec.Name)
	}
}

// parseState inverts BuildState.String.
func parseState(s string) (BuildState, bool) {
	switch s {
	case "queued":
		return StateQueued, true
	case "running":
		return StateRunning, true
	case "success":
		return StateSuccess, true
	case "failure":
		return StateFailure, true
	case "aborted":
		return StateAborted, true
	}
	return 0, false
}

// AttachStore replays the store's snapshot+WAL into the server and
// turns on write-ahead logging for every mutation from here on. It
// must run before the server takes traffic: after the SpecBackend is
// installed and the deployment's nodes are registered (so queued spec
// builds can recompile and dispatch), and at most once.
func (s *Server) AttachStore(st *store.Store) (RecoveryStats, error) {
	s.storeMu.Lock()
	if s.store != nil {
		s.storeMu.Unlock()
		return RecoveryStats{}, fmt.Errorf("accessserver: a store is already attached")
	}
	s.storeMu.Unlock()

	snap, recs := st.Load()
	rs := newReplayState(snap)
	for _, rec := range recs {
		rs.apply(rec)
	}

	var stats RecoveryStats
	// Records to append once the store is live: the failover/failure
	// transitions recovery itself causes (so a second crash replays
	// them too).
	var pending []store.Record

	if v, ok := s.clock.(*simclock.Virtual); ok {
		release := v.Hold()
		defer release()
	}
	now := s.clock.Now()

	// Users and ledger first: independent of scheduler state.
	for _, u := range rs.users {
		s.Users.restore(u.Name, Role(u.Role), u.Token)
		stats.Users++
	}
	ledgerUsers := make([]string, 0, len(rs.ledger))
	for user := range rs.ledger {
		ledgerUsers = append(ledgerUsers, user)
	}
	sort.Strings(ledgerUsers)
	for _, user := range ledgerUsers {
		entries := make([]LedgerEntry, len(rs.ledger[user]))
		for i, e := range rs.ledger[user] {
			entries[i] = LedgerEntry{Delta: e.Delta, Reason: e.Reason}
		}
		s.Ledger.restore(user, rs.balances[user], entries)
		stats.Ledger += len(entries)
	}

	// Cluster membership: known peers come back by name and URL but
	// start offline (zero last-beat) — the next announce exchange proves
	// them alive again, and until then the scheduler will not route
	// builds their way.
	peerNames := make([]string, 0, len(rs.peers))
	for name := range rs.peers {
		peerNames = append(peerNames, name)
	}
	sort.Strings(peerNames)
	for _, name := range peerNames {
		s.cluster.Restore(name, rs.peers[name].URL)
	}

	s.mu.Lock()
	backend := s.specs

	// Jobs: metadata only — the closure body is gone. A job the daemon
	// already re-created this boot (with a body) wins over its record.
	for name, jr := range rs.jobs {
		if _, exists := s.jobs[name]; exists {
			continue
		}
		s.jobs[name] = &Job{
			Name:  jr.Name,
			Owner: jr.Owner,
			constraints: Constraints{
				Node:          jr.Node,
				Device:        jr.Device,
				RequireLowCPU: jr.RequireLowCPU,
				Fallback:      jr.Fallback,
			},
			approved: jr.Approved,
			revision: jr.Revision,
		}
		stats.Jobs++
	}

	// Node lifecycle: drain flags, tombstones, owner and the cached
	// device list survive; monitoring re-arms on the server clock with
	// a fresh beat (the node proves itself alive again from here).
	// Sorted order matters: the virtual clock breaks equal-deadline
	// ties by registration sequence, so ticker arming must not follow
	// map iteration order or recovery would stop being deterministic.
	nodeNames := make([]string, 0, len(rs.nodes))
	for name := range rs.nodes {
		nodeNames = append(nodeNames, name)
	}
	sort.Strings(nodeNames)
	for _, name := range nodeNames {
		nr := rs.nodes[name]
		rec := s.recLocked(name)
		rec.owner = nr.Owner
		rec.owedHosting = time.Duration(nr.OwedHostingNS)
		rec.draining = nr.Draining
		rec.lastBeat = now
		if len(rec.devices) == 0 {
			rec.devices = append([]string(nil), nr.Devices...)
		}
		if nr.Removed {
			// Tombstoned — unless the node already re-registered this
			// boot, which ends the removal like the live path does.
			if _, err := s.Nodes.Get(name); err != nil {
				rec.removed = true
				rec.monitored = false
			}
		}
		if nr.Monitored && !nr.Removed && !rec.monitored {
			rec.monitored = true
			rec.ticker = simclock.NewTicker(s.clock, s.cfg.HeartbeatEvery, func(time.Time) {
				s.probeNode(name)
			})
		}
		stats.Nodes++
	}

	// Campaigns before builds, so member builds can find their rec.
	for id, cr := range rs.campaigns {
		s.campaigns[id] = &campaignRec{
			builds:        append([]int(nil), cr.Builds...),
			maxConcurrent: cr.MaxConcurrent,
		}
	}

	if rs.nextBuild > s.nextID {
		s.nextID = rs.nextBuild
	}
	if rs.nextCampaign > s.nextCampaign {
		s.nextCampaign = rs.nextCampaign
	}

	// Builds in ID order: submission order, deterministically.
	ids := make([]int, 0, len(rs.builds))
	for id := range rs.builds {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var finished []*Build // retention scheduling after the store attaches
	for _, id := range ids {
		br := rs.builds[id]
		state, ok := parseState(br.State)
		if !ok {
			continue
		}
		b := &Build{
			ID:        br.ID,
			Job:       br.Job,
			Owner:     br.Owner,
			campaign:  br.Campaign,
			wireSpec:  br.Spec,
			recovered: true,
			// Every recovery hands the build a fresh feed, so the epoch
			// moves: clients' resume cursors (and feed-derived
			// aggregates) from before the restart are void — including
			// across a second restart, which bumps it again.
			feedEpoch: br.FeedEpoch + 1,
			workspace: NewWorkspace(),
			feed:      s.hub.Create(br.ID, br.FeedEpoch+1),
		}
		b.queuedAt = now
		if br.QueuedAtNS != 0 {
			b.queuedAt = time.Unix(0, br.QueuedAtNS)
		}
		if br.StartedAtNS != 0 {
			b.startedAt = time.Unix(0, br.StartedAtNS)
		}
		if br.FinishedAtNS != 0 {
			b.finishedAt = time.Unix(0, br.FinishedAtNS)
		}
		b.nodeName = br.Node
		b.attempt = br.Attempts
		b.retries = br.Retries
		b.cancelWant = br.Canceled
		if br.Summary != nil {
			cp := *br.Summary
			b.summary = &cp
		}
		s.builds[b.ID] = b
		stats.Builds++
		s.m.submitted++

		switch state {
		case StateSuccess, StateFailure, StateAborted:
			b.state = state
			switch state {
			case StateSuccess:
				s.m.succeeded++
			case StateFailure:
				s.m.failed++
			case StateAborted:
				s.m.aborted++
			}
			if br.Err != "" {
				var sentinels []error
				if br.NodeLost {
					sentinels = append(sentinels, ErrNodeLost)
				}
				b.err = &recoveredErr{msg: br.Err, sentinels: sentinels}
			}
			s.hub.Close(b.ID)
			finished = append(finished, b)
			continue
		}

		// A cancel was requested before the crash but the build never
		// settled: recovery settles it as aborted — rerunning (and
		// charging) a canceled experiment would be worse than the lost
		// teardown.
		if br.Canceled {
			b.state = StateAborted
			s.m.aborted++
			b.finishedAt = now
			fmt.Fprintf(&b.log, "build aborted: cancel requested before the server restart\n")
			s.hub.Close(b.ID)
			finished = append(finished, b)
			pending = append(pending, finishedRecord(b))
			continue
		}

		// Queued or running at the crash: the build must run again.
		// Recompile spec builds through the backend; job builds resolve
		// from the job store at dispatch (and fail fast there if the
		// job's body did not survive).
		var compileErr error
		if b.wireSpec != nil {
			if backend == nil {
				compileErr = fmt.Errorf("%w: no spec backend installed at recovery", ErrInvalid)
			} else if cons, run, err := backend.Compile(*b.wireSpec); err != nil {
				compileErr = err
			} else {
				b.cons, b.run = cons, run
			}
		}
		if compileErr != nil {
			b.state = StateFailure
			s.m.failed++
			b.err = fmt.Errorf("build %d unrecoverable after restart: %w", b.ID, compileErr)
			b.finishedAt = now
			fmt.Fprintf(&b.log, "build failed: %v\n", b.err)
			s.hub.Close(b.ID)
			finished = append(finished, b)
			stats.Failed++
			pending = append(pending, finishedRecord(b))
			continue
		}

		if state == StateRunning {
			// The crash broke the lease: route through the failover
			// contract. The interrupted attempt's work is gone, so the
			// requeue skips the usual backoff — the restart already cost
			// more than any backoff would.
			reason := fmt.Sprintf("access server restarted while attempt %d ran on %q", b.attempt, b.nodeName)
			b.feed.PostEvent(api.BuildEvent{
				Build: b.ID,
				Node:  b.nodeName,
				Phase: api.EventFailover,
				AtNS:  now.UnixNano(),
				Error: reason,
			})
			if b.retries >= s.cfg.MaxRetries {
				b.state = StateFailure
				s.m.failed++
				b.err = fmt.Errorf("%w: %s; retry budget (%d) spent", ErrNodeLost, reason, s.cfg.MaxRetries)
				b.finishedAt = now
				fmt.Fprintf(&b.log, "build lost: %s; retry budget (%d) spent\n", reason, s.cfg.MaxRetries)
				s.hub.Close(b.ID)
				finished = append(finished, b)
				stats.Failed++
				pending = append(pending, finishedRecord(b))
				continue
			}
			b.retries++
			s.m.failoverRequeues++
			b.pendingReason = fmt.Sprintf("%s; retry %d/%d", reason, b.retries, s.cfg.MaxRetries)
			b.schedReason = b.pendingReason // replay holds s.mu; keep the dispatch shadow in sync
			fmt.Fprintf(&b.log, "build requeued: %s (retry %d/%d)\n", reason, b.retries, s.cfg.MaxRetries)
			pending = append(pending, store.Record{
				T: store.TBuildFailover, BuildID: b.ID,
				Retries: b.retries, Reason: reason, AtNS: now.UnixNano(),
			})
			stats.Resumed++
		} else {
			stats.Requeued++
		}
		b.state = StateQueued
		s.m.queued++
		// Re-derive the per-owner in-flight census: admission fairness
		// must survive a restart, or one owner could double their quota
		// by crashing the server.
		s.ownerActive[b.Owner]++
		s.queue = append(s.queue, b)
		b.agingTimer = s.clock.AfterFunc(s.cfg.PendingTimeout, func() { s.checkAging(b) })
	}

	// Prime the read plane and the feed-plane high-water mark with the
	// recovered world before the lock drops: ids whose records expired
	// before the restart must resolve as expired (not unknown), and the
	// snapshot routes must serve the recovered state from the first
	// request rather than waiting for the next transition to publish.
	s.hub.SetHighWater(s.nextID - 1)
	for _, b := range s.builds {
		s.publishBuildLocked(b)
	}
	for id, rec := range s.campaigns {
		s.reads.publishCampaign(id, rec.builds)
	}
	if s.nextCampaign > 1 {
		s.reads.highCamp.Store(int64(s.nextCampaign - 1))
	}
	s.publishNodesLocked()
	s.mu.Unlock()

	// Go live: install the store and the observation hooks, flush the
	// transitions recovery itself caused, arm periodic compaction.
	s.storeMu.Lock()
	s.store = st
	appendErr := st.AppendBatch(pending)
	s.storeMu.Unlock()
	if appendErr != nil {
		// Latch the failure so a caller that continues anyway cannot
		// append later records onto a WAL with a silent gap.
		s.storeMu.Lock()
		s.storeFailed = true
		s.storeMu.Unlock()
		return stats, fmt.Errorf("accessserver: flushing recovery records: %w", appendErr)
	}
	s.Users.setHook(func(u User, removed bool) {
		if removed {
			s.logStore(store.Record{T: store.TUserRemoved, Name: u.Name})
			return
		}
		s.logStore(store.Record{T: store.TUserAdded, User: &store.UserRec{
			Name: u.Name, Role: int(u.Role), Token: u.Token,
		}})
	})
	s.Ledger.setHook(func(user string, e LedgerEntry) {
		s.logStore(store.Record{T: store.TLedger, Entry: &store.LedgerRec{
			User: user, Delta: e.Delta, Reason: e.Reason,
		}})
	})
	s.snapTicker = simclock.NewTicker(s.clock, s.cfg.SnapshotEvery, func(time.Time) {
		s.maybeCompact()
	})
	// Group commit: appends land in the page cache immediately and are
	// fsynced on this cadence, bounding what a power loss (not a mere
	// process crash) can take to the last WALSyncEvery window instead
	// of the last snapshot.
	s.syncTicker = simclock.NewTicker(s.clock, s.cfg.WALSyncEvery, func(time.Time) {
		s.syncStore()
	})

	for _, b := range finished {
		s.scheduleRetention(b)
	}
	// An immediate snapshot makes state that predates the attach —
	// bootstrap users, jobs and node registrations a daemon sets up
	// before calling AttachStore — durable right away instead of at the
	// first periodic compaction.
	if err := s.CompactStore(); err != nil {
		return stats, err
	}
	s.dispatch()
	return stats, nil
}

// finishedRecord builds a build's TBuildFinished record. Callers
// either hold b.mu or own the build exclusively (recovery, before it
// is published).
func finishedRecord(b *Build) store.Record {
	rec := store.Record{
		T:        store.TBuildFinished,
		BuildID:  b.ID,
		State:    b.state.String(),
		Canceled: b.cancelWant,
		NodeName: b.nodeName,
		Attempt:  b.attempt,
		Retries:  b.retries,
		AtNS:     b.finishedAt.UnixNano(),
	}
	if b.err != nil {
		rec.Err = b.err.Error()
		rec.NodeLost = errors.Is(b.err, ErrNodeLost)
	}
	if b.summary != nil {
		cp := *b.summary
		rec.Summary = &cp
	}
	return rec
}

// syncStore flushes the WAL to stable storage (the group-commit
// ticker); an already-synced file is left alone. A failing disk
// latches storeFailed like a failed append.
func (s *Server) syncStore() {
	s.storeMu.Lock()
	if s.store != nil && !s.storeFailed && s.store.Dirty() {
		start := time.Now()
		err := s.store.Sync()
		s.m.fsyncLatency.Observe(time.Since(start).Seconds())
		if err != nil {
			s.storeFailed = true
			log.Printf("accessserver: WAL fsync failed, durability suspended until a snapshot succeeds: %v", err)
			s.slogger().LogAttrs(context.Background(), slog.LevelError, "wal fsync failed, durability suspended",
				slog.String("error", err.Error()))
		}
	}
	s.storeMu.Unlock()
}

// maybeCompact snapshots and truncates the WAL if it has grown since
// the last compaction (or an append failed and durability needs the
// snapshot to re-establish a consistent base).
func (s *Server) maybeCompact() {
	s.storeMu.Lock()
	grown := s.store != nil && (s.store.Appended() > 0 || s.storeFailed)
	s.storeMu.Unlock()
	if grown {
		if err := s.CompactStore(); err != nil {
			log.Printf("accessserver: periodic snapshot failed: %v", err)
		}
	}
}

// CompactStore writes a snapshot of the current state and truncates
// the WAL. The snapshot ticker calls it periodically; daemons may also
// call it at shutdown for a minimal next replay.
//
// Correctness needs a clean cut: no record may fall between the state
// the snapshot captures and the truncation. The snapshot is therefore
// built, and the WAL cut offset taken, under one lock ordering (s.mu →
// Users.mu → Ledger.mu → storeMu — the same relative order every WAL
// writer uses), so every record before the cut describes state the
// snapshot contains. The expensive part — marshaling and fsyncing the
// snapshot file — then runs with all of those released: records
// appended meanwhile land past the cut, and FinishCompact preserves
// them when it resets the log. The scheduler never waits on a disk
// flush.
func (s *Server) CompactStore() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	start := time.Now()
	defer func() { s.m.snapshotLatency.Observe(time.Since(start).Seconds()) }()

	s.mu.Lock()
	s.Users.mu.RLock()
	s.Ledger.mu.Lock()
	snap := s.buildSnapshotLocked()
	s.storeMu.Lock()
	st := s.store
	wasFailed := s.storeFailed
	var c *store.Compaction
	var err error
	if st != nil {
		c, err = st.BeginCompact(snap)
		if err == nil {
			// The snapshot just captured every mutation to date, so the
			// WAL gap a failed append left behind is healed the moment
			// this snapshot lands. Lift the latch HERE, inside the
			// writers' lock order: mutations from now on append past the
			// cut and survive FinishCompact — deferring the lift to
			// after the unlocked fsync would silently drop them.
			s.storeFailed = false
		}
	}
	s.storeMu.Unlock()
	s.Ledger.mu.Unlock()
	s.Users.mu.RUnlock()
	s.mu.Unlock()

	if st == nil {
		return fmt.Errorf("accessserver: no store attached")
	}
	if err != nil {
		// BeginCompact failed before the latch was lifted: nothing
		// appended, nothing to undo.
		return err
	}
	if err := st.WriteSnapshot(c); err != nil {
		// The snapshot never became durable. If the latch had been
		// lifted on its strength, the records appended meanwhile sit
		// after the old WAL gap — roll them back and re-arm the latch
		// (their state lives in memory and in the next snapshot
		// attempt). A previously-healthy WAL stays authoritative as is.
		if wasFailed {
			s.storeMu.Lock()
			s.storeFailed = true
			if rbErr := st.Rollback(c); rbErr != nil {
				log.Printf("accessserver: rolling back failed compaction: %v", rbErr)
			}
			s.storeMu.Unlock()
			log.Printf("accessserver: snapshot compaction failed, durability suspended until one succeeds: %v", err)
		}
		return err
	}
	s.storeMu.Lock()
	err = st.FinishCompact(c)
	if err != nil {
		// The on-disk pair stays consistent whether or not the swap
		// happened (the snapshot is durable and stamped with the
		// generation+cut it covers), but a failure here means appends
		// may not be reaching durable storage — latch until a
		// compaction fully succeeds.
		s.storeFailed = true
	}
	s.storeMu.Unlock()
	if err != nil {
		log.Printf("accessserver: snapshot compaction failed, durability suspended until one succeeds: %v", err)
	}
	return err
}

// buildSnapshotLocked captures the server's full persistent state.
// Callers hold s.mu, Users.mu (read) and Ledger.mu.
func (s *Server) buildSnapshotLocked() *store.Snapshot {
	snap := &store.Snapshot{Ledger: map[string][]store.LedgerRec{}}

	names := make([]string, 0, len(s.Users.byName))
	for n := range s.Users.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		u := s.Users.byName[n]
		snap.Users = append(snap.Users, store.UserRec{Name: u.Name, Role: int(u.Role), Token: u.Token})
	}

	snap.Balances = map[string]float64{}
	users := make([]string, 0, len(s.Ledger.history))
	for u := range s.Ledger.history {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		entries := make([]store.LedgerRec, len(s.Ledger.history[u]))
		for i, e := range s.Ledger.history[u] {
			entries[i] = store.LedgerRec{User: u, Delta: e.Delta, Reason: e.Reason}
		}
		snap.Ledger[u] = entries
	}
	for u, bal := range s.Ledger.balances {
		snap.Balances[u] = bal
	}

	snap.NextBuild = s.nextID
	snap.NextCampaign = s.nextCampaign

	jobNames := make([]string, 0, len(s.jobs))
	for n := range s.jobs {
		jobNames = append(jobNames, n)
	}
	sort.Strings(jobNames)
	for _, n := range jobNames {
		j := s.jobs[n]
		j.mu.Lock()
		snap.Jobs = append(snap.Jobs, store.JobRec{
			Name:          j.Name,
			Owner:         j.Owner,
			Node:          j.constraints.Node,
			Device:        j.constraints.Device,
			RequireLowCPU: j.constraints.RequireLowCPU,
			Fallback:      j.constraints.Fallback,
			Approved:      j.approved,
			Revision:      j.revision,
		})
		j.mu.Unlock()
	}

	nodeNames := make([]string, 0, len(s.nodeRecs))
	for n := range s.nodeRecs {
		nodeNames = append(nodeNames, n)
	}
	sort.Strings(nodeNames)
	for _, n := range nodeNames {
		rec := s.nodeRecs[n]
		snap.Nodes = append(snap.Nodes, store.NodeRec{
			Name:          rec.name,
			Owner:         rec.owner,
			Monitored:     rec.monitored,
			Draining:      rec.draining,
			Removed:       rec.removed,
			Devices:       append([]string(nil), rec.devices...),
			OwedHostingNS: int64(rec.owedHosting),
		})
	}

	ids := make([]int, 0, len(s.builds))
	for id := range s.builds {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		b := s.builds[id]
		b.mu.Lock()
		br := store.BuildRec{
			ID:       b.ID,
			Job:      b.Job,
			Owner:    b.Owner,
			Campaign: b.campaign,
			Spec:     b.wireSpec,
			State:    b.state.String(),
			Canceled: b.cancelWant,
			Node:     b.nodeName,
			Attempts: b.attempt,
			Retries:  b.retries,
		}
		if !b.queuedAt.IsZero() {
			br.QueuedAtNS = b.queuedAt.UnixNano()
		}
		if !b.startedAt.IsZero() {
			br.StartedAtNS = b.startedAt.UnixNano()
		}
		if !b.finishedAt.IsZero() {
			br.FinishedAtNS = b.finishedAt.UnixNano()
		}
		if b.err != nil {
			br.Err = b.err.Error()
			br.NodeLost = errors.Is(b.err, ErrNodeLost)
		}
		if b.summary != nil {
			cp := *b.summary
			br.Summary = &cp
		}
		br.FeedEpoch = b.feedEpoch
		b.mu.Unlock()
		snap.Builds = append(snap.Builds, br)
	}

	cids := make([]int, 0, len(s.campaigns))
	for id := range s.campaigns {
		cids = append(cids, id)
	}
	sort.Ints(cids)
	for _, id := range cids {
		rec := s.campaigns[id]
		snap.Campaigns = append(snap.Campaigns, store.CampaignRec{
			ID:            id,
			MaxConcurrent: rec.maxConcurrent,
			Builds:        append([]int(nil), rec.builds...),
		})
	}

	// Cluster peers: name and URL only — liveness is never persisted
	// (a restored peer proves itself alive again with its first
	// announce). Peers() returns name-sorted peers, so snapshots stay
	// deterministic.
	for _, p := range s.cluster.Peers() {
		snap.Peers = append(snap.Peers, store.PeerRec{Name: p.Name, URL: p.URL})
	}
	return snap
}
