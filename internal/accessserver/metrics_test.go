package accessserver

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"batterylab/internal/accessserver/store"
	"batterylab/internal/api"
	"batterylab/internal/metrics"
	"batterylab/internal/simclock"
)

func snapGauge(t *testing.T, snap metrics.Snapshot, name string, labels ...metrics.Label) float64 {
	t.Helper()
	m, ok := snap.Get(name, labels...)
	if !ok {
		t.Fatalf("metric %s%v missing from snapshot", name, labels)
	}
	return m.Value
}

// TestMetricsEndpoint exercises /api/v1/metrics in both exposition
// formats plus its RBAC and format validation.
func TestMetricsEndpoint(t *testing.T) {
	v := newV1Rig(t)

	resp := v.request(t, "GET", "/api/v1/metrics", v.admin.Token, "")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prom status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prom content-type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE blab_builds_submitted_total counter",
		"blab_builds_finished_total{result=\"success\"}",
		"blab_dispatch_latency_seconds{quantile=\"0.99\"}",
		"blab_dispatch_latency_seconds_count",
		"# TYPE blab_queue_depth gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prom exposition missing %q", want)
		}
	}

	resp = v.request(t, "GET", "/api/v1/metrics?format=json", v.admin.Token, "")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("json status = %d", resp.StatusCode)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("json exposition does not parse: %v", err)
	}
	if got := snapGauge(t, snap, "blab_builds_submitted_total"); got < 2 {
		t.Errorf("submitted = %v, want >= 2 (seed build + campaign)", got)
	}

	for _, c := range []struct {
		path, token string
		want        int
	}{
		{"/api/v1/metrics?format=xml", v.admin.Token, http.StatusBadRequest},
		{"/api/v1/metrics", v.tst.Token, http.StatusForbidden},
		{"/api/v1/metrics", "", http.StatusUnauthorized},
	} {
		resp := v.request(t, "GET", c.path, c.token, "")
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("GET %s (token %q) = %d, want %d", c.path, c.token, resp.StatusCode, c.want)
		}
	}
}

// TestHealthEndpoints covers the unauthenticated liveness and readiness
// probes, including the durability gate.
func TestHealthEndpoints(t *testing.T) {
	v := newV1Rig(t)

	resp := v.request(t, "GET", "/healthz", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200 without credentials", resp.StatusCode)
	}
	resp.Body.Close()

	// No durability expected: ready even without a store.
	resp = v.request(t, "GET", "/readyz", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d, want 200 when durability is optional", resp.StatusCode)
	}
	resp.Body.Close()

	// Declared durable but no store attached yet: not ready.
	v.srv.ExpectDurable()
	resp = v.request(t, "GET", "/readyz", "", "")
	var ready struct {
		Ready         bool `json:"ready"`
		StoreAttached bool `json:"store_attached"`
		Durable       bool `json:"durable"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || ready.Ready {
		t.Fatalf("readyz before attach = %d ready=%v, want 503 not-ready", resp.StatusCode, ready.Ready)
	}

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.srv.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	resp = v.request(t, "GET", "/readyz", "", "")
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !ready.Ready || !ready.StoreAttached {
		t.Fatalf("readyz after attach = %d %+v, want 200 ready", resp.StatusCode, ready)
	}
}

// TestPprofRBAC: the profiling handlers ride the operator permission —
// admins in, experimenters and anonymous callers out.
func TestPprofRBAC(t *testing.T) {
	v := newV1Rig(t)
	cases := []struct {
		token string
		want  int
	}{
		{v.admin.Token, http.StatusOK},
		{v.exp.Token, http.StatusForbidden},
		{"", http.StatusUnauthorized},
	}
	for _, c := range cases {
		resp := v.request(t, "GET", "/debug/pprof/", c.token, "")
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("pprof index with token %q = %d, want %d", c.token, resp.StatusCode, c.want)
		}
	}
	resp := v.request(t, "GET", "/debug/pprof/goroutine?debug=1", v.admin.Token, "")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("goroutine profile = %d, body %.60q", resp.StatusCode, body)
	}
}

// churnBackend finishes builds on the virtual clock after an ID-derived
// delay; every 7th build fails. Enough variety to populate every
// scheduler counter.
type churnBackend struct{ clk *simclock.Virtual }

func (cb churnBackend) Compile(spec api.ExperimentSpec) (Constraints, RunFunc, error) {
	cons := Constraints{Node: spec.Node, Device: spec.Device, Fallback: true}
	run := func(ctx *BuildContext, done func(error)) {
		id := ctx.Build.ID
		cb.clk.AfterFunc(time.Duration(1+id%4)*time.Second, func() {
			if id%7 == 0 {
				done(fmt.Errorf("synthetic failure %d", id))
				return
			}
			done(nil)
		})
	}
	return cons, run, nil
}

func (churnBackend) WorkloadNames() []string { return []string{"churn"} }

// TestMetricsConsistentUnderChurn hammers the scheduler with 120
// concurrently submitted builds (plus aborts) while parallel readers
// take registry snapshots, and requires every snapshot to satisfy the
// accounting identity
//
//	submitted == queued + running + finished(success|failure|aborted)
//
// which only holds if the collector observes the scheduler atomically.
// Run with -race; the final tallies are also reconciled against the
// builds' terminal states.
func TestMetricsConsistentUnderChurn(t *testing.T) {
	r := newRig(t)
	r.srv.SetSpecBackend(churnBackend{clk: r.clk})

	const builds = 120
	var (
		mu  sync.Mutex
		all []*Build
	)
	var submitters sync.WaitGroup
	for g := 0; g < 4; g++ {
		submitters.Add(1)
		go func(g int) {
			defer submitters.Done()
			for i := 0; i < builds/4; i++ {
				b, err := r.srv.SubmitSpec(r.admin, api.ExperimentSpec{
					Node: "node1", Device: "dev1",
					Workload: api.WorkloadSpec{Name: "churn"},
				})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				mu.Lock()
				all = append(all, b)
				if b.ID%11 == 0 {
					r.srv.Abort(r.admin, b.ID) // races the scheduler on purpose
				}
				mu.Unlock()
			}
		}(g)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.srv.MetricsSnapshot()
				submitted := snapGauge(t, snap, "blab_builds_submitted_total")
				queued := snapGauge(t, snap, "blab_queue_depth")
				running := snapGauge(t, snap, "blab_builds_running")
				finished := snapGauge(t, snap, "blab_builds_finished_total", metrics.Label{Name: "result", Value: "success"}) +
					snapGauge(t, snap, "blab_builds_finished_total", metrics.Label{Name: "result", Value: "failure"}) +
					snapGauge(t, snap, "blab_builds_finished_total", metrics.Label{Name: "result", Value: "aborted"})
				if submitted != queued+running+finished {
					t.Errorf("snapshot inconsistent: submitted %v != %v queued + %v running + %v finished",
						submitted, queued, running, finished)
					return
				}
			}
		}()
	}

	// Drive the virtual clock until every build settles, while readers
	// and submitters race against the scheduler.
	deadline := time.Now().Add(30 * time.Second)
	for {
		submittedAll := func() bool {
			mu.Lock()
			defer mu.Unlock()
			return len(all) == builds
		}()
		done := submittedAll
		if submittedAll {
			mu.Lock()
			for _, b := range all {
				switch b.State() {
				case StateSuccess, StateFailure, StateAborted:
				default:
					done = false
				}
				if !done {
					break
				}
			}
			mu.Unlock()
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("builds did not settle within 30s wall time")
		}
		if next, ok := r.clk.NextDeadline(); ok {
			r.clk.RunUntil(next)
		}
	}
	submitters.Wait()
	close(stop)
	readers.Wait()

	// Final reconciliation: counters must match the terminal states.
	var succeeded, failed, aborted float64
	for _, b := range all {
		switch b.State() {
		case StateSuccess:
			succeeded++
		case StateFailure:
			failed++
		case StateAborted:
			aborted++
		}
	}
	snap := r.srv.MetricsSnapshot()
	check := func(name string, got, want float64) {
		if got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check("submitted", snapGauge(t, snap, "blab_builds_submitted_total"), builds)
	check("finished{success}", snapGauge(t, snap, "blab_builds_finished_total", metrics.Label{Name: "result", Value: "success"}), succeeded)
	check("finished{failure}", snapGauge(t, snap, "blab_builds_finished_total", metrics.Label{Name: "result", Value: "failure"}), failed)
	check("finished{aborted}", snapGauge(t, snap, "blab_builds_finished_total", metrics.Label{Name: "result", Value: "aborted"}), aborted)
	check("queue_depth", snapGauge(t, snap, "blab_queue_depth"), 0)
	check("builds_running", snapGauge(t, snap, "blab_builds_running"), 0)

	dispatched, _ := snap.Get("blab_builds_dispatched_total")
	lat, ok := snap.Get("blab_dispatch_latency_seconds")
	if !ok || lat.Hist == nil {
		t.Fatal("dispatch latency histogram missing")
	}
	if float64(lat.Hist.Count) != dispatched.Value {
		t.Errorf("dispatch latency count %d != dispatched %v", lat.Hist.Count, dispatched.Value)
	}
}

// TestRequestIDAndInstrumentation: every response carries a request ID
// and the middleware accounts the route in the registry.
func TestRequestIDAndInstrumentation(t *testing.T) {
	v := newV1Rig(t)

	resp := v.request(t, "GET", "/api/v1/nodes", v.admin.Token, "")
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("response missing X-Request-Id")
	}

	req, err := http.NewRequest("GET", v.ts.URL+"/api/v1/nodes", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+v.admin.Token)
	req.Header.Set("X-Request-Id", "trace-me-7")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "trace-me-7" {
		t.Errorf("caller-supplied request id not echoed: got %q", got)
	}

	// Hostile inbound IDs — log-injection payloads or oversized values —
	// must be replaced with a freshly minted ID, never echoed.
	for _, bad := range []string{
		"evil\" status=200 fake=\"",
		strings.Repeat("a", 65),
		"semi;colon",
	} {
		req, err = http.NewRequest("GET", v.ts.URL+"/api/v1/nodes", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+v.admin.Token)
		req.Header["X-Request-Id"] = []string{bad}
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("X-Request-Id"); got == bad || got == "" {
			t.Errorf("hostile request id %q: response id %q, want fresh generated id", bad, got)
		}
	}

	snap := v.srv.MetricsSnapshot()
	m, ok := snap.Get("blab_http_requests_total",
		metrics.Label{Name: "route", Value: "GET /api/v1/nodes"},
		metrics.Label{Name: "code", Value: "200"})
	if !ok || m.Value < 2 {
		t.Errorf("http_requests_total{GET /api/v1/nodes,200} = %v %v, want >= 2", m.Value, ok)
	}
}
