package accessserver

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"batterylab/internal/api"
)

// nodeCensusEntry is one node's published lifecycle snapshot plus the
// registry membership bit the /nodes listing filters on.
type nodeCensusEntry struct {
	NodeStatus
	registered bool
}

// readPlane is the server's snapshot-served read side: immutable
// copy-on-write views of build status, the node census and campaign
// membership, republished by the scheduler at every state transition
// while it already holds s.mu. The hot GET routes (build status, node
// list, campaign status) load these views with atomic pointer reads and
// never acquire the scheduler lock, so status-poll floods are lock-free
// with respect to dispatch.
//
// Consistency: publishers run inside the scheduler's critical sections,
// so snapshots are installed in transition order — a client that
// observed a build running can never later read it queued
// (monotonic reads). The write lock below only serializes the
// copy-on-write map swaps; readers never take it.
type readPlane struct {
	// wmu serializes writers (map copy-and-swap). It is a leaf lock by
	// the same rule as the feed hub: publishers may hold s.mu and b.mu,
	// the plane never calls out or takes another lock.
	wmu sync.Mutex

	// builds maps build id -> cell; the map itself is copy-on-write
	// (adds at enqueue, deletes at retention), each cell's status is an
	// atomic pointer republished in place on every transition.
	builds atomic.Pointer[map[int]*buildCell]
	// nodes is the published node census, replaced wholesale.
	nodes atomic.Pointer[[]nodeCensusEntry]
	// camps maps campaign id -> member build ids (fixed at submission;
	// the map is copy-on-write for add/evict).
	camps atomic.Pointer[map[int][]int]
	// highCamp is the highest campaign id ever issued, for the
	// expired-vs-unknown distinction after eviction.
	highCamp atomic.Int64
}

type buildCell struct {
	st atomic.Pointer[api.BuildStatus]
}

func newReadPlane() *readPlane {
	rp := &readPlane{}
	b := make(map[int]*buildCell)
	rp.builds.Store(&b)
	c := make(map[int][]int)
	rp.camps.Store(&c)
	n := []nodeCensusEntry{}
	rp.nodes.Store(&n)
	return rp
}

// publishBuild installs st as build st.ID's served status. Existing
// cells are updated in place (one atomic store); new ids copy the map.
func (rp *readPlane) publishBuild(st api.BuildStatus) {
	cur := *rp.builds.Load()
	if cell, ok := cur[st.ID]; ok {
		cell.st.Store(&st)
		return
	}
	rp.wmu.Lock()
	defer rp.wmu.Unlock()
	cur = *rp.builds.Load()
	if cell, ok := cur[st.ID]; ok {
		cell.st.Store(&st)
		return
	}
	next := make(map[int]*buildCell, len(cur)+1)
	for id, c := range cur {
		next[id] = c
	}
	cell := &buildCell{}
	cell.st.Store(&st)
	next[st.ID] = cell
	rp.builds.Store(&next)
}

// removeBuild evicts a build's served status (retention expiry).
func (rp *readPlane) removeBuild(id int) {
	rp.wmu.Lock()
	defer rp.wmu.Unlock()
	cur := *rp.builds.Load()
	if _, ok := cur[id]; !ok {
		return
	}
	next := make(map[int]*buildCell, len(cur)-1)
	for bid, c := range cur {
		if bid != id {
			next[bid] = c
		}
	}
	rp.builds.Store(&next)
}

// buildStatus returns the served status for id, if published.
func (rp *readPlane) buildStatus(id int) (api.BuildStatus, bool) {
	if cell, ok := (*rp.builds.Load())[id]; ok {
		return *cell.st.Load(), true
	}
	return api.BuildStatus{}, false
}

// publishCampaign records a campaign's member build ids (fixed at
// submission) and raises the campaign high-water mark.
func (rp *readPlane) publishCampaign(id int, builds []int) {
	rp.wmu.Lock()
	defer rp.wmu.Unlock()
	cur := *rp.camps.Load()
	next := make(map[int][]int, len(cur)+1)
	for cid, b := range cur {
		next[cid] = b
	}
	next[id] = append([]int(nil), builds...)
	rp.camps.Store(&next)
	if int64(id) > rp.highCamp.Load() {
		rp.highCamp.Store(int64(id))
	}
}

// removeCampaign evicts a campaign (its last member expired).
func (rp *readPlane) removeCampaign(id int) {
	rp.wmu.Lock()
	defer rp.wmu.Unlock()
	cur := *rp.camps.Load()
	if _, ok := cur[id]; !ok {
		return
	}
	next := make(map[int][]int, len(cur)-1)
	for cid, b := range cur {
		if cid != id {
			next[cid] = b
		}
	}
	rp.camps.Store(&next)
}

// campaign returns a campaign's member ids, if published.
func (rp *readPlane) campaign(id int) ([]int, bool) {
	b, ok := (*rp.camps.Load())[id]
	return b, ok
}

// campaignExpired reports whether id was issued but has been evicted.
func (rp *readPlane) campaignExpired(id int) bool {
	return id >= 1 && int64(id) <= rp.highCamp.Load()
}

// publishNodes replaces the served node census.
func (rp *readPlane) publishNodes(list []nodeCensusEntry) {
	rp.nodes.Store(&list)
}

// nodeList returns the served node census.
func (rp *readPlane) nodeList() []nodeCensusEntry {
	return *rp.nodes.Load()
}

// node returns one census entry by name.
func (rp *readPlane) node(name string) (nodeCensusEntry, bool) {
	for _, e := range *rp.nodes.Load() {
		if e.Name == name {
			return e, true
		}
	}
	return nodeCensusEntry{}, false
}

// censusHealth recomputes a census entry's health at now. Health is
// time-derived — a silent node ages into suspect and then offline
// without any scheduler transition republishing the census — so the
// read path derives it fresh from the published heartbeat instead of
// trusting the value computed at publish time. Mirrors healthLocked
// plus nodeEntryLocked's registration rule, using only snapshot fields
// and the live registry membership the caller checked (on the
// registry's own lock, never s.mu).
func (s *Server) censusHealth(e nodeCensusEntry, registered bool, now time.Time) Health {
	if e.Removed {
		return HealthOffline
	}
	if !registered {
		return HealthOffline
	}
	if e.Monitored && now.Sub(e.LastHeartbeat) >= s.cfg.OfflineAfter {
		return HealthOffline
	}
	if e.Draining {
		return HealthDraining
	}
	if !e.Monitored {
		return HealthOnline
	}
	if now.Sub(e.LastHeartbeat) < s.cfg.SuspectAfter {
		return HealthOnline
	}
	return HealthSuspect
}

// publishBuildLocked republishes b's served wire-form status after a
// state transition. Callers hold s.mu but never b.mu (the snapshot
// reads b's state through its own accessors).
func (s *Server) publishBuildLocked(b *Build) {
	s.reads.publishBuild(buildStatus(b))
}

// publishNodesLocked rebuilds and republishes the node census after
// anything that changes what GET /nodes would report: heartbeats,
// monitor/drain/remove transitions, and queue movement (queued counts).
// One queue scan covers every node, where the old per-request path
// scanned the queue once per node per poll while holding s.mu.
// Callers hold s.mu but never any b.mu.
func (s *Server) publishNodesLocked() {
	queued := make(map[string]int)
	for _, b := range s.queue {
		if cons, _, err := s.pipelineLocked(b); err == nil {
			queued[cons.Node]++
		}
	}
	names := map[string]bool{}
	for _, n := range s.Nodes.List() {
		names[n] = true
	}
	for n := range s.nodeRecs {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	list := make([]nodeCensusEntry, 0, len(sorted))
	for _, n := range sorted {
		st, registered := s.nodeEntryLocked(n, queued[n])
		list = append(list, nodeCensusEntry{NodeStatus: st, registered: registered})
	}
	s.reads.publishNodes(list)
}
