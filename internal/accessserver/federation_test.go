package accessserver

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"batterylab/internal/accessserver/cluster"
	"batterylab/internal/accessserver/store"
	"batterylab/internal/api"
)

const testClusterToken = "fed-s3cret"

// announceJSON posts a peer announce to the server's v1 handler with
// the given bearer token and returns the recorder.
func announceJSON(t *testing.T, h http.Handler, token string, ann api.PeerAnnounce) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(ann)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/api/v1/cluster/peers", bytes.NewReader(body))
	req.Header.Set("Authorization", "Bearer "+token)
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestClusterAnnounceAuth: announces need the cluster token (not a user
// token, not nothing), a nameless announce is rejected, and a peer
// claiming this server's own name conflicts.
func TestClusterAnnounceAuth(t *testing.T) {
	r := newRig(t)
	r.srv.ConfigureCluster("lab-a", "http://lab-a:9090", testClusterToken)
	h := r.srv.Handler()
	ann := api.PeerAnnounce{Name: "lab-eu", URL: "http://eu:9090"}

	if w := announceJSON(t, h, "", ann); w.Code != http.StatusUnauthorized {
		t.Fatalf("tokenless announce: HTTP %d", w.Code)
	}
	if w := announceJSON(t, h, r.admin.Token, ann); w.Code != http.StatusUnauthorized {
		t.Fatalf("user-token announce: HTTP %d (user tokens must not join peers)", w.Code)
	}
	if w := announceJSON(t, h, testClusterToken, api.PeerAnnounce{URL: "http://x"}); w.Code != http.StatusBadRequest {
		t.Fatalf("nameless announce: HTTP %d", w.Code)
	}
	if w := announceJSON(t, h, testClusterToken, api.PeerAnnounce{Name: "lab-a"}); w.Code != http.StatusConflict {
		t.Fatalf("self-named announce: HTTP %d", w.Code)
	}
	w := announceJSON(t, h, testClusterToken, ann)
	if w.Code != http.StatusOK {
		t.Fatalf("valid announce: HTTP %d: %s", w.Code, w.Body)
	}
	var view api.ClusterView
	if err := json.Unmarshal(w.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if view.Self != "lab-a" || len(view.Peers) != 1 || view.Peers[0].State != "online" {
		t.Fatalf("announce response view = %+v", view)
	}

	// The cluster token is a peer principal, not an admin: submit and
	// console reads only.
	for perm, want := range map[Permission]bool{
		PermRunJob:      true,
		PermViewConsole: true,
		PermCreateJob:   false,
		PermManageNodes: false,
		PermManageUsers: false,
	} {
		if got := Allowed(RolePeer, perm); got != want {
			t.Errorf("Allowed(RolePeer, %v) = %v, want %v", perm, got, want)
		}
	}
}

// TestClusterMembershipPersists: peer membership rides the WAL — it
// survives a restart by name and URL, comes back offline until the peer
// re-announces, and an eviction is durable too.
func TestClusterMembershipPersists(t *testing.T) {
	dir := t.TempDir()
	r := newRig(t)
	r.srv.ConfigureCluster("lab-a", "http://lab-a:9090", testClusterToken)
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.srv.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	h := r.srv.Handler()

	if w := announceJSON(t, h, testClusterToken, api.PeerAnnounce{Name: "lab-eu", URL: "http://eu:9090"}); w.Code != http.StatusOK {
		t.Fatalf("announce lab-eu: HTTP %d", w.Code)
	}
	if w := announceJSON(t, h, testClusterToken, api.PeerAnnounce{Name: "lab-us", URL: "http://us:9090"}); w.Code != http.StatusOK {
		t.Fatalf("announce lab-us: HTTP %d", w.Code)
	}
	// A URL move re-persists membership.
	if w := announceJSON(t, h, testClusterToken, api.PeerAnnounce{Name: "lab-eu", URL: "http://eu-new:9090"}); w.Code != http.StatusOK {
		t.Fatalf("re-announce lab-eu: HTTP %d", w.Code)
	}
	// Evict lab-us with an admin user token.
	req := httptest.NewRequest(http.MethodDelete, "/api/v1/cluster/peers/lab-us", nil)
	req.Header.Set("Authorization", "Bearer "+r.admin.Token)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("evict lab-us: HTTP %d: %s", w.Code, w.Body)
	}
	st.Close()

	// Restart on the same directory.
	r2 := newRig(t)
	r2.srv.ConfigureCluster("lab-a", "http://lab-a:9090", testClusterToken)
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.srv.AttachStore(st2); err != nil {
		t.Fatal(err)
	}
	defer st2.Close()

	p, ok := r2.srv.Cluster().Peer("lab-eu")
	if !ok {
		t.Fatal("lab-eu membership did not survive the restart")
	}
	if p.URL != "http://eu-new:9090" {
		t.Fatalf("restored URL %q, want the moved http://eu-new:9090", p.URL)
	}
	if !p.LastBeat.IsZero() {
		t.Fatal("liveness persisted: a restored peer must start with no heartbeat")
	}
	if st, _, _ := r2.srv.Cluster().PeerState("lab-eu", r2.clk.Now()); st != cluster.StateOffline {
		t.Fatalf("restored peer state %v, want offline until it re-announces", st)
	}
	if _, ok := r2.srv.Cluster().Peer("lab-us"); ok {
		t.Fatal("evicted lab-us came back after the restart")
	}
}

// TestClusterViewLockFree: GET /api/v1/cluster is snapshot-served — a
// flood of view reads (user token and cluster token alike) acquires the
// scheduler mutex zero times.
func TestClusterViewLockFree(t *testing.T) {
	r := newRig(t)
	r.srv.ConfigureCluster("lab-a", "http://lab-a:9090", testClusterToken)
	h := r.srv.Handler()
	if w := announceJSON(t, h, testClusterToken, api.PeerAnnounce{
		Name: "lab-eu", URL: "http://eu:9090",
		Nodes: []api.PeerNode{{Name: "node9", Health: "online"}},
	}); w.Code != http.StatusOK {
		t.Fatalf("announce: HTTP %d", w.Code)
	}

	before := r.srv.SchedLockAcquisitions()
	for i := 0; i < 100; i++ {
		tok := r.exp.Token
		if i%2 == 1 {
			tok = testClusterToken
		}
		req := httptest.NewRequest(http.MethodGet, "/api/v1/cluster", nil)
		req.Header.Set("Authorization", "Bearer "+tok)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("view read %d: HTTP %d", i, w.Code)
		}
		var view api.ClusterView
		if err := json.Unmarshal(w.Body.Bytes(), &view); err != nil {
			t.Fatal(err)
		}
		if len(view.Peers) != 1 || view.Peers[0].Nodes[0].Name != "node9" {
			t.Fatalf("view read %d: %+v", i, view)
		}
	}
	if after := r.srv.SchedLockAcquisitions(); after != before {
		t.Fatalf("cluster view reads took the scheduler lock %d times", after-before)
	}
}
