// Package schedsim is the deterministic simulation harness for the
// access server's scheduler. A Script describes a fleet (nodes, their
// devices, and scripted kill/revive/late-registration instants) and a
// workload (builds with owners, placement constraints, durations and
// submit instants); Run plays the script against a real Server on a
// virtual clock and returns every build's full outcome — assignment,
// placement score, attempts, wait and run durations, typed failure.
//
// Because the clock is virtual and every scheduler decision is
// deterministic (sorted scans, stable tie-breaks, held-clock dispatch
// batches), the same script always produces the same Result — which is
// what makes the harness usable for property tests: replay a script
// twice and diff the outcomes, assert liveness (every submitted build
// reaches a terminal state or fails typed), or probe scheduling policy
// (fairness caps, scoring preferences) with scripted fleets instead of
// ad-hoc assertions. This package is the standing correctness tool for
// scheduler work; grow scripts here rather than hand-rolled tests.
package schedsim

import (
	"errors"
	"fmt"
	"time"

	"batterylab/internal/accessserver"
	"batterylab/internal/api"
	"batterylab/internal/simclock"
)

// NodeSpec scripts one vantage point's lifecycle.
type NodeSpec struct {
	// Name identifies the node; Devices are the serials it hosts
	// (conventionally "model-unit", so the placer can match models).
	Name    string
	Devices []string
	// RegisterAt delays the node's registration into the fleet (0 =
	// registered before the script starts).
	RegisterAt time.Duration
	// KillAt > 0 kills the node at that instant: pings fail, running
	// builds hang until the lease watchdog reclaims them. ReviveAt > 0
	// brings it back.
	KillAt   time.Duration
	ReviveAt time.Duration
}

// BuildSpec scripts one submitted build.
type BuildSpec struct {
	// Owner is the submitting user (created as an experimenter; the
	// harness never submits as admin so admission control applies).
	Owner string
	// Node/Device pin the preferred placement; Fallback lets the scorer
	// substitute when the pin is unavailable.
	Node     string
	Device   string
	Fallback bool
	// Duration is the simulated run time. Sync builds instead complete
	// synchronously inside dispatch — the deep-queue stress shape.
	Duration time.Duration
	Sync     bool
	// SubmitAt is the submission instant (0 = before driving starts).
	SubmitAt time.Duration
}

// Script is one complete scenario.
type Script struct {
	Nodes  []NodeSpec
	Builds []BuildSpec
	// Config overrides the harness defaults (Executors = node count,
	// 5s heartbeats, 5s retry backoff, 3 retries, 10m pending timeout).
	// Zero fields keep the defaults.
	Config accessserver.Config
	// Placer overrides the default scoring placer.
	Placer accessserver.Placer
	// MaxSimulated bounds the virtual-clock run as a safety net against
	// a livelocked script (default 24h).
	MaxSimulated time.Duration
}

// BuildResult is one build's deterministic outcome. Instants are
// durations from the script's start on the virtual clock.
type BuildResult struct {
	Index int    // position in Script.Builds
	Owner string `json:"owner"`
	State string `json:"state"`
	// Shed marks a submission rejected by admission control: no build
	// ever existed, ShedReason says why, every other field is zero.
	Shed       bool   `json:"shed,omitempty"`
	ShedReason string `json:"shed_reason,omitempty"`

	Node      string  `json:"node"`
	Score     float64 `json:"score"`
	Attempts  int     `json:"attempts"`
	Failovers int     `json:"failovers"`
	// WaitNS is submit→dispatch; RunNS is dispatch→finish. SubmitAt +
	// Wait + Run is the finish instant, so identical results imply
	// identical finish instants.
	WaitNS int64 `json:"wait_ns"`
	RunNS  int64 `json:"run_ns"`

	Err      string `json:"err,omitempty"`
	NodeLost bool   `json:"node_lost,omitempty"`
}

// Result is the script's outcome.
type Result struct {
	Builds []BuildResult
	// MakespanNS is the virtual time from start to the last terminal
	// transition the drive loop observed.
	MakespanNS int64
	// Shed counts submissions rejected by admission control.
	Shed int
}

// simNode is the scripted in-process vantage point.
type simNode struct {
	name    string
	devices string // newline-joined for list_devices
}

func (n simNode) Name() string { return n.name }
func (n simNode) Exec(cmd string, args ...string) (string, error) {
	switch cmd {
	case "ping":
		return "pong", nil
	case "list_devices":
		return n.devices, nil
	case "status":
		return "status: cpu=5.0%", nil
	}
	return "", nil
}
func (n simNode) Ping() error { return nil }

// backend compiles scripted specs: the workload params carry the
// build's duration and sync flag.
type backend struct{ clock simclock.Clock }

func (b backend) Compile(spec api.ExperimentSpec) (accessserver.Constraints, accessserver.RunFunc, error) {
	cons := accessserver.Constraints{
		Node:     spec.Node,
		Device:   spec.Device,
		Fallback: spec.Constraints.AllowFallback,
	}
	durMS := spec.Workload.Params.Int("duration_ms", 10_000)
	sync := spec.Workload.Params.Bool("sync", false)
	return cons, func(ctx *accessserver.BuildContext, done func(error)) {
		if sync {
			done(nil)
			return
		}
		b.clock.AfterFunc(time.Duration(durMS)*time.Millisecond, func() {
			// A run on a dead vantage point never reports back — the
			// hang the lease watchdog exists to break. Live nodes
			// complete normally.
			if _, err := ctx.Node.Exec("ping"); err != nil {
				return
			}
			done(nil)
		})
	}, nil
}

func (backend) WorkloadNames() []string { return []string{"sim"} }

// Run plays the script to completion and reports every build's
// outcome. It errors when the scheduler stalls (a non-terminal build
// with no pending clock work) or the simulated-time safety net trips —
// both liveness violations, never expected from a correct scheduler.
func Run(script Script) (Result, error) {
	clk := simclock.NewVirtual()
	cfg := script.Config
	if cfg.Executors == 0 {
		cfg.Executors = len(script.Nodes)
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = 5 * time.Second
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 5 * time.Second
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	}
	if cfg.PendingTimeout == 0 {
		cfg.PendingTimeout = 10 * time.Minute
	}
	maxSim := script.MaxSimulated
	if maxSim == 0 {
		maxSim = 24 * time.Hour
	}
	srv := accessserver.New(clk, cfg)
	srv.SetSpecBackend(backend{clock: clk})
	if script.Placer != nil {
		srv.SetPlacer(script.Placer)
	}

	users := map[string]*accessserver.User{}
	for _, bs := range script.Builds {
		if _, ok := users[bs.Owner]; ok {
			continue
		}
		u, err := srv.Users.Add(bs.Owner, accessserver.RoleExperimenter)
		if err != nil {
			return Result{}, fmt.Errorf("schedsim: adding owner %s: %w", bs.Owner, err)
		}
		users[bs.Owner] = u
	}

	flk := map[string]*accessserver.FlakyNode{}
	register := func(ns NodeSpec) error {
		n := flk[ns.Name]
		return srv.RegisterNode(n)
	}
	for _, ns := range script.Nodes {
		ns := ns
		flk[ns.Name] = accessserver.NewFlakyNode(simNode{
			name: ns.Name, devices: joinLines(ns.Devices),
		})
		if ns.RegisterAt > 0 {
			clk.AfterFunc(ns.RegisterAt, func() {
				if err := register(ns); err != nil {
					panic(fmt.Sprintf("schedsim: late-registering %s: %v", ns.Name, err))
				}
			})
		} else if err := register(ns); err != nil {
			return Result{}, fmt.Errorf("schedsim: registering %s: %w", ns.Name, err)
		}
		if ns.KillAt > 0 {
			clk.AfterFunc(ns.KillAt, flk[ns.Name].Kill)
		}
		if ns.ReviveAt > 0 {
			clk.AfterFunc(ns.ReviveAt, flk[ns.Name].Revive)
		}
	}

	t0 := clk.Now()
	results := make([]BuildResult, len(script.Builds))
	builds := make([]*accessserver.Build, len(script.Builds))
	shed := 0
	submit := func(i int) {
		bs := script.Builds[i]
		b, err := srv.SubmitSpec(users[bs.Owner], api.ExperimentSpec{
			Node: bs.Node, Device: bs.Device,
			Workload: api.WorkloadSpec{Name: "sim", Params: api.Params{
				// Params.Int reads int/float64, not int64.
				"duration_ms": int(bs.Duration.Milliseconds()),
				"sync":        bs.Sync,
			}},
			Constraints: api.ConstraintsSpec{AllowFallback: bs.Fallback},
		})
		if err != nil {
			if !errors.Is(err, accessserver.ErrOverloaded) {
				panic(fmt.Sprintf("schedsim: submitting build %d: %v", i, err))
			}
			results[i] = BuildResult{
				Index: i, Owner: bs.Owner, State: "shed",
				Shed: true, ShedReason: accessserver.ShedReasonOf(err),
			}
			shed++
			return
		}
		builds[i] = b
	}
	for i, bs := range script.Builds {
		if bs.SubmitAt > 0 {
			i := i
			clk.AfterFunc(bs.SubmitAt, func() { submit(i) })
		} else {
			submit(i)
		}
	}

	terminal := func(b *accessserver.Build) bool {
		switch b.State() {
		case accessserver.StateSuccess, accessserver.StateFailure, accessserver.StateAborted:
			return true
		}
		return false
	}
	// A build is outstanding while unsubmitted (its SubmitAt has not
	// fired — builds[i] still nil and results[i] not shed) or
	// non-terminal.
	allDone := func() bool {
		for i, b := range builds {
			if b == nil {
				if !results[i].Shed {
					return false
				}
				continue
			}
			if !terminal(b) {
				return false
			}
		}
		return true
	}
	var makespan time.Duration
	for !allDone() {
		next, ok := clk.NextDeadline()
		if !ok {
			return Result{}, fmt.Errorf("schedsim: stalled with %d builds queued and no pending clock work", srv.QueueLength())
		}
		if next.Sub(t0) > maxSim {
			return Result{}, fmt.Errorf("schedsim: exceeded the %s simulated-time safety net", maxSim)
		}
		clk.RunUntil(next)
		if allDone() {
			makespan = clk.Now().Sub(t0)
		}
	}

	for i, b := range builds {
		if b == nil {
			continue // shed; result already recorded
		}
		r := BuildResult{
			Index:     i,
			Owner:     script.Builds[i].Owner,
			State:     b.State().String(),
			Node:      b.NodeName(),
			Score:     b.PlacementScore(),
			Attempts:  b.Attempts(),
			Failovers: b.Retries(),
			WaitNS:    b.QueueTime().Nanoseconds(),
			RunNS:     b.Duration().Nanoseconds(),
		}
		if err := b.Err(); err != nil {
			r.Err = err.Error()
			r.NodeLost = errors.Is(err, accessserver.ErrNodeLost)
		}
		results[i] = r
	}
	return Result{Builds: results, MakespanNS: makespan.Nanoseconds(), Shed: shed}, nil
}

func joinLines(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "\n"
		}
		out += s
	}
	return out
}
