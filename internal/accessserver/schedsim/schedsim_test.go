package schedsim

import (
	"fmt"
	"reflect"
	"runtime/debug"
	"testing"
	"time"

	"batterylab/internal/accessserver"
	"batterylab/internal/api"
	"batterylab/internal/simclock"
)

// richScript is the determinism workhorse: a heterogeneous fleet with a
// mid-run kill, a kill+revive, and a late registration, loaded with a
// mix of pinned and fallback builds from three owners on staggered
// submit instants. Everything a dispatch pass can do, it does here.
func richScript() Script {
	s := Script{
		Nodes: []NodeSpec{
			{Name: "pixel-1", Devices: []string{"pixel4-a", "pixel4-b"}},
			{Name: "pixel-2", Devices: []string{"pixel4-c"}, KillAt: 30 * time.Second},
			{Name: "moto-1", Devices: []string{"motog5-a"}, KillAt: 40 * time.Second, ReviveAt: 2 * time.Minute},
			{Name: "moto-2", Devices: []string{"motog5-b"}},
			{Name: "nexus-1", Devices: []string{"nexus5-a"}, RegisterAt: 20 * time.Second},
		},
	}
	owners := []string{"ana", "bo", "cy"}
	pin := []struct{ node, dev string }{
		{"pixel-1", "pixel4-a"}, {"pixel-1", "pixel4-b"}, {"pixel-2", "pixel4-c"},
		{"moto-1", "motog5-a"}, {"moto-2", "motog5-b"}, {"nexus-1", "nexus5-a"},
	}
	for i := 0; i < 36; i++ {
		p := pin[i%len(pin)]
		s.Builds = append(s.Builds, BuildSpec{
			Owner:    owners[i%len(owners)],
			Node:     p.node,
			Device:   p.dev,
			Fallback: i%2 == 0,
			Duration: time.Duration(5+i%7) * time.Second,
			SubmitAt: time.Duration(i%5) * 3 * time.Second,
		})
	}
	return s
}

// TestDoubleRunDeterminism replays the same script twice and requires
// bit-identical outcomes: node assignments, placement scores, attempt
// counts, and wait/run durations (hence finish instants). This is the
// tentpole property — placement scoring and batch dispatch may not
// introduce any run-to-run variation on the virtual clock.
func TestDoubleRunDeterminism(t *testing.T) {
	r1, err := Run(richScript())
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	r2, err := Run(richScript())
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !reflect.DeepEqual(r1, r2) {
		for i := range r1.Builds {
			if !reflect.DeepEqual(r1.Builds[i], r2.Builds[i]) {
				t.Errorf("build %d diverged:\n  run1: %+v\n  run2: %+v", i, r1.Builds[i], r2.Builds[i])
			}
		}
		t.Fatalf("replay diverged (makespan %d vs %d)", r1.MakespanNS, r2.MakespanNS)
	}
	if r1.MakespanNS <= 0 {
		t.Fatalf("makespan %d, want > 0", r1.MakespanNS)
	}
	// The scripted kills must actually have exercised failover.
	failovers := 0
	for _, b := range r1.Builds {
		failovers += b.Failovers
	}
	if failovers == 0 {
		t.Fatal("script produced no failovers; the determinism check is not covering the failover path")
	}
}

// TestEveryBuildDispatchesOrFailsTyped is the liveness property: under
// node kills, a never-registering node, and no fallback, every build
// still reaches a terminal state — success, or a failure carrying the
// typed ErrNodeLost marker — rather than waiting forever.
func TestEveryBuildDispatchesOrFailsTyped(t *testing.T) {
	script := Script{
		Nodes: []NodeSpec{
			{Name: "alive", Devices: []string{"pixel4-a"}},
			{Name: "doomed", Devices: []string{"pixel4-b"}, KillAt: 10 * time.Second},
		},
		Builds: []BuildSpec{
			{Owner: "ana", Node: "alive", Device: "pixel4-a", Duration: 5 * time.Second},
			// Pinned to the doomed node, no fallback: dies mid-run,
			// fails over to nothing, exhausts the retry budget.
			{Owner: "ana", Node: "doomed", Device: "pixel4-b", Duration: 60 * time.Second},
			// Pinned to a node that never joins the fleet: ages out at
			// the pending timeout.
			{Owner: "bo", Node: "ghost", Device: "pixel4-x", Duration: 5 * time.Second},
		},
		Config: accessserver.Config{Executors: 4},
	}
	res, err := Run(script)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, b := range res.Builds {
		switch b.State {
		case "success":
		case "failure":
			if !b.NodeLost {
				t.Errorf("build %d failed untyped: %s", b.Index, b.Err)
			}
		default:
			t.Errorf("build %d ended %q, want a terminal state", b.Index, b.State)
		}
	}
	if res.Builds[0].State != "success" {
		t.Errorf("build 0 on the healthy node ended %q: %s", res.Builds[0].State, res.Builds[0].Err)
	}
	for _, i := range []int{1, 2} {
		if res.Builds[i].State != "failure" {
			t.Errorf("build %d should have failed typed, ended %q", i, res.Builds[i].State)
		}
	}
}

// TestScoringMonotonicity checks the default placer's contract: all
// else equal, each reliability penalty strictly lowers the score and a
// model match strictly raises it.
func TestScoringMonotonicity(t *testing.T) {
	p := accessserver.WeightedPlacer{W: accessserver.DefaultScoreWeights()}
	base := accessserver.PlacementCandidate{
		Node: "n", Device: "pixel4-a", Health: accessserver.HealthOnline,
		Running: 1, Flaps: 2, Failovers: 1,
	}
	s0 := p.Score(base)

	worse := []func(c accessserver.PlacementCandidate) accessserver.PlacementCandidate{
		func(c accessserver.PlacementCandidate) accessserver.PlacementCandidate { c.Running++; return c },
		func(c accessserver.PlacementCandidate) accessserver.PlacementCandidate { c.Flaps++; return c },
		func(c accessserver.PlacementCandidate) accessserver.PlacementCandidate { c.Failovers++; return c },
		func(c accessserver.PlacementCandidate) accessserver.PlacementCandidate { c.RecentFlap = true; return c },
	}
	for i, mut := range worse {
		if s := p.Score(mut(base)); s >= s0 {
			t.Errorf("mutation %d: score %v, want < base %v", i, s, s0)
		}
	}
	better := base
	better.ModelMatch = true
	if s := p.Score(better); s <= s0 {
		t.Errorf("model match: score %v, want > base %v", s, s0)
	}
}

// TestScorerPlacesByModelAndLoad drives the integrated policy: a
// fallback build whose pinned node never appears must land on the
// model-matched node when one is free, and on the least-loaded
// alternative when scores otherwise tie.
func TestScorerPlacesByModelAndLoad(t *testing.T) {
	script := Script{
		Nodes: []NodeSpec{
			{Name: "moto-1", Devices: []string{"motog5-a"}},
			{Name: "pixel-1", Devices: []string{"pixel4-a"}},
			{Name: "pixel-2", Devices: []string{"pixel4-b"}},
		},
		Config: accessserver.Config{Executors: 8},
		Builds: []BuildSpec{
			// Occupy pixel-1 so queue depth penalizes it.
			{Owner: "ana", Node: "pixel-1", Device: "pixel4-a", Duration: 5 * time.Minute},
			// Fallback wanting a pixel4: must choose pixel-2 — model
			// match beats moto-1, and pixel-1 is busy and locked.
			{Owner: "bo", Node: "gone", Device: "pixel4-z", Fallback: true, Duration: 10 * time.Second},
			// Fallback wanting a motog5: moto-1 wins on model match.
			{Owner: "cy", Node: "gone", Device: "motog5-z", Fallback: true, Duration: 10 * time.Second},
		},
	}
	res, err := Run(script)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := res.Builds[1].Node; got != "pixel-2" {
		t.Errorf("pixel-model fallback landed on %q, want pixel-2", got)
	}
	if got := res.Builds[2].Node; got != "moto-1" {
		t.Errorf("moto-model fallback landed on %q, want moto-1", got)
	}
	for _, i := range []int{1, 2} {
		if res.Builds[i].State != "success" {
			t.Errorf("build %d ended %q: %s", i, res.Builds[i].State, res.Builds[i].Err)
		}
	}
}

// TestAdmissionShedsTyped covers both admission gates end to end: the
// per-owner in-flight cap sheds the over-quota owner with the owner_cap
// reason, and the queue watermark sheds everyone once the fleet
// saturates — both as typed ErrOverloaded, while admitted builds still
// complete.
func TestAdmissionShedsTyped(t *testing.T) {
	script := Script{
		Nodes: []NodeSpec{
			// Registers late so submissions pile into the queue.
			{Name: "n1", Devices: []string{"pixel4-a"}, RegisterAt: 5 * time.Second},
		},
		Config: accessserver.Config{
			Executors:        4,
			OwnerInFlightCap: 3,
			ShedWatermark:    5,
		},
	}
	// "hog" tries 6 (cap 3); then two others fill to the watermark.
	for i := 0; i < 6; i++ {
		script.Builds = append(script.Builds, BuildSpec{
			Owner: "hog", Node: "n1", Device: "pixel4-a", Sync: true,
		})
	}
	for i := 0; i < 4; i++ {
		script.Builds = append(script.Builds, BuildSpec{
			Owner: fmt.Sprintf("u%d", i%2), Node: "n1", Device: "pixel4-a", Sync: true,
		})
	}
	res, err := Run(script)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var ownerCap, watermark, ok int
	for _, b := range res.Builds {
		switch {
		case b.Shed && b.ShedReason == accessserver.ShedOwnerCap:
			ownerCap++
		case b.Shed && b.ShedReason == accessserver.ShedQueueWatermark:
			watermark++
		case b.State == "success":
			ok++
		default:
			t.Errorf("build %d: state %q shed=%v reason=%q err=%s", b.Index, b.State, b.Shed, b.ShedReason, b.Err)
		}
	}
	if ownerCap != 3 {
		t.Errorf("owner_cap sheds = %d, want 3 (hog submitted 6 against cap 3)", ownerCap)
	}
	// hog holds 3 queue slots; the watermark (5) admits 2 more, sheds 2.
	if watermark != 2 {
		t.Errorf("queue_watermark sheds = %d, want 2", watermark)
	}
	if ok != 5 {
		t.Errorf("completed builds = %d, want 5", ok)
	}
	if res.Shed != ownerCap+watermark {
		t.Errorf("Result.Shed = %d, want %d", res.Shed, ownerCap+watermark)
	}
}

// newDirectServer is the non-scripted harness for tests that need to
// poke the server mid-run (pending reasons, deep queues).
func newDirectServer(t *testing.T, cfg accessserver.Config) (*simclock.Virtual, *accessserver.Server, *accessserver.User) {
	t.Helper()
	clk := simclock.NewVirtual()
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = 5 * time.Second
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 5 * time.Second
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	}
	if cfg.PendingTimeout == 0 {
		cfg.PendingTimeout = 10 * time.Minute
	}
	srv := accessserver.New(clk, cfg)
	srv.SetSpecBackend(backend{clock: clk})
	admin, err := srv.Users.Add("op", accessserver.RoleAdmin)
	if err != nil {
		t.Fatal(err)
	}
	return clk, srv, admin
}

func simSpec(node, device string, params api.Params) api.ExperimentSpec {
	return api.ExperimentSpec{
		Node: node, Device: device,
		Workload: api.WorkloadSpec{Name: "sim", Params: params},
	}
}

// TestPendingReasonStable is the churn regression: a build skipped for
// several reasons in one pass must report the highest-priority one, and
// keep reporting it across repeated scans.
func TestPendingReasonStable(t *testing.T) {
	clk, srv, admin := newDirectServer(t, accessserver.Config{Executors: 4})
	n := accessserver.NewFlakyNode(simNode{name: "n1", devices: "pixel4-a"})
	if err := srv.RegisterNode(n); err != nil {
		t.Fatal(err)
	}

	// A campaign capped at 1 with both builds wanting the same device:
	// the second build is blocked by the campaign cap AND the device
	// lock at once. The cap outranks the lock and must win every scan.
	long := api.Params{"duration_ms": 600_000}
	_, builds, err := srv.SubmitCampaign(admin, api.CampaignSpec{
		MaxConcurrent: 1,
		Experiments: []api.ExperimentSpec{
			simSpec("n1", "pixel4-a", long),
			simSpec("n1", "pixel4-a", long),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := builds[0].State(); got != accessserver.StateRunning {
		t.Fatalf("build 0 is %v, want running", got)
	}
	const want = "campaign concurrency cap reached"
	for scan := 0; scan < 5; scan++ {
		if got := builds[1].PendingReason(); got != want {
			t.Fatalf("scan %d: pending reason %q, want %q", scan, got, want)
		}
		srv.Kick()
		clk.Advance(time.Second)
	}

	// Saturate the executors with unrelated builds on other devices:
	// executor pressure outranks everything and must take over the
	// reported reason (the old scheduler returned early when saturated,
	// leaving a stale lower-priority reason behind).
	n2 := accessserver.NewFlakyNode(simNode{name: "n2", devices: "pixel4-b\npixel4-c\npixel4-d"})
	if err := srv.RegisterNode(n2); err != nil {
		t.Fatal(err)
	}
	for _, dev := range []string{"pixel4-b", "pixel4-c", "pixel4-d"} {
		if _, err := srv.SubmitSpec(admin, simSpec("n2", dev, long)); err != nil {
			t.Fatal(err)
		}
	}
	srv.Kick()
	if got := builds[1].PendingReason(); got != "waiting for a free executor" {
		t.Fatalf("under saturation: pending reason %q, want executor wait", got)
	}
}

// TestDeepQueueNoStackGrowth proves the dispatchOne→finish→dispatch
// recursion is gone: 10k synchronous builds drain through one dispatch
// under a stack ceiling the old recursive scheduler (one finish frame
// per queued build) could not fit in.
func TestDeepQueueNoStackGrowth(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-build drain")
	}
	const total = 10_000
	_, srv, admin := newDirectServer(t, accessserver.Config{Executors: total + 1})

	devices := ""
	for i := 0; i < total; i++ {
		if i > 0 {
			devices += "\n"
		}
		devices += fmt.Sprintf("pixel4-%04d", i)
	}
	sync := api.Params{"sync": true}
	// Queue everything before the node exists, in max-size campaign
	// chunks (one dispatch pass per chunk instead of one per build).
	var all []*accessserver.Build
	for base := 0; base < total; base += accessserver.MaxCampaignExperiments {
		n := accessserver.MaxCampaignExperiments
		if base+n > total {
			n = total - base
		}
		specs := make([]api.ExperimentSpec, n)
		for i := range specs {
			specs[i] = simSpec("n1", fmt.Sprintf("pixel4-%04d", base+i), sync)
		}
		_, builds, err := srv.SubmitCampaign(admin, api.CampaignSpec{Experiments: specs})
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, builds...)
	}
	if got := srv.QueueLength(); got != total {
		t.Fatalf("queued %d, want %d", got, total)
	}

	// 4 MiB ceiling: ample for an iterative drain, fatal for 10k
	// nested finish→dispatch frames.
	old := debug.SetMaxStack(4 << 20)
	defer debug.SetMaxStack(old)

	// Registering the node triggers the one dispatch that drains all
	// 10k synchronous builds.
	if err := srv.RegisterNode(accessserver.NewFlakyNode(simNode{name: "n1", devices: devices})); err != nil {
		t.Fatal(err)
	}
	for i, b := range all {
		if b.State() != accessserver.StateSuccess {
			t.Fatalf("build %d ended %v after the drain", i, b.State())
		}
	}
}
