package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"batterylab/internal/api"
)

func rec(i int) Record {
	return Record{T: TBuildQueued, Build: &BuildRec{
		ID: i, Job: "spec:idle@node1", Owner: "bob", State: "queued",
		QueuedAtNS: int64(i) * 1e9,
		Spec: &api.ExperimentSpec{
			Node: "node1", Device: "dev1",
			Workload: api.WorkloadSpec{Name: "idle", Params: api.Params{"duration_ms": float64(1000)}},
		},
	}}
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{T: TUserAdded, User: &UserRec{Name: "alice", Role: 0, Token: "tok"}},
		rec(1),
		{T: TBuildStarted, BuildID: 1, NodeName: "node1", Attempt: 1, AtNS: 42},
		{T: TBuildFinished, BuildID: 1, State: "success", AtNS: 99,
			Summary: &api.RunSummary{Samples: 10, MeanMA: 1.5}},
		{T: TLedger, Entry: &LedgerRec{User: "bob", Delta: -2.5, Reason: "experiment"}},
	}
	for _, r := range want {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	snap, got := st2.Load()
	if snap != nil {
		t.Fatalf("snapshot before any compaction: %+v", snap)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("records round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestTornTailTruncated: a crash mid-append leaves a half-written
// record; reopening keeps the valid prefix and drops the tail, and the
// next append lands on a clean boundary.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := st.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Tear the tail: chop bytes off the last record.
	path := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, recs := st2.Load()
	if len(recs) != 2 {
		t.Fatalf("got %d records after torn tail, want 2", len(recs))
	}
	// The WAL must be usable again: append and reopen.
	if err := st2.Append(rec(4)); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	st3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	_, recs = st3.Load()
	if len(recs) != 3 || recs[2].Build.ID != 4 {
		t.Fatalf("append after truncation not readable: %+v", recs)
	}
}

// TestCorruptPayloadStopsReplay: a flipped bit inside a record fails
// its CRC and ends the replay there (everything after is discarded —
// the log has lost its integrity at that point).
func TestCorruptPayloadStopsReplay(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(len(walMagic) + 1)
	for i := 1; i <= 3; i++ {
		if err := st.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			info, _ := st.wal.Stat()
			off = info.Size()
		}
	}
	st.Close()

	path := filepath.Join(dir, "wal.log")
	data, _ := os.ReadFile(path)
	data[off+10] ^= 0xff // inside record 2's frame
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	_, recs := st2.Load()
	if len(recs) != 1 || recs[0].Build.ID != 1 {
		t.Fatalf("got %d records after corruption, want only the first", len(recs))
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := st.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st.Appended() != 5 {
		t.Fatalf("Appended = %d, want 5", st.Appended())
	}
	snap := &Snapshot{
		NextBuild:    6,
		NextCampaign: 2,
		Users:        []UserRec{{Name: "alice", Role: 0, Token: "tok"}},
		Builds:       []BuildRec{{ID: 5, Job: "j", State: "success"}},
		Ledger:       map[string][]LedgerRec{"bob": {{User: "bob", Delta: 3, Reason: "grant"}}},
	}
	if err := st.Compact(snap); err != nil {
		t.Fatal(err)
	}
	if st.Appended() != 0 {
		t.Fatalf("Appended after compaction = %d, want 0", st.Appended())
	}
	// Post-compaction appends replay on top of the snapshot.
	if err := st.Append(Record{T: TBuildExpired, BuildID: 5}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	gotSnap, recs := st2.Load()
	if gotSnap == nil {
		t.Fatal("no snapshot after compaction")
	}
	if gotSnap.NextBuild != 6 || len(gotSnap.Users) != 1 || len(gotSnap.Builds) != 1 {
		t.Fatalf("snapshot mismatch: %+v", gotSnap)
	}
	if len(gotSnap.Ledger["bob"]) != 1 {
		t.Fatalf("ledger lost in snapshot: %+v", gotSnap.Ledger)
	}
	if len(recs) != 1 || recs[0].T != TBuildExpired {
		t.Fatalf("post-compaction records = %+v, want one build_expired", recs)
	}
}

// TestCompactionPreservesTail: records appended between BeginCompact
// and FinishCompact (while the snapshot fsyncs, outside the caller's
// locks) survive the log reset instead of being truncated away.
func TestCompactionPreservesTail(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := st.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	c, err := st.BeginCompact(&Snapshot{NextBuild: 4, NextCampaign: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent-with-fsync appends: past the cut, must survive.
	for i := 4; i <= 5; i++ {
		if err := st.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.WriteSnapshot(c); err != nil {
		t.Fatal(err)
	}
	if err := st.FinishCompact(c); err != nil {
		t.Fatal(err)
	}
	if st.Appended() != 2 {
		t.Fatalf("Appended after splice = %d, want 2 (the tail)", st.Appended())
	}
	st.Close()

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	snap, recs := st2.Load()
	if snap == nil || snap.NextBuild != 4 {
		t.Fatalf("snapshot = %+v, want NextBuild 4", snap)
	}
	if len(recs) != 2 || recs[0].Build.ID != 4 || recs[1].Build.ID != 5 {
		t.Fatalf("tail records = %+v, want builds 4 and 5", recs)
	}
}

// TestCompactionCrashBeforeLogSwap: a crash after the snapshot rename
// but before the log swap (no FinishCompact) must not replay the
// snapshot-covered records a second time — ledger deltas are not
// idempotent. The snapshot's WALGen/WALCut marker skips them.
func TestCompactionCrashBeforeLogSwap(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Append(Record{T: TLedger, Entry: &LedgerRec{User: "bob", Delta: 5, Reason: "grant"}}); err != nil {
			t.Fatal(err)
		}
	}
	snap := &Snapshot{NextBuild: 1, NextCampaign: 1, Balances: map[string]float64{"bob": 15}}
	c, err := st.BeginCompact(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(c); err != nil {
		t.Fatal(err)
	}
	// Crash here: FinishCompact never runs. One more record lands in
	// the old-generation log past the cut.
	if err := st.Append(Record{T: TLedger, Entry: &LedgerRec{User: "bob", Delta: -2, Reason: "experiment"}}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	gotSnap, recs := st2.Load()
	if gotSnap == nil || gotSnap.Balances["bob"] != 15 {
		t.Fatalf("snapshot = %+v, want bob at 15", gotSnap)
	}
	// Only the post-cut record replays: balance 15 - 2 = 13, not
	// 15 + 15 - 2 from double-applying the covered grants.
	if len(recs) != 1 || recs[0].Entry.Delta != -2 {
		t.Fatalf("replayed %+v, want exactly the post-cut debit", recs)
	}
}

func TestEmptyDirIsEmptyStore(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	snap, recs := st.Load()
	if snap != nil || len(recs) != 0 {
		t.Fatalf("fresh store not empty: snap=%v recs=%v", snap, recs)
	}
}

func BenchmarkWALAppend(b *testing.B) {
	st, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	r := rec(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Append(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	st, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		if err := st.Append(rec(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
	st.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		_, recs := st.Load()
		if len(recs) != 10_000 {
			b.Fatalf("replayed %d records", len(recs))
		}
		st.Close()
	}
}
