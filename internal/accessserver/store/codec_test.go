package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"batterylab/internal/api"
)

// codecVocabulary is one record of every type with every field its
// type uses populated — the shapes the binary codec must round-trip.
func codecVocabulary() []Record {
	spec := &api.ExperimentSpec{
		Node:   "node1",
		Device: "R58M12ABCDE",
		Workload: api.WorkloadSpec{
			Name: "browser",
			Params: api.Params{
				"browser": "Brave",
				"pages":   float64(3),
				"warm":    true,
				"note":    nil,
				"nested":  map[string]any{"a": float64(1), "b": []any{"x", "y"}},
			},
		},
		Monitor:     api.MonitorSpec{SampleRateHz: 250, VoltageV: 4.05, CPUSamplePeriodMS: 500, PaddingMS: 2000},
		Mirroring:   true,
		VPNLocation: "japan",
		Transport:   "sshx",
		Constraints: api.ConstraintsSpec{RequireLowCPU: true, AllowFallback: true},
	}
	sum := &api.RunSummary{
		Samples: 300000, MeanMA: 142.5, P50MA: 139.25, P95MA: 201.75,
		EnergyMAH: 3.2, DurationNS: 60000000000, MirrorUploadBytes: 1 << 20, DroppedLiveSamples: 7,
	}
	return []Record{
		{T: TUserAdded, User: &UserRec{Name: "ana", Role: 2, Token: "tok-1"}},
		{T: TUserRemoved, Name: "bo"},
		{T: TJobPut, Job: &JobRec{Name: "exp", Owner: "ana", Node: "node1", Device: "dev", RequireLowCPU: true, Fallback: true, Approved: true, Revision: 3}},
		{T: TJobDeleted, Name: "old"},
		{T: TNodeMonitored, Node: &NodeRec{Name: "node1", Owner: "ana", Monitored: true, Draining: true, Removed: true, Devices: []string{"a", "b"}, OwedHostingNS: -5}},
		{T: TNodeOwner, Name: "node1", Owner: "ana"},
		{T: TNodeDrain, Name: "node1", Draining: true},
		{T: TNodeRemoved, Name: "node1"},
		{T: TNodeHostingFlush, Name: "node1", AtNS: 3600000000000},
		{T: TBuildQueued, Build: &BuildRec{
			ID: 1, Job: "exp", Owner: "ana", Campaign: 2, Spec: spec,
			State: "queued", Err: "boom", Canceled: true, NodeLost: true,
			Node: "node1", Attempts: 2, Retries: 1,
			QueuedAtNS: 1000, StartedAtNS: 2000, FinishedAtNS: 3000,
			Summary: sum, FeedEpoch: 4,
		}},
		{T: TBuildStarted, BuildID: 1, NodeName: "node1", Attempt: 1, AtNS: 2000},
		{T: TBuildCancelWant, BuildID: 1},
		{T: TBuildFailover, BuildID: 1, Retries: 1, Reason: "node lost", AtNS: 2500},
		{T: TBuildFinished, BuildID: 1, State: "success", Summary: sum, AtNS: 5000},
		{T: TBuildExpired, BuildID: 1},
		{T: TCampaign, Campaign: &CampaignRec{ID: 1, MaxConcurrent: 2, Builds: []int{1, 2, 3}}},
		{T: TCampaignExpired, CampaignID: 1},
		{T: TLedger, Entry: &LedgerRec{User: "ana", Delta: -2.5, Reason: "build 1"}},
		{T: TPeerJoined, Peer: &PeerRec{Name: "lab-eu", URL: "http://lab-eu.example:8080"}},
		{T: TPeerLeft, Name: "lab-eu"},
	}
}

// TestCodecCoversEveryType pins that the enum table and the vocabulary
// above stay in lockstep with the declared record types.
func TestCodecCoversEveryType(t *testing.T) {
	seen := map[Type]bool{}
	for _, rec := range codecVocabulary() {
		seen[rec.T] = true
	}
	for _, typ := range typeByIndex {
		if !seen[typ] {
			t.Errorf("codecVocabulary missing record type %q", typ)
		}
	}
	if len(typeByIndex) != 20 {
		t.Errorf("typeByIndex has %d entries; a new record type must be APPENDED and covered here", len(typeByIndex))
	}
}

// TestCodecRoundTrip checks encode→decode is the identity for every
// record shape, and that the binary form is materially smaller than
// JSON (the reason it exists).
func TestCodecRoundTrip(t *testing.T) {
	var binTotal, jsonTotal int
	for i, rec := range codecVocabulary() {
		payload, ok, err := encodeRecord(rec)
		if err != nil || !ok {
			t.Fatalf("record %d (%s): encode ok=%v err=%v", i, rec.T, ok, err)
		}
		if payload[0] != recBinaryMarker {
			t.Fatalf("record %d: payload does not start with the binary marker", i)
		}
		got, err := decodeRecord(payload)
		if err != nil {
			t.Fatalf("record %d (%s): decode: %v", i, rec.T, err)
		}
		// Compare through JSON: the JSON codec's round trip is the
		// semantics replay depends on (e.g. param numbers as float64).
		want := rec
		wj, _ := json.Marshal(want)
		gj, _ := json.Marshal(got)
		if !bytes.Equal(wj, gj) {
			t.Errorf("record %d (%s) round trip:\n want %s\n got  %s", i, rec.T, wj, gj)
		}
		binTotal += len(payload)
		jsonTotal += len(wj)
	}
	if binTotal*2 >= jsonTotal {
		t.Errorf("binary codec too fat: %d bytes vs %d JSON (want <50%%)", binTotal, jsonTotal)
	}
}

// TestCodecJSONBinaryReplayIdentical appends the same records through
// the JSON framing (hand-built, as a pre-upgrade server would have)
// and through Append's binary framing, then checks both logs replay to
// identical record lists.
func TestCodecJSONBinaryReplayIdentical(t *testing.T) {
	recs := codecVocabulary()

	jsonDir := t.TempDir()
	buf := bytes.NewBuffer(walHeaderV1(1))
	for _, rec := range recs {
		payload, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame(payload))
	}
	if err := os.WriteFile(filepath.Join(jsonDir, walName), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	binDir := t.TempDir()
	st, err := Open(binDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	load := func(dir string) []Record {
		st, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		_, got := st.Load()
		return got
	}
	fromJSON, fromBin := load(jsonDir), load(binDir)
	jj, _ := json.Marshal(fromJSON)
	bj, _ := json.Marshal(fromBin)
	if !bytes.Equal(jj, bj) {
		t.Fatalf("JSON and binary logs replay differently:\n json   %s\n binary %s", jj, bj)
	}
	if len(fromBin) != len(recs) {
		t.Fatalf("replayed %d records, appended %d", len(fromBin), len(recs))
	}
}

// TestCodecMixedLogReplays pins the upgrade case: a v1-header log of
// JSON frames that a post-upgrade server appends binary frames to
// must replay every record, in order, across the codec boundary.
func TestCodecMixedLogReplays(t *testing.T) {
	recs := codecVocabulary()
	half := len(recs) / 2

	dir := t.TempDir()
	buf := bytes.NewBuffer(walHeaderV1(1))
	for _, rec := range recs[:half] {
		payload, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame(payload))
	}
	if err := os.WriteFile(filepath.Join(dir, walName), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, got := st.Load(); len(got) != half {
		t.Fatalf("v1 log replayed %d records, want %d", len(got), half)
	}
	for _, rec := range recs[half:] {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	_, got := st2.Load()
	wj, _ := json.Marshal(recs)
	gj, _ := json.Marshal(got)
	if !bytes.Equal(wj, gj) {
		t.Fatalf("mixed log replay diverged:\n want %s\n got  %s", wj, gj)
	}
}

// TestGoldenV1WALReplay is the upgrade pin: testdata/v1wal holds a WAL
// written by the pre-binary-codec store (JSON frames, v1 header) along
// with the byte-exact JSON dump of the records it replayed to at the
// time. Today's store must reproduce that dump exactly — byte-identical
// replayed state across the codec change.
func TestGoldenV1WALReplay(t *testing.T) {
	src := filepath.Join("testdata", "v1wal")
	golden, err := os.ReadFile(filepath.Join(src, "records.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	wal, err := os.ReadFile(filepath.Join(src, walName))
	if err != nil {
		t.Fatal(err)
	}
	if wal[len(walMagic)] != 1 {
		t.Fatalf("fixture WAL header version = %d, fixture must stay pre-upgrade v1", wal[len(walMagic)])
	}

	// Open mutates the log (tail truncation), so replay from a copy.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walName), wal, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, recs := st.Load()

	got, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if !bytes.Equal(got, golden) {
		t.Fatalf("v1 WAL no longer replays to the golden state:\n--- want ---\n%s\n--- got ---\n%s", golden, got)
	}

	// The upgraded store must also be able to extend the old log and
	// replay the union: append one binary record, reopen, recount.
	if err := st.Append(Record{T: TBuildExpired, BuildID: 99}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	_, recs2 := st2.Load()
	if len(recs2) != len(recs)+1 {
		t.Fatalf("extended fixture replayed %d records, want %d", len(recs2), len(recs)+1)
	}
	if last := recs2[len(recs2)-1]; last.T != TBuildExpired || last.BuildID != 99 {
		t.Fatalf("extended fixture tail = %+v", last)
	}
}

// TestAppendBatch checks the group-commit path: a batch replays
// identically to sequential appends, updates the same counters, and a
// torn batch tail replays its valid prefix.
func TestAppendBatch(t *testing.T) {
	recs := codecVocabulary()

	seqDir, batchDir := t.TempDir(), t.TempDir()
	seq, err := Open(seqDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := seq.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := Open(batchDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := batch.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := batch.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	if batch.Appended() != seq.Appended() || batch.TotalAppends() != seq.TotalAppends() ||
		batch.TotalAppendBytes() != seq.TotalAppendBytes() || !batch.Dirty() {
		t.Fatalf("batch counters diverge: appended %d/%d total %d/%d bytes %d/%d dirty %v",
			batch.Appended(), seq.Appended(), batch.TotalAppends(), seq.TotalAppends(),
			batch.TotalAppendBytes(), seq.TotalAppendBytes(), batch.Dirty())
	}
	seq.Close()
	batch.Close()

	seqBytes, err := os.ReadFile(filepath.Join(seqDir, walName))
	if err != nil {
		t.Fatal(err)
	}
	batchBytes, err := os.ReadFile(filepath.Join(batchDir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqBytes, batchBytes) {
		t.Fatal("batch append wrote different bytes than sequential appends")
	}

	// Tear the batch mid-final-frame: replay keeps everything before it.
	torn := batchBytes[:len(batchBytes)-3]
	tornDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(tornDir, walName), torn, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(tornDir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, got := st.Load()
	if len(got) != len(recs)-1 {
		t.Fatalf("torn batch replayed %d records, want %d", len(got), len(recs)-1)
	}
}

// TestCodecCorruptBinaryFrames feeds systematically damaged binary
// payloads through decodeRecord: every one must error, never panic.
func TestCodecCorruptBinaryFrames(t *testing.T) {
	payload, ok, err := encodeRecord(codecVocabulary()[9]) // the fat TBuildQueued
	if !ok || err != nil {
		t.Fatal(ok, err)
	}
	if _, err := decodeRecord(payload); err != nil {
		t.Fatalf("pristine payload: %v", err)
	}
	// Truncations at every boundary.
	for n := 0; n < len(payload); n++ {
		decodeRecord(payload[:n]) // must not panic; error or partial both fine
	}
	// Single-byte corruptions.
	for i := range payload {
		mut := append([]byte(nil), payload...)
		mut[i] ^= 0xFF
		decodeRecord(mut)
	}
	// Empty and marker-only.
	if _, err := decodeRecord(nil); err == nil {
		t.Fatal("empty payload decoded")
	}
	if _, err := decodeRecord([]byte{recBinaryMarker}); err == nil {
		t.Fatal("marker-only payload decoded (no type field)")
	}
}

// TestCodecUnknownFieldsSkipped pins additive evolution: a payload
// carrying field numbers today's decoder does not know must decode the
// fields it does know and ignore the rest.
func TestCodecUnknownFieldsSkipped(t *testing.T) {
	e := &enc{b: []byte{recBinaryMarker}}
	e.uvarint(rfType, indexByType[TBuildExpired])
	e.svarint(rfBuildID, 42)
	e.str(60, "future string") // unknown bytes field
	e.svarint(61, 12345)       // unknown varint field
	e.float(62, 2.75)          // unknown fixed64 field
	rec, err := decodeRecord(e.b)
	if err != nil {
		t.Fatal(err)
	}
	if rec.T != TBuildExpired || rec.BuildID != 42 {
		t.Fatalf("decoded %+v", rec)
	}
}

// TestCodecParamsDeterministic pins that equal params maps encode to
// equal bytes regardless of insertion order — the bench drift gate
// (wal_bytes) depends on it.
func TestCodecParamsDeterministic(t *testing.T) {
	a := api.Params{"z": "last", "a": float64(1), "m": true}
	b := api.Params{"m": true, "a": float64(1), "z": "last"}
	ab, err := encodeParams(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := encodeParams(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatal("param encoding depends on map order")
	}
	got, err := decodeParams(ab)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(map[string]any(got), map[string]any(a)) {
		t.Fatalf("params round trip: %v != %v", got, a)
	}
}
