package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedRecords is a representative slice of the WAL vocabulary, so
// mutations start from well-formed frames of real record shapes rather
// than random bytes.
func fuzzSeedRecords() []Record {
	return []Record{
		{T: TBuildQueued, Build: &BuildRec{ID: 1, Job: "exp", Owner: "ana", State: "queued"}},
		{T: TBuildStarted, BuildID: 1, NodeName: "pixel-1", Attempt: 1, AtNS: 42},
		{T: TBuildFailover, BuildID: 1, Retries: 1, Reason: "node lost", AtNS: 99},
		{T: TBuildFinished, BuildID: 1, State: "success", AtNS: 1234},
		{T: TNodeOwner, Name: "pixel-1", Owner: "ana"},
		{T: TBuildExpired, BuildID: 1},
		{T: TPeerJoined, Peer: &PeerRec{Name: "eu-west", URL: "http://eu-west:9090"}},
		{T: TPeerLeft, Name: "eu-west"},
	}
}

// walBytes assembles a complete WAL image of JSON frames: a v1 header
// plus one frame per record — the pre-upgrade fixture the fuzzer
// mutates.
func walBytes(t testing.TB, recs []Record) []byte {
	t.Helper()
	buf := bytes.NewBuffer(walHeaderV1(1))
	for _, rec := range recs {
		payload, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame(payload))
	}
	return buf.Bytes()
}

// walBytesBinary assembles a WAL image of binary frames — what Append
// writes today.
func walBytesBinary(t testing.TB, recs []Record) []byte {
	t.Helper()
	buf := bytes.NewBuffer(walHeader(1))
	for _, rec := range recs {
		payload, ok, err := encodeRecord(rec)
		if err != nil || !ok {
			t.Fatalf("encoding %s: ok=%v err=%v", rec.T, ok, err)
		}
		buf.Write(frame(payload))
	}
	return buf.Bytes()
}

// walBytesMixed interleaves JSON and binary frames under a v2 header —
// the log shape a server upgraded mid-history leaves behind.
func walBytesMixed(t testing.TB, recs []Record) []byte {
	t.Helper()
	buf := bytes.NewBuffer(walHeader(1))
	for i, rec := range recs {
		var payload []byte
		if i%2 == 0 {
			var err error
			payload, err = json.Marshal(rec)
			if err != nil {
				t.Fatal(err)
			}
		} else {
			var ok bool
			var err error
			payload, ok, err = encodeRecord(rec)
			if err != nil || !ok {
				t.Fatalf("encoding %s: ok=%v err=%v", rec.T, ok, err)
			}
		}
		buf.Write(frame(payload))
	}
	return buf.Bytes()
}

// FuzzScanRecords hammers the frame decoder directly: whatever bytes
// land in a WAL body, scanRecords must return without panicking, report
// a valid offset within bounds, and stop at the first corrupt frame —
// the exact behavior crash-recovery replay depends on.
func FuzzScanRecords(f *testing.F) {
	full := walBytes(f, fuzzSeedRecords())
	f.Add(full)
	// Torn tail: a frame cut mid-payload.
	f.Add(full[:len(full)-3])
	// Flipped payload byte: checksum mismatch mid-log.
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	// Header only, and raw garbage.
	f.Add(walHeader(1))
	f.Add([]byte("BLWAL\x01garbagegarbage"))
	// Binary frames: pristine, torn mid-frame, and with a corrupted
	// TLV body whose CRC was fixed up (the decoder, not the checksum,
	// must reject it).
	bin := walBytesBinary(f, fuzzSeedRecords())
	f.Add(bin)
	f.Add(bin[:len(bin)-4])
	binFlip := append([]byte(nil), bin...)
	binFlip[len(binFlip)-2] ^= 0x20
	f.Add(binFlip)
	// Mixed v1/v2 frames in one log — the mid-upgrade shape.
	f.Add(walBytesMixed(f, fuzzSeedRecords()))

	f.Fuzz(func(t *testing.T, data []byte) {
		if int64(len(data)) < walHeaderLen {
			return
		}
		recs, valid := scanRecords(data, walHeaderLen)
		if valid < walHeaderLen || valid > int64(len(data)) {
			t.Fatalf("valid offset %d out of bounds [%d, %d]", valid, walHeaderLen, len(data))
		}
		// Every returned record round-trips through the same scan of
		// just the valid prefix: the truncation point must be
		// self-consistent, or recovery-then-reopen would diverge.
		again, validAgain := scanRecords(data[:valid], walHeaderLen)
		if len(again) != len(recs) || validAgain != valid {
			t.Fatalf("rescan of valid prefix: %d records to offset %d, first scan found %d to %d",
				len(again), validAgain, len(recs), valid)
		}
	})
}

// FuzzOpenCorruptWAL goes one level up: a WAL file with arbitrary
// contents must never panic Open. Either the store opens (replaying the
// valid prefix and truncating the rest) or Open reports a typed error —
// both acceptable; a crash is not.
func FuzzOpenCorruptWAL(f *testing.F) {
	full := walBytes(f, fuzzSeedRecords())
	f.Add(full)
	f.Add(full[:len(full)-5])
	truncHdr := append([]byte(nil), full[:3]...)
	f.Add(truncHdr)
	f.Add([]byte{})
	zeroed := append([]byte(nil), full...)
	for i := int(walHeaderLen); i < len(zeroed); i += 7 {
		zeroed[i] = 0
	}
	f.Add(zeroed)
	// Binary and mixed logs, pristine and damaged the same ways.
	bin := walBytesBinary(f, fuzzSeedRecords())
	f.Add(bin)
	f.Add(bin[:len(bin)-5])
	binZero := append([]byte(nil), bin...)
	for i := int(walHeaderLen); i < len(binZero); i += 5 {
		binZero[i] = 0
	}
	f.Add(binZero)
	f.Add(walBytesMixed(f, fuzzSeedRecords()))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir)
		if err != nil {
			return // typed rejection is fine; only a panic is a bug
		}
		// The surviving store must be appendable and reopenable: the
		// torn tail was truncated, so a fresh record lands on a clean
		// boundary. (No fsync — durability is not what this fuzzer
		// checks, and it would dominate the exec budget.)
		st.Append(Record{T: TBuildExpired, BuildID: 7})
		st.Close()
		if st2, err := Open(dir); err == nil {
			st2.Close()
		}
	})
}
