// Package store is the access server's durability layer: an append-only
// write-ahead log of state mutations plus periodic snapshots with log
// compaction. The server stays a pure in-memory scheduler; this package
// only knows how to frame records durably and read them back, and the
// replay logic that turns records back into server state lives with the
// state (accessserver's AttachStore).
//
// # On-disk layout
//
// A store directory holds two files:
//
//	wal.log       the write-ahead log
//	snapshot.bin  the latest compacted snapshot (absent until the
//	              first compaction)
//
// Both use the same framing discipline as the internal/trace binary
// codec: a magic string, a format version byte, then length-prefixed
// payloads — except that every payload here also carries a CRC32, since
// a WAL's defining job is surviving a crash mid-write.
//
//	wal.log:      "BLWAL" ver | uint64 LE generation | records…
//	record:       uvarint payload length | uint32 LE CRC32(payload) | payload
//	snapshot.bin: "BLSNP" ver | one record frame holding the Snapshot
//
// Record payloads are self-describing by their first byte: '{' opens a
// v1 JSON object, recBinaryMarker (0x02) opens the v2 compact TLV
// encoding (see codec.go). Appends write binary; replay dispatches per
// frame, so logs written before the codec change — and mixed logs from
// a restart mid-history — keep replaying without conversion. The WAL
// file header says v2 on fresh logs and compactions, and Open accepts
// both header versions. Snapshots remain JSON (they are rewritten
// whole at every compaction, so there is no old-snapshot legacy to
// carry, and compaction cost is dominated by the fsync, not encoding).
// Loading tolerates a torn tail — a record whose length, CRC or
// payload does not check out ends the replay and is truncated away,
// exactly the half-written-final-record crash case a WAL must absorb.
//
// # Compaction crash-atomicity
//
// A snapshot records the WAL generation and byte offset it covers
// (WALGen/WALCut), and every compaction replaces the log via an
// atomic temp-file rename that bumps the generation. Load therefore
// always reads a consistent pair: if the snapshot's generation matches
// the log's, the log still holds pre-snapshot records (a crash landed
// between the snapshot rename and the log swap) and replay starts at
// the recorded cut; if it does not match, the log was swapped and
// every record in it postdates the snapshot. Records are never
// replayed twice (ledger deltas are not idempotent) and an
// acknowledged append can only be lost with the files it lived in.
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"batterylab/internal/api"
)

// Version is the on-disk format version of the snapshot file (and of
// WAL files written before the binary record codec).
const Version = 1

// walVersion is the current WAL header version. v2 logs may hold both
// JSON and binary record frames; v1 logs hold JSON frames only, and
// remain readable.
const walVersion = 2

const (
	walName  = "wal.log"
	snapName = "snapshot.bin"
)

var (
	walMagic  = []byte("BLWAL")
	snapMagic = []byte("BLSNP")
)

// maxRecordBytes bounds one record's payload; anything larger is
// treated as corruption (a campaign submit record tops out well under a
// megabyte of spec JSON).
const maxRecordBytes = 64 << 20

// Type discriminates WAL records.
type Type string

// Record types, one per logged state mutation.
const (
	TUserAdded     Type = "user_added"
	TUserRemoved   Type = "user_removed"
	TJobPut        Type = "job_put" // create, edit and approve all upsert
	TJobDeleted    Type = "job_deleted"
	TNodeMonitored Type = "node_monitored"
	TNodeOwner     Type = "node_owner"
	TNodeDrain     Type = "node_drain"
	TNodeRemoved   Type = "node_removed"
	// TNodeHostingFlush atomically zeroes a node's accrued hosting time
	// AND credits it to the owner (AtNS carries the duration): one
	// record, so a crash cannot replay the credit while restoring the
	// accrual (double-pay) or vice versa.
	TNodeHostingFlush Type = "node_hosting_flush"
	TBuildQueued      Type = "build_queued"
	TBuildStarted     Type = "build_started"
	TBuildCancelWant  Type = "build_cancel_requested" // abort of a running build
	TBuildFailover    Type = "build_failover"         // reclaimed and requeued
	TBuildFinished    Type = "build_finished"
	TBuildExpired     Type = "build_expired" // retention tombstone
	TCampaign         Type = "campaign"
	TCampaignExpired  Type = "campaign_expired"
	TLedger           Type = "ledger"
	// TPeerJoined upserts a federated peer's membership (name + URL);
	// TPeerLeft tombstones it. Heartbeat state and the advertised node
	// census are ephemeral and re-learned from live announces after a
	// restart — only membership persists.
	TPeerJoined Type = "peer_joined"
	TPeerLeft   Type = "peer_left"
)

// UserRec is one platform member with their access token.
type UserRec struct {
	Name  string `json:"name"`
	Role  int    `json:"role"`
	Token string `json:"token"`
}

// JobRec is a stored pipeline's metadata. The pipeline body is a Go
// closure and cannot be serialized: a job recovered from a JobRec keeps
// its name, constraints, approval and revision but needs EditJob to
// reinstall the body before it can run again.
type JobRec struct {
	Name          string `json:"name"`
	Owner         string `json:"owner"`
	Node          string `json:"node"`
	Device        string `json:"device,omitempty"`
	RequireLowCPU bool   `json:"require_low_cpu,omitempty"`
	Fallback      bool   `json:"fallback,omitempty"`
	Approved      bool   `json:"approved,omitempty"`
	Revision      int    `json:"revision"`
}

// NodeRec is one vantage point's persisted lifecycle state. The live
// Node handle (an in-process controller or an sshx channel) cannot be
// reconstructed from disk — the hosting process re-registers it at
// startup — but drain flags, removal tombstones, the owner and the
// cached device list survive restarts through this record.
type NodeRec struct {
	Name      string   `json:"name"`
	Owner     string   `json:"owner,omitempty"`
	Monitored bool     `json:"monitored,omitempty"`
	Draining  bool     `json:"draining,omitempty"`
	Removed   bool     `json:"removed,omitempty"`
	Devices   []string `json:"devices,omitempty"`
	// OwedHostingNS is contribution time accrued but not yet flushed to
	// the ledger (below the coalescing threshold); persisting it keeps
	// restarts from shaving the owner's sub-lump remainder.
	OwedHostingNS int64 `json:"owed_hosting_ns,omitempty"`
}

// BuildRec is one build's persisted state. Spec carries the declarative
// wire spec for spec builds, so recovery can recompile the pipeline
// through the installed SpecBackend; job builds resolve their pipeline
// from the job store as always.
type BuildRec struct {
	ID       int                 `json:"id"`
	Job      string              `json:"job"`
	Owner    string              `json:"owner,omitempty"`
	Campaign int                 `json:"campaign,omitempty"`
	Spec     *api.ExperimentSpec `json:"spec,omitempty"`

	State    string `json:"state"`
	Err      string `json:"err,omitempty"`
	Canceled bool   `json:"canceled,omitempty"`
	NodeLost bool   `json:"node_lost,omitempty"`
	Node     string `json:"node,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Retries  int    `json:"retries,omitempty"`

	QueuedAtNS   int64 `json:"queued_at_ns,omitempty"`
	StartedAtNS  int64 `json:"started_at_ns,omitempty"`
	FinishedAtNS int64 `json:"finished_at_ns,omitempty"`

	Summary *api.RunSummary `json:"summary,omitempty"`

	// FeedEpoch counts how many times the build's feed started over
	// (once per recovery). Streaming clients use it to know their
	// resume cursors no longer apply.
	FeedEpoch int `json:"feed_epoch,omitempty"`
}

// CampaignRec is one campaign's membership and concurrency cap.
type CampaignRec struct {
	ID            int   `json:"id"`
	MaxConcurrent int   `json:"max_concurrent,omitempty"`
	Builds        []int `json:"builds"`
}

// PeerRec is one federated peer's persisted membership. Heartbeat
// liveness and the node census are runtime state (re-announced within
// one heartbeat period), so the record carries only what a restarted
// server needs to resume heartbeating: the peer's name and URL.
type PeerRec struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// LedgerRec is one credit movement.
type LedgerRec struct {
	User   string  `json:"user"`
	Delta  float64 `json:"delta"`
	Reason string  `json:"reason"`
}

// Record is one WAL entry: the type tag plus the fields that type
// uses. A flat union keeps the codec one JSON round trip; unused
// fields stay omitted on disk.
type Record struct {
	T Type `json:"t"`

	// TUserAdded.
	User *UserRec `json:"user,omitempty"`
	// TUserRemoved, TJobDeleted, TNodeDrain/TNodeOwner/TNodeRemoved.
	Name string `json:"name,omitempty"`

	// TJobPut.
	Job *JobRec `json:"job,omitempty"`

	// TNodeMonitored (full lifecycle state), TNodeOwner (Owner),
	// TNodeDrain (Draining).
	Node     *NodeRec `json:"node,omitempty"`
	Owner    string   `json:"owner,omitempty"`
	Draining bool     `json:"draining,omitempty"`

	// TBuildQueued carries the full record; the lifecycle records
	// below patch it by BuildID.
	Build   *BuildRec `json:"build,omitempty"`
	BuildID int       `json:"build_id,omitempty"`
	// TBuildStarted.
	NodeName string `json:"node_name,omitempty"`
	Attempt  int    `json:"attempt,omitempty"`
	// TBuildFailover.
	Retries int    `json:"retries,omitempty"`
	Reason  string `json:"reason,omitempty"`
	// TBuildFinished.
	State    string          `json:"state,omitempty"`
	Err      string          `json:"err,omitempty"`
	Canceled bool            `json:"canceled,omitempty"`
	NodeLost bool            `json:"node_lost,omitempty"`
	Summary  *api.RunSummary `json:"summary,omitempty"`
	AtNS     int64           `json:"at_ns,omitempty"`

	// TCampaign; TCampaignExpired uses CampaignID.
	Campaign   *CampaignRec `json:"campaign,omitempty"`
	CampaignID int          `json:"campaign_id,omitempty"`

	// TLedger.
	Entry *LedgerRec `json:"entry,omitempty"`

	// TPeerJoined carries the full record; TPeerLeft tombstones by Name.
	Peer *PeerRec `json:"peer,omitempty"`
}

// Snapshot is the full compacted state at one instant: replaying it
// plus every WAL record appended after it reconstructs the server.
// Ledger holds each member's recent entry history (bounded — see the
// accessserver ledger cap); Balances holds the authoritative balance,
// which may reflect entries the bounded history no longer carries.
type Snapshot struct {
	V            int                    `json:"v"`
	NextBuild    int                    `json:"next_build"`
	NextCampaign int                    `json:"next_campaign"`
	Users        []UserRec              `json:"users,omitempty"`
	Jobs         []JobRec               `json:"jobs,omitempty"`
	Nodes        []NodeRec              `json:"nodes,omitempty"`
	Builds       []BuildRec             `json:"builds,omitempty"`
	Campaigns    []CampaignRec          `json:"campaigns,omitempty"`
	Ledger       map[string][]LedgerRec `json:"ledger,omitempty"`
	Balances     map[string]float64     `json:"balances,omitempty"`
	Peers        []PeerRec              `json:"peers,omitempty"`

	// WALGen and WALCut tie the snapshot to the log position it covers
	// (see "Compaction crash-atomicity" in the package comment). Set by
	// BeginCompact.
	WALGen uint64 `json:"wal_gen,omitempty"`
	WALCut int64  `json:"wal_cut,omitempty"`
}

// Store is an open store directory: the WAL file handle positioned at
// the end of the last valid record, plus the loaded snapshot and
// records for recovery. Append is not safe for concurrent use; the
// server serializes appends behind its own store mutex.
type Store struct {
	dir  string
	wal  *os.File
	snap *Snapshot
	recs []Record
	// appended counts records written since open or the last Compact —
	// the compaction trigger reads it to skip empty cycles. dirty
	// tracks records written since the last Sync, so the group-commit
	// ticker skips fsyncs of an unchanged file. gen is the log's
	// generation, bumped by every compaction's log swap.
	appended int
	dirty    bool
	gen      uint64
	// Lifetime counters for the metrics collector: totalAppends and
	// totalBytes survive compactions (unlike appended, which resets);
	// lastSnapBytes is the size of the most recent snapshot write.
	totalAppends  int64
	totalBytes    int64
	lastSnapBytes int64
}

// Open creates (or opens) a store directory, validates both files and
// truncates any torn WAL tail so the next Append lands on a clean
// boundary. The snapshot and surviving records are held for Load.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	st := &Store{dir: dir}
	if err := st.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := st.openWAL(); err != nil {
		return nil, err
	}
	return st, nil
}

// Dir reports the store directory.
func (s *Store) Dir() string { return s.dir }

// Load returns the snapshot (nil before the first compaction) and the
// WAL records appended after it, in append order.
func (s *Store) Load() (*Snapshot, []Record) { return s.snap, s.recs }

// Appended reports records written since open or the last compaction.
func (s *Store) Appended() int { return s.appended }

// encodePayload renders one record as a frame payload: compact binary
// when the record's type is in the enum table, JSON otherwise (both
// replay identically — frames are self-describing).
func encodePayload(rec Record) ([]byte, error) {
	payload, ok, err := encodeRecord(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encoding %s record: %w", rec.T, err)
	}
	if ok {
		return payload, nil
	}
	payload, err = json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encoding %s record: %w", rec.T, err)
	}
	return payload, nil
}

// Append frames one record onto the WAL.
func (s *Store) Append(rec Record) error {
	payload, err := encodePayload(rec)
	if err != nil {
		return err
	}
	if _, err := s.wal.Write(frame(payload)); err != nil {
		return fmt.Errorf("store: appending %s record: %w", rec.T, err)
	}
	s.appended++
	s.totalAppends++
	s.totalBytes += int64(len(payload))
	s.dirty = true
	return nil
}

// AppendBatch frames a group of records onto the WAL in one write —
// the group-commit fast path for multi-record mutations (a campaign
// submit, a recovery flush). The batch reaches the kernel in a single
// syscall but carries the same durability as sequential Appends: each
// record is its own CRC frame, so a torn batch replays its valid
// prefix. An empty batch is a no-op.
func (s *Store) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	var buf []byte
	var payloadBytes int64
	for _, rec := range recs {
		payload, err := encodePayload(rec)
		if err != nil {
			return err
		}
		buf = append(buf, frame(payload)...)
		payloadBytes += int64(len(payload))
	}
	if _, err := s.wal.Write(buf); err != nil {
		return fmt.Errorf("store: appending %d-record batch: %w", len(recs), err)
	}
	s.appended += len(recs)
	s.totalAppends += int64(len(recs))
	s.totalBytes += payloadBytes
	s.dirty = true
	return nil
}

// TotalAppends reports records appended over the store's lifetime
// (compactions do not reset it, unlike Appended).
func (s *Store) TotalAppends() int64 { return s.totalAppends }

// TotalAppendBytes reports the payload bytes appended over the store's
// lifetime.
func (s *Store) TotalAppendBytes() int64 { return s.totalBytes }

// LastSnapshotBytes reports the size of the most recent snapshot
// written through this handle (0 before the first compaction).
func (s *Store) LastSnapshotBytes() int64 { return s.lastSnapBytes }

// Generation reports the WAL's current generation (bumped by every
// compaction's log swap).
func (s *Store) Generation() uint64 { return s.gen }

// Dirty reports whether records were appended since the last Sync.
func (s *Store) Dirty() bool { return s.dirty }

// Sync flushes the WAL to stable storage.
func (s *Store) Sync() error {
	if err := s.wal.Sync(); err != nil {
		return err
	}
	s.dirty = false
	return nil
}

// Compaction is an in-flight snapshot+truncate cycle, split in three
// so the caller can keep its state locks out of the fsync path:
//
//	c := st.BeginCompact(snap)   // under the caller's append lock: cheap
//	c.WriteSnapshot()            // no locks: marshal, write, fsync, rename
//	st.FinishCompact(c)          // under the append lock again: splice the WAL
//
// BeginCompact records the WAL cut offset: every record before it is
// state the snapshot captures (the caller guarantees it built snap
// while excluding all writers), and every record appended after it —
// during the unlocked fsync — survives FinishCompact, which truncates
// the log to its header and re-appends that tail. Both sides of the
// cut replay correctly; nothing falls in between.
type Compaction struct {
	snap      *Snapshot
	cut       int64 // WAL offset at Begin; records past it are kept
	appended  int   // appended counter at Begin; subtracted at Finish
	snapBytes int64 // snapshot file size, set by WriteSnapshot
}

// BeginCompact opens a compaction cycle, stamping the snapshot with
// the log generation and cut offset it covers. Callers hold their
// append lock (the same one serializing Append).
func (s *Store) BeginCompact(snap *Snapshot) (*Compaction, error) {
	off, err := s.wal.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, err
	}
	snap.WALGen = s.gen
	snap.WALCut = off
	return &Compaction{snap: snap, cut: off, appended: s.appended}, nil
}

// WriteSnapshot persists the compaction's snapshot durably: temp file,
// fsync, rename over the old snapshot, directory fsync. Needs no store
// lock — it only touches the snapshot file, and until the rename's
// directory entry is durable a power loss finds the previous
// snapshot+WAL pair intact.
func (s *Store) WriteSnapshot(c *Compaction) error {
	c.snap.V = Version
	payload, err := json.Marshal(c.snap)
	if err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	tmp := filepath.Join(s.dir, snapName+".tmp")
	buf := append(append([]byte{}, snapMagic...), byte(Version))
	buf = append(buf, frame(payload)...)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName)); err != nil {
		return err
	}
	c.snapBytes = int64(len(buf))
	return syncDir(s.dir)
}

// FinishCompact swaps in a fresh log: a next-generation header plus
// the records appended after the cut (while the snapshot was being
// written), assembled in a temp file and renamed over the old log —
// an atomic swap, so a crash at any instant leaves either the old log
// (whose snapshot-covered prefix the generation check skips on Open)
// or the complete new one; acknowledged records are never stranded
// half-truncated. Callers hold their append lock. The tail is
// typically a handful of records, so the copy is cheap.
func (s *Store) FinishCompact(c *Compaction) error {
	end, err := s.wal.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}
	buf := walHeader(s.gen + 1)
	if end > c.cut {
		tail := make([]byte, end-c.cut)
		if _, err := s.wal.ReadAt(tail, c.cut); err != nil {
			return err
		}
		buf = append(buf, tail...)
	}
	path := filepath.Join(s.dir, walName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		f.Close()
		return err
	}
	// Past the rename there is no going back: the renamed file IS the
	// log, so the fd swap and bookkeeping commit unconditionally —
	// leaving s.wal on the now-unlinked old inode would silently strand
	// every future append. A directory-fsync failure below is reported
	// (the rename may not be durable yet; the caller latches until a
	// compaction fully succeeds) but does not unwind the swap.
	s.wal.Close()
	s.wal = f
	s.gen++
	s.dirty = false
	s.snap = c.snap
	s.lastSnapBytes = c.snapBytes
	s.recs = nil
	s.appended -= c.appended
	if s.appended < 0 {
		s.appended = 0
	}
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("store: publishing compacted log: %w", err)
	}
	return nil
}

// Rollback abandons a compaction whose snapshot never became durable,
// discarding the records appended after its cut. The caller uses it
// when those records were only accepted on the strength of the
// snapshot healing an earlier WAL gap: without the snapshot, keeping
// them would leave records after a hole, which replays later state
// onto earlier state. Callers hold their append lock.
func (s *Store) Rollback(c *Compaction) error {
	if err := s.wal.Truncate(c.cut); err != nil {
		return err
	}
	if _, err := s.wal.Seek(0, io.SeekEnd); err != nil {
		return err
	}
	s.appended = c.appended
	return nil
}

// Compact is the single-call form — snapshot and truncate in one
// breath, for callers without lock-latency concerns (tests, tools).
func (s *Store) Compact(snap *Snapshot) error {
	c, err := s.BeginCompact(snap)
	if err != nil {
		return err
	}
	if err := s.WriteSnapshot(c); err != nil {
		return err
	}
	return s.FinishCompact(c)
}

// syncDir fsyncs a directory so a just-renamed entry survives power
// loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Close closes the WAL handle.
func (s *Store) Close() error { return s.wal.Close() }

// frame wraps a payload as uvarint length | CRC32 | payload.
func frame(payload []byte) []byte {
	var hdr [binary.MaxVarintLen64 + 4]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[n:], crc32.ChecksumIEEE(payload))
	return append(append([]byte{}, hdr[:n+4]...), payload...)
}

// readFrame reads one framed payload, reporting io.EOF at a clean
// boundary and a descriptive error for anything torn or corrupt.
func readFrame(r io.Reader) ([]byte, error) {
	br, ok := r.(io.ByteReader)
	if !ok {
		return nil, fmt.Errorf("store: reader cannot read bytes")
	}
	size, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("store: reading record length: %w", err)
	}
	if size > maxRecordBytes {
		return nil, fmt.Errorf("store: record length %d exceeds the %d cap", size, maxRecordBytes)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("store: reading record checksum: %w", err)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("store: reading record payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcBuf[:]) {
		return nil, fmt.Errorf("store: record checksum mismatch")
	}
	return payload, nil
}

// loadSnapshot reads snapshot.bin if present.
func (s *Store) loadSnapshot() error {
	data, err := os.ReadFile(filepath.Join(s.dir, snapName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(data) < len(snapMagic)+1 || string(data[:len(snapMagic)]) != string(snapMagic) {
		return fmt.Errorf("store: %s is not a snapshot file", snapName)
	}
	if ver := data[len(snapMagic)]; ver != Version {
		return fmt.Errorf("store: snapshot format v%d unsupported (want v%d)", ver, Version)
	}
	payload, err := readFrame(bytes.NewReader(data[len(snapMagic)+1:]))
	if err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return fmt.Errorf("store: decoding snapshot: %w", err)
	}
	s.snap = &snap
	return nil
}

// walHeaderLen is magic + version byte + 8-byte generation.
var walHeaderLen = int64(len(walMagic) + 1 + 8)

// walHeader frames a WAL file prefix for the given generation.
func walHeader(gen uint64) []byte {
	hdr := append(append([]byte{}, walMagic...), byte(walVersion))
	var g [8]byte
	binary.LittleEndian.PutUint64(g[:], gen)
	return append(hdr, g[:]...)
}

// walHeaderV1 frames a pre-binary-codec WAL prefix. Kept for tests
// that pin the upgrade path (fixtures, fuzz seeds).
func walHeaderV1(gen uint64) []byte {
	hdr := append(append([]byte{}, walMagic...), byte(Version))
	var g [8]byte
	binary.LittleEndian.PutUint64(g[:], gen)
	return append(hdr, g[:]...)
}

// openWAL opens (or creates) the WAL, replays its valid suffix and
// truncates any torn tail. Replay starts at the snapshot's recorded
// cut when the snapshot covers this log generation (see the package
// comment), at the header otherwise. The log is read into memory in
// one gulp — compaction bounds its size — so the scan runs at memory
// speed and the truncation offset is exact. loadSnapshot must run
// first.
func (s *Store) openWAL() error {
	path := filepath.Join(s.dir, walName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	s.wal = f
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return err
	}
	if int64(len(data)) < walHeaderLen {
		// Empty, or a header torn by a crash during the initial
		// creation (the only unsynced header write — compaction swaps
		// in complete files atomically). A prefix of the magic means
		// torn-at-birth, not some foreign file: start fresh. Anything
		// else is not ours to overwrite.
		n := len(data)
		if n > len(walMagic) {
			n = len(walMagic)
		}
		if n > 0 && string(data[:n]) != string(walMagic[:n]) {
			f.Close()
			return fmt.Errorf("store: %s is not a WAL file", walName)
		}
		if err := f.Truncate(0); err != nil {
			f.Close()
			return err
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return err
		}
		s.gen = 1
		if _, err := f.Write(walHeader(s.gen)); err != nil {
			f.Close()
			return err
		}
		return nil
	}
	if string(data[:len(walMagic)]) != string(walMagic) {
		f.Close()
		return fmt.Errorf("store: %s is not a WAL file", walName)
	}
	if ver := data[len(walMagic)]; ver != Version && ver != walVersion {
		f.Close()
		return fmt.Errorf("store: WAL format v%d unsupported (want v%d or v%d)", ver, Version, walVersion)
	}
	s.gen = binary.LittleEndian.Uint64(data[len(walMagic)+1:])
	start := walHeaderLen
	if s.snap != nil && s.snap.WALGen == s.gen {
		// The snapshot covers a prefix of this very log (a crash landed
		// between the snapshot rename and the log swap): skip it, or
		// every covered record — ledger deltas included — would apply
		// twice.
		if cut := s.snap.WALCut; cut >= walHeaderLen && cut <= int64(len(data)) {
			start = cut
		}
	}
	recs, valid := scanRecords(data, start)
	s.recs = recs
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return err
	}
	return nil
}

// scanRecords parses frames from data starting at off, returning the
// decoded records and the offset just past the last valid one. A frame
// whose length, checksum or payload fails to check out ends the scan —
// the torn tail a crash mid-append leaves behind. Each frame's payload
// picks its own codec by first byte: recBinaryMarker opens the binary
// TLV encoding, anything else is JSON — so logs mixing pre- and
// post-upgrade records replay in one pass.
func scanRecords(data []byte, off int64) ([]Record, int64) {
	var recs []Record
	r := bytes.NewReader(data[off:])
	valid := off
	for {
		payload, err := readFrame(r)
		if err != nil {
			return recs, valid
		}
		var rec Record
		if len(payload) > 0 && payload[0] == recBinaryMarker {
			if rec, err = decodeRecord(payload); err != nil {
				return recs, valid
			}
		} else if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, valid
		}
		recs = append(recs, rec)
		valid = off + int64(len(data[off:])-r.Len())
	}
}
