package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"batterylab/internal/api"
)

// Binary record frames. The WAL's uvarint|CRC32|payload framing is
// unchanged; what moved is the payload itself. A v1 payload is a JSON
// object and therefore starts with '{'; a v2 payload starts with the
// recBinaryMarker byte and holds a protobuf-style TLV body: each field
// is keyed by uvarint(fieldNum<<3 | wireType) with wire types
//
//	0  varint  (zigzag-encoded signed ints; bools and enums as-is)
//	1  fixed64 (float64 bits, little-endian)
//	2  bytes   (strings, nested messages, repeated scalars)
//
// Zero-valued fields are omitted, unknown fields are skipped on decode
// (the additive-evolution property the JSON codec had), and every
// decoder is bounds-checked so corrupt payloads fail the scan instead
// of panicking replay. The marker byte makes each frame self-describing:
// mixed v1/v2 logs — the upgrade case — replay with per-frame dispatch,
// no file-level flag day.
//
// Enum-coded strings (the record type and build states) carry a raw
// string fallback field for values outside the table, so the binary
// codec never silently narrows what the JSON codec could store.

// recBinaryMarker is the first payload byte of a binary record frame.
// JSON payloads always start with '{' (0x7B); 0x02 can never begin a
// JSON document, so one byte discriminates the codecs.
const recBinaryMarker = 0x02

// Wire types.
const (
	wVarint  = 0
	wFixed64 = 1
	wBytes   = 2
)

// typeByIndex gives every record type a stable 1-based enum value.
// APPEND ONLY — reordering would re-type every record already on disk.
var typeByIndex = []Type{
	TUserAdded, TUserRemoved, TJobPut, TJobDeleted,
	TNodeMonitored, TNodeOwner, TNodeDrain, TNodeRemoved, TNodeHostingFlush,
	TBuildQueued, TBuildStarted, TBuildCancelWant, TBuildFailover,
	TBuildFinished, TBuildExpired, TCampaign, TCampaignExpired, TLedger,
	TPeerJoined, TPeerLeft,
}

var indexByType = func() map[Type]uint64 {
	m := make(map[Type]uint64, len(typeByIndex))
	for i, t := range typeByIndex {
		m[t] = uint64(i + 1)
	}
	return m
}()

// stateByIndex maps build-state strings to a 1-based enum. APPEND ONLY.
var stateByIndex = []string{
	"queued", "running", "success", "failure", "aborted", "expired",
}

var indexByState = func() map[string]uint64 {
	m := make(map[string]uint64, len(stateByIndex))
	for i, s := range stateByIndex {
		m[s] = uint64(i + 1)
	}
	return m
}()

// enc builds a TLV message. The zero value is ready to use.
type enc struct {
	b []byte
}

func (e *enc) key(field, wire int) {
	e.b = binary.AppendUvarint(e.b, uint64(field)<<3|uint64(wire))
}

// uvarint emits a non-negative varint field, omitting zero.
func (e *enc) uvarint(field int, v uint64) {
	if v == 0 {
		return
	}
	e.key(field, wVarint)
	e.b = binary.AppendUvarint(e.b, v)
}

// svarint emits a zigzag-encoded signed field, omitting zero.
func (e *enc) svarint(field int, v int64) {
	if v == 0 {
		return
	}
	e.key(field, wVarint)
	e.b = binary.AppendUvarint(e.b, uint64(v<<1)^uint64(v>>63))
}

// boolean emits a true flag, omitting false.
func (e *enc) boolean(field int, v bool) {
	if !v {
		return
	}
	e.key(field, wVarint)
	e.b = append(e.b, 1)
}

// float emits a fixed64 float field, omitting zero.
func (e *enc) float(field int, v float64) {
	if v == 0 {
		return
	}
	e.key(field, wFixed64)
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v))
}

// str emits a string field, omitting empty.
func (e *enc) str(field int, s string) {
	if s == "" {
		return
	}
	e.key(field, wBytes)
	e.b = binary.AppendUvarint(e.b, uint64(len(s)))
	e.b = append(e.b, s...)
}

// bytes emits a length-delimited field even when empty (presence of a
// nested message is meaningful: a nil pointer has no field at all).
func (e *enc) bytes(field int, p []byte) {
	e.key(field, wBytes)
	e.b = binary.AppendUvarint(e.b, uint64(len(p)))
	e.b = append(e.b, p...)
}

// state emits a build state as its enum when tabled, as a raw string in
// fallbackField otherwise.
func (e *enc) state(enumField, fallbackField int, s string) {
	if s == "" {
		return
	}
	if idx, ok := indexByState[s]; ok {
		e.uvarint(enumField, idx)
		return
	}
	e.str(fallbackField, s)
}

// dec walks a TLV message. Malformed input sets err and stops the walk;
// every read is bounds-checked.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// next reads the next field key. ok is false at a clean end or on error.
func (d *dec) next() (field int, wire int, ok bool) {
	if d.err != nil || d.off >= len(d.b) {
		return 0, 0, false
	}
	k := d.uvarint()
	if d.err != nil {
		return 0, 0, false
	}
	return int(k >> 3), int(k & 7), true
}

func (d *dec) uvarint() uint64 {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("store: truncated varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) svarint() int64 {
	u := d.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

func (d *dec) fixed64() float64 {
	if d.off+8 > len(d.b) {
		d.fail("store: truncated fixed64 at offset %d", d.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

func (d *dec) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("store: bytes field length %d overruns payload", n)
		return nil
	}
	p := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return p
}

func (d *dec) str() string { return string(d.bytes()) }

// skip consumes an unknown field's value.
func (d *dec) skip(wire int) {
	switch wire {
	case wVarint:
		d.uvarint()
	case wFixed64:
		if d.off+8 > len(d.b) {
			d.fail("store: truncated fixed64 at offset %d", d.off)
			return
		}
		d.off += 8
	case wBytes:
		d.bytes()
	default:
		d.fail("store: unknown wire type %d", wire)
	}
}

// --- Record ---------------------------------------------------------

// Record field numbers (APPEND ONLY).
const (
	rfType       = 1
	rfUser       = 2
	rfName       = 3
	rfJob        = 4
	rfNode       = 5
	rfOwner      = 6
	rfDraining   = 7
	rfBuild      = 8
	rfBuildID    = 9
	rfNodeName   = 10
	rfAttempt    = 11
	rfRetries    = 12
	rfReason     = 13
	rfStateStr   = 14
	rfErr        = 15
	rfCanceled   = 16
	rfNodeLost   = 17
	rfSummary    = 18
	rfAtNS       = 19
	rfCampaign   = 20
	rfCampaignID = 21
	rfEntry      = 22
	rfStateEnum  = 23
	rfPeer       = 24
)

// encodeRecord renders rec as a binary frame payload (marker byte plus
// TLV body). ok is false when rec's type is outside the enum table —
// the caller falls back to the JSON codec, which any replayer accepts.
func encodeRecord(rec Record) (payload []byte, ok bool, err error) {
	typeIdx, tabled := indexByType[rec.T]
	if !tabled {
		return nil, false, nil
	}
	e := &enc{b: []byte{recBinaryMarker}}
	e.uvarint(rfType, typeIdx)
	if rec.User != nil {
		e.bytes(rfUser, encodeUser(rec.User))
	}
	e.str(rfName, rec.Name)
	if rec.Job != nil {
		e.bytes(rfJob, encodeJob(rec.Job))
	}
	if rec.Node != nil {
		e.bytes(rfNode, encodeNode(rec.Node))
	}
	e.str(rfOwner, rec.Owner)
	e.boolean(rfDraining, rec.Draining)
	if rec.Build != nil {
		b, err := encodeBuild(rec.Build)
		if err != nil {
			return nil, false, err
		}
		e.bytes(rfBuild, b)
	}
	e.svarint(rfBuildID, int64(rec.BuildID))
	e.str(rfNodeName, rec.NodeName)
	e.svarint(rfAttempt, int64(rec.Attempt))
	e.svarint(rfRetries, int64(rec.Retries))
	e.str(rfReason, rec.Reason)
	e.state(rfStateEnum, rfStateStr, rec.State)
	e.str(rfErr, rec.Err)
	e.boolean(rfCanceled, rec.Canceled)
	e.boolean(rfNodeLost, rec.NodeLost)
	if rec.Summary != nil {
		e.bytes(rfSummary, encodeSummary(rec.Summary))
	}
	e.svarint(rfAtNS, rec.AtNS)
	if rec.Campaign != nil {
		e.bytes(rfCampaign, encodeCampaign(rec.Campaign))
	}
	e.svarint(rfCampaignID, int64(rec.CampaignID))
	if rec.Entry != nil {
		e.bytes(rfEntry, encodeLedger(rec.Entry))
	}
	if rec.Peer != nil {
		e.bytes(rfPeer, encodePeer(rec.Peer))
	}
	return e.b, true, nil
}

// decodeRecord parses a binary frame payload (including the leading
// marker byte).
func decodeRecord(payload []byte) (Record, error) {
	var rec Record
	if len(payload) == 0 || payload[0] != recBinaryMarker {
		return rec, fmt.Errorf("store: not a binary record payload")
	}
	d := &dec{b: payload, off: 1}
	for {
		field, wire, ok := d.next()
		if !ok {
			break
		}
		switch field {
		case rfType:
			idx := d.uvarint()
			if idx == 0 || idx > uint64(len(typeByIndex)) {
				return rec, fmt.Errorf("store: unknown record type enum %d", idx)
			}
			rec.T = typeByIndex[idx-1]
		case rfUser:
			u, err := decodeUser(d.bytes())
			if err != nil {
				return rec, err
			}
			rec.User = u
		case rfName:
			rec.Name = d.str()
		case rfJob:
			j, err := decodeJob(d.bytes())
			if err != nil {
				return rec, err
			}
			rec.Job = j
		case rfNode:
			n, err := decodeNode(d.bytes())
			if err != nil {
				return rec, err
			}
			rec.Node = n
		case rfOwner:
			rec.Owner = d.str()
		case rfDraining:
			rec.Draining = d.uvarint() != 0
		case rfBuild:
			b, err := decodeBuild(d.bytes())
			if err != nil {
				return rec, err
			}
			rec.Build = b
		case rfBuildID:
			rec.BuildID = int(d.svarint())
		case rfNodeName:
			rec.NodeName = d.str()
		case rfAttempt:
			rec.Attempt = int(d.svarint())
		case rfRetries:
			rec.Retries = int(d.svarint())
		case rfReason:
			rec.Reason = d.str()
		case rfStateStr:
			rec.State = d.str()
		case rfStateEnum:
			idx := d.uvarint()
			if idx == 0 || idx > uint64(len(stateByIndex)) {
				return rec, fmt.Errorf("store: unknown state enum %d", idx)
			}
			rec.State = stateByIndex[idx-1]
		case rfErr:
			rec.Err = d.str()
		case rfCanceled:
			rec.Canceled = d.uvarint() != 0
		case rfNodeLost:
			rec.NodeLost = d.uvarint() != 0
		case rfSummary:
			s, err := decodeSummary(d.bytes())
			if err != nil {
				return rec, err
			}
			rec.Summary = s
		case rfAtNS:
			rec.AtNS = d.svarint()
		case rfCampaign:
			c, err := decodeCampaign(d.bytes())
			if err != nil {
				return rec, err
			}
			rec.Campaign = c
		case rfCampaignID:
			rec.CampaignID = int(d.svarint())
		case rfEntry:
			l, err := decodeLedger(d.bytes())
			if err != nil {
				return rec, err
			}
			rec.Entry = l
		case rfPeer:
			p, err := decodePeer(d.bytes())
			if err != nil {
				return rec, err
			}
			rec.Peer = p
		default:
			d.skip(wire)
		}
	}
	if d.err != nil {
		return rec, d.err
	}
	if rec.T == "" {
		return rec, fmt.Errorf("store: binary record missing type field")
	}
	return rec, nil
}

// --- UserRec --------------------------------------------------------

func encodeUser(u *UserRec) []byte {
	e := &enc{}
	e.str(1, u.Name)
	e.svarint(2, int64(u.Role))
	e.str(3, u.Token)
	return e.b
}

func decodeUser(b []byte) (*UserRec, error) {
	u := &UserRec{}
	d := &dec{b: b}
	for {
		field, wire, ok := d.next()
		if !ok {
			break
		}
		switch field {
		case 1:
			u.Name = d.str()
		case 2:
			u.Role = int(d.svarint())
		case 3:
			u.Token = d.str()
		default:
			d.skip(wire)
		}
	}
	return u, d.err
}

// --- JobRec ---------------------------------------------------------

func encodeJob(j *JobRec) []byte {
	e := &enc{}
	e.str(1, j.Name)
	e.str(2, j.Owner)
	e.str(3, j.Node)
	e.str(4, j.Device)
	e.boolean(5, j.RequireLowCPU)
	e.boolean(6, j.Fallback)
	e.boolean(7, j.Approved)
	e.svarint(8, int64(j.Revision))
	return e.b
}

func decodeJob(b []byte) (*JobRec, error) {
	j := &JobRec{}
	d := &dec{b: b}
	for {
		field, wire, ok := d.next()
		if !ok {
			break
		}
		switch field {
		case 1:
			j.Name = d.str()
		case 2:
			j.Owner = d.str()
		case 3:
			j.Node = d.str()
		case 4:
			j.Device = d.str()
		case 5:
			j.RequireLowCPU = d.uvarint() != 0
		case 6:
			j.Fallback = d.uvarint() != 0
		case 7:
			j.Approved = d.uvarint() != 0
		case 8:
			j.Revision = int(d.svarint())
		default:
			d.skip(wire)
		}
	}
	return j, d.err
}

// --- NodeRec --------------------------------------------------------

func encodeNode(n *NodeRec) []byte {
	e := &enc{}
	e.str(1, n.Name)
	e.str(2, n.Owner)
	e.boolean(3, n.Monitored)
	e.boolean(4, n.Draining)
	e.boolean(5, n.Removed)
	for _, dev := range n.Devices {
		e.bytes(6, []byte(dev)) // repeated: one field per device
	}
	e.svarint(7, n.OwedHostingNS)
	return e.b
}

func decodeNode(b []byte) (*NodeRec, error) {
	n := &NodeRec{}
	d := &dec{b: b}
	for {
		field, wire, ok := d.next()
		if !ok {
			break
		}
		switch field {
		case 1:
			n.Name = d.str()
		case 2:
			n.Owner = d.str()
		case 3:
			n.Monitored = d.uvarint() != 0
		case 4:
			n.Draining = d.uvarint() != 0
		case 5:
			n.Removed = d.uvarint() != 0
		case 6:
			n.Devices = append(n.Devices, d.str())
		case 7:
			n.OwedHostingNS = d.svarint()
		default:
			d.skip(wire)
		}
	}
	return n, d.err
}

// --- BuildRec -------------------------------------------------------

func encodeBuild(b *BuildRec) ([]byte, error) {
	e := &enc{}
	e.svarint(1, int64(b.ID))
	e.str(2, b.Job)
	e.str(3, b.Owner)
	e.svarint(4, int64(b.Campaign))
	if b.Spec != nil {
		sb, err := encodeSpec(b.Spec)
		if err != nil {
			return nil, err
		}
		e.bytes(5, sb)
	}
	e.state(6, 18, b.State)
	e.str(7, b.Err)
	e.boolean(8, b.Canceled)
	e.boolean(9, b.NodeLost)
	e.str(10, b.Node)
	e.svarint(11, int64(b.Attempts))
	e.svarint(12, int64(b.Retries))
	e.svarint(13, b.QueuedAtNS)
	e.svarint(14, b.StartedAtNS)
	e.svarint(15, b.FinishedAtNS)
	if b.Summary != nil {
		e.bytes(16, encodeSummary(b.Summary))
	}
	e.svarint(17, int64(b.FeedEpoch))
	return e.b, nil
}

func decodeBuild(data []byte) (*BuildRec, error) {
	b := &BuildRec{}
	d := &dec{b: data}
	for {
		field, wire, ok := d.next()
		if !ok {
			break
		}
		switch field {
		case 1:
			b.ID = int(d.svarint())
		case 2:
			b.Job = d.str()
		case 3:
			b.Owner = d.str()
		case 4:
			b.Campaign = int(d.svarint())
		case 5:
			s, err := decodeSpec(d.bytes())
			if err != nil {
				return nil, err
			}
			b.Spec = s
		case 6:
			idx := d.uvarint()
			if idx == 0 || idx > uint64(len(stateByIndex)) {
				return nil, fmt.Errorf("store: unknown state enum %d", idx)
			}
			b.State = stateByIndex[idx-1]
		case 7:
			b.Err = d.str()
		case 8:
			b.Canceled = d.uvarint() != 0
		case 9:
			b.NodeLost = d.uvarint() != 0
		case 10:
			b.Node = d.str()
		case 11:
			b.Attempts = int(d.svarint())
		case 12:
			b.Retries = int(d.svarint())
		case 13:
			b.QueuedAtNS = d.svarint()
		case 14:
			b.StartedAtNS = d.svarint()
		case 15:
			b.FinishedAtNS = d.svarint()
		case 16:
			s, err := decodeSummary(d.bytes())
			if err != nil {
				return nil, err
			}
			b.Summary = s
		case 17:
			b.FeedEpoch = int(d.svarint())
		case 18:
			b.State = d.str()
		default:
			d.skip(wire)
		}
	}
	return b, d.err
}

// --- CampaignRec ----------------------------------------------------

func encodeCampaign(c *CampaignRec) []byte {
	e := &enc{}
	e.svarint(1, int64(c.ID))
	e.svarint(2, int64(c.MaxConcurrent))
	// Builds packed into one bytes field: count, then delta-from-zero
	// zigzag varints. Present even when empty — CampaignRec.Builds
	// marshals as [] in JSON, never null.
	p := &enc{}
	p.b = binary.AppendUvarint(p.b, uint64(len(c.Builds)))
	for _, id := range c.Builds {
		p.b = binary.AppendUvarint(p.b, uint64(int64(id)<<1)^uint64(int64(id)>>63))
	}
	e.bytes(3, p.b)
	return e.b
}

func decodeCampaign(b []byte) (*CampaignRec, error) {
	c := &CampaignRec{}
	d := &dec{b: b}
	for {
		field, wire, ok := d.next()
		if !ok {
			break
		}
		switch field {
		case 1:
			c.ID = int(d.svarint())
		case 2:
			c.MaxConcurrent = int(d.svarint())
		case 3:
			p := &dec{b: d.bytes()}
			n := p.uvarint()
			if n > uint64(len(p.b)) { // each id is ≥1 byte
				d.fail("store: campaign build count %d overruns field", n)
				break
			}
			c.Builds = make([]int, 0, n)
			for i := uint64(0); i < n && p.err == nil; i++ {
				c.Builds = append(c.Builds, int(p.svarint()))
			}
			if p.err != nil {
				d.fail("%v", p.err)
			}
		default:
			d.skip(wire)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if c.Builds == nil {
		c.Builds = []int{}
	}
	return c, nil
}

// --- LedgerRec ------------------------------------------------------

func encodeLedger(l *LedgerRec) []byte {
	e := &enc{}
	e.str(1, l.User)
	e.float(2, l.Delta)
	e.str(3, l.Reason)
	return e.b
}

func decodeLedger(b []byte) (*LedgerRec, error) {
	l := &LedgerRec{}
	d := &dec{b: b}
	for {
		field, wire, ok := d.next()
		if !ok {
			break
		}
		switch field {
		case 1:
			l.User = d.str()
		case 2:
			l.Delta = d.fixed64()
		case 3:
			l.Reason = d.str()
		default:
			d.skip(wire)
		}
	}
	return l, d.err
}

// --- PeerRec --------------------------------------------------------

func encodePeer(p *PeerRec) []byte {
	e := &enc{}
	e.str(1, p.Name)
	e.str(2, p.URL)
	return e.b
}

func decodePeer(b []byte) (*PeerRec, error) {
	p := &PeerRec{}
	d := &dec{b: b}
	for {
		field, wire, ok := d.next()
		if !ok {
			break
		}
		switch field {
		case 1:
			p.Name = d.str()
		case 2:
			p.URL = d.str()
		default:
			d.skip(wire)
		}
	}
	return p, d.err
}

// --- api.ExperimentSpec / MonitorSpec / ConstraintsSpec -------------

func encodeSpec(s *api.ExperimentSpec) ([]byte, error) {
	e := &enc{}
	e.str(1, s.Node)
	e.str(2, s.Device)
	e.str(3, s.Workload.Name)
	if len(s.Workload.Params) > 0 {
		pb, err := encodeParams(s.Workload.Params)
		if err != nil {
			return nil, err
		}
		e.bytes(4, pb)
	}
	if s.Monitor != (api.MonitorSpec{}) {
		e.bytes(5, encodeMonitor(s.Monitor))
	}
	e.boolean(6, s.Mirroring)
	e.str(7, s.VPNLocation)
	e.str(8, s.Transport)
	e.boolean(9, s.Constraints.RequireLowCPU)
	e.boolean(10, s.Constraints.AllowFallback)
	e.str(11, s.HomeServer)
	return e.b, nil
}

func decodeSpec(b []byte) (*api.ExperimentSpec, error) {
	s := &api.ExperimentSpec{}
	d := &dec{b: b}
	for {
		field, wire, ok := d.next()
		if !ok {
			break
		}
		switch field {
		case 1:
			s.Node = d.str()
		case 2:
			s.Device = d.str()
		case 3:
			s.Workload.Name = d.str()
		case 4:
			p, err := decodeParams(d.bytes())
			if err != nil {
				return nil, err
			}
			s.Workload.Params = p
		case 5:
			m, err := decodeMonitor(d.bytes())
			if err != nil {
				return nil, err
			}
			s.Monitor = m
		case 6:
			s.Mirroring = d.uvarint() != 0
		case 7:
			s.VPNLocation = d.str()
		case 8:
			s.Transport = d.str()
		case 9:
			s.Constraints.RequireLowCPU = d.uvarint() != 0
		case 10:
			s.Constraints.AllowFallback = d.uvarint() != 0
		case 11:
			s.HomeServer = d.str()
		default:
			d.skip(wire)
		}
	}
	return s, d.err
}

func encodeMonitor(m api.MonitorSpec) []byte {
	e := &enc{}
	e.svarint(1, int64(m.SampleRateHz))
	e.float(2, m.VoltageV)
	e.svarint(3, m.CPUSamplePeriodMS)
	e.svarint(4, m.PaddingMS)
	return e.b
}

func decodeMonitor(b []byte) (api.MonitorSpec, error) {
	var m api.MonitorSpec
	d := &dec{b: b}
	for {
		field, wire, ok := d.next()
		if !ok {
			break
		}
		switch field {
		case 1:
			m.SampleRateHz = int(d.svarint())
		case 2:
			m.VoltageV = d.fixed64()
		case 3:
			m.CPUSamplePeriodMS = d.svarint()
		case 4:
			m.PaddingMS = d.svarint()
		default:
			d.skip(wire)
		}
	}
	return m, d.err
}

// --- api.RunSummary -------------------------------------------------

func encodeSummary(s *api.RunSummary) []byte {
	e := &enc{}
	e.svarint(1, s.Samples)
	e.float(2, s.MeanMA)
	e.float(3, s.P50MA)
	e.float(4, s.P95MA)
	e.float(5, s.EnergyMAH)
	e.svarint(6, s.DurationNS)
	e.svarint(7, s.MirrorUploadBytes)
	e.svarint(8, s.DroppedLiveSamples)
	return e.b
}

func decodeSummary(b []byte) (*api.RunSummary, error) {
	s := &api.RunSummary{}
	d := &dec{b: b}
	for {
		field, wire, ok := d.next()
		if !ok {
			break
		}
		switch field {
		case 1:
			s.Samples = d.svarint()
		case 2:
			s.MeanMA = d.fixed64()
		case 3:
			s.P50MA = d.fixed64()
		case 4:
			s.P95MA = d.fixed64()
		case 5:
			s.EnergyMAH = d.fixed64()
		case 6:
			s.DurationNS = d.svarint()
		case 7:
			s.MirrorUploadBytes = d.svarint()
		case 8:
			s.DroppedLiveSamples = d.svarint()
		default:
			d.skip(wire)
		}
	}
	return s, d.err
}

// --- api.Params -----------------------------------------------------

// Params value kinds. Scalars get compact fast paths; anything nested
// falls back to a JSON blob for that one value.
const (
	pkNull   = 0
	pkFalse  = 1
	pkTrue   = 2
	pkFloat  = 3
	pkString = 4
	pkJSON   = 5
)

// encodeParams renders a params map as count | (key, kind, value)…
// with keys sorted, so equal maps encode to equal bytes — the
// determinism the bench drift gate and result-cache keys rely on.
// Numbers are stored as float64 to match what a JSON round trip of
// Params produces, keeping binary and JSON replays byte-identical.
func encodeParams(p api.Params) ([]byte, error) {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e := &enc{}
	e.b = binary.AppendUvarint(e.b, uint64(len(keys)))
	for _, k := range keys {
		e.b = binary.AppendUvarint(e.b, uint64(len(k)))
		e.b = append(e.b, k...)
		switch v := p[k].(type) {
		case nil:
			e.b = append(e.b, pkNull)
		case bool:
			if v {
				e.b = append(e.b, pkTrue)
			} else {
				e.b = append(e.b, pkFalse)
			}
		case float64:
			e.b = append(e.b, pkFloat)
			e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v))
		case int:
			e.b = append(e.b, pkFloat)
			e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(float64(v)))
		case string:
			e.b = append(e.b, pkString)
			e.b = binary.AppendUvarint(e.b, uint64(len(v)))
			e.b = append(e.b, v...)
		default:
			blob, err := json.Marshal(v)
			if err != nil {
				return nil, fmt.Errorf("store: encoding param %q: %w", k, err)
			}
			e.b = append(e.b, pkJSON)
			e.b = binary.AppendUvarint(e.b, uint64(len(blob)))
			e.b = append(e.b, blob...)
		}
	}
	return e.b, nil
}

func decodeParams(b []byte) (api.Params, error) {
	d := &dec{b: b}
	n := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if n > uint64(len(b)) { // each entry is ≥2 bytes
		return nil, fmt.Errorf("store: params count %d overruns payload", n)
	}
	p := make(api.Params, n)
	for i := uint64(0); i < n; i++ {
		key := d.str()
		if d.err != nil {
			return nil, d.err
		}
		if d.off >= len(d.b) {
			return nil, fmt.Errorf("store: params entry %q missing kind", key)
		}
		kind := d.b[d.off]
		d.off++
		switch kind {
		case pkNull:
			p[key] = nil
		case pkFalse:
			p[key] = false
		case pkTrue:
			p[key] = true
		case pkFloat:
			p[key] = d.fixed64()
		case pkString:
			p[key] = d.str()
		case pkJSON:
			var v any
			if err := json.Unmarshal(d.bytes(), &v); err != nil {
				if d.err == nil {
					d.err = fmt.Errorf("store: params entry %q: %w", key, err)
				}
			} else {
				p[key] = v
			}
		default:
			return nil, fmt.Errorf("store: params entry %q has unknown kind %d", key, kind)
		}
		if d.err != nil {
			return nil, d.err
		}
	}
	return p, nil
}
