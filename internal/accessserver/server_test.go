package accessserver

import (
	"errors"
	"strings"
	"testing"
	"time"

	"batterylab/internal/controller"
	"batterylab/internal/device"
	"batterylab/internal/simclock"
)

type rig struct {
	clk   *simclock.Virtual
	srv   *Server
	ctl   *controller.Controller
	admin *User
	exp   *User
	tst   *User
}

func newRig(t *testing.T) *rig {
	t.Helper()
	clk := simclock.NewVirtual()
	srv := New(clk, Config{})
	ctl, err := controller.New(clk, controller.Config{Name: "node1", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	d, err := device.New(clk, device.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.AttachDevice(d); err != nil {
		t.Fatal(err)
	}
	if err := srv.Nodes.Register(NewLocalNode(ctl)); err != nil {
		t.Fatal(err)
	}
	admin, _ := srv.Users.Add("alice", RoleAdmin)
	exp, _ := srv.Users.Add("bob", RoleExperimenter)
	tst, _ := srv.Users.Add("tina", RoleTester)
	return &rig{clk: clk, srv: srv, ctl: ctl, admin: admin, exp: exp, tst: tst}
}

func noopJob(ctx *BuildContext, done func(error)) { done(nil) }

func TestRBACMatrix(t *testing.T) {
	cases := []struct {
		role Role
		perm Permission
		want bool
	}{
		{RoleAdmin, PermApprovePipeline, true},
		{RoleAdmin, PermManageUsers, true},
		{RoleExperimenter, PermCreateJob, true},
		{RoleExperimenter, PermApprovePipeline, false},
		{RoleExperimenter, PermManageNodes, false},
		{RoleTester, PermRunJob, false},
		{RoleTester, PermInteractSession, true},
		{RoleTester, PermViewConsole, false},
	}
	for _, c := range cases {
		if got := Allowed(c.role, c.perm); got != c.want {
			t.Errorf("Allowed(%v, %v) = %v, want %v", c.role, c.perm, got, c.want)
		}
	}
}

func TestUsersStore(t *testing.T) {
	u := NewUsers()
	a, err := u.Add("alice", RoleAdmin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Add("alice", RoleTester); err == nil {
		t.Fatal("duplicate user accepted")
	}
	got, err := u.Authenticate(a.Token)
	if err != nil || got.Name != "alice" {
		t.Fatalf("authenticate: %+v, %v", got, err)
	}
	if _, err := u.Authenticate("bogus"); err == nil {
		t.Fatal("bogus token accepted")
	}
	if err := u.Remove("alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Authenticate(a.Token); err == nil {
		t.Fatal("removed user still authenticates")
	}
}

func TestNodeApprovalGate(t *testing.T) {
	clk := simclock.NewVirtual()
	ctl, _ := controller.New(clk, controller.Config{Name: "rogue", Seed: 1})
	r := NewNodes()
	r.Approve("node7")
	if err := r.Register(NewLocalNode(ctl)); err == nil {
		t.Fatal("unapproved node registered")
	}
	ctl2, _ := controller.New(clk, controller.Config{Name: "node7", Seed: 2})
	if err := r.Register(NewLocalNode(ctl2)); err != nil {
		t.Fatal(err)
	}
}

func TestJobApprovalWorkflow(t *testing.T) {
	r := newRig(t)
	// Experimenter creates: needs approval.
	j, err := r.srv.CreateJob(r.exp, "exp1", Constraints{Node: "node1"}, noopJob)
	if err != nil {
		t.Fatal(err)
	}
	if j.Approved() {
		t.Fatal("experimenter job auto-approved")
	}
	if _, err := r.srv.Submit(r.exp, "exp1"); err == nil {
		t.Fatal("unapproved job ran")
	}
	// Experimenter cannot approve.
	if err := r.srv.ApproveJob(r.exp, "exp1"); err == nil {
		t.Fatal("experimenter approved a pipeline")
	}
	if err := r.srv.ApproveJob(r.admin, "exp1"); err != nil {
		t.Fatal(err)
	}
	b, err := r.srv.Submit(r.exp, "exp1")
	if err != nil {
		t.Fatal(err)
	}
	if b.State() != StateSuccess {
		t.Fatalf("state = %v", b.State())
	}
	// Editing resets approval.
	if err := r.srv.EditJob(r.exp, "exp1", Constraints{Node: "node1"}, noopJob); err != nil {
		t.Fatal(err)
	}
	if j.Approved() {
		t.Fatal("edit kept approval")
	}
	if j.Revision() != 2 {
		t.Fatalf("revision = %d", j.Revision())
	}
}

func TestTesterCannotCreateOrRun(t *testing.T) {
	r := newRig(t)
	if _, err := r.srv.CreateJob(r.tst, "x", Constraints{Node: "node1"}, noopJob); err == nil {
		t.Fatal("tester created a job")
	}
	r.srv.CreateJob(r.admin, "x", Constraints{Node: "node1"}, noopJob)
	if _, err := r.srv.Submit(r.tst, "x"); err == nil {
		t.Fatal("tester ran a job")
	}
}

func TestJobValidation(t *testing.T) {
	r := newRig(t)
	if _, err := r.srv.CreateJob(r.admin, "", Constraints{Node: "node1"}, noopJob); err == nil {
		t.Fatal("nameless job accepted")
	}
	if _, err := r.srv.CreateJob(r.admin, "j", Constraints{}, noopJob); err == nil {
		t.Fatal("nodeless job accepted")
	}
	if _, err := r.srv.CreateJob(r.admin, "j", Constraints{Node: "node1"}, nil); err == nil {
		t.Fatal("bodyless job accepted")
	}
	r.srv.CreateJob(r.admin, "j", Constraints{Node: "node1"}, noopJob)
	if _, err := r.srv.CreateJob(r.admin, "j", Constraints{Node: "node1"}, noopJob); err == nil {
		t.Fatal("duplicate job accepted")
	}
}

func TestBuildRunsAgainstNode(t *testing.T) {
	r := newRig(t)
	serial := r.ctl.ListDevices()[0]
	var sawDevices string
	r.srv.CreateJob(r.admin, "probe", Constraints{Node: "node1", Device: serial},
		func(ctx *BuildContext, done func(error)) {
			out, err := ctx.Node.Exec("list_devices")
			sawDevices = out
			ctx.Logf("devices: %s", out)
			done(err)
		})
	b, err := r.srv.Submit(r.admin, "probe")
	if err != nil {
		t.Fatal(err)
	}
	if b.State() != StateSuccess {
		t.Fatalf("state = %v (%v)", b.State(), b.Err())
	}
	if sawDevices != serial {
		t.Fatalf("job saw %q", sawDevices)
	}
	if !strings.Contains(b.Log(), "devices: "+serial) {
		t.Fatalf("log = %q", b.Log())
	}
}

func TestDeviceLockSerializesBuilds(t *testing.T) {
	r := newRig(t)
	serial := r.ctl.ListDevices()[0]
	var order []int
	mkJob := func(name string, id int) {
		r.srv.CreateJob(r.admin, name, Constraints{Node: "node1", Device: serial},
			func(ctx *BuildContext, done func(error)) {
				order = append(order, id)
				// Hold the device for 10 s of simulated time.
				r.clk.AfterFunc(10*time.Second, func() { done(nil) })
			})
	}
	mkJob("a", 1)
	mkJob("b", 2)
	ba, _ := r.srv.Submit(r.admin, "a")
	bb, _ := r.srv.Submit(r.admin, "b")
	if ba.State() != StateRunning {
		t.Fatalf("a state = %v", ba.State())
	}
	if bb.State() != StateQueued {
		t.Fatalf("b state = %v, want queued behind device lock", bb.State())
	}
	r.clk.Advance(11 * time.Second)
	if ba.State() != StateSuccess {
		t.Fatalf("a state = %v", ba.State())
	}
	if bb.State() != StateRunning && bb.State() != StateSuccess {
		t.Fatalf("b state = %v after lock release", bb.State())
	}
	r.clk.Advance(11 * time.Second)
	if bb.State() != StateSuccess {
		t.Fatalf("b final state = %v", bb.State())
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
	if bb.QueueTime() < 10*time.Second {
		t.Fatalf("b queue time = %v, want >= 10s", bb.QueueTime())
	}
}

func TestNodeLockConflictsWithDeviceLock(t *testing.T) {
	r := newRig(t)
	serial := r.ctl.ListDevices()[0]
	r.srv.CreateJob(r.admin, "dev", Constraints{Node: "node1", Device: serial},
		func(ctx *BuildContext, done func(error)) {
			r.clk.AfterFunc(10*time.Second, func() { done(nil) })
		})
	r.srv.CreateJob(r.admin, "node", Constraints{Node: "node1"},
		func(ctx *BuildContext, done func(error)) { done(nil) })
	r.srv.Submit(r.admin, "dev")
	bn, _ := r.srv.Submit(r.admin, "node")
	if bn.State() != StateQueued {
		t.Fatalf("whole-node job state = %v, want queued", bn.State())
	}
	r.clk.Advance(11 * time.Second)
	if bn.State() != StateSuccess {
		t.Fatalf("node job state = %v", bn.State())
	}
}

func TestExecutorLimit(t *testing.T) {
	clk := simclock.NewVirtual()
	srv := New(clk, Config{Executors: 1})
	admin, _ := srv.Users.Add("a", RoleAdmin)
	for _, name := range []string{"node1", "node2"} {
		ctl, _ := controller.New(clk, controller.Config{Name: name, Seed: 1})
		srv.Nodes.Register(NewLocalNode(ctl))
	}
	mk := func(job, node string) {
		srv.CreateJob(admin, job, Constraints{Node: node},
			func(ctx *BuildContext, done func(error)) {
				clk.AfterFunc(5*time.Second, func() { done(nil) })
			})
	}
	mk("j1", "node1")
	mk("j2", "node2")
	b1, _ := srv.Submit(admin, "j1")
	b2, _ := srv.Submit(admin, "j2")
	if b1.State() != StateRunning || b2.State() != StateQueued {
		t.Fatalf("states = %v, %v (one executor)", b1.State(), b2.State())
	}
	clk.Advance(6 * time.Second)
	clk.Advance(6 * time.Second)
	if b2.State() != StateSuccess {
		t.Fatalf("b2 = %v", b2.State())
	}
}

func TestBuildFailureRecorded(t *testing.T) {
	r := newRig(t)
	r.srv.CreateJob(r.admin, "bad", Constraints{Node: "node1"},
		func(ctx *BuildContext, done func(error)) {
			done(errors.New("monsoon unreachable"))
		})
	b, _ := r.srv.Submit(r.admin, "bad")
	if b.State() != StateFailure {
		t.Fatalf("state = %v", b.State())
	}
	if b.Err() == nil || !strings.Contains(b.Log(), "monsoon unreachable") {
		t.Fatalf("err=%v log=%q", b.Err(), b.Log())
	}
}

func TestBuildPanicBecomesFailure(t *testing.T) {
	r := newRig(t)
	r.srv.CreateJob(r.admin, "panics", Constraints{Node: "node1"},
		func(ctx *BuildContext, done func(error)) {
			panic("relay caught fire")
		})
	b, _ := r.srv.Submit(r.admin, "panics")
	if b.State() != StateFailure {
		t.Fatalf("state = %v", b.State())
	}
	if !strings.Contains(b.Err().Error(), "relay caught fire") {
		t.Fatalf("err = %v", b.Err())
	}
}

func TestWorkspaceRetention(t *testing.T) {
	clk := simclock.NewVirtual()
	srv := New(clk, Config{Retention: 48 * time.Hour})
	admin, _ := srv.Users.Add("a", RoleAdmin)
	ctl, _ := controller.New(clk, controller.Config{Name: "node1", Seed: 1})
	srv.Nodes.Register(NewLocalNode(ctl))
	srv.CreateJob(admin, "j", Constraints{Node: "node1"},
		func(ctx *BuildContext, done func(error)) {
			ctx.Build.Workspace().Save("current.csv", []byte("data"))
			done(nil)
		})
	b, _ := srv.Submit(admin, "j")
	if _, err := b.Workspace().Load("current.csv"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(24 * time.Hour)
	if _, err := b.Workspace().Load("current.csv"); err != nil {
		t.Fatal("artifact purged before retention window")
	}
	clk.Advance(25 * time.Hour)
	if _, err := b.Workspace().Load("current.csv"); err == nil {
		t.Fatal("artifact survived retention window")
	}
	if b.Log() != "" {
		t.Fatal("log survived retention window")
	}
}

func TestLowCPUGate(t *testing.T) {
	r := newRig(t)
	serial := r.ctl.ListDevices()[0]
	// Saturate the controller: mirroring session + busy screen.
	r.ctl.DeviceMirroring(serial)
	dev, _ := r.ctl.Device(serial)
	dev.Framebuffer().SetActivity(35, 1)
	r.clk.Advance(time.Second)

	r.srv.CreateJob(r.admin, "gated", Constraints{Node: "node1", RequireLowCPU: true}, noopJob)
	b, _ := r.srv.Submit(r.admin, "gated")
	if b.State() != StateQueued {
		t.Fatalf("state = %v, want queued behind CPU gate", b.State())
	}
	// Unload the controller and kick the queue.
	r.ctl.DeviceMirroring(serial) // toggle off
	r.clk.Advance(time.Second)
	r.srv.Kick()
	if b.State() != StateSuccess {
		t.Fatalf("state = %v after CPU drops", b.State())
	}
}

func TestCronFires(t *testing.T) {
	r := newRig(t)
	count := 0
	stop := r.srv.Cron("safety", 5*time.Minute, func() { count++ })
	r.clk.Advance(16 * time.Minute)
	if count != 3 {
		t.Fatalf("cron fired %d times, want 3", count)
	}
	if r.srv.CronRuns("safety") != 3 {
		t.Fatalf("CronRuns = %d", r.srv.CronRuns("safety"))
	}
	stop()
	r.clk.Advance(time.Hour)
	if count != 3 {
		t.Fatal("cron fired after stop")
	}
}

func TestQueueStats(t *testing.T) {
	r := newRig(t)
	if r.srv.QueueLength() != 0 || r.srv.Running() != 0 {
		t.Fatal("dirty initial queue")
	}
}
