package accessserver

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"batterylab/internal/controller"
	"batterylab/internal/sshx"
)

// Node is the access server's handle to a vantage point: the Table 1
// command surface reached either in-process (a controller in the same
// address space, used by experiments and tests) or across the network
// through the sshx channel (the deployment configuration).
type Node interface {
	Name() string
	Exec(cmd string, args ...string) (string, error)
}

// LocalNode wraps an in-process controller, routing Exec through the
// same command table the SSH endpoint uses so local and remote nodes
// behave identically.
type LocalNode struct {
	ctl *controller.Controller
}

// NewLocalNode builds a node handle over a controller.
func NewLocalNode(ctl *controller.Controller) *LocalNode {
	return &LocalNode{ctl: ctl}
}

// Name implements Node.
func (n *LocalNode) Name() string { return n.ctl.Name() }

// Controller exposes the wrapped controller for in-process experiments.
func (n *LocalNode) Controller() *controller.Controller { return n.ctl }

// Exec implements Node.
func (n *LocalNode) Exec(cmd string, args ...string) (string, error) {
	return n.ctl.Exec(cmd, args...)
}

// Ping implements Pinger: an in-process liveness probe that the
// heartbeat ticker may run synchronously on the clock goroutine.
func (n *LocalNode) Ping() error {
	_, err := n.ctl.Exec("ping")
	return err
}

// RemoteNode reaches a vantage point over sshx.
type RemoteNode struct {
	name string
	cl   *sshx.Client
}

// NewRemoteNode wraps a connected sshx client.
func NewRemoteNode(name string, cl *sshx.Client) *RemoteNode {
	return &RemoteNode{name: name, cl: cl}
}

// Name implements Node.
func (n *RemoteNode) Name() string { return n.name }

// Exec implements Node.
func (n *RemoteNode) Exec(cmd string, args ...string) (string, error) {
	return n.cl.Exec(cmd, args...)
}

// Nodes is the vantage point registry. Registration is restricted: the
// paper pre-approves vantage points via IP lockdown and security groups;
// here an allowlist of names plays that role (empty = open, for tests).
type Nodes struct {
	mu       sync.RWMutex
	nodes    map[string]Node
	approved map[string]bool
}

// NewNodes returns an empty registry.
func NewNodes() *Nodes {
	return &Nodes{nodes: make(map[string]Node), approved: make(map[string]bool)}
}

// Approve pre-approves a vantage point name for registration.
func (r *Nodes) Approve(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.approved[name] = true
}

// Register adds a node. If any approvals are configured, the node must
// be pre-approved.
func (r *Nodes) Register(n Node) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.approved) > 0 && !r.approved[n.Name()] {
		return fmt.Errorf("%w: node %q not pre-approved", ErrForbidden, n.Name())
	}
	if _, dup := r.nodes[n.Name()]; dup {
		return fmt.Errorf("%w: node %q already registered", ErrConflict, n.Name())
	}
	r.nodes[n.Name()] = n
	return nil
}

// Get resolves a node.
func (r *Nodes) Get(name string) (Node, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n, ok := r.nodes[name]
	if !ok {
		return nil, fmt.Errorf("%w: no node %q", ErrNotFound, name)
	}
	return n, nil
}

// Remove drops a node.
func (r *Nodes) Remove(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[name]; !ok {
		return fmt.Errorf("%w: no node %q", ErrNotFound, name)
	}
	delete(r.nodes, name)
	return nil
}

// List reports node names sorted.
func (r *Nodes) List() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Devices asks a node for its test devices.
func (r *Nodes) Devices(name string) ([]string, error) {
	n, err := r.Get(name)
	if err != nil {
		return nil, err
	}
	out, err := n.Exec("list_devices")
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(out) == "" {
		return nil, nil
	}
	return strings.Split(strings.TrimSpace(out), "\n"), nil
}
