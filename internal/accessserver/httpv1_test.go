package accessserver

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"batterylab/internal/api"
	"batterylab/internal/trace"
)

// stubBackend compiles any spec into a pipeline that emits one phase
// event and one live sample, saves one artifact and succeeds — enough
// surface for route/RBAC tests without a full platform.
type stubBackend struct{}

func (stubBackend) Compile(spec api.ExperimentSpec) (Constraints, RunFunc, error) {
	if spec.Workload.Name == "bad" {
		return Constraints{}, nil, fmt.Errorf("%w: bad workload", ErrInvalid)
	}
	if spec.Workload.Name == "missing" {
		return Constraints{}, nil, fmt.Errorf("%w: no workload %q", ErrNotFound, spec.Workload.Name)
	}
	cons := Constraints{Node: spec.Node, Device: spec.Device}
	run := func(ctx *BuildContext, done func(error)) {
		ctx.Build.Feed().PostEvent(api.BuildEvent{Build: ctx.Build.ID, Phase: "workload"})
		ctx.Build.Feed().PostSample(api.SamplePoint{AtNS: 42, CurrentMA: 120.5, N: 1, MeanMA: 120.5})
		ctx.Build.Workspace().Save("hello.txt", []byte("hi"))
		ctx.Build.Workspace().Save("current.trace", stubTraceBytes())
		ctx.Build.SetSummary(api.RunSummary{Samples: 1, MeanMA: 120.5})
		done(nil)
	}
	return cons, run, nil
}

// stubTraceBytes is a small deterministic binary power trace the
// analytics route can aggregate: 1 kHz cadence, a step from 100 mA to
// 200 mA halfway through 4 s.
func stubTraceBytes() []byte {
	tr := trace.NewSeries("current", "mA")
	t0 := time.Unix(1_700_000_000, 0)
	for i := 0; i < 4000; i++ {
		v := 100.0
		if i >= 2000 {
			v = 200.0
		}
		tr.MustAppend(t0.Add(time.Duration(i)*time.Millisecond), v)
	}
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func (stubBackend) WorkloadNames() []string { return []string{"stub"} }

// v1rig extends the package rig with the stub backend, an HTTP server
// and one finished spec build + campaign.
type v1rig struct {
	*rig
	ts        *httptest.Server
	doneBuild int
	campaign  int
}

func newV1Rig(t *testing.T) *v1rig {
	t.Helper()
	r := newRig(t)
	r.srv.SetSpecBackend(stubBackend{})
	v := &v1rig{rig: r, ts: httptest.NewServer(r.srv.Handler())}
	t.Cleanup(v.ts.Close)

	b, err := r.srv.SubmitSpec(r.admin, v.spec("node1"))
	if err != nil {
		t.Fatal(err)
	}
	v.doneBuild = b.ID
	if b.State() != StateSuccess {
		t.Fatalf("seed build state = %s", b.State())
	}
	id, _, err := r.srv.SubmitCampaign(r.admin, api.CampaignSpec{
		Experiments: []api.ExperimentSpec{v.spec("node1")},
	})
	if err != nil {
		t.Fatal(err)
	}
	v.campaign = id
	return v
}

func (v *v1rig) spec(node string) api.ExperimentSpec {
	return api.ExperimentSpec{
		Node: node, Device: "dev1",
		Workload: api.WorkloadSpec{Name: "stub"},
	}
}

// queueBuild submits a spec (as owner) targeting an unregistered node,
// which stays queued until aborted.
func (v *v1rig) queueBuild(t *testing.T, owner *User) int {
	t.Helper()
	b, err := v.srv.SubmitSpec(owner, v.spec("ghost"))
	if err != nil {
		t.Fatal(err)
	}
	if b.State() != StateQueued {
		t.Fatalf("ghost build state = %s", b.State())
	}
	return b.ID
}

func (v *v1rig) request(t *testing.T, method, path, token string, body string) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, v.ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestV1RBACMatrix drives every v1 route with every role (plus an
// unauthenticated caller) and checks the expected status: 401 without
// a token, 403 for roles lacking the permission, 2xx for allowed
// roles. A fresh rig per role keeps the mutating routes independent.
func TestV1RBACMatrix(t *testing.T) {
	specBody := `{"node":"node1","device":"dev1","workload":{"name":"stub"}}`
	campaignBody := `{"experiments":[` + specBody + `]}`

	type route struct {
		method string
		path   func(v *v1rig, cancelTarget int) string
		body   string
		allow  int // status for roles holding the permission
	}
	routes := []route{
		{"GET", func(v *v1rig, _ int) string { return "/api/v1/nodes" }, "", 200},
		{"GET", func(v *v1rig, _ int) string { return "/api/v1/workloads" }, "", 200},
		{"POST", func(v *v1rig, _ int) string { return "/api/v1/experiments" }, specBody, 202},
		{"POST", func(v *v1rig, _ int) string { return "/api/v1/campaigns" }, campaignBody, 202},
		{"GET", func(v *v1rig, _ int) string { return fmt.Sprintf("/api/v1/campaigns/%d", v.campaign) }, "", 200},
		{"GET", func(v *v1rig, _ int) string { return fmt.Sprintf("/api/v1/builds/%d", v.doneBuild) }, "", 200},
		{"GET", func(v *v1rig, _ int) string { return fmt.Sprintf("/api/v1/builds/%d/events", v.doneBuild) }, "", 200},
		{"GET", func(v *v1rig, _ int) string { return fmt.Sprintf("/api/v1/builds/%d/samples", v.doneBuild) }, "", 200},
		{"GET", func(v *v1rig, _ int) string { return fmt.Sprintf("/api/v1/builds/%d/analytics", v.doneBuild) }, "", 200},
		{"GET", func(v *v1rig, _ int) string { return fmt.Sprintf("/api/v1/builds/%d/artifacts", v.doneBuild) }, "", 200},
		{"GET", func(v *v1rig, _ int) string { return fmt.Sprintf("/api/v1/builds/%d/artifacts/hello.txt", v.doneBuild) }, "", 200},
		{"POST", func(v *v1rig, target int) string { return fmt.Sprintf("/api/v1/builds/%d/cancel", target) }, "", 202},
	}
	roles := []struct {
		name    string
		user    func(v *v1rig) *User // nil = anonymous
		status  func(allow int) int  // expected per allowed-status
		allowed bool
	}{
		{"anonymous", func(v *v1rig) *User { return nil }, func(int) int { return 401 }, false},
		{"tester", func(v *v1rig) *User { return v.tst }, func(int) int { return 403 }, false},
		{"experimenter", func(v *v1rig) *User { return v.exp }, func(a int) int { return a }, true},
		{"admin", func(v *v1rig) *User { return v.admin }, func(a int) int { return a }, true},
	}
	for _, role := range roles {
		v := newV1Rig(t)
		for _, rt := range routes {
			cancelTarget := v.doneBuild
			if strings.HasSuffix(rt.path(v, 0), "/cancel") && role.allowed {
				// Allowed roles need a live target they own; 202 proves
				// the permission, ownership and abort path together.
				cancelTarget = v.queueBuild(t, role.user(v))
			}
			token := ""
			if u := role.user(v); u != nil {
				token = u.Token
			}
			resp := v.request(t, rt.method, rt.path(v, cancelTarget), token, rt.body)
			want := role.status(rt.allow)
			if resp.StatusCode != want {
				t.Errorf("%s %s %s: status %d, want %d",
					role.name, rt.method, rt.path(v, cancelTarget), resp.StatusCode, want)
			}
			if resp.StatusCode >= 400 {
				// Every error is the typed envelope.
				var env api.Envelope
				if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error == nil {
					t.Errorf("%s %s: error body is not an envelope (%v)", role.name, rt.method, err)
				} else if env.Error.HTTPStatus() != resp.StatusCode {
					t.Errorf("%s %s: code %s does not match status %d",
						role.name, rt.method, env.Error.Code, resp.StatusCode)
				}
			}
			resp.Body.Close()
		}
	}
}

// TestV1ErrorCodes pins the status for each failure class — the
// conflation bug (everything 409) must not come back.
func TestV1ErrorCodes(t *testing.T) {
	v := newV1Rig(t)
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"unknown build", "GET", "/api/v1/builds/999", "", 404},
		{"malformed build id", "GET", "/api/v1/builds/xyz", "", 400},
		{"unknown campaign", "GET", "/api/v1/campaigns/999", "", 404},
		{"unknown artifact", "GET", fmt.Sprintf("/api/v1/builds/%d/artifacts/nope", v.doneBuild), "", 404},
		{"malformed spec JSON", "POST", "/api/v1/experiments", "{", 400},
		{"invalid spec", "POST", "/api/v1/experiments", `{"node":"node1","device":"d","workload":{"name":"bad"}}`, 400},
		{"unknown workload", "POST", "/api/v1/experiments", `{"node":"node1","device":"d","workload":{"name":"missing"}}`, 404},
		{"empty campaign", "POST", "/api/v1/campaigns", `{"experiments":[]}`, 400},
		{"cancel finished build", "POST", fmt.Sprintf("/api/v1/builds/%d/cancel", v.doneBuild), "", 409},
		{"bad sample format", "GET", fmt.Sprintf("/api/v1/builds/%d/samples?format=xml", v.doneBuild), "", 400},
		{"bad events cursor", "GET", fmt.Sprintf("/api/v1/builds/%d/events?from=-2", v.doneBuild), "", 400},
		{"analytics bad window", "GET", fmt.Sprintf("/api/v1/builds/%d/analytics?window=banana", v.doneBuild), "", 400},
		{"analytics negative window", "GET", fmt.Sprintf("/api/v1/builds/%d/analytics?window=-2s", v.doneBuild), "", 400},
		{"analytics unknown field", "GET", fmt.Sprintf("/api/v1/builds/%d/analytics?fields=bogus", v.doneBuild), "", 400},
		{"analytics too many buckets", "GET", fmt.Sprintf("/api/v1/builds/%d/analytics?window=1ns", v.doneBuild), "", 400},
		{"analytics unfinished build", "GET", fmt.Sprintf("/api/v1/builds/%d/analytics", v.queueBuild(t, v.admin)), "", 409},
		{"analytics missing artifact", "GET", fmt.Sprintf("/api/v1/builds/%d/analytics?artifact=nope", v.doneBuild), "", 404},
	}
	for _, c := range cases {
		resp := v.request(t, c.method, c.path, v.admin.Token, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
		resp.Body.Close()
	}
}

// TestV1CampaignAtomicity: one bad spec in a campaign queues nothing.
func TestV1CampaignAtomicity(t *testing.T) {
	v := newV1Rig(t)
	before := v.srv.QueueLength()
	body := `{"experiments":[
		{"node":"node1","device":"d","workload":{"name":"stub"}},
		{"node":"node1","device":"d","workload":{"name":"bad"}}]}`
	resp := v.request(t, "POST", "/api/v1/campaigns", v.admin.Token, body)
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if got := v.srv.QueueLength(); got != before {
		t.Fatalf("queue grew by %d despite the failed campaign", got-before)
	}
}

// TestLegacyMethodEnforcement: read routes reject writes and vice
// versa (the old mux served POST /api/nodes as a GET).
func TestLegacyMethodEnforcement(t *testing.T) {
	v := newV1Rig(t)
	cases := []struct {
		method string
		path   string
	}{
		{"POST", "/api/nodes"},
		{"POST", "/api/jobs"},
		{"POST", fmt.Sprintf("/api/builds/%d", v.doneBuild)},
		{"POST", fmt.Sprintf("/api/builds/%d/log", v.doneBuild)},
		{"GET", "/api/jobs/x/build"},
		{"GET", "/api/jobs/x/approve"},
		{"POST", "/api/v1/nodes"},
		{"GET", "/api/v1/experiments"},
		{"DELETE", fmt.Sprintf("/api/v1/builds/%d", v.doneBuild)},
	}
	for _, c := range cases {
		resp := v.request(t, c.method, c.path, v.admin.Token, "")
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", c.method, c.path, resp.StatusCode)
		}
	}
}

// TestV1SampleStreamFormats checks both wire encodings of the sample
// stream against the same finished build.
func TestV1SampleStreamFormats(t *testing.T) {
	v := newV1Rig(t)

	// Binary (default): length-prefixed trace frames.
	resp := v.request(t, "GET", fmt.Sprintf("/api/v1/builds/%d/samples", v.doneBuild), v.admin.Token, "")
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("binary content type = %q", ct)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	pts, err := api.ReadSampleFrame(bufio.NewReader(bytes.NewReader(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].AtNS != 42 || pts[0].CurrentMA != 120.5 {
		t.Fatalf("binary points = %+v", pts)
	}

	// NDJSON fallback carries the live summary fields.
	resp = v.request(t, "GET", fmt.Sprintf("/api/v1/builds/%d/samples?format=ndjson", v.doneBuild), v.admin.Token, "")
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("ndjson content type = %q", ct)
	}
	var pt api.SamplePoint
	if err := json.NewDecoder(resp.Body).Decode(&pt); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pt.CurrentMA != 120.5 || pt.MeanMA != 120.5 || pt.N != 1 {
		t.Fatalf("ndjson point = %+v", pt)
	}
}

// TestV1EventCursor: ?from= resumes the event stream mid-way.
func TestV1EventCursor(t *testing.T) {
	r := newRig(t)
	r.srv.SetSpecBackend(eventBurstBackend{n: 3})
	ts := httptest.NewServer(r.srv.Handler())
	defer ts.Close()
	b, err := r.srv.SubmitSpec(r.admin, api.ExperimentSpec{
		Node: "node1", Device: "d", Workload: api.WorkloadSpec{Name: "burst"},
	})
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("GET", fmt.Sprintf("%s/api/v1/builds/%d/events?from=1", ts.URL, b.ID), nil)
	req.Header.Set("Authorization", "Bearer "+r.admin.Token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var seqs []int
	dec := json.NewDecoder(resp.Body)
	for {
		var ev api.BuildEvent
		if err := dec.Decode(&ev); err != nil {
			break
		}
		seqs = append(seqs, ev.Seq)
	}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Fatalf("resumed seqs = %v, want [1 2]", seqs)
	}
}

// eventBurstBackend emits n events then succeeds.
type eventBurstBackend struct{ n int }

func (b eventBurstBackend) Compile(spec api.ExperimentSpec) (Constraints, RunFunc, error) {
	return Constraints{Node: spec.Node}, func(ctx *BuildContext, done func(error)) {
		for i := 0; i < b.n; i++ {
			ctx.Build.Feed().PostEvent(api.BuildEvent{Build: ctx.Build.ID, Phase: fmt.Sprintf("p%d", i)})
		}
		done(nil)
	}, nil
}

func (eventBurstBackend) WorkloadNames() []string { return []string{"burst"} }

// TestSlowSampleConsumerCannotStallCapture is the PR 2 bounded-queue
// guarantee extended across the wire: a /samples consumer that opens
// the stream and never reads must not block the pipeline posting
// samples. The pipeline emits far more than the socket and feed can
// buffer while the consumer stalls; if any append blocked, the
// synchronous RunFunc — the capture loop's stand-in — would never
// finish and the test would time out. The feed sheds (and counts) the
// overflow instead.
func TestSlowSampleConsumerCannotStallCapture(t *testing.T) {
	r := newRig(t)
	const total = 3 * feedSampleCap
	posted := make(chan struct{})
	r.srv.SetSpecBackend(floodBackend{n: total, done: posted})
	ts := httptest.NewServer(r.srv.Handler())
	defer ts.Close()

	start := time.Now()
	b, err := r.srv.SubmitSpec(r.admin, api.ExperimentSpec{
		Node: "node1", Device: "d", Workload: api.WorkloadSpec{Name: "flood"},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-posted:
	case <-time.After(10 * time.Second):
		t.Fatal("pipeline blocked posting samples — capture loop stalled")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("posting %d samples took %v", total, elapsed)
	}
	if b.State() != StateSuccess {
		t.Fatalf("state = %s", b.State())
	}
	_, droppedSamples := b.Feed().Dropped()
	if want := int64(total - feedSampleCap); droppedSamples != want {
		t.Fatalf("dropped %d samples, want %d", droppedSamples, want)
	}

	// A never-reading consumer on the bounded replay: the handler (not
	// the capture path) blocks on the socket; the server stays
	// responsive to everyone else.
	req, _ := http.NewRequest("GET", fmt.Sprintf("%s/api/v1/builds/%d/samples", ts.URL, b.ID), nil)
	req.Header.Set("Authorization", "Bearer "+r.admin.Token)
	resp, err := http.DefaultClient.Do(req) // Do returns after headers; body unread
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	resp2 := func() *http.Response {
		req, _ := http.NewRequest("GET", fmt.Sprintf("%s/api/v1/builds/%d", ts.URL, b.ID), nil)
		req.Header.Set("Authorization", "Bearer "+r.admin.Token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}()
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("server unresponsive while consumer stalls: %d", resp2.StatusCode)
	}
}

// floodBackend posts n samples as fast as the feed accepts them.
type floodBackend struct {
	n    int
	done chan struct{}
}

func (b floodBackend) Compile(spec api.ExperimentSpec) (Constraints, RunFunc, error) {
	return Constraints{Node: spec.Node}, func(ctx *BuildContext, done func(error)) {
		for i := 0; i < b.n; i++ {
			ctx.Build.Feed().PostSample(api.SamplePoint{AtNS: int64(i), CurrentMA: float64(i)})
		}
		close(b.done)
		done(nil)
	}, nil
}

func (floodBackend) WorkloadNames() []string { return []string{"flood"} }

// TestV1CancelOwnership: an experimenter may only cancel their own
// builds; admins may cancel anyone's. The canceled flag lands on the
// wire status.
func TestV1CancelOwnership(t *testing.T) {
	v := newV1Rig(t)
	other, _ := v.srv.Users.Add("mallory", RoleExperimenter)

	mine := v.queueBuild(t, v.admin) // owned by admin
	resp := v.request(t, "POST", fmt.Sprintf("/api/v1/builds/%d/cancel", mine), other.Token, "")
	resp.Body.Close()
	if resp.StatusCode != 403 {
		t.Fatalf("cross-tenant cancel: status %d, want 403", resp.StatusCode)
	}
	// The admin (owner here, and admin besides) cancels fine.
	resp = v.request(t, "POST", fmt.Sprintf("/api/v1/builds/%d/cancel", mine), v.admin.Token, "")
	resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("owner cancel: status %d, want 202", resp.StatusCode)
	}

	// An admin may cancel another user's build.
	b, err := v.srv.SubmitSpec(v.exp, v.spec("ghost"))
	if err != nil {
		t.Fatal(err)
	}
	resp = v.request(t, "POST", fmt.Sprintf("/api/v1/builds/%d/cancel", b.ID), v.admin.Token, "")
	resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("admin cancel of other's build: status %d, want 202", resp.StatusCode)
	}

	// The wire status carries ownership and the structured canceled flag.
	resp = v.request(t, "GET", fmt.Sprintf("/api/v1/builds/%d", b.ID), v.exp.Token, "")
	var st api.BuildStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Owner != "bob" || st.State != "aborted" || !st.Canceled {
		t.Fatalf("status = %+v", st)
	}
}

// TestV1BuildStatusSummary: the run summary lands on the wire status.
func TestV1BuildStatusSummary(t *testing.T) {
	v := newV1Rig(t)
	resp := v.request(t, "GET", fmt.Sprintf("/api/v1/builds/%d", v.doneBuild), v.admin.Token, "")
	defer resp.Body.Close()
	var st api.BuildStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.State != "success" || st.Summary == nil || st.Summary.MeanMA != 120.5 {
		t.Fatalf("status = %+v", st)
	}
	if st.Job != "spec:stub@node1" {
		t.Fatalf("job label = %q", st.Job)
	}
}
