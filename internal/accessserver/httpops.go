package accessserver

import (
	"context"
	"encoding/hex"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"batterylab/internal/metrics"
)

// Operational HTTP surface: liveness/readiness probes, the RBAC-gated
// pprof handlers, and the instrumentation middleware every request
// passes through (request IDs, per-route counters and latency, one
// structured access-log line).

// ExpectDurable tells the readiness probe that this deployment runs
// with a durable store: /readyz answers 503 until AttachStore succeeds
// and whenever the WAL failure latch is down. Daemons set it when the
// operator asked for persistence; in-memory deployments leave it off
// and are ready immediately.
func (s *Server) ExpectDurable() { s.expectDurable.Store(true) }

// handlerOps mounts the probe and profiling routes.
//
//	GET /healthz  liveness: always 200 while the process serves
//	GET /readyz   readiness: 503 until the durable store (when
//	              expected) is attached and accepting appends
//	/debug/pprof  runtime profiles, PermManageNodes only
//
// The probes are unauthenticated by design — orchestrators and load
// balancers hold no bearer tokens — and leak nothing beyond a boolean
// health verdict.
func (s *Server) handlerOps(mux *http.ServeMux) {
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		s.storeMu.Lock()
		attached := s.store != nil
		durable := attached && !s.storeFailed
		s.storeMu.Unlock()
		ready := true
		if s.expectDurable.Load() && !durable {
			ready = false
		}
		status := http.StatusOK
		if !ready {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, map[string]any{
			"ready":          ready,
			"store_attached": attached,
			"durable":        durable,
		})
	})

	// pprof's default registration is on the unauthenticated
	// DefaultServeMux; re-binding each handler behind the node-admin
	// permission keeps heap and CPU profiles (which embed file paths
	// and symbol names) off the public surface.
	gated := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if s.auth(w, r, PermManageNodes) == nil {
				return
			}
			h(w, r)
		}
	}
	mux.HandleFunc("GET /debug/pprof/", gated(pprof.Index))
	mux.HandleFunc("GET /debug/pprof/cmdline", gated(pprof.Cmdline))
	mux.HandleFunc("GET /debug/pprof/profile", gated(pprof.Profile))
	mux.HandleFunc("GET /debug/pprof/symbol", gated(pprof.Symbol))
	mux.HandleFunc("POST /debug/pprof/symbol", gated(pprof.Symbol))
	mux.HandleFunc("GET /debug/pprof/trace", gated(pprof.Trace))
}

// statusRecorder captures the status code and body size a handler
// writes, and forwards Flush so the streaming endpoints keep their
// incremental delivery through the middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (sr *statusRecorder) WriteHeader(code int) {
	if !sr.wrote {
		sr.status = code
		sr.wrote = true
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	sr.wrote = true
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += int64(n)
	return n, err
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// sanitizeRequestID vets a client-supplied X-Request-Id before it is
// echoed into the response and every access-log line: at most 64
// characters from [A-Za-z0-9._-], so a client cannot inject log
// delimiters, control bytes, or megabyte-sized values. Anything else
// returns "" and the caller mints a fresh ID.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		switch c := id[i]; {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return ""
		}
	}
	return id
}

// instrument wraps the mux with the observability middleware: a
// request ID (honoring a well-formed inbound X-Request-Id so a
// client's trace stitches through), per-route request counters and
// latency histograms keyed by the mux pattern — never the raw path,
// which would explode label cardinality — and one structured
// access-log line per request.
func (s *Server) instrument(mux *http.ServeMux) http.Handler {
	reqs := func(route, code string) { // lazily materialized per (route,code)
		s.m.reg.Counter("blab_http_requests_total", "HTTP requests by route and status",
			metrics.L("route", route, "code", code)...).Inc()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := sanitizeRequestID(r.Header.Get("X-Request-Id"))
		if reqID == "" {
			var b [8]byte
			seq := s.m.reqSeq.Add(1)
			for i := 0; i < 8; i++ {
				b[i] = byte(seq >> (56 - 8*i))
			}
			reqID = hex.EncodeToString(b[:])
		}
		w.Header().Set("X-Request-Id", reqID)

		// The matched pattern, resolved before the handler runs;
		// r.Pattern is only populated inside the mux's own dispatch.
		route := "unmatched"
		if _, pattern := mux.Handler(r); pattern != "" {
			route = pattern
		}

		s.m.httpInFlight.Inc()
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		mux.ServeHTTP(sr, r)
		elapsed := time.Since(start)
		s.m.httpInFlight.Dec()

		reqs(route, strconv.Itoa(sr.status))
		s.m.reg.Histogram("blab_http_request_seconds", "HTTP request latency by route",
			metrics.L("route", route)...).Observe(elapsed.Seconds())

		s.slogger().LogAttrs(context.Background(), slog.LevelInfo, "http",
			slog.String("request_id", reqID),
			slog.String("method", r.Method),
			slog.String("route", route),
			slog.String("path", r.URL.Path),
			slog.Int("status", sr.status),
			slog.Int64("bytes", sr.bytes),
			slog.Duration("duration", elapsed),
		)
	})
}
