package accessserver

import (
	"strings"
	"time"
)

// Score-based placement. Fallback builds used to land on the first
// free online node in sorted order; at fleet scale that piles work on
// whichever node sorts first and ignores everything the health
// subsystem already knows. The placer instead ranks every eligible
// (node, device) pair with a score built from the per-node performance
// indicators the server tracks — queue depth, device-model match,
// health state, and historical reliability (flap/failover counts) —
// the "sector performance indicator" approach of the paper's
// operational siblings. Ties break deterministically (higher score,
// then node name, then device serial), so virtual-clock runs stay
// bit-reproducible.

// PlacementCandidate is one (node, device) pair the placer scores.
// All telemetry fields come from the scheduler's nodeRec under s.mu.
type PlacementCandidate struct {
	// Node and Device identify the candidate pair.
	Node   string
	Device string
	// Peer names the federation peer advertising the node, or "" for a
	// node attached to this server. Remote candidates carry the census
	// the peer exchanged on its last heartbeat: Health, Running and
	// Device come from the advertisement, while the reliability fields
	// (flaps, failovers) stay zero — this server has no local telemetry
	// for a remote vantage point.
	Peer string
	// Health is the node's lifecycle state at scoring time. Only
	// online nodes are offered to the placer today, but the field is
	// part of the contract so a future policy can rank suspects.
	Health Health
	// Running counts builds currently leased to the node — its queue
	// depth. Claims made earlier in the same batch pass are included,
	// so one pass spreads load instead of stacking it.
	Running int
	// ModelMatch reports whether the candidate device's model matches
	// the requested device's model (see DeviceModel).
	ModelMatch bool
	// RecentFlap reports whether the node returned from a
	// suspect/offline silence within the recent-flap window
	// (Config.OfflineAfter): online, but not yet trusted.
	RecentFlap bool
	// Flaps counts lifetime returns from silence; Failovers counts
	// builds the scheduler reclaimed from this node. Both come from
	// the health subsystem's per-node telemetry.
	Flaps     int64
	Failovers int64
}

// Placer ranks placement candidates. Higher scores win; the scheduler
// breaks score ties by node name then device serial. Implementations
// must be pure functions of the candidate — placement happens under
// the scheduler lock and determinism depends on it.
type Placer interface {
	Score(c PlacementCandidate) float64
}

// ScoreWeights parameterizes the default placer. All weights are
// penalties-per-unit except ModelMatch, a flat bonus.
type ScoreWeights struct {
	// QueueDepth is the penalty per build already leased to the node.
	QueueDepth float64
	// ModelMatch is the bonus when the candidate device's model
	// matches the requested device's model.
	ModelMatch float64
	// RecentFlap is the penalty for a node that came back from
	// silence within the last offline window (online > recently-
	// suspect).
	RecentFlap float64
	// Flap is the penalty per lifetime flap (return from silence).
	Flap float64
	// Failover is the penalty per build reclaimed from the node.
	Failover float64
	// Remote is the flat penalty for a candidate advertised by a
	// federation peer rather than attached locally: relaying costs a
	// network hop and a failover domain, so a local node with a build or
	// two queued still beats an idle remote one.
	Remote float64
}

// DefaultScoreWeights is the shipped policy: queue depth dominates
// (an idle flaky node still beats a deeply backed-up reliable one for
// short runs), failovers outweigh flaps (a flap costs a beat window, a
// failover costs a whole rerun), and a model-matched device outranks
// reliability noise but never a whole queue position.
func DefaultScoreWeights() ScoreWeights {
	return ScoreWeights{
		QueueDepth: 10,
		ModelMatch: 5,
		RecentFlap: 8,
		Flap:       1,
		Failover:   4,
		Remote:     15,
	}
}

// WeightedPlacer is the default Placer: a linear score over the
// candidate's telemetry with ScoreWeights coefficients.
type WeightedPlacer struct {
	W ScoreWeights
}

// Score implements Placer. Monotonic by construction: with all else
// equal, more running builds, more flaps, more failovers, or a recent
// flap strictly lower the score, and a model match strictly raises it
// (given positive weights).
func (p WeightedPlacer) Score(c PlacementCandidate) float64 {
	s := -p.W.QueueDepth * float64(c.Running)
	if c.ModelMatch {
		s += p.W.ModelMatch
	}
	if c.RecentFlap {
		s -= p.W.RecentFlap
	}
	s -= p.W.Flap * float64(c.Flaps)
	s -= p.W.Failover * float64(c.Failovers)
	if c.Peer != "" {
		s -= p.W.Remote
	}
	return s
}

// DeviceModel extracts the model prefix of a device serial: the part
// before the first '-', or the whole serial when it has none. The
// fleet's serials are conventionally "model-unit" ("pixel4-a3"), so
// fallback placement can prefer a device of the same model as the one
// the experiment was calibrated for.
func DeviceModel(serial string) string {
	if i := strings.IndexByte(serial, '-'); i >= 0 {
		return serial[:i]
	}
	return serial
}

// SetPlacer swaps the placement scorer at runtime (nil restores the
// default WeightedPlacer). Takes effect on the next dispatch pass.
func (s *Server) SetPlacer(p Placer) {
	if p == nil {
		p = WeightedPlacer{W: DefaultScoreWeights()}
	}
	s.mu.Lock()
	s.placer = p
	s.mu.Unlock()
}

// candidateLocked assembles the scored view of one (node, device)
// pair. Callers hold s.mu.
func (s *Server) candidateLocked(rec *nodeRec, device, wantDevice string, now time.Time) PlacementCandidate {
	c := PlacementCandidate{
		Node:    rec.name,
		Device:  device,
		Health:  s.healthLocked(rec, now),
		Running: rec.running,
		Flaps:   rec.flaps,
	}
	c.Failovers = rec.failovers
	if wantDevice != "" && device != "" {
		c.ModelMatch = DeviceModel(device) == DeviceModel(wantDevice)
	}
	if !rec.lastFlap.IsZero() && now.Sub(rec.lastFlap) < s.cfg.OfflineAfter {
		c.RecentFlap = true
	}
	return c
}
