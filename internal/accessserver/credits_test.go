package accessserver

import (
	"testing"
	"time"
)

func TestLedgerContributionEarnsCredits(t *testing.T) {
	l := NewLedger()
	earned := l.CreditContribution("alice", "node1", 2*time.Hour)
	if earned != 2*ContributionRate {
		t.Fatalf("earned = %v", earned)
	}
	if l.Balance("alice") != earned {
		t.Fatalf("balance = %v", l.Balance("alice"))
	}
}

func TestLedgerChargeAndInsufficient(t *testing.T) {
	l := NewLedger()
	l.Grant("bob", 10, "starter grant")
	if !l.CanAfford("bob", 10*time.Minute) {
		t.Fatal("bob should afford 10 minutes")
	}
	if err := l.ChargeExperiment("bob", 7*time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := l.Balance("bob"); got != 3 {
		t.Fatalf("balance = %v", got)
	}
	if err := l.ChargeExperiment("bob", 5*time.Minute); err == nil {
		t.Fatal("overdraft accepted")
	}
	if got := l.Balance("bob"); got != 3 {
		t.Fatalf("failed charge mutated balance: %v", got)
	}
}

func TestLedgerHistory(t *testing.T) {
	l := NewLedger()
	l.Grant("carol", 5, "grant")
	l.ChargeExperiment("carol", time.Minute)
	h := l.History("carol")
	if len(h) != 2 || h[0].Delta != 5 || h[1].Delta != -1 {
		t.Fatalf("history = %+v", h)
	}
	// History is a copy.
	h[0].Delta = 999
	if l.History("carol")[0].Delta != 5 {
		t.Fatal("history aliases internal state")
	}
}

func TestLedgerUnknownUserZero(t *testing.T) {
	l := NewLedger()
	if l.Balance("nobody") != 0 {
		t.Fatal("unknown user has credits")
	}
	if l.CanAfford("nobody", time.Minute) {
		t.Fatal("unknown user can afford")
	}
}

func TestLedgerEconomyLoop(t *testing.T) {
	// A member hosts a vantage point for a day and spends the proceeds
	// on measurements: 24 h × 4 credits/h = 96 device-minutes.
	l := NewLedger()
	l.CreditContribution("dave", "node2", 24*time.Hour)
	minutes := 0
	for l.CanAfford("dave", time.Minute) {
		if err := l.ChargeExperiment("dave", time.Minute); err != nil {
			t.Fatal(err)
		}
		minutes++
	}
	if minutes != 96 {
		t.Fatalf("bought %d minutes, want 96", minutes)
	}
}
