// Package accessserver implements BatteryLab's access server (§3.1): the
// Jenkins-like automation core that manages vantage points and schedules
// experiments on them. It provides multi-user authentication with a
// role-based authorization matrix, a job/pipeline store where every
// pipeline change needs administrator approval, a build queue that
// dispatches jobs under platform constraints (one job at a time per
// device, optional low-CPU gating), per-build workspaces with bounded
// log/artifact retention, and the recurring maintenance jobs the paper
// describes (certificate renewal, monitor-off safety, factory reset).
package accessserver

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
)

// Role is a user's platform role.
type Role int

// Roles.
const (
	// RoleAdmin manages users, nodes and pipeline approvals.
	RoleAdmin Role = iota
	// RoleExperimenter creates and runs jobs.
	RoleExperimenter
	// RoleTester only interacts with device-mirroring sessions shared
	// with them (the crowdsourced humans of §3).
	RoleTester
	// RolePeer is the synthetic principal behind the shared cluster
	// token: a federated peer relaying builds here. It may submit and
	// follow builds — nothing else — and is exempt from admission
	// fairness and credits, because the build's home server already
	// applied both to the real submitting user.
	RolePeer
)

func (r Role) String() string {
	switch r {
	case RoleAdmin:
		return "admin"
	case RoleExperimenter:
		return "experimenter"
	case RolePeer:
		return "peer"
	default:
		return "tester"
	}
}

// Permission is one action in the authorization matrix.
type Permission int

// Permissions.
const (
	PermCreateJob Permission = iota
	PermEditJob
	PermRunJob
	PermApprovePipeline
	PermManageNodes
	PermManageUsers
	PermViewConsole
	PermInteractSession
)

func (p Permission) String() string {
	switch p {
	case PermCreateJob:
		return "create-job"
	case PermEditJob:
		return "edit-job"
	case PermRunJob:
		return "run-job"
	case PermApprovePipeline:
		return "approve-pipeline"
	case PermManageNodes:
		return "manage-nodes"
	case PermManageUsers:
		return "manage-users"
	case PermViewConsole:
		return "view-console"
	default:
		return "interact-session"
	}
}

// matrix is the role-based authorization matrix (§3.1).
var matrix = map[Role]map[Permission]bool{
	RoleAdmin: {
		PermCreateJob: true, PermEditJob: true, PermRunJob: true,
		PermApprovePipeline: true, PermManageNodes: true, PermManageUsers: true,
		PermViewConsole: true, PermInteractSession: true,
	},
	RoleExperimenter: {
		PermCreateJob: true, PermEditJob: true, PermRunJob: true,
		PermViewConsole: true, PermInteractSession: true,
	},
	RoleTester: {
		PermInteractSession: true,
	},
	RolePeer: {
		PermRunJob: true, PermViewConsole: true,
	},
}

// Allowed reports whether role may perform perm.
func Allowed(role Role, perm Permission) bool {
	return matrix[role][perm]
}

// User is an authenticated platform member.
type User struct {
	Name  string
	Role  Role
	Token string
}

// Users is the credential store.
type Users struct {
	mu      sync.RWMutex
	byToken map[string]*User
	byName  map[string]*User
	// hook observes membership changes (the WAL append when a store is
	// attached). Called under u.mu; it must not re-enter the store.
	hook func(u User, removed bool)
}

// setHook installs the membership observer. Entries installed via
// restore never reach it.
func (u *Users) setHook(fn func(u User, removed bool)) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.hook = fn
}

// restore reinstates a member with their original token (recovery
// path). An existing entry by the same name — a daemon that re-created
// its bootstrap users before attaching the store — is replaced, so the
// persisted token stays the valid one.
func (u *Users) restore(name string, role Role, token string) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if old, ok := u.byName[name]; ok {
		delete(u.byToken, old.Token)
	}
	user := &User{Name: name, Role: role, Token: token}
	u.byName[name] = user
	u.byToken[token] = user
}

// NewUsers returns an empty store.
func NewUsers() *Users {
	return &Users{byToken: make(map[string]*User), byName: make(map[string]*User)}
}

// Add creates a user and returns its access token.
func (u *Users) Add(name string, role Role) (*User, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if _, dup := u.byName[name]; dup {
		return nil, fmt.Errorf("accessserver: user %q exists", name)
	}
	tok := make([]byte, 16)
	if _, err := rand.Read(tok); err != nil {
		return nil, err
	}
	user := &User{Name: name, Role: role, Token: hex.EncodeToString(tok)}
	u.byToken[user.Token] = user
	u.byName[name] = user
	if u.hook != nil {
		u.hook(*user, false)
	}
	return user, nil
}

// Authenticate resolves a token.
func (u *Users) Authenticate(token string) (*User, error) {
	u.mu.RLock()
	defer u.mu.RUnlock()
	user, ok := u.byToken[token]
	if !ok {
		return nil, fmt.Errorf("accessserver: invalid token")
	}
	return user, nil
}

// Lookup resolves a name.
func (u *Users) Lookup(name string) (*User, error) {
	u.mu.RLock()
	defer u.mu.RUnlock()
	user, ok := u.byName[name]
	if !ok {
		return nil, fmt.Errorf("accessserver: no user %q", name)
	}
	return user, nil
}

// Remove deletes a user.
func (u *Users) Remove(name string) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	user, ok := u.byName[name]
	if !ok {
		return fmt.Errorf("accessserver: no user %q", name)
	}
	delete(u.byName, name)
	delete(u.byToken, user.Token)
	if u.hook != nil {
		u.hook(*user, true)
	}
	return nil
}

// List reports user names sorted.
func (u *Users) List() []string {
	u.mu.RLock()
	defer u.mu.RUnlock()
	out := make([]string, 0, len(u.byName))
	for n := range u.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
