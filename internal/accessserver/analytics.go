package accessserver

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"batterylab/internal/analytics"
	"batterylab/internal/api"
	"batterylab/internal/trace"
)

// Server-side trace analytics: GET /api/v1/builds/{id}/analytics runs
// windowed aggregates over a build's stored binary trace through the
// internal/analytics engine, behind a byte-bounded LRU of marshaled
// response bodies. Cache keys carry the build id, feed epoch, terminal
// state, artifact name and the resolved query, so anything that could
// change the answer — a recovery that re-ran the build, a different
// window — is a different key, and a repeat of the same query is a
// bit-identical body straight from memory.

// defaultTraceArtifact is the artifact the analytics route aggregates
// when ?artifact= is absent: the binary power trace the measurement
// pipeline saves at build finish.
const defaultTraceArtifact = "current.trace"

// serveAnalytics handles one analytics query for an authorized build.
func (s *Server) serveAnalytics(w http.ResponseWriter, r *http.Request, b *Build) {
	start := time.Now()
	q := r.URL.Query()
	artifact := q.Get("artifact")
	if artifact == "" {
		artifact = defaultTraceArtifact
	}
	var windowNS int64
	if ws := q.Get("window"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil || d <= 0 {
			writeAPIError(w, apiError(codeBadRequest, "?window= must be a positive Go duration (e.g. 2s, 500ms)"))
			return
		}
		windowNS = d.Nanoseconds()
	}
	var fields []string
	if fs := q.Get("fields"); fs != "" {
		fields = strings.Split(fs, ",")
	}
	fields, err := analytics.NormalizeFields(fields)
	if err != nil {
		writeAPIError(w, apiError(codeBadRequest, err.Error()))
		return
	}

	// Only finished builds are served: before the terminal transition
	// the trace artifact does not exist (or is mid-replacement during a
	// failover re-run), and a stable answer is what makes it cacheable.
	if st := b.State(); st != StateSuccess && st != StateFailure && st != StateAborted {
		writeError(w, fmt.Errorf("%w: build %d is %s; analytics needs a finished build", ErrConflict, b.ID, st))
		return
	}

	serve := func(body []byte, cache string) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", cache)
		w.Write(body)
		s.m.analyticsLatency.Observe(time.Since(start).Seconds())
	}

	key := fmt.Sprintf("%d|%d|%s|%s|%d|%s",
		b.ID, b.FeedEpoch(), b.State(), artifact, windowNS, strings.Join(fields, ","))
	if body, ok := s.analyticsCache.Get(key); ok {
		s.m.analyticsHits.Inc()
		serve(body, "hit")
		return
	}
	s.m.analyticsMisses.Inc()

	data, err := b.Workspace().Load(artifact)
	if err != nil {
		writeError(w, err)
		return
	}
	tr, err := trace.ReadBinary(bytes.NewReader(data))
	if err != nil {
		writeAPIError(w, apiError(codeInternal, "decoding artifact "+artifact+": "+err.Error()))
		return
	}
	res, err := analytics.Compute(tr, api.AnalyticsQuery{WindowNS: windowNS, Fields: fields, Artifact: artifact})
	if err != nil {
		if errors.Is(err, analytics.ErrBadQuery) {
			writeAPIError(w, apiError(codeBadRequest, err.Error()))
		} else {
			writeError(w, err)
		}
		return
	}
	res.BuildID = b.ID

	body, err := json.Marshal(res)
	if err != nil {
		writeAPIError(w, apiError(codeInternal, "encoding response: "+err.Error()))
		return
	}
	body = append(body, '\n')
	s.analyticsCache.Put(key, body)
	serve(body, "miss")
}
