package accessserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"testing"

	"batterylab/internal/analytics"
	"batterylab/internal/api"
	"batterylab/internal/trace"
)

// readAll drains and closes a response body.
func readBody(t *testing.T, resp interface {
	Close() error
	Read([]byte) (int, error)
}) []byte {
	t.Helper()
	data, err := io.ReadAll(resp)
	resp.Close()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestV1Analytics drives the analytics route end to end: the response
// must equal a direct analytics.Compute over the same stored trace,
// the repeat query must be a bit-identical cache hit, and a different
// query must miss.
func TestV1Analytics(t *testing.T) {
	v := newV1Rig(t)
	url := fmt.Sprintf("/api/v1/builds/%d/analytics?window=1s&fields=mean,energy", v.doneBuild)

	resp := v.request(t, "GET", url, v.admin.Token, "")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first query X-Cache = %q, want miss", got)
	}
	cold := readBody(t, resp.Body)

	// Ground truth: the same engine over the same bytes.
	tr, err := trace.ReadBinary(bytes.NewReader(stubTraceBytes()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := analytics.Compute(tr, api.AnalyticsQuery{
		WindowNS: 1_000_000_000, Fields: []string{"energy", "mean"}, Artifact: "current.trace",
	})
	if err != nil {
		t.Fatal(err)
	}
	want.BuildID = v.doneBuild
	wantJSON, _ := json.Marshal(want)
	wantJSON = append(wantJSON, '\n')
	if !bytes.Equal(cold, wantJSON) {
		t.Fatalf("response does not match direct Compute:\n got %s\nwant %s", cold, wantJSON)
	}

	var res api.AnalyticsResult
	if err := json.Unmarshal(cold, &res); err != nil {
		t.Fatal(err)
	}
	if res.Total.Samples != 4000 || res.Total.MeanMA == nil || math.Abs(*res.Total.MeanMA-150) > 1e-9 {
		t.Fatalf("rollup %+v, want 4000 samples mean 150", res.Total)
	}
	if res.Total.MinMA != nil || res.Total.P50MA != nil {
		t.Fatalf("unrequested fields present: %+v", res.Total)
	}
	if len(res.Buckets) != 4 {
		t.Fatalf("%d buckets, want 4", len(res.Buckets))
	}
	// The step function: first buckets flat at 100 mA, last at 200 mA.
	if *res.Buckets[0].MeanMA != 100 || *res.Buckets[3].MeanMA != 200 {
		t.Fatalf("bucket means %v / %v, want 100 / 200", *res.Buckets[0].MeanMA, *res.Buckets[3].MeanMA)
	}

	// Repeat: bit-identical from the cache.
	resp = v.request(t, "GET", url, v.admin.Token, "")
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat query X-Cache = %q, want hit", got)
	}
	warm := readBody(t, resp.Body)
	if !bytes.Equal(cold, warm) {
		t.Fatal("cache hit body differs from the cold query")
	}

	// A different query is a different key.
	resp = v.request(t, "GET", fmt.Sprintf("/api/v1/builds/%d/analytics?window=2s", v.doneBuild), v.admin.Token, "")
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("different query X-Cache = %q, want miss", got)
	}
	readBody(t, resp.Body)

	snap := v.srv.MetricsSnapshot()
	if mv, ok := snap.Get("blab_analytics_cache_hits_total"); !ok || mv.Value != 1 {
		t.Fatalf("cache hits metric = %+v, want 1", mv)
	}
	if mv, ok := snap.Get("blab_analytics_cache_misses_total"); !ok || mv.Value != 2 {
		t.Fatalf("cache misses metric = %+v, want 2", mv)
	}
}

// TestV1AnalyticsDefaults pins the zero-parameter query: every field,
// no buckets (no window), default artifact.
func TestV1AnalyticsDefaults(t *testing.T) {
	v := newV1Rig(t)
	resp := v.request(t, "GET", fmt.Sprintf("/api/v1/builds/%d/analytics", v.doneBuild), v.admin.Token, "")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var res api.AnalyticsResult
	if err := json.Unmarshal(readBody(t, resp.Body), &res); err != nil {
		t.Fatal(err)
	}
	if res.Artifact != "current.trace" || res.WindowNS != 0 || res.Buckets != nil {
		t.Fatalf("defaults: %+v", res)
	}
	if res.Total.MeanMA == nil || res.Total.MinMA == nil || res.Total.P50MA == nil || res.Total.EnergyMAH == nil {
		t.Fatalf("full field set missing aggregates: %+v", res.Total)
	}
	// 100 mA for 2 s then 200 mA for 2 s ≈ 600 mA·s / 3600 ≈ 0.1667 mAh
	// (trapezoid over the step; exact value pinned by the engine test).
	if e := *res.Total.EnergyMAH; e < 0.15 || e > 0.18 {
		t.Fatalf("energy %v mAh outside the plausible envelope", e)
	}
}
