package accessserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"batterylab/internal/accessserver/store"
	"batterylab/internal/api"
	"batterylab/internal/simclock"
)

// slowBackend compiles every spec into a pipeline that succeeds after
// a fixed simulated duration — enough scheduler surface (dispatch,
// locks, leases) without the full measurement stack.
func slowBackend(clk simclock.Clock, dur time.Duration) SpecBackend {
	return funcBackend(func(spec api.ExperimentSpec) (Constraints, RunFunc, error) {
		cons := Constraints{Node: spec.Node, Device: spec.Device, Fallback: spec.Constraints.AllowFallback}
		run := func(ctx *BuildContext, done func(error)) {
			clk.AfterFunc(dur, func() { done(nil) })
		}
		return cons, run, nil
	})
}

func testSpec(node, device string) api.ExperimentSpec {
	return api.ExperimentSpec{
		Node: node, Device: device,
		Workload: api.WorkloadSpec{Name: "idle", Params: api.Params{"duration_ms": float64(120000)}},
	}
}

// drainServer advances the virtual clock event-by-event until every
// given build is terminal.
func drainServer(t *testing.T, clk *simclock.Virtual, builds []*Build) {
	t.Helper()
	deadline := clk.Now().Add(12 * time.Hour)
	for {
		done := true
		for _, b := range builds {
			switch b.State() {
			case StateSuccess, StateFailure, StateAborted:
			default:
				done = false
			}
		}
		if done {
			return
		}
		next, ok := clk.NextDeadline()
		if !ok {
			t.Fatalf("stalled: no pending timers")
		}
		if next.After(deadline) {
			t.Fatalf("did not finish within the simulated budget")
		}
		clk.RunUntil(next)
	}
}

// TestRecoverControlPlaneState: users (with tokens), jobs (metadata +
// approval), node lifecycle flags and the ledger all survive a
// restart from the WAL.
func TestRecoverControlPlaneState(t *testing.T) {
	dir := t.TempDir()
	r := newRig(t)
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.srv.AttachStore(st); err != nil {
		t.Fatal(err)
	}

	// Mutations after attach are logged: a user, a job (created by an
	// experimenter, approved by the admin), node drain + owner, ledger
	// movements.
	carol, err := r.srv.Users.Add("carol", RoleExperimenter)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.srv.CreateJob(r.exp, "nightly", Constraints{Node: "node1"}, noopJob); err != nil {
		t.Fatal(err)
	}
	if err := r.srv.ApproveJob(r.admin, "nightly"); err != nil {
		t.Fatal(err)
	}
	if err := r.srv.MonitorNode("node1"); err != nil {
		t.Fatal(err)
	}
	r.srv.SetNodeOwner("node1", "carol")
	if err := r.srv.DrainNode(r.admin, "node1"); err != nil {
		t.Fatal(err)
	}
	r.srv.Ledger.Grant("carol", 30, "starter grant")
	r.srv.Ledger.DebitExperiment("carol", 5*time.Minute)
	st.Close()

	// Restart: fresh server on the same directory. The node registers
	// first (handles are live objects), then the store attaches.
	r2 := newRig(t)
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := r2.srv.AttachStore(st2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Users != 4 || stats.Jobs != 1 {
		t.Fatalf("stats = %+v, want 4 users and 1 job", stats)
	}

	// Tokens survive — including carol's, and the newRig-created bob is
	// replaced by the persisted bob (same name, persisted token wins).
	if _, err := r2.srv.Users.Authenticate(carol.Token); err != nil {
		t.Fatalf("carol's token did not survive: %v", err)
	}
	// The job is back with its approval but without its closure body.
	j, err := r2.srv.Job("nightly")
	if err != nil {
		t.Fatal(err)
	}
	if !j.Approved() || j.Runnable() {
		t.Fatalf("recovered job approved=%v runnable=%v, want approved and not runnable", j.Approved(), j.Runnable())
	}
	if _, err := r2.srv.Submit(r2.admin, "nightly"); !errors.Is(err, ErrConflict) {
		t.Fatalf("submit of body-less job = %v, want ErrConflict", err)
	}
	// Re-editing reinstalls the body and makes it runnable again.
	if err := r2.srv.EditJob(r2.admin, "nightly", Constraints{Node: "node1"}, noopJob); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.srv.Submit(r2.admin, "nightly"); err != nil {
		t.Fatalf("submit after re-edit: %v", err)
	}
	// Drain flag and owner survived.
	if !r2.srv.NodeHealth("node1").Draining {
		t.Fatal("drain flag lost in restart")
	}
	// Ledger balance and history replay exactly.
	if got, want := r2.srv.Ledger.Balance("carol"), 25.0; got != want {
		t.Fatalf("carol balance = %v, want %v", got, want)
	}
	if h := r2.srv.Ledger.History("carol"); len(h) != 2 || h[0].Reason != "starter grant" {
		t.Fatalf("carol history = %+v", h)
	}
}

// TestRecoverBuilds: a campaign crashes with two builds running and
// one queued. After restart the running builds go through the
// failover contract (retry, failover feed event), the queued one
// re-enqueues, and the campaign completes — while an already-finished
// build's wire status comes back byte-identical (modulo the explicit
// recovered marker).
func TestRecoverBuilds(t *testing.T) {
	dir := t.TempDir()
	clk := simclock.NewVirtual()
	srv := New(clk, Config{Executors: 2})
	srv.SetSpecBackend(slowBackend(clk, 2*time.Minute))
	if err := srv.Nodes.Register(staticNode{name: "node1"}); err != nil {
		t.Fatal(err)
	}
	admin, _ := srv.Users.Add("alice", RoleAdmin)
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.AttachStore(st); err != nil {
		t.Fatal(err)
	}

	// A standalone build that finishes before the crash.
	fin, err := srv.SubmitSpec(admin, testSpec("node1", "devA"))
	if err != nil {
		t.Fatal(err)
	}
	drainServer(t, clk, []*Build{fin})
	if fin.State() != StateSuccess {
		t.Fatalf("pre-crash build state = %v", fin.State())
	}
	preStatus, err := json.Marshal(buildStatus(fin))
	if err != nil {
		t.Fatal(err)
	}

	// The campaign: three builds on distinct devices; two dispatch
	// (executor cap), one stays queued. Then the "crash".
	cs := api.CampaignSpec{Experiments: []api.ExperimentSpec{
		testSpec("node1", "dev1"), testSpec("node1", "dev2"), testSpec("node1", "dev3"),
	}}
	campID, builds, err := srv.SubmitCampaign(admin, cs)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(30 * time.Second)
	if builds[0].State() != StateRunning || builds[1].State() != StateRunning || builds[2].State() != StateQueued {
		t.Fatalf("pre-crash states = %v %v %v", builds[0].State(), builds[1].State(), builds[2].State())
	}
	st.Close() // crash: the server object is abandoned mid-campaign

	// Restart on a fresh clock and server.
	clk2 := simclock.NewVirtual()
	srv2 := New(clk2, Config{Executors: 2})
	srv2.SetSpecBackend(slowBackend(clk2, 2*time.Minute))
	if err := srv2.Nodes.Register(staticNode{name: "node1"}); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := srv2.AttachStore(st2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed != 2 || stats.Requeued != 1 {
		t.Fatalf("stats = %+v, want 2 resumed + 1 requeued", stats)
	}

	// The finished build's status is byte-identical apart from the
	// recovery marker and the (empty) feed counters.
	rb, err := srv2.Build(fin.ID)
	if err != nil {
		t.Fatal(err)
	}
	stRec := buildStatus(rb)
	if !stRec.Recovered {
		t.Fatal("recovered build not marked recovered")
	}
	if stRec.FeedEpoch != 1 {
		t.Fatalf("recovered build feed_epoch = %d, want 1 (one feed restart)", stRec.FeedEpoch)
	}
	// Recovered and FeedEpoch are the explicit recovery markers; the
	// rest of the status must be byte-identical.
	stRec.Recovered = false
	stRec.FeedEpoch = 0
	postStatus, err := json.Marshal(stRec)
	if err != nil {
		t.Fatal(err)
	}
	if string(preStatus) != string(postStatus) {
		t.Fatalf("finished build status changed across restart:\n pre %s\npost %s", preStatus, postStatus)
	}

	// Campaign membership is intact; the interrupted builds carry a
	// failover event and a consumed retry.
	ids, err := srv2.CampaignBuildIDs(campID)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("campaign has %d builds, want 3", len(ids))
	}
	var members []*Build
	for _, id := range ids {
		b, err := srv2.Build(id)
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, b)
	}
	if members[0].Retries() != 1 {
		t.Fatalf("interrupted build retries = %d, want 1", members[0].Retries())
	}
	evs, _, _ := members[0].Feed().EventsSince(0)
	sawFailover := false
	for _, e := range evs {
		if e.Phase == api.EventFailover && strings.Contains(e.Error, "restarted") {
			sawFailover = true
		}
	}
	if !sawFailover {
		t.Fatal("no restart failover event on the interrupted build's feed")
	}

	// The campaign runs to completion after restart.
	drainServer(t, clk2, members)
	for i, b := range members {
		if b.State() != StateSuccess {
			t.Fatalf("post-restart build %d state = %v (%v)", i, b.State(), b.Err())
		}
	}
}

// TestRecoverRetryBudgetSpent: a build that already burned its
// failover budget and was running at the crash fails with the typed
// ErrNodeLost instead of looping forever.
func TestRecoverRetryBudgetSpent(t *testing.T) {
	dir := t.TempDir()
	clk := simclock.NewVirtual()
	srv := New(clk, Config{MaxRetries: -1}) // negative = zero budget
	srv.SetSpecBackend(slowBackend(clk, 2*time.Minute))
	if err := srv.Nodes.Register(staticNode{name: "node1"}); err != nil {
		t.Fatal(err)
	}
	admin, _ := srv.Users.Add("alice", RoleAdmin)
	st, _ := store.Open(dir)
	if _, err := srv.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	b, err := srv.SubmitSpec(admin, testSpec("node1", "dev1"))
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * time.Second)
	if b.State() != StateRunning {
		t.Fatalf("state = %v, want running", b.State())
	}
	st.Close()

	clk2 := simclock.NewVirtual()
	srv2 := New(clk2, Config{MaxRetries: -1})
	srv2.SetSpecBackend(slowBackend(clk2, 2*time.Minute))
	srv2.Nodes.Register(staticNode{name: "node1"})
	st2, _ := store.Open(dir)
	stats, err := srv2.AttachStore(st2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 1 {
		t.Fatalf("stats = %+v, want 1 failed", stats)
	}
	rb, err := srv2.Build(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rb.State() != StateFailure || !errors.Is(rb.Err(), ErrNodeLost) {
		t.Fatalf("state=%v err=%v, want failure wrapping ErrNodeLost", rb.State(), rb.Err())
	}
}

// TestRecoverCanceledRunningBuild: an abort of a running build that
// never settled before the crash recovers as aborted — not as a rerun
// of an experiment its owner canceled.
func TestRecoverCanceledRunningBuild(t *testing.T) {
	dir := t.TempDir()
	clk := simclock.NewVirtual()
	srv := New(clk, Config{})
	srv.SetSpecBackend(slowBackend(clk, 2*time.Minute))
	srv.Nodes.Register(staticNode{name: "node1"})
	admin, _ := srv.Users.Add("alice", RoleAdmin)
	st, _ := store.Open(dir)
	if _, err := srv.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	b, err := srv.SubmitSpec(admin, testSpec("node1", "dev1"))
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * time.Second)
	if b.State() != StateRunning {
		t.Fatalf("state = %v, want running", b.State())
	}
	// slowBackend registers no cancel hook, so the abort arms the
	// pending flag and the build stays running — then the crash.
	if err := srv.Abort(admin, b.ID); err != nil {
		t.Fatal(err)
	}
	st.Close()

	clk2 := simclock.NewVirtual()
	srv2 := New(clk2, Config{})
	srv2.SetSpecBackend(slowBackend(clk2, 2*time.Minute))
	srv2.Nodes.Register(staticNode{name: "node1"})
	st2, _ := store.Open(dir)
	if _, err := srv2.AttachStore(st2); err != nil {
		t.Fatal(err)
	}
	rb, err := srv2.Build(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rb.State() != StateAborted {
		t.Fatalf("recovered state = %v, want aborted", rb.State())
	}
	if !rb.CancelRequested() {
		t.Fatal("recovered build lost its canceled marker")
	}
}

// TestRecoveredTombstonesStayExpired: builds evicted to tombstones
// before the crash still answer ErrExpired after recovery.
func TestRecoveredTombstonesStayExpired(t *testing.T) {
	dir := t.TempDir()
	clk := simclock.NewVirtual()
	srv := New(clk, Config{Retention: time.Hour})
	srv.SetSpecBackend(slowBackend(clk, time.Minute))
	srv.Nodes.Register(staticNode{name: "node1"})
	admin, _ := srv.Users.Add("alice", RoleAdmin)
	st, _ := store.Open(dir)
	if _, err := srv.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	b, err := srv.SubmitSpec(admin, testSpec("node1", "dev1"))
	if err != nil {
		t.Fatal(err)
	}
	drainServer(t, clk, []*Build{b})
	clk.Advance(2 * time.Hour) // past retention: evicted to a tombstone
	if _, err := srv.Build(b.ID); !errors.Is(err, ErrExpired) {
		t.Fatalf("pre-crash expired build err = %v", err)
	}
	st.Close()

	clk2 := simclock.NewVirtual()
	srv2 := New(clk2, Config{Retention: time.Hour})
	srv2.SetSpecBackend(slowBackend(clk2, time.Minute))
	srv2.Nodes.Register(staticNode{name: "node1"})
	st2, _ := store.Open(dir)
	if _, err := srv2.AttachStore(st2); err != nil {
		t.Fatal(err)
	}
	if _, err := srv2.Build(b.ID); !errors.Is(err, ErrExpired) {
		t.Fatalf("post-restart expired build err = %v, want ErrExpired", err)
	}
}

// TestSnapshotCompactionRoundTrip: state recovered from snapshot+WAL
// equals state recovered from WAL alone.
func TestSnapshotCompactionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	clk := simclock.NewVirtual()
	srv := New(clk, Config{})
	srv.SetSpecBackend(slowBackend(clk, time.Minute))
	srv.Nodes.Register(staticNode{name: "node1"})
	admin, _ := srv.Users.Add("alice", RoleAdmin)
	st, _ := store.Open(dir)
	if _, err := srv.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	b1, err := srv.SubmitSpec(admin, testSpec("node1", "dev1"))
	if err != nil {
		t.Fatal(err)
	}
	drainServer(t, clk, []*Build{b1})
	if err := srv.CompactStore(); err != nil {
		t.Fatal(err)
	}
	if st.Appended() != 0 {
		t.Fatalf("WAL not truncated by compaction: %d records", st.Appended())
	}
	// More state on top of the snapshot.
	b2, err := srv.SubmitSpec(admin, testSpec("node1", "dev2"))
	if err != nil {
		t.Fatal(err)
	}
	drainServer(t, clk, []*Build{b2})
	st.Close()

	clk2 := simclock.NewVirtual()
	srv2 := New(clk2, Config{})
	srv2.SetSpecBackend(slowBackend(clk2, time.Minute))
	srv2.Nodes.Register(staticNode{name: "node1"})
	st2, _ := store.Open(dir)
	stats, err := srv2.AttachStore(st2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Builds != 2 {
		t.Fatalf("recovered %d builds, want 2 (one from snapshot, one from WAL)", stats.Builds)
	}
	for _, id := range []int{b1.ID, b2.ID} {
		rb, err := srv2.Build(id)
		if err != nil {
			t.Fatal(err)
		}
		if rb.State() != StateSuccess {
			t.Fatalf("build %d state = %v, want success", id, rb.State())
		}
	}
}

// TestPeriodicCompaction: the snapshot ticker compacts the WAL on the
// server clock once records accumulate.
func TestPeriodicCompaction(t *testing.T) {
	dir := t.TempDir()
	clk := simclock.NewVirtual()
	srv := New(clk, Config{SnapshotEvery: 5 * time.Minute})
	st, _ := store.Open(dir)
	if _, err := srv.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Users.Add("dana", RoleExperimenter); err != nil {
		t.Fatal(err)
	}
	if st.Appended() == 0 {
		t.Fatal("user creation not logged")
	}
	clk.Advance(6 * time.Minute)
	if st.Appended() != 0 {
		t.Fatalf("ticker did not compact: %d records pending", st.Appended())
	}
	snap, _ := st.Load()
	if snap == nil || len(snap.Users) != 1 {
		t.Fatalf("snapshot missing the user: %+v", snap)
	}
}

// staticNode is a minimal always-up Node.
type staticNode struct{ name string }

func (n staticNode) Name() string { return n.name }
func (n staticNode) Exec(cmd string, args ...string) (string, error) {
	if cmd == "list_devices" {
		return "dev1\ndev2\ndev3", nil
	}
	return "ok", nil
}

// Ping implements Pinger so heartbeat probes run synchronously on the
// clock goroutine — deterministic under the virtual clock.
func (n staticNode) Ping() error { return nil }

// TestCreditGateAndCharge: with enforcement on, an experimenter with
// no credits is rejected with the typed error; granted credits they
// run, and the finished build debits its actual device time.
func TestCreditGateAndCharge(t *testing.T) {
	clk := simclock.NewVirtual()
	srv := New(clk, Config{EnforceCredits: true})
	srv.SetSpecBackend(slowBackend(clk, 2*time.Minute))
	srv.Nodes.Register(staticNode{name: "node1"})
	admin, _ := srv.Users.Add("alice", RoleAdmin)
	exp, _ := srv.Users.Add("bob", RoleExperimenter)

	if _, err := srv.SubmitSpec(exp, testSpec("node1", "dev1")); !errors.Is(err, ErrInsufficientCredits) {
		t.Fatalf("broke submit err = %v, want ErrInsufficientCredits", err)
	}
	// Campaigns gate on the whole batch.
	cs := api.CampaignSpec{Experiments: []api.ExperimentSpec{
		testSpec("node1", "dev1"), testSpec("node1", "dev2"),
	}}
	srv.Ledger.Grant("bob", 1.5, "not enough for two")
	if _, _, err := srv.SubmitCampaign(exp, cs); !errors.Is(err, ErrInsufficientCredits) {
		t.Fatalf("campaign submit err = %v, want ErrInsufficientCredits", err)
	}
	// Admins are exempt.
	if _, err := srv.SubmitSpec(admin, testSpec("node1", "dev3")); err != nil {
		t.Fatalf("admin submit gated: %v", err)
	}

	srv.Ledger.Grant("bob", 8.5, "starter grant") // now 10
	b, err := srv.SubmitSpec(exp, testSpec("node1", "dev1"))
	if err != nil {
		t.Fatalf("funded submit: %v", err)
	}
	drainServer(t, clk, []*Build{b})
	if b.State() != StateSuccess {
		t.Fatalf("state = %v (%v)", b.State(), b.Err())
	}
	// The 2-minute run cost 2 credits: 10 - 2 = 8.
	if got := srv.Ledger.Balance("bob"); got != 8 {
		t.Fatalf("post-run balance = %v, want 8", got)
	}
}

// TestContributionAccrual: heartbeats of an owned monitored node
// accrue the §5 contribution credits for attested online time,
// flushed to the ledger in coalesced 15-minute lumps (one history
// entry per lump, not per beat).
func TestContributionAccrual(t *testing.T) {
	clk := simclock.NewVirtual()
	srv := New(clk, Config{})
	srv.Nodes.Register(staticNode{name: "node1"})
	if err := srv.MonitorNode("node1"); err != nil {
		t.Fatal(err)
	}
	srv.SetNodeOwner("node1", "carol")
	clk.Advance(time.Hour)
	// One hour of 15 s heartbeats at ContributionRate 4/h ≈ 4 credits.
	got := srv.Ledger.Balance("carol")
	if got < 3.9 || got > 4.1 {
		t.Fatalf("carol accrued %v credits over an hour, want ~4", got)
	}
	// Coalescing: an hour of 15 s beats lands as ~4 flush entries, not
	// ~240 per-beat rows.
	if h := srv.Ledger.History("carol"); len(h) > 5 {
		t.Fatalf("contribution history has %d entries for one hour, want coalesced (~4)", len(h))
	}
	// Accrual keeps flowing in lumps: another half hour adds ~2 more.
	before := srv.Ledger.Balance("carol")
	clk.Advance(30 * time.Minute)
	after := srv.Ledger.Balance("carol")
	if after <= before {
		t.Fatalf("no accrual across 30 minutes: %v -> %v", before, after)
	}
	// An ownership transfer flushes the outgoing owner's sub-threshold
	// remainder instead of handing it to the successor.
	clk.Advance(10 * time.Minute) // below the 15m lump: owed, unflushed
	preTransfer := srv.Ledger.Balance("carol")
	srv.SetNodeOwner("node1", "dave")
	if got := srv.Ledger.Balance("carol"); got <= preTransfer {
		t.Fatalf("transfer did not flush carol's owed hosting: %v -> %v", preTransfer, got)
	}
	if got := srv.Ledger.Balance("dave"); got != 0 {
		t.Fatalf("dave inherited %v credits of carol's hosting time", got)
	}
}

// TestInsufficientCreditsOverV1: the typed rejection crosses the wire
// as a 402 with code insufficient_credits.
func TestInsufficientCreditsOverV1(t *testing.T) {
	clk := simclock.NewVirtual()
	srv := New(clk, Config{EnforceCredits: true})
	srv.SetSpecBackend(slowBackend(clk, time.Minute))
	srv.Nodes.Register(staticNode{name: "node1"})
	exp, _ := srv.Users.Add("bob", RoleExperimenter)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := strings.NewReader(`{"node":"node1","device":"dev1","workload":{"name":"idle"}}`)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/experiments", body)
	req.Header.Set("Authorization", "Bearer "+exp.Token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusPaymentRequired {
		t.Fatalf("status = %d, want 402", resp.StatusCode)
	}
	var env api.Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error == nil || env.Error.Code != api.CodeInsufficientCredits {
		t.Fatalf("envelope = %+v, want code insufficient_credits", env.Error)
	}
}

// TestNodeOwnerRoute: ownership — the earning half of the §5 economy —
// is assignable over the v1 API, admin-gated, and starts accrual.
func TestNodeOwnerRoute(t *testing.T) {
	clk := simclock.NewVirtual()
	srv := New(clk, Config{})
	srv.Nodes.Register(staticNode{name: "node1"})
	if err := srv.MonitorNode("node1"); err != nil {
		t.Fatal(err)
	}
	admin, _ := srv.Users.Add("alice", RoleAdmin)
	exp, _ := srv.Users.Add("bob", RoleExperimenter)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(token, node, owner string) int {
		body := strings.NewReader(fmt.Sprintf(`{"owner":%q}`, owner))
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/nodes/"+node+"/owner", body)
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(exp.Token, "node1", "bob"); code != http.StatusForbidden {
		t.Fatalf("experimenter set owner: status %d, want 403", code)
	}
	if code := post(admin.Token, "ghost", "bob"); code != http.StatusNotFound {
		t.Fatalf("unknown node: status %d, want 404", code)
	}
	if code := post(admin.Token, "node1", "nobody"); code != http.StatusNotFound {
		t.Fatalf("unknown member: status %d, want 404", code)
	}
	if code := post(admin.Token, "node1", "bob"); code != http.StatusOK {
		t.Fatalf("admin set owner: status %d, want 200", code)
	}
	clk.Advance(time.Hour)
	if got := srv.Ledger.Balance("bob"); got < 3.9 {
		t.Fatalf("bob accrued %v over an hour of hosting, want ~4", got)
	}
}

// TestDroppedCountersOnStatus: feed losses surface in the wire status
// instead of silently truncating the replay.
func TestDroppedCountersOnStatus(t *testing.T) {
	clk := simclock.NewVirtual()
	srv := New(clk, Config{})
	srv.SetSpecBackend(funcBackend(func(spec api.ExperimentSpec) (Constraints, RunFunc, error) {
		run := func(ctx *BuildContext, done func(error)) {
			feed := ctx.Build.Feed()
			for i := 0; i < feedEventCap+5; i++ {
				feed.PostEvent(api.BuildEvent{Build: ctx.Build.ID, Phase: "workload"})
			}
			for i := 0; i < 3; i++ {
				feed.PostSample(api.SamplePoint{AtNS: int64(i), CurrentMA: 1})
			}
			done(nil)
		}
		return Constraints{Node: spec.Node}, run, nil
	}))
	srv.Nodes.Register(staticNode{name: "node1"})
	admin, _ := srv.Users.Add("alice", RoleAdmin)
	b, err := srv.SubmitSpec(admin, testSpec("node1", "dev1"))
	if err != nil {
		t.Fatal(err)
	}
	drainServer(t, clk, []*Build{b})
	st := buildStatus(b)
	if st.DroppedEvents != 5 {
		t.Fatalf("dropped_events = %d, want 5", st.DroppedEvents)
	}
	if st.DroppedSamples != 0 {
		t.Fatalf("dropped_samples = %d, want 0", st.DroppedSamples)
	}
}

// TestSampleStreamCursor: GET /builds/{id}/samples honors ?from= so a
// reconnecting client resumes instead of replaying (or losing) the
// prefix.
func TestSampleStreamCursor(t *testing.T) {
	clk := simclock.NewVirtual()
	srv := New(clk, Config{})
	srv.SetSpecBackend(funcBackend(func(spec api.ExperimentSpec) (Constraints, RunFunc, error) {
		run := func(ctx *BuildContext, done func(error)) {
			for i := 0; i < 5; i++ {
				ctx.Build.Feed().PostSample(api.SamplePoint{AtNS: int64(i), CurrentMA: float64(i)})
			}
			done(nil)
		}
		return Constraints{Node: spec.Node}, run, nil
	}))
	srv.Nodes.Register(staticNode{name: "node1"})
	admin, _ := srv.Users.Add("alice", RoleAdmin)
	b, err := srv.SubmitSpec(admin, testSpec("node1", "dev1"))
	if err != nil {
		t.Fatal(err)
	}
	drainServer(t, clk, []*Build{b})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet,
		fmt.Sprintf("%s/api/v1/builds/%d/samples?format=ndjson&from=3", ts.URL, b.ID), nil)
	req.Header.Set("Authorization", "Bearer "+admin.Token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	var got []api.SamplePoint
	for dec.More() {
		var p api.SamplePoint
		if err := dec.Decode(&p); err != nil {
			t.Fatal(err)
		}
		got = append(got, p)
	}
	if len(got) != 2 || got[0].AtNS != 3 || got[1].AtNS != 4 {
		t.Fatalf("?from=3 returned %+v, want samples 3 and 4", got)
	}
}
