package accessserver

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"batterylab/internal/api"
)

// Handler returns the web console's REST API. Every request needs a
// valid user token in the Authorization header ("Bearer <token>"); the
// role matrix gates each route. In deployment this sits behind HTTPS
// only (§3.1) — transport security is the listener's concern.
//
// Legacy console routes (all read routes are GET-only; the mux rejects
// other methods with 405):
//
//	GET  /api/nodes                 list vantage points
//	GET  /api/nodes/{name}/devices  list a node's devices
//	GET  /api/jobs                  list jobs
//	POST /api/jobs/{name}/build     queue a build
//	POST /api/jobs/{name}/approve   approve current revision (admin)
//	GET  /api/builds/{id}           build status
//	GET  /api/builds/{id}/log       console log
//	GET  /api/builds/{id}/artifacts artifact names
//
// The versioned remote-execution API (see internal/api for the wire
// schema) is mounted under /api/v1/ by handlerV1 in httpv1.go.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /api/nodes", func(w http.ResponseWriter, r *http.Request) {
		if s.auth(w, r, PermViewConsole) == nil {
			return
		}
		writeJSON(w, http.StatusOK, s.Nodes.List())
	})
	mux.HandleFunc("GET /api/nodes/{name}/devices", func(w http.ResponseWriter, r *http.Request) {
		if s.auth(w, r, PermViewConsole) == nil {
			return
		}
		devs, err := s.Nodes.Devices(r.PathValue("name"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, devs)
	})
	mux.HandleFunc("GET /api/jobs", func(w http.ResponseWriter, r *http.Request) {
		if s.auth(w, r, PermViewConsole) == nil {
			return
		}
		writeJSON(w, http.StatusOK, s.Jobs())
	})
	mux.HandleFunc("POST /api/jobs/{name}/build", func(w http.ResponseWriter, r *http.Request) {
		user := s.auth(w, r, PermRunJob)
		if user == nil {
			return
		}
		b, err := s.Submit(user, r.PathValue("name"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"build": b.ID, "state": b.State().String()})
	})
	mux.HandleFunc("POST /api/jobs/{name}/approve", func(w http.ResponseWriter, r *http.Request) {
		user := s.auth(w, r, PermApprovePipeline)
		if user == nil {
			return
		}
		if err := s.ApproveJob(user, r.PathValue("name")); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"approved": true})
	})
	mux.HandleFunc("GET /api/builds/{id}", func(w http.ResponseWriter, r *http.Request) {
		b := s.buildFromPath(w, r)
		if b == nil {
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"id":    b.ID,
			"job":   b.Job,
			"state": b.State().String(),
		})
	})
	mux.HandleFunc("GET /api/builds/{id}/log", func(w http.ResponseWriter, r *http.Request) {
		b := s.buildFromPath(w, r)
		if b == nil {
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(b.Log()))
	})
	mux.HandleFunc("GET /api/builds/{id}/artifacts", func(w http.ResponseWriter, r *http.Request) {
		b := s.buildFromPath(w, r)
		if b == nil {
			return
		}
		writeJSON(w, http.StatusOK, b.Workspace().List())
	})

	s.handlerV1(mux)
	s.handlerOps(mux)
	return s.instrument(mux)
}

// auth authenticates the bearer token and checks the permission,
// writing the error response itself on failure.
func (s *Server) auth(w http.ResponseWriter, r *http.Request, perm Permission) *User {
	tok := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(tok) > len(prefix) && tok[:len(prefix)] == prefix {
		tok = tok[len(prefix):]
	}
	user, err := s.Users.Authenticate(tok)
	if err != nil {
		if tok != "" && s.cluster.Authorize(tok) {
			// A federated peer holding the shared cluster token: it acts
			// as the synthetic "cluster" principal, whose RolePeer grants
			// exactly what relaying a build needs (submit, status,
			// streams, cancel).
			user = &User{Name: "cluster", Role: RolePeer}
		} else {
			writeAPIError(w, apiError(codeUnauthorized, "missing or invalid token"))
			return nil
		}
	}
	if !Allowed(user.Role, perm) {
		writeAPIError(w, apiError(codeForbidden,
			"role "+user.Role.String()+" may not "+perm.String()))
		return nil
	}
	return user
}

// buildFromPath resolves the {id} path segment to a build, writing the
// error response (400 for a malformed id, 404 for a missing build)
// itself. Authentication runs first.
func (s *Server) buildFromPath(w http.ResponseWriter, r *http.Request) *Build {
	if s.auth(w, r, PermViewConsole) == nil {
		return nil
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeAPIError(w, apiError(codeBadRequest, "build id must be an integer"))
		return nil
	}
	b, err := s.Build(id)
	if err != nil {
		writeError(w, err)
		return nil
	}
	return b
}

// writeJSON marshals v up front (so encoding failures can still produce
// a 500 instead of a half-written 200), sets the status and writes the
// body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		writeAPIError(w, apiError(codeInternal, "encoding response: "+err.Error()))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// writeError maps a server error to its HTTP status via the typed
// sentinels and writes the v1 error envelope. Unrecognized errors are
// internal (500) — never the blanket 409 of the original console.
func writeError(w http.ResponseWriter, err error) {
	code := codeInternal
	switch {
	case errors.Is(err, ErrExpired):
		// The resource existed but aged out of retention; only the v1
		// build-status route serves the explicit "expired" marker.
		code = codeNotFound
	case errors.Is(err, ErrJobDeleted):
		code = codeNotFound
	case errors.Is(err, ErrNotFound):
		code = codeNotFound
	case errors.Is(err, ErrForbidden):
		code = codeForbidden
	case errors.Is(err, ErrInvalid):
		code = codeBadRequest
	case errors.Is(err, ErrConflict):
		code = codeConflict
	case errors.Is(err, ErrInsufficientCredits):
		// 402: the §5 credit economy rejected the submission.
		code = api.CodeInsufficientCredits
	case errors.Is(err, ErrPeerUnavailable):
		// 503: the submission's only matching vantage point lives on a
		// federated peer that is not online right now. Retry-After hints
		// one peer heartbeat interval — transient by definition.
		if d := RetryAfterOf(err); d > 0 {
			secs := int((d + time.Second - 1) / time.Second)
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		writeAPIError(w, apiError(api.CodePeerUnavailable, err.Error()))
		return
	case errors.Is(err, ErrOverloaded):
		// 429: admission control shed the submission. The envelope
		// carries the typed shed reason so clients can branch without
		// parsing the message.
		e := apiError(api.CodeOverloaded, err.Error())
		e.ShedReason = ShedReasonOf(err)
		writeAPIError(w, e)
		return
	}
	writeAPIError(w, apiError(code, err.Error()))
}
