package accessserver

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
)

// Handler returns the web console's REST API. Every request needs a
// valid user token in the Authorization header ("Bearer <token>"); the
// role matrix gates each route. In deployment this sits behind HTTPS
// only (§3.1) — transport security is the listener's concern.
//
//	GET  /api/nodes                 list vantage points
//	GET  /api/nodes/{name}/devices  list a node's devices
//	GET  /api/jobs                  list jobs
//	POST /api/jobs/{name}/build     queue a build
//	POST /api/jobs/{name}/approve   approve current revision (admin)
//	GET  /api/builds/{id}           build status
//	GET  /api/builds/{id}/log       console log
//	GET  /api/builds/{id}/artifacts artifact names
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()

	auth := func(w http.ResponseWriter, r *http.Request, perm Permission) *User {
		tok := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
		user, err := s.Users.Authenticate(tok)
		if err != nil {
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return nil
		}
		if !Allowed(user.Role, perm) {
			http.Error(w, "forbidden for role "+user.Role.String(), http.StatusForbidden)
			return nil
		}
		return user
	}

	mux.HandleFunc("/api/nodes", func(w http.ResponseWriter, r *http.Request) {
		if auth(w, r, PermViewConsole) == nil {
			return
		}
		writeJSON(w, s.Nodes.List())
	})
	mux.HandleFunc("/api/nodes/", func(w http.ResponseWriter, r *http.Request) {
		if auth(w, r, PermViewConsole) == nil {
			return
		}
		rest := strings.TrimPrefix(r.URL.Path, "/api/nodes/")
		name, tail, _ := strings.Cut(rest, "/")
		if tail != "devices" {
			http.NotFound(w, r)
			return
		}
		devs, err := s.Nodes.Devices(name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, devs)
	})
	mux.HandleFunc("/api/jobs", func(w http.ResponseWriter, r *http.Request) {
		if auth(w, r, PermViewConsole) == nil {
			return
		}
		writeJSON(w, s.Jobs())
	})
	mux.HandleFunc("/api/jobs/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/api/jobs/")
		name, action, _ := strings.Cut(rest, "/")
		switch {
		case action == "build" && r.Method == http.MethodPost:
			user := auth(w, r, PermRunJob)
			if user == nil {
				return
			}
			b, err := s.Submit(user, name)
			if err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			writeJSON(w, map[string]any{"build": b.ID, "state": b.State().String()})
		case action == "approve" && r.Method == http.MethodPost:
			user := auth(w, r, PermApprovePipeline)
			if user == nil {
				return
			}
			if err := s.ApproveJob(user, name); err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			writeJSON(w, map[string]any{"approved": true})
		default:
			http.NotFound(w, r)
		}
	})
	mux.HandleFunc("/api/builds/", func(w http.ResponseWriter, r *http.Request) {
		if auth(w, r, PermViewConsole) == nil {
			return
		}
		rest := strings.TrimPrefix(r.URL.Path, "/api/builds/")
		idStr, sub, _ := strings.Cut(rest, "/")
		id, err := strconv.Atoi(idStr)
		if err != nil {
			http.Error(w, "bad build id", http.StatusBadRequest)
			return
		}
		b, err := s.Build(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		switch sub {
		case "":
			writeJSON(w, map[string]any{
				"id":    b.ID,
				"job":   b.Job,
				"state": b.State().String(),
			})
		case "log":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write([]byte(b.Log()))
		case "artifacts":
			writeJSON(w, b.Workspace().List())
		default:
			http.NotFound(w, r)
		}
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
