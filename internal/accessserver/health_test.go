package accessserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"batterylab/internal/api"
	"batterylab/internal/controller"
	"batterylab/internal/simclock"
)

// fakeVP is an instant in-process vantage point for scheduler tests:
// pings succeed, one synthetic device, no hardware behind it.
type fakeVP struct{ name string }

func (n fakeVP) Name() string { return n.name }
func (n fakeVP) Ping() error  { return nil }
func (n fakeVP) Exec(cmd string, args ...string) (string, error) {
	switch cmd {
	case "ping":
		return "pong", nil
	case "list_devices":
		return "dev-" + n.name, nil
	}
	return "", nil
}

// faultCfg is the compressed health timeline the fault tests run on.
func faultCfg() Config {
	return Config{
		HeartbeatEvery: time.Second,
		SuspectAfter:   2 * time.Second,
		OfflineAfter:   4 * time.Second,
		RetryBackoff:   2 * time.Second,
		MaxRetries:     2,
		PendingTimeout: time.Minute,
	}
}

// hangingBackend compiles specs into pipelines that complete after 10 s
// only if the node still answers — a run on a dead vantage point hangs,
// which is exactly the failure mode the lease watchdog breaks.
type hangingBackend struct{ clk simclock.Clock }

func (b hangingBackend) Compile(spec api.ExperimentSpec) (Constraints, RunFunc, error) {
	cons := Constraints{Node: spec.Node, Device: spec.Device, Fallback: spec.Constraints.AllowFallback}
	return cons, func(ctx *BuildContext, done func(error)) {
		b.clk.AfterFunc(10*time.Second, func() {
			if _, err := ctx.Node.Exec("ping"); err != nil {
				return // node dead: the pipeline never reports back
			}
			done(nil)
		})
	}, nil
}

func (hangingBackend) WorkloadNames() []string { return []string{"hang"} }

func TestNodeHealthLifecycle(t *testing.T) {
	clk := simclock.NewVirtual()
	srv := New(clk, faultCfg())
	flk := NewFlakyNode(fakeVP{name: "vp1"})
	if err := srv.RegisterNode(flk); err != nil {
		t.Fatal(err)
	}

	if h := srv.NodeHealth("vp1").Health; h != HealthOnline {
		t.Fatalf("fresh node health = %v", h)
	}
	clk.Advance(10 * time.Second)
	if h := srv.NodeHealth("vp1").Health; h != HealthOnline {
		t.Fatalf("beating node health = %v", h)
	}

	flk.Kill()
	clk.Advance(2 * time.Second)
	if h := srv.NodeHealth("vp1").Health; h != HealthSuspect {
		t.Fatalf("health after %v silence = %v, want suspect", 2*time.Second, h)
	}
	clk.Advance(2 * time.Second)
	if h := srv.NodeHealth("vp1").Health; h != HealthOffline {
		t.Fatalf("health after %v silence = %v, want offline", 4*time.Second, h)
	}

	flk.Revive()
	clk.Advance(time.Second) // next heartbeat probe
	if h := srv.NodeHealth("vp1").Health; h != HealthOnline {
		t.Fatalf("health after revival = %v, want online", h)
	}

	// Unmonitored nodes keep the legacy always-online contract.
	if err := srv.Nodes.Register(fakeVP{name: "legacy"}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Hour)
	if h := srv.NodeHealth("legacy").Health; h != HealthOnline {
		t.Fatalf("unmonitored node health = %v, want online", h)
	}
}

// TestLeaseFailoverToSurvivingNode is the heart of the subsystem: a
// build running on a node that dies mid-run is reclaimed when its
// lease breaks and requeued onto a surviving node, where it completes.
func TestLeaseFailoverToSurvivingNode(t *testing.T) {
	clk := simclock.NewVirtual()
	srv := New(clk, faultCfg())
	srv.SetSpecBackend(hangingBackend{clk: clk})
	admin, _ := srv.Users.Add("a", RoleAdmin)
	flk := NewFlakyNode(fakeVP{name: "vp1"})
	if err := srv.RegisterNode(flk); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterNode(fakeVP{name: "vp2"}); err != nil {
		t.Fatal(err)
	}

	b, err := srv.SubmitSpec(admin, api.ExperimentSpec{
		Node: "vp1", Device: "dev-vp1",
		Workload:    api.WorkloadSpec{Name: "hang"},
		Constraints: api.ConstraintsSpec{AllowFallback: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.State() != StateRunning || b.NodeName() != "vp1" {
		t.Fatalf("state=%v node=%q after submit", b.State(), b.NodeName())
	}

	// The node dies 3 s in; its run will hang at t=10 s.
	clk.AfterFunc(3*time.Second, flk.Kill)
	clk.Advance(30 * time.Second)

	if b.State() != StateSuccess {
		t.Fatalf("state = %v (%v), want success on the survivor", b.State(), b.Err())
	}
	if b.Retries() != 1 {
		t.Fatalf("retries = %d, want 1", b.Retries())
	}
	if b.NodeName() != "vp2" || b.Attempts() != 2 {
		t.Fatalf("final node=%q attempts=%d, want vp2 on attempt 2", b.NodeName(), b.Attempts())
	}
	// The failover transition is on the event feed for streaming clients.
	evs, _, _ := b.Feed().EventsSince(0)
	found := false
	for _, e := range evs {
		if e.Phase == api.EventFailover && strings.Contains(e.Error, "vp1") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no failover event in feed: %+v", evs)
	}
	if !strings.Contains(b.Log(), "requeued") {
		t.Fatalf("log missing requeue record:\n%s", b.Log())
	}
}

// TestRetryBudgetSpentFailsTyped: a node that keeps flapping burns the
// build's retry budget; the build fails with ErrNodeLost and the wire
// status carries the node_lost flag.
func TestRetryBudgetSpentFailsTyped(t *testing.T) {
	cfg := faultCfg()
	cfg.MaxRetries = 1
	clk := simclock.NewVirtual()
	srv := New(clk, cfg)
	srv.SetSpecBackend(hangingBackend{clk: clk})
	admin, _ := srv.Users.Add("a", RoleAdmin)
	flk := NewFlakyNode(fakeVP{name: "vp1"})
	if err := srv.RegisterNode(flk); err != nil {
		t.Fatal(err)
	}

	b, err := srv.SubmitSpec(admin, api.ExperimentSpec{
		Node: "vp1", Device: "dev-vp1",
		Workload: api.WorkloadSpec{Name: "hang"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Flap: die at 1.5 s (first lease breaks ~5 s, requeue ~7 s),
	// return at 6 s so the retry dispatches, die again at 7.5 s.
	clk.AfterFunc(1500*time.Millisecond, flk.Kill)
	clk.AfterFunc(6*time.Second, flk.Revive)
	clk.AfterFunc(7500*time.Millisecond, flk.Kill)
	clk.Advance(time.Minute)

	if b.State() != StateFailure {
		t.Fatalf("state = %v, want failure after budget spent", b.State())
	}
	if !errors.Is(b.Err(), ErrNodeLost) {
		t.Fatalf("err = %v, want ErrNodeLost", b.Err())
	}
	if b.Attempts() != 2 || b.Retries() != 1 {
		t.Fatalf("attempts=%d retries=%d, want 2/1", b.Attempts(), b.Retries())
	}
}

// TestStaleAttemptCannotHijackCancelHook: a failed-over attempt's
// pipeline that finally comes back must be inert — its late OnCancel
// registration may not displace the live attempt's hook, and its
// context reports stale.
func TestStaleAttemptCannotHijackCancelHook(t *testing.T) {
	clk := simclock.NewVirtual()
	srv := New(clk, faultCfg())
	var (
		mu   sync.Mutex
		ctxs []*BuildContext
	)
	backend := funcBackend(func(spec api.ExperimentSpec) (Constraints, RunFunc, error) {
		cons := Constraints{Node: spec.Node, Device: spec.Device, Fallback: true}
		return cons, func(ctx *BuildContext, done func(error)) {
			mu.Lock()
			ctxs = append(ctxs, ctx)
			mu.Unlock()
			// Never completes on its own; cancellation settles it.
		}, nil
	})
	srv.SetSpecBackend(backend)
	admin, _ := srv.Users.Add("a", RoleAdmin)
	flk := NewFlakyNode(fakeVP{name: "vp1"})
	srv.RegisterNode(flk)
	srv.RegisterNode(fakeVP{name: "vp2"})

	b, err := srv.SubmitSpec(admin, api.ExperimentSpec{
		Node: "vp1", Device: "dev-vp1", Workload: api.WorkloadSpec{Name: "f"}})
	if err != nil {
		t.Fatal(err)
	}
	clk.AfterFunc(time.Second, flk.Kill)
	clk.Advance(30 * time.Second) // lease breaks, retry lands on vp2
	if b.State() != StateRunning || b.Attempts() != 2 {
		t.Fatalf("state=%v attempts=%d, want attempt 2 running", b.State(), b.Attempts())
	}
	mu.Lock()
	first, second := ctxs[0], ctxs[1]
	mu.Unlock()
	if !first.Stale() || second.Stale() {
		t.Fatalf("staleness: first=%v second=%v, want true/false", first.Stale(), second.Stale())
	}

	// The live attempt registers its hook; the reclaimed attempt then
	// shows up late with its own. The stale registration must not
	// displace the live hook — instead it fires immediately, tearing
	// down the orphaned session nobody else holds a handle to.
	var liveFired, staleFired bool
	second.OnCancel(func() { liveFired = true })
	first.OnCancel(func() { staleFired = true })
	if !staleFired {
		t.Fatal("stale registration did not tear the orphaned attempt down")
	}
	if liveFired {
		t.Fatal("live hook fired before any abort")
	}
	if err := srv.Abort(admin, b.ID); err != nil {
		t.Fatal(err)
	}
	if !liveFired {
		t.Fatal("abort did not run the live attempt's hook")
	}
}

// funcBackend adapts a function to SpecBackend for one-off tests.
type funcBackend func(api.ExperimentSpec) (Constraints, RunFunc, error)

func (f funcBackend) Compile(spec api.ExperimentSpec) (Constraints, RunFunc, error) {
	return f(spec)
}
func (funcBackend) WorkloadNames() []string { return nil }

// TestHungNodeCannotStallDispatch pins the nodeCPULowLocked fix: a node
// whose Exec blocks forever used to wedge the scheduler (the probe ran
// under s.mu), freezing Submit/Abort/status for everyone. Now the probe
// runs outside the lock and only that node's builds wait.
func TestHungNodeCannotStallDispatch(t *testing.T) {
	clk := simclock.NewVirtual()
	srv := New(clk, Config{})
	admin, _ := srv.Users.Add("a", RoleAdmin)

	block := make(chan struct{})
	t.Cleanup(func() { close(block) })
	if err := srv.Nodes.Register(blockingNode{name: "slow", gate: block}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Nodes.Register(fakeVP{name: "fast"}); err != nil {
		t.Fatal(err)
	}

	// The CPU-gated build probes "slow", whose Exec never returns.
	srv.CreateJob(admin, "gated", Constraints{Node: "slow", RequireLowCPU: true}, noopJob)
	stuck := make(chan *Build, 1)
	go func() {
		b, err := srv.Submit(admin, "gated")
		if err != nil {
			t.Error(err)
		}
		stuck <- b
	}()
	var gated *Build
	select {
	case gated = <-stuck:
	case <-time.After(5 * time.Second):
		t.Fatal("Submit blocked behind the hung node's probe")
	}
	if gated.State() != StateQueued {
		t.Fatalf("gated build state = %v, want queued behind the probe", gated.State())
	}

	// Everyone else keeps working: another node dispatches instantly,
	// and abort/status stay responsive.
	srv.CreateJob(admin, "ok", Constraints{Node: "fast"}, noopJob)
	okDone := make(chan *Build, 1)
	go func() {
		b, err := srv.Submit(admin, "ok")
		if err != nil {
			t.Error(err)
		}
		okDone <- b
	}()
	select {
	case b := <-okDone:
		if b.State() != StateSuccess {
			t.Fatalf("healthy node's build state = %v", b.State())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dispatch to the healthy node stalled behind the hung probe")
	}
	if err := srv.Abort(admin, gated.ID); err != nil {
		t.Fatalf("abort during hung probe: %v", err)
	}
}

// TestProbeSurvivesBeingOutpaced: when one dispatch scan both latches
// a CPU probe for a gated build and picks a different build, the probe
// must still launch — dropping it would leave cpuProbing latched true
// and starve the gated build forever.
func TestProbeSurvivesBeingOutpaced(t *testing.T) {
	clk := simclock.NewVirtual()
	srv := New(clk, Config{Executors: 1})
	admin, _ := srv.Users.Add("a", RoleAdmin)
	ctl, err := controller.New(clk, controller.Config{Name: "cpu", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv.Nodes.Register(NewLocalNode(ctl)) // idle controller: CPU is low
	srv.Nodes.Register(fakeVP{name: "fast1"})
	srv.Nodes.Register(fakeVP{name: "fast2"})

	// Occupy the single executor for 5 s of simulated time.
	srv.CreateJob(admin, "runner", Constraints{Node: "fast1"},
		func(ctx *BuildContext, done func(error)) {
			clk.AfterFunc(5*time.Second, func() { done(nil) })
		})
	runner, _ := srv.Submit(admin, "runner")
	if runner.State() != StateRunning {
		t.Fatalf("runner state = %v", runner.State())
	}
	// Queue the CPU-gated build first, then a plain build that the
	// freeing scan will pick instead.
	srv.CreateJob(admin, "gated", Constraints{Node: "cpu", RequireLowCPU: true}, noopJob)
	gated, _ := srv.Submit(admin, "gated")
	srv.CreateJob(admin, "plain", Constraints{Node: "fast2"}, noopJob)
	plain, _ := srv.Submit(admin, "plain")

	clk.Advance(6 * time.Second)
	if plain.State() != StateSuccess {
		t.Fatalf("plain state = %v", plain.State())
	}
	if gated.State() != StateSuccess {
		t.Fatalf("gated state = %v (reason %q): the latched probe was dropped",
			gated.State(), gated.PendingReason())
	}
}

// blockingNode hangs every Exec until its gate closes — a vantage
// point mid-kernel-panic with the TCP connection still up.
type blockingNode struct {
	name string
	gate chan struct{}
}

func (n blockingNode) Name() string { return n.name }
func (n blockingNode) Exec(cmd string, args ...string) (string, error) {
	<-n.gate
	return "", fmt.Errorf("node %s: connection reset", n.name)
}

// TestQueueAgingFailsOrphanBuilds: a build whose node never registers
// fails with a typed reason after PendingTimeout instead of pending
// forever; a build whose node is merely busy is untouched.
func TestQueueAgingFailsOrphanBuilds(t *testing.T) {
	clk := simclock.NewVirtual()
	srv := New(clk, faultCfg())
	srv.SetSpecBackend(hangingBackend{clk: clk})
	admin, _ := srv.Users.Add("a", RoleAdmin)
	if err := srv.RegisterNode(fakeVP{name: "vp1"}); err != nil {
		t.Fatal(err)
	}

	orphan, err := srv.SubmitSpec(admin, api.ExperimentSpec{
		Node: "ghost", Device: "d",
		Workload: api.WorkloadSpec{Name: "hang"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := orphan.PendingReason(); !strings.Contains(got, "ghost") {
		t.Fatalf("pending reason = %q, want a waiting-for-node reason", got)
	}
	// A busy-node build must survive aging: first build holds the
	// device, second waits behind the lock.
	srv.SubmitSpec(admin, api.ExperimentSpec{
		Node: "vp1", Device: "dev-vp1", Workload: api.WorkloadSpec{Name: "hang"}})
	waiting, err := srv.SubmitSpec(admin, api.ExperimentSpec{
		Node: "vp1", Device: "dev-vp1", Workload: api.WorkloadSpec{Name: "hang"}})
	if err != nil {
		t.Fatal(err)
	}

	clk.Advance(61 * time.Second) // past PendingTimeout

	if orphan.State() != StateFailure || !errors.Is(orphan.Err(), ErrNodeLost) {
		t.Fatalf("orphan state=%v err=%v, want typed node-lost failure", orphan.State(), orphan.Err())
	}
	if waiting.State() != StateSuccess {
		t.Fatalf("busy-node build state = %v (%v); aging must not touch it", waiting.State(), waiting.Err())
	}
}

// TestAgingSparesFallbackBehindBusySurvivor: a fallback build whose
// preferred node is dead must NOT age out while a live fallback node
// is merely busy draining the backlog — campaign tails survive even
// when the serialized wait exceeds PendingTimeout.
func TestAgingSparesFallbackBehindBusySurvivor(t *testing.T) {
	cfg := faultCfg()
	cfg.PendingTimeout = 8 * time.Second // shorter than the survivor's backlog
	clk := simclock.NewVirtual()
	srv := New(clk, cfg)
	srv.SetSpecBackend(hangingBackend{clk: clk})
	admin, _ := srv.Users.Add("a", RoleAdmin)
	flk := NewFlakyNode(fakeVP{name: "vp1"})
	if err := srv.RegisterNode(flk); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterNode(fakeVP{name: "vp2"}); err != nil {
		t.Fatal(err)
	}

	spec := func(node string) api.ExperimentSpec {
		return api.ExperimentSpec{
			Node: node, Device: "dev-" + node,
			Workload:    api.WorkloadSpec{Name: "hang"},
			Constraints: api.ConstraintsSpec{AllowFallback: true},
		}
	}
	b1, _ := srv.SubmitSpec(admin, spec("vp2")) // occupies vp2 for 10 s
	tail, _ := srv.SubmitSpec(admin, spec("vp1"))
	b2, _ := srv.SubmitSpec(admin, spec("vp2")) // vp2's backlog: 10-20 s

	clk.AfterFunc(time.Second, flk.Kill) // vp1 dies; tail's run hangs
	clk.Advance(time.Minute)

	for i, b := range []*Build{b1, b2} {
		if b.State() != StateSuccess {
			t.Fatalf("vp2 build %d state = %v (%v)", i, b.State(), b.Err())
		}
	}
	// The tail build waited behind vp2's backlog well past
	// PendingTimeout — it must have run there, not aged out.
	if tail.State() != StateSuccess {
		t.Fatalf("tail state = %v (%v), want success on the busy survivor", tail.State(), tail.Err())
	}
	if tail.NodeName() != "vp2" {
		t.Fatalf("tail ran on %q, want vp2", tail.NodeName())
	}
}

// TestDeleteJobFailsQueuedBuilds: deleting a job settles its queued
// builds with a typed error instead of leaking them in the queue.
func TestDeleteJobFailsQueuedBuilds(t *testing.T) {
	r := newRig(t)
	r.srv.CreateJob(r.exp, "doomed", Constraints{Node: "nowhere"}, noopJob)
	r.srv.ApproveJob(r.admin, "doomed")
	b, err := r.srv.Submit(r.exp, "doomed")
	if err != nil {
		t.Fatal(err)
	}
	if b.State() != StateQueued {
		t.Fatalf("state = %v", b.State())
	}
	// A bystander may not delete someone else's job.
	other, _ := r.srv.Users.Add("other", RoleExperimenter)
	if err := r.srv.DeleteJob(other, "doomed"); err == nil {
		t.Fatal("non-owner deleted the job")
	}
	if err := r.srv.DeleteJob(r.exp, "doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.srv.Job("doomed"); err == nil {
		t.Fatal("job still resolvable after delete")
	}
	if b.State() != StateFailure || !errors.Is(b.Err(), ErrJobDeleted) {
		t.Fatalf("queued build state=%v err=%v, want typed job-deleted failure", b.State(), b.Err())
	}
	if r.srv.QueueLength() != 0 {
		t.Fatalf("queue length = %d after delete", r.srv.QueueLength())
	}
}

// TestBuildTombstoneAfterRetention: finished builds are evicted after
// the retention window; their ids answer "expired", never-issued ids
// stay 404.
func TestBuildTombstoneAfterRetention(t *testing.T) {
	clk := simclock.NewVirtual()
	srv := New(clk, Config{Retention: time.Hour})
	admin, _ := srv.Users.Add("a", RoleAdmin)
	srv.Nodes.Register(fakeVP{name: "vp1"})
	srv.CreateJob(admin, "j", Constraints{Node: "vp1"}, noopJob)
	b, err := srv.Submit(admin, "j")
	if err != nil || b.State() != StateSuccess {
		t.Fatalf("submit: %v, state %v", err, b.State())
	}
	srv.SetSpecBackend(funcBackend(func(spec api.ExperimentSpec) (Constraints, RunFunc, error) {
		return Constraints{Node: spec.Node}, func(ctx *BuildContext, done func(error)) { done(nil) }, nil
	}))
	campID, _, err := srv.SubmitCampaign(admin, api.CampaignSpec{
		Experiments: []api.ExperimentSpec{{Node: "vp1", Device: "d", Workload: api.WorkloadSpec{Name: "x"}}}})
	if err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	getStatus := func(path string) (int, api.BuildStatus) {
		resp := get(t, ts.URL+path, admin.Token)
		defer resp.Body.Close()
		var st api.BuildStatus
		json.NewDecoder(resp.Body).Decode(&st)
		return resp.StatusCode, st
	}

	if code, st := getStatus(fmt.Sprintf("/api/v1/builds/%d", b.ID)); code != 200 || st.State != "success" {
		t.Fatalf("live status = %d %+v", code, st)
	}

	clk.Advance(2 * time.Hour) // past retention

	if _, err := srv.Build(b.ID); !errors.Is(err, ErrExpired) {
		t.Fatalf("Build(expired) = %v, want ErrExpired", err)
	}
	if _, err := srv.Build(999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Build(unknown) = %v, want ErrNotFound", err)
	}
	if code, st := getStatus(fmt.Sprintf("/api/v1/builds/%d", b.ID)); code != 200 || st.State != api.StateExpired {
		t.Fatalf("expired status = %d %+v, want 200 expired marker", code, st)
	}
	if code, _ := getStatus("/api/v1/builds/999"); code != 404 {
		t.Fatalf("unknown build status = %d, want 404", code)
	}
	if code, _ := getStatus(fmt.Sprintf("/api/v1/builds/%d/artifacts", b.ID)); code != 404 {
		t.Fatalf("expired artifacts = %d, want 404", code)
	}
	// The campaign record was evicted with its last member: the store
	// does not grow forever, expired campaign ids answer typed, and
	// unknown ones stay 404.
	if _, err := srv.CampaignBuildIDs(campID); !errors.Is(err, ErrExpired) {
		t.Fatalf("CampaignBuildIDs(expired) = %v, want ErrExpired", err)
	}
	if _, err := srv.CampaignBuildIDs(999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("CampaignBuildIDs(unknown) = %v, want ErrNotFound", err)
	}
	if code, _ := getStatus(fmt.Sprintf("/api/v1/campaigns/%d", campID)); code != 404 {
		t.Fatalf("expired campaign status = %d, want 404", code)
	}
}

// TestAbortRunningBuildFinishesCanceled: an abort that lands mid-
// pipeline settles the build as aborted (with the canceled flag), not
// as an ordinary failure.
func TestAbortRunningBuildFinishesCanceled(t *testing.T) {
	r := newRig(t)
	r.srv.CreateJob(r.admin, "long", Constraints{Node: "node1"},
		func(ctx *BuildContext, done func(error)) {
			ctx.OnCancel(func() {
				// Teardown takes a second of simulated time.
				r.clk.AfterFunc(time.Second, func() {
					done(errors.New("measurement torn down"))
				})
			})
			// Without a cancel the pipeline would run for an hour.
			r.clk.AfterFunc(time.Hour, func() { done(nil) })
		})
	b, err := r.srv.Submit(r.admin, "long")
	if err != nil {
		t.Fatal(err)
	}
	if b.State() != StateRunning {
		t.Fatalf("state = %v", b.State())
	}
	if err := r.srv.Abort(r.admin, b.ID); err != nil {
		t.Fatal(err)
	}
	r.clk.Advance(2 * time.Second)
	if b.State() != StateAborted {
		t.Fatalf("state = %v, want aborted (not failure)", b.State())
	}
	if !b.CancelRequested() || b.Err() == nil {
		t.Fatalf("canceled=%v err=%v", b.CancelRequested(), b.Err())
	}
}

// TestDrainAndRemoveNode: draining stops new dispatch but lets the
// running build finish; removal fails pinned queued builds typed and
// re-places fallback ones.
func TestDrainAndRemoveNode(t *testing.T) {
	clk := simclock.NewVirtual()
	srv := New(clk, faultCfg())
	srv.SetSpecBackend(hangingBackend{clk: clk})
	admin, _ := srv.Users.Add("a", RoleAdmin)
	exp, _ := srv.Users.Add("e", RoleExperimenter)
	if err := srv.RegisterNode(fakeVP{name: "vp1"}); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterNode(fakeVP{name: "vp2"}); err != nil {
		t.Fatal(err)
	}

	if err := srv.DrainNode(exp, "vp1"); err == nil {
		t.Fatal("experimenter drained a node")
	}

	running, _ := srv.SubmitSpec(admin, api.ExperimentSpec{
		Node: "vp1", Device: "dev-vp1", Workload: api.WorkloadSpec{Name: "hang"}})
	if err := srv.DrainNode(admin, "vp1"); err != nil {
		t.Fatal(err)
	}
	if h := srv.NodeHealth("vp1").Health; h != HealthDraining {
		t.Fatalf("health = %v, want draining", h)
	}
	queued, _ := srv.SubmitSpec(admin, api.ExperimentSpec{
		Node: "vp1", Device: "dev-vp1", Workload: api.WorkloadSpec{Name: "hang"}})
	if queued.State() != StateQueued {
		t.Fatalf("new build dispatched to a draining node (state %v)", queued.State())
	}
	clk.Advance(11 * time.Second)
	if running.State() != StateSuccess {
		t.Fatalf("running build on draining node = %v, want finished", running.State())
	}
	if err := srv.UndrainNode(admin, "vp1"); err != nil {
		t.Fatal(err)
	}
	if queued.State() != StateRunning {
		t.Fatalf("undrain did not dispatch the queued build (state %v)", queued.State())
	}
	clk.Advance(11 * time.Second)

	// Removal: a pinned queued build fails typed, a fallback one moves.
	// Occupy vp2 so the next two builds stay queued.
	blocker, _ := srv.SubmitSpec(admin, api.ExperimentSpec{
		Node: "vp2", Device: "dev-vp2", Workload: api.WorkloadSpec{Name: "hang"}})
	pinned2, _ := srv.SubmitSpec(admin, api.ExperimentSpec{
		Node: "vp2", Device: "dev-vp2", Workload: api.WorkloadSpec{Name: "hang"}})
	movable, _ := srv.SubmitSpec(admin, api.ExperimentSpec{
		Node: "vp2", Device: "dev-vp2",
		Workload:    api.WorkloadSpec{Name: "hang"},
		Constraints: api.ConstraintsSpec{AllowFallback: true}})
	if err := srv.RemoveNode(admin, "vp2"); err != nil {
		t.Fatal(err)
	}
	if pinned2.State() != StateFailure || !errors.Is(pinned2.Err(), ErrNodeLost) {
		t.Fatalf("pinned build after remove: state=%v err=%v", pinned2.State(), pinned2.Err())
	}
	if movable.State() != StateRunning || movable.NodeName() != "vp1" {
		t.Fatalf("fallback build after remove: state=%v node=%q, want running on vp1",
			movable.State(), movable.NodeName())
	}
	// The running build on the removed node finishes: removal is not a
	// lease break.
	clk.Advance(11 * time.Second)
	if blocker.State() != StateSuccess {
		t.Fatalf("running build on removed node = %v (%v), want success", blocker.State(), blocker.Err())
	}

	// A removed node that re-registers (plain legacy path) is back in
	// service — the removal tombstone must not pin it offline forever.
	if err := srv.Nodes.Register(fakeVP{name: "vp2"}); err != nil {
		t.Fatal(err)
	}
	if h, _, _ := srv.HealthOf("vp2"); h != HealthOnline {
		t.Fatalf("re-registered node health = %v, want online", h)
	}
	revived, _ := srv.SubmitSpec(admin, api.ExperimentSpec{
		Node: "vp2", Device: "dev-vp2", Workload: api.WorkloadSpec{Name: "hang"}})
	if revived.State() != StateRunning {
		t.Fatalf("build on re-registered node = %v (%q), want running",
			revived.State(), revived.PendingReason())
	}
}

// TestDrainedNodeDyingStillBreaksLeases: draining labels an alive
// node; a node that dies mid-drain must still go offline and fail its
// running builds over — drain must not mask death.
func TestDrainedNodeDyingStillBreaksLeases(t *testing.T) {
	clk := simclock.NewVirtual()
	srv := New(clk, faultCfg())
	srv.SetSpecBackend(hangingBackend{clk: clk})
	admin, _ := srv.Users.Add("a", RoleAdmin)
	flk := NewFlakyNode(fakeVP{name: "vp1"})
	srv.RegisterNode(flk)
	srv.RegisterNode(fakeVP{name: "vp2"})

	b, err := srv.SubmitSpec(admin, api.ExperimentSpec{
		Node: "vp1", Device: "dev-vp1",
		Workload:    api.WorkloadSpec{Name: "hang"},
		Constraints: api.ConstraintsSpec{AllowFallback: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.DrainNode(admin, "vp1"); err != nil {
		t.Fatal(err)
	}
	// The Pi is unplugged before its running build finishes.
	clk.AfterFunc(time.Second, flk.Kill)
	clk.Advance(30 * time.Second)

	if h := srv.NodeHealth("vp1").Health; h != HealthOffline {
		t.Fatalf("dead draining node health = %v, want offline (drain must not mask death)", h)
	}
	if b.State() != StateSuccess || b.NodeName() != "vp2" || b.Retries() != 1 {
		t.Fatalf("build state=%v node=%q retries=%d (%v), want failover to vp2",
			b.State(), b.NodeName(), b.Retries(), b.Err())
	}
}

// TestNodeDetailEndpoint: the v1 node detail route serves the
// lifecycle snapshot.
func TestNodeDetailEndpoint(t *testing.T) {
	clk := simclock.NewVirtual()
	srv := New(clk, faultCfg())
	srv.SetSpecBackend(hangingBackend{clk: clk})
	admin, _ := srv.Users.Add("a", RoleAdmin)
	flk := NewFlakyNode(fakeVP{name: "vp1"})
	if err := srv.RegisterNode(flk); err != nil {
		t.Fatal(err)
	}
	srv.SubmitSpec(admin, api.ExperimentSpec{
		Node: "vp1", Device: "dev-vp1", Workload: api.WorkloadSpec{Name: "hang"}})

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := get(t, ts.URL+"/api/v1/nodes/vp1", admin.Token)
	var detail api.NodeDetail
	json.NewDecoder(resp.Body).Decode(&detail)
	resp.Body.Close()
	if detail.Health != api.HealthOnline || !detail.Monitored || detail.RunningBuilds != 1 {
		t.Fatalf("detail = %+v", detail)
	}
	if len(detail.Devices) != 1 || detail.Devices[0] != "dev-vp1" {
		t.Fatalf("devices = %v", detail.Devices)
	}

	resp = get(t, ts.URL+"/api/v1/nodes/nope", admin.Token)
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown node detail = %d, want 404", resp.StatusCode)
	}

	// Kill the node; the listing reflects it after the silence window.
	flk.Kill()
	clk.Advance(5 * time.Second)
	resp = get(t, ts.URL+"/api/v1/nodes", admin.Token)
	var infos []api.NodeInfo
	json.NewDecoder(resp.Body).Decode(&infos)
	resp.Body.Close()
	if len(infos) != 1 || infos[0].Health != api.HealthOffline {
		t.Fatalf("node list = %+v, want vp1 offline", infos)
	}
}

// TestConcurrentSubmitDuringFailover exercises the scheduler under
// -race: submissions, heartbeats and failovers interleave.
func TestConcurrentSubmitDuringFailover(t *testing.T) {
	clk := simclock.NewVirtual()
	srv := New(clk, faultCfg())
	srv.SetSpecBackend(hangingBackend{clk: clk})
	admin, _ := srv.Users.Add("a", RoleAdmin)
	flk := NewFlakyNode(fakeVP{name: "vp1"})
	srv.RegisterNode(flk)
	srv.RegisterNode(fakeVP{name: "vp2"})

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			node := []string{"vp1", "vp2"}[i%2]
			srv.SubmitSpec(admin, api.ExperimentSpec{
				Node: node, Device: "dev-" + node,
				Workload:    api.WorkloadSpec{Name: "hang"},
				Constraints: api.ConstraintsSpec{AllowFallback: true},
			})
		}(i)
	}
	wg.Wait()
	clk.AfterFunc(3*time.Second, flk.Kill)
	clk.Advance(5 * time.Minute)
	if srv.Running() != 0 {
		t.Fatalf("builds still running after the drain window: %d", srv.Running())
	}
}
