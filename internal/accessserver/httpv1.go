package accessserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"batterylab/internal/accessserver/feedhub"
	"batterylab/internal/api"
	"batterylab/internal/metrics"
)

// The versioned remote-execution API. Wire types and the JSON schema
// live in internal/api; this file is the HTTP binding:
//
//	GET  /api/v1/nodes                        vantage points + devices + health
//	GET  /api/v1/nodes/{name}                 node lifecycle detail
//	POST /api/v1/nodes/{name}/drain           stop new dispatch (admin)
//	POST /api/v1/nodes/{name}/undrain         reopen for dispatch (admin)
//	POST /api/v1/nodes/{name}/remove          unregister; running builds finish (admin)
//	POST /api/v1/nodes/{name}/owner           set the hosting member who earns
//	                                          contribution credits (admin)
//	GET  /api/v1/workloads                    registry workload names
//	POST /api/v1/experiments                  submit an ExperimentSpec → build
//	POST /api/v1/campaigns                    submit a CampaignSpec → builds
//	GET  /api/v1/campaigns/{id}               campaign status
//	GET  /api/v1/builds/{id}                  build status (+ run summary)
//	GET  /api/v1/builds/{id}/events           phase events, streamed NDJSON
//	GET  /api/v1/builds/{id}/samples          live power samples: framed
//	                                          binary traces (default) or
//	                                          ?format=ndjson
//	GET  /api/v1/builds/{id}/analytics        windowed trace aggregates:
//	                                          ?window=2s&fields=mean,energy
//	                                          &artifact=current.trace
//	GET  /api/v1/builds/{id}/artifacts        artifact names
//	GET  /api/v1/builds/{id}/artifacts/{name} raw artifact bytes
//	POST /api/v1/builds/{id}/cancel           abort a queued/running build
//
// Every non-2xx response body is the api.Error envelope.

// Error-code aliases keep the HTTP files terse.
const (
	codeBadRequest    = api.CodeBadRequest
	codeUnauthorized  = api.CodeUnauthorized
	codeForbidden     = api.CodeForbidden
	codeNotFound      = api.CodeNotFound
	codeConflict      = api.CodeConflict
	codeInternal      = api.CodeInternal
	codeInvalidCursor = api.CodeInvalidCursor
)

// Submission body bounds: a spec is well under a kilobyte of JSON, so
// even a maximal campaign (MaxCampaignExperiments specs) fits these
// with slack; anything larger is a client bug or abuse.
const (
	maxSpecBodyBytes     = 1 << 20  // 1 MiB
	maxCampaignBodyBytes = 64 << 20 // 64 MiB
)

func apiError(code api.ErrorCode, msg string) *api.Error {
	return &api.Error{Code: code, Message: msg}
}

// writeAPIError writes the typed error envelope with its canonical
// status.
func writeAPIError(w http.ResponseWriter, e *api.Error) {
	data, err := json.Marshal(api.Envelope{Error: e})
	if err != nil {
		http.Error(w, e.Message, e.HTTPStatus())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.HTTPStatus())
	w.Write(append(data, '\n'))
}

// handlerV1 mounts the v1 routes on mux.
func (s *Server) handlerV1(mux *http.ServeMux) {
	mux.HandleFunc("GET /api/v1/nodes", func(w http.ResponseWriter, r *http.Request) {
		if s.auth(w, r, PermViewConsole) == nil {
			return
		}
		// Snapshot-served: names come from the registry (its own lock,
		// never the scheduler's), health and cached devices from the
		// published census — a fleet-listing flood is lock-free with
		// respect to dispatch. Health is recomputed against the current
		// clock because silence ages a node without republishing.
		now := s.clock.Now()
		names := s.Nodes.List()
		infos := make([]api.NodeInfo, 0, len(names))
		for _, name := range names {
			e, ok := s.reads.node(name)
			if !ok {
				e = nodeCensusEntry{NodeStatus: NodeStatus{Name: name}}
			}
			devs := e.Devices
			if !e.Monitored {
				// Monitored nodes serve the cached device list: one hung
				// vantage point must not stall the whole fleet listing on
				// a live list_devices round trip.
				devs, _ = s.Nodes.Devices(name)
			}
			infos = append(infos, api.NodeInfo{
				Name:    name,
				Devices: devs,
				Health:  s.censusHealth(e, true, now).String(),
			})
		}
		writeJSON(w, http.StatusOK, infos)
	})
	mux.HandleFunc("GET /api/v1/nodes/{name}", func(w http.ResponseWriter, r *http.Request) {
		if s.auth(w, r, PermViewConsole) == nil {
			return
		}
		name := r.PathValue("name")
		// Census-served (registry membership checked live, on the
		// registry's own lock): the detail route never touches s.mu.
		_, regErr := s.Nodes.Get(name)
		st, ok := s.reads.node(name)
		if !ok {
			if regErr != nil {
				writeError(w, regErr)
				return
			}
			st = nodeCensusEntry{NodeStatus: NodeStatus{Name: name}}
		}
		if regErr != nil && !st.Removed && !st.Monitored {
			writeError(w, regErr)
			return
		}
		// Monitored nodes serve the cached device list: this endpoint
		// diagnoses sick nodes, so it must never block on a live
		// list_devices round trip to one.
		devs := st.Devices
		if !st.Monitored {
			devs, _ = s.Nodes.Devices(name)
		}
		detail := api.NodeDetail{
			Name:          name,
			Devices:       devs,
			Health:        s.censusHealth(st, regErr == nil, s.clock.Now()).String(),
			Monitored:     st.Monitored,
			Draining:      st.Draining,
			RunningBuilds: st.Running,
			QueuedBuilds:  st.Queued,
		}
		if !st.LastHeartbeat.IsZero() {
			detail.LastHeartbeatNS = st.LastHeartbeat.UnixNano()
		}
		writeJSON(w, http.StatusOK, detail)
	})
	nodeAdmin := func(action func(*User, string) error) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			user := s.auth(w, r, PermManageNodes)
			if user == nil {
				return
			}
			if err := action(user, r.PathValue("name")); err != nil {
				writeError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{"ok": true})
		}
	}
	mux.HandleFunc("POST /api/v1/nodes/{name}/drain", nodeAdmin(s.DrainNode))
	mux.HandleFunc("POST /api/v1/nodes/{name}/undrain", nodeAdmin(s.UndrainNode))
	mux.HandleFunc("POST /api/v1/nodes/{name}/remove", nodeAdmin(s.RemoveNode))
	mux.HandleFunc("POST /api/v1/nodes/{name}/owner", func(w http.ResponseWriter, r *http.Request) {
		if s.auth(w, r, PermManageNodes) == nil {
			return
		}
		var body struct {
			Owner string `json:"owner"`
		}
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBodyBytes)).Decode(&body); err != nil {
			writeAPIError(w, apiError(codeBadRequest, "decoding owner body: "+err.Error()))
			return
		}
		name := r.PathValue("name")
		if _, err := s.Nodes.Get(name); err != nil {
			writeError(w, err)
			return
		}
		// "" clears ownership; otherwise the owner must be a member, or
		// their contribution credits would accrue to a void.
		if body.Owner != "" {
			if _, err := s.Users.Lookup(body.Owner); err != nil {
				writeAPIError(w, apiError(codeNotFound, "no member "+body.Owner))
				return
			}
		}
		s.SetNodeOwner(name, body.Owner)
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /api/v1/workloads", func(w http.ResponseWriter, r *http.Request) {
		if s.auth(w, r, PermViewConsole) == nil {
			return
		}
		names := s.WorkloadNames()
		if names == nil {
			names = []string{}
		}
		writeJSON(w, http.StatusOK, names)
	})
	mux.HandleFunc("POST /api/v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		user := s.auth(w, r, PermRunJob)
		if user == nil {
			return
		}
		var spec api.ExperimentSpec
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBodyBytes)).Decode(&spec); err != nil {
			writeAPIError(w, apiError(codeBadRequest, "decoding experiment spec: "+err.Error()))
			return
		}
		b, err := s.SubmitSpec(user, spec)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, api.SubmitResponse{Build: b.ID, State: b.State().String()})
	})
	mux.HandleFunc("POST /api/v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		user := s.auth(w, r, PermRunJob)
		if user == nil {
			return
		}
		var spec api.CampaignSpec
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxCampaignBodyBytes)).Decode(&spec); err != nil {
			writeAPIError(w, apiError(codeBadRequest, "decoding campaign spec: "+err.Error()))
			return
		}
		id, builds, err := s.SubmitCampaign(user, spec)
		if err != nil {
			writeError(w, err)
			return
		}
		resp := api.CampaignResponse{Campaign: id, Builds: make([]int, len(builds))}
		for i, b := range builds {
			resp.Builds[i] = b.ID
		}
		writeJSON(w, http.StatusAccepted, resp)
	})
	mux.HandleFunc("GET /api/v1/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		if s.auth(w, r, PermViewConsole) == nil {
			return
		}
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			writeAPIError(w, apiError(codeBadRequest, "campaign id must be an integer"))
			return
		}
		// Snapshot-served: membership and member statuses come from the
		// read plane; only the drop counters are refreshed from the feed
		// plane. No scheduler lock on this path.
		ids, ok := s.reads.campaign(id)
		if !ok {
			if s.reads.campaignExpired(id) {
				writeError(w, fmt.Errorf("%w: campaign %d expired after its %s retention window", ErrExpired, id, s.cfg.Retention))
			} else {
				writeError(w, fmt.Errorf("%w: no campaign %d", ErrNotFound, id))
			}
			return
		}
		status := api.CampaignStatus{Campaign: id}
		for _, bid := range ids {
			st, ok := s.reads.buildStatus(bid)
			if !ok {
				// Tombstoned member: the record aged out of retention.
				status.Builds = append(status.Builds, api.BuildStatus{ID: bid, State: api.StateExpired})
				continue
			}
			st.DroppedEvents, st.DroppedSamples = s.hub.Feed(bid).Dropped()
			status.Builds = append(status.Builds, st)
		}
		writeJSON(w, http.StatusOK, status)
	})
	mux.HandleFunc("GET /api/v1/builds/{id}", func(w http.ResponseWriter, r *http.Request) {
		if s.auth(w, r, PermViewConsole) == nil {
			return
		}
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			writeAPIError(w, apiError(codeBadRequest, "build id must be an integer"))
			return
		}
		// The hot poll path: served from the read plane's published
		// snapshot, lock-free with respect to dispatch. The scheduler
		// republishes on every transition, in transition order, so polls
		// observe monotonic state. Drop counters move without a scheduler
		// transition (producer-side shedding), so they are refreshed from
		// the feed plane — also a leaf, never s.mu.
		if st, ok := s.reads.buildStatus(id); ok {
			st.DroppedEvents, st.DroppedSamples = s.hub.Feed(id).Dropped()
			writeJSON(w, http.StatusOK, st)
			return
		}
		if _, _, hst := s.hub.Resolve(id); hst == feedhub.StatusExpired {
			// The build existed but aged out: an explicit marker, not a
			// 404 — clients distinguish "expired" from "never existed".
			writeJSON(w, http.StatusOK, api.BuildStatus{ID: id, State: api.StateExpired})
			return
		}
		writeError(w, fmt.Errorf("%w: no build %d", ErrNotFound, id))
	})
	mux.HandleFunc("GET /api/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		if s.auth(w, r, PermViewConsole) == nil {
			return
		}
		snap := s.MetricsSnapshot()
		switch r.URL.Query().Get("format") {
		case "", "prom":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			metrics.WritePrometheus(w, snap)
		case "json":
			w.Header().Set("Content-Type", "application/json")
			metrics.WriteJSON(w, snap)
		default:
			writeAPIError(w, apiError(codeBadRequest, "?format= must be prom or json"))
		}
	})
	mux.HandleFunc("GET /api/v1/builds/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		f := s.feedFromPath(w, r)
		if f == nil {
			return
		}
		s.streamEvents(w, r, f)
	})
	mux.HandleFunc("GET /api/v1/builds/{id}/samples", func(w http.ResponseWriter, r *http.Request) {
		f := s.feedFromPath(w, r)
		if f == nil {
			return
		}
		s.streamSamples(w, r, f)
	})
	mux.HandleFunc("GET /api/v1/builds/{id}/analytics", func(w http.ResponseWriter, r *http.Request) {
		b := s.buildFromPath(w, r)
		if b == nil {
			return
		}
		s.serveAnalytics(w, r, b)
	})
	mux.HandleFunc("GET /api/v1/builds/{id}/artifacts", func(w http.ResponseWriter, r *http.Request) {
		b := s.buildFromPath(w, r)
		if b == nil {
			return
		}
		writeJSON(w, http.StatusOK, b.Workspace().List())
	})
	mux.HandleFunc("GET /api/v1/builds/{id}/artifacts/{name}", func(w http.ResponseWriter, r *http.Request) {
		b := s.buildFromPath(w, r)
		if b == nil {
			return
		}
		data, err := b.Workspace().Load(r.PathValue("name"))
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
	})
	s.handlerCluster(mux)
	mux.HandleFunc("POST /api/v1/builds/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		user := s.auth(w, r, PermRunJob)
		if user == nil {
			return
		}
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			writeAPIError(w, apiError(codeBadRequest, "build id must be an integer"))
			return
		}
		if err := s.Abort(user, id); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{"canceled": true})
	})
}

// buildStatus snapshots a build as its wire form.
func buildStatus(b *Build) api.BuildStatus {
	st := api.BuildStatus{
		ID:        b.ID,
		Job:       b.Job,
		Owner:     b.Owner,
		State:     b.State().String(),
		Campaign:  b.CampaignID(),
		Canceled:  b.CancelRequested(),
		Summary:   b.Summary(),
		Node:      b.NodeName(),
		Attempts:  b.Attempts(),
		Recovered: b.Recovered(),
		FeedEpoch: b.FeedEpoch(),
	}
	st.PlacementScore = b.PlacementScore()
	// Federation provenance: routed_via names the peer executing the
	// build for its home server; home_server (carried on the relayed
	// spec) names the submitting server for the peer executing it.
	st.RoutedVia = b.RoutedVia()
	if b.wireSpec != nil {
		st.HomeServer = b.wireSpec.HomeServer
	}
	// Feed-loss counters: a streaming client that sees a non-zero value
	// knows its replay is missing records instead of trusting a silently
	// truncated stream.
	st.DroppedEvents, st.DroppedSamples = b.Feed().Dropped()
	if b.State() == StateQueued {
		st.PendingReason = b.PendingReason()
	}
	if err := b.Err(); err != nil {
		st.Error = err.Error()
		st.NodeLost = errors.Is(err, ErrNodeLost)
	}
	return st
}

// feedFromPath resolves the {id} path segment to its feed through the
// hub — the data plane's only lookup; streaming subscriptions never
// touch scheduler state. Writes the error response itself (400 for a
// malformed id, 404 for unknown or expired builds). Authentication runs
// first.
func (s *Server) feedFromPath(w http.ResponseWriter, r *http.Request) *Feed {
	if s.auth(w, r, PermViewConsole) == nil {
		return nil
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeAPIError(w, apiError(codeBadRequest, "build id must be an integer"))
		return nil
	}
	f, _, st := s.hub.Resolve(id)
	switch st {
	case feedhub.StatusLive:
		return f
	case feedhub.StatusExpired:
		writeError(w, fmt.Errorf("%w: build %d expired after its %s retention window", ErrExpired, id, s.cfg.Retention))
	default:
		writeError(w, fmt.Errorf("%w: no build %d", ErrNotFound, id))
	}
	return nil
}

// streamCursor parses the ?from= resume cursor (default 0), writing the
// typed invalid_cursor envelope on garbage — a reconnecting client can
// branch on the code and restart from 0 instead of giving up.
func streamCursor(w http.ResponseWriter, r *http.Request) (int, bool) {
	from := r.URL.Query().Get("from")
	if from == "" {
		return 0, true
	}
	n, err := strconv.Atoi(from)
	if err != nil || n < 0 {
		writeAPIError(w, apiError(codeInvalidCursor, "?from= must be a non-negative integer"))
		return 0, false
	}
	return n, true
}

// streamEvents serves the NDJSON phase-event stream: replay from the
// ?from= cursor (default 0), then follow until the build finishes or
// the client goes away.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, f *Feed) {
	cursor, ok := streamCursor(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	s.m.feedSubscribers.Inc()
	s.m.eventSubscribers.Inc()
	defer s.m.feedSubscribers.Dec()
	defer s.m.eventSubscribers.Dec()
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		evs, closed, changed := f.EventsSince(cursor)
		for _, e := range evs {
			if err := enc.Encode(e); err != nil {
				return // client gone
			}
		}
		cursor += len(evs)
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		if closed {
			// One last snapshot covers the close/append race: EventsSince
			// reported closed only after any final events were visible.
			if more, _, _ := f.EventsSince(cursor); len(more) == 0 {
				return
			}
			continue
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// streamSamples serves the live power-sample stream: length-prefixed
// binary trace frames by default (the compact v2 codec of
// internal/trace, see api.WriteSampleFrame), or NDJSON SamplePoint
// lines with ?format=ndjson. Like the event stream it replays the
// build's buffered samples from the ?from= cursor (default 0, counting
// samples) and then follows — a client that lost its connection after
// n samples resumes with ?from=n. The feed it reads is bounded and
// drop-under-backpressure, so however slowly this consumer drains, the
// capture loop never blocks.
func (s *Server) streamSamples(w http.ResponseWriter, r *http.Request, f *Feed) {
	format := r.URL.Query().Get("format")
	switch format {
	case "", "binary", "ndjson":
	default:
		writeAPIError(w, apiError(codeBadRequest, "?format= must be binary or ndjson"))
		return
	}
	cursor, ok := streamCursor(w, r)
	if !ok {
		return
	}
	ndjson := format == "ndjson"
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "application/octet-stream")
	}
	w.WriteHeader(http.StatusOK)
	s.m.feedSubscribers.Inc()
	s.m.sampleSubscribers.Inc()
	defer s.m.feedSubscribers.Dec()
	defer s.m.sampleSubscribers.Dec()
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		pts, closed, changed := f.SamplesSince(cursor)
		if len(pts) > 0 {
			if ndjson {
				for _, p := range pts {
					if err := enc.Encode(p); err != nil {
						return
					}
				}
			} else if err := api.WriteSampleFrame(w, pts); err != nil {
				return
			}
			cursor += len(pts)
			if flusher != nil {
				flusher.Flush()
			}
		}
		if closed {
			if more, _, _ := f.SamplesSince(cursor); len(more) == 0 {
				return
			}
			continue
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}
