// Package feedgw is the access server's feed-gateway mode: a stateless
// relay that serves the v1 streaming routes (build events and live
// samples) by subscribing to an upstream control server through
// internal/remote, instead of owning a scheduler of its own.
//
// The control/data plane split makes this possible: the streaming
// routes depend only on the feed plane (a build id, a resume cursor, a
// feed epoch), all of which the v1 API already carries on the wire. A
// gateway deployed next to a dashboard fleet absorbs thousands of
// streaming subscribers and holds exactly one upstream subscription per
// active client stream — and when its upstream connection drops, it
// reconnects from its accumulated cursor (`?from=`) so clients see an
// uninterrupted, exactly-once stream. If the upstream's feed epoch
// moves (a server restart re-created the feed), accumulated cursors are
// void and the gateway ends the client stream rather than splice two
// incompatible replays.
//
// Auth is pass-through: the client's bearer token is forwarded
// upstream, so the gateway needs no user database and upstream
// permission checks still apply per-client.
package feedgw

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"batterylab/internal/api"
	"batterylab/internal/metrics"
	"batterylab/internal/remote"
)

// Gateway relays the v1 streaming routes from one upstream server.
// Safe for concurrent use; each client stream dials its own upstream
// subscription with that client's credentials.
type Gateway struct {
	upstream string
	retry    remote.RetryPolicy
	hc       *http.Client

	reg        *metrics.Registry
	reconnects *metrics.Counter
	events     *metrics.Counter
	samples    *metrics.Counter
	reads      *metrics.Counter
	streams    *metrics.Gauge
}

// New returns a gateway that relays from the upstream base URL
// (e.g. "http://control:9090").
func New(upstream string) *Gateway {
	reg := metrics.NewRegistry()
	return &Gateway{
		upstream:   upstream,
		retry:      remote.DefaultRetryPolicy,
		reg:        reg,
		reconnects: reg.Counter("blab_feedgw_reconnects_total", "upstream stream reconnects (resume-cursor replays)"),
		events:     reg.Counter("blab_feedgw_events_relayed_total", "phase events relayed to downstream clients"),
		samples:    reg.Counter("blab_feedgw_samples_relayed_total", "live samples relayed to downstream clients"),
		reads:      reg.Counter("blab_feedgw_reads_proxied_total", "status/analytics reads proxied upstream"),
		streams:    reg.Gauge("blab_feedgw_streams", "client streams currently open"),
	}
}

// SetRetryPolicy tunes the upstream reconnect budget and backoff.
func (g *Gateway) SetRetryPolicy(rp remote.RetryPolicy) {
	if rp.Attempts < 1 {
		rp.Attempts = 1
	}
	g.retry = rp
}

// SetHTTPClient swaps the HTTP client used for upstream subscriptions
// (custom TLS, timeouts).
func (g *Gateway) SetHTTPClient(hc *http.Client) { g.hc = hc }

// MetricsRegistry exposes the gateway's registry so embedders can add
// their own series to the same endpoint.
func (g *Gateway) MetricsRegistry() *metrics.Registry { return g.reg }

// Upstream reports the upstream base URL.
func (g *Gateway) Upstream() string { return g.upstream }

// Handler mounts the gateway routes: the two v1 streaming routes it
// relays, its own metrics, and an unauthenticated liveness probe.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/builds/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		g.relay(w, r, false)
	})
	mux.HandleFunc("GET /api/v1/builds/{id}/samples", func(w http.ResponseWriter, r *http.Request) {
		g.relay(w, r, true)
	})
	mux.HandleFunc("GET /api/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := g.reg.Snapshot()
		switch r.URL.Query().Get("format") {
		case "", "prom":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			metrics.WritePrometheus(w, snap)
		case "json":
			w.Header().Set("Content-Type", "application/json")
			metrics.WriteJSON(w, snap)
		default:
			writeErr(w, &api.Error{Code: api.CodeBadRequest, Message: "?format= must be prom or json"})
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	// Dashboard-read parity: the two snapshot reads a feed consumer
	// needs next to its streams — build status (for the feed epoch and
	// terminal state) and trace analytics — proxy upstream with the
	// client's own token. Everything else under /api/v1/ is control-
	// plane work this gateway deliberately does not relay: a typed 501
	// tells clients to talk to the control server, instead of a bare
	// 404 that reads like "no such build".
	mux.HandleFunc("GET /api/v1/builds/{id}", func(w http.ResponseWriter, r *http.Request) {
		g.proxyRead(w, r)
	})
	mux.HandleFunc("GET /api/v1/builds/{id}/analytics", func(w http.ResponseWriter, r *http.Request) {
		g.proxyRead(w, r)
	})
	mux.HandleFunc("/api/v1/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, &api.Error{Code: api.CodeNotRelayed,
			Message: fmt.Sprintf("feed gateway: %s %s is not relayed; only build streams, status and analytics are — use the control server at %s", r.Method, r.URL.Path, g.upstream)})
	})
	return mux
}

// proxyRead forwards one GET (path + query + bearer token) upstream
// verbatim and copies the response back, envelope and status included —
// the gateway adds no interpretation, so upstream auth and typed errors
// apply per-client exactly as on a direct connection.
func (g *Gateway) proxyRead(w http.ResponseWriter, r *http.Request) {
	u := g.upstream + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, u, nil)
	if err != nil {
		writeErr(w, &api.Error{Code: api.CodeInternal, Message: err.Error()})
		return
	}
	if tok := r.Header.Get("Authorization"); tok != "" {
		req.Header.Set("Authorization", tok)
	}
	hc := g.hc
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		writeErr(w, &api.Error{Code: api.CodeInternal, Message: "upstream: " + err.Error()})
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	g.reads.Inc()
}

// writeErr writes the typed v1 error envelope at its canonical status.
func writeErr(w http.ResponseWriter, e *api.Error) {
	data, err := json.Marshal(api.Envelope{Error: e})
	if err != nil {
		http.Error(w, e.Message, e.HTTPStatus())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.HTTPStatus())
	w.Write(append(data, '\n'))
}

// passErr relays an upstream failure to the client: typed envelopes
// pass through verbatim (the upstream's 401/403/404 is the client's
// 401/403/404), anything else — an unreachable upstream after the
// retry budget — becomes an internal envelope.
func passErr(w http.ResponseWriter, err error) {
	var ae *api.Error
	if errors.As(err, &ae) {
		writeErr(w, ae)
		return
	}
	writeErr(w, &api.Error{Code: api.CodeInternal, Message: "upstream: " + err.Error()})
}

// bearer extracts the client's bearer token for pass-through auth.
func bearer(r *http.Request) string {
	tok := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(tok) > len(prefix) && tok[:len(prefix)] == prefix {
		return tok[len(prefix):]
	}
	return tok
}

// relay serves one client stream by following the upstream stream,
// reconnecting from the accumulated cursor across transient upstream
// failures. samples selects the sample route (framed binary or NDJSON);
// otherwise the NDJSON event route is relayed line by line.
func (g *Gateway) relay(w http.ResponseWriter, r *http.Request, samples bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, &api.Error{Code: api.CodeBadRequest, Message: "build id must be an integer"})
		return
	}
	// Local ?from= validation: garbage cursors are the client's bug and
	// must not cost an upstream round trip. Same typed code as the
	// direct path, so clients branch identically either way.
	cursor := 0
	if from := r.URL.Query().Get("from"); from != "" {
		n, err := strconv.Atoi(from)
		if err != nil || n < 0 {
			writeErr(w, &api.Error{Code: api.CodeInvalidCursor, Message: "?from= must be a non-negative integer"})
			return
		}
		cursor = n
	}
	format := ""
	if samples {
		format = r.URL.Query().Get("format")
		switch format {
		case "", "binary", "ndjson":
		default:
			writeErr(w, &api.Error{Code: api.CodeBadRequest, Message: "?format= must be binary or ndjson"})
			return
		}
	}

	plat, err := remote.Dial(g.upstream, bearer(r))
	if err != nil {
		writeErr(w, &api.Error{Code: api.CodeInternal, Message: err.Error()})
		return
	}
	plat.SetRetryPolicy(g.retry)
	if g.hc != nil {
		plat.SetHTTPClient(g.hc)
	}
	ctx := r.Context()

	// The epoch pin. A reconnect splices the upstream's replay onto what
	// this stream already delivered, which is only sound while the
	// upstream feed is the same incarnation the first bytes came from.
	st, err := plat.BuildStatus(ctx, id)
	if err != nil {
		passErr(w, err)
		return
	}
	if st.State == api.StateExpired {
		// Parity with the direct streaming path: an expired build's
		// stream is a 404, not the status route's 200 marker.
		writeErr(w, &api.Error{Code: api.CodeNotFound, Message: fmt.Sprintf("build %d expired upstream", id)})
		return
	}
	epoch := st.FeedEpoch

	if samples && format != "ndjson" {
		w.Header().Set("Content-Type", "application/octet-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	g.streams.Inc()
	defer g.streams.Dec()
	flusher, _ := w.(http.Flusher)

	path := func() string {
		if samples {
			p := fmt.Sprintf("/api/v1/builds/%d/samples?from=%d", id, cursor)
			if format != "" {
				p += "&format=" + format
			}
			return p
		}
		return fmt.Sprintf("/api/v1/builds/%d/events?from=%d", id, cursor)
	}

	failures := 0
	connected := false
	for {
		if ctx.Err() != nil {
			return
		}
		rc, err := plat.OpenStream(ctx, path())
		if err != nil {
			// Past the 200 header the only honest move on a permanent
			// error is to end the stream: the client resumes from its own
			// cursor and gets the typed error then.
			if !remote.IsTransient(err) {
				return
			}
			failures++
			if failures >= g.retry.Attempts || !g.sleep(ctx, failures) {
				return
			}
			g.reconnects.Inc()
			continue
		}
		if connected {
			g.reconnects.Inc()
		}
		connected = true
		var n int
		if samples && format != "ndjson" {
			n, err = g.relayFrames(w, flusher, rc, &cursor)
		} else {
			n, err = g.relayLines(w, flusher, rc, &cursor, samples)
		}
		rc.Close()
		if err == nil {
			return // clean upstream end of stream: the feed closed and drained
		}
		if ctx.Err() != nil {
			return
		}
		if n > 0 {
			failures = 0 // progress refills the reconnect budget
		}
		failures++
		if failures >= g.retry.Attempts {
			return
		}
		// Severed mid-stream: resuming from the cursor is only valid
		// against the same feed incarnation.
		if st, serr := plat.BuildStatus(ctx, id); serr != nil || st.FeedEpoch != epoch {
			return
		}
		if !g.sleep(ctx, failures) {
			return
		}
	}
}

// relayLines copies an NDJSON stream line by line, advancing the cursor
// per line. A nil error is the upstream's clean end of stream.
func (g *Gateway) relayLines(w io.Writer, flusher http.Flusher, rc io.Reader, cursor *int, samples bool) (int, error) {
	sc := bufio.NewScanner(rc)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	n := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return n, nil // client gone; treat as a clean end
		}
		if flusher != nil {
			flusher.Flush()
		}
		*cursor++
		n++
		if samples {
			g.samples.Inc()
		} else {
			g.events.Inc()
		}
	}
	return n, sc.Err()
}

// relayFrames copies the framed binary sample stream frame by frame —
// each upstream frame is decoded (to advance the point cursor) and
// re-framed identically, so downstream bytes match a direct connection.
func (g *Gateway) relayFrames(w io.Writer, flusher http.Flusher, rc io.Reader, cursor *int) (int, error) {
	br := bufio.NewReader(rc)
	n := 0
	for {
		pts, err := api.ReadSampleFrame(br)
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if werr := api.WriteSampleFrame(w, pts); werr != nil {
			return n, nil // client gone
		}
		if flusher != nil {
			flusher.Flush()
		}
		*cursor += len(pts)
		n += len(pts)
		g.samples.Add(int64(len(pts)))
	}
}

// sleep waits out the exponential backoff before reconnect attempt n,
// honoring ctx. Reports false when ctx ended first.
func (g *Gateway) sleep(ctx context.Context, n int) bool {
	d := g.retry.BaseDelay
	if d <= 0 {
		d = remote.DefaultRetryPolicy.BaseDelay
	}
	max := g.retry.MaxDelay
	if max <= 0 {
		max = time.Minute
	}
	for i := 1; i < n && d < max; i++ {
		d <<= 1
	}
	if d > max {
		d = max
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
