package accessserver

import (
	"fmt"
	"sync"
)

// FlakyNode wraps a node handle with a kill switch — the failure
// injector behind `blab-access -flaky`, the fault-tolerance tests and
// examples/faulttolerance. While down, Exec and Ping fail the way a
// powered-off Pi does (connection refused), so heartbeats stop and the
// scheduler ages the node through suspect into offline.
type FlakyNode struct {
	inner Node

	mu    sync.Mutex
	down  bool
	kills int
}

// NewFlakyNode wraps a node with failure injection, initially up.
func NewFlakyNode(inner Node) *FlakyNode {
	return &FlakyNode{inner: inner}
}

// Name implements Node.
func (f *FlakyNode) Name() string { return f.inner.Name() }

// Exec implements Node, failing while the node is down.
func (f *FlakyNode) Exec(cmd string, args ...string) (string, error) {
	if f.Down() {
		return "", fmt.Errorf("node %s: connect: connection refused", f.inner.Name())
	}
	return f.inner.Exec(cmd, args...)
}

// Ping implements Pinger: the heartbeat probe fails while down and
// otherwise delegates to the wrapped node (a cheap in-process ping for
// LocalNode).
func (f *FlakyNode) Ping() error {
	if f.Down() {
		return fmt.Errorf("node %s: connect: connection refused", f.inner.Name())
	}
	if p, ok := f.inner.(Pinger); ok {
		return p.Ping()
	}
	_, err := f.inner.Exec("ping")
	return err
}

// Kill simulates the vantage point dropping off the network.
func (f *FlakyNode) Kill() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.down = true
	f.kills++
}

// Revive brings the vantage point back.
func (f *FlakyNode) Revive() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.down = false
}

// Down reports whether the node is currently killed.
func (f *FlakyNode) Down() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down
}

// Kills reports how many times the node has been killed.
func (f *FlakyNode) Kills() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.kills
}
