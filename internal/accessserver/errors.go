package accessserver

import (
	"errors"
	"fmt"
	"time"
)

// Typed sentinel errors. Every error the server returns wraps exactly
// one of these, so callers — the HTTP layer above all — branch with
// errors.Is instead of matching message strings, and the v1 error
// envelope maps each sentinel to one HTTP status (ErrNotFound → 404,
// ErrForbidden → 403, ErrInvalid → 400, ErrConflict → 409, anything
// else → 500).
var (
	// ErrNotFound reports a missing resource: unknown job, build, node,
	// device or artifact.
	ErrNotFound = errors.New("accessserver: not found")
	// ErrForbidden reports a permission the user's role lacks.
	ErrForbidden = errors.New("accessserver: forbidden")
	// ErrInvalid reports malformed input: empty job names, bad specs,
	// unparseable bodies.
	ErrInvalid = errors.New("accessserver: invalid request")
	// ErrConflict reports a request that is well-formed but collides
	// with current state: duplicate job names, unapproved revisions,
	// cancelling a finished build.
	ErrConflict = errors.New("accessserver: conflict")
	// ErrNodeLost reports a build that could not be completed because
	// its vantage point died (or never appeared) and the failover
	// budget is spent. The v1 wire status carries it as the node_lost
	// flag.
	ErrNodeLost = errors.New("accessserver: node lost")
	// ErrJobDeleted reports a build whose job was deleted while it sat
	// in the queue.
	ErrJobDeleted = errors.New("accessserver: job deleted")
	// ErrExpired reports a build id whose record aged out of the
	// retention window — it existed, but only a tombstone remains. The
	// v1 status endpoint answers it with an "expired" marker; every
	// other route maps it to 404.
	ErrExpired = errors.New("accessserver: build expired")
	// ErrInsufficientCredits reports a submission rejected by the §5
	// credit economy: the member's ledger balance cannot cover the
	// experiment. The v1 API maps it to 402 (insufficient_credits).
	ErrInsufficientCredits = errors.New("accessserver: insufficient credits")
	// ErrOverloaded reports a submission shed by admission control: the
	// owner is at their in-flight cap, or the queue crossed the shed
	// watermark. The v1 API maps it to 429 (overloaded) and the error
	// envelope carries a machine-readable shed reason.
	ErrOverloaded = errors.New("accessserver: overloaded")
	// ErrPeerLost reports a routed build reclaimed because the peer
	// server executing it went suspect or the relay broke. The scheduler
	// treats it exactly like ErrNodeLost — requeue while the failover
	// budget lasts — and the wire status carries it as node_lost.
	ErrPeerLost = errors.New("accessserver: peer lost")
	// ErrPeerUnavailable reports a cross-server submission that cannot
	// proceed right now: the only vantage point matching the spec lives
	// on a peer that is not online. The v1 API maps it to 503
	// (peer_unavailable) with a Retry-After hint so clients resubmit
	// after a heartbeat interval instead of hammering.
	ErrPeerUnavailable = errors.New("accessserver: peer unavailable")
)

// Shed reasons carried on the wire when admission control rejects a
// submission (api.Error.ShedReason).
const (
	// ShedOwnerCap: the submitting owner already has their in-flight
	// quota of builds queued or running.
	ShedOwnerCap = "owner_cap"
	// ShedQueueWatermark: the dispatch queue crossed the shed
	// watermark; the fleet is saturated regardless of who asks.
	ShedQueueWatermark = "queue_watermark"
)

// overloadError wraps ErrOverloaded with the machine-readable shed
// reason the 429 envelope carries, so clients can tell "you are over
// your quota" (back off yourself) from "the fleet is full" (back off
// globally) without parsing messages.
type overloadError struct {
	shed string
	msg  string
}

func (e *overloadError) Error() string { return e.msg }

// Is makes errors.Is(err, ErrOverloaded) work across the wrap.
func (e *overloadError) Is(target error) bool { return target == ErrOverloaded }

// ShedReason reports the typed shed cause (ShedOwnerCap or
// ShedQueueWatermark).
func (e *overloadError) ShedReason() string { return e.shed }

// overloadf builds a typed admission rejection.
func overloadf(shed, format string, args ...any) error {
	return &overloadError{shed: shed, msg: fmt.Sprintf(format, args...)}
}

// ShedReasonOf extracts the typed shed reason from an admission
// rejection ("" for any other error).
func ShedReasonOf(err error) string {
	var oe *overloadError
	if errors.As(err, &oe) {
		return oe.shed
	}
	return ""
}

// peerUnavailableError wraps ErrPeerUnavailable with the retry hint the
// 503 envelope carries as a Retry-After header: one peer heartbeat
// interval, after which the peer may have come back (or its census may
// have stopped advertising the node).
type peerUnavailableError struct {
	msg        string
	retryAfter time.Duration
}

func (e *peerUnavailableError) Error() string { return e.msg }

// Is makes errors.Is(err, ErrPeerUnavailable) work across the wrap.
func (e *peerUnavailableError) Is(target error) bool { return target == ErrPeerUnavailable }

// peerUnavailablef builds a typed cross-server routing rejection.
func peerUnavailablef(retryAfter time.Duration, format string, args ...any) error {
	return &peerUnavailableError{retryAfter: retryAfter, msg: fmt.Sprintf(format, args...)}
}

// RetryAfterOf extracts the retry hint from a peer-unavailable
// rejection (0 for any other error).
func RetryAfterOf(err error) time.Duration {
	var pe *peerUnavailableError
	if errors.As(err, &pe) {
		return pe.retryAfter
	}
	return 0
}

// markedErr builds an error that matches every listed sentinel under
// errors.Is — for failures that belong to two typed families at once
// (a routed build lost with its peer is both ErrPeerLost and, for the
// wire's node_lost flag, ErrNodeLost).
func markedErr(msg string, sentinels ...error) error {
	return &recoveredErr{msg: msg, sentinels: sentinels}
}

// recoveredErr is a failure cause reconstructed from the store: the
// original error value (a wrapped chain) is gone, but the message and
// the typed markers that crossed the WAL survive, so errors.Is keeps
// working against recovered builds and the wire status is byte-
// identical to the pre-crash one.
type recoveredErr struct {
	msg       string
	sentinels []error
}

func (e *recoveredErr) Error() string { return e.msg }

// Is reports whether target is one of the persisted typed markers.
func (e *recoveredErr) Is(target error) bool {
	for _, s := range e.sentinels {
		if target == s {
			return true
		}
	}
	return false
}
