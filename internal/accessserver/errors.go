package accessserver

import "errors"

// Typed sentinel errors. Every error the server returns wraps exactly
// one of these, so callers — the HTTP layer above all — branch with
// errors.Is instead of matching message strings, and the v1 error
// envelope maps each sentinel to one HTTP status (ErrNotFound → 404,
// ErrForbidden → 403, ErrInvalid → 400, ErrConflict → 409, anything
// else → 500).
var (
	// ErrNotFound reports a missing resource: unknown job, build, node,
	// device or artifact.
	ErrNotFound = errors.New("accessserver: not found")
	// ErrForbidden reports a permission the user's role lacks.
	ErrForbidden = errors.New("accessserver: forbidden")
	// ErrInvalid reports malformed input: empty job names, bad specs,
	// unparseable bodies.
	ErrInvalid = errors.New("accessserver: invalid request")
	// ErrConflict reports a request that is well-formed but collides
	// with current state: duplicate job names, unapproved revisions,
	// cancelling a finished build.
	ErrConflict = errors.New("accessserver: conflict")
	// ErrNodeLost reports a build that could not be completed because
	// its vantage point died (or never appeared) and the failover
	// budget is spent. The v1 wire status carries it as the node_lost
	// flag.
	ErrNodeLost = errors.New("accessserver: node lost")
	// ErrJobDeleted reports a build whose job was deleted while it sat
	// in the queue.
	ErrJobDeleted = errors.New("accessserver: job deleted")
	// ErrExpired reports a build id whose record aged out of the
	// retention window — it existed, but only a tombstone remains. The
	// v1 status endpoint answers it with an "expired" marker; every
	// other route maps it to 404.
	ErrExpired = errors.New("accessserver: build expired")
)
