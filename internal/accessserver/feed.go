package accessserver

import (
	"sync"

	"batterylab/internal/api"
)

// Feed buffer bounds. Like the capture pipeline's observer queue, the
// feed is bounded and never blocks a producer: when a buffer fills,
// new records are dropped and counted rather than queued without
// limit, so a stalled HTTP consumer can never exert backpressure on
// the capture loop. At the default 1 s live-sample cadence the sample
// buffer holds over four hours of backlog.
const (
	feedEventCap  = 4096
	feedSampleCap = 16384
)

// Feed is a build's streaming log: the phase events and live power
// samples its run emitted, buffered for replay-plus-follow consumers.
// Producers (the measurement session's observer) append without ever
// blocking; consumers (the NDJSON/binary streaming handlers) read
// snapshots by cursor and wait on a change channel for more. The feed
// closes when the build finishes.
type Feed struct {
	mu      sync.Mutex
	changed chan struct{}
	events  []api.BuildEvent
	samples []api.SamplePoint
	closed  bool

	droppedEvents  int64
	droppedSamples int64

	// counters aggregates posted/dropped totals across all feeds for
	// the metrics registry. Nil in feeds built outside a server.
	counters *feedCounters
}

// newFeed returns an open feed. c may be nil.
func newFeed(c *feedCounters) *Feed {
	return &Feed{changed: make(chan struct{}), counters: c}
}

// notifyLocked wakes every waiting consumer. Callers hold f.mu.
func (f *Feed) notifyLocked() {
	close(f.changed)
	f.changed = make(chan struct{})
}

// PostEvent appends a phase event, assigning its sequence number. Full
// buffer or closed feed: the event is dropped and counted. Never
// blocks.
func (f *Feed) PostEvent(e api.BuildEvent) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || len(f.events) >= feedEventCap {
		f.droppedEvents++
		if f.counters != nil {
			f.counters.eventsDropped.Inc()
		}
		return
	}
	e.Seq = len(f.events)
	f.events = append(f.events, e)
	if f.counters != nil {
		f.counters.eventsPosted.Inc()
	}
	f.notifyLocked()
}

// PostSample appends a live sample under the same non-blocking,
// drop-when-full contract as PostEvent.
func (f *Feed) PostSample(p api.SamplePoint) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || len(f.samples) >= feedSampleCap {
		f.droppedSamples++
		if f.counters != nil {
			f.counters.samplesDropped.Inc()
		}
		return
	}
	f.samples = append(f.samples, p)
	if f.counters != nil {
		f.counters.samplesPosted.Inc()
	}
	f.notifyLocked()
}

// close marks the feed complete and wakes consumers so they can drain
// and exit. Idempotent.
func (f *Feed) close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	f.notifyLocked()
}

// EventsSince returns the events at cursor n and beyond, whether the
// feed has closed, and a channel that signals the next change. A
// consumer loops: drain the snapshot, exit when closed and caught up,
// otherwise wait on the channel (or its own context).
func (f *Feed) EventsSince(n int) (evs []api.BuildEvent, closed bool, changed <-chan struct{}) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n < len(f.events) {
		evs = append(evs, f.events[n:]...)
	}
	return evs, f.closed, f.changed
}

// SamplesSince is EventsSince for the sample stream.
func (f *Feed) SamplesSince(n int) (pts []api.SamplePoint, closed bool, changed <-chan struct{}) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n < len(f.samples) {
		pts = append(pts, f.samples[n:]...)
	}
	return pts, f.closed, f.changed
}

// Dropped reports how many events and samples the bounded buffers shed.
func (f *Feed) Dropped() (events, samples int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.droppedEvents, f.droppedSamples
}
