package accessserver

import "batterylab/internal/accessserver/feedhub"

// Feed moved to the feedhub package in the control/data plane split:
// the hub owns feed lifecycle under its own leaf lock so streaming
// subscribers never touch scheduler state. The alias keeps the
// historical accessserver.Feed name (and the pipeline-facing
// Build.Feed contract) intact.
type Feed = feedhub.Feed

// Buffer bounds, re-exported for tests and embedders that sized
// workloads against the historical accessserver constants.
const (
	feedEventCap  = feedhub.EventCap
	feedSampleCap = feedhub.SampleCap
)
