package video

import (
	"testing"
	"time"

	"batterylab/internal/device"
	"batterylab/internal/simclock"
)

func setup(t *testing.T) (*device.Device, *simclock.Virtual, *Player) {
	t.Helper()
	clk := simclock.NewVirtual()
	d, err := device.New(clk, device.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlayer("/sdcard/test.mp4")
	if err := d.Install(p); err != nil {
		t.Fatal(err)
	}
	return d, clk, p
}

func TestLaunchRequiresFile(t *testing.T) {
	d, _, _ := setup(t)
	if err := d.LaunchApp(PackageName); err == nil {
		t.Fatal("launch without media file accepted")
	}
}

func TestPlaybackDrivesPipeline(t *testing.T) {
	d, clk, _ := setup(t)
	d.Storage().Push("/sdcard/test.mp4", SampleMP4(1<<20))
	if err := d.LaunchApp(PackageName); err != nil {
		t.Fatal(err)
	}
	if rate := d.Framebuffer().UpdateRate(); rate != 30 {
		t.Fatalf("update rate = %v, want 30", rate)
	}
	if !d.Framebuffer().Decoder().On() {
		t.Fatal("decoder off during playback")
	}
	if d.CPU().FindProcess(PackageName) == nil {
		t.Fatal("player process missing")
	}
	// Playback draw should exceed idle draw by the decoder + player CPU.
	clk.Advance(time.Second)
	playing := d.CurrentMA(clk.Now())
	d.StopApp(PackageName)
	clk.Advance(time.Second)
	stopped := d.CurrentMA(clk.Now())
	if playing-stopped < 15 {
		t.Fatalf("playback delta too small: %v vs %v", playing, stopped)
	}
	if d.Framebuffer().UpdateRate() != 0 {
		t.Fatal("framebuffer active after stop")
	}
}

func TestTapTogglesPause(t *testing.T) {
	d, _, _ := setup(t)
	d.Storage().Push("/sdcard/test.mp4", SampleMP4(1024))
	d.LaunchApp(PackageName)
	d.Input(device.InputEvent{Kind: device.InputTap})
	if d.Framebuffer().UpdateRate() != 0 {
		t.Fatal("tap did not pause")
	}
	d.Input(device.InputEvent{Kind: device.InputTap})
	if d.Framebuffer().UpdateRate() != 30 {
		t.Fatal("tap did not resume")
	}
	// Non-tap input ignored.
	d.Input(device.InputEvent{Kind: device.InputKey, Key: "K"})
	if d.Framebuffer().UpdateRate() != 30 {
		t.Fatal("key press paused playback")
	}
}

func TestSampleMP4Magic(t *testing.T) {
	b := SampleMP4(64)
	if len(b) != 64 || string(b[4:10]) != "ftypmp" {
		t.Fatalf("magic = %q", b[:12])
	}
}
