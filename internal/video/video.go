// Package video models the mp4 playback workload of the paper's accuracy
// evaluation (§4.1): a video pre-loaded on the device sdcard is played
// for the duration of the test, forcing the display pipeline to update
// continuously — the worst case for the screen-mirroring encoder.
package video

import (
	"fmt"

	"batterylab/internal/device"
)

// PackageName is the player app's package id.
const PackageName = "com.batterylab.videoplayer"

// Player is a minimal media player app. It plays one file from the
// device sdcard in a loop once launched.
type Player struct {
	path string

	proc *device.Process
}

// NewPlayer returns a player bound to the given sdcard path.
func NewPlayer(path string) *Player {
	return &Player{path: path}
}

// PackageName implements device.App.
func (p *Player) PackageName() string { return PackageName }

// Launch implements device.App: it verifies the media file exists and
// starts looping playback — hardware decoder on, 30 full frames per
// second through the framebuffer, a light decode-thread CPU load.
func (p *Player) Launch(d *device.Device) error {
	if !d.Storage().Exists(p.path) {
		return fmt.Errorf("video: %s: no such file on sdcard", p.path)
	}
	p.proc = d.CPU().StartProcess(PackageName)
	p.proc.SetLoad(3.2, 1.1)
	p.proc.SetMemMB(95)
	d.Framebuffer().Decoder().SetOn(true)
	d.Framebuffer().SetActivity(30, 1.0)
	d.Logcat().Append("VideoPlayer", device.Info, "playing "+p.path)
	return nil
}

// Stop implements device.App.
func (p *Player) Stop(d *device.Device) error {
	if p.proc != nil {
		d.CPU().KillByName(PackageName)
		p.proc = nil
	}
	d.Framebuffer().Decoder().SetOn(false)
	d.Framebuffer().SetActivity(0, 0)
	d.Logcat().Append("VideoPlayer", device.Info, "stopped")
	return nil
}

// ClearData implements device.App; the player is stateless.
func (p *Player) ClearData(*device.Device) error { return nil }

// HandleInput implements device.App: any tap toggles pause.
func (p *Player) HandleInput(d *device.Device, ev device.InputEvent) error {
	if ev.Kind != device.InputTap {
		return nil
	}
	fps, _ := d.Framebuffer().Activity()
	if fps > 0 {
		d.Framebuffer().SetActivity(0, 0)
		d.Framebuffer().Decoder().SetOn(false)
		d.Logcat().Append("VideoPlayer", device.Info, "paused")
	} else {
		d.Framebuffer().SetActivity(30, 1.0)
		d.Framebuffer().Decoder().SetOn(true)
		d.Logcat().Append("VideoPlayer", device.Info, "resumed")
	}
	return nil
}

// SampleMP4 generates a placeholder mp4 payload of n bytes for pushing
// to the sdcard in tests and experiments.
func SampleMP4(n int) []byte {
	data := make([]byte, n)
	copy(data, "\x00\x00\x00\x18ftypmp42") // mp4 magic
	return data
}
