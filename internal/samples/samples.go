// Package samples is the streaming sample pipeline under BatteryLab's
// capture path: chunked columnar storage for high-rate telemetry and
// O(1)-per-sample online aggregators.
//
// One Monsoon emits 5 kHz current samples per device; a campaign runs
// many devices concurrently, so a 30-minute sweep across 8 vantage
// points is ~7M samples. The two costs this package removes from that
// path are reallocation (a flat []float64 append copies the whole
// history every time it doubles) and teardown re-scans (batch
// summarize/quantile calls that sort the full trace after capture).
//
// # Chunk size
//
// A Series stores samples in fixed-size columnar chunks of ChunkLen
// (4096) entries: one int64 timestamp column and one float64 value
// column per chunk, 64 KiB total. 4096 was chosen so that
//
//   - a chunk's two columns together fit comfortably in the L2 cache of
//     the Raspberry Pi 3B+ controllers the paper deploys (512 KiB),
//     keeping per-chunk scans cache-resident;
//   - append is O(1) amortized with *zero* copying of prior samples —
//     a full chunk is sealed and a new one allocated, so a 1M-sample
//     capture allocates ~256 chunks instead of copying ~2× the trace
//     through geometric slice growth;
//   - at the Monsoon's full 5 kHz rate a chunk spans ~0.8 s, a natural
//     granularity for chunked binary trace encoding (internal/trace v2).
//
// # Streaming aggregators
//
// Aggregator implementations consume one (timestamp, value) pair at a
// time in O(1):
//
//   - Welford: numerically stable running mean/variance plus min/max.
//     Agrees with the two-pass batch computation to ~1e-12 relative
//     error (the property tests in this package pin 1e-9).
//   - P2Quantile: the P² algorithm of Jain & Chlamtac (1985). Five
//     markers track the target quantile without storing samples. Exact
//     for n ≤ 5; beyond that the estimate is approximate, with error
//     that shrinks as the sample grows. The property tests pin the
//     documented bound |est − exact| ≤ 0.05·(max−min) for n ≥ 1000
//     on uniform, normal and bimodal inputs; typical error on smooth
//     distributions is well under 1% of the sample range. Caveat: a
//     quantile that falls inside a probability gap (e.g. the median of
//     an exactly 50/50 bimodal mixture) is ill-conditioned for any
//     constant-memory estimator — the estimate may land in either
//     mode; the tested bounds assume the quantile is interior to a
//     mode. For exact quantiles, sort once via stats.Sorted.
//   - Trapezoid: running trapezoidal time integration (unit·seconds),
//     bit-identical to the batch loop it replaces because it
//     accumulates the same terms in the same order.
//
// StreamSummary bundles all of the above so a capture loop feeds one
// aggregator and observers read a LiveSummary snapshot mid-run instead
// of waiting for teardown.
//
// NaN values are invalid measurements (the Monsoon ADC clamps its floor
// at 0 mA and can never produce them); aggregators skip them and count
// them in LiveSummary.NaNs rather than poisoning every statistic.
//
// Series and the aggregators are not safe for concurrent use; callers
// that share them across goroutines (the Monsoon model, sessions)
// serialize access with their own locks.
package samples

// ChunkLen is the number of samples per columnar chunk. See the package
// comment for why 4096.
const ChunkLen = 4096

// chunk is one columnar block: parallel timestamp and value columns.
type chunk struct {
	t []int64 // nanoseconds, caller-defined epoch
	v []float64
}

// Series is a chunked, append-only columnar sample store. The zero
// value is an empty, usable series.
type Series struct {
	chunks []*chunk
	n      int
}

// NewSeries returns an empty series.
func NewSeries() *Series { return &Series{} }

// Len reports the number of samples.
func (s *Series) Len() int { return s.n }

// Append adds one sample. Amortized O(1): a full chunk is sealed and a
// fresh one allocated; prior samples are never copied.
func (s *Series) Append(tNanos int64, v float64) {
	var c *chunk
	if len(s.chunks) > 0 {
		c = s.chunks[len(s.chunks)-1]
	}
	if c == nil || len(c.t) == ChunkLen {
		c = &chunk{
			t: make([]int64, 0, ChunkLen),
			v: make([]float64, 0, ChunkLen),
		}
		s.chunks = append(s.chunks, c)
	}
	c.t = append(c.t, tNanos)
	c.v = append(c.v, v)
	s.n++
}

// At returns the i-th sample's timestamp and value.
func (s *Series) At(i int) (tNanos int64, v float64) {
	c := s.chunks[i/ChunkLen]
	j := i % ChunkLen
	return c.t[j], c.v[j]
}

// T returns the i-th sample's timestamp.
func (s *Series) T(i int) int64 {
	return s.chunks[i/ChunkLen].t[i%ChunkLen]
}

// V returns the i-th sample's value.
func (s *Series) V(i int) float64 {
	return s.chunks[i/ChunkLen].v[i%ChunkLen]
}

// Iter walks the samples in order, chunk by chunk, calling fn until it
// returns false. It avoids At's per-index chunk arithmetic.
func (s *Series) Iter(fn func(tNanos int64, v float64) bool) {
	for _, c := range s.chunks {
		for i, t := range c.t {
			if !fn(t, c.v[i]) {
				return
			}
		}
	}
}

// Values copies the value column into a fresh flat slice.
func (s *Series) Values() []float64 {
	out := make([]float64, 0, s.n)
	for _, c := range s.chunks {
		out = append(out, c.v...)
	}
	return out
}

// Slice returns a zero-copy view of samples [i, j). It panics when the
// bounds are out of range, like a slice expression.
func (s *Series) Slice(i, j int) View {
	if i < 0 || j < i || j > s.n {
		panic("samples: Slice bounds out of range")
	}
	return View{s: s, lo: i, hi: j}
}

// View returns a zero-copy view of the whole series.
func (s *Series) View() View { return View{s: s, hi: s.n} }

// View is a zero-copy window [lo, hi) over a Series. Appends to the
// underlying series never move existing chunks, so a view stays valid
// while capture continues.
type View struct {
	s      *Series
	lo, hi int
}

// Len reports the view's sample count.
func (v View) Len() int { return v.hi - v.lo }

// At returns the view's i-th sample.
func (v View) At(i int) (int64, float64) { return v.s.At(v.lo + i) }

// Iter walks the view's samples in order.
func (v View) Iter(fn func(tNanos int64, val float64) bool) {
	idx := v.lo
	for ci := v.lo / ChunkLen; ci < len(v.s.chunks) && idx < v.hi; ci++ {
		c := v.s.chunks[ci]
		base := ci * ChunkLen
		start := idx - base
		end := len(c.t)
		if base+end > v.hi {
			end = v.hi - base
		}
		for i := start; i < end; i++ {
			if !fn(c.t[i], c.v[i]) {
				return
			}
			idx++
		}
	}
}

// Values copies the view's value column into a fresh slice.
func (v View) Values() []float64 {
	out := make([]float64, 0, v.Len())
	v.Iter(func(_ int64, val float64) bool {
		out = append(out, val)
		return true
	})
	return out
}
