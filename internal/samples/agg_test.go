package samples

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// Batch references, reimplemented here (internal/stats imports this
// package, so these tests keep their own oracle). They mirror
// stats.Summarize and stats.Quantile exactly.

func batchMean(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func batchStd(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := batchMean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

func batchQuantile(xs []float64, p float64) float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, p)
}

func relClose(a, b, rel float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= rel*math.Max(scale, 1)
}

// generators produce the adversarial input families the capture path
// sees: ADC-noised currents, constant series, zero floors (negative
// draws clamped at 0, as the Monsoon model does).
var generators = []struct {
	name string
	gen  func(r *rand.Rand, n int) []float64
}{
	{"uniform", func(r *rand.Rand, n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 500
		}
		return xs
	}},
	{"normal", func(r *rand.Rand, n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 160 + r.NormFloat64()*1.2
		}
		return xs
	}},
	{"bimodal", func(r *rand.Rand, n int) []float64 {
		// 25/75 mixture: idle draws around 20 mA, active around 400 mA.
		// The tested quantiles (p50, p95) land interior to the active
		// mode — a quantile sitting exactly on the probability gap of a
		// 50/50 mixture is ill-conditioned for any constant-memory
		// estimator (see the package comment).
		xs := make([]float64, n)
		for i := range xs {
			if r.Intn(4) == 0 {
				xs[i] = 20 + r.NormFloat64()
			} else {
				xs[i] = 400 + r.NormFloat64()*5
			}
		}
		return xs
	}},
	{"constant", func(_ *rand.Rand, n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 42.5
		}
		return xs
	}},
	{"zero-floor", func(r *rand.Rand, n int) []float64 {
		// The ADC clamp: gaussian noise around 0 with negatives
		// floored, the shape of an open-relay trace.
		xs := make([]float64, n)
		for i := range xs {
			x := r.NormFloat64() * 1.2
			if x < 0 {
				x = 0
			}
			xs[i] = x
		}
		return xs
	}},
}

func TestWelfordMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(2019))
	for _, g := range generators {
		for _, n := range []int{0, 1, 2, 5, 100, 10000} {
			xs := g.gen(r, n)
			var w Welford
			for _, x := range xs {
				w.Observe(x)
			}
			if int(w.N()) != n {
				t.Fatalf("%s n=%d: N = %d", g.name, n, w.N())
			}
			if n == 0 {
				continue
			}
			if !relClose(w.Mean(), batchMean(xs), 1e-9) {
				t.Fatalf("%s n=%d: mean %v vs batch %v", g.name, n, w.Mean(), batchMean(xs))
			}
			if !relClose(w.Std(), batchStd(xs), 1e-9) {
				t.Fatalf("%s n=%d: std %v vs batch %v", g.name, n, w.Std(), batchStd(xs))
			}
			smin, smax := xs[0], xs[0]
			for _, x := range xs {
				smin = math.Min(smin, x)
				smax = math.Max(smax, x)
			}
			if w.Min() != smin || w.Max() != smax {
				t.Fatalf("%s n=%d: min/max %v/%v vs %v/%v", g.name, n, w.Min(), w.Max(), smin, smax)
			}
		}
	}
}

func TestWelfordSkipsNaN(t *testing.T) {
	var w Welford
	w.Observe(1)
	w.Observe(math.NaN())
	w.Observe(3)
	if w.N() != 2 || w.NaNs() != 1 {
		t.Fatalf("N=%d NaNs=%d", w.N(), w.NaNs())
	}
	if w.Mean() != 2 {
		t.Fatalf("mean = %v", w.Mean())
	}
}

func TestP2ExactSmallN(t *testing.T) {
	// For n ≤ 5 the estimator must agree exactly with the batch
	// interpolated quantile — including single-sample and constant.
	cases := [][]float64{
		{7},
		{3, 1},
		{5, 5, 5},
		{0, 10, 20, 30},
		{9, 1, 5, 3, 7},
	}
	for _, xs := range cases {
		for _, p := range []float64{0.25, 0.5, 0.75, 0.95} {
			e := NewP2Quantile(p)
			for _, x := range xs {
				e.Observe(x)
			}
			want := batchQuantile(xs, p)
			if e.Value() != want {
				t.Fatalf("p=%v xs=%v: got %v, want %v", p, xs, e.Value(), want)
			}
		}
	}
}

func TestP2EmptyIsNaN(t *testing.T) {
	if !math.IsNaN(NewP2Quantile(0.5).Value()) {
		t.Fatal("empty P2 not NaN")
	}
}

// TestP2WithinDocumentedBound pins the accuracy bound the package doc
// promises: for n ≥ 1000, |est − exact| ≤ 0.05·(max−min) across the
// input families, and exact on constant series.
func TestP2WithinDocumentedBound(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for _, g := range generators {
		for _, p := range []float64{0.5, 0.95} {
			for _, n := range []int{1000, 20000} {
				xs := g.gen(r, n)
				e := NewP2Quantile(p)
				var lo, hi float64 = xs[0], xs[0]
				for _, x := range xs {
					e.Observe(x)
					lo = math.Min(lo, x)
					hi = math.Max(hi, x)
				}
				exact := batchQuantile(xs, p)
				bound := 0.05 * (hi - lo)
				if g.name == "constant" {
					bound = 0
				}
				if math.Abs(e.Value()-exact) > bound {
					t.Fatalf("%s p=%v n=%d: est %v exact %v (bound %v)",
						g.name, p, n, e.Value(), exact, bound)
				}
			}
		}
	}
}

func TestTrapezoidMatchesBatchLoop(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ts := make([]int64, 5000)
	vs := make([]float64, 5000)
	for i := range ts {
		ts[i] = int64(i) * 200_000 // 5 kHz
		vs[i] = 100 + r.Float64()*50
	}
	var tr Trapezoid
	for i := range ts {
		tr.Add(ts[i], vs[i])
	}
	// The batch loop trace.Series used before this package existed.
	var want float64
	for i := 1; i < len(ts); i++ {
		dt := float64(ts[i]-ts[i-1]) / 1e9
		want += dt * (vs[i] + vs[i-1]) / 2
	}
	if tr.IntegralSeconds() != want {
		t.Fatalf("streaming %v != batch %v (must be bit-identical)", tr.IntegralSeconds(), want)
	}
}

func TestTrapezoidEdgeCases(t *testing.T) {
	var tr Trapezoid
	if tr.IntegralSeconds() != 0 {
		t.Fatal("empty integral nonzero")
	}
	tr.Add(0, 100)
	if tr.IntegralSeconds() != 0 {
		t.Fatal("single-sample integral nonzero")
	}
	tr.Add(1e9, 100)
	if tr.IntegralSeconds() != 100 {
		t.Fatalf("got %v, want 100", tr.IntegralSeconds())
	}
	// NaNs are skipped like every other aggregator: the integral
	// bridges the surrounding samples instead of poisoning the total.
	tr.Add(15e8, math.NaN())
	tr.Add(2e9, 100)
	if tr.IntegralSeconds() != 200 {
		t.Fatalf("after NaN: got %v, want 200", tr.IntegralSeconds())
	}
}

func TestStreamSummarySnapshot(t *testing.T) {
	ss := NewStreamSummary()
	for i := 0; i < 1000; i++ {
		ss.Add(int64(i)*1e6, float64(i%100))
	}
	snap := ss.Snapshot()
	if snap.N != 1000 {
		t.Fatalf("N = %d", snap.N)
	}
	if snap.Min != 0 || snap.Max != 99 {
		t.Fatalf("min/max = %v/%v", snap.Min, snap.Max)
	}
	if !relClose(snap.Mean, 49.5, 1e-9) {
		t.Fatalf("mean = %v", snap.Mean)
	}
	if snap.P50 < 40 || snap.P50 > 60 {
		t.Fatalf("p50 = %v", snap.P50)
	}
	if snap.P95 < snap.P50 || snap.P95 > 99 {
		t.Fatalf("p95 = %v", snap.P95)
	}
	if snap.IntegralSeconds <= 0 {
		t.Fatal("integral not accumulated")
	}
}

func TestStreamSummaryNaNPolicy(t *testing.T) {
	ss := NewStreamSummary()
	ss.Add(0, 10)
	ss.Add(1e9, math.NaN())
	ss.Add(2e9, 20)
	snap := ss.Snapshot()
	if snap.N != 2 || snap.NaNs != 1 {
		t.Fatalf("N=%d NaNs=%d", snap.N, snap.NaNs)
	}
	if math.IsNaN(snap.Mean) || math.IsNaN(snap.P50) || math.IsNaN(snap.IntegralSeconds) {
		t.Fatal("NaN leaked into aggregates")
	}
	// The NaN sample is excluded from the integral entirely: the
	// trapezoid spans 10→20 over the full 2 s window.
	if snap.IntegralSeconds != 30 {
		t.Fatalf("integral = %v, want 30", snap.IntegralSeconds)
	}
}

func TestStreamSummaryEmpty(t *testing.T) {
	snap := NewStreamSummary().Snapshot()
	if snap.N != 0 || snap.Mean != 0 || snap.Std != 0 {
		t.Fatalf("empty snapshot: %+v", snap)
	}
	if !math.IsNaN(snap.P50) || !math.IsNaN(snap.P95) {
		t.Fatal("empty quantiles not NaN")
	}
}
