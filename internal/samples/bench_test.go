package samples

import (
	"math"
	"sort"
	"testing"
)

// The benchmarks model the hot path the package exists for: a 5 kHz
// Monsoon capture feeding a chunked series and streaming aggregators,
// against the flat-slice + batch-rescan baseline it replaced.

const benchN = 1_000_000 // ~200 s of capture at 5 kHz, or 8 devices × 25 s

func synth(n int) ([]int64, []float64) {
	ts := make([]int64, n)
	vs := make([]float64, n)
	for i := 0; i < n; i++ {
		ts[i] = int64(i) * 200_000
		vs[i] = 160 + 40*math.Sin(float64(i)/5000)
	}
	return ts, vs
}

func BenchmarkAppendChunked(b *testing.B) {
	ts, vs := synth(benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSeries()
		for j := 0; j < benchN; j++ {
			s.Append(ts[j], vs[j])
		}
	}
	b.ReportMetric(float64(benchN), "samples/op")
}

func BenchmarkAppendFlatBaseline(b *testing.B) {
	// The pre-samples baseline: a []struct{T;V} growing geometrically.
	ts, vs := synth(benchN)
	type sample struct {
		T int64
		V float64
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var xs []sample
		for j := 0; j < benchN; j++ {
			xs = append(xs, sample{ts[j], vs[j]})
		}
		_ = xs
	}
}

func BenchmarkAppendStreaming(b *testing.B) {
	// Chunked append plus the full online aggregator set — the real
	// capture-path cost per sample.
	ts, vs := synth(benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSeries()
		ss := NewStreamSummary()
		for j := 0; j < benchN; j++ {
			s.Append(ts[j], vs[j])
			ss.Add(ts[j], vs[j])
		}
	}
}

// BenchmarkSummarizeStreaming vs BenchmarkSummarizeBatchBaseline is the
// acceptance-criteria pair: summarize-at-teardown on a 1M-sample series.
// Streaming reads a snapshot in O(1); the batch baseline re-scans and
// sorts the full trace.

func BenchmarkSummarizeStreaming(b *testing.B) {
	ts, vs := synth(benchN)
	ss := NewStreamSummary()
	for j := 0; j < benchN; j++ {
		ss.Add(ts[j], vs[j])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := ss.Snapshot()
		if snap.N != benchN {
			b.Fatal("bad snapshot")
		}
	}
}

func BenchmarkSummarizeBatchBaseline(b *testing.B) {
	_, vs := synth(benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// stats.Summarize's shape: mean/min/max pass, variance pass,
		// then a sorted copy for the median.
		var mean, min, max float64
		min, max = vs[0], vs[0]
		var sum float64
		for _, x := range vs {
			sum += x
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		mean = sum / float64(len(vs))
		var m2 float64
		for _, x := range vs {
			d := x - mean
			m2 += d * d
		}
		sorted := make([]float64, len(vs))
		copy(sorted, vs)
		sort.Float64s(sorted)
		_ = sorted[len(sorted)/2]
		_ = m2
	}
}

func BenchmarkQuantileP2(b *testing.B) {
	_, vs := synth(benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewP2Quantile(0.95)
		for _, x := range vs {
			e.Observe(x)
		}
		_ = e.Value()
	}
}

func BenchmarkQuantileSortBaseline(b *testing.B) {
	_, vs := synth(benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sorted := make([]float64, len(vs))
		copy(sorted, vs)
		sort.Float64s(sorted)
		_ = QuantileSorted(sorted, 0.95)
	}
}

func BenchmarkIter(b *testing.B) {
	ts, vs := synth(benchN)
	s := NewSeries()
	for j := 0; j < benchN; j++ {
		s.Append(ts[j], vs[j])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		s.Iter(func(_ int64, v float64) bool {
			sum += v
			return true
		})
		if sum == 0 {
			b.Fatal("no samples")
		}
	}
}
