package samples

import (
	"math"
	"sort"
)

// Aggregator consumes one timestamped sample at a time in O(1). The
// capture path feeds every registered aggregator as samples arrive, so
// summaries are ready the instant capture stops — no teardown re-scan.
type Aggregator interface {
	Add(tNanos int64, v float64)
}

// Welford is the numerically stable online mean/variance accumulator
// (Welford 1962), extended with min/max. The zero value is ready to use.
type Welford struct {
	n        int64
	mean, m2 float64
	min, max float64
	nans     int64
}

// Add implements Aggregator. NaN values are skipped and counted.
func (w *Welford) Add(_ int64, v float64) { w.Observe(v) }

// Observe folds one value in.
func (w *Welford) Observe(v float64) {
	if math.IsNaN(v) {
		w.nans++
		return
	}
	w.n++
	if w.n == 1 {
		w.min, w.max = v, v
	} else {
		if v < w.min {
			w.min = v
		}
		if v > w.max {
			w.max = v
		}
	}
	d := v - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (v - w.mean)
}

// N reports how many (non-NaN) values were observed.
func (w *Welford) N() int64 { return w.n }

// NaNs reports how many NaN values were skipped.
func (w *Welford) NaNs() int64 { return w.nans }

// Mean reports the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var reports the running sample variance (n−1 denominator; 0 for n<2).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std reports the running sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min reports the smallest observed value (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max reports the largest observed value (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// P2Quantile estimates one quantile online with the P² algorithm (Jain
// & Chlamtac, CACM 1985): five markers track the quantile's position
// without storing the sample. Exact for n ≤ 5; see the package comment
// for the tested error bound beyond that. Construct with NewP2Quantile.
type P2Quantile struct {
	p float64
	n int64 // non-NaN count

	// q are marker heights, pos their current positions (1-based),
	// want their desired positions.
	q    [5]float64
	pos  [5]float64
	want [5]float64
	inc  [5]float64
}

// NewP2Quantile returns an estimator for the p-quantile (0 < p < 1).
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic("samples: P2 quantile p outside (0, 1)")
	}
	e := &P2Quantile{p: p}
	e.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	e.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// P reports the target quantile.
func (e *P2Quantile) P() float64 { return e.p }

// N reports how many (non-NaN) values were observed.
func (e *P2Quantile) N() int64 { return e.n }

// Add implements Aggregator. NaN values are skipped.
func (e *P2Quantile) Add(_ int64, v float64) { e.Observe(v) }

// Observe folds one value in.
func (e *P2Quantile) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	if e.n < 5 {
		e.q[e.n] = v
		e.n++
		if e.n == 5 {
			sort.Float64s(e.q[:])
			e.pos = [5]float64{1, 2, 3, 4, 5}
		}
		return
	}
	e.n++

	// Find the cell k the new value falls in, growing the extremes.
	var k int
	switch {
	case v < e.q[0]:
		e.q[0] = v
		k = 0
	case v >= e.q[4]:
		e.q[4] = v
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if v < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.want {
		e.want[i] += e.inc[i]
	}

	// Adjust the interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			q := e.parabolic(i, s)
			if e.q[i-1] < q && q < e.q[i+1] {
				e.q[i] = q
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic marker update.
func (e *P2Quantile) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+s)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-s)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback update when the parabola leaves the bracket.
func (e *P2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// Value reports the current quantile estimate. For n ≤ 5 it is the
// exact linearly interpolated order statistic (matching
// stats.Quantile); NaN when empty.
func (e *P2Quantile) Value() float64 {
	if e.n == 0 {
		return math.NaN()
	}
	if e.n <= 5 {
		buf := make([]float64, e.n)
		copy(buf, e.q[:e.n])
		sort.Float64s(buf)
		return QuantileSorted(buf, e.p)
	}
	return e.q[2]
}

// QuantileSorted returns the p-quantile of an already-sorted sample by
// linear interpolation between order statistics. It is the single
// source of the quantile convention: stats.Quantile delegates here, so
// P2Quantile's small-n exact path agrees with the batch API bit for
// bit.
func QuantileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Trapezoid integrates a timestamped series over time with the
// trapezoid rule, yielding unit·seconds. It accumulates exactly the
// terms of the batch loop it replaces, in the same order, so results
// are bit-identical.
type Trapezoid struct {
	n     int64
	prevT int64
	prevV float64
	total float64
}

// Add implements Aggregator. NaN values are skipped entirely (the
// integral bridges the surrounding samples).
func (tr *Trapezoid) Add(tNanos int64, v float64) {
	if math.IsNaN(v) {
		return
	}
	if tr.n > 0 {
		dt := float64(tNanos-tr.prevT) / 1e9
		tr.total += dt * (v + tr.prevV) / 2
	}
	tr.prevT, tr.prevV = tNanos, v
	tr.n++
}

// IntegralSeconds reports the running integral in unit·seconds.
func (tr *Trapezoid) IntegralSeconds() float64 { return tr.total }

// LiveSummary is an O(1) snapshot of a capture in flight: the running
// moments, extremes, P² quantile estimates and time integral of every
// sample seen so far. Observers read this mid-run instead of waiting
// for teardown.
type LiveSummary struct {
	// N is the number of samples aggregated (NaNs excluded).
	N int
	// Mean and Std are the running Welford moments.
	Mean, Std float64
	// Min and Max are exact running extremes.
	Min, Max float64
	// P50 and P95 are P² streaming quantile estimates (exact for N ≤ 5;
	// see the package comment for bounds beyond that). NaN when N = 0.
	P50, P95 float64
	// IntegralSeconds is the running trapezoidal time integral
	// (unit·seconds; for a mA series, milliamp-seconds).
	IntegralSeconds float64
	// NaNs counts invalid (NaN) samples that were skipped.
	NaNs int
}

// StreamSummary bundles the streaming aggregators the capture path
// needs: Welford moments, P50/P95 P² quantiles and the trapezoidal
// integral. Construct with NewStreamSummary.
type StreamSummary struct {
	mom   Welford
	p50   *P2Quantile
	p95   *P2Quantile
	integ Trapezoid
}

// NewStreamSummary returns an empty stream summary.
func NewStreamSummary() *StreamSummary {
	return &StreamSummary{p50: NewP2Quantile(0.5), p95: NewP2Quantile(0.95)}
}

// Add implements Aggregator, feeding every bundled aggregator.
func (ss *StreamSummary) Add(tNanos int64, v float64) {
	ss.mom.Observe(v)
	ss.p50.Observe(v)
	ss.p95.Observe(v)
	ss.integ.Add(tNanos, v)
}

// Snapshot reports the live summary of everything added so far.
func (ss *StreamSummary) Snapshot() LiveSummary {
	return LiveSummary{
		N:               int(ss.mom.N()),
		Mean:            ss.mom.Mean(),
		Std:             ss.mom.Std(),
		Min:             ss.mom.Min(),
		Max:             ss.mom.Max(),
		P50:             ss.p50.Value(),
		P95:             ss.p95.Value(),
		IntegralSeconds: ss.integ.IntegralSeconds(),
		NaNs:            int(ss.mom.NaNs()),
	}
}
