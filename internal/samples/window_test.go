package samples

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestWindowedAgainstBatch is the core property: every bucket's
// mean/min/max/integral must agree with a batch recomputation over
// exactly the samples that fall in the bucket, and the P² estimates
// must respect the documented error bound.
func TestWindowedAgainstBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const (
		n        = 50_000
		originNS = int64(1_000)
		widthNS  = int64(2_500_000_000) // 2.5 s ≈ 1250 samples: the documented P² regime
	)
	type sample struct {
		t int64
		v float64
	}
	var all []sample
	tcur := originNS
	for i := 0; i < n; i++ {
		tcur += int64(1_000_000 + rng.Intn(2_000_000)) // 1-3 ms cadence
		// Stationary noise: the documented P² bound assumes samples
		// arrive in an order uncorrelated with their rank (P² is
		// order-sensitive; a strongly trending series is outside its
		// envelope, as the package docs caveat).
		all = append(all, sample{tcur, 120 + rng.NormFloat64()*15})
	}

	wd := NewWindowed(originNS, widthNS, 0.5, 0.95)
	for _, s := range all {
		wd.Add(s.t, s.v)
	}
	buckets := wd.Buckets()

	// Batch recomputation per bucket.
	byBucket := map[int64][]sample{}
	for _, s := range all {
		byBucket[(s.t-originNS)/widthNS] = append(byBucket[(s.t-originNS)/widthNS], s)
	}
	if len(buckets) != len(byBucket) {
		t.Fatalf("windowed produced %d buckets, batch grouping %d", len(buckets), len(byBucket))
	}
	relErr := func(a, b float64) float64 {
		if a == b {
			return 0
		}
		return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
	}
	for _, b := range buckets {
		k := (b.StartNS - originNS) / widthNS
		group := byBucket[k]
		if int64(len(group)) != b.N {
			t.Fatalf("bucket %d: N=%d, batch has %d samples", k, b.N, len(group))
		}
		var sum, minV, maxV float64
		minV, maxV = math.Inf(1), math.Inf(-1)
		var integ float64
		for i, s := range group {
			sum += s.v
			minV = math.Min(minV, s.v)
			maxV = math.Max(maxV, s.v)
			if i > 0 {
				dt := float64(s.t-group[i-1].t) / 1e9
				integ += dt * (s.v + group[i-1].v) / 2
			}
		}
		mean := sum / float64(len(group))
		if relErr(b.Mean, mean) > 1e-9 {
			t.Errorf("bucket %d mean: windowed %v batch %v", k, b.Mean, mean)
		}
		if b.Min != minV || b.Max != maxV {
			t.Errorf("bucket %d extremes: [%v,%v] vs [%v,%v]", k, b.Min, b.Max, minV, maxV)
		}
		if relErr(b.IntegralSeconds, integ) > 1e-9 {
			t.Errorf("bucket %d integral: windowed %v batch %v", k, b.IntegralSeconds, integ)
		}
		// P² bound: exact for N ≤ 5; the documented 0.05·range envelope
		// holds for N ≥ 1000, and smaller buckets (the ragged final one)
		// get a looser safety envelope — P² error shrinks with N.
		vals := make([]float64, len(group))
		for i, s := range group {
			vals[i] = s.v
		}
		sort.Float64s(vals)
		for qi, p := range []float64{0.5, 0.95} {
			exact := QuantileSorted(vals, p)
			got := b.Quantiles[qi]
			bound := 0.05 * (maxV - minV)
			if b.N < 1000 {
				bound = 0.25 * (maxV - minV)
			}
			if b.N <= 5 {
				if got != exact {
					t.Errorf("bucket %d p%v small-n: %v != %v", k, p, got, exact)
				}
			} else if math.Abs(got-exact) > bound+1e-12 {
				t.Errorf("bucket %d p%v: %v vs exact %v exceeds P² bound", k, p, got, exact)
			}
		}
	}
}

// TestWindowedBucketEdges pins boundary behavior: a sample exactly on
// a bucket boundary opens the next bucket, pre-origin samples get
// negative buckets, and NaNs are counted but excluded.
func TestWindowedBucketEdges(t *testing.T) {
	wd := NewWindowed(0, 100, 0.5)
	wd.Add(-50, 1) // bucket -1
	wd.Add(0, 2)   // bucket 0
	wd.Add(99, 4)  // bucket 0
	wd.Add(100, 8) // bucket 1, exactly on the boundary
	wd.Add(150, math.NaN())
	b := wd.Buckets()
	if len(b) != 3 {
		t.Fatalf("got %d buckets, want 3", len(b))
	}
	if b[0].StartNS != -100 || b[0].N != 1 || b[0].Mean != 1 {
		t.Fatalf("bucket -1 = %+v", b[0])
	}
	if b[1].StartNS != 0 || b[1].N != 2 || b[1].Mean != 3 {
		t.Fatalf("bucket 0 = %+v", b[1])
	}
	if b[2].StartNS != 100 || b[2].N != 1 || b[2].NaNs != 1 {
		t.Fatalf("bucket 1 = %+v", b[2])
	}

	// Buckets is a snapshot, not a drain: more adds to the open bucket
	// must show up in a second call.
	wd.Add(199, 10)
	b2 := wd.Buckets()
	if b2[2].N != 2 || b2[2].Mean != 9 {
		t.Fatalf("open bucket after second add = %+v", b2[2])
	}
	if b[2].N != 1 {
		t.Fatal("earlier snapshot mutated by later adds")
	}
}

// TestWindowedEmpty pins the zero-sample case.
func TestWindowedEmpty(t *testing.T) {
	wd := NewWindowed(0, 1000, 0.5, 0.95)
	if got := wd.Buckets(); len(got) != 0 {
		t.Fatalf("empty aggregator produced %d buckets", len(got))
	}
}
