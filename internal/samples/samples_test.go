package samples

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func fill(n int) *Series {
	s := NewSeries()
	for i := 0; i < n; i++ {
		s.Append(int64(i)*1e6, float64(i))
	}
	return s
}

func TestSeriesAppendAt(t *testing.T) {
	s := fill(3*ChunkLen + 17)
	if s.Len() != 3*ChunkLen+17 {
		t.Fatalf("len = %d", s.Len())
	}
	for _, i := range []int{0, 1, ChunkLen - 1, ChunkLen, 2*ChunkLen + 5, s.Len() - 1} {
		tn, v := s.At(i)
		if tn != int64(i)*1e6 || v != float64(i) {
			t.Fatalf("At(%d) = (%d, %v)", i, tn, v)
		}
		if s.T(i) != tn || s.V(i) != v {
			t.Fatalf("T/V(%d) disagree with At", i)
		}
	}
}

func TestSeriesZeroValueUsable(t *testing.T) {
	var s Series
	s.Append(1, 2)
	if s.Len() != 1 || s.V(0) != 2 {
		t.Fatal("zero-value series broken")
	}
}

func TestSeriesIterMatchesAt(t *testing.T) {
	s := fill(2*ChunkLen + 3)
	i := 0
	s.Iter(func(tn int64, v float64) bool {
		wt, wv := s.At(i)
		if tn != wt || v != wv {
			t.Fatalf("Iter[%d] = (%d, %v), want (%d, %v)", i, tn, v, wt, wv)
		}
		i++
		return true
	})
	if i != s.Len() {
		t.Fatalf("Iter visited %d of %d", i, s.Len())
	}
}

func TestSeriesIterEarlyStop(t *testing.T) {
	s := fill(100)
	n := 0
	s.Iter(func(int64, float64) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestSeriesValuesCopy(t *testing.T) {
	s := fill(10)
	vs := s.Values()
	vs[0] = 999
	if s.V(0) == 999 {
		t.Fatal("Values aliases the series")
	}
}

func TestSliceView(t *testing.T) {
	s := fill(3 * ChunkLen)
	v := s.Slice(ChunkLen-2, 2*ChunkLen+3)
	if v.Len() != ChunkLen+5 {
		t.Fatalf("view len = %d", v.Len())
	}
	for i := 0; i < v.Len(); i++ {
		wt, wv := s.At(ChunkLen - 2 + i)
		gt, gv := v.At(i)
		if gt != wt || gv != wv {
			t.Fatalf("view At(%d) = (%d, %v), want (%d, %v)", i, gt, gv, wt, wv)
		}
	}
	// Iter agrees with At across the chunk boundaries.
	i := 0
	v.Iter(func(tn int64, val float64) bool {
		wt, wv := v.At(i)
		if tn != wt || val != wv {
			t.Fatalf("view Iter[%d] = (%d, %v), want (%d, %v)", i, tn, val, wt, wv)
		}
		i++
		return true
	})
	if i != v.Len() {
		t.Fatalf("view Iter visited %d of %d", i, v.Len())
	}
	// Views stay valid while capture continues.
	s.Append(int64(s.Len())*1e6, 7)
	if v.Len() != ChunkLen+5 {
		t.Fatal("append changed an existing view")
	}
	vals := v.Values()
	if len(vals) != v.Len() || vals[0] != float64(ChunkLen-2) {
		t.Fatalf("view Values wrong: len=%d first=%v", len(vals), vals[0])
	}
}

func TestSliceBounds(t *testing.T) {
	s := fill(10)
	for _, tc := range [][2]int{{-1, 3}, {4, 2}, {0, 11}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Slice(%d, %d) did not panic", tc[0], tc[1])
				}
			}()
			s.Slice(tc[0], tc[1])
		}()
	}
}

func TestSeriesAppendNeverMovesChunksProperty(t *testing.T) {
	// The zero-copy claim: a view taken mid-capture reads the same
	// values after arbitrarily many further appends.
	if err := quick.Check(func(extra uint8) bool {
		s := fill(ChunkLen + 1)
		v := s.View()
		before := v.Values()
		for i := 0; i < int(extra); i++ {
			s.Append(int64(s.Len())*1e6, rand.Float64())
		}
		after := v.Values()
		if len(before) != len(after) {
			return false
		}
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
