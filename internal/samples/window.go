package samples

import "math"

// WindowSummary is the aggregate of one fixed-width time bucket: the
// same streaming moments, extremes, P² quantile estimates and
// trapezoidal integral LiveSummary carries for a whole capture, scoped
// to [StartNS, StartNS+width).
type WindowSummary struct {
	// StartNS is the bucket's inclusive start, in the same clock as the
	// timestamps fed to Add (for a trace, nanoseconds since its epoch).
	StartNS int64
	// N counts samples aggregated into the bucket (NaNs excluded).
	N int64
	// NaNs counts skipped invalid samples.
	NaNs int64
	Mean float64
	Min  float64
	Max  float64
	// Quantiles holds one P² estimate per requested rank, in the order
	// passed to NewWindowed. Exact for N ≤ 5 per bucket.
	Quantiles []float64
	// IntegralSeconds is the trapezoidal time integral of the samples
	// inside the bucket (unit·seconds). Consecutive-sample spans that
	// straddle a bucket boundary are not attributed to either bucket:
	// each bucket integrates only its own samples, so the sum of bucket
	// integrals undercounts the whole-series integral by the straddling
	// spans — use a whole-series Trapezoid for the total.
	IntegralSeconds float64
}

// Windowed partitions a time-ordered stream into fixed-width buckets
// and aggregates each with fresh Welford/P²/Trapezoid state — the
// streaming core of the server's trace analytics. It is O(buckets)
// memory and one aggregator update per sample, independent of series
// length.
type Windowed struct {
	originNS int64
	widthNS  int64
	ranks    []float64

	curIdx  int64 // bucket index of cur, valid when started
	started bool
	mom     Welford
	qs      []*P2Quantile
	integ   Trapezoid

	done []WindowSummary
}

// NewWindowed returns a windowed aggregator with buckets of widthNS
// nanoseconds starting at originNS (bucket k spans
// [origin+k·width, origin+(k+1)·width)). ranks lists the quantile
// ranks to estimate per bucket, e.g. 0.5, 0.95. widthNS must be
// positive.
func NewWindowed(originNS, widthNS int64, ranks ...float64) *Windowed {
	if widthNS <= 0 {
		panic("samples: NewWindowed width must be positive")
	}
	return &Windowed{originNS: originNS, widthNS: widthNS, ranks: ranks}
}

// bucketOf floors (t-origin)/width toward negative infinity, so
// pre-origin samples land in negative buckets instead of folding into
// bucket zero.
func (wd *Windowed) bucketOf(tNanos int64) int64 {
	d := tNanos - wd.originNS
	k := d / wd.widthNS
	if d%wd.widthNS < 0 {
		k--
	}
	return k
}

// Add implements Aggregator. Samples must arrive in non-decreasing
// time order (the order every Series and trace stores them); a sample
// whose bucket precedes the current one is folded into the current
// bucket rather than reopening a flushed one.
func (wd *Windowed) Add(tNanos int64, v float64) {
	k := wd.bucketOf(tNanos)
	if !wd.started {
		wd.open(k)
	} else if k > wd.curIdx {
		wd.flush()
		wd.open(k)
	}
	wd.mom.Observe(v)
	for _, q := range wd.qs {
		q.Observe(v)
	}
	wd.integ.Add(tNanos, v)
}

func (wd *Windowed) open(k int64) {
	wd.curIdx = k
	wd.started = true
	wd.mom = Welford{}
	wd.qs = wd.qs[:0]
	for _, p := range wd.ranks {
		wd.qs = append(wd.qs, NewP2Quantile(p))
	}
	wd.integ = Trapezoid{}
}

// snapshotCur summarizes the open bucket without disturbing its
// aggregator state.
func (wd *Windowed) snapshotCur() WindowSummary {
	s := WindowSummary{
		StartNS:         wd.originNS + wd.curIdx*wd.widthNS,
		N:               wd.mom.N(),
		NaNs:            wd.mom.NaNs(),
		Mean:            wd.mom.Mean(),
		Min:             wd.mom.Min(),
		Max:             wd.mom.Max(),
		IntegralSeconds: wd.integ.IntegralSeconds(),
	}
	if s.N == 0 {
		s.Mean, s.Min, s.Max = math.NaN(), math.NaN(), math.NaN()
	}
	for _, q := range wd.qs {
		s.Quantiles = append(s.Quantiles, q.Value())
	}
	return s
}

func (wd *Windowed) flush() {
	wd.done = append(wd.done, wd.snapshotCur())
	wd.started = false
}

// Buckets returns every non-empty bucket seen so far, in time order,
// including the one still open. The aggregator remains usable; calling
// Buckets again after more Adds re-reports the final bucket with the
// extra samples folded in. Empty buckets (time ranges with no samples)
// are simply absent — callers render gaps, not zeros.
func (wd *Windowed) Buckets() []WindowSummary {
	out := make([]WindowSummary, 0, len(wd.done)+1)
	out = append(out, wd.done...)
	if wd.started {
		out = append(out, wd.snapshotCur())
	}
	return out
}
