package usb

import "testing"

type fakeDev struct {
	serial string
	events []bool
}

func (f *fakeDev) USBSerial() string            { return f.serial }
func (f *fakeDev) USBPowerChanged(powered bool) { f.events = append(f.events, powered) }

func TestAttachNotifiesCurrentPower(t *testing.T) {
	h := NewHub(2)
	d := &fakeDev{serial: "J7DUO1"}
	if err := h.Attach(0, d); err != nil {
		t.Fatal(err)
	}
	if len(d.events) != 1 || d.events[0] != true {
		t.Fatalf("events = %v, want [true]", d.events)
	}
}

func TestAttachOccupied(t *testing.T) {
	h := NewHub(1)
	h.Attach(0, &fakeDev{serial: "a"})
	if err := h.Attach(0, &fakeDev{serial: "b"}); err == nil {
		t.Fatal("double attach accepted")
	}
}

func TestAttachNil(t *testing.T) {
	h := NewHub(1)
	if err := h.Attach(0, nil); err == nil {
		t.Fatal("nil peripheral accepted")
	}
}

func TestSetPowerNotifies(t *testing.T) {
	h := NewHub(1)
	d := &fakeDev{serial: "x"}
	h.Attach(0, d)
	h.SetPower(0, false)
	h.SetPower(0, false) // no change
	h.SetPower(0, true)
	want := []bool{true, false, true}
	if len(d.events) != len(want) {
		t.Fatalf("events = %v, want %v", d.events, want)
	}
	for i := range want {
		if d.events[i] != want[i] {
			t.Fatalf("events = %v, want %v", d.events, want)
		}
	}
}

func TestDetachNotifiesPowerLoss(t *testing.T) {
	h := NewHub(1)
	d := &fakeDev{serial: "x"}
	h.Attach(0, d)
	h.Detach(0)
	if last := d.events[len(d.events)-1]; last != false {
		t.Fatal("detach did not notify power loss")
	}
	if got := h.PortOf("x"); got != -1 {
		t.Fatalf("PortOf after detach = %d", got)
	}
}

func TestPortOfAndList(t *testing.T) {
	h := NewHub(3)
	h.Attach(2, &fakeDev{serial: "b"})
	h.Attach(0, &fakeDev{serial: "a"})
	if h.PortOf("b") != 2 || h.PortOf("a") != 0 || h.PortOf("zz") != -1 {
		t.Fatal("PortOf wrong")
	}
	list := h.List()
	if len(list) != 2 || list[0].Serial != "a" || list[1].Serial != "b" {
		t.Fatalf("List = %+v", list)
	}
}

func TestPowered(t *testing.T) {
	h := NewHub(1)
	on, err := h.Powered(0)
	if err != nil || !on {
		t.Fatalf("Powered = %v, %v", on, err)
	}
	h.SetPower(0, false)
	on, _ = h.Powered(0)
	if on {
		t.Fatal("still powered after SetPower(false)")
	}
}

func TestRangeChecks(t *testing.T) {
	h := NewHub(1)
	if err := h.SetPower(9, true); err == nil {
		t.Fatal("out-of-range SetPower accepted")
	}
	if _, err := h.Powered(-1); err == nil {
		t.Fatal("negative port accepted")
	}
	if err := h.Detach(4); err == nil {
		t.Fatal("out-of-range detach accepted")
	}
}
