// Package usb models the controller's USB hub with per-port power
// control — the equivalent of uhubctl on the Raspberry Pi. USB serves two
// roles in a vantage point: it powers a test device when the device is not
// wired to the power monitor, and it carries ADB when reliability matters
// more than measurement purity. Port power must be cut during a battery
// measurement because the micro-controller activation current at the
// device interferes with the monitor's readings (§3.3).
package usb

import (
	"fmt"
	"sort"
	"sync"
)

// Peripheral is anything that can plug into a hub port. Implementations
// receive power-state notifications so they can switch their supply path
// and enable/disable their USB data function.
type Peripheral interface {
	// USBSerial identifies the peripheral on the bus.
	USBSerial() string
	// USBPowerChanged informs the peripheral that its port's VBUS went
	// up or down.
	USBPowerChanged(powered bool)
}

// Hub is a powered USB hub with individually switchable ports.
type Hub struct {
	mu    sync.Mutex
	ports []port
}

type port struct {
	powered bool
	dev     Peripheral
}

// NewHub returns a hub with n ports, all powered (the Pi boots with VBUS
// on) and empty.
func NewHub(n int) *Hub {
	h := &Hub{ports: make([]port, n)}
	for i := range h.ports {
		h.ports[i].powered = true
	}
	return h
}

// Ports reports the number of ports.
func (h *Hub) Ports() int { return len(h.ports) }

func (h *Hub) check(n int) error {
	if n < 0 || n >= len(h.ports) {
		return fmt.Errorf("usb: port %d out of range [0,%d)", n, len(h.ports))
	}
	return nil
}

// Attach plugs a peripheral into port n. The peripheral immediately
// observes the port's current power state.
func (h *Hub) Attach(n int, dev Peripheral) error {
	if err := h.check(n); err != nil {
		return err
	}
	if dev == nil {
		return fmt.Errorf("usb: nil peripheral")
	}
	h.mu.Lock()
	if h.ports[n].dev != nil {
		h.mu.Unlock()
		return fmt.Errorf("usb: port %d occupied by %q", n, h.ports[n].dev.USBSerial())
	}
	h.ports[n].dev = dev
	powered := h.ports[n].powered
	h.mu.Unlock()
	dev.USBPowerChanged(powered)
	return nil
}

// Detach unplugs port n's peripheral, notifying it of power loss first.
func (h *Hub) Detach(n int) error {
	if err := h.check(n); err != nil {
		return err
	}
	h.mu.Lock()
	dev := h.ports[n].dev
	h.ports[n].dev = nil
	h.mu.Unlock()
	if dev != nil {
		dev.USBPowerChanged(false)
	}
	return nil
}

// SetPower switches a port's VBUS — the uhubctl operation. The attached
// peripheral, if any, is notified on changes.
func (h *Hub) SetPower(n int, on bool) error {
	if err := h.check(n); err != nil {
		return err
	}
	h.mu.Lock()
	changed := h.ports[n].powered != on
	h.ports[n].powered = on
	dev := h.ports[n].dev
	h.mu.Unlock()
	if changed && dev != nil {
		dev.USBPowerChanged(on)
	}
	return nil
}

// Powered reports a port's VBUS state.
func (h *Hub) Powered(n int) (bool, error) {
	if err := h.check(n); err != nil {
		return false, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ports[n].powered, nil
}

// PortOf finds the port holding the peripheral with the given serial,
// or -1.
func (h *Hub) PortOf(serial string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, p := range h.ports {
		if p.dev != nil && p.dev.USBSerial() == serial {
			return i
		}
	}
	return -1
}

// List reports the attached peripherals' serials sorted by port, the
// equivalent of `lsusb`/`adb devices` inventory at the transport level.
func (h *Hub) List() []PortInfo {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []PortInfo
	for i, p := range h.ports {
		if p.dev != nil {
			out = append(out, PortInfo{Port: i, Serial: p.dev.USBSerial(), Powered: p.powered})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Port < out[j].Port })
	return out
}

// PortInfo describes one occupied port.
type PortInfo struct {
	Port    int
	Serial  string
	Powered bool
}
