package power

import (
	"math"
	"testing"
	"time"
)

var now = time.Date(2019, 11, 13, 9, 0, 0, 0, time.UTC)

func TestRailSumsComponents(t *testing.T) {
	r := NewRail()
	if err := r.Attach(NewConstant("a", 10)); err != nil {
		t.Fatal(err)
	}
	if err := r.Attach(NewConstant("b", 32)); err != nil {
		t.Fatal(err)
	}
	if got := r.CurrentMA(now); got != 42 {
		t.Fatalf("rail = %v, want 42", got)
	}
}

func TestRailDuplicateAttach(t *testing.T) {
	r := NewRail()
	if err := r.Attach(NewConstant("cpu", 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Attach(NewConstant("cpu", 2)); err == nil {
		t.Fatal("duplicate attach accepted")
	}
}

func TestRailDetach(t *testing.T) {
	r := NewRail()
	r.Attach(NewConstant("a", 10))
	r.Detach("a")
	if got := r.CurrentMA(now); got != 0 {
		t.Fatalf("rail after detach = %v", got)
	}
	r.Detach("missing") // no-op
}

func TestRailIgnoresNegative(t *testing.T) {
	r := NewRail()
	r.Attach(NewConstant("bad", -5))
	r.Attach(NewConstant("good", 7))
	if got := r.CurrentMA(now); got != 7 {
		t.Fatalf("rail = %v, want 7 (negative clamped)", got)
	}
}

func TestRailBreakdownSorted(t *testing.T) {
	r := NewRail()
	r.Attach(NewConstant("screen", 90))
	r.Attach(NewConstant("cpu", 50))
	bd := r.Breakdown(now)
	if len(bd) != 2 || bd[0].Name != "cpu" || bd[1].Name != "screen" {
		t.Fatalf("breakdown = %+v", bd)
	}
	if bd[0].MA != 50 || bd[1].MA != 90 {
		t.Fatalf("breakdown values = %+v", bd)
	}
}

func TestSwitchedGate(t *testing.T) {
	s := NewSwitched("screen", SourceFunc(func(time.Time) float64 { return 90 }))
	if s.On() {
		t.Fatal("switched starts on")
	}
	if got := s.CurrentMA(now); got != 0 {
		t.Fatalf("off draw = %v", got)
	}
	s.SetOn(true)
	if got := s.CurrentMA(now); got != 90 {
		t.Fatalf("on draw = %v", got)
	}
	s.SetOn(false)
	if got := s.CurrentMA(now); got != 0 {
		t.Fatalf("re-off draw = %v", got)
	}
}

func TestScaled(t *testing.T) {
	s := NewScaled("loss", SourceFunc(func(time.Time) float64 { return 100 }), 1.005)
	if got := s.CurrentMA(now); math.Abs(got-100.5) > 1e-9 {
		t.Fatalf("scaled = %v", got)
	}
}

func TestSourceFunc(t *testing.T) {
	var called bool
	f := SourceFunc(func(time.Time) float64 { called = true; return 1 })
	if f.CurrentMA(now) != 1 || !called {
		t.Fatal("SourceFunc adapter broken")
	}
}

func TestRailEmptyIsZero(t *testing.T) {
	if got := NewRail().CurrentMA(now); got != 0 {
		t.Fatalf("empty rail = %v", got)
	}
}
