// Package power defines the component-based current model shared by the
// device and controller simulations. A device's instantaneous current draw
// is the sum of its components' draws (SoC base, CPU, screen, radios,
// codecs); the Monsoon model samples that sum at 5 kHz.
//
// All currents are in milliamps at the rail's nominal voltage.
package power

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Source reports instantaneous current draw in mA at time now. Values
// must be non-negative. Implementations must be safe for concurrent use:
// the power monitor samples from its own ticker while workloads mutate
// component state.
type Source interface {
	CurrentMA(now time.Time) float64
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(now time.Time) float64

// CurrentMA implements Source.
func (f SourceFunc) CurrentMA(now time.Time) float64 { return f(now) }

// Component is a named contributor to a rail's total draw.
type Component interface {
	Source
	Name() string
}

// Rail aggregates components into a single measurable supply rail.
type Rail struct {
	mu         sync.RWMutex
	components map[string]Component
}

// NewRail returns an empty rail.
func NewRail() *Rail {
	return &Rail{components: make(map[string]Component)}
}

// Attach adds a component. Attaching a second component with the same
// name is a wiring bug and returns an error.
func (r *Rail) Attach(c Component) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.components[c.Name()]; dup {
		return fmt.Errorf("power: component %q already attached", c.Name())
	}
	r.components[c.Name()] = c
	return nil
}

// Detach removes a component by name. Detaching an absent component is a
// no-op.
func (r *Rail) Detach(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.components, name)
}

// CurrentMA implements Source by summing all attached components.
func (r *Rail) CurrentMA(now time.Time) float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total float64
	for _, c := range r.components {
		i := c.CurrentMA(now)
		if i > 0 {
			total += i
		}
	}
	return total
}

// Breakdown reports each component's instantaneous draw, sorted by name —
// the data behind per-component attribution in experiment reports.
func (r *Rail) Breakdown(now time.Time) []Draw {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Draw, 0, len(r.components))
	for name, c := range r.components {
		out = append(out, Draw{Name: name, MA: c.CurrentMA(now)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Draw is one component's contribution at an instant.
type Draw struct {
	Name string
	MA   float64
}

// Constant is a fixed-draw component (for example a sensor hub).
type Constant struct {
	name string
	ma   float64
}

// NewConstant returns a component drawing ma milliamps whenever queried.
func NewConstant(name string, ma float64) *Constant {
	return &Constant{name: name, ma: ma}
}

// Name implements Component.
func (c *Constant) Name() string { return c.name }

// CurrentMA implements Source.
func (c *Constant) CurrentMA(time.Time) float64 { return c.ma }

// Switched wraps a component behind an on/off gate (a screen, a hardware
// codec block).
type Switched struct {
	name string
	src  Source

	mu sync.RWMutex
	on bool
}

// NewSwitched returns an initially-off gated component.
func NewSwitched(name string, src Source) *Switched {
	return &Switched{name: name, src: src}
}

// Name implements Component.
func (s *Switched) Name() string { return s.name }

// SetOn sets the gate state.
func (s *Switched) SetOn(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.on = on
}

// On reports the gate state.
func (s *Switched) On() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.on
}

// CurrentMA implements Source.
func (s *Switched) CurrentMA(now time.Time) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.on {
		return 0
	}
	return s.src.CurrentMA(now)
}

// Scaled multiplies a source by a gain, used for modelling voltage
// conversion losses and the relay's contact resistance.
type Scaled struct {
	name string
	src  Source
	gain float64
}

// NewScaled returns a component reporting gain × src.
func NewScaled(name string, src Source, gain float64) *Scaled {
	return &Scaled{name: name, src: src, gain: gain}
}

// Name implements Component.
func (s *Scaled) Name() string { return s.name }

// CurrentMA implements Source.
func (s *Scaled) CurrentMA(now time.Time) float64 {
	return s.gain * s.src.CurrentMA(now)
}
