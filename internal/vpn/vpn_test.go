package vpn

import (
	"math"
	"testing"
	"time"

	"batterylab/internal/netem"
	"batterylab/internal/rng"
)

func basePath(t *testing.T) *netem.Path {
	t.Helper()
	// Imperial College's fast campus uplink.
	p, err := netem.NewPath(
		netem.Link{Name: "wifi-ap", DownMbps: 45, UpMbps: 45, RTT: 2 * time.Millisecond},
		netem.Link{Name: "campus", DownMbps: 200, UpMbps: 200, RTT: 3 * time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newClient(t *testing.T) *Client {
	return NewClient(basePath(t), rng.New(11))
}

func TestExitsSortedByPaperOrder(t *testing.T) {
	exits := Exits()
	if len(exits) != 5 {
		t.Fatalf("exits = %d, want 5", len(exits))
	}
	if exits[0].Country != "South Africa" || exits[4].Country != "CA, USA" {
		t.Fatalf("order wrong: %v ... %v", exits[0].Country, exits[4].Country)
	}
}

func TestFindExit(t *testing.T) {
	e, err := FindExit("Bunkyo")
	if err != nil || e.CountryCode != "JP" {
		t.Fatalf("FindExit = %+v, %v", e, err)
	}
	if _, err := FindExit("Atlantis"); err == nil {
		t.Fatal("unknown exit found")
	}
}

func TestConnectDisconnect(t *testing.T) {
	c := newClient(t)
	if c.Active() != nil {
		t.Fatal("starts connected")
	}
	e, err := c.Connect("Hong Kong")
	if err != nil || e.Country != "China" {
		t.Fatalf("Connect = %+v, %v", e, err)
	}
	if c.Active() == nil || c.Active().Location != "Hong Kong" {
		t.Fatal("Active wrong")
	}
	// Switching replaces.
	c.Connect("Bunkyo")
	if c.Active().Location != "Bunkyo" {
		t.Fatal("tunnel switch failed")
	}
	c.Disconnect()
	if c.Active() != nil {
		t.Fatal("still active after disconnect")
	}
	c.Disconnect() // no-op
}

func TestPathIncludesTunnel(t *testing.T) {
	c := newClient(t)
	direct, err := c.Path()
	if err != nil {
		t.Fatal(err)
	}
	c.Connect("Johannesburg")
	tunneled, err := c.Path()
	if err != nil {
		t.Fatal(err)
	}
	if tunneled.DownMbps() >= direct.DownMbps() {
		t.Fatal("tunnel should be the bottleneck")
	}
	if tunneled.RTT() <= direct.RTT() {
		t.Fatal("tunnel should add latency")
	}
}

func TestSpeedtestNearTable2(t *testing.T) {
	c := newClient(t)
	// Paper's Table 2 values.
	want := map[string][3]float64{
		"Johannesburg": {6.26, 9.77, 222.04},
		"Hong Kong":    {7.64, 7.77, 286.32},
		"Bunkyo":       {9.68, 7.76, 239.38},
		"Sao Paulo":    {9.75, 8.82, 235.05},
		"Santa Clara":  {10.63, 14.87, 215.16},
	}
	for loc, w := range want {
		c.Connect(loc)
		res, err := c.Speedtest()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.DownMbps-w[0])/w[0] > 0.15 {
			t.Errorf("%s: down %.2f, paper %.2f", loc, res.DownMbps, w[0])
		}
		if math.Abs(res.UpMbps-w[1])/w[1] > 0.15 {
			t.Errorf("%s: up %.2f, paper %.2f", loc, res.UpMbps, w[1])
		}
		if math.Abs(res.LatencyMS-w[2])/w[2] > 0.15 {
			t.Errorf("%s: rtt %.1f, paper %.1f", loc, res.LatencyMS, w[2])
		}
	}
}

func TestSpeedtestDirect(t *testing.T) {
	c := newClient(t)
	res, err := c.Speedtest()
	if err != nil {
		t.Fatal(err)
	}
	if res.Location != "direct" {
		t.Fatalf("location = %q", res.Location)
	}
	if res.DownMbps < 20 {
		t.Fatalf("direct path too slow: %v", res.DownMbps)
	}
}

func TestTable2SortedByDownload(t *testing.T) {
	c := newClient(t)
	rows, err := c.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].DownMbps < rows[i-1].DownMbps {
			t.Fatalf("rows not sorted by download: %+v", rows)
		}
	}
	if rows[0].Country != "South Africa" {
		t.Fatalf("slowest = %s, want South Africa", rows[0].Country)
	}
	if rows[4].Country != "CA, USA" {
		t.Fatalf("fastest = %s, want CA, USA", rows[4].Country)
	}
}

func TestTable2RestoresTunnel(t *testing.T) {
	c := newClient(t)
	c.Connect("Bunkyo")
	if _, err := c.Table2(); err != nil {
		t.Fatal(err)
	}
	if a := c.Active(); a == nil || a.Location != "Bunkyo" {
		t.Fatal("Table2 did not restore the active tunnel")
	}
}
