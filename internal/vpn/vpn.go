// Package vpn models the ProtonVPN client the paper installs at the
// controller to emulate vantage points in different countries (§4.3),
// plus the speedtest used to characterize each tunnel (Table 2).
//
// Exit profiles carry true path capacities slightly above the paper's
// measured numbers; running the speedtest through a tunnel reproduces
// Table 2's download/upload/latency rows (modulo jitter), because the
// speedtest — like the real one — pays handshake and slow-start overhead.
package vpn

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"batterylab/internal/netem"
	"batterylab/internal/rng"
)

// Exit describes one VPN egress location.
type Exit struct {
	// Location is the city of the VPN node.
	Location string
	// Country is the ISO-ish country name used in the paper's Table 2.
	Country string
	// CountryCode is a two-letter code; the browser models key
	// region-dependent behaviour (ad payload size) off it.
	CountryCode string
	// SpeedtestKm is the distance to the closest speedtest server.
	SpeedtestKm float64
	// Link is the tunnel's network characteristics from the controller.
	Link netem.Link
}

// Exits returns the five ProtonVPN locations of the paper, sorted by
// measured download bandwidth as in Table 2 (South Africa slowest,
// California fastest). Capacities are the underlying path capacity; the
// speedtest measures slightly below them.
func Exits() []Exit {
	return []Exit{
		{
			Location: "Johannesburg", Country: "South Africa", CountryCode: "ZA", SpeedtestKm: 3.21,
			Link: netem.Link{Name: "vpn-johannesburg", DownMbps: 6.55, UpMbps: 10.2, RTT: 214 * time.Millisecond, Loss: 0.002},
		},
		{
			Location: "Hong Kong", Country: "China", CountryCode: "HK", SpeedtestKm: 4.86,
			Link: netem.Link{Name: "vpn-hongkong", DownMbps: 8.0, UpMbps: 8.1, RTT: 278 * time.Millisecond, Loss: 0.002},
		},
		{
			Location: "Bunkyo", Country: "Japan", CountryCode: "JP", SpeedtestKm: 2.21,
			Link: netem.Link{Name: "vpn-bunkyo", DownMbps: 10.1, UpMbps: 8.1, RTT: 231 * time.Millisecond, Loss: 0.002},
		},
		{
			Location: "Sao Paulo", Country: "Brazil", CountryCode: "BR", SpeedtestKm: 8.84,
			Link: netem.Link{Name: "vpn-saopaulo", DownMbps: 10.2, UpMbps: 9.2, RTT: 227 * time.Millisecond, Loss: 0.002},
		},
		{
			Location: "Santa Clara", Country: "CA, USA", CountryCode: "US", SpeedtestKm: 7.99,
			Link: netem.Link{Name: "vpn-santaclara", DownMbps: 11.1, UpMbps: 15.6, RTT: 207 * time.Millisecond, Loss: 0.002},
		},
	}
}

// FindExit looks an exit up by location name (case-sensitive).
func FindExit(location string) (Exit, error) {
	for _, e := range Exits() {
		if e.Location == location {
			return e, nil
		}
	}
	return Exit{}, fmt.Errorf("vpn: no exit %q", location)
}

// Client is a VPN client installed at the controller. At most one tunnel
// is up at a time, like the real client.
type Client struct {
	base *netem.Path // controller's direct ISP path
	rnd  *rng.RNG

	mu     sync.Mutex
	active *Exit
}

// NewClient returns a client whose untunneled path is base.
func NewClient(base *netem.Path, rnd *rng.RNG) *Client {
	return &Client{base: base, rnd: rnd.Fork("vpn")}
}

// Connect brings up the tunnel to the named exit, replacing any previous
// tunnel.
func (c *Client) Connect(location string) (Exit, error) {
	exit, err := FindExit(location)
	if err != nil {
		return Exit{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.active = &exit
	return exit, nil
}

// Disconnect tears the tunnel down. Disconnecting with no tunnel is a
// no-op, like `protonvpn disconnect`.
func (c *Client) Disconnect() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.active = nil
}

// Active reports the current exit, or nil.
func (c *Client) Active() *Exit {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.active == nil {
		return nil
	}
	e := *c.active
	return &e
}

// Path returns the effective network path: the base path, extended with
// the tunnel hop when connected, with a fresh jitter realization.
func (c *Client) Path() (*netem.Path, error) {
	c.mu.Lock()
	active := c.active
	c.mu.Unlock()
	p := c.base
	if active != nil {
		var err error
		p, err = p.Append(active.Link)
		if err != nil {
			return nil, err
		}
	}
	return p.Jittered(c.rnd, 0.04), nil
}

// SpeedtestResult is one row of Table 2.
type SpeedtestResult struct {
	Location    string
	Country     string
	SpeedtestKm float64
	DownMbps    float64
	UpMbps      float64
	LatencyMS   float64
}

// Speedtest measures the current path the way speedtest.net does: a
// 25 MB download, a 25 MB upload and an RTT probe, all through the active
// tunnel (or the direct path when disconnected).
func (c *Client) Speedtest() (SpeedtestResult, error) {
	p, err := c.Path()
	if err != nil {
		return SpeedtestResult{}, err
	}
	const probeBytes = 25_000_000
	res := SpeedtestResult{
		DownMbps:  p.EffectiveMbps(probeBytes, true),
		UpMbps:    p.EffectiveMbps(probeBytes, false),
		LatencyMS: float64(p.RTT()) / float64(time.Millisecond),
	}
	if e := c.Active(); e != nil {
		res.Location = e.Location
		res.Country = e.Country
		res.SpeedtestKm = e.SpeedtestKm
	} else {
		res.Location = "direct"
	}
	return res, nil
}

// Table2 runs the speedtest through every exit and returns the rows
// sorted by download bandwidth ascending — the layout of the paper's
// Table 2.
func (c *Client) Table2() ([]SpeedtestResult, error) {
	prev := c.Active()
	defer func() {
		if prev != nil {
			c.Connect(prev.Location)
		} else {
			c.Disconnect()
		}
	}()
	var rows []SpeedtestResult
	for _, e := range Exits() {
		if _, err := c.Connect(e.Location); err != nil {
			return nil, err
		}
		row, err := c.Speedtest()
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].DownMbps < rows[j].DownMbps })
	return rows, nil
}
