// Package sshx is the secure control channel between BatteryLab's access
// server and each vantage point controller — the role OpenSSH plays in
// the paper (§3.1, §3.4): the access server is granted public-key access
// to the controller, locked down by an IP allowlist, and uses the channel
// to run management commands remotely.
//
// The protocol is a compact SSH analogue built from stdlib crypto:
//
//   - identity and authorization: ed25519 keys; the server (the vantage
//     point) holds an authorized_keys set and an address allowlist;
//   - key agreement: X25519 ECDH, with the client signing the transcript
//     to prove key ownership (and the server signing too, so the client
//     authenticates the host);
//   - transport: length-prefixed frames sealed with AES-256-GCM under
//     keys derived from the shared secret, one nonce counter per
//     direction;
//   - application: a request/response exec interface — the subset the
//     access server needs for job dispatch.
package sshx

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Keypair is an ed25519 identity.
type Keypair struct {
	Pub  ed25519.PublicKey
	Priv ed25519.PrivateKey
}

// GenerateKeypair creates a fresh identity.
func GenerateKeypair() (Keypair, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return Keypair{}, err
	}
	return Keypair{Pub: pub, Priv: priv}, nil
}

// Fingerprint is the hex SHA-256 of a public key, used in authorized-key
// sets and logs.
func Fingerprint(pub ed25519.PublicKey) string {
	sum := sha256.Sum256(pub)
	return fmt.Sprintf("%x", sum[:8])
}

const (
	magicClient = "BLAB-SSHX-C1"
	magicServer = "BLAB-SSHX-S1"
	maxFrame    = 1 << 20
)

// errors
var (
	ErrUnauthorizedKey  = errors.New("sshx: public key not authorized")
	ErrAddressForbidden = errors.New("sshx: peer address not allowlisted")
	ErrBadSignature     = errors.New("sshx: bad handshake signature")
)

// transcriptHash binds every handshake field together.
func transcriptHash(parts ...[]byte) []byte {
	h := sha256.New()
	for _, p := range parts {
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(p)))
		h.Write(n[:])
		h.Write(p)
	}
	return h.Sum(nil)
}

// deriveKey expands the ECDH secret into a directional AES key.
func deriveKey(secret, transcript []byte, label string) []byte {
	mac := hmac.New(sha256.New, secret)
	mac.Write(transcript)
	mac.Write([]byte(label))
	return mac.Sum(nil) // 32 bytes -> AES-256
}

// secureConn is a sealed framed transport over an io.ReadWriter.
type secureConn struct {
	rw      io.ReadWriter
	sealK   cipher.AEAD
	openK   cipher.AEAD
	sealSeq uint64
	openSeq uint64
}

func newAEAD(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

func (c *secureConn) nonce(seq uint64) []byte {
	n := make([]byte, 12)
	binary.BigEndian.PutUint64(n[4:], seq)
	return n
}

// writeFrame seals and sends one frame.
func (c *secureConn) writeFrame(payload []byte) error {
	sealed := c.sealK.Seal(nil, c.nonce(c.sealSeq), payload, nil)
	c.sealSeq++
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(sealed)))
	if _, err := c.rw.Write(hdr[:]); err != nil {
		return err
	}
	_, err := c.rw.Write(sealed)
	return err
}

// readFrame receives and opens one frame.
func (c *secureConn) readFrame() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.rw, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("sshx: frame too large (%d)", n)
	}
	sealed := make([]byte, n)
	if _, err := io.ReadFull(c.rw, sealed); err != nil {
		return nil, err
	}
	plain, err := c.openK.Open(nil, c.nonce(c.openSeq), sealed, nil)
	if err != nil {
		return nil, fmt.Errorf("sshx: frame authentication failed: %w", err)
	}
	c.openSeq++
	return plain, nil
}

// serverHandshake runs the vantage-point side of the handshake and
// returns the secured transport plus the authenticated client key.
func serverHandshake(rw io.ReadWriter, ident Keypair, authorized func(ed25519.PublicKey) bool) (*secureConn, ed25519.PublicKey, error) {
	// 1. Server hello: magic, nonce, X25519 pub, ed25519 pub.
	curve := ecdh.X25519()
	eph, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	nonce := make([]byte, 32)
	if _, err := rand.Read(nonce); err != nil {
		return nil, nil, err
	}
	hello := concat([]byte(magicServer), nonce, eph.PublicKey().Bytes(), ident.Pub)
	if err := writeRaw(rw, hello); err != nil {
		return nil, nil, err
	}

	// 2. Client response: magic, ed25519 pub, X25519 pub, signature.
	resp, err := readRaw(rw)
	if err != nil {
		return nil, nil, err
	}
	if len(resp) != len(magicClient)+ed25519.PublicKeySize+32+ed25519.SignatureSize {
		return nil, nil, fmt.Errorf("sshx: malformed client response (%d bytes)", len(resp))
	}
	off := len(magicClient)
	if string(resp[:off]) != magicClient {
		return nil, nil, errors.New("sshx: bad client magic")
	}
	clientPub := ed25519.PublicKey(resp[off : off+ed25519.PublicKeySize])
	off += ed25519.PublicKeySize
	clientX := resp[off : off+32]
	off += 32
	sig := resp[off:]

	if !authorized(clientPub) {
		return nil, nil, ErrUnauthorizedKey
	}
	transcript := transcriptHash([]byte(magicServer), nonce, eph.PublicKey().Bytes(), ident.Pub, clientPub, clientX)
	if !ed25519.Verify(clientPub, transcript, sig) {
		return nil, nil, ErrBadSignature
	}

	// 3. Server proves its identity over the same transcript.
	serverSig := ed25519.Sign(ident.Priv, transcript)
	if err := writeRaw(rw, serverSig); err != nil {
		return nil, nil, err
	}

	clientKey, err := curve.NewPublicKey(clientX)
	if err != nil {
		return nil, nil, err
	}
	secret, err := eph.ECDH(clientKey)
	if err != nil {
		return nil, nil, err
	}
	c2s, err := newAEAD(deriveKey(secret, transcript, "c2s"))
	if err != nil {
		return nil, nil, err
	}
	s2c, err := newAEAD(deriveKey(secret, transcript, "s2c"))
	if err != nil {
		return nil, nil, err
	}
	return &secureConn{rw: rw, sealK: s2c, openK: c2s}, clientPub, nil
}

// clientHandshake runs the access-server side; expectedHost pins the
// controller's host key (nil to trust on first use).
func clientHandshake(rw io.ReadWriter, ident Keypair, expectedHost ed25519.PublicKey) (*secureConn, ed25519.PublicKey, error) {
	hello, err := readRaw(rw)
	if err != nil {
		return nil, nil, err
	}
	wantLen := len(magicServer) + 32 + 32 + ed25519.PublicKeySize
	if len(hello) != wantLen || string(hello[:len(magicServer)]) != magicServer {
		return nil, nil, errors.New("sshx: bad server hello")
	}
	off := len(magicServer)
	nonce := hello[off : off+32]
	off += 32
	serverX := hello[off : off+32]
	off += 32
	hostPub := ed25519.PublicKey(hello[off:])
	if expectedHost != nil && !hostPub.Equal(expectedHost) {
		return nil, nil, fmt.Errorf("sshx: host key mismatch (got %s)", Fingerprint(hostPub))
	}

	curve := ecdh.X25519()
	eph, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	transcript := transcriptHash([]byte(magicServer), nonce, serverX, hostPub, ident.Pub, eph.PublicKey().Bytes())
	sig := ed25519.Sign(ident.Priv, transcript)
	resp := concat([]byte(magicClient), ident.Pub, eph.PublicKey().Bytes(), sig)
	if err := writeRaw(rw, resp); err != nil {
		return nil, nil, err
	}

	serverSig, err := readRaw(rw)
	if err != nil {
		return nil, nil, fmt.Errorf("sshx: handshake rejected: %w", err)
	}
	if !ed25519.Verify(hostPub, transcript, serverSig) {
		return nil, nil, ErrBadSignature
	}

	serverKey, err := curve.NewPublicKey(serverX)
	if err != nil {
		return nil, nil, err
	}
	secret, err := eph.ECDH(serverKey)
	if err != nil {
		return nil, nil, err
	}
	c2s, err := newAEAD(deriveKey(secret, transcript, "c2s"))
	if err != nil {
		return nil, nil, err
	}
	s2c, err := newAEAD(deriveKey(secret, transcript, "s2c"))
	if err != nil {
		return nil, nil, err
	}
	return &secureConn{rw: rw, sealK: c2s, openK: s2c}, hostPub, nil
}

func concat(parts ...[]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// writeRaw sends a length-prefixed plaintext blob (handshake only).
func writeRaw(w io.Writer, b []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readRaw(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("sshx: raw blob too large (%d)", n)
	}
	b := make([]byte, n)
	_, err := io.ReadFull(r, b)
	return b, err
}
