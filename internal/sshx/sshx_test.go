package sshx

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func newPair(t *testing.T) (server *Server, client *Client, addr string) {
	t.Helper()
	hostKey, err := GenerateKeypair()
	if err != nil {
		t.Fatal(err)
	}
	clientKey, err := GenerateKeypair()
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(hostKey)
	cl := NewClient(clientKey)
	srv.AuthorizeKey(cl.PublicKey())
	srv.Handle("echo", func(_ string, args []string) (string, error) {
		return strings.Join(args, " "), nil
	})
	a, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); cl.Close() })
	return srv, cl, a
}

func TestExecRoundTrip(t *testing.T) {
	srv, cl, addr := newPair(t)
	if err := cl.Dial(addr, srv.HostKey()); err != nil {
		t.Fatal(err)
	}
	out, err := cl.Exec("echo", "hello", "vantage", "point")
	if err != nil {
		t.Fatal(err)
	}
	if out != "hello vantage point" {
		t.Fatalf("out = %q", out)
	}
	if srv.Connections() != 1 {
		t.Fatalf("connections = %d", srv.Connections())
	}
}

func TestMultipleExecsOneConnection(t *testing.T) {
	srv, cl, addr := newPair(t)
	cl.Dial(addr, srv.HostKey())
	for i := 0; i < 20; i++ {
		out, err := cl.Exec("echo", "x")
		if err != nil || out != "x" {
			t.Fatalf("iteration %d: %q, %v", i, out, err)
		}
	}
	if srv.Connections() != 1 {
		t.Fatalf("connections = %d, want 1", srv.Connections())
	}
}

func TestConcurrentExecSerialized(t *testing.T) {
	srv, cl, addr := newPair(t)
	cl.Dial(addr, srv.HostKey())
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := cl.Exec("echo", "y")
			if err != nil || out != "y" {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent exec: %v", err)
	}
}

func TestUnauthorizedKeyRejected(t *testing.T) {
	srv, _, addr := newPair(t)
	rogueKey, _ := GenerateKeypair()
	rogue := NewClient(rogueKey)
	defer rogue.Close()
	if err := rogue.Dial(addr, srv.HostKey()); err == nil {
		t.Fatal("unauthorized client connected")
	}
}

func TestRevokedKeyRejected(t *testing.T) {
	srv, cl, addr := newPair(t)
	srv.RevokeKey(cl.PublicKey())
	if err := cl.Dial(addr, srv.HostKey()); err == nil {
		t.Fatal("revoked client connected")
	}
}

func TestHostKeyPinning(t *testing.T) {
	_, cl, addr := newPair(t)
	wrongHost, _ := GenerateKeypair()
	if err := cl.Dial(addr, wrongHost.Pub); err == nil {
		t.Fatal("host key mismatch accepted")
	}
}

func TestTrustOnFirstUse(t *testing.T) {
	srv, cl, addr := newPair(t)
	if err := cl.Dial(addr, nil); err != nil {
		t.Fatal(err)
	}
	if Fingerprint(cl.HostKey()) != Fingerprint(srv.HostKey()) {
		t.Fatal("TOFU host key wrong")
	}
}

func TestIPAllowlist(t *testing.T) {
	hostKey, _ := GenerateKeypair()
	clientKey, _ := GenerateKeypair()
	srv := NewServer(hostKey)
	cl := NewClient(clientKey)
	srv.AuthorizeKey(cl.PublicKey())
	if err := srv.AllowCIDR("10.99.0.0/16"); err != nil { // excludes loopback
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := cl.Dial(addr, srv.HostKey()); err == nil {
		t.Fatal("connection from non-allowlisted address accepted")
	}
	cl.Close()
	// Widening the allowlist admits loopback.
	srv.AllowCIDR("127.0.0.0/8")
	cl2 := NewClient(clientKey)
	defer cl2.Close()
	if err := cl2.Dial(addr, srv.HostKey()); err != nil {
		t.Fatalf("allowlisted dial: %v", err)
	}
}

func TestBadCIDR(t *testing.T) {
	srv := NewServer(Keypair{})
	if err := srv.AllowCIDR("not-a-cidr"); err == nil {
		t.Fatal("bad CIDR accepted")
	}
}

func TestUnknownCommand(t *testing.T) {
	srv, cl, addr := newPair(t)
	cl.Dial(addr, srv.HostKey())
	if _, err := cl.Exec("rm-rf-slash"); err == nil {
		t.Fatal("unknown command succeeded")
	}
}

func TestHandlerError(t *testing.T) {
	srv, cl, addr := newPair(t)
	srv.Handle("fail", func(string, []string) (string, error) {
		return "", errors.New("monsoon on fire")
	})
	cl.Dial(addr, srv.HostKey())
	_, err := cl.Exec("fail")
	if err == nil || !strings.Contains(err.Error(), "monsoon on fire") {
		t.Fatalf("err = %v", err)
	}
}

func TestExecNotConnected(t *testing.T) {
	key, _ := GenerateKeypair()
	cl := NewClient(key)
	if _, err := cl.Exec("echo"); err == nil {
		t.Fatal("exec without dial succeeded")
	}
}

func TestFingerprintStable(t *testing.T) {
	key, _ := GenerateKeypair()
	if Fingerprint(key.Pub) != Fingerprint(key.Pub) {
		t.Fatal("fingerprint unstable")
	}
	other, _ := GenerateKeypair()
	if Fingerprint(key.Pub) == Fingerprint(other.Pub) {
		t.Fatal("fingerprint collision")
	}
}
