package sshx

import (
	"crypto/ed25519"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
)

// Handler executes one command for an authenticated client and returns
// its output.
type Handler func(cmd string, args []string) (string, error)

// Server is the vantage-point side of the channel: it authenticates
// clients against its authorized-key set and IP allowlist, then serves
// exec requests through the registered handlers.
type Server struct {
	ident Keypair

	mu         sync.Mutex
	authorized map[string]bool // fingerprint -> allowed
	allowCIDRs []*net.IPNet
	handlers   map[string]Handler
	listener   net.Listener
	conns      int
}

// NewServer creates a server with the given host identity.
func NewServer(ident Keypair) *Server {
	return &Server{
		ident:      ident,
		authorized: make(map[string]bool),
		handlers:   make(map[string]Handler),
	}
}

// HostKey reports the server's public host key.
func (s *Server) HostKey() ed25519.PublicKey { return s.ident.Pub }

// AuthorizeKey adds a client public key (the §3.4 "grant pubkey access
// to the access server" step).
func (s *Server) AuthorizeKey(pub ed25519.PublicKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.authorized[Fingerprint(pub)] = true
}

// RevokeKey removes a client key.
func (s *Server) RevokeKey(pub ed25519.PublicKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.authorized, Fingerprint(pub))
}

// AllowCIDR adds an address range to the IP allowlist. With no ranges
// configured, all source addresses are accepted (useful in-process).
func (s *Server) AllowCIDR(cidr string) error {
	_, ipnet, err := net.ParseCIDR(cidr)
	if err != nil {
		return fmt.Errorf("sshx: bad CIDR %q: %w", cidr, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.allowCIDRs = append(s.allowCIDRs, ipnet)
	return nil
}

func (s *Server) addrAllowed(addr net.Addr) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.allowCIDRs) == 0 {
		return true
	}
	host, _, err := net.SplitHostPort(addr.String())
	if err != nil {
		host = addr.String()
	}
	ip := net.ParseIP(host)
	if ip == nil {
		return false
	}
	for _, n := range s.allowCIDRs {
		if n.Contains(ip) {
			return true
		}
	}
	return false
}

// Handle registers a command handler.
func (s *Server) Handle(cmd string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[cmd] = h
}

func (s *Server) keyAuthorized(pub ed25519.PublicKey) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.authorized[Fingerprint(pub)]
}

// Listen starts accepting connections on addr ("127.0.0.1:0" for tests)
// and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener != nil {
		return s.listener.Close()
	}
	return nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go s.serveConn(conn)
	}
}

// serveConn runs one connection to completion.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	if !s.addrAllowed(conn.RemoteAddr()) {
		return // drop silently, like an iptables REJECT
	}
	sc, _, err := serverHandshake(conn, s.ident, s.keyAuthorized)
	if err != nil {
		return
	}
	s.mu.Lock()
	s.conns++
	s.mu.Unlock()
	for {
		req, err := sc.readFrame()
		if err != nil {
			return
		}
		var call struct {
			Cmd  string   `json:"cmd"`
			Args []string `json:"args"`
		}
		resp := struct {
			Out string `json:"out,omitempty"`
			Err string `json:"err,omitempty"`
		}{}
		if err := json.Unmarshal(req, &call); err != nil {
			resp.Err = "bad request: " + err.Error()
		} else {
			s.mu.Lock()
			h := s.handlers[call.Cmd]
			s.mu.Unlock()
			if h == nil {
				resp.Err = "unknown command: " + call.Cmd
			} else if out, err := h(call.Cmd, call.Args); err != nil {
				resp.Err = err.Error()
			} else {
				resp.Out = out
			}
		}
		raw, _ := json.Marshal(resp)
		if err := sc.writeFrame(raw); err != nil {
			return
		}
	}
}

// Connections reports how many clients completed the handshake.
func (s *Server) Connections() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conns
}

// Client is the access-server side of the channel.
type Client struct {
	ident Keypair

	mu   sync.Mutex
	conn net.Conn
	sc   *secureConn
	host ed25519.PublicKey
}

// NewClient creates a client with the given identity.
func NewClient(ident Keypair) *Client {
	return &Client{ident: ident}
}

// PublicKey reports the client's public key (for AuthorizeKey).
func (c *Client) PublicKey() ed25519.PublicKey { return c.ident.Pub }

// Dial connects and authenticates. expectedHost pins the controller's
// host key; pass nil to trust on first use (the fingerprint is then
// available via HostKey).
func (c *Client) Dial(addr string, expectedHost ed25519.PublicKey) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	sc, host, err := clientHandshake(conn, c.ident, expectedHost)
	if err != nil {
		conn.Close()
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.conn = conn
	c.sc = sc
	c.host = host
	return nil
}

// HostKey reports the connected server's host key.
func (c *Client) HostKey() ed25519.PublicKey {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.host
}

// Exec runs a command remotely and returns its output. Calls are
// serialized per connection, like commands in one SSH session.
func (c *Client) Exec(cmd string, args ...string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sc == nil {
		return "", fmt.Errorf("sshx: not connected")
	}
	req, err := json.Marshal(struct {
		Cmd  string   `json:"cmd"`
		Args []string `json:"args"`
	}{cmd, args})
	if err != nil {
		return "", err
	}
	if err := c.sc.writeFrame(req); err != nil {
		return "", err
	}
	raw, err := c.sc.readFrame()
	if err != nil {
		return "", err
	}
	var resp struct {
		Out string `json:"out"`
		Err string `json:"err"`
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		return "", err
	}
	if resp.Err != "" {
		return resp.Out, fmt.Errorf("sshx: remote: %s", strings.TrimSpace(resp.Err))
	}
	return resp.Out, nil
}

// Close terminates the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		c.sc = nil
		return err
	}
	return nil
}
