package controller

import (
	"testing"
	"time"

	"batterylab/internal/device"
)

// Failure-injection tests: the platform must degrade cleanly when the
// physical world misbehaves mid-measurement.

func TestMainsCutMidMeasurement(t *testing.T) {
	c, clk, devs := newVP(t, 1)
	serial := devs[0].Serial()
	c.USBPower(serial, false)
	armMonitor(t, c)
	if err := c.StartMonitor(serial, 500); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	// Someone (or a buggy job) flips the wall socket off.
	c.Socket().Set(false)
	if c.Monsoon().Sampling() {
		t.Fatal("monsoon kept sampling without mains")
	}
	// The device is stranded on a dead bypass: hard power loss.
	if devs[0].Booted() {
		t.Fatal("device survived a dead bypass")
	}
	// StopMonitor reports the failure rather than inventing a trace.
	if _, err := c.StopMonitor(); err == nil {
		t.Fatal("StopMonitor succeeded after mains cut")
	}
	// Recovery: relay back to battery, reboot, measurement slot free
	// after the failed stop.
	if _, err := c.BattSwitch(serial); err != nil {
		t.Fatal(err)
	}
	if devs[0].Path() != device.PathBattery {
		t.Fatalf("path = %v", devs[0].Path())
	}
	if err := devs[0].Boot(); err != nil {
		t.Fatal(err)
	}
}

func TestBatteryPulledDuringBypassIsFine(t *testing.T) {
	// The whole point of the bypass: the battery can be absent while
	// the monitor supplies the device.
	c, clk, devs := newVP(t, 1)
	serial := devs[0].Serial()
	c.USBPower(serial, false)
	armMonitor(t, c)
	if err := c.StartMonitor(serial, 500); err != nil {
		t.Fatal(err)
	}
	if err := devs[0].Battery().Detach(); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	if !devs[0].Booted() {
		t.Fatal("device died on bypass with battery removed")
	}
	series, err := c.StopMonitor()
	if err != nil {
		t.Fatal(err)
	}
	if series.Summary().Mean < 100 {
		t.Fatalf("measurement degraded: %v", series.Summary())
	}
	// But returning the relay to the battery position killed it (no
	// battery!) — StopMonitor moved the relay; the device is now off.
	if devs[0].Booted() {
		t.Fatal("device survived switch to an absent battery")
	}
	// Reseat and reboot.
	devs[0].Battery().Attach()
	devs[0].SetRelayPosition(true)
	if err := devs[0].Boot(); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceShutdownMidMeasurementReadsZero(t *testing.T) {
	c, clk, devs := newVP(t, 1)
	serial := devs[0].Serial()
	c.USBPower(serial, false)
	armMonitor(t, c)
	if err := c.StartMonitor(serial, 500); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	if err := devs[0].Shutdown(); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	series, err := c.StopMonitor()
	if err != nil {
		t.Fatal(err)
	}
	// First half live, second half near zero.
	first := series.Window(series.At(0).T, series.At(0).T.Add(2*time.Second))
	second := series.Window(series.At(0).T.Add(2*time.Second), series.At(series.Len()-1).T)
	if first.Summary().Mean < 100 {
		t.Fatalf("live half = %v", first.Summary())
	}
	if second.Summary().Mean > 10 {
		t.Fatalf("dead half = %v", second.Summary())
	}
}

func TestSamplingOverrunBounded(t *testing.T) {
	// A forgotten monitor must not grow without bound: the safety cron
	// is the backstop; this test pins the failure it prevents.
	c, clk, devs := newVP(t, 1)
	serial := devs[0].Serial()
	armMonitor(t, c)
	if err := c.StartMonitor(serial, 100); err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * time.Minute)
	if !c.Monsoon().Sampling() {
		t.Fatal("sampling stopped by itself")
	}
	if c.SafetyCheck() {
		t.Fatal("safety check must not cut a running measurement")
	}
	series, err := c.StopMonitor()
	if err != nil {
		t.Fatal(err)
	}
	if series.Len() != 60000 {
		t.Fatalf("samples = %d", series.Len())
	}
	// Now idle: safety succeeds.
	if !c.SafetyCheck() {
		t.Fatal("safety check left the idle monitor powered")
	}
}
