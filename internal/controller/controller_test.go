package controller

import (
	"strings"
	"testing"
	"time"

	"batterylab/internal/adb"
	"batterylab/internal/device"
	"batterylab/internal/simclock"
)

func newVP(t *testing.T, nDevices int) (*Controller, *simclock.Virtual, []*device.Device) {
	t.Helper()
	clk := simclock.NewVirtual()
	c, err := New(clk, Config{Name: "node1", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var devs []*device.Device
	for i := 0; i < nDevices; i++ {
		d, err := device.New(clk, device.Config{
			Seed:   uint64(i + 1),
			Serial: "J7DUO00000" + string(rune('1'+i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AttachDevice(d); err != nil {
			t.Fatal(err)
		}
		devs = append(devs, d)
	}
	return c, clk, devs
}

func armMonitor(t *testing.T, c *Controller) {
	t.Helper()
	if !c.PowerMonitor() {
		t.Fatal("power_monitor did not turn on")
	}
	if err := c.SetVoltage(3.85); err != nil {
		t.Fatal(err)
	}
}

func TestListDevices(t *testing.T) {
	c, _, _ := newVP(t, 2)
	ids := c.ListDevices()
	if len(ids) != 2 || ids[0] != "J7DUO000001" || ids[1] != "J7DUO000002" {
		t.Fatalf("list = %v", ids)
	}
}

func TestAttachLimits(t *testing.T) {
	c, clk, _ := newVP(t, MaxDevices)
	extra, _ := device.New(clk, device.Config{Seed: 99, Serial: "EXTRA"})
	if err := c.AttachDevice(extra); err == nil {
		t.Fatal("attach beyond slot budget accepted")
	}
	dup, _ := device.New(clk, device.Config{Seed: 98, Serial: "J7DUO000001"})
	if err := c.AttachDevice(dup); err == nil {
		t.Fatal("duplicate serial accepted")
	}
}

func TestStartMonitorPreconditions(t *testing.T) {
	c, _, devs := newVP(t, 1)
	serial := devs[0].Serial()
	if err := c.StartMonitor(serial, 0); err == nil {
		t.Fatal("start without monitor power accepted")
	}
	c.PowerMonitor() // on
	if err := c.StartMonitor(serial, 0); err == nil {
		t.Fatal("start without voltage accepted")
	}
	c.SetVoltage(3.85)
	if err := c.StartMonitor("nosuch", 0); err == nil {
		t.Fatal("unknown serial accepted")
	}
	if err := c.StartMonitor(serial, 0); err != nil {
		t.Fatal(err)
	}
	if c.Measuring() != serial {
		t.Fatalf("measuring = %q", c.Measuring())
	}
}

func TestMeasurementLifecycle(t *testing.T) {
	c, clk, devs := newVP(t, 1)
	serial := devs[0].Serial()
	// Measurement configuration: the device must not charge over USB.
	if err := c.USBPower(serial, false); err != nil {
		t.Fatal(err)
	}
	armMonitor(t, c)
	if err := c.StartMonitor(serial, 1000); err != nil {
		t.Fatal(err)
	}
	// Device switched to bypass: powered by the monitor.
	if devs[0].Path() != device.PathMonitor {
		t.Fatalf("device path = %v during measurement", devs[0].Path())
	}
	clk.Advance(10 * time.Second)
	series, err := c.StopMonitor()
	if err != nil {
		t.Fatal(err)
	}
	if series.Len() != 10*1000 {
		t.Fatalf("samples = %d", series.Len())
	}
	// Idle draw ~150 mA through the relay.
	mean := series.Summary().Mean
	if mean < 100 || mean > 220 {
		t.Fatalf("mean = %.1f mA", mean)
	}
	// Back on battery.
	if devs[0].Path() != device.PathBattery {
		t.Fatalf("device path = %v after stop", devs[0].Path())
	}
	if c.Measuring() != "" {
		t.Fatal("still measuring after stop")
	}
}

func TestSingleMeasurementAtATime(t *testing.T) {
	c, _, devs := newVP(t, 2)
	armMonitor(t, c)
	if err := c.StartMonitor(devs[0].Serial(), 0); err != nil {
		t.Fatal(err)
	}
	if err := c.StartMonitor(devs[1].Serial(), 0); err == nil {
		t.Fatal("concurrent measurement accepted")
	}
}

func TestStopMonitorWithoutStart(t *testing.T) {
	c, _, _ := newVP(t, 1)
	if _, err := c.StopMonitor(); err == nil {
		t.Fatal("stop without start accepted")
	}
}

func TestBattSwitchToggle(t *testing.T) {
	c, _, devs := newVP(t, 1)
	c.USBPower(devs[0].Serial(), false)
	armMonitor(t, c) // the bypass needs a live Vout to supply the device
	onBatt, err := c.BattSwitch(devs[0].Serial())
	if err != nil || onBatt {
		t.Fatalf("first toggle: onBatt=%v err=%v", onBatt, err)
	}
	if devs[0].Path() != device.PathMonitor {
		t.Fatal("device not on bypass after toggle")
	}
	onBatt, _ = c.BattSwitch(devs[0].Serial())
	if !onBatt {
		t.Fatal("second toggle should return to battery")
	}
}

func TestBattSwitchOntoDeadMonitorKillsDevice(t *testing.T) {
	c, _, devs := newVP(t, 1)
	c.USBPower(devs[0].Serial(), false)
	// Monitor off: the bypass has no supply behind it.
	if _, err := c.BattSwitch(devs[0].Serial()); err != nil {
		t.Fatal(err)
	}
	if devs[0].Booted() {
		t.Fatal("device survived switching onto a dead monitor")
	}
}

func TestDeviceMirroringToggle(t *testing.T) {
	c, _, devs := newVP(t, 1)
	on, err := c.DeviceMirroring(devs[0].Serial())
	if err != nil || !on {
		t.Fatalf("mirroring on: %v, %v", on, err)
	}
	sess, _ := c.MirrorSession(devs[0].Serial())
	if !sess.Active() {
		t.Fatal("session inactive")
	}
	on, _ = c.DeviceMirroring(devs[0].Serial())
	if on || sess.Active() {
		t.Fatal("mirroring off failed")
	}
}

func TestExecuteADB(t *testing.T) {
	c, _, devs := newVP(t, 1)
	out, err := c.ExecuteADB(devs[0].Serial(), "getprop ro.product.model")
	if err != nil || out != "Samsung J7 Duo" {
		t.Fatalf("execute_adb = %q, %v", out, err)
	}
}

func TestSafetyCheckPowersOffIdleMonitor(t *testing.T) {
	c, _, _ := newVP(t, 1)
	c.PowerMonitor() // on, no measurement
	if !c.SafetyCheck() {
		t.Fatal("safety check left idle monitor on")
	}
	if c.Socket().On() {
		t.Fatal("socket still on")
	}
	// During a measurement it must not cut power.
	armMonitor(t, c)
	c.StartMonitor(c.ListDevices()[0], 0)
	if c.SafetyCheck() {
		t.Fatal("safety check cut power mid-measurement")
	}
}

func TestControllerCPUBaseline(t *testing.T) {
	c, clk, devs := newVP(t, 1)
	serial := devs[0].Serial()
	armMonitor(t, c)
	c.StartMonitor(serial, 500)
	series, stop := c.MonitorCPU(time.Second)
	clk.Advance(30 * time.Second)
	stop()
	// Monsoon polling only: flat ~25 %.
	sum := series.Summary()
	if sum.Median < 20 || sum.Median > 30 {
		t.Fatalf("controller CPU median = %.1f, want ~25", sum.Median)
	}
}

func TestControllerCPUWithMirroring(t *testing.T) {
	c, clk, devs := newVP(t, 1)
	serial := devs[0].Serial()
	// Mirroring during a measurement needs ADB over WiFi (USB is cut).
	if err := c.ADB().EnableTCPIP(serial); err != nil {
		t.Fatal(err)
	}
	if err := c.ADB().SetTransport(serial, adb.TransportWiFi); err != nil {
		t.Fatal(err)
	}
	armMonitor(t, c)
	if err := c.StartMonitor(serial, 500); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DeviceMirroring(serial); err != nil {
		t.Fatal(err)
	}
	devs[0].Framebuffer().SetActivity(20, 0.8) // browsing-like activity
	series, stop := c.MonitorCPU(time.Second)
	clk.Advance(60 * time.Second)
	stop()
	sum := series.Summary()
	if sum.Median < 60 || sum.Median > 92 {
		t.Fatalf("mirroring CPU median = %.1f, want ~75", sum.Median)
	}
}

func TestMemoryBudget(t *testing.T) {
	c, _, devs := newVP(t, 1)
	base := c.Host().MemoryPercent()
	c.DeviceMirroring(devs[0].Serial())
	with := c.Host().MemoryPercent()
	extra := with - base
	if extra < 3 || extra > 9 {
		t.Fatalf("mirroring memory extra = %.1f%%, paper ~6%%", extra)
	}
	if with > 20 {
		t.Fatalf("total memory %.1f%% exceeds the paper's <20%%", with)
	}
}

func TestRegionFollowsVPN(t *testing.T) {
	c, _, _ := newVP(t, 1)
	if c.Region() != "GB" {
		t.Fatalf("region = %s", c.Region())
	}
	c.VPN().Connect("Bunkyo")
	if c.Region() != "JP" {
		t.Fatalf("region = %s", c.Region())
	}
	c.VPN().Disconnect()
	if c.Region() != "GB" {
		t.Fatalf("region = %s", c.Region())
	}
}

func TestDeployCert(t *testing.T) {
	c, _, _ := newVP(t, 1)
	if c.CertPEM() != nil {
		t.Fatal("cert before deploy")
	}
	c.DeployCert([]byte("CERT"), []byte("KEY"))
	if string(c.CertPEM()) != "CERT" {
		t.Fatal("cert not stored")
	}
}

func TestFactoryResetStopsMirroring(t *testing.T) {
	c, _, devs := newVP(t, 1)
	serial := devs[0].Serial()
	c.DeviceMirroring(serial)
	devs[0].Storage().Push("/sdcard/x", []byte("1"))
	if err := c.FactoryReset(serial); err != nil {
		t.Fatal(err)
	}
	sess, _ := c.MirrorSession(serial)
	if sess.Active() {
		t.Fatal("mirroring survived factory reset")
	}
	if devs[0].Storage().Exists("/sdcard/x") {
		t.Fatal("storage survived factory reset")
	}
}

func TestMonitorFailureRollsBackRelay(t *testing.T) {
	c, _, devs := newVP(t, 1)
	serial := devs[0].Serial()
	armMonitor(t, c)
	// Sabotage: cut monitor power between arm and start by toggling
	// twice (off) — but keep Vout check passing is impossible then, so
	// instead start twice: second start fails with relay untouched.
	if err := c.StartMonitor(serial, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.StartMonitor(serial, 0); err == nil {
		t.Fatal("double start accepted")
	}
	if devs[0].Path() != device.PathMonitor {
		t.Fatal("first measurement disturbed by failed second start")
	}
}

func TestUSBCutAndRestoredAroundMeasurement(t *testing.T) {
	c, clk, devs := newVP(t, 1)
	serial := devs[0].Serial()
	armMonitor(t, c)
	if devs[0].Path() != device.PathUSB {
		t.Fatalf("pre-measurement path = %v, want usb (hub powered)", devs[0].Path())
	}
	if err := c.StartMonitor(serial, 100); err != nil {
		t.Fatal(err)
	}
	if devs[0].Path() != device.PathMonitor {
		t.Fatalf("path during measurement = %v, want monitor", devs[0].Path())
	}
	clk.Advance(time.Second)
	if _, err := c.StopMonitor(); err != nil {
		t.Fatal(err)
	}
	if devs[0].Path() != device.PathUSB {
		t.Fatalf("path after stop = %v, want usb restored", devs[0].Path())
	}
}

func TestSSHSurface(t *testing.T) {
	c, _, devs := newVP(t, 1)
	serial := devs[0].Serial()
	hostKey := mustKeypair(t)
	srv := c.NewSSHServer(hostKey)
	clientKey := mustKeypair(t)
	cl := newSSHClient(t, srv, clientKey)

	out, err := cl.Exec("ping")
	if err != nil || !strings.Contains(out, "node1") {
		t.Fatalf("ping = %q, %v", out, err)
	}
	out, err = cl.Exec("list_devices")
	if err != nil || out != serial {
		t.Fatalf("list_devices = %q, %v", out, err)
	}
	if _, err := cl.Exec("power_monitor"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec("set_voltage", "3.85"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec("set_voltage", "99"); err == nil {
		t.Fatal("bad voltage accepted over SSH")
	}
	// The measurement workflow: arm ADB-over-WiFi before USB is cut.
	if _, err := cl.Exec("adb_tcpip", serial); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec("adb_transport", serial, "wifi"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec("start_monitor", serial, "100"); err != nil {
		t.Fatal(err)
	}
	out, err = cl.Exec("execute_adb", serial, "dumpsys", "battery")
	if err != nil || !strings.Contains(out, "level:") {
		t.Fatalf("execute_adb = %q, %v", out, err)
	}
	out, err = cl.Exec("stop_monitor")
	if err != nil || !strings.Contains(out, "elapsed_s") {
		t.Fatalf("stop_monitor = %q, %v", out, err)
	}
	out, err = cl.Exec("status")
	if err != nil || !strings.Contains(out, "name=node1") {
		t.Fatalf("status = %q, %v", out, err)
	}
	if _, err := cl.Exec("vpn_connect", "Hong_Kong"); err != nil {
		t.Fatal(err)
	}
	if c.Region() != "HK" {
		t.Fatal("vpn_connect did not take effect")
	}
	if _, err := cl.Exec("vpn_disconnect"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec("device_mirroring", serial); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec("factory_reset", serial); err != nil {
		t.Fatal(err)
	}
}
