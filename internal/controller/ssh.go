package controller

import (
	"encoding/base64"
	"fmt"
	"strconv"
	"strings"

	"batterylab/internal/adb"
	"batterylab/internal/sshx"
)

// Exec dispatches one management command — the controller's remote
// command surface. It backs both the sshx endpoint (NewSSHServer) and
// in-process node handles at the access server, so local and remote
// vantage points behave identically. Every Table 1 API call is
// available.
func (c *Controller) Exec(cmd string, args ...string) (string, error) {
	switch cmd {
	case "ping":
		return "pong " + c.cfg.Name, nil

	case "list_devices":
		return strings.Join(c.ListDevices(), "\n"), nil

	case "device_mirroring":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: device_mirroring <serial>")
		}
		on, err := c.DeviceMirroring(args[0])
		if err != nil {
			return "", err
		}
		if on {
			return "mirroring on", nil
		}
		return "mirroring off", nil

	case "power_monitor":
		if c.PowerMonitor() {
			return "monitor on", nil
		}
		return "monitor off", nil

	case "set_voltage":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: set_voltage <volts>")
		}
		v, err := strconv.ParseFloat(args[0], 64)
		if err != nil {
			return "", fmt.Errorf("bad voltage %q", args[0])
		}
		if err := c.SetVoltage(v); err != nil {
			return "", err
		}
		return fmt.Sprintf("vout %.2f", v), nil

	case "start_monitor":
		if len(args) < 1 || len(args) > 2 {
			return "", fmt.Errorf("usage: start_monitor <serial> [rate]")
		}
		rate := 0
		if len(args) == 2 {
			var err error
			rate, err = strconv.Atoi(args[1])
			if err != nil {
				return "", fmt.Errorf("bad rate %q", args[1])
			}
		}
		if err := c.StartMonitor(args[0], rate); err != nil {
			return "", err
		}
		return "sampling", nil

	case "stop_monitor":
		series, err := c.StopMonitor()
		if err != nil {
			return "", err
		}
		var b strings.Builder
		if err := series.WriteCSV(&b); err != nil {
			return "", err
		}
		return b.String(), nil

	case "batt_switch":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: batt_switch <serial>")
		}
		onBattery, err := c.BattSwitch(args[0])
		if err != nil {
			return "", err
		}
		if onBattery {
			return "battery", nil
		}
		return "bypass", nil

	case "execute_adb":
		if len(args) < 2 {
			return "", fmt.Errorf("usage: execute_adb <serial> <command...>")
		}
		return c.ExecuteADB(args[0], strings.Join(args[1:], " "))

	case "deploy_cert":
		if len(args) != 2 {
			return "", fmt.Errorf("usage: deploy_cert <cert-b64> <key-b64>")
		}
		cert, err := base64.StdEncoding.DecodeString(args[0])
		if err != nil {
			return "", fmt.Errorf("bad cert encoding: %w", err)
		}
		key, err := base64.StdEncoding.DecodeString(args[1])
		if err != nil {
			return "", fmt.Errorf("bad key encoding: %w", err)
		}
		c.DeployCert(cert, key)
		return "deployed", nil

	case "cert_fingerprint":
		pem := c.CertPEM()
		if pem == nil {
			return "", fmt.Errorf("no certificate deployed")
		}
		return fmt.Sprintf("%d bytes", len(pem)), nil

	case "safety_check":
		if c.SafetyCheck() {
			return "monitor powered off", nil
		}
		return "ok", nil

	case "factory_reset":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: factory_reset <serial>")
		}
		if err := c.FactoryReset(args[0]); err != nil {
			return "", err
		}
		return "reset", nil

	case "vpn_connect":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: vpn_connect <location>")
		}
		exit, err := c.vpnCl.Connect(strings.ReplaceAll(args[0], "_", " "))
		if err != nil {
			return "", err
		}
		return "connected " + exit.Location, nil

	case "vpn_disconnect":
		c.vpnCl.Disconnect()
		return "disconnected", nil

	case "adb_tcpip":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: adb_tcpip <serial>")
		}
		if err := c.adbSrv.EnableTCPIP(args[0]); err != nil {
			return "", err
		}
		return "tcpip enabled", nil

	case "adb_transport":
		if len(args) != 2 {
			return "", fmt.Errorf("usage: adb_transport <serial> <usb|wifi|bluetooth>")
		}
		var kind adb.TransportKind
		switch args[1] {
		case "usb":
			kind = adb.TransportUSB
		case "wifi":
			kind = adb.TransportWiFi
		case "bluetooth":
			kind = adb.TransportBluetooth
		default:
			return "", fmt.Errorf("unknown transport %q", args[1])
		}
		if err := c.adbSrv.SetTransport(args[0], kind); err != nil {
			return "", err
		}
		return "transport " + args[1], nil

	case "usb_power":
		if len(args) != 2 || (args[1] != "on" && args[1] != "off") {
			return "", fmt.Errorf("usage: usb_power <serial> <on|off>")
		}
		if err := c.USBPower(args[0], args[1] == "on"); err != nil {
			return "", err
		}
		return "usb " + args[1], nil

	case "status":
		now := c.clock.Now()
		return fmt.Sprintf("name=%s devices=%d measuring=%q cpu=%.1f%% mem=%.1f%%",
			c.cfg.Name, len(c.ListDevices()), c.Measuring(),
			c.host.CPUPercent(now), c.host.MemoryPercent()), nil

	default:
		return "", fmt.Errorf("controller: unknown command %q", cmd)
	}
}

// Commands lists the remote command names, for discovery/help.
func Commands() []string {
	return []string{
		"ping", "list_devices", "device_mirroring", "power_monitor",
		"set_voltage", "start_monitor", "stop_monitor", "batt_switch",
		"execute_adb", "deploy_cert", "cert_fingerprint", "safety_check",
		"factory_reset", "vpn_connect", "vpn_disconnect", "adb_tcpip",
		"adb_transport", "usb_power", "status",
	}
}

// NewSSHServer builds the controller's secure command endpoint — the
// channel the access server manages vantage points through (§3.1). The
// caller authorizes the access server's key and starts listening:
//
//	srv := ctl.NewSSHServer(hostKey)
//	srv.AuthorizeKey(accessServerPub)
//	addr, _ := srv.Listen("0.0.0.0:2222")
func (c *Controller) NewSSHServer(ident sshx.Keypair) *sshx.Server {
	srv := sshx.NewServer(ident)
	for _, cmd := range Commands() {
		cmd := cmd
		srv.Handle(cmd, func(_ string, args []string) (string, error) {
			return c.Exec(cmd, args...)
		})
	}
	return srv
}
