package controller

import (
	"testing"

	"batterylab/internal/sshx"
)

func mustKeypair(t *testing.T) sshx.Keypair {
	t.Helper()
	kp, err := sshx.GenerateKeypair()
	if err != nil {
		t.Fatal(err)
	}
	return kp
}

// newSSHClient spins up the server on loopback and returns a connected
// client.
func newSSHClient(t *testing.T, srv *sshx.Server, clientKey sshx.Keypair) *sshx.Client {
	t.Helper()
	cl := sshx.NewClient(clientKey)
	srv.AuthorizeKey(cl.PublicKey())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); cl.Close() })
	if err := cl.Dial(addr, srv.HostKey()); err != nil {
		t.Fatal(err)
	}
	return cl
}
