package controller

import (
	"sync"
	"time"

	"batterylab/internal/rng"
)

// HostModel is the Raspberry Pi 3B+ resource model: 4 cores and 1 GB of
// memory. Its CPU utilization is what Fig. 5 plots — a flat ~25 % while
// the Monsoon is being polled at full rate, jumping to a ~75 % median
// when a mirroring session's transcode stack runs.
type HostModel struct {
	noise *rng.RNG

	mu      sync.Mutex
	sources []LoadSource
}

// MemoryTotalMB is the Pi 3B+'s RAM.
const MemoryTotalMB = 1024

// baseCPUPercent is the OS idle load (kernel, sshd, dhcpcd...).
const baseCPUPercent = 5.5

// baseMemoryMB is Raspbian's resting footprint.
const baseMemoryMB = 128

// LoadSource contributes CPU and memory to the host — the Monsoon
// polling loop and each mirroring session implement this.
type LoadSource interface {
	// HostCPUPercent is the instantaneous CPU share consumed.
	HostCPUPercent(now time.Time) float64
	// HostMemoryMB is the resident memory consumed.
	HostMemoryMB() float64
}

// NewHostModel returns an idle host.
func NewHostModel(seed uint64) *HostModel {
	return &HostModel{noise: rng.New(seed).Fork("host")}
}

// AddSource attaches a load source.
func (h *HostModel) AddSource(s LoadSource) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sources = append(h.sources, s)
}

// CPUPercent reports total utilization in [0, 100] — what
// /proc/stat-based monitoring would sample.
func (h *HostModel) CPUPercent(now time.Time) float64 {
	h.mu.Lock()
	sources := append([]LoadSource{}, h.sources...)
	h.mu.Unlock()
	const epoch = 200 * time.Millisecond
	e := now.UnixNano() / int64(epoch)
	total := baseCPUPercent + h.noise.At("cpu", e).Normal(0, 1.2)
	for _, s := range sources {
		total += s.HostCPUPercent(now)
	}
	if total < 0 {
		total = 0
	}
	if total > 100 {
		total = 100
	}
	return total
}

// MemoryMB reports resident memory.
func (h *HostModel) MemoryMB() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	total := float64(baseMemoryMB)
	for _, s := range h.sources {
		total += s.HostMemoryMB()
	}
	if total > MemoryTotalMB {
		total = MemoryTotalMB
	}
	return total
}

// MemoryPercent reports memory utilization in [0, 100].
func (h *HostModel) MemoryPercent() float64 {
	return 100 * h.MemoryMB() / MemoryTotalMB
}

// monsoonPollLoad is the controller process that pulls battery readings
// from the Monsoon "at highest frequency" — the paper's constant 25 %
// CPU while a measurement runs.
type monsoonPollLoad struct {
	active func() bool
}

func (m *monsoonPollLoad) HostCPUPercent(time.Time) float64 {
	if m.active() {
		return 19.5
	}
	return 0
}

func (m *monsoonPollLoad) HostMemoryMB() float64 {
	if m.active() {
		return 14
	}
	return 0
}
