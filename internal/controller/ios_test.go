package controller

import (
	"testing"

	"batterylab/internal/device"
	"batterylab/internal/simclock"
)

// The paper treats iOS as near-term future work (§5): no ADB and no
// scrcpy, but the Bluetooth keyboard automation, the relay and the
// monitor all still apply. These tests pin that capability surface.

func newIOSVP(t *testing.T) (*Controller, *device.Device, *simclock.Virtual) {
	t.Helper()
	clk := simclock.NewVirtual()
	c, err := New(clk, Config{Name: "node-ios", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	d, err := device.New(clk, device.Config{
		Seed:   9,
		Serial: "IPHONE8-001",
		Model:  "iPhone 8",
		OS:     "ios",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachDevice(d); err != nil {
		t.Fatal(err)
	}
	return c, d, clk
}

func TestIOSAttachWithoutADB(t *testing.T) {
	c, d, _ := newIOSVP(t)
	// Listed as a test device...
	if got := c.ListDevices(); len(got) != 1 || got[0] != d.Serial() {
		t.Fatalf("devices = %v", got)
	}
	// ...but unknown to the ADB server.
	if _, err := c.ExecuteADB(d.Serial(), "echo hi"); err == nil {
		t.Fatal("execute_adb reached an iOS device")
	}
}

func TestIOSMirroringUnsupported(t *testing.T) {
	c, d, _ := newIOSVP(t)
	if _, err := c.DeviceMirroring(d.Serial()); err == nil {
		t.Fatal("scrcpy mirroring started on iOS")
	}
}

func TestIOSBluetoothKeyboardWorks(t *testing.T) {
	c, d, _ := newIOSVP(t)
	if !c.Keyboard().Paired(d.Serial()) {
		t.Fatal("iOS device not paired to the HID keyboard")
	}
	if _, err := c.Keyboard().SendKey(d.Serial(), "KEYCODE_ENTER"); err != nil {
		t.Fatal(err)
	}
}

func TestIOSMeasurable(t *testing.T) {
	c, d, clk := newIOSVP(t)
	c.USBPower(d.Serial(), false)
	c.PowerMonitor()
	if err := c.SetVoltage(d.Battery().NominalVoltage()); err != nil {
		t.Fatal(err)
	}
	if err := c.StartMonitor(d.Serial(), 500); err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * 1e9) // 5 s
	series, err := c.StopMonitor()
	if err != nil {
		t.Fatal(err)
	}
	if series.Len() == 0 || series.Summary().Mean < 50 {
		t.Fatalf("iOS measurement: %v", series.Summary())
	}
}
