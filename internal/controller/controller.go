// Package controller assembles a BatteryLab vantage point (§3.2): the
// Raspberry-Pi-class controller with its GPIO-driven relay switch, USB
// hub, WiFi access point, Bluetooth keyboard, the Monsoon power monitor
// behind its WiFi power socket, one or more test devices, a VPN client
// for network-location emulation, and the secure channel the access
// server manages it through.
//
// The controller exposes BatteryLab's API (Table 1): list_devices,
// device_mirroring, power_monitor, set_voltage, start_monitor,
// stop_monitor, batt_switch and execute_adb.
package controller

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"batterylab/internal/adb"
	"batterylab/internal/bluetooth"
	"batterylab/internal/device"
	"batterylab/internal/gpio"
	"batterylab/internal/mirror"
	"batterylab/internal/monsoon"
	"batterylab/internal/netem"
	"batterylab/internal/powersocket"
	"batterylab/internal/relay"
	"batterylab/internal/rng"
	"batterylab/internal/simclock"
	"batterylab/internal/trace"
	"batterylab/internal/usb"
	"batterylab/internal/vpn"
	"batterylab/internal/wifi"
)

// MaxDevices is the relay board's channel count (and the hub's port
// budget for test devices).
const MaxDevices = 4

// Config describes a vantage point.
type Config struct {
	// Name is the human-readable identifier registered in DNS
	// ("node1").
	Name string
	// Seed drives all the vantage point's stochastic models.
	Seed uint64
	// UplinkMbps/UplinkRTT describe the site's ISP path.
	UplinkMbps float64
	UplinkRTT  time.Duration
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "node1"
	}
	if c.UplinkMbps == 0 {
		c.UplinkMbps = 180 // a university uplink
	}
	if c.UplinkRTT == 0 {
		c.UplinkRTT = 8 * time.Millisecond
	}
	return c
}

// Controller is one vantage point.
type Controller struct {
	cfg   Config
	clock simclock.Clock
	rnd   *rng.RNG

	host   *HostModel
	bank   *gpio.Bank
	hub    *usb.Hub
	sw     *relay.Switch
	mon    *monsoon.Monsoon
	socket *powersocket.Socket
	ap     *wifi.AP
	kb     *bluetooth.HIDKeyboard
	adbSrv *adb.Server
	vpnCl  *vpn.Client

	mu        sync.Mutex
	devices   map[string]*slot // serial -> slot
	order     []string
	measuring string // serial under measurement, "" if none
	certPEM   []byte
	keyPEM    []byte
}

type slot struct {
	dev     *device.Device
	channel int // relay channel == usb port
	session *mirror.Session
	// usbWasOn remembers the port state across a measurement so
	// StopMonitor can restore it.
	usbWasOn bool
}

// New assembles a vantage point.
func New(clock simclock.Clock, cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg:     cfg,
		clock:   clock,
		rnd:     rng.New(cfg.Seed).Fork("controller/" + cfg.Name),
		host:    NewHostModel(cfg.Seed),
		bank:    gpio.NewBank(26),
		hub:     usb.NewHub(MaxDevices),
		socket:  powersocket.New("meross-" + cfg.Name),
		ap:      wifi.NewAP("batterylab-"+cfg.Name, wifi.ModeNAT),
		kb:      bluetooth.NewHIDKeyboard(clock),
		devices: make(map[string]*slot),
	}
	var err error
	c.sw, err = relay.NewSwitch(clock, c.bank, 2, MaxDevices)
	if err != nil {
		return nil, err
	}
	c.mon = monsoon.New(clock, "HV-"+cfg.Name, cfg.Seed)
	c.socket.OnChange(c.mon.SetMains)
	// A socket flip changes whether the bypass actually supplies power;
	// registered after SetMains so the monitor state is current.
	c.socket.OnChange(func(bool) { c.updateMonitorSupply() })
	c.adbSrv = adb.NewServer(c.hub, c.ap)

	base, err := netem.NewPath(netem.Link{
		Name:     "isp/" + cfg.Name,
		DownMbps: cfg.UplinkMbps, UpMbps: cfg.UplinkMbps,
		RTT: cfg.UplinkRTT,
	})
	if err != nil {
		return nil, err
	}
	c.vpnCl = vpn.NewClient(base, c.rnd)
	c.ap.SetUplink(c.vpnCl.Path)

	// Monsoon polling is a controller-CPU load while sampling.
	c.host.AddSource(&monsoonPollLoad{active: c.mon.Sampling})
	return c, nil
}

// Name reports the vantage point identifier.
func (c *Controller) Name() string { return c.cfg.Name }

// Host exposes the Pi resource model.
func (c *Controller) Host() *HostModel { return c.host }

// Monsoon exposes the power monitor (benches wire ablations through it).
func (c *Controller) Monsoon() *monsoon.Monsoon { return c.mon }

// Socket exposes the WiFi power socket.
func (c *Controller) Socket() *powersocket.Socket { return c.socket }

// AP exposes the WiFi access point.
func (c *Controller) AP() *wifi.AP { return c.ap }

// Keyboard exposes the Bluetooth HID keyboard.
func (c *Controller) Keyboard() *bluetooth.HIDKeyboard { return c.kb }

// ADB exposes the ADB server.
func (c *Controller) ADB() *adb.Server { return c.adbSrv }

// VPN exposes the VPN client.
func (c *Controller) VPN() *vpn.Client { return c.vpnCl }

// Region reports the network-visible country code, used by the browser
// models ("GB" at the first vantage point unless a tunnel is up).
func (c *Controller) Region() string {
	if e := c.vpnCl.Active(); e != nil {
		return e.CountryCode
	}
	return "GB"
}

// AttachDevice wires a test device into the next free slot: USB port,
// relay channel, WiFi association, Bluetooth pairing and ADB
// registration.
func (c *Controller) AttachDevice(d *device.Device) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.devices[d.Serial()]; dup {
		return fmt.Errorf("controller: device %s already attached", d.Serial())
	}
	ch := len(c.order)
	if ch >= MaxDevices {
		return fmt.Errorf("controller: all %d device slots occupied", MaxDevices)
	}
	if err := c.hub.Attach(ch, d); err != nil {
		return err
	}
	if err := c.ap.Connect(d); err != nil {
		return err
	}
	if err := c.kb.Pair(d); err != nil {
		return err
	}
	// ADB only speaks to Android; an iOS device is still reachable via
	// the Bluetooth keyboard (§3.3) and still measurable through the
	// relay — only ADB-dependent features (mirroring, execute_adb) are
	// unavailable for it.
	if d.Config().OS == "android" {
		if err := c.adbSrv.Register(d); err != nil {
			return err
		}
	}
	if err := c.sw.OnSwitch(ch, func(pos relay.Position) {
		d.SetRelayPosition(pos == relay.PosBattery)
	}); err != nil {
		return err
	}
	c.devices[d.Serial()] = &slot{
		dev:     d,
		channel: ch,
		session: mirror.NewSession(d, c.adbSrv, c.cfg.Seed+uint64(ch)),
	}
	c.order = append(c.order, d.Serial())
	c.host.AddSource(&sessionLoad{s: c.devices[d.Serial()].session})
	// The device must see the monitor's actual supply state from the
	// start: switching onto an unpowered monitor is a hard power cut.
	d.SetMonitorSupply(c.socket.On() && c.mon.Vout() > 0)
	return nil
}

// sessionLoad adapts a mirroring session to the host model.
type sessionLoad struct{ s *mirror.Session }

func (sl *sessionLoad) HostCPUPercent(now time.Time) float64 {
	return sl.s.VNC().LoadPercent(now)
}
func (sl *sessionLoad) HostMemoryMB() float64 { return sl.s.VNC().MemoryMB() }

func (c *Controller) slotOf(serial string) (*slot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.devices[serial]
	if !ok {
		return nil, fmt.Errorf("controller: no device %s", serial)
	}
	return s, nil
}

// Device returns an attached device by serial.
func (c *Controller) Device(serial string) (*device.Device, error) {
	s, err := c.slotOf(serial)
	if err != nil {
		return nil, err
	}
	return s.dev, nil
}

// ---- The Table 1 API ----

// ListDevices returns the ADB ids of the test devices (API:
// list_devices).
func (c *Controller) ListDevices() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]string{}, c.order...)
	sort.Strings(out)
	return out
}

// DeviceMirroring toggles mirroring for a device (API:
// device_mirroring). It reports the resulting state.
func (c *Controller) DeviceMirroring(serial string) (bool, error) {
	s, err := c.slotOf(serial)
	if err != nil {
		return false, err
	}
	if s.session.Active() {
		s.session.Stop()
		return false, nil
	}
	if err := s.session.Start(0); err != nil {
		return false, err
	}
	return true, nil
}

// MirrorSession exposes a device's mirroring session.
func (c *Controller) MirrorSession(serial string) (*mirror.Session, error) {
	s, err := c.slotOf(serial)
	if err != nil {
		return nil, err
	}
	return s.session, nil
}

// PowerMonitor toggles the Monsoon's mains power through the WiFi
// socket (API: power_monitor) and reports the resulting state.
func (c *Controller) PowerMonitor() bool {
	c.socket.Set(!c.socket.On())
	return c.socket.On()
}

// SetVoltage programs the Monsoon output voltage (API: set_voltage).
func (c *Controller) SetVoltage(v float64) error {
	if err := c.mon.SetVout(v); err != nil {
		return err
	}
	c.updateMonitorSupply()
	return nil
}

// updateMonitorSupply propagates the monitor's live state to every
// attached device: the bypass only powers a device while the socket is
// on and Vout is programmed.
func (c *Controller) updateMonitorSupply() {
	live := c.socket.On() && c.mon.Vout() > 0
	c.mu.Lock()
	devs := make([]*device.Device, 0, len(c.devices))
	for _, s := range c.devices {
		devs = append(devs, s.dev)
	}
	c.mu.Unlock()
	for _, d := range devs {
		d.SetMonitorSupply(live)
	}
}

// ArmMonitor is StartMonitor's event-driven form: it flips the device's
// relay channel to the battery bypass synchronously, then schedules the
// Monsoon wiring and sampling start for when the relay contacts have
// settled — without ever advancing the shared clock, so concurrent
// measurements on other vantage points keep their own timelines. ready
// is invoked exactly once, at the settle instant, with the arming
// outcome. The returned abort cancels a still-pending arming, restoring
// the relay, USB power and device lock; it reports whether it won the
// race against ready.
func (c *Controller) ArmMonitor(serial string, sampleRate int, ready func(error)) (abort func() bool, err error) {
	s, err := c.slotOf(serial)
	if err != nil {
		return nil, err
	}
	if ready == nil {
		ready = func(error) {}
	}
	c.mu.Lock()
	if c.measuring != "" {
		busy := c.measuring
		c.mu.Unlock()
		return nil, fmt.Errorf("controller: already measuring %s", busy)
	}
	c.measuring = serial
	c.mu.Unlock()

	release := func() {
		c.mu.Lock()
		c.measuring = ""
		c.mu.Unlock()
	}
	fail := func(err error) error {
		release()
		return err
	}
	if !c.mon.Powered() {
		return nil, fail(errors.New("controller: power monitor is off (use power_monitor)"))
	}
	if c.mon.Vout() == 0 {
		return nil, fail(errors.New("controller: Vout not set (use set_voltage)"))
	}
	// Cut USB port power: the micro-controller activation current would
	// corrupt the measurement (§3.3). Restored by StopMonitor.
	s.usbWasOn, _ = c.hub.Powered(s.channel)
	if err := c.hub.SetPower(s.channel, false); err != nil {
		return nil, fail(err)
	}
	if err := c.sw.Set(s.channel, relay.PosMonitor); err != nil {
		if s.usbWasOn {
			c.hub.SetPower(s.channel, true)
		}
		return nil, fail(err)
	}
	rollBack := func() {
		// Roll the relay back so the device is not stranded on a dead
		// bypass, and restore the port state the measurement borrowed.
		c.sw.Set(s.channel, relay.PosBattery)
		if s.usbWasOn {
			c.hub.SetPower(s.channel, true)
		}
		release()
	}
	timer := c.clock.AfterFunc(relay.SettleTime, func() {
		c.mon.WireSource(c.sw.MeasuredSource(s.channel, s.dev.MonitorVisibleSource()))
		if err := c.mon.StartSampling(sampleRate); err != nil {
			rollBack()
			ready(err)
			return
		}
		ready(nil)
	})
	abort = func() bool {
		if !timer.Stop() {
			return false
		}
		rollBack()
		return true
	}
	return abort, nil
}

// StartMonitor begins a battery measurement of the device (API:
// start_monitor): it flips the device's relay channel to the battery
// bypass, waits for the contacts to settle, wires the channel into the
// Monsoon and starts sampling. Only one device can be measured at a time
// (the monitor has one input). On a Virtual clock it advances the clock
// by the settle time; callers that must not advance shared time use
// ArmMonitor.
func (c *Controller) StartMonitor(serial string, sampleRate int) error {
	armed := make(chan error, 1)
	if _, err := c.ArmMonitor(serial, sampleRate, func(err error) { armed <- err }); err != nil {
		return err
	}
	// On a virtual clock the settle timer only fires if someone advances
	// time; do it here to preserve the blocking contract. On the real
	// clock the timer fires on its own.
	if v, ok := c.clock.(*simclock.Virtual); ok {
		v.Advance(relay.SettleTime)
	}
	return <-armed
}

// StopMonitor ends the measurement, returns the relay to the battery
// position and hands back the current trace (API: stop_monitor).
func (c *Controller) StopMonitor() (*trace.Series, error) {
	c.mu.Lock()
	serial := c.measuring
	c.mu.Unlock()
	if serial == "" {
		return nil, errors.New("controller: no measurement in progress")
	}
	s, err := c.slotOf(serial)
	if err != nil {
		return nil, err
	}
	series, err := c.mon.StopSampling()
	if err != nil {
		return nil, err
	}
	if err := c.sw.Set(s.channel, relay.PosBattery); err != nil {
		return nil, err
	}
	if s.usbWasOn {
		if err := c.hub.SetPower(s.channel, true); err != nil {
			return nil, err
		}
	}
	c.mu.Lock()
	c.measuring = ""
	c.mu.Unlock()
	return series, nil
}

// USBPower switches a device's USB port VBUS — the uhubctl operation
// (§3.2). Measurements do this automatically; it is exposed for
// experiment setup (e.g. charging between runs).
func (c *Controller) USBPower(serial string, on bool) error {
	s, err := c.slotOf(serial)
	if err != nil {
		return err
	}
	return c.hub.SetPower(s.channel, on)
}

// Measuring reports the serial under measurement, or "".
func (c *Controller) Measuring() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.measuring
}

// BattSwitch toggles a device between its battery and the bypass (API:
// batt_switch) and reports whether the device is now on its battery.
func (c *Controller) BattSwitch(serial string) (onBattery bool, err error) {
	s, err := c.slotOf(serial)
	if err != nil {
		return false, err
	}
	pos, err := c.sw.Get(s.channel)
	if err != nil {
		return false, err
	}
	next := relay.PosMonitor
	if pos == relay.PosMonitor {
		next = relay.PosBattery
	}
	if err := c.sw.Set(s.channel, next); err != nil {
		return false, err
	}
	return next == relay.PosBattery, nil
}

// ExecuteADB runs an adb shell command on a device (API: execute_adb).
func (c *Controller) ExecuteADB(serial, cmd string) (string, error) {
	return c.adbSrv.Shell(serial, cmd)
}

// DeployCert installs the wildcard certificate (pushed by the access
// server's renewal job).
func (c *Controller) DeployCert(certPEM, keyPEM []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.certPEM = append([]byte{}, certPEM...)
	c.keyPEM = append([]byte{}, keyPEM...)
}

// CertPEM reports the deployed certificate (nil if none).
func (c *Controller) CertPEM() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.certPEM
}

// SafetyCheck turns the power monitor off if no measurement is running —
// the access server's periodic safety job (§3.1).
func (c *Controller) SafetyCheck() (turnedOff bool) {
	c.mu.Lock()
	measuring := c.measuring != ""
	c.mu.Unlock()
	if !measuring && c.socket.On() {
		c.socket.Set(false)
		return true
	}
	return false
}

// FactoryReset wipes a device (the maintenance job between
// experimenters).
func (c *Controller) FactoryReset(serial string) error {
	s, err := c.slotOf(serial)
	if err != nil {
		return err
	}
	if s.session.Active() {
		s.session.Stop()
	}
	return s.dev.FactoryReset()
}

// MonitorCPU records the controller's CPU into a series at the given
// period until stop is called — the Fig. 5 instrumentation.
func (c *Controller) MonitorCPU(period time.Duration) (series *trace.Series, stop func()) {
	s := trace.NewSeries("controller-cpu", "percent")
	t := simclock.NewTicker(c.clock, period, func(now time.Time) {
		s.MustAppend(now, c.host.CPUPercent(now))
	})
	return s, t.Stop
}
