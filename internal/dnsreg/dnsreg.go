// Package dnsreg models BatteryLab's DNS zone management (§3.4): new
// vantage points pick a human-readable identifier which the platform adds
// to the batterylab.dev zone (node1.batterylab.dev, ...) — Amazon Route53
// in the paper, an in-process registry here.
package dnsreg

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// Zone is a DNS zone holding vantage point records.
type Zone struct {
	domain string

	mu      sync.RWMutex
	records map[string]string // label -> address
}

var labelRE = regexp.MustCompile(`^[a-z0-9]([a-z0-9-]{0,61}[a-z0-9])?$`)

// NewZone returns an empty zone for the given apex domain.
func NewZone(domain string) *Zone {
	return &Zone{domain: domain, records: make(map[string]string)}
}

// Domain reports the apex.
func (z *Zone) Domain() string { return z.domain }

// Register adds label pointing at addr and returns the FQDN. Labels must
// be valid DNS labels and unused.
func (z *Zone) Register(label, addr string) (string, error) {
	label = strings.ToLower(label)
	if !labelRE.MatchString(label) {
		return "", fmt.Errorf("dnsreg: invalid label %q", label)
	}
	if addr == "" {
		return "", fmt.Errorf("dnsreg: empty address for %q", label)
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	if _, dup := z.records[label]; dup {
		return "", fmt.Errorf("dnsreg: %s.%s already registered", label, z.domain)
	}
	z.records[label] = addr
	return label + "." + z.domain, nil
}

// Resolve returns the address for an FQDN inside the zone.
func (z *Zone) Resolve(fqdn string) (string, error) {
	suffix := "." + z.domain
	if !strings.HasSuffix(fqdn, suffix) {
		return "", fmt.Errorf("dnsreg: %s outside zone %s", fqdn, z.domain)
	}
	label := strings.TrimSuffix(fqdn, suffix)
	z.mu.RLock()
	defer z.mu.RUnlock()
	addr, ok := z.records[label]
	if !ok {
		return "", fmt.Errorf("dnsreg: NXDOMAIN %s", fqdn)
	}
	return addr, nil
}

// Deregister removes a label.
func (z *Zone) Deregister(label string) error {
	z.mu.Lock()
	defer z.mu.Unlock()
	if _, ok := z.records[label]; !ok {
		return fmt.Errorf("dnsreg: no record %s.%s", label, z.domain)
	}
	delete(z.records, label)
	return nil
}

// Update repoints an existing label (a vantage point changing IP).
func (z *Zone) Update(label, addr string) error {
	z.mu.Lock()
	defer z.mu.Unlock()
	if _, ok := z.records[label]; !ok {
		return fmt.Errorf("dnsreg: no record %s.%s", label, z.domain)
	}
	z.records[label] = addr
	return nil
}

// List reports all FQDNs in the zone, sorted.
func (z *Zone) List() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	out := make([]string, 0, len(z.records))
	for label := range z.records {
		out = append(out, label+"."+z.domain)
	}
	sort.Strings(out)
	return out
}
