package dnsreg

import "testing"

func TestRegisterResolve(t *testing.T) {
	z := NewZone("batterylab.dev")
	fqdn, err := z.Register("node1", "10.0.0.5:2222")
	if err != nil || fqdn != "node1.batterylab.dev" {
		t.Fatalf("Register = %q, %v", fqdn, err)
	}
	addr, err := z.Resolve("node1.batterylab.dev")
	if err != nil || addr != "10.0.0.5:2222" {
		t.Fatalf("Resolve = %q, %v", addr, err)
	}
}

func TestRegisterValidation(t *testing.T) {
	z := NewZone("batterylab.dev")
	for _, bad := range []string{"", "-x", "x-", "UPPER CASE", "a..b", "worst label ever"} {
		if _, err := z.Register(bad, "1.2.3.4"); err == nil {
			t.Fatalf("label %q accepted", bad)
		}
	}
	if _, err := z.Register("ok", ""); err == nil {
		t.Fatal("empty address accepted")
	}
	// Uppercase is folded, not rejected.
	if fqdn, err := z.Register("NODE2", "1.2.3.4"); err != nil || fqdn != "node2.batterylab.dev" {
		t.Fatalf("case folding: %q, %v", fqdn, err)
	}
}

func TestDuplicate(t *testing.T) {
	z := NewZone("batterylab.dev")
	z.Register("node1", "a")
	if _, err := z.Register("node1", "b"); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestResolveMisses(t *testing.T) {
	z := NewZone("batterylab.dev")
	if _, err := z.Resolve("nope.batterylab.dev"); err == nil {
		t.Fatal("NXDOMAIN resolved")
	}
	if _, err := z.Resolve("node1.other.org"); err == nil {
		t.Fatal("out-of-zone resolved")
	}
}

func TestDeregisterAndUpdate(t *testing.T) {
	z := NewZone("batterylab.dev")
	z.Register("node1", "a")
	if err := z.Update("node1", "b"); err != nil {
		t.Fatal(err)
	}
	addr, _ := z.Resolve("node1.batterylab.dev")
	if addr != "b" {
		t.Fatalf("after update: %q", addr)
	}
	if err := z.Deregister("node1"); err != nil {
		t.Fatal(err)
	}
	if err := z.Deregister("node1"); err == nil {
		t.Fatal("double deregister accepted")
	}
	if err := z.Update("node1", "c"); err == nil {
		t.Fatal("update of missing record accepted")
	}
}

func TestList(t *testing.T) {
	z := NewZone("batterylab.dev")
	z.Register("node2", "b")
	z.Register("node1", "a")
	got := z.List()
	if len(got) != 2 || got[0] != "node1.batterylab.dev" || got[1] != "node2.batterylab.dev" {
		t.Fatalf("List = %v", got)
	}
}
