package netem

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// Property-based tests on path-composition invariants.

func sanitize(mbps float64) float64 {
	m := math.Abs(mbps)
	if math.IsNaN(m) || math.IsInf(m, 0) || m == 0 {
		return 1
	}
	return math.Mod(m, 1000) + 0.1
}

func TestPropertyBottleneckNeverExceedsAnyHop(t *testing.T) {
	f := func(d1, u1, d2, u2 float64) bool {
		a := Link{Name: "a", DownMbps: sanitize(d1), UpMbps: sanitize(u1)}
		b := Link{Name: "b", DownMbps: sanitize(d2), UpMbps: sanitize(u2)}
		p, err := NewPath(a, b)
		if err != nil {
			return false
		}
		return p.DownMbps() <= a.DownMbps && p.DownMbps() <= b.DownMbps &&
			p.UpMbps() <= a.UpMbps && p.UpMbps() <= b.UpMbps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRTTAdditive(t *testing.T) {
	f := func(r1, r2 uint32) bool {
		a := Link{Name: "a", DownMbps: 1, UpMbps: 1, RTT: time.Duration(r1 % 1e9)}
		b := Link{Name: "b", DownMbps: 1, UpMbps: 1, RTT: time.Duration(r2 % 1e9)}
		p, err := NewPath(a, b)
		if err != nil {
			return false
		}
		return p.RTT() == a.RTT+b.RTT
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLossComposesAsProbability(t *testing.T) {
	f := func(l1, l2 float64) bool {
		s1 := math.Mod(math.Abs(l1), 0.9)
		s2 := math.Mod(math.Abs(l2), 0.9)
		a := Link{Name: "a", DownMbps: 1, UpMbps: 1, Loss: s1}
		b := Link{Name: "b", DownMbps: 1, UpMbps: 1, Loss: s2}
		p, err := NewPath(a, b)
		if err != nil {
			return false
		}
		loss := p.Loss()
		// Composed loss is at least the worst hop and below 1.
		return loss >= math.Max(s1, s2)-1e-12 && loss < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTransferTimeMonotoneInBytes(t *testing.T) {
	p, _ := NewPath(Link{Name: "l", DownMbps: 10, UpMbps: 10, RTT: 50 * time.Millisecond})
	f := func(n1, n2 uint32) bool {
		a, b := int64(n1%100_000_000), int64(n2%100_000_000)
		if a > b {
			a, b = b, a
		}
		return p.TransferTime(a, true) <= p.TransferTime(b, true)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAppendPathEquivalentToFlatPath(t *testing.T) {
	f := func(d1, d2, d3 float64) bool {
		l1 := Link{Name: "1", DownMbps: sanitize(d1), UpMbps: 1}
		l2 := Link{Name: "2", DownMbps: sanitize(d2), UpMbps: 1}
		l3 := Link{Name: "3", DownMbps: sanitize(d3), UpMbps: 1}
		flat, err := NewPath(l1, l2, l3)
		if err != nil {
			return false
		}
		head, err := NewPath(l1)
		if err != nil {
			return false
		}
		tail, err := NewPath(l2, l3)
		if err != nil {
			return false
		}
		composed, err := head.AppendPath(tail)
		if err != nil {
			return false
		}
		return flat.DownMbps() == composed.DownMbps() &&
			flat.RTT() == composed.RTT() && flat.Hops() == composed.Hops()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
