package netem

import (
	"math"
	"testing"
	"time"

	"batterylab/internal/rng"
)

func link(name string, down, up float64, rtt time.Duration) Link {
	return Link{Name: name, DownMbps: down, UpMbps: up, RTT: rtt}
}

func TestValidate(t *testing.T) {
	bad := []Link{
		{Name: "a", DownMbps: 0, UpMbps: 1},
		{Name: "b", DownMbps: 1, UpMbps: -1},
		{Name: "c", DownMbps: 1, UpMbps: 1, RTT: -time.Second},
		{Name: "d", DownMbps: 1, UpMbps: 1, Loss: 1.0},
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Fatalf("link %s validated", l.Name)
		}
	}
	if err := link("ok", 10, 5, time.Millisecond).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyPath(t *testing.T) {
	if _, err := NewPath(); err == nil {
		t.Fatal("empty path accepted")
	}
}

func TestBottleneckComposition(t *testing.T) {
	p, err := NewPath(
		link("wifi", 40, 40, time.Millisecond),
		link("isp", 100, 20, 9*time.Millisecond),
		link("vpn", 8, 10, 200*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	if p.DownMbps() != 8 {
		t.Fatalf("down = %v, want 8", p.DownMbps())
	}
	if p.UpMbps() != 10 {
		t.Fatalf("up = %v, want 10", p.UpMbps())
	}
	if p.RTT() != 210*time.Millisecond {
		t.Fatalf("rtt = %v", p.RTT())
	}
	if p.Hops() != 3 {
		t.Fatalf("hops = %d", p.Hops())
	}
}

func TestLossComposition(t *testing.T) {
	p, _ := NewPath(
		Link{Name: "a", DownMbps: 1, UpMbps: 1, Loss: 0.1},
		Link{Name: "b", DownMbps: 1, UpMbps: 1, Loss: 0.1},
	)
	want := 1 - 0.9*0.9
	if got := p.Loss(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("loss = %v, want %v", got, want)
	}
}

func TestTransferTimeScalesWithBytes(t *testing.T) {
	p, _ := NewPath(link("l", 8, 8, 10*time.Millisecond))
	small := p.TransferTime(1_000_000, true)
	big := p.TransferTime(10_000_000, true)
	if big <= small {
		t.Fatal("transfer time should grow with size")
	}
	// 1 MB at 8 Mbps ≈ 1 s + rtts.
	if small < time.Second || small > 1500*time.Millisecond {
		t.Fatalf("1MB @ 8Mbps = %v, want ~1s", small)
	}
}

func TestTransferTimeZeroBytes(t *testing.T) {
	p, _ := NewPath(link("l", 8, 8, 10*time.Millisecond))
	if p.TransferTime(0, true) != 0 {
		t.Fatal("zero-byte transfer should be instant")
	}
}

func TestTransferDirection(t *testing.T) {
	p, _ := NewPath(link("asym", 100, 1, time.Millisecond))
	down := p.TransferTime(1_000_000, true)
	up := p.TransferTime(1_000_000, false)
	if up <= down {
		t.Fatal("upload on asymmetric link should be slower")
	}
}

func TestLossSlowsTransfer(t *testing.T) {
	clean, _ := NewPath(link("l", 10, 10, time.Millisecond))
	lossy, _ := NewPath(Link{Name: "l", DownMbps: 10, UpMbps: 10, RTT: time.Millisecond, Loss: 0.05})
	if lossy.TransferTime(5_000_000, true) <= clean.TransferTime(5_000_000, true) {
		t.Fatal("loss should slow transfers")
	}
}

func TestEffectiveMbpsBelowCapacity(t *testing.T) {
	p, _ := NewPath(link("l", 10, 10, 200*time.Millisecond))
	eff := p.EffectiveMbps(25_000_000, true)
	if eff >= 10 {
		t.Fatalf("effective %v should be below 10 (handshake overhead)", eff)
	}
	if eff < 7 {
		t.Fatalf("effective %v too far below capacity", eff)
	}
}

func TestAppend(t *testing.T) {
	p, _ := NewPath(link("a", 10, 10, time.Millisecond))
	q, err := p.Append(link("b", 5, 5, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if q.DownMbps() != 5 || p.DownMbps() != 10 {
		t.Fatal("Append should not mutate the original")
	}
}

func TestJitteredWithinBounds(t *testing.T) {
	p, _ := NewPath(link("l", 10, 10, 100*time.Millisecond))
	r := rng.New(5)
	for i := 0; i < 100; i++ {
		j := p.Jittered(r, 0.1)
		if j.DownMbps() < 9 || j.DownMbps() >= 11 {
			t.Fatalf("jittered down = %v", j.DownMbps())
		}
		if j.RTT() < 90*time.Millisecond || j.RTT() >= 110*time.Millisecond {
			t.Fatalf("jittered rtt = %v", j.RTT())
		}
	}
}

func TestJitteredDeterministic(t *testing.T) {
	p, _ := NewPath(link("l", 10, 10, 100*time.Millisecond))
	a := p.Jittered(rng.New(9), 0.1)
	b := p.Jittered(rng.New(9), 0.1)
	if a.DownMbps() != b.DownMbps() || a.RTT() != b.RTT() {
		t.Fatal("jitter not deterministic for same seed")
	}
}
