// Package netem is BatteryLab's network path emulator. The platform's
// "location, location, location" experiments (§4.3) need network paths
// with controlled bandwidth and latency — the paper uses ProtonVPN exits;
// this emulator provides the link model those tunnels (internal/vpn) and
// the vantage point's WiFi access point (internal/wifi) are built from.
//
// The model is analytic rather than packet-level: a link has download and
// upload capacity, a propagation RTT and a loss rate, and answers
// questions like "how long does an N-byte transfer take" and "what
// throughput would a speedtest measure". That is the fidelity the paper's
// experiments consume (transfer durations drive radio power; measured
// Mbps fill Table 2).
package netem

import (
	"fmt"
	"time"

	"batterylab/internal/rng"
)

// Link is one network hop.
type Link struct {
	// Name identifies the hop ("wifi-ap", "vpn-johannesburg").
	Name string
	// DownMbps and UpMbps are usable capacities in megabits per second.
	DownMbps float64
	UpMbps   float64
	// RTT is the round-trip propagation delay contributed by this hop.
	RTT time.Duration
	// Loss is the packet loss probability in [0, 1). Loss inflates
	// effective transfer time via a simple goodput model.
	Loss float64
}

// Validate reports whether the link parameters are physical.
func (l Link) Validate() error {
	if l.DownMbps <= 0 || l.UpMbps <= 0 {
		return fmt.Errorf("netem: link %s: non-positive capacity", l.Name)
	}
	if l.RTT < 0 {
		return fmt.Errorf("netem: link %s: negative RTT", l.Name)
	}
	if l.Loss < 0 || l.Loss >= 1 {
		return fmt.Errorf("netem: link %s: loss %v outside [0,1)", l.Name, l.Loss)
	}
	return nil
}

// Path is a sequence of links between the device and an origin server.
// End-to-end capacity is the bottleneck hop; RTT and loss compose.
type Path struct {
	links []Link
}

// NewPath composes hops into a path.
func NewPath(links ...Link) (*Path, error) {
	if len(links) == 0 {
		return nil, fmt.Errorf("netem: empty path")
	}
	for _, l := range links {
		if err := l.Validate(); err != nil {
			return nil, err
		}
	}
	return &Path{links: append([]Link{}, links...)}, nil
}

// Append returns a new path extended with more hops.
func (p *Path) Append(links ...Link) (*Path, error) {
	return NewPath(append(append([]Link{}, p.links...), links...)...)
}

// Hops reports the number of links.
func (p *Path) Hops() int { return len(p.links) }

// Links returns a copy of the path's hops.
func (p *Path) Links() []Link { return append([]Link{}, p.links...) }

// AppendPath returns a new path that traverses p and then q.
func (p *Path) AppendPath(q *Path) (*Path, error) {
	return p.Append(q.links...)
}

// DownMbps reports the end-to-end download capacity (bottleneck).
func (p *Path) DownMbps() float64 {
	min := p.links[0].DownMbps
	for _, l := range p.links[1:] {
		if l.DownMbps < min {
			min = l.DownMbps
		}
	}
	return min
}

// UpMbps reports the end-to-end upload capacity (bottleneck).
func (p *Path) UpMbps() float64 {
	min := p.links[0].UpMbps
	for _, l := range p.links[1:] {
		if l.UpMbps < min {
			min = l.UpMbps
		}
	}
	return min
}

// RTT reports the end-to-end round-trip time.
func (p *Path) RTT() time.Duration {
	var total time.Duration
	for _, l := range p.links {
		total += l.RTT
	}
	return total
}

// Loss reports the end-to-end loss probability (independent hops).
func (p *Path) Loss() float64 {
	pass := 1.0
	for _, l := range p.links {
		pass *= 1 - l.Loss
	}
	return 1 - pass
}

// goodputFactor approximates TCP's efficiency over a lossy path.
func (p *Path) goodputFactor() float64 {
	return 1 - 2.5*p.Loss()
}

// TransferTime estimates how long moving n bytes takes in the given
// direction, including one connection-establishment RTT and slow-start
// ramp (modelled as one extra RTT per 10x of data beyond 64 KB).
func (p *Path) TransferTime(n int64, download bool) time.Duration {
	if n <= 0 {
		return 0
	}
	mbps := p.UpMbps()
	if download {
		mbps = p.DownMbps()
	}
	gp := p.goodputFactor()
	if gp < 0.1 {
		gp = 0.1
	}
	secs := float64(n*8) / (mbps * gp * 1e6)
	rtts := 1
	for sz := int64(64 * 1024); sz < n; sz *= 10 {
		rtts++
	}
	return time.Duration(secs*float64(time.Second)) + time.Duration(rtts)*p.RTT()
}

// EffectiveMbps reports the throughput a bulk transfer of n bytes
// achieves including handshake overhead — what a speedtest observes.
func (p *Path) EffectiveMbps(n int64, download bool) float64 {
	d := p.TransferTime(n, download)
	if d <= 0 {
		return 0
	}
	return float64(n*8) / 1e6 / d.Seconds()
}

// Jittered returns a copy of the path with capacities and RTT perturbed
// by the given fractional jitter, drawn from r — one "network weather"
// realization for a measurement run.
func (p *Path) Jittered(r *rng.RNG, frac float64) *Path {
	links := make([]Link, len(p.links))
	for i, l := range p.links {
		l.DownMbps = r.Jitter(l.DownMbps, frac)
		l.UpMbps = r.Jitter(l.UpMbps, frac)
		l.RTT = time.Duration(r.Jitter(float64(l.RTT), frac))
		links[i] = l
	}
	return &Path{links: links}
}
