package experiments

import (
	"context"
	"fmt"

	"batterylab/internal/automation"
	"batterylab/internal/browser"
	"batterylab/internal/core"
	"batterylab/internal/stats"
)

// Fig3Row is one browser's bar pair in Figure 3: average battery
// discharge (mAh) with standard deviation, with mirroring inactive and
// active.
type Fig3Row struct {
	Browser   string
	MirrorOff stats.Summary
	MirrorOn  stats.Summary
}

// Fig3BrowserEnergy reproduces Figure 3 (§4.2): per-browser battery
// discharge across repetitions of the 10-page news workload, mirroring
// off and on. Expected shape: Brave lowest, Firefox highest, mirroring a
// browser-independent constant extra.
func Fig3BrowserEnergy(opts Options) ([]Fig3Row, error) {
	opts = opts.withDefaults()
	var rows []Fig3Row
	for bi, name := range BrowserNames() {
		env, err := NewEnv(opts.Seed + uint64(bi)*977)
		if err != nil {
			return nil, err
		}
		prof, err := browser.FindProfile(name)
		if err != nil {
			return nil, err
		}
		row := Fig3Row{Browser: name}
		for _, mirroring := range []bool{false, true} {
			var energies []float64
			for rep := 0; rep < opts.Repetitions; rep++ {
				res, err := env.Plat.RunExperiment(context.Background(), core.ExperimentSpec{
					Node: "node1", Device: env.Serial,
					SampleRate: opts.SampleRate,
					Mirroring:  mirroring,
					Workload: func(drv automation.Driver) *automation.Script {
						return browser.BuildWorkload(drv, prof.Package, opts.browserWorkloadOpts())
					},
				})
				if err != nil {
					return nil, fmt.Errorf("fig3 %s rep %d (mirror=%v): %w", name, rep, mirroring, err)
				}
				energies = append(energies, res.EnergyMAH)
			}
			if mirroring {
				row.MirrorOn = stats.Summarize(energies)
			} else {
				row.MirrorOff = stats.Summarize(energies)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig3Findings summarizes the figure's claims.
type Fig3Findings struct {
	// Order is the browsers sorted by mirror-off energy ascending.
	Order []string
	// MirrorExtras is the per-browser mirroring cost (mAh).
	MirrorExtras map[string]float64
	// ExtraSpreadMAH is max-min of the mirroring extras: small means
	// "constant extra cost regardless of the browser being tested".
	ExtraSpreadMAH float64
}

// SummarizeFig3 derives the findings from the rows.
func SummarizeFig3(rows []Fig3Row) Fig3Findings {
	f := Fig3Findings{MirrorExtras: make(map[string]float64)}
	sorted := append([]Fig3Row{}, rows...)
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j].MirrorOff.Mean < sorted[i].MirrorOff.Mean {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	var min, max float64
	for i, r := range sorted {
		f.Order = append(f.Order, r.Browser)
		extra := r.MirrorOn.Mean - r.MirrorOff.Mean
		f.MirrorExtras[r.Browser] = extra
		if i == 0 || extra < min {
			min = extra
		}
		if i == 0 || extra > max {
			max = extra
		}
	}
	f.ExtraSpreadMAH = max - min
	return f
}
