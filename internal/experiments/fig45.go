package experiments

import (
	"context"
	"fmt"

	"batterylab/internal/automation"
	"batterylab/internal/browser"
	"batterylab/internal/core"
	"batterylab/internal/stats"
)

// Fig4Row is one CDF of Figure 4: device CPU utilization for a browser
// with mirroring inactive or active.
type Fig4Row struct {
	Browser   string
	Mirroring bool
	CDF       *stats.CDF
}

// Fig4DeviceCPU reproduces Figure 4 (§4.2): CDFs of device CPU for Brave
// and Chrome, mirroring on/off. Expected shape: Brave's median ≈ 12 %
// vs Chrome's ≈ 20 %; mirroring shifts both right by ≈ 5 %.
func Fig4DeviceCPU(opts Options) ([]Fig4Row, error) {
	opts = opts.withDefaults()
	var rows []Fig4Row
	i := 0
	for _, name := range []string{"Brave", "Chrome"} {
		for _, mirroring := range []bool{false, true} {
			env, err := NewEnv(opts.Seed + uint64(i)*1511)
			i++
			if err != nil {
				return nil, err
			}
			prof, err := browser.FindProfile(name)
			if err != nil {
				return nil, err
			}
			res, err := env.Plat.RunExperiment(context.Background(), core.ExperimentSpec{
				Node: "node1", Device: env.Serial,
				SampleRate: opts.SampleRate,
				Mirroring:  mirroring,
				Workload: func(drv automation.Driver) *automation.Script {
					return browser.BuildWorkload(drv, prof.Package, opts.browserWorkloadOpts())
				},
			})
			if err != nil {
				return nil, fmt.Errorf("fig4 %s (mirror=%v): %w", name, mirroring, err)
			}
			cdf, err := res.DeviceCPU.CDF()
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig4Row{Browser: name, Mirroring: mirroring, CDF: cdf})
		}
	}
	return rows, nil
}

// Fig5Row is one CDF of Figure 5: controller CPU with mirroring
// inactive or active during the Chrome workload.
type Fig5Row struct {
	Mirroring bool
	CDF       *stats.CDF
}

// Fig5ControllerCPU reproduces Figure 5 (§4.2): CDFs of Raspberry Pi CPU
// during Chrome experiments. Expected shape: without mirroring a flat
// ≈ 25 % (Monsoon polling); with mirroring a ≈ 75 % median and ≥ 95 %
// in the top decile.
func Fig5ControllerCPU(opts Options) ([]Fig5Row, error) {
	opts = opts.withDefaults()
	prof, err := browser.FindProfile("Chrome")
	if err != nil {
		return nil, err
	}
	var rows []Fig5Row
	for i, mirroring := range []bool{false, true} {
		env, err := NewEnv(opts.Seed + uint64(i)*2221)
		if err != nil {
			return nil, err
		}
		res, err := env.Plat.RunExperiment(context.Background(), core.ExperimentSpec{
			Node: "node1", Device: env.Serial,
			SampleRate: opts.SampleRate,
			Mirroring:  mirroring,
			Workload: func(drv automation.Driver) *automation.Script {
				return browser.BuildWorkload(drv, prof.Package, opts.browserWorkloadOpts())
			},
		})
		if err != nil {
			return nil, fmt.Errorf("fig5 (mirror=%v): %w", mirroring, err)
		}
		cdf, err := res.ControllerCPU.CDF()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig5Row{Mirroring: mirroring, CDF: cdf})
	}
	return rows, nil
}
